// Command reproduce regenerates every artifact of the reproduction —
// Table 1, Figures 3-6, the ablations and the extension experiments —
// writing one text file per artifact into an output directory. With
// -quick the run lengths are scaled down ~10x for a fast smoke
// reproduction; the default is paper scale.
//
//	go run ./cmd/reproduce -out results [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/harness"
)

// renderer is the common shape of experiment results.
type renderer interface {
	Render(io.Writer) error
}

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		quick    = flag.Bool("quick", false, "scale run lengths down ~10x")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent simulation jobs (1 = serial; artifacts are identical for any value)")
	)
	flag.Parse()
	if err := run(*out, *quick, *seed, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
}

func run(outDir string, quick bool, seed uint64, parallel int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	scale := func(cycles int64) int64 {
		if quick {
			return cycles / 10
		}
		return cycles
	}

	steps := []struct {
		file string
		gen  func() (renderer, error)
	}{
		{"fig3.txt", func() (renderer, error) { return fig3Trace(), nil }},
		{"table1.txt", func() (renderer, error) {
			p := experiments.DefaultTable1Params()
			p.Fig4.Seed = seed
			p.Workers = parallel
			p.Fig4.Cycles = scale(p.Fig4.Cycles)
			return experiments.RunTable1(p)
		}},
		{"fig4.txt", func() (renderer, error) {
			p := experiments.DefaultFig4Params()
			p.Seed = seed
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			return experiments.RunFig4(p, "all")
		}},
		{"fig5.txt", func() (renderer, error) {
			p := experiments.DefaultFig5Params()
			p.Seed = seed
			p.Workers = parallel
			if quick {
				p.Repeats = 2
			}
			return experiments.RunFig5(p, "all")
		}},
		{"fig6.txt", func() (renderer, error) {
			p := experiments.DefaultFig6Params()
			p.Seed = seed
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			if quick {
				p.Intervals = 2000
			}
			return experiments.RunFig6(p)
		}},
		{"fig6ext.txt", func() (renderer, error) {
			p := experiments.DefaultFig6ExtParams()
			p.Seed = seed
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			return experiments.RunFig6Ext(p)
		}},
		{"occupancy.txt", func() (renderer, error) {
			p := experiments.DefaultAblationOccupancyParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunAblationOccupancy(p)
		}},
		{"screset.txt", func() (renderer, error) {
			p := experiments.DefaultAblationSurplusResetParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunAblationSurplusReset(p)
		}},
		{"weighted.txt", func() (renderer, error) {
			p := experiments.DefaultWeightedParams()
			p.Seed = seed
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			return experiments.RunWeighted(p)
		}},
		{"gap.txt", func() (renderer, error) {
			p := experiments.DefaultGapParams()
			p.Seed = seed
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			return experiments.RunGap(p)
		}},
		{"lr.txt", func() (renderer, error) {
			p := experiments.DefaultLRParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunLR(p)
		}},
		{"parkinglot.txt", func() (renderer, error) {
			p := experiments.DefaultParkingLotParams()
			p.Workers = parallel
			p.Cycles = scale(p.Cycles)
			return experiments.RunParkingLot(p)
		}},
		{"nocsweep.txt", func() (renderer, error) {
			p := experiments.DefaultNoCSweepParams()
			p.Seed = seed
			p.Workers = parallel
			p.WarmCycles = scale(p.WarmCycles)
			return experiments.RunNoCSweep(p)
		}},
	}

	for _, s := range steps {
		start := time.Now()
		res, err := s.gen()
		if err != nil {
			return fmt.Errorf("%s: %w", s.file, err)
		}
		f, err := os.Create(filepath.Join(outDir, s.file))
		if err != nil {
			return err
		}
		if err := res.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %-16s (%.1fs)\n", s.file, time.Since(start).Seconds())
	}
	return nil
}

// fig3Renderer wraps the deterministic Figure 3 trace.
type fig3Renderer struct{ rec *core.TraceRecorder }

// Render implements renderer.
func (f fig3Renderer) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Figure 3 — rounds of an Elastic Round Robin execution"); err != nil {
		return err
	}
	return f.rec.WriteTable(w)
}

// fig3Trace replays the DESIGN.md Figure 3 example.
func fig3Trace() renderer {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(3, e)
	for _, l := range []int{32, 8, 8, 8, 8} {
		d.Arrive(flit.Packet{Flow: 0, Length: l})
	}
	for _, l := range []int{16, 8, 8, 8, 8} {
		d.Arrive(flit.Packet{Flow: 1, Length: l})
	}
	for _, l := range []int{12, 20, 4, 4, 4} {
		d.Arrive(flit.Packet{Flow: 2, Length: l})
	}
	d.Drain()
	return fig3Renderer{rec: rec}
}
