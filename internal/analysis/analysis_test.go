package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/rng"
)

func TestBoundFormulas(t *testing.T) {
	if ERRFairnessBound(128) != 384 {
		t.Error("ERR bound wrong")
	}
	if DRRFairnessBound(128, 128) != 384 {
		t.Error("DRR bound wrong")
	}
	if FQFairnessBound(64) != 64 {
		t.Error("FQ bound wrong")
	}
	if SurplusBound(128) != 127 {
		t.Error("surplus bound wrong")
	}
}

func TestServiceBounds(t *testing.T) {
	maxSC := map[int64]int64{1: 10, 2: 5, 3: 0}
	// Window of 2 rounds starting at round 2: sum over r=1..2 = 15.
	lo, hi := ServiceBounds(2, 2, maxSC, 8)
	if lo != 2+15-7 || hi != 2+15+7 {
		t.Errorf("bounds (%d,%d), want (10,24)", lo, hi)
	}
	// Window starting at round 1 includes MaxSC(0) = 0 implicitly.
	lo, hi = ServiceBounds(1, 1, maxSC, 8)
	if lo != 1-7 || hi != 1+7 {
		t.Errorf("bounds (%d,%d), want (-6,8)", lo, hi)
	}
}

func runTraced(t *testing.T, seed uint64, flows, packets, maxLen int) (*core.TraceRecorder, int64) {
	t.Helper()
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(flows, e)
	src := rng.New(seed)
	dist := rng.NewUniform(1, maxLen)
	var m int64
	for i := 0; i < packets; i++ {
		for f := 0; f < flows; f++ {
			l := dist.Draw(src)
			if int64(l) > m {
				m = int64(l)
			}
			d.Arrive(flit.Packet{Flow: f, Length: l})
		}
	}
	d.Drain()
	return rec, m
}

func TestVerifyTraceAcceptsRealRuns(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		rec, m := runTraced(t, seed, 4, 300, 40)
		if err := VerifyTrace(rec, m, 4); err != nil {
			t.Fatalf("seed %d: genuine ERR run rejected: %v", seed, err)
		}
	}
}

func TestVerifyTraceEmptyAndValidation(t *testing.T) {
	if err := VerifyTrace(&core.TraceRecorder{}, 5, 3); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
	if err := VerifyTrace(&core.TraceRecorder{}, 0, 3); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestVerifyTraceCatchesSurplusViolation(t *testing.T) {
	rec := &core.TraceRecorder{}
	rec.RoundStart(1, 0, 1)
	rec.Opportunity(1, 0, 1, 100, 99, false)
	// Claim m=50: surplus 99 > m-1 = 49 must be caught.
	if err := VerifyTrace(rec, 50, 2); err == nil || !strings.Contains(err.Error(), "surplus") {
		t.Errorf("surplus violation not caught: %v", err)
	}
}

func TestVerifyTraceCatchesZeroAllowance(t *testing.T) {
	rec := &core.TraceRecorder{}
	rec.RoundStart(1, 0, 1)
	rec.Opportunity(1, 0, 0, 5, 5, false)
	if err := VerifyTrace(rec, 50, 2); err == nil || !strings.Contains(err.Error(), "allowance") {
		t.Errorf("zero allowance not caught: %v", err)
	}
}

func TestVerifyTraceCatchesNegativeSurplusWithoutDrain(t *testing.T) {
	rec := &core.TraceRecorder{}
	rec.RoundStart(1, 0, 1)
	rec.Opportunity(1, 0, 10, 5, -5, false)
	if err := VerifyTrace(rec, 50, 2); err == nil || !strings.Contains(err.Error(), "negative surplus") {
		t.Errorf("negative surplus not caught: %v", err)
	}
}

func TestVerifyTraceCatchesTheorem2Violation(t *testing.T) {
	// A fabricated trace where round 2 serves 9 flits with m = 2:
	// the Theorem 2 upper bound for the window [2,2] is
	// 1 + MaxSC(1) + (m-1) = 1 + 0 + 1 = 2, so N = 9 must be caught.
	// (The surplus in that opportunity is kept at 1 <= m-1 so the
	// Lemma 1 checks pass and the Theorem 2 check does the work.)
	rec := &core.TraceRecorder{}
	rec.RoundStart(1, 0, 1)
	rec.Opportunity(1, 0, 1, 1, 0, false)
	rec.RoundStart(2, 0, 1)
	rec.Opportunity(2, 0, 1, 9, 1, false)
	rec.RoundStart(3, 1, 1)
	rec.Opportunity(3, 0, 1, 1, 0, false)
	if err := VerifyTrace(rec, 2, 2); err == nil || !strings.Contains(err.Error(), "Theorem 2") {
		t.Errorf("Theorem 2 violation not caught: %v", err)
	}
}

func TestFairnessVerdict(t *testing.T) {
	if got := FairnessVerdict(100, 384); !strings.Contains(got, "holds") {
		t.Errorf("verdict %q", got)
	}
	if got := FairnessVerdict(400, 384); !strings.Contains(got, "VIOLATED") {
		t.Errorf("verdict %q", got)
	}
	if got := FairnessVerdict(400, 0); !strings.Contains(got, "unbounded") {
		t.Errorf("verdict %q", got)
	}
}

// TestVerifyTraceAcrossBusyPeriods is a fuzzer-found regression: the
// scheduler resets its round counter whenever the system drains, so
// two busy periods both contain a "round 1". Merging their per-round
// service sums produced a phantom Theorem 2 violation for a workload
// as simple as one flow draining twice.
func TestVerifyTraceAcrossBusyPeriods(t *testing.T) {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(1, e)
	for period := 0; period < 3; period++ {
		for i := 0; i < 3; i++ {
			d.Arrive(flit.Packet{Flow: 0, Length: 7})
		}
		d.Drain() // the scheduler goes idle: round numbering restarts
	}
	if err := VerifyTrace(rec, 7, 3); err != nil {
		t.Fatalf("phantom violation across busy periods: %v", err)
	}
}

// TestBusyPeriodSegmentation pins the splitter on the ambiguous shape
// the fallback heuristic cannot see: consecutive single-round busy
// periods, where the round number never decreases between events.
func TestBusyPeriodSegmentation(t *testing.T) {
	rec := &core.TraceRecorder{}
	// Two busy periods: rounds 1-2 with two flows, then round 1 again
	// with one flow.
	rec.RoundStart(1, 0, 2)
	rec.Opportunity(1, 0, 1, 4, 3, false)
	rec.Opportunity(1, 1, 1, 2, 1, true)
	rec.RoundStart(2, 3, 1)
	rec.Opportunity(2, 0, 4, 4, 3, true)
	rec.RoundStart(1, 0, 1)
	rec.Opportunity(1, 0, 1, 1, 0, true)
	bps := busyPeriods(rec)
	if len(bps) != 2 {
		t.Fatalf("busyPeriods = %d periods, want 2", len(bps))
	}
	if len(bps[0].events) != 3 || bps[0].complete != 2 {
		t.Errorf("period 0: %d events complete=%d, want 3 events complete=2",
			len(bps[0].events), bps[0].complete)
	}
	if len(bps[1].events) != 1 || bps[1].complete != 1 {
		t.Errorf("period 1: %d events complete=%d, want 1 event complete=1",
			len(bps[1].events), bps[1].complete)
	}

	// A trace truncated mid-round: the last round is not complete.
	rec = &core.TraceRecorder{}
	rec.RoundStart(1, 0, 2)
	rec.Opportunity(1, 0, 1, 4, 3, false)
	rec.RoundStart(1, 0, 1) // unreachable shape guard: restart splits anyway
	bps = busyPeriods(rec)
	if len(bps) != 2 || bps[0].complete != 0 {
		t.Errorf("truncated round marked complete: %+v", bps)
	}
}
