package noc

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// traceMode names one stepping configuration of the cross-mode
// differential: the flight recorder must emit byte-identical artifacts
// under every one of them.
type traceMode struct {
	name     string
	stepped  bool
	fullScan bool
	workers  int // > 0: sharded-parallel stepping with this many workers
}

var traceModes = []traceMode{
	{name: "stepped", stepped: true},
	{name: "event", stepped: false},
	{name: "fullscan", stepped: true, fullScan: true},
	{name: "parallel4", stepped: false, workers: 4},
}

// traceArtifacts renders everything the recorder exports — JSONL
// spans, the Chrome trace, and the rollup table — into one byte blob.
func traceArtifacts(t *testing.T, tr *trace.Trace, ws []trace.FaultWindow) []byte {
	t.Helper()
	recs := tr.Records()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, recs, ws); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&buf, recs, ws); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rollup().Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// traceRun drives one bursty, faulted scenario in the given mode with
// the flight recorder attached and returns the rendered artifacts.
func traceRun(t *testing.T, mode traceMode, sampleEvery int, spec string) ([]byte, *trace.Trace) {
	t.Helper()
	cfg := Config{K: 4, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }}
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetStepped(mode.stepped)
	m.SetFullScan(mode.fullScan)
	if mode.workers > 0 {
		p := exec.NewPool(mode.workers)
		defer p.Close()
		m.SetPool(p)
	}
	var ws []trace.FaultWindow
	if spec != "" {
		sp, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaults(fault.New(sp, 99))
		ws = trace.WindowsFromSpec(sp)
	}
	tr := m.EnableTrace(TraceConfig{Seed: 0xfeed, SampleEvery: sampleEvery, EpochCycles: 512})
	src := rng.New(21)
	for _, at := range []int64{0, 900, 2600} {
		for i := 0; i < 60; i++ {
			s, d := src.Intn(m.Nodes()), src.Intn(m.Nodes())
			if s == d {
				d = (d + 1) % m.Nodes()
			}
			m.SendAt(at+int64(src.Intn(20)), s, d, src.IntRange(1, 6))
		}
	}
	m.Run(4000)
	m.Drain(6000)
	tr.Finish(m.Cycle())
	return traceArtifacts(t, tr, ws), tr
}

// TestTraceByteIdenticalAcrossModes pins the flight recorder's central
// contract: with full sampling and an active fault spec, the JSONL
// spans, the Chrome trace, and the rollup table are byte-identical
// across stepped, event-driven, full-scan, and sharded-parallel
// stepping.
func TestTraceByteIdenticalAcrossModes(t *testing.T) {
	const spec = "stall(router=5,port=1,at=300,dur=400);freeze(router=6,at=1000,dur=200)"
	base, btr := traceRun(t, traceModes[0], 1, spec)
	if len(btr.Records()) == 0 {
		t.Fatal("scenario degenerate: no records traced")
	}
	if btr.Dropped() != 0 {
		t.Fatalf("baseline dropped %d records; grow the rings", btr.Dropped())
	}
	for _, mode := range traceModes[1:] {
		got, gtr := traceRun(t, mode, 1, spec)
		if gtr.Dropped() != 0 {
			t.Fatalf("%s: dropped %d records", mode.name, gtr.Dropped())
		}
		if !bytes.Equal(base, got) {
			t.Errorf("%s: trace artifacts diverge from stepped oracle (%d vs %d bytes)",
				mode.name, len(base), len(got))
		}
	}
}

// TestTraceSampledSubset pins that sampling selects by packet id, not
// by record availability: every record of a 1-in-4 run also appears in
// the full-sampling run, and the sampled ids agree with the Sampler.
func TestTraceSampledSubset(t *testing.T) {
	full, ftr := traceRun(t, traceModes[0], 1, "")
	_ = full
	sub, str := traceRun(t, traceModes[0], 4, "")
	_ = sub
	if str.Dropped() != 0 || ftr.Dropped() != 0 {
		t.Fatal("rings overflowed; grow them")
	}
	fullSet := map[trace.Record]bool{}
	for _, r := range ftr.Records() {
		fullSet[r] = true
	}
	recs := str.Records()
	if len(recs) == 0 {
		t.Fatal("1-in-4 sampling traced nothing")
	}
	if len(recs) >= len(fullSet) {
		t.Fatalf("sampling did not thin records: %d of %d", len(recs), len(fullSet))
	}
	s := str.Sampler()
	for _, r := range recs {
		if !fullSet[r] {
			t.Fatalf("sampled record absent from full run: %+v", r)
		}
		if !s.Sample(r.PktID) {
			t.Fatalf("record for unsampled packet %d", r.PktID)
		}
	}
}

// TestTraceAuditClean runs the span auditor over a faulted cross-mode
// scenario and requires zero invariant violations.
func TestTraceAuditClean(t *testing.T) {
	_, tr := traceRun(t, traceModes[1], 1, "stall(router=5,port=1,at=300,dur=400)")
	viol := 0
	n := trace.Audit(tr.Records(), func(cycle int64, invariant string, flow int, format string, argv ...any) {
		viol++
		t.Errorf("cycle %d %s flow %d: "+format, append([]any{cycle, invariant, flow}, argv...)...)
	})
	if n != viol {
		t.Fatalf("Audit returned %d but reported %d violations", n, viol)
	}
}

// FuzzTraceOracle fuzzes the cross-mode byte-identity contract over
// the sampling seed, the traffic seed, and the fault windows: stepped
// and event-driven runs of the same scenario must export identical
// bytes, and the auditor must stay silent.
func FuzzTraceOracle(f *testing.F) {
	f.Add(uint64(1), int64(7), 300, 400)
	f.Add(uint64(0xfeed), int64(21), 0, 0)
	f.Add(uint64(42), int64(3), 950, 60)
	f.Fuzz(func(t *testing.T, seed uint64, traffic int64, at, dur int) {
		if at < 0 || dur < 0 || at > 3000 || dur > 2000 {
			t.Skip()
		}
		spec := ""
		if dur > 0 {
			spec = fmt.Sprintf("stall(router=5,port=1,at=%d,dur=%d)", at, dur)
		}
		run := func(stepped bool) ([]byte, *trace.Trace) {
			cfg := Config{K: 3, VCs: 2, BufFlits: 4,
				NewArb: func() sched.Scheduler { return core.New() }}
			m, err := NewMesh(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetStepped(stepped)
			var ws []trace.FaultWindow
			if spec != "" {
				sp, err := fault.Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				m.InstallFaults(fault.New(sp, 99))
				ws = trace.WindowsFromSpec(sp)
			}
			tr := m.EnableTrace(TraceConfig{Seed: seed, SampleEvery: 1, EpochCycles: 256})
			src := rng.New(uint64(traffic))
			for _, a := range []int64{0, 700} {
				for i := 0; i < 25; i++ {
					s, d := src.Intn(m.Nodes()), src.Intn(m.Nodes())
					if s == d {
						d = (d + 1) % m.Nodes()
					}
					m.SendAt(a+int64(src.Intn(15)), s, d, src.IntRange(1, 5))
				}
			}
			m.Run(1500)
			m.Drain(4000)
			tr.Finish(m.Cycle())
			return traceArtifacts(t, tr, ws), tr
		}
		base, btr := run(true)
		got, _ := run(false)
		if !bytes.Equal(base, got) {
			t.Fatalf("stepped and event trace artifacts diverge (%d vs %d bytes)", len(base), len(got))
		}
		if n := trace.Audit(btr.Records(), func(cycle int64, invariant string, flow int, format string, argv ...any) {
			t.Errorf("cycle %d %s flow %d: "+format, append([]any{cycle, invariant, flow}, argv...)...)
		}); n != 0 {
			t.Fatalf("%d span-invariant violations", n)
		}
	})
}

// TestTraceDisabledInstallsNothing pins the contract behind the
// overhead gate's no-op control: with SampleEvery <= 0, EnableTrace
// leaves the mesh untouched — no inject/deliver hook, no router
// tracers — so running with the recorder disabled is structurally the
// run without a recorder, and the returned Trace stays empty.
func TestTraceDisabledInstallsNothing(t *testing.T) {
	m, err := NewMesh(Config{K: 4, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTrace(TraceConfig{Seed: 1, SampleEvery: 0})
	if m.tr != nil {
		t.Fatal("EnableTrace(SampleEvery=0) attached a recorder to the mesh")
	}
	src := rng.New(3)
	for i := 0; i < 40; i++ {
		m.Send(src.Intn(m.Nodes()), src.Intn(m.Nodes()), src.IntRange(1, 4))
	}
	m.Run(500)
	m.Drain(4000)
	tr.Finish(m.Cycle())
	if n := len(tr.Records()); n != 0 {
		t.Fatalf("disabled recorder collected %d records", n)
	}
	if got := tr.Rollup().Latency().Count(); got != 0 {
		t.Fatalf("disabled recorder observed %d latencies", got)
	}
}
