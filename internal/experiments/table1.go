package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Table1Params parameterises the empirical check attached to the
// paper's Table 1. The workload is the Figure 4 one (8 flows, skewed
// rates and lengths, oversubscribed so everything is backlogged);
// the fairness measure is taken over the second half of the run,
// after the warm-up transient, as the max over all sub-intervals.
type Table1Params struct {
	Fig4 Fig4Params
	// Workers caps the worker pool running the per-discipline jobs
	// (0 = GOMAXPROCS, 1 = serial). The result is byte-identical for
	// every value.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
}

// DefaultTable1Params returns paper-scale parameters.
func DefaultTable1Params() Table1Params {
	return Table1Params{Fig4: DefaultFig4Params()}
}

// Table1Row is one discipline's row: the analytic bounds from the
// paper's Table 1 next to the measured fairness.
type Table1Row struct {
	Discipline string
	// FairnessBound is the paper's relative fairness bound, as a
	// formula string ("3m", "Max + 2m", "m", "inf").
	FairnessBound string
	// BoundFlits is the bound evaluated at the workload's m and Max
	// (0 when the bound is infinite).
	BoundFlits int64
	// MeasuredFM is the measured fairness measure, in flits, over the
	// second half of the run.
	MeasuredFM int64
	// Complexity is the work complexity from the paper's Table 1.
	Complexity string
}

// Table1Result is the reproduced table.
type Table1Result struct {
	Params Table1Params
	// M is the largest packet that actually arrived (the paper's m);
	// Max is the largest that may arrive (128 in this workload).
	M, Max int64
	Rows   []Table1Row
}

// RunTable1 measures the fairness of every Table 1 discipline on the
// identical workload.
func RunTable1(p Table1Params) (*Table1Result, error) {
	type mk struct {
		name, bound, complexity string
		pkt                     func() sched.Scheduler
		flit                    func() sched.FlitScheduler
		boundFn                 func(m, max int64) int64
	}
	mks := []mk{
		{name: "PBRR", bound: "inf", complexity: "O(1)",
			pkt: func() sched.Scheduler { return sched.NewPBRR() }},
		{name: "FCFS", bound: "inf", complexity: "O(1)",
			pkt: func() sched.Scheduler { return sched.NewFCFS() }},
		{name: "FQ (WFQ)", bound: "m", complexity: "O(log n)",
			pkt:     func() sched.Scheduler { return sched.NewWFQ(nil) },
			boundFn: func(m, max int64) int64 { return m }},
		{name: "DRR", bound: "Max + 2m", complexity: "O(1)",
			pkt:     func() sched.Scheduler { return sched.NewDRR(p.Fig4.DRRQuantum, nil) },
			boundFn: func(m, max int64) int64 { return max + 2*m }},
		{name: "ERR", bound: "3m", complexity: "O(1)",
			pkt:     func() sched.Scheduler { return core.New() },
			boundFn: func(m, max int64) int64 { return 3 * m }},
	}
	// One job per discipline, all on the identical workload; the
	// measured FM and the largest arrived packet reduce in submission
	// order afterwards (m is a max, so it is order-independent anyway).
	// Fields are exported so the result round-trips the JSONL
	// checkpoint.
	type disc struct {
		FM     int64
		MaxLen int64
	}
	jobs := make([]exec.Job[disc], len(mks))
	for i, m := range mks {
		i, m := i, m
		jobs[i] = func() (disc, error) {
			ft := metrics.NewFairnessTracker(p.Fig4.Flows)
			var maxLen int64
			window := p.Fig4.Cycles / 2
			cfg := engine.Config{
				Flows:  p.Fig4.Flows,
				Source: fig4Source(p.Fig4),
				OnFlit: func(cycle int64, flow int) {
					if cycle >= window {
						ft.Serve(flow, 1)
					}
				},
				OnDeparture: func(pk flit.Packet, cycle, occ int64) {
					if int64(pk.Length) > maxLen {
						maxLen = int64(pk.Length)
					}
				},
			}
			if m.pkt != nil {
				cfg.Scheduler = m.pkt()
			} else {
				cfg.FlitSched = m.flit()
			}
			inj, chk, err := applyRobustness(p.Fig4.Robustness, p.Fig4.faultSeed(p.Fig4.Seed, i), &cfg)
			if err != nil {
				return disc{}, err
			}
			e, err := engine.NewEngine(cfg)
			if err != nil {
				return disc{}, err
			}
			if chk != nil {
				chk.Attach(e, cfg.Scheduler)
			}
			if err := runChecked(e, chk, p.Fig4.Cycles); err != nil {
				return disc{}, err
			}
			registerFaultCounters(obs.Default(), inj.Counters(), e.Rejected())
			return disc{FM: ft.FM(), MaxLen: maxLen}, nil
		}
	}
	opts, closeCP, err := gridOptions("table1", p, p.Fig4.Checkpoint, p.Fig4.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	discs, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Params: p, Max: 128}
	for i, m := range mks {
		if discs[i].MaxLen > res.M {
			res.M = discs[i].MaxLen
		}
		res.Rows = append(res.Rows, Table1Row{
			Discipline:    m.name,
			FairnessBound: m.bound,
			MeasuredFM:    discs[i].FM,
			Complexity:    m.complexity,
		})
	}
	// Evaluate the numeric bounds with the workload's final m.
	for i, m := range mks {
		if m.boundFn != nil {
			res.Rows[i].BoundFlits = m.boundFn(res.M, res.Max)
		}
	}
	return res, nil
}

// Render writes the table.
func (r *Table1Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 1 — fairness measure and work complexity (m=%d, Max=%d flits)\n", r.M, r.Max)
	fmt.Fprintln(tw, "Discipline\tFairness bound\tBound (flits)\tMeasured FM (flits)\tComplexity")
	for _, row := range r.Rows {
		bound := "inf"
		if row.BoundFlits > 0 {
			bound = fmt.Sprintf("%d", row.BoundFlits)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n",
			row.Discipline, row.FairnessBound, bound, row.MeasuredFM, row.Complexity)
	}
	return tw.Flush()
}
