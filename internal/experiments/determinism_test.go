package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunsAreDeterministic pins the reproducibility guarantee the
// paper's multi-user motivation asks for ("repeatable performance
// necessary for benchmark applications"): identical parameters and
// seed must render bit-identical artifacts, run to run.
func TestRunsAreDeterministic(t *testing.T) {
	render := func() string {
		p := DefaultTable1Params()
		p.Fig4.Cycles = 100_000
		res, err := RunTable1(p)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("two identical Table 1 runs rendered differently")
	}

	fig6 := func() string {
		p := smallFig6()
		p.Cycles = 50_000
		p.Intervals = 300
		p.MaxFlows = 3
		res, err := RunFig6(p)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if fig6() != fig6() {
		t.Fatal("two identical Figure 6 runs rendered differently")
	}

	// And a different seed must actually change the outcome (the seed
	// is not being ignored).
	p1 := smallFig4()
	p1.Cycles = 50_000
	a, err := RunFig4(p1, "a")
	if err != nil {
		t.Fatal(err)
	}
	p1.Seed = 999
	b, err := RunFig4(p1, "a")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for f := range a.KBytes[0] {
		if a.KBytes[0][f] != b.KBytes[0][f] {
			same = false
		}
	}
	if same {
		t.Error("changing the seed did not change the workload")
	}
}

// TestDeterminismUnderConcurrency runs several seeded experiments as
// parallel subtests, each rendering the same configuration twice at
// different worker counts. Under -race this doubles as a data-race
// sweep of the worker pool; functionally it pins that concurrent
// experiment runs cannot contaminate each other's results (every
// simulation owns its RNG state — nothing is package-global).
func TestDeterminismUnderConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("fig6-workers-%d", workers), func(t *testing.T) {
			t.Parallel()
			render := func() string {
				p := smallFig6()
				p.Cycles = 30_000
				p.Intervals = 150
				p.MaxFlows = 3
				p.Workers = workers
				res, err := RunFig6(p)
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := res.Render(&sb); err != nil {
					t.Fatal(err)
				}
				return sb.String()
			}
			if render() != render() {
				t.Errorf("fig6 with Workers=%d rendered differently run to run", workers)
			}
		})
		t.Run(fmt.Sprintf("gap-workers-%d", workers), func(t *testing.T) {
			t.Parallel()
			render := func() string {
				p := DefaultGapParams()
				p.Cycles = 30_000
				p.Workers = workers
				res, err := RunGap(p)
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := res.Render(&sb); err != nil {
					t.Fatal(err)
				}
				return sb.String()
			}
			if render() != render() {
				t.Errorf("gap with Workers=%d rendered differently run to run", workers)
			}
		})
	}
}
