package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWeightedSharesProportional(t *testing.T) {
	p := DefaultWeightedParams()
	p.Cycles = 300_000
	res, err := RunWeighted(p)
	if err != nil {
		t.Fatal(err)
	}
	for f := range res.Share {
		if math.Abs(res.Share[f]-res.WantShare[f]) > 0.01 {
			t.Errorf("class %d share %.4f, want %.4f", f, res.Share[f], res.WantShare[f])
		}
	}
	// Higher-weight classes see lower delays (they drain faster).
	if !(res.MeanDelay[2] < res.MeanDelay[1] && res.MeanDelay[1] < res.MeanDelay[0]) {
		t.Errorf("delays not ordered by weight: %v", res.MeanDelay)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Weighted ERR") {
		t.Error("render missing title")
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := RunWeighted(WeightedParams{Cycles: 100, Weights: []int64{1}}); err == nil {
		t.Error("single class accepted")
	}
}

func TestGapERRBoundedJitter(t *testing.T) {
	p := DefaultGapParams()
	p.Cycles = 300_000
	res, err := RunGap(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for i, d := range res.Disciplines {
		byName[d] = res.MaxGap[i]
	}
	// All round-robin family gaps are bounded by roughly one round:
	// n * (per-opportunity service) ~ n * (1 + maxSC + m). FCFS's worst
	// gap is set by burst luck and is much larger on this workload.
	if byName["ERR"] <= 0 {
		t.Fatal("no gaps measured")
	}
	// ERR's worst gap must be within the order of a round: with n=8
	// flows and m=64, a round serves at most ~n*(2m) flits.
	bound := int64(8 * 4 * 64)
	if byName["ERR"] > bound {
		t.Errorf("ERR worst gap %d implausibly large (> %d)", byName["ERR"], bound)
	}
	// FCFS jitter dominates every round-robin discipline's.
	if byName["FCFS"] <= byName["ERR"] {
		t.Errorf("FCFS worst gap %d not worse than ERR's %d", byName["FCFS"], byName["ERR"])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Inter-service gap") {
		t.Error("render missing title")
	}
}

func TestNoCSweepShapes(t *testing.T) {
	p := DefaultNoCSweepParams()
	p.Rates = []float64{0.005, 0.03}
	p.WarmCycles = 15_000
	res, err := RunNoCSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for d, name := range res.Disciplines {
		if res.Latency[d][1] <= res.Latency[d][0] {
			t.Errorf("%s latency did not grow with load: %v", name, res.Latency[d])
		}
		if res.Delivered[d][1] <= res.Delivered[d][0] {
			t.Errorf("%s throughput did not grow with load: %v", name, res.Delivered[d])
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "load-latency") {
		t.Error("render missing title")
	}
}

func TestNoCSweepTorus(t *testing.T) {
	p := DefaultNoCSweepParams()
	p.Torus = true
	p.Rates = []float64{0.01}
	p.WarmCycles = 10_000
	res, err := RunNoCSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency[0][0] <= 0 {
		t.Error("torus sweep produced no latency")
	}
}
