package noc

import "repro/internal/rng"

// Pattern chooses a destination node for a packet injected at src.
type Pattern interface {
	// Dest returns the destination node for a packet from src.
	Dest(src int, s *rng.Source) int
	// Name identifies the pattern in experiment output.
	Name() string
}

// Uniform sends to a destination chosen uniformly among all other
// nodes.
type Uniform struct{ Nodes int }

// Dest implements Pattern.
func (u Uniform) Dest(src int, s *rng.Source) int {
	d := s.Intn(u.Nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Hotspot sends to Node with probability Frac, otherwise uniformly —
// the classic congestion-forming pattern, and the one that stresses
// arbitration fairness the hardest (many sources contend for the
// links converging on the hotspot).
type Hotspot struct {
	Nodes int
	Node  int
	Frac  float64
}

// Dest implements Pattern.
func (h Hotspot) Dest(src int, s *rng.Source) int {
	if src != h.Node && s.Bernoulli(h.Frac) {
		return h.Node
	}
	return Uniform{Nodes: h.Nodes}.Dest(src, s)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Transpose sends (x, y) -> (y, x); nodes on the diagonal send
// uniformly.
type Transpose struct{ K int }

// Dest implements Pattern.
func (t Transpose) Dest(src int, s *rng.Source) int {
	x, y := src%t.K, src/t.K
	if x == y {
		return Uniform{Nodes: t.K * t.K}.Dest(src, s)
	}
	return x*t.K + y
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// Injector drives a Mesh with Bernoulli packet injection per node.
type Injector struct {
	Mesh *Mesh
	// Rate is the per-node injection probability per cycle.
	Rate float64
	// Pattern picks destinations.
	Pattern Pattern
	// Lengths draws packet lengths in flits.
	Lengths rng.LengthDist
	// Src is the randomness stream.
	Src *rng.Source
	// MaxPending caps the per-node injection queue so an overloaded
	// network applies source back-pressure rather than growing an
	// unbounded queue (0 = unbounded).
	MaxPending int
	// Injected counts generated packets per node.
	Injected []int64
}

// NewInjector returns an injector over the mesh.
func NewInjector(m *Mesh, rate float64, p Pattern, lengths rng.LengthDist, src *rng.Source) *Injector {
	if rate < 0 || rate > 1 {
		panic("noc: injection rate outside [0,1]")
	}
	return &Injector{
		Mesh: m, Rate: rate, Pattern: p, Lengths: lengths, Src: src,
		Injected: make([]int64, m.Nodes()),
	}
}

// Step generates this cycle's new packets (call before Mesh.Step).
func (in *Injector) Step() {
	for node := 0; node < in.Mesh.Nodes(); node++ {
		if in.MaxPending > 0 && in.Mesh.PendingAt(node) >= in.MaxPending {
			continue
		}
		if !in.Src.Bernoulli(in.Rate) {
			continue
		}
		dst := in.Pattern.Dest(node, in.Src)
		in.Mesh.Send(node, dst, in.Lengths.Draw(in.Src))
		in.Injected[node]++
	}
}
