package sched

import "time"

// This file defines the wall-clock accounting contract used when a
// discipline schedules real work — HTTP requests whose cost is the
// wall-clock time a handler takes — instead of simulated packets.
//
// The central constraint is unchanged: a request's cost is unknown
// until its handler returns, exactly as a wormhole packet's occupancy
// is unknown until its tail flit passes. What changes is concurrency:
// a live server dispatches up to W requests at once, so completions
// arrive out of order and possibly long after the service opportunity
// that dispatched them ended. AsyncScheduler extends the Scheduler
// shape for that world: selection stays synchronous (the dispatcher
// serializes calls under its lock), but cost is billed on completion
// via an opportunity token, never needed up front.

// CostClock quantizes measured wall-clock service durations into the
// integer cost units a scheduler bills. The unit is the granularity of
// fairness: with Unit = 1ms, two requests that both finish in under a
// millisecond cost the same, and a 5s handler costs 5000 units.
type CostClock struct {
	// Unit is the duration of one cost unit. A zero or negative Unit
	// defaults to one millisecond.
	Unit time.Duration
}

// Cost returns the cost of a service that took d, rounding up and
// clamping to a minimum of 1 so that even a free request consumes one
// unit of its flow's allowance (a scheduler cost must be >= 1).
func (c CostClock) Cost(d time.Duration) int64 {
	unit := c.Unit
	if unit <= 0 {
		unit = time.Millisecond
	}
	if d <= 0 {
		return 1
	}
	n := int64((d + unit - 1) / unit)
	if n < 1 {
		n = 1
	}
	return n
}

// AsyncScheduler selects which flow's head request is dispatched next
// in a server that runs many requests concurrently and learns each
// request's cost only when it completes. The dispatcher owns the
// per-flow FIFO queues and serializes every call below under one
// lock; implementations need not be safe for concurrent use.
//
// The calls:
//
//   - OnArrival when a request is appended to a flow's queue,
//   - NextFlow when the dispatcher has a free worker slot; unlike
//     Scheduler.NextFlow it may return -1 when no flow is
//     dispatchable,
//   - OnDispatch when a request from the returned flow enters
//     service; the returned token identifies the service opportunity
//     that paid for the dispatch,
//   - OnEvicted when requests leave a flow's queue without service
//     (deadline expiry, load shedding, drain),
//   - OnServiceDone when a dispatched request completes, with the
//     measured cost (CostClock units). Completions may arrive in any
//     order and for opportunities that have long since closed — the
//     scheduler must bill late costs to the flow's accumulated state
//     (ERR: its surplus count), not to the current opportunity.
type AsyncScheduler interface {
	// Name returns a short identifier used in metrics and manifests.
	Name() string

	// OnArrival notifies that a request joined flow's queue; wasEmpty
	// reports whether the queue was empty immediately before.
	OnArrival(flow int, wasEmpty bool)

	// NextFlow returns the flow to dispatch from next, or -1 when no
	// flow has a dispatchable request. The dispatcher guarantees a
	// returned flow held at least one queued request when its queue
	// state was last reported; it re-checks the queue and reports
	// divergence via OnEvicted.
	NextFlow() int

	// OnDispatch reports that one request from flow (the flow most
	// recently returned by NextFlow) entered service. nowEmpty reports
	// whether the flow's queue is empty after the dequeue. The token
	// must be passed back to OnServiceDone.
	OnDispatch(flow int, nowEmpty bool) (token int64)

	// OnEvicted reports that flow's queue lost one or more requests
	// without service; nowEmpty reports whether it is now empty.
	OnEvicted(flow int, nowEmpty bool)

	// OnServiceDone reports that a request dispatched from flow under
	// token completed at the given measured cost (>= 1; smaller values
	// are treated as 1).
	OnServiceDone(flow int, token int64, cost int64)
}
