// Package noc builds a k-ary 2-mesh network-on-chip out of the
// wormhole routers of package wormhole: dimension-order (XY) routing,
// per-node injection and ejection, synthetic traffic patterns, and
// end-to-end latency/throughput metrics. It is the multi-switch
// substrate demonstrating the paper's scheduler inside the system it
// was designed for: every router output port is arbitrated by a
// pluggable discipline (ERR by default) billed in occupancy cycles.
package noc

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/wormhole"
)

// Mesh port numbering: port 0 is the local injection/ejection port.
const (
	PortLocal = iota
	PortEast
	PortWest
	PortNorth
	PortSouth
	numPorts
)

// Config configures a Mesh.
type Config struct {
	// K is the radix: the network has K x K nodes.
	K int
	// VCs is the number of virtual channels per port. For a torus it
	// must be even: the lower half carries packets that have not yet
	// crossed a dateline, the upper half those that have.
	VCs int
	// BufFlits is the input VC buffer depth in flits.
	BufFlits int
	// NewArb constructs each router output arbiter; it must satisfy
	// sched.HeadOfLineArb (ERR, PBRR, WRR).
	NewArb func() sched.Scheduler
	// Torus adds wraparound links in both dimensions, with minimal
	// (shortest-direction) dimension-order routing and dateline VC
	// switching for deadlock freedom.
	Torus bool
	// SharedBufFlits, when > 0, gives each router input port a
	// dynamically allocated multi-queue (DAMQ) buffer of this many
	// flits shared across its VCs, with BufFlits reserved per VC.
	SharedBufFlits int
	// SharedBufCap limits one VC's occupancy of the shared buffer
	// (anti-hogging; 0 = unlimited).
	SharedBufCap int
}

// injState is the per-node injection front end: one packet is fed
// into the local input port at one flit per cycle.
type injState struct {
	queue  []flit.Packet
	flits  []flit.Flit
	next   int
	vc     int
	nextVC int
}

// Mesh is a K x K wormhole mesh (or torus, when Config.Torus is set).
type Mesh struct {
	cfg     Config
	routers []*wormhole.Router
	sinks   []*wormhole.Sink
	inj     []injState
	cycle   int64
	nextID  int64

	injectTime map[int64]int64

	// Latency accumulates end-to-end packet latencies (inject of head
	// flit enqueued -> tail flit ejected).
	Latency stats.Welford
	// DeliveredFlits counts ejected flits per source node.
	DeliveredFlits []int64
	// DeliveredPackets counts ejected packets per source node.
	DeliveredPackets []int64
}

// NewMesh validates cfg and builds the network.
func NewMesh(cfg Config) (*Mesh, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("noc: mesh radix %d < 2", cfg.K)
	}
	if cfg.NewArb == nil {
		return nil, fmt.Errorf("noc: NewArb is required")
	}
	if cfg.Torus && (cfg.VCs < 2 || cfg.VCs%2 != 0) {
		return nil, fmt.Errorf("noc: torus dateline routing needs an even VC count >= 2, got %d", cfg.VCs)
	}
	n := cfg.K * cfg.K
	m := &Mesh{
		cfg:              cfg,
		routers:          make([]*wormhole.Router, n),
		sinks:            make([]*wormhole.Sink, n),
		inj:              make([]injState, n),
		injectTime:       make(map[int64]int64),
		DeliveredFlits:   make([]int64, n),
		DeliveredPackets: make([]int64, n),
	}
	for id := 0; id < n; id++ {
		id := id
		rcfg := wormhole.Config{
			Ports:          numPorts,
			VCs:            cfg.VCs,
			BufFlits:       cfg.BufFlits,
			SharedBufFlits: cfg.SharedBufFlits,
			SharedBufCap:   cfg.SharedBufCap,
			NewArb:         cfg.NewArb,
			Route:          func(dst int) int { return m.route(id, dst) },
		}
		if cfg.Torus {
			rcfg.OutVC = func(outPort int, head flit.Flit, inPort, inVC int) int {
				return m.torusOutVC(id, outPort, inPort, inVC)
			}
		}
		r, err := wormhole.NewRouter(id, rcfg)
		if err != nil {
			return nil, err
		}
		m.routers[id] = r
	}
	// Wire neighbours and ejection sinks.
	for y := 0; y < cfg.K; y++ {
		for x := 0; x < cfg.K; x++ {
			id := m.NodeID(x, y)
			if x+1 < cfg.K {
				east := m.NodeID(x+1, y)
				wormhole.Connect(m.routers[id], PortEast, m.routers[east], PortWest)
				wormhole.Connect(m.routers[east], PortWest, m.routers[id], PortEast)
			}
			if y+1 < cfg.K {
				south := m.NodeID(x, y+1)
				wormhole.Connect(m.routers[id], PortSouth, m.routers[south], PortNorth)
				wormhole.Connect(m.routers[south], PortNorth, m.routers[id], PortSouth)
			}
			sink := &wormhole.Sink{}
			sink.OnTail = m.onTail
			sink.OnFlit = m.onFlit
			m.sinks[id] = sink
			wormhole.ConnectEndpoint(m.routers[id], PortLocal, sink)
		}
	}
	if cfg.Torus {
		// Wraparound links: (K-1, y) <-> (0, y) and (x, K-1) <-> (x, 0).
		for y := 0; y < cfg.K; y++ {
			east := m.NodeID(cfg.K-1, y)
			west := m.NodeID(0, y)
			wormhole.Connect(m.routers[east], PortEast, m.routers[west], PortWest)
			wormhole.Connect(m.routers[west], PortWest, m.routers[east], PortEast)
		}
		for x := 0; x < cfg.K; x++ {
			south := m.NodeID(x, cfg.K-1)
			north := m.NodeID(x, 0)
			wormhole.Connect(m.routers[south], PortSouth, m.routers[north], PortNorth)
			wormhole.Connect(m.routers[north], PortNorth, m.routers[south], PortSouth)
		}
	}
	return m, nil
}

// torusOutVC implements dateline virtual-channel switching: packets
// start (and restart on every dimension change) in the lower half of
// the VCs; the hop that crosses a wraparound link moves them to the
// upper half. Within each unidirectional ring this breaks the channel
// dependency cycle, so minimal dimension-order routing on the torus
// is deadlock-free.
func (m *Mesh) torusOutVC(at, outPort, inPort, inVC int) int {
	if outPort == PortLocal {
		return inVC // ejection: VC is immaterial
	}
	half := m.cfg.VCs / 2
	vc := inVC
	if dimOf(outPort) != dimOf(inPort) || inPort == PortLocal {
		vc = inVC % half // fresh dimension: back to the lower half
	}
	if m.crossesWrap(at, outPort) && vc < half {
		vc += half
	}
	return vc
}

// dimOf returns the dimension a port belongs to (0 = X, 1 = Y,
// 2 = local).
func dimOf(port int) int {
	switch port {
	case PortEast, PortWest:
		return 0
	case PortNorth, PortSouth:
		return 1
	default:
		return 2
	}
}

// crossesWrap reports whether forwarding out of the given port of
// node at traverses a wraparound link.
func (m *Mesh) crossesWrap(at, outPort int) bool {
	x, y := m.Coords(at)
	switch outPort {
	case PortEast:
		return x == m.cfg.K-1
	case PortWest:
		return x == 0
	case PortSouth:
		return y == m.cfg.K-1
	case PortNorth:
		return y == 0
	default:
		return false
	}
}

// NodeID maps mesh coordinates to a node id.
func (m *Mesh) NodeID(x, y int) int { return y*m.cfg.K + x }

// Coords maps a node id to mesh coordinates.
func (m *Mesh) Coords(id int) (x, y int) { return id % m.cfg.K, id / m.cfg.K }

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.cfg.K * m.cfg.K }

// route implements dimension-order (XY) routing: on the mesh it is
// deadlock-free outright; on the torus it picks the minimal ring
// direction per dimension and relies on dateline VC switching for
// deadlock freedom.
func (m *Mesh) route(at, dst int) int {
	ax, ay := m.Coords(at)
	dx, dy := m.Coords(dst)
	if dx != ax {
		if !m.cfg.Torus {
			if dx > ax {
				return PortEast
			}
			return PortWest
		}
		return ringDir(ax, dx, m.cfg.K, PortEast, PortWest)
	}
	if dy != ay {
		if !m.cfg.Torus {
			if dy > ay {
				return PortSouth
			}
			return PortNorth
		}
		return ringDir(ay, dy, m.cfg.K, PortSouth, PortNorth)
	}
	return PortLocal
}

// ringDir returns the minimal direction around a K-ring from a to d
// (ties go to the positive direction).
func ringDir(a, d, k, pos, neg int) int {
	fwd := (d - a + k) % k
	bwd := (a - d + k) % k
	if fwd <= bwd {
		return pos
	}
	return neg
}

func (m *Mesh) onFlit(f flit.Flit, vc int, cycle int64) {
	m.DeliveredFlits[f.Flow]++
}

func (m *Mesh) onTail(f flit.Flit, cycle int64) {
	m.DeliveredPackets[f.Flow]++
	if t0, ok := m.injectTime[f.PktID]; ok {
		m.Latency.Add(float64(cycle - t0 + 1))
		delete(m.injectTime, f.PktID)
	}
}

// Send queues a packet for injection at node src toward node dst.
// The packet's Flow is overwritten with src so per-source fairness is
// measurable at the ejection sinks.
func (m *Mesh) Send(src, dst, length int) {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic("noc: node id out of range")
	}
	if length < 1 {
		panic("noc: packet length < 1")
	}
	id := m.nextID
	m.nextID++
	p := flit.Packet{Flow: src, Length: length, Dst: dst, ID: id}
	m.injectTime[id] = m.cycle
	m.inj[src].queue = append(m.inj[src].queue, p)
}

// PendingAt returns the number of packets queued or mid-injection at
// node src.
func (m *Mesh) PendingAt(src int) int {
	st := &m.inj[src]
	n := len(st.queue)
	if st.flits != nil {
		n++
	}
	return n
}

// InFlight returns the number of packets injected (or queued) but not
// yet fully delivered.
func (m *Mesh) InFlight() int { return len(m.injectTime) }

// Cycle returns the current cycle.
func (m *Mesh) Cycle() int64 { return m.cycle }

// Step advances the whole mesh by one cycle.
func (m *Mesh) Step() {
	// Injection front ends: at most one flit per node per cycle.
	for id := range m.inj {
		st := &m.inj[id]
		if st.flits == nil && len(st.queue) > 0 {
			p := st.queue[0]
			st.queue = st.queue[1:]
			st.flits = p.Flits()
			st.next = 0
			// Torus packets must start in the lower (pre-dateline)
			// half of the VCs.
			injVCs := m.cfg.VCs
			if m.cfg.Torus {
				injVCs = m.cfg.VCs / 2
			}
			st.vc = st.nextVC % injVCs
			st.nextVC = (st.nextVC + 1) % injVCs
		}
		if st.flits != nil {
			if m.routers[id].Inject(PortLocal, st.vc, st.flits[st.next], m.cycle) {
				st.next++
				if st.next == len(st.flits) {
					st.flits = nil
				}
			}
		}
	}
	for _, r := range m.routers {
		r.Step(m.cycle)
	}
	m.cycle++
}

// Run advances the mesh by n cycles.
func (m *Mesh) Run(n int64) {
	for i := int64(0); i < n; i++ {
		m.Step()
	}
}

// Drain steps until every in-flight packet is delivered or maxCycles
// elapse; it reports whether the network drained.
func (m *Mesh) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if m.InFlight() == 0 {
			return true
		}
		m.Step()
	}
	return m.InFlight() == 0
}

// Router returns the router of a node (tests, instrumentation).
func (m *Mesh) Router(id int) *wormhole.Router { return m.routers[id] }
