package core_test

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/trace"
)

// Example shows ERR serving three flows without ever seeing a packet
// length before dequeuing it, printing the Figure 3-style round
// trace.
func Example() {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)

	d := harness.New(3, e)
	d.Arrive(flit.Packet{Flow: 0, Length: 9})
	d.Arrive(flit.Packet{Flow: 1, Length: 3})
	d.Arrive(flit.Packet{Flow: 2, Length: 5})
	d.Arrive(flit.Packet{Flow: 0, Length: 2})
	d.Drain()

	trace.WriteRecorderTable(os.Stdout, rec)
	// Output:
	// Round 1 (PreviousMaxSC=0, visits=3)
	//   flow 0: A=1    sent=9    SC=8
	//   flow 1: A=1    sent=3    SC=2     [drained]
	//   flow 2: A=1    sent=5    SC=4     [drained]
	//   MaxSC=8
	// Round 2 (PreviousMaxSC=8, visits=1)
	//   flow 0: A=1    sent=2    SC=1     [drained]
	//   MaxSC=1
}

// ExampleNewWeighted demonstrates proportional sharing with integer
// weights.
func ExampleNewWeighted() {
	weights := []int64{1, 3}
	e := core.NewWeighted(func(flow int) int64 { return weights[flow] })
	d := harness.New(2, e)
	for i := 0; i < 400; i++ {
		d.Arrive(flit.Packet{Flow: 0, Length: 4})
		d.Arrive(flit.Packet{Flow: 1, Length: 4})
	}
	d.ServeN(500)
	fmt.Printf("flow1/flow0 service ratio ~ %.0f\n",
		float64(d.Served(1))/float64(d.Served(0)))
	// Output:
	// flow1/flow0 service ratio ~ 3
}
