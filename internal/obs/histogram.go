package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistogramOpts selects the bucket layout of a Histogram.
//
// The zero value (Log2 false, Width 0, Buckets 0) selects the default
// log2 layout: one bucket per power of two, which covers the full
// int64 range in 64 buckets and gives ~2x relative quantile error —
// plenty for delay/occupancy distributions that span orders of
// magnitude on long runs.
type HistogramOpts struct {
	// Log2 selects exponentially sized buckets: bucket 0 holds values
	// <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
	Log2 bool
	// Width and Buckets select a linear layout instead: Buckets
	// buckets of Width each, bucket i holding [i*Width, (i+1)*Width-1];
	// values beyond the last bucket land in an overflow bucket whose
	// reported upper bound is the exact observed maximum.
	Width   int64
	Buckets int
}

// Histogram is a fixed-bucket distribution of int64 observations.
// Observe is allocation-free: a bucket-index computation plus three
// atomic operations.
type Histogram struct {
	log2   bool
	width  int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func newHistogram(opts HistogramOpts) *Histogram {
	if !opts.Log2 && (opts.Width <= 0 || opts.Buckets <= 0) {
		opts.Log2 = true
	}
	h := &Histogram{log2: opts.Log2, width: opts.Width}
	if h.log2 {
		// Bucket 0 for v <= 0, buckets 1..64 for the 64 powers of two.
		h.counts = make([]atomic.Int64, 65)
	} else {
		// One extra overflow bucket.
		h.counts = make([]atomic.Int64, opts.Buckets+1)
	}
	return h
}

// NewHistogram returns a standalone (unregistered) histogram; tests
// and collectors that snapshot through their own structs use this.
func NewHistogram(opts HistogramOpts) *Histogram { return newHistogram(opts) }

func (h *Histogram) bucket(v int64) int {
	var i int
	if h.log2 {
		if v > 0 {
			i = bits.Len64(uint64(v))
		}
	} else {
		if v > 0 {
			i = int(v / h.width)
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
	}
	return i
}

// upper returns the inclusive upper bound of bucket i, used as the
// quantile estimate for observations that landed there.
func (h *Histogram) upper(i int) int64 {
	if h.log2 {
		if i == 0 {
			return 0
		}
		if i >= 63 {
			return h.max.Load()
		}
		return int64(1)<<i - 1
	}
	if i == len(h.counts)-1 {
		return h.max.Load()
	}
	return int64(i+1)*h.width - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 for an empty histogram).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 <= q <= 1): the upper bound of the bucket in which the q-th
// ranked observation lies. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			u := h.upper(i)
			if m := h.max.Load(); u > m {
				// The top occupied bucket's nominal bound can exceed
				// anything actually observed; the max is tighter.
				u = m
			}
			return u
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the JSON-marshalable summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
