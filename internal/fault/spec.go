// Package fault provides deterministic, seed-derived fault injection
// for the simulators: transient and permanent link stalls, router
// freezes, flit corruption and loss, and malformed-packet traffic.
// The paper's guarantees (Lemma 1, Theorem 3) are proved for a
// fault-free switch; this package manufactures exactly the failures a
// production wormhole network must survive — a stalled downstream
// link holding channels hostage, a wedged switch ASIC, a flaky wire —
// so the invariant checker (package check) can verify that the
// scheduler keeps its bounds and the system keeps making progress, or
// report precisely where it stopped.
//
// Faults are configured with a textual spec (the -faults flag of
// cmd/errsim, cmd/nocsim and cmd/switchsim):
//
//	spec      := directive ( ';' directive )*
//	directive := kind '(' key '=' value ( ',' key '=' value )* ')'
//
// Directives (keys in any order; unlisted keys take the defaults):
//
//	stall(at=C, dur=D, flow=F, port=P)
//	    Link stall: nothing traverses the link during [at, at+dur).
//	    dur=0 (the default) means permanent. In the single-server
//	    engine, flow=F stalls only packets of that flow (flow=-1, the
//	    default, stalls every flow); in a wormhole router the stall
//	    applies to output port P (port=-1 = every output).
//	freeze(router=R, at=C, dur=D)
//	    Router freeze: router R (router=-1 = every router) does
//	    nothing during [at, at+dur); dur=0 means permanent.
//	drop(p=X, port=P)
//	    Each flit traversing output port P (or any port, when -1) is
//	    lost in transit with probability X.
//	corrupt(p=X, port=P)
//	    Each delivered flit has its kind mutated with probability X
//	    (Body->Tail, Tail->Body, Head->Body — premature tails, missing
//	    tails, lost heads).
//	malformed(p=X, kind=K)
//	    The traffic source additionally emits, each cycle with
//	    probability X, a malformed packet of kind K: "zerolen" (no
//	    flits), "badflow" (unroutable flow id), "notail" (flit stream
//	    ends without a tail), "duphead" (a second head mid-packet).
//	    Injection points must reject or survive them.
//	slow(p=X, ms=D, tenant=T) / stuck(p=X, ms=D, tenant=T)
//	    Service-side handler faults for the live front end (the
//	    -faults flag of cmd/errserve): see serve.go.
//	burst(tenant=T, rps=R, at=S, dur=D) / flood(tenant=T, rps=R)
//	    Load-generator directives for adversarial tenants: see
//	    serve.go. In serve mode at/dur are milliseconds of run time.
//
// All randomness is drawn from streams derived with rng.Derive from
// the experiment seed, so a faulted run is exactly as repeatable as a
// clean one.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Malformed-packet kinds accepted by the malformed(...) directive.
const (
	MalformedZeroLen = "zerolen"
	MalformedBadFlow = "badflow"
	MalformedNoTail  = "notail"
	MalformedDupHead = "duphead"
)

// Kinds is the list of valid directive kinds, in grammar order.
var Kinds = []string{
	"stall", "freeze", "drop", "corrupt", "malformed",
	"slow", "stuck", "burst", "flood",
}

// Directive is one parsed fault directive.
type Directive struct {
	// Kind is one of Kinds.
	Kind string
	// Flow restricts an engine-mode stall to one flow (-1 = all).
	Flow int
	// Port restricts a router-mode fault to one output port (-1 = all).
	Port int
	// Router restricts a freeze to one router id (-1 = all).
	Router int
	// At is the first faulty cycle of a stall/freeze window.
	At int64
	// Dur is the window length in cycles; 0 means permanent.
	Dur int64
	// P is the per-event probability of drop/corrupt/malformed and of
	// the service-side slow/stuck handler faults.
	P float64
	// MKind is the malformed-packet kind.
	MKind string
	// Tenant restricts a service-side directive to one tenant key
	// ("" = all tenants for slow/stuck; required for burst/flood).
	Tenant string
	// MS is the handler delay of a slow/stuck directive, milliseconds.
	MS int64
	// RPS is the request rate of a burst/flood directive.
	RPS float64
}

// active reports whether a windowed directive is live at cycle.
func (d Directive) active(cycle int64) bool {
	if cycle < d.At {
		return false
	}
	return d.Dur == 0 || cycle < d.At+d.Dur
}

// Spec is a parsed fault specification.
type Spec struct {
	Directives []Directive
	// Source is the textual form the spec was parsed from.
	Source string
}

// Parse parses a fault spec. An empty string yields a nil Spec (no
// faults), which every injector constructor accepts.
func Parse(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{Source: s}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		d, err := parseDirective(raw)
		if err != nil {
			return nil, err
		}
		spec.Directives = append(spec.Directives, d)
	}
	if len(spec.Directives) == 0 {
		return nil, fmt.Errorf("fault: empty spec %q", s)
	}
	return spec, nil
}

func parseDirective(raw string) (Directive, error) {
	d := Directive{Flow: -1, Port: -1, Router: -1, MKind: MalformedZeroLen}
	open := strings.IndexByte(raw, '(')
	if open < 0 || !strings.HasSuffix(raw, ")") {
		return d, fmt.Errorf("fault: directive %q is not kind(key=value,...)", raw)
	}
	d.Kind = strings.TrimSpace(raw[:open])
	valid := false
	for _, k := range Kinds {
		if d.Kind == k {
			valid = true
			break
		}
	}
	if !valid {
		return d, fmt.Errorf("fault: unknown directive kind %q (valid kinds: %s)",
			d.Kind, strings.Join(Kinds, ", "))
	}
	body := raw[open+1 : len(raw)-1]
	for _, kv := range strings.Split(body, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return d, fmt.Errorf("fault: %s: argument %q is not key=value", d.Kind, kv)
		}
		key, val := strings.TrimSpace(kv[:eq]), strings.TrimSpace(kv[eq+1:])
		var err error
		switch key {
		case "flow":
			d.Flow, err = strconv.Atoi(val)
		case "port":
			d.Port, err = strconv.Atoi(val)
		case "router":
			d.Router, err = strconv.Atoi(val)
		case "at":
			d.At, err = strconv.ParseInt(val, 10, 64)
		case "dur":
			d.Dur, err = strconv.ParseInt(val, 10, 64)
		case "p":
			d.P, err = strconv.ParseFloat(val, 64)
			if err == nil && (d.P < 0 || d.P > 1) {
				err = fmt.Errorf("probability %v outside [0,1]", d.P)
			}
		case "kind":
			switch val {
			case MalformedZeroLen, MalformedBadFlow, MalformedNoTail, MalformedDupHead:
				d.MKind = val
			default:
				err = fmt.Errorf("unknown malformed kind %q", val)
			}
		case "tenant":
			d.Tenant = val
		case "ms":
			d.MS, err = strconv.ParseInt(val, 10, 64)
		case "rps":
			d.RPS, err = strconv.ParseFloat(val, 64)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return d, fmt.Errorf("fault: %s: key %q: %v", d.Kind, key, err)
		}
	}
	switch d.Kind {
	case "drop", "corrupt", "malformed":
		if d.P <= 0 {
			return d, fmt.Errorf("fault: %s requires p > 0", d.Kind)
		}
	case "stall", "freeze":
		if d.At < 0 || d.Dur < 0 {
			return d, fmt.Errorf("fault: %s window must have at >= 0, dur >= 0", d.Kind)
		}
	case "slow", "stuck":
		if d.P <= 0 {
			return d, fmt.Errorf("fault: %s requires p > 0", d.Kind)
		}
		if d.MS <= 0 {
			return d, fmt.Errorf("fault: %s requires ms > 0", d.Kind)
		}
	case "burst", "flood":
		if d.Tenant == "" {
			return d, fmt.Errorf("fault: %s requires tenant=...", d.Kind)
		}
		if d.RPS <= 0 {
			return d, fmt.Errorf("fault: %s requires rps > 0", d.Kind)
		}
		if d.Kind == "burst" && (d.At < 0 || d.Dur <= 0) {
			return d, fmt.Errorf("fault: burst window must have at >= 0, dur > 0")
		}
	}
	return d, nil
}

// String returns the textual form the spec was parsed from.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	return s.Source
}

// only returns the directives of one kind.
func (s *Spec) only(kind string) []Directive {
	if s == nil {
		return nil
	}
	var out []Directive
	for _, d := range s.Directives {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}
