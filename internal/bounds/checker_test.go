package bounds

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// countReporter tallies reports per invariant.
type countReporter struct {
	n    int
	last string
}

func (c *countReporter) Report(cycle int64, invariant string, flow int, format string, argv ...any) {
	c.n++
	c.last = invariant
}

// TestEnvelopeEstimator drives OnInject directly and checks the
// streaming tightest-burst measurement against hand-computed values.
func TestEnvelopeEstimator(t *testing.T) {
	cfg := Config{C: 1, Flows: []FlowSpec{
		{Weight: 1, LMin: 1, LMax: 100, Arrival: TokenBucket{Sigma: 0, Rho: 1}},
	}}
	c, err := NewChecker(cfg, "WRR", &countReporter{})
	if err != nil {
		t.Fatal(err)
	}
	// At rate 1, a 5-flit packet at t=0 needs burst 5.
	c.OnInject(flit.Packet{Flow: 0, Length: 5}, 0)
	if got := c.Report()[0].SigmaHat; math.Abs(got-5) > 1e-9 {
		t.Fatalf("sigma after first packet %v, want 5", got)
	}
	// 10 idle cycles bank 10 tokens; another 5-flit packet fits the
	// same burst.
	c.OnInject(flit.Packet{Flow: 0, Length: 5}, 10)
	if got := c.Report()[0].SigmaHat; math.Abs(got-5) > 1e-9 {
		t.Fatalf("sigma after banked packet %v, want 5", got)
	}
	// A back-to-back packet at the same cycle forces a larger burst:
	// deviation is now 10+7 - 10 - min(-5) ... = 12.
	c.OnInject(flit.Packet{Flow: 0, Length: 7}, 10)
	if got := c.Report()[0].SigmaHat; math.Abs(got-12) > 1e-9 {
		t.Fatalf("sigma after burst %v, want 12", got)
	}
}

func TestNewCheckerValidation(t *testing.T) {
	cfg := Config{C: 1, Flows: []FlowSpec{{Weight: 1, LMin: 1, LMax: 8}}}
	if _, err := NewChecker(cfg, "FCFS", &countReporter{}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := NewChecker(cfg, "WRR", nil); err == nil {
		t.Error("nil reporter accepted")
	}
}

// checkedRun builds a 2-flow engine with the given scheduler, wires a
// checker declaring WRR service, and runs it under Bernoulli load.
// load0 is flow 0's actual arrival rate in flits/cycle (flow 1 stays
// at 0.7 of its guaranteed rate); declared envelopes are always 0.9
// of the guaranteed rate, so an overloaded flow 0 only inflates its
// own measured burst — and with it its own bound — never flow 1's.
func checkedRun(t *testing.T, s sched.Scheduler, cycles int64, load0 float64) (*Checker, *countReporter) {
	t.Helper()
	cfg := Config{C: 1, Flows: []FlowSpec{
		{Weight: 1, LMin: 4, LMax: 16},
		{Weight: 1, LMin: 4, LMax: 16},
	}}
	for i := range cfg.Flows {
		r := cfg.GuaranteedRate(DiscWRR, i)
		cfg.Flows[i].Arrival = TokenBucket{Sigma: 16, Rho: 0.9 * r}
	}
	rep := &countReporter{}
	chk, err := NewChecker(cfg, "WRR", rep)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	loads := []float64{load0, 0.7 * cfg.GuaranteedRate(DiscWRR, 1)}
	var sources []traffic.Source
	for i, f := range cfg.Flows {
		mean := float64(f.LMin+f.LMax) / 2
		sources = append(sources, traffic.NewBernoulli(i, loads[i]/mean, rng.NewUniform(f.LMin, f.LMax), src.Split()))
	}
	ecfg := engine.Config{Flows: 2, Scheduler: s, Source: traffic.NewMulti(sources...)}
	chk.Wire(&ecfg)
	e, err := engine.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(cycles)
	return chk, rep
}

// A correct WRR run must produce zero violations.
func TestCheckerCleanWRRRun(t *testing.T) {
	cleanLoad := 0.7 * (4.0 / 20.0) // 0.7 of flow 0's guaranteed rate
	chk, rep := checkedRun(t, sched.NewWRR(nil), 50_000, cleanLoad)
	if chk.Violations() != 0 || rep.n != 0 {
		t.Fatalf("clean WRR run reported %d violations", chk.Violations())
	}
	reports := chk.Report()
	for _, fr := range reports {
		if fr.Departures == 0 {
			t.Fatalf("flow %d saw no departures; the run exercised nothing", fr.Flow)
		}
		if math.IsInf(fr.DelayBound, 1) {
			t.Fatalf("flow %d delay bound infinite in a stable config", fr.Flow)
		}
		if float64(fr.MaxDelay) > fr.DelayBound {
			t.Fatalf("flow %d max delay %d above bound %v yet unreported",
				fr.Flow, fr.MaxDelay, fr.DelayBound)
		}
	}
}

// starver is the seeded mutation: it claims to be WRR but always
// serves the lowest backlogged flow — strict priority. Flow 1's
// delays then diverge, and the harness must catch them crossing the
// WRR bound.
type starver struct {
	queued  []int
	current int
}

func newStarver(n int) *starver { return &starver{queued: make([]int, n), current: -1} }

func (s *starver) Name() string { return "WRR" } // lies, deliberately

func (s *starver) OnArrival(flow int, wasEmpty bool) { s.queued[flow]++ }

func (s *starver) NextFlow() int {
	for f, n := range s.queued {
		if n > 0 {
			s.current = f
			return f
		}
	}
	panic("starver: no backlogged flow")
}

func (s *starver) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	s.queued[flow]--
	s.current = -1
}

// TestCheckerDetectsStarvation proves the harness can fail: a broken
// scheduler must produce delay-bound violations, reported under the
// bounds.delay invariant.
func TestCheckerDetectsStarvation(t *testing.T) {
	// Flow 0 offers 0.9 of the whole link: under honest WRR flow 1
	// would still get its round-robin share, but the mutant lets flow
	// 0's long busy periods starve flow 1 past its (finite) bound.
	chk, rep := checkedRun(t, newStarver(2), 50_000, 0.9)
	if chk.Violations() == 0 {
		t.Fatal("strict-priority mutant produced no bounds violations; the harness cannot detect a broken scheduler")
	}
	if rep.last != "bounds.delay" && rep.last != "bounds.backlog" {
		t.Fatalf("violations reported under %q", rep.last)
	}
	// The favoured flow must not be blamed: flow 0's service only
	// improved under the mutant.
	for _, fr := range chk.Report() {
		if fr.Flow == 0 && fr.Violations != 0 {
			t.Fatalf("flow 0 (the favoured flow) charged with %d violations", fr.Violations)
		}
	}
}

// Out-of-range lengths are reported, not silently folded into the
// envelope.
func TestCheckerFlagsDeclarationBreach(t *testing.T) {
	cfg := Config{C: 1, Flows: []FlowSpec{{Weight: 1, LMin: 4, LMax: 8, Arrival: TokenBucket{Sigma: 8, Rho: 0.5}}}}
	rep := &countReporter{}
	chk, err := NewChecker(cfg, "WRR", rep)
	if err != nil {
		t.Fatal(err)
	}
	chk.OnInject(flit.Packet{Flow: 0, Length: 32}, 0)
	if rep.n == 0 {
		t.Fatal("length outside the declared range went unreported")
	}
}
