package noc

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/wormhole"
)

// InstallFaults installs an injector's router-scoped faults on every
// router of the mesh: output-link stalls, flit drop/corruption, and
// router freezes, all addressed by node id and output port. A nil
// injector installs nothing, so the call needs no fault/no-fault
// branching at the call site.
func (m *Mesh) InstallFaults(inj *fault.Injector) {
	if inj == nil {
		return
	}
	for id, r := range m.routers {
		if f := inj.FreezeFunc(id); f != nil {
			r.SetFreeze(f)
		}
		for port := 0; port < numPorts; port++ {
			if f := inj.OutputFault(id, port); f != nil {
				r.SetOutputFault(port, f)
			}
		}
	}
	// Register every stall/freeze window edge as a wake event and
	// declare the edges known, so event-driven Run/Drain may treat
	// fault-blocked routers as dormant between edges instead of polling
	// them cycle-by-cycle (see wormhole.Router.NextEventAt). This must
	// come after the hook installs above: SetFreeze/SetOutputFault
	// withdraw the declaration.
	for _, at := range inj.WindowEdges() {
		m.ScheduleWake(at)
	}
	for _, r := range m.routers {
		r.SetFaultEdgesKnown(true)
	}
}

// CheckStreams attaches a flit-stream validator (wormhole contiguity,
// per-flow packet wellformedness) to every ejection sink, reporting
// into rec. The returned streams allow a post-drain audit: a stream
// with OpenPackets() > 0 received a head whose tail never arrived —
// the signature of a dropped or corrupted tail flit.
func (m *Mesh) CheckStreams(rec *check.Recorder) []*check.FlitStream {
	streams := make([]*check.FlitStream, len(m.sinks))
	for id := range m.sinks {
		s := m.sinks[id]
		stream := check.NewFlitStream(rec, fmt.Sprintf("sink %d", id))
		prev := s.OnFlit
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			stream.Observe(f, cycle)
			if prev != nil {
				prev(f, vc, cycle)
			}
		}
		streams[id] = stream
	}
	return streams
}

// WatchProgress feeds every flit delivery to the watchdog, so a mesh
// with in-flight packets that delivers nothing for the watchdog's
// budget is flagged as deadlocked (check the wait graph) or
// livelocked. The watchdog is also attached to Run/Drain, which
// consult it every stepped cycle AND at the exact trip cycle inside
// any skipped gap — closing the blind spot where event-driven
// advancement would jump a wedged-but-quiet network (in-flight
// packets, nothing runnable) straight to the horizon without ever
// tripping it.
func (m *Mesh) WatchProgress(wd *check.Watchdog) {
	m.wd = wd
	for id := range m.sinks {
		s := m.sinks[id]
		prev := s.OnFlit
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			wd.Progress(cycle)
			if prev != nil {
				prev(f, vc, cycle)
			}
		}
	}
}

// SetOnWedged installs a hook fired at most once — on the watchdog's
// single tripping call inside Run/Drain — with the trip cycle, for
// channel-wait diagnostics (WaitGraph / FormatWaitGraph) at the
// moment of the wedge. WatchProgress must have attached the watchdog
// first.
func (m *Mesh) SetOnWedged(fn func(cycle int64)) { m.onWedged = fn }

// WaitGraph returns the channel-wait edges of every router — who is
// blocked on what, and why — for deadlock diagnosis after a watchdog
// trip.
func (m *Mesh) WaitGraph(cycle int64) []wormhole.WaitEdge {
	var edges []wormhole.WaitEdge
	for _, r := range m.routers {
		edges = append(edges, r.WaitEdges(cycle)...)
	}
	return edges
}

// FaultDropped sums the flits the routers' fault injectors dropped.
func (m *Mesh) FaultDropped() int64 {
	var n int64
	for _, r := range m.routers {
		n += r.FaultDropped
	}
	return n
}

// FormatWaitGraph renders a wait graph for an error message or a
// diagnostic dump, capped at max edges (0 = all).
func FormatWaitGraph(edges []wormhole.WaitEdge, max int) string {
	if len(edges) == 0 {
		return "  (no blocked channels)"
	}
	out := ""
	for i, e := range edges {
		if max > 0 && i == max {
			out += fmt.Sprintf("  ... and %d more edges\n", len(edges)-max)
			break
		}
		out += "  " + e.String() + "\n"
	}
	return out
}
