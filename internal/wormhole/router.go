// Package wormhole implements a flit-level wormhole router with
// virtual channels and credit-based flow control — the switch
// substrate the paper's scheduling problem lives in. Entry into each
// output queue (one per output port and VC) is arbitrated at packet
// granularity by a pluggable sched.Scheduler (ERR, PBRR, WRR): once a
// packet's head flit is granted an output queue, the queue stays
// allocated to that packet until its tail flit passes, and the
// arbiter is billed for the *cycles of occupancy* — which exceed the
// packet length whenever downstream congestion stalls the worm. This
// is exactly the regime in which the paper argues a scheduler must
// not require a-priori packet lengths. The physical output link is
// multiplexed flit by flit among the allocated VCs, the structure the
// paper's Section 1 describes for switches with virtual channels.
//
// Routers are wired together (or to injection/ejection endpoints)
// with Connect; package noc builds meshes and tori out of them.
package wormhole

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/sched"
)

// entry is a buffered flit with its arrival cycle (a flit may not be
// forwarded in the cycle it arrived, enforcing one hop per cycle).
type entry struct {
	f       flit.Flit
	arrived int64
}

// vcFIFO is a statically partitioned flit buffer for one (input
// port, VC) pair.
type vcFIFO struct {
	buf        []entry
	head, size int
}

func newVCFIFO(capFlits int) *vcFIFO { return &vcFIFO{buf: make([]entry, capFlits)} }

func (q *vcFIFO) empty() bool { return q.size == 0 }
func (q *vcFIFO) full() bool  { return q.size == len(q.buf) }
func (q *vcFIFO) len() int    { return q.size }

func (q *vcFIFO) push(e entry) {
	if q.full() {
		panic("wormhole: push to full VC FIFO (credit protocol violated)")
	}
	q.buf[(q.head+q.size)%len(q.buf)] = e
	q.size++
}

func (q *vcFIFO) pop() entry {
	if q.empty() {
		panic("wormhole: pop from empty VC FIFO")
	}
	e := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return e
}

func (q *vcFIFO) peek() entry {
	if q.empty() {
		panic("wormhole: peek on empty VC FIFO")
	}
	return q.buf[q.head]
}

// Endpoint consumes flits leaving one of a router's output ports.
// Implementations: a neighbouring router's input port, or an
// ejection sink.
type Endpoint interface {
	// AcceptFlit delivers a flit on the given VC at the given cycle.
	AcceptFlit(f flit.Flit, vc int, cycle int64)
	// BufFlits returns the per-VC buffer capacity of the endpoint,
	// which initialises the sender's credit counters (0 = unlimited).
	BufFlits() int
}

// creditReturn is invoked by a router when a flit leaves an input
// FIFO, so the upstream sender regains a credit.
type creditReturn func(vc int)

// OutputFault models a faulty output link for fault-injection
// campaigns (package fault implements it from a parsed spec). The
// router consults it in its forwarding phase: a stalled link forwards
// nothing (occupancy keeps accruing — the wormhole hostage effect), a
// dropped flit consumes the link cycle and the downstream credit but
// never arrives, and a corrupted flit is delivered mutated. All three
// are exactly the partial failures a production switch must survive
// without panicking; the invariant checker and the deadlock watchdog
// are what detect the resulting wedges.
type OutputFault interface {
	// Stalled reports whether the link is stalled at cycle.
	Stalled(cycle int64) bool
	// Drop reports whether this flit is lost in transit.
	Drop(f flit.Flit, cycle int64) bool
	// Corrupt returns the flit as it arrives downstream (possibly
	// mutated) — called for every delivered flit.
	Corrupt(f flit.Flit, cycle int64) flit.Flit
}

// Config configures a Router.
type Config struct {
	// Ports is the number of ports (inputs == outputs). Port 0 is by
	// convention the local (injection/ejection) port in package noc,
	// but the router itself attaches no meaning to port numbers.
	Ports int
	// VCs is the number of virtual channels per port.
	VCs int
	// BufFlits is the capacity of each input VC FIFO in flits — or,
	// when SharedBufFlits is set, the per-VC *reservation* inside the
	// shared buffer.
	BufFlits int
	// SharedBufFlits, when > 0, replaces the statically partitioned
	// per-VC input FIFOs with one dynamically allocated multi-queue
	// buffer (DAMQ) of this many flits per input port, with BufFlits
	// reserved per VC (the reservation keeps VC deadlock-avoidance
	// schemes sound). Links feeding a shared-buffer router use
	// stop/go gating instead of per-VC credits, since shared space
	// cannot be represented by static credit counters.
	SharedBufFlits int
	// SharedBufCap, when > 0 with SharedBufFlits, limits any single
	// VC's occupancy of the shared buffer. Without a cap a blocked
	// worm can hog the entire shared region and make sharing worse
	// than a static partition under congestion.
	SharedBufCap int
	// NewArb constructs the per-output-port packet arbiter. The flow
	// ids presented to the arbiter are inputPort*VCs + vc.
	NewArb func() sched.Scheduler
	// Route maps a destination node id to an output port of this
	// router.
	Route func(dst int) int
	// OutVC, if set, maps the VC a packet uses on its next hop given
	// the output port, the head flit, and the input port/VC it
	// occupies in this router. All flits of the packet use the VC
	// computed once at grant time. nil means the VC is preserved
	// hop to hop. Package noc uses this for torus dateline VC
	// switching, which breaks the ring channel-dependency cycle.
	OutVC func(outPort int, head flit.Flit, inPort, inVC int) int
}

// lock is the state of an output port owned by an in-flight packet.
type lock struct {
	active    bool
	port, vc  int // input port and VC the packet occupies
	outVC     int // VC the packet uses on the output link
	flow      int
	occupancy int64
}

// Router is one wormhole switch node.
//
// Arbitration follows the paper's two-level switch structure: entry
// into each *output queue* — one per (output port, VC) — is allocated
// at packet granularity by a sched.Scheduler, while the physical
// output link is multiplexed flit by flit among the VCs that hold an
// allocation (round-robin, i.e. FBRR across VCs, which the paper
// notes is legitimate because every flit is tagged with its VC). A
// packet blocked on one VC therefore never prevents another VC's
// packet from advancing through the same port — the property the
// torus dateline scheme needs for deadlock freedom.
type Router struct {
	cfg    Config
	id     int
	in     []*portBuf          // one input buffer complex per port
	arbs   [][]sched.Scheduler // [outPort][outVC]
	locks  [][]lock            // [outPort][outVC]
	out    []Endpoint
	crd    [][]int // credits toward downstream [port][vc]
	credUp []creditReturn
	// gateOut[o], when non-nil, is the stop/go space query used
	// instead of credits on links into shared-buffer routers.
	gateOut []func(vc int) bool

	// eligible[o][v] counts flows currently registered with arbs[o][v].
	eligible [][]int
	// linkRR[o] is the round-robin pointer of output o's flit-level
	// link multiplexer.
	linkRR []int
	// usedInput is scratch: which input ports moved a flit this cycle.
	usedInput []bool

	// outFault[o], when non-nil, injects faults on output link o.
	outFault []OutputFault
	// frozen, when non-nil, reports whether the whole router is frozen
	// at a cycle (fault injection: a crashed/wedged switch ASIC).
	frozen func(cycle int64) bool
	// FaultDropped counts flits lost on this router's faulty output
	// links (the dropped-by-fault term of flit conservation).
	FaultDropped int64

	// work counts buffered flits plus active output allocations — the
	// router's quiescence measure. work == 0 means a Step/Compute is a
	// strict no-op (nothing to forward, nothing to grant, no occupancy
	// to accrue), which is what lets a mesh skip idle routers entirely.
	// Eligible announcements need no separate term: eligible > 0
	// implies a buffered head flit, already counted.
	work int
	// onActive, when non-nil, fires on the work 0->1 transition (the
	// only such transition is a flit arriving via acceptFlit). The mesh
	// uses it to re-register the router on its active set.
	onActive func()

	// scratch is Step's private effect buffer, reused across cycles.
	scratch Effects
	// gateSnap caches gateOut answers as of the start of gateSnapCycle
	// (see SnapshotGates); hasGates is set when any output uses
	// stop/go gating.
	gateSnap      [][]bool
	gateSnapCycle int64
	hasGates      bool
}

// NewRouter validates cfg and returns a router with all outputs
// unconnected (connect them with Connect / ConnectSink before
// stepping).
func NewRouter(id int, cfg Config) (*Router, error) {
	if cfg.Ports < 1 || cfg.VCs < 1 || cfg.BufFlits < 1 {
		return nil, fmt.Errorf("wormhole: invalid config %+v", cfg)
	}
	if cfg.NewArb == nil || cfg.Route == nil {
		return nil, fmt.Errorf("wormhole: NewArb and Route are required")
	}
	if cfg.SharedBufFlits > 0 && cfg.SharedBufFlits < cfg.VCs*cfg.BufFlits {
		return nil, fmt.Errorf("wormhole: shared buffer %d smaller than reservations %d*%d",
			cfg.SharedBufFlits, cfg.VCs, cfg.BufFlits)
	}
	r := &Router{
		cfg:       cfg,
		id:        id,
		in:        make([]*portBuf, cfg.Ports),
		arbs:      make([][]sched.Scheduler, cfg.Ports),
		locks:     make([][]lock, cfg.Ports),
		out:       make([]Endpoint, cfg.Ports),
		crd:       make([][]int, cfg.Ports),
		credUp:    make([]creditReturn, cfg.Ports),
		gateOut:   make([]func(vc int) bool, cfg.Ports),
		eligible:  make([][]int, cfg.Ports),
		linkRR:    make([]int, cfg.Ports),
		usedInput: make([]bool, cfg.Ports),
		outFault:  make([]OutputFault, cfg.Ports),

		gateSnapCycle: -1,
	}
	for p := 0; p < cfg.Ports; p++ {
		r.in[p] = newPortBuf(cfg.VCs, cfg.BufFlits, cfg.SharedBufFlits, cfg.SharedBufCap)
		r.arbs[p] = make([]sched.Scheduler, cfg.VCs)
		r.locks[p] = make([]lock, cfg.VCs)
		r.eligible[p] = make([]int, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			arb := cfg.NewArb()
			if _, ok := arb.(sched.LengthAware); ok {
				return nil, fmt.Errorf("wormhole: arbiter %q requires a-priori packet lengths and cannot arbitrate a wormhole output", arb.Name())
			}
			hol, ok := arb.(sched.HeadOfLineArb)
			if !ok {
				return nil, fmt.Errorf("wormhole: arbiter %q does not satisfy the head-of-line arbitration contract (sched.HeadOfLineArb)", arb.Name())
			}
			r.arbs[p][v] = hol
		}
		r.crd[p] = make([]int, cfg.VCs)
	}
	return r, nil
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// Connect wires output port po of a to input port pi of b, setting up
// the flow control: per-VC credits for statically partitioned inputs,
// stop/go gating for shared-buffer (DAMQ) inputs.
func Connect(a *Router, po int, b *Router, pi int) {
	a.out[po] = neighbour{r: b, port: pi}
	if b.cfg.SharedBufFlits > 0 {
		a.gateOut[po] = func(vc int) bool { return b.in[pi].canAccept(vc) }
		a.hasGates = true
		return
	}
	for v := range a.crd[po] {
		a.crd[po][v] = b.cfg.BufFlits
	}
	b.credUp[pi] = func(vc int) { a.crd[po][vc]++ }
}

// ConnectEndpoint wires output port po of a to an arbitrary endpoint
// (typically a Sink). Credits are initialised from the endpoint's
// BufFlits (0 = unlimited).
func ConnectEndpoint(a *Router, po int, e Endpoint) {
	a.out[po] = e
	buf := e.BufFlits()
	for v := range a.crd[po] {
		if buf == 0 {
			a.crd[po][v] = int(^uint(0) >> 1) // effectively unlimited
		} else {
			a.crd[po][v] = buf
		}
	}
}

// neighbour adapts a router input port to Endpoint.
type neighbour struct {
	r    *Router
	port int
}

// AcceptFlit implements Endpoint.
func (n neighbour) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	n.r.acceptFlit(n.port, f, vc, cycle)
}

// BufFlits implements Endpoint.
func (n neighbour) BufFlits() int { return n.r.cfg.BufFlits }

// acceptFlit buffers an incoming flit and, if it exposes a new head
// packet, announces it to the arbiter of its output. This is the only
// place a quiescent router (work == 0) comes back to life, so the
// 0->1 transition fires the onActive hook here.
func (r *Router) acceptFlit(port int, f flit.Flit, vc int, cycle int64) {
	pb := r.in[port]
	wasEmpty := pb.empty(vc)
	pb.push(vc, entry{f: f, arrived: cycle})
	r.work++
	if r.work == 1 && r.onActive != nil {
		r.onActive()
	}
	if wasEmpty {
		r.announce(port, vc)
	}
}

// Inject offers a flit to input port/vc directly (used by injection
// endpoints and tests). It reports whether buffer space was
// available.
func (r *Router) Inject(port, vc int, f flit.Flit, cycle int64) bool {
	if !r.in[port].canAccept(vc) {
		return false
	}
	r.acceptFlit(port, f, vc, cycle)
	return true
}

// InputFree returns the flit slots an input VC could accept right
// now (for shared buffers this includes the free shared region).
func (r *Router) InputFree(port, vc int) int {
	pb := r.in[port]
	if pb.dyn != nil {
		return pb.dyn.SpaceFor(vc)
	}
	return len(pb.fifos[vc].buf) - pb.fifos[vc].size
}

// headTarget returns the (output port, output VC) the head flit of
// (port, vc) is routed to.
func (r *Router) headTarget(port, vc int, h flit.Flit) (o, ov int) {
	o = r.cfg.Route(h.Dst)
	ov = vc
	if r.cfg.OutVC != nil {
		ov = r.cfg.OutVC(o, h, port, vc)
		if ov < 0 || ov >= r.cfg.VCs {
			panic("wormhole: OutVC returned a VC out of range")
		}
	}
	return o, ov
}

// announce registers the packet at the head of (port, vc) with the
// arbiter of its routed output queue, if it is an unannounced head
// flit.
func (r *Router) announce(port, vc int) {
	pb := r.in[port]
	if pb.notif[vc] || pb.empty(vc) {
		return
	}
	h := pb.peek(vc).f
	if h.Kind != flit.Head && h.Kind != flit.HeadTail {
		// Mid-packet flit: the packet was announced when its head
		// arrived (or is currently locked); nothing to do.
		return
	}
	o, ov := r.headTarget(port, vc, h)
	flow := port*r.cfg.VCs + vc
	r.arbs[o][ov].OnArrival(flow, true)
	r.eligible[o][ov]++
	pb.notif[vc] = true
}

// SetOutputFault installs (or, with nil, removes) a fault injector on
// output link port.
func (r *Router) SetOutputFault(port int, f OutputFault) { r.outFault[port] = f }

// SetFreeze installs a freeze predicate: while it returns true the
// router does nothing — no forwarding, no grants — while its input
// buffers keep accepting flits until credits exhaust, which is
// exactly how a wedged switch back-pressures its neighbours. nil
// removes the predicate.
func (r *Router) SetFreeze(f func(cycle int64) bool) { r.frozen = f }

// SetOnActive installs a hook fired when the router transitions from
// quiescent (Busy() == false) to busy, i.e. when a flit arrives at an
// empty, unallocated router. The mesh uses it to maintain its active
// set. nil removes the hook.
func (r *Router) SetOnActive(fn func()) { r.onActive = fn }

// Busy reports whether stepping the router at this point would do any
// work: it holds buffered flits or active output allocations. A
// router with Busy() == false steps as a strict no-op, so a caller
// may skip it without changing any observable state.
func (r *Router) Busy() bool { return r.work > 0 }

// Effects buffers the cross-router side effects of one Compute call:
// flit deliveries to downstream endpoints and credit returns to
// upstream senders. Everything Compute writes directly is state owned
// by the computing router; everything that would touch a neighbour
// lands here, to be committed by Apply. That split is what makes
// sharded mesh stepping deterministic: computes run concurrently over
// frozen cycle-start state, then the mesh applies each router's
// Effects serially in fixed router-ID order.
type Effects struct {
	deliveries []delivery
	credits    []creditFx
}

type delivery struct {
	ep    Endpoint
	f     flit.Flit
	vc    int
	cycle int64
}

type creditFx struct {
	ret creditReturn
	vc  int
}

// Reset empties the buffer for reuse, retaining capacity.
func (fx *Effects) Reset() {
	fx.deliveries = fx.deliveries[:0]
	fx.credits = fx.credits[:0]
}

// Apply commits the buffered effects: deliveries in recorded
// (output-port) order, then credit returns. The two classes commute —
// deliveries touch downstream input buffers and arbiters, credits
// touch upstream credit counters — so this fixed order is equivalent
// to the interleaved order the serial router used, for any wiring
// without self-loops.
func (fx *Effects) Apply() {
	for _, d := range fx.deliveries {
		d.ep.AcceptFlit(d.f, d.vc, d.cycle)
	}
	for _, c := range fx.credits {
		c.ret(c.vc)
	}
}

// SnapshotGates caches the stop/go gate state of every shared-buffer
// output link as of the start of the given cycle. Gate closures read
// *downstream* buffer occupancy, so under two-phase stepping they
// must be sampled before any router's Compute pops flits — both for
// determinism (all routers see cycle-start space) and to keep the
// concurrent compute phase free of cross-router reads. The snapshot
// cannot over-admit: one link delivers at most one flit per cycle
// into the port the gate guards, and the downstream router only
// frees space during the cycle, never consumes it.
//
// A no-op on routers without shared-buffer links. Compute falls back
// to live gate queries when no snapshot was taken for its cycle, so
// standalone Router.Step users need never call this.
func (r *Router) SnapshotGates(cycle int64) {
	if !r.hasGates {
		return
	}
	if r.gateSnap == nil {
		r.gateSnap = make([][]bool, len(r.gateOut))
		for o, g := range r.gateOut {
			if g != nil {
				r.gateSnap[o] = make([]bool, r.cfg.VCs)
			}
		}
	}
	for o, g := range r.gateOut {
		if g == nil {
			continue
		}
		for v := 0; v < r.cfg.VCs; v++ {
			r.gateSnap[o][v] = g(v)
		}
	}
	r.gateSnapCycle = cycle
}

// gateAllows answers "may output o push a flit on VC v this cycle?"
// from the cycle-start snapshot when one exists, else live.
func (r *Router) gateAllows(o, v int, cycle int64) bool {
	if r.gateSnapCycle == cycle {
		return r.gateSnap[o][v]
	}
	return r.gateOut[o](v)
}

// Step advances the router by one cycle: forward at most one flit per
// output link (multiplexed round-robin among the VCs holding an
// allocation), then grant idle output queues. Step is Compute with
// the effects applied immediately; for a router stepped on its own
// the result is identical to interleaved application, since its own
// compute never reads the neighbour state its effects mutate.
func (r *Router) Step(cycle int64) {
	r.scratch.Reset()
	r.Compute(cycle, &r.scratch)
	r.scratch.Apply()
}

// Compute runs the router's cycle against frozen cycle-start state,
// buffering every cross-router side effect (flit handoffs, credit
// returns) into fx instead of applying it. It mutates only state
// owned by this router, so disjoint routers may Compute concurrently;
// the caller commits the effects afterwards with fx.Apply, ordering
// commits however its determinism contract requires.
func (r *Router) Compute(cycle int64, fx *Effects) {
	if r.frozen != nil && r.frozen(cycle) {
		// Occupancy still accrues on allocated outputs: a frozen
		// router's victims are billed wall-clock time, like any other
		// downstream congestion.
		for o := range r.locks {
			for v := range r.locks[o] {
				if r.locks[o][v].active {
					r.locks[o][v].occupancy++
				}
			}
		}
		return
	}
	usedInput := r.usedInput
	for i := range usedInput {
		usedInput[i] = false
	}
	V := r.cfg.VCs
	// Phase 1: per output link, advance occupancy of every allocated
	// packet (occupancy is wall-clock time to dequeue, the paper's
	// replacement for packet length in wormhole networks) and forward
	// one flit from the first movable VC in round-robin order.
	for o := range r.locks {
		for v := range r.locks[o] {
			if r.locks[o][v].active {
				r.locks[o][v].occupancy++
			}
		}
		if f := r.outFault[o]; f != nil && f.Stalled(cycle) {
			continue // link down: nothing traverses this output
		}
		for k := 0; k < V; k++ {
			v := (r.linkRR[o] + k) % V
			l := &r.locks[o][v]
			if !l.active {
				continue
			}
			pb := r.in[l.port]
			if usedInput[l.port] || pb.empty(l.vc) || pb.peek(l.vc).arrived >= cycle {
				continue
			}
			// Downstream space: stop/go gate on shared-buffer links,
			// per-VC credits otherwise.
			if r.gateOut[o] != nil {
				if !r.gateAllows(o, v, cycle) {
					continue
				}
			} else if r.crd[o][v] <= 0 {
				continue
			}
			e := pb.pop(l.vc)
			r.work--
			usedInput[l.port] = true
			if r.gateOut[o] == nil {
				r.crd[o][v]--
			}
			if ret := r.credUp[l.port]; ret != nil {
				fx.credits = append(fx.credits, creditFx{ret: ret, vc: l.vc})
			}
			if r.out[o] == nil {
				panic(fmt.Sprintf("wormhole: router %d output %d unconnected", r.id, o))
			}
			if f := r.outFault[o]; f != nil && f.Drop(e.f, cycle) {
				// Lost in transit: the link cycle and the downstream
				// credit are spent, but the flit never arrives. The
				// sending router's own bookkeeping is unaffected — a
				// dropped tail wedges the *downstream* packet, which
				// is the watchdog's job to catch.
				r.FaultDropped++
			} else {
				out := e.f
				if f := r.outFault[o]; f != nil {
					out = f.Corrupt(out, cycle)
				}
				fx.deliveries = append(fx.deliveries, delivery{ep: r.out[o], f: out, vc: v, cycle: cycle})
			}
			if e.f.Kind == flit.Tail || e.f.Kind == flit.HeadTail {
				r.completePacket(o, v)
			}
			r.linkRR[o] = (v + 1) % V
			break // one flit per output link per cycle
		}
	}
	// Phase 2: grant idle output queues to eligible flows (transfer
	// begins next cycle).
	for o := range r.locks {
		for v := range r.locks[o] {
			if r.locks[o][v].active || r.eligible[o][v] == 0 {
				continue
			}
			flow := r.arbs[o][v].NextFlow()
			r.eligible[o][v]--
			port, vc := flow/V, flow%V
			if r.in[port].empty(vc) {
				panic("wormhole: arbiter granted a flow with no buffered head flit")
			}
			r.locks[o][v] = lock{active: true, port: port, vc: vc, outVC: v, flow: flow}
			r.work++
		}
	}
}

// completePacket releases output queue (o, v) after its packet's tail
// flit passed, bills the arbiter with the occupancy, and announces
// any next packet now at the head of the same input VC FIFO.
func (r *Router) completePacket(o, v int) {
	l := &r.locks[o][v]
	port, vc, flow, occ := l.port, l.vc, l.flow, l.occupancy
	r.locks[o][v] = lock{}
	r.work--
	pb := r.in[port]
	pb.notif[vc] = false
	// Is the next head packet (if already buffered) routed to the same
	// output queue? Then the flow stays active from the arbiter's
	// viewpoint.
	nowEmpty := true
	if !pb.empty(vc) {
		h := pb.peek(vc).f
		if h.Kind == flit.Head || h.Kind == flit.HeadTail {
			if o2, ov2 := r.headTarget(port, vc, h); o2 == o && ov2 == v {
				nowEmpty = false
				pb.notif[vc] = true
			}
		}
	}
	r.arbs[o][v].OnPacketDone(flow, occ, nowEmpty)
	if !nowEmpty {
		r.eligible[o][v]++
	} else {
		// The next packet (if any, and once its head flit is here) may
		// target a different output queue.
		r.announce(port, vc)
	}
}

// Arb returns the arbiter of output queue (o, v) (for tests and
// metrics).
func (r *Router) Arb(o, v int) sched.Scheduler { return r.arbs[o][v] }

// Sink is an ejection endpoint: it accepts every flit and reports
// packet departures (tail flits). Its buffer is unlimited, modelling
// an end system that always drains its network interface.
type Sink struct {
	// OnFlit, if set, observes every ejected flit.
	OnFlit func(f flit.Flit, vc int, cycle int64)
	// OnTail, if set, observes packet completions (tail or head+tail
	// flits).
	OnTail func(f flit.Flit, cycle int64)
	// Flits counts ejected flits, Packets completed packets.
	Flits, Packets int64
}

// AcceptFlit implements Endpoint.
func (s *Sink) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	s.Flits++
	if s.OnFlit != nil {
		s.OnFlit(f, vc, cycle)
	}
	if f.Kind == flit.Tail || f.Kind == flit.HeadTail {
		s.Packets++
		if s.OnTail != nil {
			s.OnTail(f, cycle)
		}
	}
}

// BufFlits implements Endpoint (0 = unlimited).
func (s *Sink) BufFlits() int { return 0 }

// StallSink is an ejection endpoint with a bounded buffer that drains
// at a configurable pattern, creating downstream congestion on
// demand: Drain is consulted each cycle; when it returns true one
// buffered flit leaves. Use Step to advance it.
type StallSink struct {
	Capacity int
	Drain    func(cycle int64) bool
	Inner    Sink
	buffered []flit.Flit
	credUp   creditReturn
	vcs      []int
}

// NewStallSink returns a stall sink with the given buffer capacity.
func NewStallSink(capacity int, drain func(cycle int64) bool) *StallSink {
	if capacity < 1 {
		panic("wormhole: StallSink capacity < 1")
	}
	return &StallSink{Capacity: capacity, Drain: drain}
}

// AcceptFlit implements Endpoint.
func (s *StallSink) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	if len(s.buffered) >= s.Capacity {
		panic("wormhole: StallSink overflow (credit protocol violated)")
	}
	s.buffered = append(s.buffered, f)
	s.vcs = append(s.vcs, vc)
}

// BufFlits implements Endpoint.
func (s *StallSink) BufFlits() int { return s.Capacity }

// Bind attaches the sink to the router output feeding it so drained
// flits return credits. Call after ConnectEndpoint.
func (s *StallSink) Bind(r *Router, po int) {
	s.credUp = func(vc int) { r.crd[po][vc]++ }
}

// Step drains at most one flit if the drain pattern allows.
func (s *StallSink) Step(cycle int64) {
	if len(s.buffered) == 0 || s.Drain == nil || !s.Drain(cycle) {
		return
	}
	f, vc := s.buffered[0], s.vcs[0]
	s.buffered = s.buffered[1:]
	s.vcs = s.vcs[1:]
	if s.credUp != nil {
		s.credUp(vc)
	}
	s.Inner.AcceptFlit(f, vc, cycle)
}

// WaitEdge is one edge of the channel-wait graph: an in-flight packet
// holding output queue (OutPort, OutVC) that cannot advance, and why.
// The deadlock watchdog dumps these for every router when a network
// stops making progress, turning "it hangs" into a followable chain
// of who-waits-on-whom.
type WaitEdge struct {
	Router, OutPort, OutVC int
	InPort, InVC, Flow     int
	Occupancy              int64
	// Reason is what blocks the next flit: "frozen", "link-stalled",
	// "input-empty" (waiting on upstream), "no-credit" / "no-space"
	// (waiting on downstream), or "contended" (movable, lost link
	// arbitration this cycle).
	Reason string
}

// WaitEdges returns the channel-wait graph edges of every currently
// blocked output-queue allocation, evaluated against the state at the
// given cycle.
func (r *Router) WaitEdges(cycle int64) []WaitEdge {
	var edges []WaitEdge
	frozen := r.frozen != nil && r.frozen(cycle)
	for o := range r.locks {
		stalled := r.outFault[o] != nil && r.outFault[o].Stalled(cycle)
		for v := range r.locks[o] {
			l := r.locks[o][v]
			if !l.active {
				continue
			}
			reason := "contended"
			pb := r.in[l.port]
			switch {
			case frozen:
				reason = "frozen"
			case stalled:
				reason = "link-stalled"
			case pb.empty(l.vc):
				reason = "input-empty"
			case r.gateOut[o] != nil && !r.gateOut[o](v):
				reason = "no-space"
			case r.gateOut[o] == nil && r.crd[o][v] <= 0:
				reason = "no-credit"
			}
			edges = append(edges, WaitEdge{
				Router: r.id, OutPort: o, OutVC: v,
				InPort: l.port, InVC: l.vc, Flow: l.flow,
				Occupancy: l.occupancy, Reason: reason,
			})
		}
	}
	return edges
}

// String renders the edge for wait-graph dumps.
func (e WaitEdge) String() string {
	return fmt.Sprintf("router %d out(%d,%d) <- in(%d,%d) flow %d occ %d: %s",
		e.Router, e.OutPort, e.OutVC, e.InPort, e.InVC, e.Flow, e.Occupancy, e.Reason)
}

// DumpState prints the router's output-queue allocations, FIFO
// occupancies and credit counters — a debugging aid for deadlock
// analysis.
func (r *Router) DumpState() {
	for o := range r.locks {
		for v := range r.locks[o] {
			l := r.locks[o][v]
			if l.active {
				fmt.Printf("router %d out (%d,%d): LOCKED in=(%d,%d) occ=%d fifo=%d crd=%d elig=%d\n",
					r.id, o, v, l.port, l.vc, l.occupancy, r.in[l.port].len(l.vc), r.crd[o][v], r.eligible[o][v])
			} else if r.eligible[o][v] > 0 {
				fmt.Printf("router %d out (%d,%d): idle but eligible=%d crd=%d\n", r.id, o, v, r.eligible[o][v], r.crd[o][v])
			}
		}
	}
	for p := range r.in {
		for v := 0; v < r.cfg.VCs; v++ {
			if !r.in[p].empty(v) {
				h := r.in[p].peek(v).f
				fmt.Printf("router %d in (%d,%d): %d flits, head %v dst=%d notified=%v\n",
					r.id, p, v, r.in[p].len(v), h.Kind, h.Dst, r.in[p].notif[v])
			}
		}
	}
}
