package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/rng"
)

// LoadSpec describes one tenant's open-loop request stream against a
// Server under test: requests arrive by a Poisson process at RPS,
// independent of how previous requests fared — exactly the traffic an
// overloaded front end actually faces (clients do not slow down
// because the server is drowning).
type LoadSpec struct {
	Tenant string
	// RPS is the Poisson arrival rate, requests per second.
	RPS float64
	// Start delays the stream's onset from the run start; Dur bounds
	// how long it sends (0 = until the run ends). Together they model
	// burst storms.
	Start, Dur time.Duration
	// CostMS asks the demo handler for that much work per request (the
	// ms query parameter of /work).
	CostMS int
	// DeadlineMS sets the X-Request-Deadline-Ms header (0 = none).
	DeadlineMS int
	// BodyBytes declares a Content-Length, exercising the memory
	// budget without allocating real bodies.
	BodyBytes int
}

// LoadResult tallies one stream's outcomes by response class.
type LoadResult struct {
	Tenant  string `json:"tenant"`
	Sent    int64  `json:"sent"`
	OK      int64  `json:"ok"`
	Shed    int64  `json:"shed"`    // 429
	Unavail int64  `json:"unavail"` // 503
	Expired int64  `json:"expired"` // 504
	Other   int64  `json:"other"`
}

// SuccessRate returns OK/Sent (1 for an idle stream).
func (r LoadResult) SuccessRate() float64 {
	if r.Sent == 0 {
		return 1
	}
	return float64(r.OK) / float64(r.Sent)
}

// loadStream is the rng.Derive label for load-arrival streams.
const loadStream uint64 = 0x10ad

// RunLoad fires every spec at h for dur and returns per-spec tallies
// in spec order. Arrival times are drawn from seed-derived streams,
// so a load run is as repeatable as the scheduler underneath allows.
// RunLoad returns only after every issued request has completed.
func RunLoad(h http.Handler, specs []LoadSpec, seed uint64, dur time.Duration) []LoadResult {
	results := make([]LoadResult, len(specs))
	var wg sync.WaitGroup
	var reqs sync.WaitGroup
	tallies := make([]struct {
		sent, ok, shed, unavail, expired, other atomic.Int64
	}, len(specs))

	start := time.Now()
	for i, spec := range specs {
		results[i].Tenant = spec.Tenant
		wg.Add(1)
		go func(i int, spec LoadSpec) {
			defer wg.Done()
			src := rng.New(rng.Derive(seed, loadStream, uint64(i)))
			end := start.Add(dur)
			if spec.Dur > 0 {
				if e := start.Add(spec.Start + spec.Dur); e.Before(end) {
					end = e
				}
			}
			next := start.Add(spec.Start)
			for {
				next = next.Add(time.Duration(src.Exp(spec.RPS) * float64(time.Second)))
				if next.After(end) {
					return
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				t := &tallies[i]
				t.sent.Add(1)
				reqs.Add(1)
				go func() {
					defer reqs.Done()
					target := "/work"
					if spec.CostMS > 0 {
						target = fmt.Sprintf("/work?ms=%d", spec.CostMS)
					}
					r := httptest.NewRequest("GET", target, nil)
					r.Header.Set("X-Tenant", spec.Tenant)
					if spec.DeadlineMS > 0 {
						r.Header.Set("X-Request-Deadline-Ms", fmt.Sprint(spec.DeadlineMS))
					}
					if spec.BodyBytes > 0 {
						r.ContentLength = int64(spec.BodyBytes)
					}
					w := httptest.NewRecorder()
					h.ServeHTTP(w, r)
					switch w.Code {
					case http.StatusOK:
						t.ok.Add(1)
					case http.StatusTooManyRequests:
						t.shed.Add(1)
					case http.StatusServiceUnavailable:
						t.unavail.Add(1)
					case http.StatusGatewayTimeout:
						t.expired.Add(1)
					default:
						t.other.Add(1)
					}
				}()
			}
		}(i, spec)
	}
	wg.Wait()
	reqs.Wait()
	for i := range results {
		t := &tallies[i]
		results[i].Sent = t.sent.Load()
		results[i].OK = t.ok.Load()
		results[i].Shed = t.shed.Load()
		results[i].Unavail = t.unavail.Load()
		results[i].Expired = t.expired.Load()
		results[i].Other = t.other.Load()
	}
	return results
}

// LoadsFromFaults converts a fault spec's burst/flood directives into
// LoadSpecs, so a chaos run's adversarial tenants are configured with
// the same -faults grammar as its handler faults. Floods run for the
// whole run; bursts use the directive's at/dur milliseconds. costMS
// and deadlineMS apply to every generated stream.
func LoadsFromFaults(spec *fault.Spec, costMS, deadlineMS int) []LoadSpec {
	var out []LoadSpec
	for _, l := range spec.Loads() {
		out = append(out, LoadSpec{
			Tenant:     l.Tenant,
			RPS:        l.RPS,
			Start:      time.Duration(l.AtMS) * time.Millisecond,
			Dur:        time.Duration(l.DurMS) * time.Millisecond,
			CostMS:     costMS,
			DeadlineMS: deadlineMS,
		})
	}
	return out
}
