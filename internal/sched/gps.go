package sched

// GPS is the fluid Generalized Processor Sharing reference — the
// unimplementable ideal the paper measures fairness against. It is
// not a Scheduler: it serves infinitesimal amounts from every
// backlogged flow simultaneously, so it is driven directly with
// arrivals and advanced cycle by cycle. The experiments use it as the
// absolute-fairness yardstick and the tests use it to sanity-check
// the relative fairness measure.
//
// Capacity is one flit per cycle (matching the engine); within a
// cycle the capacity is water-filled across backlogged flows in
// proportion to their weights, re-splitting whenever a flow drains.
type GPS struct {
	weight  func(flow int) float64
	backlog []float64
	served  []float64
}

// NewGPS returns a fluid GPS reference over n flows; nil weight means
// equal weights.
func NewGPS(n int, weight func(flow int) float64) *GPS {
	return &GPS{
		weight:  weightFn(weight),
		backlog: make([]float64, n),
		served:  make([]float64, n),
	}
}

// Arrive adds length flits of backlog to flow.
func (g *GPS) Arrive(flow int, length int) {
	g.backlog[flow] += float64(length)
}

// Step advances the fluid system by one cycle of unit capacity.
func (g *GPS) Step() {
	const eps = 1e-12
	remaining := 1.0
	for remaining > eps {
		// Collect the backlogged set and its total weight.
		totalW := 0.0
		for i, b := range g.backlog {
			if b > eps {
				totalW += g.weight(i)
			}
		}
		if totalW == 0 {
			return // idle for the rest of the cycle
		}
		// Capacity needed to drain the first flow to empty.
		spend := remaining
		for i, b := range g.backlog {
			if b > eps {
				if need := b * totalW / g.weight(i); need < spend {
					spend = need
				}
			}
		}
		for i, b := range g.backlog {
			if b > eps {
				amt := spend * g.weight(i) / totalW
				if amt > b {
					amt = b
				}
				g.backlog[i] -= amt
				g.served[i] += amt
			}
		}
		remaining -= spend
	}
}

// Served returns the cumulative fluid service of flow, in flits.
func (g *GPS) Served(flow int) float64 { return g.served[flow] }

// Backlog returns the current fluid backlog of flow, in flits.
func (g *GPS) Backlog(flow int) float64 { return g.backlog[flow] }

// Name identifies the reference in experiment output.
func (g *GPS) Name() string { return "GPS" }
