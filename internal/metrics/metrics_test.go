package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/flit"
	"repro/internal/rng"
)

func TestFairnessTrackerSimple(t *testing.T) {
	ft := NewFairnessTracker(2)
	ft.Serve(0, 10)
	if ft.FM() != 10 {
		t.Errorf("FM = %d, want 10", ft.FM())
	}
	ft.Serve(1, 10)
	// D_01 went 0 -> 10 -> 0, so FM stays 10.
	if ft.FM() != 10 {
		t.Errorf("FM = %d, want 10", ft.FM())
	}
	ft.Serve(1, 5)
	// D_01 now -5: spread is 10 - (-5) = 15.
	if ft.FM() != 15 {
		t.Errorf("FM = %d, want 15", ft.FM())
	}
	if ft.Served(0) != 10 || ft.Served(1) != 15 {
		t.Error("Served totals wrong")
	}
}

func TestFairnessTrackerPairFM(t *testing.T) {
	ft := NewFairnessTracker(3)
	ft.Serve(0, 4)
	ft.Serve(2, 1)
	if got := ft.PairFM(0, 2); got != 4 {
		t.Errorf("PairFM(0,2) = %d, want 4", got)
	}
	if got := ft.PairFM(2, 0); got != 4 {
		t.Errorf("PairFM symmetric lookup = %d, want 4", got)
	}
	if got := ft.PairFM(1, 1); got != 0 {
		t.Errorf("PairFM(i,i) = %d, want 0", got)
	}
}

// Property: FairnessTracker matches a brute-force computation of
// max |Sent_i(t1,t2) - Sent_j(t1,t2)| over all event-boundary
// intervals.
func TestFairnessTrackerMatchesBruteForce(t *testing.T) {
	prop := func(ops []uint8) bool {
		const n = 3
		ft := NewFairnessTracker(n)
		// history[k][f] = cumulative service of f after k events.
		history := [][]int64{make([]int64, n)}
		cum := make([]int64, n)
		for _, op := range ops {
			f := int(op) % n
			units := int64(op)%7 + 1
			ft.Serve(f, units)
			cum[f] += units
			snap := make([]int64, n)
			copy(snap, cum)
			history = append(history, snap)
		}
		var want int64
		for a := 0; a < len(history); a++ {
			for b := a + 1; b < len(history); b++ {
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						d := (history[b][i] - history[a][i]) - (history[b][j] - history[a][j])
						if d < 0 {
							d = -d
						}
						if d > want {
							want = d
						}
					}
				}
			}
		}
		return ft.FM() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestServiceLogCumServed(t *testing.T) {
	l := NewServiceLog(3, 4) // small stride to cross checkpoints
	seq := []int{0, 1, 2, 0, Idle, 0, 1, 0, 2, Idle, 0}
	for _, f := range seq {
		l.Record(f)
	}
	if l.Cycles() != int64(len(seq)) {
		t.Fatalf("Cycles = %d", l.Cycles())
	}
	if l.Total(0) != 5 || l.Total(1) != 2 || l.Total(2) != 2 {
		t.Fatalf("totals wrong: %d %d %d", l.Total(0), l.Total(1), l.Total(2))
	}
	// Check every prefix against a scan.
	for tt := int64(0); tt <= int64(len(seq)); tt++ {
		for f := 0; f < 3; f++ {
			var want int64
			for i := int64(0); i < tt; i++ {
				if seq[i] == f {
					want++
				}
			}
			if got := l.CumServed(f, tt); got != want {
				t.Fatalf("CumServed(%d,%d) = %d, want %d", f, tt, got, want)
			}
		}
	}
	// Cycles 3..7 are [0, Idle, 0, 1, 0]: three services of flow 0.
	if got := l.Sent(0, 3, 8); got != 3 {
		t.Errorf("Sent(0,3,8) = %d, want 3", got)
	}
}

func TestServiceLogFM(t *testing.T) {
	l := NewServiceLog(2, 0)
	// 6 cycles to flow 0, then 2 to flow 1.
	for i := 0; i < 6; i++ {
		l.Record(0)
	}
	for i := 0; i < 2; i++ {
		l.Record(1)
	}
	if got := l.FM(0, 8); got != 4 {
		t.Errorf("FM(0,8) = %d, want 4", got)
	}
	if got := l.FM(0, 6); got != 6 {
		t.Errorf("FM(0,6) = %d, want 6", got)
	}
	if got := l.FM(6, 8); got != 2 {
		t.Errorf("FM(6,8) = %d, want 2", got)
	}
}

func TestServiceLogClampsT(t *testing.T) {
	l := NewServiceLog(2, 0)
	l.Record(0)
	if got := l.CumServed(0, 100); got != 1 {
		t.Errorf("CumServed beyond end = %d, want 1", got)
	}
	if got := l.CumServed(0, -5); got != 0 {
		t.Errorf("CumServed(<0) = %d, want 0", got)
	}
}

func TestServiceLogAvgFM(t *testing.T) {
	l := NewServiceLog(2, 16)
	// Perfect alternation: any interval has FM <= 1.
	for i := 0; i < 10000; i++ {
		l.Record(i % 2)
	}
	avg := l.AvgFMRandomIntervals(500, rng.New(5))
	if avg > 1 {
		t.Errorf("alternating service: avg FM %.3f, want <= 1", avg)
	}
	// Blocked service: long runs produce large FM.
	b := NewServiceLog(2, 16)
	for i := 0; i < 10000; i++ {
		b.Record((i / 1000) % 2)
	}
	if got := b.AvgFMRandomIntervals(500, rng.New(5)); got < 100 {
		t.Errorf("blocked service: avg FM %.1f suspiciously small", got)
	}
}

func TestServiceLogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Record(out of range) did not panic")
		}
	}()
	l := NewServiceLog(2, 0)
	l.Record(7)
}

func TestServiceLogStalledAndUtilization(t *testing.T) {
	l := NewServiceLog(2, 4)
	// 4 served (2 per flow), 2 stalled, 2 idle.
	for _, f := range []int{0, Stalled, 1, Idle, 0, Stalled, 1, Idle} {
		l.Record(f)
	}
	if l.Cycles() != 8 {
		t.Fatalf("Cycles = %d", l.Cycles())
	}
	if l.IdleCycles() != 2 || l.StalledCycles() != 2 {
		t.Fatalf("idle %d stalled %d, want 2 2", l.IdleCycles(), l.StalledCycles())
	}
	// Stalled cycles are busy: utilization counts everything but idle.
	if got := l.Utilization(); got != 6.0/8.0 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	// Stalled markers must not count as service for any flow.
	if l.Total(0) != 2 || l.Total(1) != 2 {
		t.Fatalf("totals %d %d, want 2 2", l.Total(0), l.Total(1))
	}
	if got := l.Sent(0, 0, 8); got != 2 {
		t.Errorf("Sent(0) = %d, want 2", got)
	}
	if got := l.FM(0, 8); got != 0 {
		t.Errorf("FM = %d, want 0", got)
	}
	if (&ServiceLog{}).Utilization() != 0 {
		t.Error("empty log utilization not 0")
	}
}

func TestNewServiceLogValidation(t *testing.T) {
	// 255 is now rejected too: 0xFE and 0xFF are reserved for the
	// Stalled and Idle markers.
	for _, n := range []int{0, 255, 256, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewServiceLog(%d) did not panic", n)
				}
			}()
			NewServiceLog(n, 0)
		}()
	}
}

func TestDelayStats(t *testing.T) {
	d := NewDelayStats(2)
	d.Departure(flit.Packet{Flow: 0, Arrival: 10}, 19) // delay 10
	d.Departure(flit.Packet{Flow: 0, Arrival: 0}, 29)  // delay 30
	d.Departure(flit.Packet{Flow: 1, Arrival: 5, Length: 2}, 6)
	if d.Count() != 3 || d.CountOf(0) != 2 || d.CountOf(1) != 1 {
		t.Fatal("counts wrong")
	}
	if d.MeanOf(0) != 20 {
		t.Errorf("MeanOf(0) = %v, want 20", d.MeanOf(0))
	}
	if d.MaxOf(0) != 30 {
		t.Errorf("MaxOf(0) = %v, want 30", d.MaxOf(0))
	}
	if d.MeanOf(1) != 2 {
		t.Errorf("MeanOf(1) = %v, want 2", d.MeanOf(1))
	}
	want := (10.0 + 30.0 + 2.0) / 3.0
	if d.Mean() != want {
		t.Errorf("Mean = %v, want %v", d.Mean(), want)
	}
}

func TestThroughputTable(t *testing.T) {
	tt := NewThroughputTable(2, 8)
	tt.Serve(0, 128) // 1 KB
	tt.Serve(1, 64)
	tt.Serve(1, 64)
	if tt.Flits(0) != 128 || tt.Flits(1) != 128 {
		t.Fatal("flit accounting wrong")
	}
	if tt.Bytes(0) != 1024 {
		t.Errorf("Bytes(0) = %d", tt.Bytes(0))
	}
	if tt.KBytes(1) != 1.0 {
		t.Errorf("KBytes(1) = %v", tt.KBytes(1))
	}
	if tt.NumFlows() != 2 {
		t.Error("NumFlows wrong")
	}
	// Default flit width.
	def := NewThroughputTable(1, 0)
	def.Serve(0, 1)
	if def.Bytes(0) != int64(flit.DefaultFlitBytes) {
		t.Error("default flit width not applied")
	}
}
