package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
)

// TestAccessors exercises the inspection surface used by tooling and
// verifies its values against a hand-traced execution.
func TestAccessors(t *testing.T) {
	e := core.New()
	if e.Name() != "ERR" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.CurrentFlow() != -1 || e.Round() != 0 || e.ActiveFlows() != 0 {
		t.Error("fresh scheduler state wrong")
	}
	if e.SurplusCount(42) != 0 {
		t.Error("unknown flow surplus should read 0")
	}

	d := harness.New(2, e)
	d.Arrive(flit.Packet{Flow: 0, Length: 5})
	d.Arrive(flit.Packet{Flow: 0, Length: 5})
	d.Arrive(flit.Packet{Flow: 0, Length: 5})
	d.Arrive(flit.Packet{Flow: 1, Length: 2})
	if e.ActiveFlows() != 2 {
		t.Errorf("ActiveFlows = %d, want 2", e.ActiveFlows())
	}
	d.ServeOne() // flow 0: A=1, sent 5, SC=4, stays active
	if e.Round() != 1 {
		t.Errorf("Round = %d, want 1", e.Round())
	}
	if got := e.SurplusCount(0); got != 4 {
		t.Errorf("SurplusCount(0) = %d, want 4", got)
	}
	if got := e.MaxSC(); got != 4 {
		t.Errorf("MaxSC = %d, want 4", got)
	}
	if got := e.VisitsLeft(); got != 1 {
		t.Errorf("VisitsLeft = %d, want 1", got)
	}
	d.ServeOne() // flow 1 drains: SC reset, leaves
	if got := e.SurplusCount(1); got != 0 {
		t.Errorf("drained flow SC = %d, want 0", got)
	}
	// Round 2 begins on the next service; PrevMaxSC snapshots 4
	// (flow 0 still has a queued packet, so no idle reset occurs).
	d.ServeOne()
	if got := e.PrevMaxSC(); got != 4 {
		t.Errorf("PrevMaxSC = %d, want 4", got)
	}
	if e.CurrentFlow() != -1 {
		t.Error("no flow should be mid-service between packets")
	}
	// Draining the last packet idles the system and resets the round
	// state (the Initialize semantics across idle periods).
	d.Drain()
	if e.Round() != 0 || e.PrevMaxSC() != 0 || e.MaxSC() != 0 {
		t.Error("idle reset did not clear round state")
	}
}
