package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestDAMQMeshDrains(t *testing.T) {
	m, err := NewMesh(Config{
		K: 4, VCs: 2, BufFlits: 1, SharedBufFlits: 16,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	inj := NewInjector(m, 0.04, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), src)
	inj.MaxPending = 4
	for c := 0; c < 20000; c++ {
		inj.Step()
		m.Step()
	}
	if !m.Drain(200000) {
		t.Fatalf("DAMQ mesh stuck; %d in flight", m.InFlight())
	}
	var injected, delivered int64
	for n := 0; n < m.Nodes(); n++ {
		injected += inj.Injected[n]
		delivered += m.DeliveredPackets[n]
	}
	if injected == 0 || injected != delivered {
		t.Fatalf("injected %d, delivered %d", injected, delivered)
	}
}

// TestDAMQTorusNoDeadlock: the per-VC reservation keeps the dateline
// scheme sound even with a shared buffer — heavy load must drain.
func TestDAMQTorusNoDeadlock(t *testing.T) {
	m, err := NewMesh(Config{
		K: 4, VCs: 2, BufFlits: 2, SharedBufFlits: 16, Torus: true,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	inj := NewInjector(m, 0.06, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 10), src)
	inj.MaxPending = 4
	for c := 0; c < 30000; c++ {
		inj.Step()
		m.Step()
	}
	if !m.Drain(300000) {
		t.Fatalf("DAMQ torus deadlocked; %d in flight", m.InFlight())
	}
}

// TestDAMQHoggingAndCap documents the classic shared-buffer
// trade-off at identical total buffering per port: under congested
// (hotspot) traffic an *uncapped* DAMQ lets blocked worms hog the
// shared region and performs worse than a static partition, and a
// per-VC occupancy cap recovers most of the loss (Tamir & Frazier's
// designs cap for exactly this reason).
func TestDAMQHoggingAndCap(t *testing.T) {
	run := func(shared, buf, cap int) float64 {
		m, err := NewMesh(Config{
			K: 4, VCs: 2, BufFlits: buf, SharedBufFlits: shared, SharedBufCap: cap,
			NewArb: func() sched.Scheduler { return core.New() },
		})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(29)
		inj := NewInjector(m, 0.04, Hotspot{Nodes: m.Nodes(), Node: 5, Frac: 0.4},
			rng.NewUniform(1, 12), src)
		inj.MaxPending = 4
		for c := 0; c < 30000; c++ {
			inj.Step()
			m.Step()
		}
		m.Drain(300000)
		return m.Latency.Mean()
	}
	static := run(0, 8, 0)    // 2 VCs x 8 flits = 16 flits/port
	uncapped := run(16, 1, 0) // 16 shared flits/port, no cap
	capped := run(16, 1, 10)  // cap any VC at 10 of the 16
	if uncapped < static {
		t.Logf("note: uncapped DAMQ beat static here (%.1f vs %.1f); hogging is workload-dependent", uncapped, static)
	}
	if capped > uncapped*1.05 {
		t.Errorf("cap made latency worse: capped %.1f vs uncapped %.1f", capped, uncapped)
	}
	if capped > static*1.25 {
		t.Errorf("capped DAMQ latency %.1f still far above static %.1f", capped, static)
	}
}
