package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/bounds"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// This file is the analytic-bounds sweep: for every (scheduler, flow
// count) cell it provisions a flow set whose arrival rates are a
// fixed fraction of the rates the bounds analysis guarantees, runs
// the engine with the bounds.Checker attached, and fails the run on
// any observed delay or backlog above its bound. Deriving the rates
// from the bounds package itself makes every cell stable by
// construction, for every discipline, at every flow count.

// BoundsSchedulers lists the disciplines the sweep covers, in
// rendering order. Each has both a scheduler constructor
// (boundsScheduler) and a service-curve family (bounds.ParseDiscipline).
var BoundsSchedulers = []string{"ERR", "WRR", "IWRR", "DRR", "DRR-OPT"}

// boundsScheduler builds the named scheduler for a bounds
// configuration: WRR/IWRR take the per-flow weights, DRR the per-flow
// quanta, ERR is the paper's unweighted discipline.
func boundsScheduler(name string, cfg bounds.Config) (sched.Scheduler, error) {
	weight := func(flow int) int { return cfg.Flows[flow].Weight }
	quantum := func(flow int) int64 { return cfg.Flows[flow].Quantum }
	switch name {
	case "ERR":
		return core.New(), nil
	case "WRR":
		return sched.NewWRR(weight), nil
	case "IWRR":
		return sched.NewIWRR(weight), nil
	case "DRR":
		return sched.NewDRR(0, quantum), nil
	case "DRR-OPT":
		quanta := make([]int64, len(cfg.Flows))
		for i := range cfg.Flows {
			quanta[i] = cfg.Flows[i].Quantum
		}
		return sched.NewOptDRR(quanta), nil
	}
	return nil, fmt.Errorf("experiments: unknown bounds scheduler %q", name)
}

// BoundsParams parameterises the bounds sweep.
type BoundsParams struct {
	// FlowCounts are the grid's flow-count points.
	FlowCounts []int
	// Cycles is each cell's run length.
	Cycles int64
	// Seed feeds the per-cell derived traffic seeds.
	Seed uint64
	// Util is each flow's arrival rate as a fraction of its
	// bounds-guaranteed rate (< EnvRate for stability).
	Util float64
	// EnvRate is each flow's declared envelope rate as a fraction of
	// its guaranteed rate. Keeping it below 1 makes every bound
	// finite; keeping it above Util gives the measured burst a
	// negative drift, so the bounds stay tight.
	EnvRate float64
	// Schedulers restricts the sweep (nil = BoundsSchedulers).
	Schedulers []string
	// Workers and Progress as in every grid runner.
	Workers  int
	Progress exec.Progress `json:"-"`
	Robustness
}

// DefaultBoundsParams returns the standard sweep: every discipline at
// 8 and 16 flows.
func DefaultBoundsParams() BoundsParams {
	return BoundsParams{
		FlowCounts: []int{8, 16},
		Cycles:     200_000,
		Seed:       1,
		Util:       0.7,
		EnvRate:    0.9,
	}
}

// boundsFlowClasses cycles four packet-length classes and four
// weights across the flow set, so every cell mixes short and long
// packets and light and heavy weights.
var boundsFlowClasses = []struct {
	lmin, lmax, weight int
}{
	{8, 16, 1},
	{16, 32, 2},
	{24, 48, 3},
	{32, 64, 4},
}

// boundsConfig assembles the bounds.Config of one cell: n flows from
// the cycling classes, DRR quanta w*lmax (or optimised for DRR-OPT),
// and arrival envelopes at the given fractions of each flow's
// guaranteed rate under the named scheduler.
func boundsConfig(schedName string, n int, util, envRate float64) (bounds.Config, error) {
	disc, err := bounds.ParseDiscipline(schedName)
	if err != nil {
		return bounds.Config{}, err
	}
	cfg := bounds.Config{C: 1, Flows: make([]bounds.FlowSpec, n)}
	var frame int64
	for i := range cfg.Flows {
		cl := boundsFlowClasses[i%len(boundsFlowClasses)]
		cfg.Flows[i] = bounds.FlowSpec{
			Weight:  cl.weight,
			Quantum: int64(cl.weight) * int64(cl.lmax),
			LMin:    cl.lmin,
			LMax:    cl.lmax,
		}
		frame += cfg.Flows[i].Quantum
	}
	setEnvelopes := func() {
		for i := range cfg.Flows {
			r := cfg.GuaranteedRate(disc, i)
			cfg.Flows[i].Arrival = bounds.TokenBucket{
				Sigma: float64(cfg.Flows[i].LMax),
				Rho:   envRate * r,
			}
		}
	}
	setEnvelopes()
	if schedName == "DRR-OPT" {
		// Optimise within the same frame the plain-DRR cell uses, so
		// the two cells' bounds are directly comparable; then refresh
		// the envelopes for the new guaranteed rates.
		quanta := bounds.OptimizeQuanta(cfg, frame)
		for i := range cfg.Flows {
			cfg.Flows[i].Quantum = quanta[i]
		}
		setEnvelopes()
	}
	return cfg, nil
}

// boundsSource builds the cell's arrival processes: per flow, a
// Bernoulli packet process at util times the guaranteed rate, with
// uniform lengths over the flow's declared range.
func boundsSource(cfg bounds.Config, disc bounds.Discipline, util float64, seed uint64) traffic.Source {
	src := rng.New(seed)
	sources := make([]traffic.Source, len(cfg.Flows))
	for i, f := range cfg.Flows {
		mean := float64(f.LMin+f.LMax) / 2
		pktRate := util * cfg.GuaranteedRate(disc, i) / mean
		sources[i] = traffic.NewBernoulli(i, pktRate, rng.NewUniform(f.LMin, f.LMax), src.Split())
	}
	return traffic.NewMulti(sources...)
}

// BoundsCell is one (scheduler, flow count) outcome: the per-flow
// bounds next to the observed extremes.
type BoundsCell struct {
	Scheduler string
	Flows     int
	Reports   []bounds.FlowReport
}

// BoundsResult is the sweep outcome.
type BoundsResult struct {
	Params BoundsParams
	Cells  []BoundsCell
}

// RunBounds runs the sweep. Any bounds violation fails the offending
// cell's job with the recorder's structured cycle-stamped report, so
// a violating sweep returns an error (and errsim exits nonzero —
// the CI gate).
func RunBounds(p BoundsParams) (*BoundsResult, error) {
	if p.Faults != "" {
		return nil, fmt.Errorf("experiments: bounds sweep requires fault-free arrivals (-faults given)")
	}
	scheds := p.Schedulers
	if len(scheds) == 0 {
		scheds = BoundsSchedulers
	}
	type cellKey struct {
		sched string
		flows int
	}
	var keys []cellKey
	for _, s := range scheds {
		for _, n := range p.FlowCounts {
			keys = append(keys, cellKey{s, n})
		}
	}
	jobs := make([]exec.Job[BoundsCell], len(keys))
	for i, k := range keys {
		i, k := i, k
		jobs[i] = func() (BoundsCell, error) {
			cfg, err := boundsConfig(k.sched, k.flows, p.Util, p.EnvRate)
			if err != nil {
				return BoundsCell{}, err
			}
			disc, err := bounds.ParseDiscipline(k.sched)
			if err != nil {
				return BoundsCell{}, err
			}
			s, err := boundsScheduler(k.sched, cfg)
			if err != nil {
				return BoundsCell{}, err
			}
			ecfg := engine.Config{
				Flows:     k.flows,
				Scheduler: s,
				Source:    boundsSource(cfg, disc, p.Util, rng.Derive(p.Seed, uint64(i))),
			}
			inj, chk, err := applyRobustness(p.Robustness, p.faultSeed(p.Seed, i), &ecfg)
			if err != nil {
				return BoundsCell{}, err
			}
			rec := check.NewRecorder().Register(obs.Default())
			if chk != nil {
				rec = chk.Recorder
			}
			bc, err := bounds.NewChecker(cfg, k.sched, rec)
			if err != nil {
				return BoundsCell{}, err
			}
			bc.Wire(&ecfg)
			e, err := engine.NewEngine(ecfg)
			if err != nil {
				return BoundsCell{}, err
			}
			if chk != nil {
				chk.Attach(e, ecfg.Scheduler)
			}
			if err := runChecked(e, chk, p.Cycles); err != nil {
				return BoundsCell{}, fmt.Errorf("experiments: bounds %s/%d: %w", k.sched, k.flows, err)
			}
			registerFaultCounters(obs.Default(), inj.Counters(), e.Rejected())
			if chk == nil {
				if err := rec.Err(); err != nil {
					return BoundsCell{}, fmt.Errorf("experiments: bounds %s/%d: %w", k.sched, k.flows, err)
				}
			}
			return BoundsCell{Scheduler: k.sched, Flows: k.flows, Reports: bc.Report()}, nil
		}
	}
	opts, closeCP, err := gridOptions("bounds", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	cells, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	return &BoundsResult{Params: p, Cells: cells}, nil
}

// Render writes per-cell tables of bounds vs observations, then a CSV
// block for external plotting.
func (r *BoundsResult) Render(w io.Writer) error {
	var viol int64
	for _, c := range r.Cells {
		for _, fr := range c.Reports {
			viol += fr.Violations
		}
	}
	fmt.Fprintf(w, "Analytic delay/backlog bounds vs observation — util %.2f, envelope %.2f, %d cycles/cell, %d violation(s)\n",
		r.Params.Util, r.Params.EnvRate, r.Params.Cycles, viol)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, c := range r.Cells {
		fmt.Fprintf(tw, "\n%s, %d flows\n", c.Scheduler, c.Flows)
		fmt.Fprintln(tw, "flow\trho\tsigma^\tR\tD-bound\tD-max\tB-bound\tB-max\tpkts\tviol")
		for _, fr := range c.Reports {
			fmt.Fprintf(tw, "%d\t%.4f\t%.1f\t%.4f\t%.1f\t%d\t%.1f\t%d\t%d\t%d\n",
				fr.Flow, fr.Rho, fr.SigmaHat, fr.Rate,
				fr.DelayBound, fr.MaxDelay, fr.BackBound, fr.MaxBacklog,
				fr.Departures, fr.Violations)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nscheduler,flows,flow,rho,sigma_hat,rate,delay_bound,max_delay,backlog_bound,max_backlog,departures,violations")
	for _, c := range r.Cells {
		for _, fr := range c.Reports {
			fmt.Fprintf(w, "%s,%d,%d,%.6f,%.3f,%.6f,%.3f,%d,%.3f,%d,%d,%d\n",
				c.Scheduler, c.Flows, fr.Flow, fr.Rho, fr.SigmaHat, fr.Rate,
				fr.DelayBound, fr.MaxDelay, fr.BackBound, fr.MaxBacklog,
				fr.Departures, fr.Violations)
		}
	}
	return nil
}

// Violations returns the total bounds violations across the sweep
// (always zero when RunBounds returned without error; kept for
// callers inspecting checkpoint-resumed partial results).
func (r *BoundsResult) Violations() int64 {
	var n int64
	for _, c := range r.Cells {
		for _, fr := range c.Reports {
			n += fr.Violations
		}
	}
	return n
}
