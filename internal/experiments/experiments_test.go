package experiments

import (
	"strings"
	"testing"
)

// Scaled-down parameters keep the full suite under a few seconds
// while preserving every qualitative shape the paper reports.

func smallFig4() Fig4Params {
	p := DefaultFig4Params()
	p.Cycles = 300_000
	return p
}

func TestFig4aPBRRFavoursLongPackets(t *testing.T) {
	res, err := RunFig4(smallFig4(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Disciplines[0] != "ERR" || res.Disciplines[1] != "PBRR" {
		t.Fatalf("unexpected disciplines %v", res.Disciplines)
	}
	errKB := res.KBytes[0]
	pbrrKB := res.KBytes[1]
	// ERR: all flows within 3m = 3*128*8 bytes = 3 KB of each other.
	for f := 1; f < 8; f++ {
		if d := errKB[f] - errKB[0]; d > 3.1 || d < -3.1 {
			t.Errorf("ERR flows %d vs 0 differ by %.1f KB, want <= 3", f, d)
		}
	}
	// PBRR: flow 2 (double-length packets) gets ~2x the others.
	others := 0.0
	for _, f := range []int{0, 1, 4, 5, 6, 7} {
		others += pbrrKB[f]
	}
	others /= 6
	if r := pbrrKB[2] / others; r < 1.7 || r > 2.3 {
		t.Errorf("PBRR flow 2 advantage %.2fx, want ~2x", r)
	}
}

func TestFig4bFBRRIsFairest(t *testing.T) {
	res, err := RunFig4(smallFig4(), "b")
	if err != nil {
		t.Fatal(err)
	}
	spread := func(kb []float64) float64 {
		lo, hi := kb[0], kb[0]
		for _, v := range kb {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	errS, fbrrS := spread(res.KBytes[0]), spread(res.KBytes[1])
	// The paper's Figure 4(b): FBRR and ERR are both fair, with ERR
	// tracking FBRR to within 3m = 3 KB. At this scale both spreads
	// are dominated by the same warm-up transient (the workload gives
	// the slowest flows only a 20% margin over their fair share), so
	// assert both are small and close rather than demanding zero.
	if fbrrS > 6 {
		t.Errorf("FBRR spread %.2f KB, want < 6", fbrrS)
	}
	if errS > fbrrS+3.1 {
		t.Errorf("ERR spread %.2f KB exceeds FBRR's %.2f by more than 3 KB (Theorem 3)", errS, fbrrS)
	}
}

func TestFig4cFCFSRewardsRateAndLength(t *testing.T) {
	res, err := RunFig4(smallFig4(), "c")
	if err != nil {
		t.Fatal(err)
	}
	fcfs := res.KBytes[1]
	base := (fcfs[0] + fcfs[1] + fcfs[4] + fcfs[5] + fcfs[6] + fcfs[7]) / 6
	// Flow 2 (2x lengths) and flow 3 (2x rate) each steal ~2x.
	if r := fcfs[2] / base; r < 1.6 || r > 2.4 {
		t.Errorf("FCFS flow 2 advantage %.2fx, want ~2x", r)
	}
	if r := fcfs[3] / base; r < 1.6 || r > 2.4 {
		t.Errorf("FCFS flow 3 advantage %.2fx, want ~2x", r)
	}
	// ERR on the same workload stays flat.
	errKB := res.KBytes[0]
	for f := 1; f < 8; f++ {
		if d := errKB[f] - errKB[0]; d > 3.1 || d < -3.1 {
			t.Errorf("ERR flow %d differs by %.1f KB under the FCFS workload", f, d)
		}
	}
}

func TestFig4dDRRComparableToERR(t *testing.T) {
	res, err := RunFig4(smallFig4(), "d")
	if err != nil {
		t.Fatal(err)
	}
	errKB, drr := res.KBytes[0], res.KBytes[1]
	for f := 0; f < 8; f++ {
		if d := errKB[f] - drr[f]; d > 4 || d < -4 {
			t.Errorf("ERR vs DRR flow %d differ by %.1f KB; should be comparable", f, d)
		}
	}
}

func TestFig4Render(t *testing.T) {
	p := smallFig4()
	p.Cycles = 50_000
	res, err := RunFig4(p, "a")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ERR", "PBRR", "flow 7", "flow,ERR,PBRR"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4UnknownPanel(t *testing.T) {
	if _, err := RunFig4(smallFig4(), "z"); err == nil {
		t.Error("unknown panel accepted")
	}
}

func smallFig5() Fig5Params {
	p := DefaultFig5Params()
	p.BurstCycles = 5_000
	p.Intensities = []float64{1.0, 1.15, 1.3}
	p.Repeats = 3
	return p
}

func TestFig5aERRBeatsFCFS(t *testing.T) {
	res, err := RunFig5(smallFig5(), "a")
	if err != nil {
		t.Fatal(err)
	}
	errD, fcfs := res.Delay[0], res.Delay[1]
	// At the highest congestion intensity ERR must have lower average
	// delay (its gain comes from delaying the heavy flows).
	last := len(errD) - 1
	if errD[last] >= fcfs[last] {
		t.Errorf("at intensity %.2f ERR delay %.1f >= FCFS %.1f",
			res.Params.Intensities[last], errD[last], fcfs[last])
	}
}

func TestFig5bERRBeatsPBRR(t *testing.T) {
	res, err := RunFig5(smallFig5(), "b")
	if err != nil {
		t.Fatal(err)
	}
	errD, pbrr := res.Delay[0], res.Delay[1]
	last := len(errD) - 1
	if errD[last] >= pbrr[last] {
		t.Errorf("at intensity %.2f ERR delay %.1f >= PBRR %.1f",
			res.Params.Intensities[last], errD[last], pbrr[last])
	}
}

func TestFig5DelayGrowsWithIntensity(t *testing.T) {
	res, err := RunFig5(smallFig5(), "a")
	if err != nil {
		t.Fatal(err)
	}
	for d, name := range res.Disciplines {
		ds := res.Delay[d]
		if ds[len(ds)-1] <= ds[0] {
			t.Errorf("%s delay did not grow with congestion: %v", name, ds)
		}
	}
}

func TestFig5Render(t *testing.T) {
	p := smallFig5()
	p.Intensities = []float64{1.0, 1.3}
	p.Repeats = 1
	res, err := RunFig5(p, "b")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "intensity,ERR,PBRR") {
		t.Error("render missing CSV header")
	}
}

func smallFig6() Fig6Params {
	p := DefaultFig6Params()
	p.Cycles = 200_000
	p.Intervals = 2_000
	p.MaxFlows = 6
	return p
}

func TestFig6ERRFairerThanDRR(t *testing.T) {
	res, err := RunFig6(smallFig6())
	if err != nil {
		t.Fatal(err)
	}
	errFM, drrFM := res.AvgFM[0], res.AvgFM[1]
	// The paper's claim: with exponentially distributed lengths, ERR's
	// average relative fairness is better (smaller) than DRR's, at
	// every flow count.
	worse := 0
	for i := range res.Flows {
		if errFM[i] >= drrFM[i] {
			worse++
		}
	}
	if worse > 1 { // allow one noisy point at this scale
		t.Errorf("ERR avg FM not below DRR at %d/%d flow counts: ERR=%v DRR=%v",
			worse, len(res.Flows), errFM, drrFM)
	}
}

func TestFig6Render(t *testing.T) {
	p := smallFig6()
	p.MaxFlows = 3
	p.Cycles = 50_000
	p.Intervals = 200
	res, err := RunFig6(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flows,ERR,DRR") {
		t.Error("render missing CSV header")
	}
}

func TestTable1BoundsRespected(t *testing.T) {
	p := DefaultTable1Params()
	p.Fig4.Cycles = 400_000
	res, err := RunTable1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Discipline] = r
	}
	// Bounded disciplines respect their bounds. DRR and ERR are exact
	// transcriptions, so their analytic bounds must hold. WFQ
	// (packetized GPS, exact virtual time) tracks fluid GPS within one
	// maximum packet each way, so its relative fairness is bounded by
	// 2m; the paper's Table 1 entry of m is the idealised
	// Fair-Queuing figure.
	for _, name := range []string{"DRR", "ERR"} {
		row := byName[name]
		if row.BoundFlits <= 0 {
			t.Errorf("%s has no numeric bound", name)
			continue
		}
		if row.MeasuredFM >= row.BoundFlits {
			t.Errorf("%s measured FM %d >= bound %d", name, row.MeasuredFM, row.BoundFlits)
		}
	}
	if fq := byName["FQ (WFQ)"]; fq.MeasuredFM >= 2*fq.BoundFlits {
		t.Errorf("approximate WFQ measured FM %d >= 2m = %d", fq.MeasuredFM, 2*fq.BoundFlits)
	}
	// Unbounded disciplines measurably exceed ERR's bound on this
	// workload (their unfairness grows with the run).
	errBound := byName["ERR"].BoundFlits
	for _, name := range []string{"PBRR", "FCFS"} {
		if byName[name].MeasuredFM <= errBound {
			t.Errorf("%s measured FM %d suspiciously small", name, byName[name].MeasuredFM)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestAblationOccupancy(t *testing.T) {
	p := DefaultAblationOccupancyParams()
	p.Cycles = 300_000
	res, err := RunAblationOccupancy(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for i, d := range res.Disciplines {
		byName[d] = res.OccupancyShare[i]
	}
	// ERR equalises output time: both shares ~0.5.
	if s := byName["ERR"]; s[0] < 0.45 || s[0] > 0.55 {
		t.Errorf("ERR occupancy shares %v, want ~[0.5 0.5]", s)
	}
	// DRR budgets flits: the stalled flow occupies ~2/3 of the output.
	if s := byName["DRR"]; s[1] < 0.6 {
		t.Errorf("DRR stalled-flow occupancy share %.3f, want > 0.6", s[1])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Occupancy ablation") {
		t.Error("render missing title")
	}
}

func TestAblationSurplusReset(t *testing.T) {
	p := DefaultAblationSurplusResetParams()
	p.Cycles = 300_000
	res, err := RunAblationSurplusReset(p)
	if err != nil {
		t.Fatal(err)
	}
	// The ablated variant must not help the bursty flow; typically it
	// hurts. Guard loosely against inversion beyond noise.
	if res.DelayKeep < res.DelayReset*0.95 {
		t.Errorf("keeping surplus on drain improved the bursty flow's delay (%.1f vs %.1f)",
			res.DelayKeep, res.DelayReset)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Surplus-reset") {
		t.Error("render missing title")
	}
}
