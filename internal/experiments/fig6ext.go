package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fig6ExtParams parameterises the extension sweep behind the paper's
// closing observation: "when larger size packets are less likely than
// smaller size packets ... ERR achieves better fairness than DRR".
// We make the likelihood of large packets an explicit knob with a
// bimodal length distribution — Short-flit packets with probability
// 1-PLarge, Max-flit packets with probability PLarge — and sweep
// PLarge. DRR's quantum must be provisioned for Max whether or not
// big packets show up; ERR adapts to what actually arrives, so the
// fairness gap widens as PLarge shrinks.
type Fig6ExtParams struct {
	Flows     int
	Cycles    int64
	Short     int
	Max       int
	PLarges   []float64
	Intervals int
	Seed      uint64
	// Workers caps the worker pool running the probability ×
	// discipline grid (0 = GOMAXPROCS, 1 = serial). The result is
	// byte-identical for every value.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Collector, if set, accumulates registry telemetry from every
	// grid job (see SimConfig.Collector); it never affects the result.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired into every
	// grid job (see SimConfig.Trace); each job becomes one span track.
	Trace *trace.EngineTrace `json:"-"`
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs.
	Robustness
}

// DefaultFig6ExtParams returns defaults.
func DefaultFig6ExtParams() Fig6ExtParams {
	return Fig6ExtParams{
		Flows:     6,
		Cycles:    1_000_000,
		Short:     4,
		Max:       64,
		PLarges:   []float64{0.5, 0.2, 0.1, 0.05, 0.02, 0.01},
		Intervals: 5_000,
		Seed:      1,
	}
}

// Fig6ExtResult holds average relative fairness (bytes) per
// discipline per large-packet probability.
type Fig6ExtResult struct {
	Params Fig6ExtParams
	// AvgFMERR[i] and AvgFMDRR[i] correspond to PLarges[i].
	AvgFMERR []float64
	AvgFMDRR []float64
}

// RunFig6Ext runs the sweep.
func RunFig6Ext(p Fig6ExtParams) (*Fig6ExtResult, error) {
	// Two jobs (ERR, DRR) per probability point; both disciplines of a
	// point build the identical workload from the shared seed.
	mks := []func() sched.Scheduler{
		func() sched.Scheduler { return core.New() },
		func() sched.Scheduler { return sched.NewDRR(int64(p.Max), nil) },
	}
	jobs := make([]exec.Job[float64], 0, 2*len(p.PLarges))
	for _, pl := range p.PLarges {
		dist := rng.Bimodal{Short: p.Short, Long: p.Max, PShort: 1 - pl}
		for _, mk := range mks {
			mk, job := mk, len(jobs)
			jobs = append(jobs, func() (float64, error) {
				src := rng.New(p.Seed)
				sources := make([]traffic.Source, p.Flows)
				for f := 0; f < p.Flows; f++ {
					sources[f] = traffic.NewBacklogged(f, 4, dist, src.Split())
				}
				sim, err := RunSim(SimConfig{
					Flows:     p.Flows,
					Scheduler: mk(),
					Source:    traffic.NewMulti(sources...),
					Cycles:    p.Cycles,
					WithLog:   true,
					Collector: p.Collector,
					Trace:     p.Trace,
					FaultSpec: p.Faults,
					FaultSeed: p.faultSeed(p.Seed, job),
					Check:     p.Check,
				})
				if err != nil {
					return 0, err
				}
				return sim.Log.AvgFMRandomIntervals(p.Intervals, src.Split()) * 8, nil
			})
		}
	}
	opts, closeCP, err := gridOptions("fig6ext", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	fms, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &Fig6ExtResult{Params: p}
	for i := range p.PLarges {
		res.AvgFMERR = append(res.AvgFMERR, fms[2*i])
		res.AvgFMDRR = append(res.AvgFMDRR, fms[2*i+1])
	}
	return res, nil
}

// Render writes the sweep as a line chart plus CSV.
func (r *Fig6ExtResult) Render(w io.Writer) error {
	series := []plot.Series{
		{Name: "ERR", X: r.Params.PLarges, Y: r.AvgFMERR},
		{Name: "DRR", X: r.Params.PLarges, Y: r.AvgFMDRR},
	}
	title := fmt.Sprintf("Figure 6 extension: avg relative fairness (bytes) vs P(large packet), %d flows",
		r.Params.Flows)
	if err := plot.Lines(w, title, series, 64, 14); err != nil {
		return err
	}
	rows := make([][]float64, len(r.Params.PLarges))
	for i, x := range r.Params.PLarges {
		gap := 0.0
		if r.AvgFMERR[i] > 0 {
			gap = r.AvgFMDRR[i] / r.AvgFMERR[i]
		}
		rows[i] = []float64{x, r.AvgFMERR[i], r.AvgFMDRR[i], gap}
	}
	return plot.CSV(w, []string{"p_large", "ERR", "DRR", "DRR_over_ERR"}, rows)
}
