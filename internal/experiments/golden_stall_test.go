package experiments

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// TestGoldenStallAccounting pins the full stall-accounting chain —
// engine callbacks, ServiceLog, and the obs.Collector — against a
// hand-computed execution. FCFS serves in global arrival order, so
// with two packets injected at cycle 0 the schedule is exact:
//
//	flow 0: length 3, one stall cycle before every flit
//	flow 1: length 2, no stalls
//
//	cycle 0: stall f0      cycle 5: flit f0 (departs, occ 6)
//	cycle 1: flit f0       cycle 6: flit f1
//	cycle 2: stall f0      cycle 7: flit f1 (departs, occ 2)
//	cycle 3: flit f0       cycle 8: idle
//	cycle 4: stall f0      cycle 9: idle
//
// Over 10 cycles: 5 flit cycles (3 + 2), 3 stalled, 2 idle; delays
// 6 and 8 (tail cycle − arrival + 1), occupancies 6 and 2, per-packet
// stalls 3 and 0, backlog high water 2.
func TestGoldenStallAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector(reg, 2)
	res, err := RunSim(SimConfig{
		Flows:     2,
		Scheduler: sched.NewFCFS(),
		Source: traffic.NewReplay([]traffic.TraceEvent{
			{Cycle: 0, Flow: 0, Length: 3},
			{Cycle: 0, Flow: 1, Length: 2},
		}),
		Cycles:  10,
		WithLog: true,
		Stall: engine.StallFunc(func(flow int) int {
			if flow == 0 {
				return 1
			}
			return 0
		}),
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}

	// ServiceLog accounting.
	if got := res.Log.Cycles(); got != 10 {
		t.Fatalf("log cycles = %d, want 10", got)
	}
	if got := res.Log.Total(0); got != 3 {
		t.Errorf("flow 0 served = %d, want 3", got)
	}
	if got := res.Log.Total(1); got != 2 {
		t.Errorf("flow 1 served = %d, want 2", got)
	}
	if got := res.Log.StalledCycles(); got != 3 {
		t.Errorf("stalled cycles = %d, want 3", got)
	}
	if got := res.Log.IdleCycles(); got != 2 {
		t.Errorf("idle cycles = %d, want 2", got)
	}
	if got := res.Log.Utilization(); got != 0.8 {
		t.Errorf("utilization = %v, want 0.8", got)
	}

	// DelayStats sees the same departures.
	if got := res.Delays.Mean(); got != 7 {
		t.Errorf("mean delay = %v, want 7 (delays 6 and 8)", got)
	}

	// Collector counters mirror the log exactly.
	for name, want := range map[string]int64{
		"engine.flit_cycles":  5,
		"engine.stall_cycles": 3,
		"engine.idle_cycles":  2,
		"engine.injections":   2,
		"engine.departures":   2,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := col.FlitsServed.Values(); got[0] != 3 || got[1] != 2 {
		t.Errorf("flits_served = %v, want [3 2]", got)
	}
	if got := col.Backlog.Value(); got != 0 {
		t.Errorf("backlog = %d, want 0 after both departures", got)
	}
	if got := col.BacklogHighWater.Value(); got != 2 {
		t.Errorf("backlog high water = %d, want 2", got)
	}

	// Histogram contents: delay {6, 8}, occupancy {6, 2}, per-packet
	// stalls {3, 0}.
	if d := col.Delay; d.Count() != 2 || d.Sum() != 14 || d.Max() != 8 {
		t.Errorf("delay histogram count/sum/max = %d/%d/%d, want 2/14/8",
			d.Count(), d.Sum(), d.Max())
	}
	if o := col.Occupancy; o.Count() != 2 || o.Sum() != 8 || o.Max() != 6 {
		t.Errorf("occupancy histogram count/sum/max = %d/%d/%d, want 2/8/6",
			o.Count(), o.Sum(), o.Max())
	}
	if s := col.StallPerPacket; s.Count() != 2 || s.Sum() != 3 || s.Max() != 3 {
		t.Errorf("stall histogram count/sum/max = %d/%d/%d, want 2/3/3",
			s.Count(), s.Sum(), s.Max())
	}
}

// TestCollectorDoesNotPerturbResults pins the overhead contract's
// semantic half: wiring a collector must leave every simulation
// result — throughput, delays, the service log — bit-identical.
func TestCollectorDoesNotPerturbResults(t *testing.T) {
	run := func(col *obs.Collector) *SimResult {
		res, err := RunSim(SimConfig{
			Flows:     2,
			Scheduler: sched.NewFCFS(),
			Source: traffic.NewReplay([]traffic.TraceEvent{
				{Cycle: 0, Flow: 0, Length: 3},
				{Cycle: 2, Flow: 1, Length: 5},
				{Cycle: 4, Flow: 0, Length: 2},
			}),
			Cycles:    40,
			WithLog:   true,
			Stall:     engine.StallFunc(func(flow int) int { return flow }),
			Collector: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	wired := run(obs.NewCollector(obs.NewRegistry(), 2))
	if bare.Delays.Mean() != wired.Delays.Mean() {
		t.Errorf("mean delay changed: %v vs %v", bare.Delays.Mean(), wired.Delays.Mean())
	}
	for f := 0; f < 2; f++ {
		if bare.Log.Total(f) != wired.Log.Total(f) {
			t.Errorf("flow %d served changed: %d vs %d", f, bare.Log.Total(f), wired.Log.Total(f))
		}
	}
	if bare.Log.StalledCycles() != wired.Log.StalledCycles() ||
		bare.Log.IdleCycles() != wired.Log.IdleCycles() {
		t.Errorf("stall/idle accounting changed: %d/%d vs %d/%d",
			bare.Log.StalledCycles(), bare.Log.IdleCycles(),
			wired.Log.StalledCycles(), wired.Log.IdleCycles())
	}
}
