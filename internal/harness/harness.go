// Package harness provides a minimal, timing-free driver for
// sched.Scheduler implementations: per-flow FIFO queues, arrival
// delivery, and packet-at-a-time service with per-flow cumulative
// accounting. The full cycle-accurate simulator lives in package
// engine; this harness is the light-weight core used by unit and
// property tests of the disciplines themselves, where only the
// *order* and *amount* of service matters, not its timing.
package harness

import (
	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sched"
)

// Driver owns per-flow queues and drives one scheduler.
type Driver struct {
	sched  sched.Scheduler
	queues []queue.PacketQueue
	served []int64 // cumulative flits served per flow
	// CostFn maps a dequeued packet to the cost billed to the
	// scheduler (default: its length). Experiments use it to model
	// wormhole occupancy exceeding packet length.
	CostFn func(p flit.Packet) int64
	// OnServe, if non-nil, observes every served packet with its cost.
	OnServe func(p flit.Packet, cost int64)
	backlog int   // packets across all queues
	now     int64 // pseudo-time: total cost served so far
}

// New returns a driver over n flows for the given scheduler.
func New(n int, s sched.Scheduler) *Driver {
	return &Driver{
		sched:  s,
		queues: make([]queue.PacketQueue, n),
		served: make([]int64, n),
	}
}

// Arrive appends a packet to its flow's queue and notifies the
// scheduler (including the length side-channel if the discipline is
// LengthAware).
func (d *Driver) Arrive(p flit.Packet) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	q := &d.queues[p.Flow]
	wasEmpty := q.Empty()
	q.Push(p)
	d.backlog++
	if ca, ok := d.sched.(sched.ClockAware); ok {
		ca.SetNow(d.now)
	}
	d.sched.OnArrival(p.Flow, wasEmpty)
	if la, ok := d.sched.(sched.LengthAware); ok {
		la.OnArrivalLength(p.Flow, p.Length)
	}
}

// Backlog returns the number of queued packets across all flows.
func (d *Driver) Backlog() int { return d.backlog }

// QueueLen returns the number of packets queued for flow.
func (d *Driver) QueueLen(flow int) int { return d.queues[flow].Len() }

// Served returns the cumulative flits served from flow.
func (d *Driver) Served(flow int) int64 { return d.served[flow] }

// ServeOne asks the scheduler for the next flow, dequeues that flow's
// head packet, bills the scheduler, and returns the packet. It panics
// if no packets are queued or if the scheduler selects an empty flow
// (a scheduler bug the harness refuses to mask).
func (d *Driver) ServeOne() flit.Packet {
	if d.backlog == 0 {
		panic("harness: ServeOne with no queued packets")
	}
	flow := d.sched.NextFlow()
	q := &d.queues[flow]
	if q.Empty() {
		panic("harness: scheduler selected an empty flow")
	}
	p := q.Pop()
	d.backlog--
	cost := int64(p.Length)
	if d.CostFn != nil {
		cost = d.CostFn(p)
	}
	d.served[flow] += int64(p.Length)
	d.now += cost
	d.sched.OnPacketDone(flow, cost, q.Empty())
	if d.OnServe != nil {
		d.OnServe(p, cost)
	}
	return p
}

// Drain serves until every queue is empty, returning the packets in
// service order.
func (d *Driver) Drain() []flit.Packet {
	var out []flit.Packet
	for d.backlog > 0 {
		out = append(out, d.ServeOne())
	}
	return out
}

// ServeN serves up to n packets (fewer if the backlog drains),
// returning them in service order.
func (d *Driver) ServeN(n int) []flit.Packet {
	var out []flit.Packet
	for i := 0; i < n && d.backlog > 0; i++ {
		out = append(out, d.ServeOne())
	}
	return out
}
