package sched

import (
	"testing"
	"time"
)

func TestCostClockRoundsUpAndClamps(t *testing.T) {
	cases := []struct {
		unit time.Duration
		d    time.Duration
		want int64
	}{
		{time.Millisecond, 0, 1},
		{time.Millisecond, -time.Second, 1},
		{time.Millisecond, time.Microsecond, 1},
		{time.Millisecond, time.Millisecond, 1},
		{time.Millisecond, time.Millisecond + time.Nanosecond, 2},
		{time.Millisecond, 5 * time.Second, 5000},
		{10 * time.Millisecond, 15 * time.Millisecond, 2},
		{0, 3 * time.Millisecond, 3},      // zero unit defaults to 1ms
		{-time.Second, time.Second, 1000}, // negative unit too
	}
	for _, c := range cases {
		if got := (CostClock{Unit: c.unit}).Cost(c.d); got != c.want {
			t.Errorf("CostClock{%v}.Cost(%v) = %d, want %d", c.unit, c.d, got, c.want)
		}
	}
}
