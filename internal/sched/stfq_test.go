package sched_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestSTFQFairness(t *testing.T) {
	d := harness.New(2, sched.NewSTFQ(nil))
	src := rng.New(61)
	l64 := rng.NewUniform(1, 64)
	l128 := rng.NewUniform(1, 128)
	for i := 0; i < 2000; i++ {
		d.Arrive(pkt(0, l64.Draw(src)))
		d.Arrive(pkt(1, l128.Draw(src)))
	}
	d.ServeN(1500)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 0.93 || r > 1.07 {
		t.Errorf("STFQ throughput ratio %.3f, want ~1.0", r)
	}
}

func TestSTFQWeighted(t *testing.T) {
	w := func(flow int) float64 { return []float64{1, 3}[flow] }
	d := harness.New(2, sched.NewSTFQ(w))
	for i := 0; i < 1200; i++ {
		d.Arrive(pkt(0, 10))
		d.Arrive(pkt(1, 10))
	}
	d.ServeN(1000)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 2.8 || r > 3.2 {
		t.Errorf("STFQ 3:1 weights gave ratio %.3f", r)
	}
}

func TestSTFQSingleFlowFIFO(t *testing.T) {
	d := harness.New(1, sched.NewSTFQ(nil))
	for i := 0; i < 40; i++ {
		d.Arrive(pkt(0, i%7+1))
	}
	got := d.Drain()
	if len(got) != 40 {
		t.Fatalf("drained %d packets", len(got))
	}
	for i, p := range got {
		if p.Length != i%7+1 {
			t.Fatalf("STFQ reordered a single flow's packets at %d", i)
		}
	}
}

// STFQ's defining latency property versus SCFQ: a long-idle low-rate
// flow's packet starts at v (the current virtual time), not at a
// future finish time, so it is served promptly after reactivation.
func TestSTFQPromptReactivation(t *testing.T) {
	d := harness.New(2, sched.NewSTFQ(nil))
	// Flow 0 is heavily backlogged with large packets.
	for i := 0; i < 100; i++ {
		d.Arrive(pkt(0, 64))
	}
	d.ServeN(10)
	// Flow 1 wakes up with one tiny packet: it must be served next
	// (its start tag equals v, flow 0's next start tag is far ahead).
	d.Arrive(pkt(1, 1))
	p := d.ServeOne()
	if p.Flow != 1 {
		t.Errorf("reactivated flow not served promptly; got flow %d", p.Flow)
	}
}

func TestSTFQConservesWork(t *testing.T) {
	d := harness.New(4, sched.NewSTFQ(nil))
	src := rng.New(71)
	lens := rng.NewUniform(1, 32)
	arrived := 0
	for step := 0; step < 4000; step++ {
		if src.Bernoulli(0.6) || d.Backlog() == 0 {
			d.Arrive(pkt(src.Intn(4), lens.Draw(src)))
			arrived++
		} else {
			d.ServeOne()
		}
	}
	drained := len(d.Drain())
	if d.Backlog() != 0 {
		t.Error("backlog left after drain")
	}
	_ = drained
	total := int64(0)
	for f := 0; f < 4; f++ {
		total += d.Served(f)
	}
	if total == 0 || arrived == 0 {
		t.Error("no work done")
	}
}
