package exec

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// cpResult is a representative grid-job result: floats round-trip
// encoding/json exactly, which is what makes resume byte-identical.
type cpResult struct {
	V float64
	N int
}

func cpJobs(n int, ran *atomic.Int64) []Job[cpResult] {
	jobs := make([]Job[cpResult], n)
	for i := range jobs {
		i := i
		jobs[i] = func() (cpResult, error) {
			if ran != nil {
				ran.Add(1)
			}
			return cpResult{V: float64(i)*1.1 + 0.3, N: i * i}, nil
		}
	}
	return jobs
}

func TestSignature(t *testing.T) {
	a, err := Signature("grid", struct{ Seed int }{1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Signature("grid", struct{ Seed int }{1})
	c, _ := Signature("grid", struct{ Seed int }{2})
	d, _ := Signature("other", struct{ Seed int }{1})
	if a != b {
		t.Error("identical parts produced different signatures")
	}
	if a == c || a == d {
		t.Error("different parts produced the same signature")
	}
}

func TestCheckpointFreshThenResumeSkipsJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sig, _ := Signature("t", 1)

	cp, err := OpenCheckpoint(path, sig, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(cpJobs(6, nil), 3, WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, sig, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if got := cp2.Resumed(); got != 6 {
		t.Fatalf("Resumed() = %d, want 6", got)
	}
	// Poisoned jobs prove the pool uses the recorded results.
	poisoned := make([]Job[cpResult], 6)
	for i := range poisoned {
		poisoned[i] = func() (cpResult, error) { return cpResult{}, errors.New("must not run") }
	}
	resumed, err := Run(poisoned, 3, WithCheckpoint(cp2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Fatalf("resumed results differ:\n%v\nvs\n%v", first, resumed)
	}
}

// TestCheckpointResumeByteIdentical simulates the acceptance scenario:
// a sweep killed mid-run (checkpoint holds a prefix of the jobs plus a
// torn final line) resumed to completion must produce aggregate output
// byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	jobs := cpJobs(8, nil)
	uninterrupted, err := Run(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(uninterrupted)

	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sig, _ := Signature("grid", 7)
	cp, err := OpenCheckpoint(path, sig, false)
	if err != nil {
		t.Fatal(err)
	}
	// "Kill" after three jobs: only a prefix is recorded.
	if _, err := Run(jobs[:3], 1, WithCheckpoint(cp)); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	// A mid-write kill leaves a torn final line; resume must shrug it off.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job":3,"resu`)
	f.Close()

	cp2, err := OpenCheckpoint(path, sig, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if got := cp2.Resumed(); got != 3 {
		t.Fatalf("Resumed() = %d, want 3 (torn line discarded)", got)
	}
	var reran atomic.Int64
	resumed, err := Run(cpJobs(8, &reran), 2, WithCheckpoint(cp2))
	if err != nil {
		t.Fatal(err)
	}
	if got := reran.Load(); got != 5 {
		t.Errorf("re-ran %d jobs, want 5 (three were checkpointed)", got)
	}
	gotJSON, _ := json.Marshal(resumed)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

func TestCheckpointSignatureMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sigA, _ := Signature("grid", 1)
	sigB, _ := Signature("grid", 2)
	cp, err := OpenCheckpoint(path, sigA, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cpJobs(2, nil), 1, WithCheckpoint(cp)); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if _, err := OpenCheckpoint(path, sigB, true); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("resume with a different signature: err = %v, want a signature-mismatch refusal", err)
	}
}

func TestCheckpointCorruptMidFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sig, _ := Signature("grid", 1)
	cp, err := OpenCheckpoint(path, sig, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cpJobs(3, nil), 1, WithCheckpoint(cp)); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	// Corrupt a record in the middle (not the final line): that is not
	// a mid-write kill, it is a damaged file, and must be refused.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("checkpoint has %d lines, want header + 3 records", len(lines))
	}
	lines[2] = `{"job": garbage`
	os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
	if _, err := OpenCheckpoint(path, sig, true); err == nil || !strings.Contains(err.Error(), "mid-file") {
		t.Fatalf("resume from corrupt file: err = %v, want a corrupt-checkpoint refusal", err)
	}
}

func TestCheckpointSchemaMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sig, _ := Signature("grid", 1)
	os.WriteFile(path, []byte(`{"checkpoint":99,"sig":"`+sig+`"}`+"\n"), 0o644)
	if _, err := OpenCheckpoint(path, sig, true); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("resume from future schema: err = %v, want a schema refusal", err)
	}
}

func TestCheckpointResumeMissingOrTornHeader(t *testing.T) {
	dir := t.TempDir()
	sig, _ := Signature("grid", 1)

	// Missing file: nothing to resume, not an error.
	cp, err := OpenCheckpoint(filepath.Join(dir, "missing.jsonl"), sig, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Resumed() != 0 {
		t.Errorf("Resumed() = %d on a fresh file, want 0", cp.Resumed())
	}
	cp.Close()

	// A kill mid-header leaves one torn line: equivalent to empty.
	torn := filepath.Join(dir, "torn.jsonl")
	os.WriteFile(torn, []byte(`{"checkpo`), 0o644)
	cp2, err := OpenCheckpoint(torn, sig, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Resumed() != 0 {
		t.Errorf("Resumed() = %d after torn header, want 0", cp2.Resumed())
	}
	cp2.Close()

	// A non-checkpoint file must be refused, not silently truncated.
	alien := filepath.Join(dir, "alien.jsonl")
	os.WriteFile(alien, []byte("not json\nnot json either\n"), 0o644)
	if _, err := OpenCheckpoint(alien, sig, true); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("resume from non-checkpoint file: err = %v, want a header refusal", err)
	}
}

// TestShardMergeResumeByteIdentical pins the cross-process sweep
// contract: a grid split 3 ways with WithShard, each shard writing
// its own checkpoint, then MergeCheckpoints + an unsharded resume
// must (a) produce a merged checkpoint file byte-identical to the one
// a serial single-process sweep writes, and (b) recover the full
// result slice without re-executing a single job.
func TestShardMergeResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sig, _ := Signature("shard-grid", 7)
	const n, of = 11, 3

	// Serial single-process reference.
	refPath := filepath.Join(dir, "ref.jsonl")
	refCP, err := OpenCheckpoint(refPath, sig, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(cpJobs(n, nil), 1, WithCheckpoint(refCP))
	if err != nil {
		t.Fatal(err)
	}
	refCP.Close()

	// 3-way sharded sweep: separate processes simulated by separate
	// Run calls with separate checkpoint files.
	var shardPaths []string
	for s := 0; s < of; s++ {
		path := filepath.Join(dir, "shard"+string(rune('0'+s))+".jsonl")
		shardPaths = append(shardPaths, path)
		cp, err := OpenCheckpoint(path, sig, false)
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Int64
		got, err := Run(cpJobs(n, &ran), 2, WithCheckpoint(cp), WithShard(s, of))
		cp.Close()
		if err != nil {
			t.Fatal(err)
		}
		owned := 0
		for i := range got {
			if i%of == s {
				owned++
				if got[i] != want[i] {
					t.Fatalf("shard %d job %d = %+v, want %+v", s, i, got[i], want[i])
				}
			} else if got[i] != (cpResult{}) {
				t.Fatalf("shard %d filled foreign job %d: %+v", s, i, got[i])
			}
		}
		if int(ran.Load()) != owned {
			t.Fatalf("shard %d executed %d jobs, owns %d", s, ran.Load(), owned)
		}
	}

	merged := filepath.Join(dir, "merged.jsonl")
	count, err := MergeCheckpoints(merged, sig, shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("merged %d records, want %d", count, n)
	}
	refBytes, _ := os.ReadFile(refPath)
	gotBytes, _ := os.ReadFile(merged)
	if !reflect.DeepEqual(refBytes, gotBytes) {
		t.Fatalf("merged checkpoint differs from the serial one:\nserial:\n%s\nmerged:\n%s", refBytes, gotBytes)
	}

	// Unsharded resume against the merge: full results, zero execution.
	cp, err := OpenCheckpoint(merged, sig, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Resumed() != n {
		t.Fatalf("Resumed() = %d, want %d", cp.Resumed(), n)
	}
	poisoned := make([]Job[cpResult], n)
	for i := range poisoned {
		poisoned[i] = func() (cpResult, error) { return cpResult{}, errors.New("must not run") }
	}
	got, err := Run(poisoned, 4, WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed results differ from serial reference")
	}

	// A source from a different grid is refused.
	otherSig, _ := Signature("shard-grid", 8)
	if _, err := MergeCheckpoints(filepath.Join(dir, "bad.jsonl"), otherSig, shardPaths[0]); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("merge across grids: err = %v, want a signature refusal", err)
	}
}
