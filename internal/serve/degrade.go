package serve

import (
	"sync/atomic"
	"time"
)

// Degradation tiers. Higher tiers shed more: the server gives up
// features to stay alive, in order, rather than failing everything at
// once.
const (
	tierFull       = int32(0) // full service
	tierShedWrites = int32(1) // writes shed with 503; reads still served
	tierHealthOnly = int32(2) // only health checks answered
)

// degradeCtl drives the degradation tier from queued-memory occupancy
// (queuedBytes / GlobalBytes) with watermark hysteresis: a tier
// engages the moment occupancy crosses its high watermark (protecting
// the server is urgent), but releases only after occupancy has
// dropped below the low watermark AND the tier has been held for the
// dwell time — so a load oscillating around a watermark cannot flap
// the service mode.
type degradeCtl struct {
	tier atomic.Int32

	writeHigh, writeLow float64
	fullHigh, fullLow   float64
	dwell               time.Duration
	now                 func() time.Time

	// lastChange is read/written under the server lock (update is
	// only called there); tier is atomic so the admission fast path
	// can read it without the lock.
	lastChange time.Time

	transitions atomic.Int64
}

func (d *degradeCtl) init(writeHigh, writeLow, fullHigh, fullLow float64, dwell time.Duration, now func() time.Time) {
	d.writeHigh, d.writeLow = writeHigh, writeLow
	d.fullHigh, d.fullLow = fullHigh, fullLow
	d.dwell = dwell
	d.now = now
}

// tierNow returns the current tier without taking any lock.
func (d *degradeCtl) tierNow() int32 { return d.tier.Load() }

// update advances the tier machine given the current occupancy
// fraction. Called under the server lock on every queue transition.
// It returns true when the tier changed.
func (d *degradeCtl) update(occ float64) bool {
	cur := d.tier.Load()
	next := cur

	// Escalate immediately: the highest tier whose high watermark is
	// breached wins.
	switch {
	case occ >= d.fullHigh:
		next = tierHealthOnly
	case occ >= d.writeHigh && cur < tierShedWrites:
		next = tierShedWrites
	}

	// De-escalate one tier at a time, only below the low watermark and
	// after the dwell.
	if next == cur && cur > tierFull {
		low := d.writeLow
		if cur == tierHealthOnly {
			low = d.fullLow
		}
		if occ <= low && d.now().Sub(d.lastChange) >= d.dwell {
			next = cur - 1
		}
	}

	if next == cur {
		return false
	}
	d.tier.Store(next)
	d.lastChange = d.now()
	d.transitions.Add(1)
	return true
}

// degradeLocked recomputes occupancy and advances the degradation
// tier; caller holds s.mu.
func (s *Server) degradeLocked() {
	occ := float64(s.queuedBytes) / float64(s.cfg.GlobalBytes)
	if s.degrade.update(occ) {
		s.m.tier.Set(int64(s.degrade.tierNow()))
		s.m.tierChanges.Inc()
	}
}

// Tier returns the current degradation tier (0 = full service,
// 1 = writes shed, 2 = health checks only).
func (s *Server) Tier() int { return int(s.degrade.tierNow()) }
