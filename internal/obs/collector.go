package obs

import (
	"repro/internal/engine"
	"repro/internal/flit"
)

// Collector turns the engine's observation callbacks (OnFlit, OnIdle,
// OnStall, OnDeparture, OnInject) into registry metrics without
// touching simulation semantics: Wire chains onto whatever callbacks
// a Config already carries, so existing consumers (ServiceLog,
// FairnessTracker, delay stats) keep seeing exactly the events they
// saw before.
//
// Per forwarded flit the cost is one atomic add on a Vec cell plus a
// counter increment; histograms are only touched at packet
// granularity (departures) and at injections, which are orders of
// magnitude rarer than cycles.
type Collector struct {
	// FlitsServed counts forwarded flits per flow.
	FlitsServed *Vec
	// FlitCycles / IdleCycles / StallCycles partition every observed
	// cycle: forwarding, idle, or occupied-but-blocked.
	FlitCycles  *Counter
	IdleCycles  *Counter
	StallCycles *Counter
	// Injections / Departures count packets entering and leaving the
	// system.
	Injections *Counter
	Departures *Counter
	// Delay is the distribution of packet delays (enqueue to tail-flit
	// dequeue, the Figure 5 metric), log2 buckets.
	Delay *Histogram
	// Occupancy is the distribution of per-packet output occupancy in
	// cycles (== length without stalls), log2 buckets.
	Occupancy *Histogram
	// StallPerPacket is the distribution of stall cycles billed to
	// each departed packet (occupancy - length), log2 buckets.
	StallPerPacket *Histogram
	// Backlog tracks the packets currently in the system
	// (injected - departed); BacklogHighWater is its high-water mark.
	Backlog          *Gauge
	BacklogHighWater *Gauge
}

// NewCollector registers a collector's metrics in reg under the
// "engine." prefix and returns it. flows sizes the per-flow vector.
func NewCollector(reg *Registry, flows int) *Collector {
	return &Collector{
		FlitsServed:      reg.Vec("engine.flits_served", flows),
		FlitCycles:       reg.Counter("engine.flit_cycles"),
		IdleCycles:       reg.Counter("engine.idle_cycles"),
		StallCycles:      reg.Counter("engine.stall_cycles"),
		Injections:       reg.Counter("engine.injections"),
		Departures:       reg.Counter("engine.departures"),
		Delay:            reg.Histogram("engine.packet_delay_cycles", HistogramOpts{Log2: true}),
		Occupancy:        reg.Histogram("engine.packet_occupancy_cycles", HistogramOpts{Log2: true}),
		StallPerPacket:   reg.Histogram("engine.packet_stall_cycles", HistogramOpts{Log2: true}),
		Backlog:          reg.Gauge("engine.backlog_packets"),
		BacklogHighWater: reg.Gauge("engine.backlog_packets_high_water"),
	}
}

// Wire chains the collector onto cfg's callbacks. It must be called
// after cfg's own callbacks are assigned and before engine.NewEngine
// consumes the config. Wiring preserves the engine's OnStall-fallback
// contract: if cfg had no OnStall, stall cycles keep flowing to the
// pre-existing OnIdle (in addition to being counted as stalls here),
// so a consumer that accounted every non-forwarding cycle via OnIdle
// still does.
func (c *Collector) Wire(cfg *engine.Config) {
	prevFlit := cfg.OnFlit
	cfg.OnFlit = func(cycle int64, flow int) {
		c.FlitCycles.Inc()
		c.FlitsServed.Add(flow, 1)
		if prevFlit != nil {
			prevFlit(cycle, flow)
		}
	}
	prevIdle := cfg.OnIdle
	cfg.OnIdle = func(cycle int64) {
		c.IdleCycles.Inc()
		if prevIdle != nil {
			prevIdle(cycle)
		}
	}
	prevStall := cfg.OnStall
	cfg.OnStall = func(cycle int64, flow int) {
		c.StallCycles.Inc()
		if prevStall != nil {
			prevStall(cycle, flow)
		} else if prevIdle != nil {
			prevIdle(cycle)
		}
	}
	prevDep := cfg.OnDeparture
	cfg.OnDeparture = func(p flit.Packet, cycle, occupancy int64) {
		c.Departures.Inc()
		c.Delay.Observe(cycle - p.Arrival + 1)
		c.Occupancy.Observe(occupancy)
		c.StallPerPacket.Observe(occupancy - int64(p.Length))
		c.Backlog.Add(-1)
		if prevDep != nil {
			prevDep(p, cycle, occupancy)
		}
	}
	prevInj := cfg.OnInject
	cfg.OnInject = func(p flit.Packet, cycle int64) {
		c.Injections.Inc()
		c.BacklogHighWater.SetMax(c.Backlog.Add(1))
		if prevInj != nil {
			prevInj(p, cycle)
		}
	}
}
