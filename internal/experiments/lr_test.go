package experiments

import (
	"strings"
	"testing"
)

func TestLRLatencies(t *testing.T) {
	p := DefaultLRParams()
	p.Cycles = 200_000
	res, err := RunLR(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for i, d := range res.Disciplines {
		byName[d] = res.ThetaCycles[i]
	}
	// Every discipline measured something positive.
	for d, th := range byName {
		if th <= 0 {
			t.Errorf("%s empirical Theta %.0f, want > 0", d, th)
		}
	}
	// Round-robin start-up latency is bounded by a handful of rounds:
	// one round serves at most ~n*(1 + MaxSC + m) flits, so Theta stays
	// within a few n*m.
	bound := float64(6 * p.Flows * p.MaxLen)
	for _, d := range []string{"ERR", "DRR"} {
		if byName[d] > bound {
			t.Errorf("%s Theta %.0f exceeds %v", d, byName[d], bound)
		}
	}
	// Timestamp schedulers give tighter start-up latency than the
	// round-robin family on this workload.
	if byName["WFQ"] > byName["ERR"] {
		t.Errorf("WFQ Theta %.0f worse than ERR's %.0f", byName["WFQ"], byName["ERR"])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Latency-rate") {
		t.Error("render missing title")
	}
}
