// Package experiments reproduces, one runner per table/figure, the
// evaluation section of "Fair and Efficient Packet Scheduling in
// Wormhole Networks" (Kanhere, Parekh & Sethu, IPDPS 2000):
//
//   - Table 1 — fairness measure and work complexity of the
//     disciplines, with an empirical fairness check per discipline;
//   - Figure 3 — a traced ERR execution (see cmd/errtrace);
//   - Figure 4 (a-d) — per-flow throughput of ERR vs PBRR, FBRR,
//     FCFS, DRR under heterogeneous rates and packet lengths;
//   - Figure 5 (a,b) — average packet delay vs transient congestion
//     intensity, ERR vs FCFS and vs PBRR;
//   - Figure 6 — average relative fairness vs number of flows, ERR
//     vs DRR under exponentially distributed packet lengths;
//
// plus the ablations called out in DESIGN.md. Every runner accepts a
// scaled-down parameter set so the full suite also runs as tests; the
// paper-scale parameters are the documented defaults of cmd/errsim.
package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// SimResult bundles the measurements of one simulation run.
type SimResult struct {
	// Discipline is the scheduler's Name.
	Discipline string
	// Throughput holds per-flow served volume.
	Throughput *metrics.ThroughputTable
	// Delays holds packet delay statistics.
	Delays *metrics.DelayStats
	// Log is the cycle-resolution service log (nil unless requested).
	Log *metrics.ServiceLog
	// Cycles is the number of simulated cycles.
	Cycles int64
}

// SimConfig configures one run of the single-server simulator.
type SimConfig struct {
	Flows     int
	Scheduler sched.Scheduler     // exactly one of Scheduler /
	FlitSched sched.FlitScheduler // FlitSched must be set
	Source    traffic.Source
	Cycles    int64
	// DrainAfter, when true, keeps stepping after Cycles until all
	// queues empty (the Figure 5 protocol).
	DrainAfter bool
	// DrainBudget caps the drain phase (0 = 16x Cycles).
	DrainBudget int64
	// WithLog records a cycle-resolution metrics.ServiceLog
	// (costs one byte per cycle).
	WithLog bool
	// Stall, if set, injects downstream stalls (wormhole occupancy
	// mode).
	Stall engine.StallModel
	// AllowLengthAwareStalls forwards to engine.Config (ablations
	// only).
	AllowLengthAwareStalls bool
	// Collector, if set, is wired onto the engine callbacks and
	// accumulates registry metrics (per-flow service, delay/occupancy
	// histograms, backlog high water) alongside the standard result
	// metrics. Safe to share across concurrent runs: all collector
	// mutations are atomic.
	Collector *obs.Collector
}

// RunSim executes one simulation and collects the standard metrics.
func RunSim(cfg SimConfig) (*SimResult, error) {
	res := &SimResult{
		Throughput: metrics.NewThroughputTable(cfg.Flows, flit.DefaultFlitBytes),
		Delays:     metrics.NewDelayStats(cfg.Flows),
	}
	if cfg.Scheduler != nil {
		res.Discipline = cfg.Scheduler.Name()
	} else if cfg.FlitSched != nil {
		res.Discipline = cfg.FlitSched.Name()
	}
	if cfg.WithLog {
		// The hint preallocates for the main run; drain-phase cycles
		// beyond it simply grow the log.
		res.Log = metrics.NewServiceLogCap(cfg.Flows, 0, cfg.Cycles)
	}
	ecfg := engine.Config{
		Flows:                  cfg.Flows,
		Scheduler:              cfg.Scheduler,
		FlitSched:              cfg.FlitSched,
		Source:                 cfg.Source,
		Stall:                  cfg.Stall,
		AllowLengthAwareStalls: cfg.AllowLengthAwareStalls,
		OnFlit: func(cycle int64, flow int) {
			res.Throughput.Serve(flow, 1)
			if res.Log != nil {
				res.Log.Record(flow)
			}
		},
		OnDeparture: func(p flit.Packet, cycle, occ int64) {
			res.Delays.Departure(p, cycle)
		},
	}
	if res.Log != nil {
		ecfg.OnIdle = func(cycle int64) { res.Log.Record(metrics.Idle) }
		// Without this, a stall model plus WithLog would fall back to
		// OnIdle and occupancy-without-service cycles would be logged
		// as idle time, undercounting utilization derived from the log.
		ecfg.OnStall = func(cycle int64, flow int) { res.Log.Record(metrics.Stalled) }
	}
	if cfg.Collector != nil {
		cfg.Collector.Wire(&ecfg)
	}
	e, err := engine.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	e.Run(cfg.Cycles)
	res.Cycles = cfg.Cycles
	if cfg.DrainAfter {
		budget := cfg.DrainBudget
		if budget == 0 {
			budget = 16 * cfg.Cycles
		}
		extra, drained := e.RunUntilDrained(budget)
		res.Cycles += extra
		if !drained {
			return nil, fmt.Errorf("experiments: %s did not drain within %d cycles",
				res.Discipline, budget)
		}
	}
	return res, nil
}
