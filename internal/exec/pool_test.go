package exec

import (
	"sync/atomic"
	"testing"
)

func TestPoolDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		out := make([]int, 64)
		tasks := make([]func(), len(out))
		for i := range tasks {
			i := i
			tasks[i] = func() { out[i] = i + 1 }
		}
		p.Do(tasks...)
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i+1)
			}
		}
		p.Close()
	}
}

func TestPoolReuseAcrossRounds(t *testing.T) {
	// The mesh calls Do once per simulated cycle; the pool must stay
	// healthy across many small rounds without spawning goroutines.
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 2000; round++ {
		p.Do(
			func() { total.Add(1) },
			func() { total.Add(1) },
			func() { total.Add(1) },
		)
	}
	if got := total.Load(); got != 6000 {
		t.Fatalf("ran %d tasks, want 6000", got)
	}
}

func TestPoolDoEmptyAndSingle(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Do() // no tasks: must not hang
	ran := false
	p.Do(func() { ran = true })
	if !ran {
		t.Fatal("single task did not run")
	}
}

func TestPoolWorkersNormalized(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	p2 := NewPool(3)
	defer p2.Close()
	if p2.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p2.Workers())
	}
}
