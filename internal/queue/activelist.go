package queue

// ActiveList is the FIFO of active flow ids maintained by round-robin
// schedulers (ERR Figure 1, DRR). It supports O(1) membership test,
// O(1) add-to-tail, and O(1) remove-from-head, which is what Theorem 1
// of the paper relies on for the O(1) work complexity of ERR.
//
// Implementation: a growable ring of flow ids plus a membership
// bitmap indexed by flow id. The same flow may not appear twice.
// The zero value is an empty list; flows of any non-negative id may
// be added (the bitmap grows on demand).
type ActiveList struct {
	ring       []int
	head, size int
	member     []bool
}

// Len returns the number of flows in the list.
func (l *ActiveList) Len() int { return l.size }

// Empty reports whether the list has no flows.
func (l *ActiveList) Empty() bool { return l.size == 0 }

// Contains reports whether flow id is currently in the list.
// This is ExistsInActiveList from the paper's pseudo-code.
func (l *ActiveList) Contains(id int) bool {
	return id >= 0 && id < len(l.member) && l.member[id]
}

// PushTail appends flow id at the tail. It panics if the flow is
// already present (schedulers must check Contains first; a double add
// would break the round-robin invariant silently).
func (l *ActiveList) PushTail(id int) {
	if id < 0 {
		panic("queue: negative flow id")
	}
	if l.Contains(id) {
		panic("queue: flow already in ActiveList")
	}
	if id >= len(l.member) {
		nm := make([]bool, id+1)
		copy(nm, l.member)
		l.member = nm
	}
	if l.size == len(l.ring) {
		l.grow()
	}
	l.ring[(l.head+l.size)%len(l.ring)] = id
	l.size++
	l.member[id] = true
}

// PopHead removes and returns the flow id at the head. It panics if
// the list is empty.
func (l *ActiveList) PopHead() int {
	if l.size == 0 {
		panic("queue: PopHead from empty ActiveList")
	}
	id := l.ring[l.head]
	l.head = (l.head + 1) % len(l.ring)
	l.size--
	l.member[id] = false
	return id
}

// PeekHead returns the flow id at the head without removing it.
// It panics if the list is empty.
func (l *ActiveList) PeekHead() int {
	if l.size == 0 {
		panic("queue: PeekHead on empty ActiveList")
	}
	return l.ring[l.head]
}

// Snapshot returns the flow ids in FIFO order (head first). Intended
// for tests and tracing; O(n).
func (l *ActiveList) Snapshot() []int {
	out := make([]int, l.size)
	for i := 0; i < l.size; i++ {
		out[i] = l.ring[(l.head+i)%len(l.ring)]
	}
	return out
}

func (l *ActiveList) grow() {
	n := len(l.ring) * 2
	if n == 0 {
		n = 8
	}
	nr := make([]int, n)
	for i := 0; i < l.size; i++ {
		nr[i] = l.ring[(l.head+i)%len(l.ring)]
	}
	l.ring = nr
	l.head = 0
}
