package engine

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Flows: 0, Scheduler: sched.NewFCFS()}); err == nil {
		t.Error("Flows=0 accepted")
	}
	if _, err := NewEngine(Config{Flows: 1}); err == nil {
		t.Error("no scheduler accepted")
	}
	if _, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS(), FlitSched: sched.NewFBRR()}); err == nil {
		t.Error("two schedulers accepted")
	}
	// Length-aware + stalls is refused by default...
	if _, err := NewEngine(Config{
		Flows: 1, Scheduler: sched.NewDRR(64, nil),
		Stall: StallFunc(func(int) int { return 1 }),
	}); err == nil {
		t.Error("DRR with stalls accepted without override")
	}
	// ...but allowed with the ablation override.
	if _, err := NewEngine(Config{
		Flows: 1, Scheduler: sched.NewDRR(64, nil),
		Stall:                  StallFunc(func(int) int { return 1 }),
		AllowLengthAwareStalls: true,
	}); err != nil {
		t.Errorf("override rejected: %v", err)
	}
	// ERR with stalls needs no override.
	if _, err := NewEngine(Config{
		Flows: 1, Scheduler: core.New(),
		Stall: StallFunc(func(int) int { return 1 }),
	}); err != nil {
		t.Errorf("ERR with stalls rejected: %v", err)
	}
}

func TestOneFlitPerCycle(t *testing.T) {
	e, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	var flits int
	var depCycle int64 = -1
	e.cfg.OnFlit = func(cycle int64, flow int) { flits++ }
	e.cfg.OnDeparture = func(p flit.Packet, cycle, occ int64) { depCycle = cycle }
	e.Inject(flit.Packet{Flow: 0, Length: 5})
	e.Run(5)
	if flits != 5 {
		t.Errorf("forwarded %d flits in 5 cycles, want 5", flits)
	}
	if depCycle != 4 {
		t.Errorf("tail flit left at cycle %d, want 4", depCycle)
	}
	if e.Backlog() != 0 {
		t.Error("backlog not drained")
	}
}

func TestDelayMeasurement(t *testing.T) {
	e, err := NewEngine(Config{Flows: 2, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	ds := metrics.NewDelayStats(2)
	e.cfg.OnDeparture = func(p flit.Packet, cycle, occ int64) { ds.Departure(p, cycle) }
	e.Inject(flit.Packet{Flow: 0, Length: 3}) // served cycles 0-2, delay 3
	e.Inject(flit.Packet{Flow: 1, Length: 2}) // served cycles 3-4, delay 5
	e.Run(10)
	if ds.Count() != 2 {
		t.Fatalf("departures %d, want 2", ds.Count())
	}
	if ds.MeanOf(0) != 3 {
		t.Errorf("flow 0 delay %v, want 3", ds.MeanOf(0))
	}
	if ds.MeanOf(1) != 5 {
		t.Errorf("flow 1 delay %v, want 5", ds.MeanOf(1))
	}
}

func TestStallsExtendOccupancy(t *testing.T) {
	// One stall cycle before every flit: a 3-flit packet occupies 6
	// cycles and its flits leave at cycles 1, 3, 5.
	e, err := NewEngine(Config{
		Flows: 1, Scheduler: core.New(),
		Stall: StallFunc(func(int) int { return 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var flitCycles []int64
	var occ int64
	e.cfg.OnFlit = func(cycle int64, flow int) { flitCycles = append(flitCycles, cycle) }
	e.cfg.OnDeparture = func(p flit.Packet, cycle, o int64) { occ = o }
	e.Inject(flit.Packet{Flow: 0, Length: 3})
	e.Run(6)
	if len(flitCycles) != 3 || flitCycles[0] != 1 || flitCycles[1] != 3 || flitCycles[2] != 5 {
		t.Errorf("flit cycles %v, want [1 3 5]", flitCycles)
	}
	if occ != 6 {
		t.Errorf("occupancy %d, want 6", occ)
	}
}

func TestERRBilledOccupancyNotLength(t *testing.T) {
	// Flow 1 suffers 1 stall per flit (occupancy 2x length). ERR must
	// equalise occupancy, so flow 1 gets ~half the flits of flow 0.
	errSched := core.New()
	e, err := NewEngine(Config{
		Flows:     2,
		Scheduler: errSched,
		Stall: StallFunc(func(flow int) int {
			if flow == 1 {
				return 1
			}
			return 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	served := make([]int64, 2)
	e.cfg.OnFlit = func(cycle int64, flow int) { served[flow]++ }
	src := rng.New(42)
	dist := rng.NewUniform(1, 16)
	e.cfg.Source = traffic.NewMulti(
		traffic.NewBacklogged(0, 4, dist, src.Split()),
		traffic.NewBacklogged(1, 4, dist, src.Split()),
	)
	e.Run(200000)
	r := float64(served[0]) / float64(served[1])
	if r < 1.85 || r > 2.15 {
		t.Errorf("flit ratio %.3f, want ~2 (occupancy-fair)", r)
	}
}

func TestFlitModeFBRRInterleaves(t *testing.T) {
	e, err := NewEngine(Config{Flows: 2, FlitSched: sched.NewFBRR()})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	e.cfg.OnFlit = func(cycle int64, flow int) { order = append(order, flow) }
	e.Inject(flit.Packet{Flow: 0, Length: 3})
	e.Inject(flit.Packet{Flow: 1, Length: 3})
	e.Run(6)
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FBRR order %v, want %v", order, want)
		}
	}
	if e.Backlog() != 0 {
		t.Error("backlog not drained")
	}
}

func TestFlitModeDeparture(t *testing.T) {
	e, err := NewEngine(Config{Flows: 2, FlitSched: sched.NewFBRR()})
	if err != nil {
		t.Fatal(err)
	}
	var deps []int64
	e.cfg.OnDeparture = func(p flit.Packet, cycle, occ int64) {
		deps = append(deps, cycle)
		if occ != int64(p.Length) {
			t.Errorf("flit-mode occupancy %d != length %d", occ, p.Length)
		}
	}
	e.Inject(flit.Packet{Flow: 0, Length: 2})
	e.Inject(flit.Packet{Flow: 1, Length: 1})
	e.Run(3)
	// Interleaving 0,1,0: flow 1 departs at cycle 1, flow 0 at cycle 2.
	if len(deps) != 2 || deps[0] != 1 || deps[1] != 2 {
		t.Errorf("departures %v, want [1 2]", deps)
	}
}

func TestIdleCyclesReported(t *testing.T) {
	e, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	idle := 0
	e.cfg.OnIdle = func(cycle int64) { idle++ }
	e.Run(5)
	if idle != 5 {
		t.Errorf("idle cycles %d, want 5", idle)
	}
}

func TestRunUntilDrained(t *testing.T) {
	e, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(flit.Packet{Flow: 0, Length: 4})
	cycles, drained := e.RunUntilDrained(100)
	if !drained || cycles != 4 {
		t.Errorf("drained=%v after %d cycles, want true after 4", drained, cycles)
	}
	// Already drained: returns immediately.
	cycles, drained = e.RunUntilDrained(100)
	if !drained || cycles != 0 {
		t.Errorf("second drain: %v %d", drained, cycles)
	}
}

func TestRunUntilDrainedTimeout(t *testing.T) {
	e, err := NewEngine(Config{
		Flows: 1, Scheduler: sched.NewFCFS(),
		Source: traffic.NewBacklogged(0, 2, rng.Constant{Length: 8}, rng.New(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step() // prime a packet
	_, drained := e.RunUntilDrained(50)
	if drained {
		t.Error("backlogged source reported drained")
	}
}

func TestArrivalCanBeServedSameCycle(t *testing.T) {
	src := rng.New(1)
	e, err := NewEngine(Config{
		Flows:     1,
		Scheduler: sched.NewFCFS(),
		Source:    traffic.NewWindow(traffic.NewBernoulli(0, 1.0, rng.Constant{Length: 1}, src), 0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var served int
	e.cfg.OnFlit = func(cycle int64, flow int) {
		if cycle != 0 {
			t.Errorf("flit at cycle %d, want 0", cycle)
		}
		served++
	}
	e.Run(1)
	if served != 1 {
		t.Error("arrival not served in its own cycle")
	}
}

func TestQueueLenIncludesInService(t *testing.T) {
	e, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(flit.Packet{Flow: 0, Length: 10})
	e.Inject(flit.Packet{Flow: 0, Length: 10})
	e.Step() // first packet now in service
	if got := e.QueueLen(0); got != 2 {
		t.Errorf("QueueLen = %d, want 2 (1 queued + 1 in service)", got)
	}
}

func TestInjectValidation(t *testing.T) {
	e, err := NewEngine(Config{Flows: 1, Scheduler: sched.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		p    flit.Packet
		want error
	}{
		"zero length":  {flit.Packet{Flow: 0, Length: 0}, flit.ErrZeroLength},
		"flow too big": {flit.Packet{Flow: 5, Length: 1}, flit.ErrBadFlow},
	} {
		if err := e.Inject(tc.p); !errors.Is(err, tc.want) {
			t.Errorf("%s: Inject err = %v, want %v", name, err, tc.want)
		}
	}
	// Rejections are counted and leave the engine untouched.
	if got := e.Rejected(); got != 2 {
		t.Errorf("Rejected = %d, want 2", got)
	}
	if got := e.BacklogFlits(); got != 0 {
		t.Errorf("BacklogFlits = %d after rejected injections, want 0", got)
	}
}

// The engine + ServiceLog + ERR end to end: equal service for
// backlogged flows with heterogeneous packet lengths, FM bounded.
func TestEndToEndERRFairness(t *testing.T) {
	src := rng.New(99)
	e, err := NewEngine(Config{
		Flows:     3,
		Scheduler: core.New(),
		Source: traffic.NewMulti(
			traffic.NewBacklogged(0, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(1, 4, rng.NewUniform(1, 128), src.Split()),
			traffic.NewBacklogged(2, 4, rng.Constant{Length: 17}, src.Split()),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	log := metrics.NewServiceLog(3, 0)
	e.cfg.OnFlit = func(cycle int64, flow int) { log.Record(flow) }
	e.cfg.OnIdle = func(cycle int64) { log.Record(metrics.Idle) }
	const cycles = 300000
	e.Run(cycles)
	// Equal thirds within 3m = 384 flits.
	for f := 0; f < 3; f++ {
		got := log.Total(f)
		want := int64(cycles / 3)
		if got < want-384 || got > want+384 {
			t.Errorf("flow %d served %d flits, want %d +/- 384", f, got, want)
		}
	}
	// And the max-interval FM respects Theorem 3 (m = 128).
	if fm := log.FM(0, cycles); fm >= 3*128 {
		t.Errorf("whole-run FM %d >= 384", fm)
	}
}
