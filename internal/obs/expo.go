package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Text exposition of a Registry in the Prometheus text format
// (text/plain; version=0.0.4), so a live run's registry can be
// scraped from a /metrics endpoint instead of only landing in a run
// manifest at exit. Metric names are sanitized to the Prometheus
// charset (dots become underscores); histograms are exposed as
// summaries with p50/p95/p99/p999 quantiles plus _sum/_count/_max.
// Output order is sorted by name, so two scrapes of an idle registry
// are byte-identical — the property the golden test pins.

// sanitizeMetricName maps a registry name to the Prometheus charset
// [a-zA-Z0-9_:]; every other rune becomes '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteText writes a point-in-time snapshot of reg to w in the
// Prometheus text exposition format.
func WriteText(w io.Writer, reg *Registry) error {
	s := reg.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Vecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", m); err != nil {
			return err
		}
		for i, v := range s.Vecs[n] {
			if _, err := fmt.Fprintf(w, "%s{cell=\"%d\"} %d\n", m, i, v); err != nil {
				return err
			}
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetricName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", m); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			v     int64
		}{
			{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}, {"0.999", h.P999},
		} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", m, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n%s_max %d\n",
			m, h.Sum, m, h.Count, m, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler returns an http.Handler serving WriteText of reg —
// the /metrics endpoint. A nil reg serves the default registry.
func MetricsHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, reg)
	})
}
