// Mesh example: ERR arbitration inside a 4x4 wormhole NoC.
//
// Every node floods a central hotspot. One unlucky node sends long
// packets, which under plain packet-based round-robin arbitration
// (PBRR) buys it extra bandwidth on every contended link. With ERR
// arbitrating each router output, shares of the hotspot's ejection
// link even out.
//
// Run with: go run ./examples/mesh
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sched"
)

func run(name string, newArb func() sched.Scheduler) {
	m, err := noc.NewMesh(noc.Config{K: 4, VCs: 2, BufFlits: 8, NewArb: newArb})
	if err != nil {
		log.Fatal(err)
	}
	hot := m.NodeID(1, 1)
	// (3,0) and (0,3) are mirror images w.r.t. the hotspot (same hop
	// distance, symmetric contention); (3,0) sends 8x-long packets.
	longSender := m.NodeID(3, 0)
	twin := m.NodeID(0, 3)
	for c := 0; c < 150_000; c++ {
		for node := 0; node < m.Nodes(); node++ {
			if node == hot {
				continue
			}
			if m.PendingAt(node) < 2 {
				length := 2
				if node == longSender {
					length = 16 // 8x longer packets
				}
				m.Send(node, hot, length)
			}
		}
		m.Step()
	}

	long := float64(m.DeliveredFlits[longSender])
	short := float64(m.DeliveredFlits[twin])
	fmt.Printf("%-5s mean latency %7.1f cycles | flits from long-packet node (3,0): %6.0f, from its twin (0,3): %6.0f  (ratio %.2f)\n",
		name, m.Latency.Mean(), long, short, long/short)
}

func main() {
	fmt.Println("4x4 mesh, all nodes flooding hotspot (1,1); node (3,0) sends 8x-long packets")
	run("ERR", func() sched.Scheduler { return core.New() })
	run("PBRR", func() sched.Scheduler { return sched.NewPBRR() })
	fmt.Println("\nPBRR grants one packet per visit, so the long-packet node outdelivers")
	fmt.Println("its mirror-image twin on every contended link; ERR equalises the")
	fmt.Println("cycles each source occupies, pulling the ratio back toward 1.")
}
