// Package repro is a from-scratch Go reproduction of "Fair and
// Efficient Packet Scheduling in Wormhole Networks" (Salil S.
// Kanhere, Alpa B. Parekh, Harish Sethu; IPDPS 2000): the Elastic
// Round Robin (ERR) scheduler, every baseline discipline the paper
// compares against, a flit-level wormhole switch and mesh NoC
// substrate, and a harness that regenerates every table and figure in
// the paper's evaluation.
//
// Start with README.md for the layout, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured results. The root package holds only the
// repository-level benchmarks (bench_test.go); the implementation
// lives under internal/ and the runnable entry points under cmd/ and
// examples/.
package repro
