package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 || w.CI95() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if !almostEqual(w.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if w.CI95() <= 0 {
		t.Error("CI95 should be positive with 8 samples")
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Var() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Errorf("single-sample stats wrong: %s", w.String())
	}
}

// Property: Welford matches the two-pass mean/variance computation.
func TestWelfordMatchesTwoPass(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(xs[i])
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		return almostEqual(w.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(w.Var(), v, 1e-6*(1+v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)  // underflow
	h.Add(10)  // at hi => overflow
	h.Add(100) // overflow
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d count %d, want 1", i, h.Bucket(i))
		}
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", u, o)
	}
	if h.N() != 13 {
		t.Errorf("N = %d, want 13", h.N())
	}
	if h.NumBuckets() != 10 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value just below hi must land in the last bucket, not panic.
	h.Add(math.Nextafter(1, 0))
	if h.Bucket(2) != 1 {
		t.Error("top-edge sample not in last bucket")
	}
}

// TestHistogramBoundaryValues pins the edges of the bucket-index
// computation: lo lands in bucket 0, hi in the overflow bucket,
// just-below-hi in the last bucket, and NaN in no bucket at all
// (pre-fix, int(NaN) produced a huge negative bucket index and Add
// panicked with index out of range).
func TestHistogramBoundaryValues(t *testing.T) {
	h := NewHistogram(2, 12, 5)
	h.Add(2) // == lo
	if h.Bucket(0) != 1 {
		t.Errorf("Add(lo): bucket 0 = %d, want 1", h.Bucket(0))
	}
	h.Add(12) // == hi: half-open range, so overflow
	if _, over := h.OutOfRange(); over != 1 {
		t.Errorf("Add(hi): over = %d, want 1", over)
	}
	h.Add(math.Nextafter(12, 0)) // just below hi
	if h.Bucket(4) != 1 {
		t.Errorf("Add(hi-ulp): last bucket = %d, want 1", h.Bucket(4))
	}
	h.Add(math.Nextafter(2, 0)) // just below lo
	if under, _ := h.OutOfRange(); under != 1 {
		t.Errorf("Add(lo-ulp): under = %d, want 1", under)
	}
	h.Add(math.NaN())
	if h.NaN() != 1 {
		t.Errorf("NaN count = %d, want 1", h.NaN())
	}
	// NaN is excluded from N and does not poison the mean.
	if h.N() != 4 {
		t.Errorf("N = %d, want 4 (NaN excluded)", h.N())
	}
	if math.IsNaN(h.Mean()) {
		t.Error("NaN sample poisoned Mean")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median %v, want ~50", med)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		nb     int
	}{{0, 1, 0}, {1, 1, 5}, {2, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.nb)
				}
			}()
			NewHistogram(c.lo, c.hi, c.nb)
		}()
	}
}

func TestQuantilesExact(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Quantiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Quantiles = %v, want [1 3 5]", got)
	}
	// Interpolation between sorted elements.
	q := Quantiles([]float64{0, 10}, 0.25)[0]
	if !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("interpolated quantile %v, want 2.5", q)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Error("empty Quantiles should yield zeros")
	}
}

func TestQuantilesDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantiles(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantiles mutated its input")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff(nil); got != 0 {
		t.Errorf("MaxAbsDiff(nil) = %v", got)
	}
	if got := MaxAbsDiff([]float64{7}); got != 0 {
		t.Errorf("single element = %v", got)
	}
	if got := MaxAbsDiff([]float64{3, 9, 5, 1}); got != 8 {
		t.Errorf("MaxAbsDiff = %v, want 8", got)
	}
}

// Property: MaxAbsDiff equals the brute-force max over all pairs.
func TestMaxAbsDiffProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		want := 0.0
		for i := range xs {
			for j := range xs {
				if d := math.Abs(xs[i] - xs[j]); d > want {
					want = d
				}
			}
		}
		return MaxAbsDiff(xs) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
