package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func testMesh(t *testing.T, k int) *Mesh {
	t.Helper()
	m, err := NewMesh(Config{
		K: k, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(Config{K: 1, NewArb: func() sched.Scheduler { return core.New() }}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := NewMesh(Config{K: 2, VCs: 1, BufFlits: 4}); err == nil {
		t.Error("missing NewArb accepted")
	}
	if _, err := NewMesh(Config{K: 2, VCs: 1, BufFlits: 4,
		NewArb: func() sched.Scheduler { return sched.NewDRR(64, nil) }}); err == nil {
		t.Error("length-aware arbiter accepted")
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	m := testMesh(t, 4)
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.Coords(id)
		if m.NodeID(x, y) != id {
			t.Fatalf("coords round trip broken for %d", id)
		}
	}
}

func TestXYRouting(t *testing.T) {
	m := testMesh(t, 3)
	// From center (1,1) = id 4.
	cases := []struct {
		dst  int
		want int
	}{
		{m.NodeID(2, 1), PortEast},
		{m.NodeID(0, 1), PortWest},
		{m.NodeID(1, 2), PortSouth},
		{m.NodeID(1, 0), PortNorth},
		{m.NodeID(1, 1), PortLocal},
		// X first: (2,2) from (1,1) goes East, not South.
		{m.NodeID(2, 2), PortEast},
		{m.NodeID(0, 0), PortWest},
	}
	at := m.NodeID(1, 1)
	for _, c := range cases {
		if got := m.route(at, c.dst); got != c.want {
			t.Errorf("route(%d -> %d) = %d, want %d", at, c.dst, got, c.want)
		}
	}
}

func TestSinglePacketCrossesMesh(t *testing.T) {
	m := testMesh(t, 3)
	src := m.NodeID(0, 0)
	dst := m.NodeID(2, 2)
	m.Send(src, dst, 5)
	if !m.Drain(1000) {
		t.Fatal("packet not delivered")
	}
	if m.DeliveredPackets[src] != 1 {
		t.Fatalf("delivered count %d", m.DeliveredPackets[src])
	}
	if m.DeliveredFlits[src] != 5 {
		t.Fatalf("delivered flits %d", m.DeliveredFlits[src])
	}
	// 4 hops x (5 flits + pipeline) — latency must be at least
	// hops + length and well under the drain bound.
	lat := m.Latency.Mean()
	if lat < 9 || lat > 200 {
		t.Errorf("latency %v implausible for a 4-hop 5-flit packet", lat)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := testMesh(t, 2)
	m.Send(0, 0, 3) // self-addressed: ejects at own local port
	if !m.Drain(100) {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestAllPairsDelivery(t *testing.T) {
	m := testMesh(t, 3)
	count := 0
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			m.Send(s, d, 4)
			count++
		}
	}
	if !m.Drain(20000) {
		t.Fatalf("mesh did not drain; %d in flight", m.InFlight())
	}
	var total int64
	for s := 0; s < m.Nodes(); s++ {
		total += m.DeliveredPackets[s]
	}
	if total != int64(count) {
		t.Fatalf("delivered %d of %d packets", total, count)
	}
}

func TestUniformTrafficDrains(t *testing.T) {
	m := testMesh(t, 4)
	src := rng.New(11)
	inj := NewInjector(m, 0.02, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), src)
	for c := 0; c < 20000; c++ {
		inj.Step()
		m.Step()
	}
	if !m.Drain(50000) {
		t.Fatalf("uniform traffic did not drain; %d in flight", m.InFlight())
	}
	var injected, delivered int64
	for n := 0; n < m.Nodes(); n++ {
		injected += inj.Injected[n]
		delivered += m.DeliveredPackets[n]
	}
	if injected == 0 {
		t.Fatal("no packets injected")
	}
	if injected != delivered {
		t.Fatalf("injected %d, delivered %d", injected, delivered)
	}
	if m.Latency.N() != injected {
		t.Errorf("latency samples %d != packets %d", m.Latency.N(), injected)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	run := func(rate float64) float64 {
		m := testMesh(t, 4)
		src := rng.New(21)
		inj := NewInjector(m, rate, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), src)
		inj.MaxPending = 4
		for c := 0; c < 30000; c++ {
			inj.Step()
			m.Step()
		}
		return m.Latency.Mean()
	}
	low := run(0.005)
	high := run(0.05)
	if high <= low {
		t.Errorf("latency did not grow with load: %.2f (low) vs %.2f (high)", low, high)
	}
}

func TestTransposePattern(t *testing.T) {
	tr := Transpose{K: 4}
	s := rng.New(3)
	// (1,2) = id 9 -> (2,1) = id 6.
	if got := tr.Dest(9, s); got != 6 {
		t.Errorf("transpose dest of 9 = %d, want 6", got)
	}
	// Diagonal node: any destination but itself.
	if got := tr.Dest(5, s); got == 5 {
		t.Error("diagonal node sent to itself")
	}
}

func TestUniformPatternNeverSelf(t *testing.T) {
	u := Uniform{Nodes: 9}
	s := rng.New(5)
	for i := 0; i < 5000; i++ {
		src := s.Intn(9)
		if u.Dest(src, s) == src {
			t.Fatal("uniform pattern chose the source")
		}
	}
}

func TestHotspotPattern(t *testing.T) {
	h := Hotspot{Nodes: 16, Node: 5, Frac: 0.5}
	s := rng.New(7)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if h.Dest(3, s) == 5 {
			hits++
		}
	}
	frac := float64(hits) / n
	// 0.5 directed + (0.5 uniform)*(1/15) background.
	if frac < 0.48 || frac > 0.58 {
		t.Errorf("hotspot fraction %.3f", frac)
	}
	// The hotspot node itself never self-addresses via the hotspot.
	for i := 0; i < 1000; i++ {
		if h.Dest(5, s) == 5 {
			t.Fatal("hotspot node sent to itself")
		}
	}
}

// TestHotspotFairnessERRvsPBRR: under a hotspot, sources adjacent to
// the hotspot would capture the converging links with PBRR whenever
// their packets are long; ERR equalises occupancy. We check that the
// spread of per-source delivered flits (restricted to hotspot
// traffic) is no worse under ERR than under PBRR.
func TestHotspotFairnessERRvsPBRR(t *testing.T) {
	run := func(newArb func() sched.Scheduler) float64 {
		m, err := NewMesh(Config{K: 3, VCs: 2, BufFlits: 8, NewArb: newArb})
		if err != nil {
			t.Fatal(err)
		}
		hot := m.NodeID(1, 1)
		// Every node floods the hotspot; node (0,1) sends long
		// packets, the rest short ones.
		for c := 0; c < 60000; c++ {
			for node := 0; node < m.Nodes(); node++ {
				if node == hot {
					continue
				}
				if m.PendingAt(node) < 2 {
					length := 2
					if node == m.NodeID(0, 1) {
						length = 16
					}
					m.Send(node, hot, length)
				}
			}
			m.Step()
		}
		flits := make([]float64, 0, m.Nodes()-1)
		for node := 0; node < m.Nodes(); node++ {
			if node != hot {
				flits = append(flits, float64(m.DeliveredFlits[node]))
			}
		}
		mean := 0.0
		for _, f := range flits {
			mean += f
		}
		mean /= float64(len(flits))
		return stats.MaxAbsDiff(flits) / mean
	}
	errSpread := run(func() sched.Scheduler { return core.New() })
	pbrrSpread := run(func() sched.Scheduler { return sched.NewPBRR() })
	if errSpread > pbrrSpread*1.25 {
		t.Errorf("ERR spread %.3f much worse than PBRR %.3f", errSpread, pbrrSpread)
	}
}
