package exec

import "sync"

// Pool is a persistent worker pool for fine-grained, repeated fan-out
// — the per-cycle sharded stepping of a mesh, where spawning fresh
// goroutines every cycle (as Run does per call) would dominate the
// work. Workers are started once and live until Close; each Do call
// distributes its tasks over them and blocks until every task has
// returned.
//
// Determinism contract: Do imposes no ordering — tasks run
// concurrently in any interleaving — so callers must hand it tasks
// that are data-independent (each task owns everything it writes, as
// with Run's jobs) and must sequence any order-sensitive work
// themselves, after Do returns. The mesh's two-phase stepping is the
// canonical shape: compute shards in Do, then commit the buffered
// effects serially in fixed router-ID order.
type Pool struct {
	workers int
	tasks   chan poolTask
	stop    chan struct{}
	wg      sync.WaitGroup
	// donePool recycles Do's completion WaitGroups. A stack-declared
	// WaitGroup escapes through the task channel and costs one heap
	// allocation per Do — per cycle on the sharded mesh stepping path,
	// which must run allocation-free in steady state.
	donePool sync.Pool
}

type poolTask struct {
	fn   func()
	done *sync.WaitGroup
}

// NewPool starts a pool of Workers(workers) goroutines (workers <= 0
// selects GOMAXPROCS). Close it when done; an unclosed pool leaks its
// worker goroutines.
func NewPool(workers int) *Pool {
	p := &Pool{
		workers: Workers(workers),
		tasks:   make(chan poolTask),
		stop:    make(chan struct{}),
	}
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case t := <-p.tasks:
					t.fn()
					t.done.Done()
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// Do runs every task and returns when all have completed. The calling
// goroutine executes the last task itself, so a Do over exactly one
// task costs no synchronization round-trip beyond the WaitGroup.
// Tasks must be data-independent (see the type comment); a task
// panicking crashes the pool, matching the crash-on-bug policy of the
// simulation hot path.
func (p *Pool) Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	done, _ := p.donePool.Get().(*sync.WaitGroup)
	if done == nil {
		done = new(sync.WaitGroup)
	}
	done.Add(len(tasks))
	for _, fn := range tasks[:len(tasks)-1] {
		p.tasks <- poolTask{fn: fn, done: done}
	}
	last := tasks[len(tasks)-1]
	last()
	done.Done()
	done.Wait()
	p.donePool.Put(done)
}

// Close stops the workers and waits for them to exit. Close must not
// race a Do call; it is idempotent only in the sense that a closed
// pool must not be used again.
func (p *Pool) Close() {
	close(p.stop)
	p.wg.Wait()
}
