package fault_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// TestWindowEdges pins the edge list the NoC event core schedules its
// fault wake-ups from: every stall/freeze window contributes its
// opening cycle and (when bounded) its closing cycle, sorted and
// deduplicated; probabilistic directives contribute nothing.
func TestWindowEdges(t *testing.T) {
	spec := mustParse(t,
		"stall(port=1,at=100,dur=50);freeze(router=2,at=100,dur=50);stall(port=0,at=200);drop(router=1,p=0.5);corrupt(p=0.1)")
	got := fault.New(spec, 1).WindowEdges()
	want := []int64{100, 150, 200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowEdges() = %v, want %v", got, want)
	}
}

// TestWindowEdgesNoOverflow pins the At+Dur overflow guard: a closing
// edge that would land beyond the permanent-stall horizon (and so can
// never be reached) is dropped rather than computed with wrapping
// arithmetic.
func TestWindowEdgesNoOverflow(t *testing.T) {
	at := int64(math.MaxInt64>>2) - 10
	spec := &fault.Spec{Directives: []fault.Directive{
		{Kind: "stall", Port: 1, Router: -1, Flow: -1, At: at, Dur: 100},
	}}
	got := fault.New(spec, 1).WindowEdges()
	want := []int64{at}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowEdges() = %v, want only the opening edge %v", got, want)
	}
	for _, e := range got {
		if e < 0 {
			t.Fatalf("negative (wrapped) edge %d", e)
		}
	}
}

// TestWindowEdgesNil exercises the nil-injector and no-window paths.
func TestWindowEdgesNil(t *testing.T) {
	var in *fault.Injector
	if edges := in.WindowEdges(); edges != nil {
		t.Fatalf("nil injector WindowEdges() = %v, want nil", edges)
	}
	if edges := fault.New(mustParse(t, "drop(p=0.5)"), 1).WindowEdges(); len(edges) != 0 {
		t.Fatalf("drop-only WindowEdges() = %v, want empty", edges)
	}
}
