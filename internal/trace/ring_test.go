package trace

import "testing"

// TestRingOverwritesOldest pins the ring's flight-recorder semantics:
// append never fails, a full ring overwrites its oldest record, every
// overwrite fires the drop hook, and iteration is non-destructive.
func TestRingOverwritesOldest(t *testing.T) {
	drops := 0
	var r ring
	r.init(3, func() { drops++ })
	for i := int64(0); i < 5; i++ {
		r.append(Record{PktID: i})
	}
	if drops != 2 {
		t.Fatalf("drops = %d, want 2", drops)
	}
	if r.len() != 3 {
		t.Fatalf("len = %d, want 3", r.len())
	}
	for pass := 0; pass < 2; pass++ {
		var ids []int64
		r.each(func(rec Record) { ids = append(ids, rec.PktID) })
		if len(ids) != 3 || ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
			t.Fatalf("pass %d: surviving ids = %v, want [2 3 4]", pass, ids)
		}
	}
}
