package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fig6Params parameterises the Figure 6 experiment: for each number
// of flows n in [MinFlows, MaxFlows], all flows are kept backlogged
// with packet lengths exponentially distributed (rate Lambda,
// truncated to [1, MaxLen]) for Cycles cycles, and the relative
// fairness measure is averaged over Intervals randomly chosen
// intervals. ERR (bound 3m) is compared against DRR (bound Max + 2m,
// quantum = Max): with large packets rare, m's typical influence is
// small and ERR comes out fairer.
type Fig6Params struct {
	MinFlows, MaxFlows int
	Cycles             int64
	Lambda             float64
	MaxLen             int
	Intervals          int
	Seed               uint64
	// Workers caps the worker pool running the discipline × flow-count
	// grid (0 = GOMAXPROCS, 1 = serial). The result is byte-identical
	// for every value: each point derives its own seed with
	// rng.Derive.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Collector, if set, accumulates registry telemetry from every
	// grid job (see SimConfig.Collector); it never affects the result.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired into every
	// grid job (see SimConfig.Trace); each job becomes one span track.
	Trace *trace.EngineTrace `json:"-"`
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs.
	Robustness
}

// DefaultFig6Params returns the paper's parameters (4 million cycles,
// 10,000 intervals, lambda = 0.2 on [1, 64]).
func DefaultFig6Params() Fig6Params {
	return Fig6Params{
		MinFlows:  2,
		MaxFlows:  10,
		Cycles:    4_000_000,
		Lambda:    0.2,
		MaxLen:    64,
		Intervals: 10_000,
		Seed:      1,
	}
}

// Fig6Result holds the average relative fairness (in bytes, like the
// paper's y-axis) per discipline per flow count.
type Fig6Result struct {
	Params      Fig6Params
	Flows       []int
	Disciplines []string
	// AvgFM[d][i] is the average relative fairness of discipline d at
	// Flows[i], in bytes.
	AvgFM [][]float64
}

// RunFig6 runs the sweep for ERR and DRR.
func RunFig6(p Fig6Params) (*Fig6Result, error) {
	mks := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"ERR", func() sched.Scheduler { return core.New() }},
		{"DRR", func() sched.Scheduler { return sched.NewDRR(int64(p.MaxLen), nil) }},
	}
	res := &Fig6Result{Params: p}
	for n := p.MinFlows; n <= p.MaxFlows; n++ {
		res.Flows = append(res.Flows, n)
	}
	// One job per discipline × flow count. A point's seed is derived
	// from its flow count only — both disciplines must see the
	// identical workload — and each job builds its own Source, so jobs
	// never share a stream.
	jobs := make([]exec.Job[float64], 0, len(mks)*len(res.Flows))
	for _, m := range mks {
		for _, n := range res.Flows {
			m, n, job := m, n, len(jobs)
			jobs = append(jobs, func() (float64, error) {
				src := rng.New(rng.Derive(p.Seed, uint64(n)))
				var sources []traffic.Source
				dist := rng.NewTruncExp(p.Lambda, 1, p.MaxLen)
				for f := 0; f < n; f++ {
					sources = append(sources, traffic.NewBacklogged(f, 4, dist, src.Split()))
				}
				sim, err := RunSim(SimConfig{
					Flows:     n,
					Scheduler: m.mk(),
					Source:    traffic.NewMulti(sources...),
					Cycles:    p.Cycles,
					WithLog:   true,
					Collector: p.Collector,
					Trace:     p.Trace,
					FaultSpec: p.Faults,
					FaultSeed: p.faultSeed(p.Seed, job),
					Check:     p.Check,
				})
				if err != nil {
					return 0, err
				}
				avgFlits := sim.Log.AvgFMRandomIntervals(p.Intervals, src.Split())
				return avgFlits * 8, nil // flits -> bytes, 8-byte flits
			})
		}
	}
	opts, closeCP, err := gridOptions("fig6", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	avgs, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	for d, m := range mks {
		res.Disciplines = append(res.Disciplines, m.name)
		res.AvgFM = append(res.AvgFM, avgs[d*len(res.Flows):(d+1)*len(res.Flows)])
	}
	return res, nil
}

// Render writes the fairness curves as an ASCII line chart plus CSV.
func (r *Fig6Result) Render(w io.Writer) error {
	xs := make([]float64, len(r.Flows))
	for i, n := range r.Flows {
		xs[i] = float64(n)
	}
	series := make([]plot.Series, len(r.Disciplines))
	for i, d := range r.Disciplines {
		series[i] = plot.Series{Name: d, X: xs, Y: r.AvgFM[i]}
	}
	title := fmt.Sprintf("Figure 6: average relative fairness (bytes) vs number of flows (%d intervals over %d cycles)",
		r.Params.Intervals, r.Params.Cycles)
	if err := plot.Lines(w, title, series, 64, 16); err != nil {
		return err
	}
	header := []string{"flows"}
	header = append(header, r.Disciplines...)
	rows := make([][]float64, len(r.Flows))
	for i := range r.Flows {
		row := []float64{xs[i]}
		for d := range r.Disciplines {
			row = append(row, r.AvgFM[d][i])
		}
		rows[i] = row
	}
	return plot.CSV(w, header, rows)
}
