package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServeFairnessVariance is the wall-clock port of the fq repos'
// consumeQueue check: N tenants with identical aggregate demand but
// per-request costs the scheduler cannot see up front; while every
// tenant stays backlogged, the service units each receives must stay
// within a small variance of the ideal equal share.
//
// Costs are deterministic (the X-Cost header is billed via the CostOf
// hook and handlers are instant), so the only nondeterminism is grant
// interleaving across the worker pool — which the all-active window
// measurement absorbs.
func TestServeFairnessVariance(t *testing.T) {
	const (
		tenants  = 4
		perQueue = 40
	)
	// Every tenant enqueues the same multiset of costs (cycling 1..5),
	// so ideal shares are exactly equal.
	costs := make([]int64, perQueue)
	var totalPer int64
	for i := range costs {
		costs[i] = int64(i%5 + 1)
		totalPer += costs[i]
	}

	type grant struct {
		tenant string
		cost   int64
	}
	var mu sync.Mutex
	var grants []grant
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		c, _ := strconv.ParseInt(r.Header.Get("X-Cost"), 10, 64)
		mu.Lock()
		grants = append(grants, grant{r.Header.Get("X-Tenant"), c})
		mu.Unlock()
	})
	s := newTestServer(t, Config{
		Handler: h, Workers: 1, QueueCap: perQueue + 1,
		CostOf: func(r *http.Request, _ time.Duration) int64 {
			c, _ := strconv.ParseInt(r.Header.Get("X-Cost"), 10, 64)
			if c < 1 {
				c = 1
			}
			return c
		},
	})

	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for _, c := range costs {
			wg.Add(1)
			go func(tenant string, c int64) {
				defer wg.Done()
				do(s, "GET", "/x", tenant, map[string]string{"X-Cost": fmt.Sprint(c)})
			}(tenant, c)
		}
	}
	// Gate the workers until everything is enqueued or in flight, so
	// the all-active window starts with full backlogs.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queuedReqs+s.inflight == tenants*perQueue
	})
	close(release)
	wg.Wait()

	// All-active window: grants up to (excluding) the first tenant
	// finishing its backlog.
	served := map[string]int{}
	units := map[string]int64{}
	window := 0
	for _, g := range grants {
		served[g.tenant]++
		units[g.tenant] += g.cost
		window++
		if served[g.tenant] == perQueue {
			break
		}
	}

	// Mean/stddev of per-tenant service units inside the window.
	var sum float64
	for _, u := range units {
		sum += float64(u)
	}
	mean := sum / tenants
	var varsum float64
	for _, u := range units {
		varsum += (float64(u) - mean) * (float64(u) - mean)
	}
	stdev := math.Sqrt(varsum / tenants)

	// ERR bounds the per-round service gap by the max request cost (5
	// units here); across the window the shares must be nearly equal.
	// 10% of the mean is generous against grant interleaving noise.
	if stdev > 0.10*mean {
		t.Fatalf("service-unit stdev %.1f exceeds 10%% of mean %.1f; units=%v (window %d grants)",
			stdev, mean, units, window)
	}
	verifyClean(t, s)
}

// TestServeGoldenSheddingFairness is the golden overload test: one
// elephant floods at 10x its fair share while nine mice send well
// within theirs. The mice must keep a >= 95% success rate — the
// elephant's overload is its own problem (per-flow queue bound), paid
// in 429s it absorbs itself.
//
// Capacity: 2 workers x 4ms handler = ~500 req/s. Fair share across
// 10 tenants = 50 req/s. Mice send 30 req/s each (under allowance);
// the elephant sends 500 req/s (10x). Load arrivals derive from a
// fixed seed.
func TestServeGoldenSheddingFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("overload run takes ~2s")
	}
	s := newTestServer(t, Config{
		Handler: sleepMS, Workers: 2, QueueCap: 32,
	})

	specs := []LoadSpec{{Tenant: "elephant", RPS: 500, CostMS: 4}}
	for i := 0; i < 9; i++ {
		specs = append(specs, LoadSpec{Tenant: fmt.Sprintf("mouse-%d", i), RPS: 30, CostMS: 4})
	}
	results := RunLoad(s, specs, 0xe1e9, 2*time.Second)

	elephant := results[0]
	if elephant.Shed == 0 {
		t.Fatalf("elephant absorbed no 429s under 10x overload: %+v", elephant)
	}
	for _, r := range results[1:] {
		if r.Sent == 0 {
			t.Fatalf("mouse %s sent nothing", r.Tenant)
		}
		if rate := r.SuccessRate(); rate < 0.95 {
			t.Fatalf("mouse %s success rate %.3f < 0.95 (%+v); elephant %+v",
				r.Tenant, rate, r, elephant)
		}
	}
	// The elephant must be doing measurably worse than the mice — its
	// overload is shed onto itself, not spread.
	if rate := elephant.SuccessRate(); rate > 0.90 {
		t.Fatalf("elephant success rate %.3f suspiciously high for 10x overload", rate)
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain after overload: %v", err)
	}
	verifyClean(t, s)
}

// TestServeRunLoadDeterministicArrivals pins that two RunLoad calls
// with the same seed produce identical sent counts (arrival processes
// are seed-derived; outcomes may differ, arrivals must not).
func TestServeRunLoadDeterministicArrivals(t *testing.T) {
	specs := []LoadSpec{
		{Tenant: "a", RPS: 300},
		{Tenant: "b", RPS: 200, Start: 50 * time.Millisecond, Dur: 100 * time.Millisecond},
	}
	run := func() []int64 {
		s := newTestServer(t, Config{Handler: instantOK, Workers: 4, Registry: obs.NewRegistry()})
		res := RunLoad(s, specs, 42, 300*time.Millisecond)
		s.Close()
		return []int64{res[0].Sent, res[1].Sent}
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("sent counts differ across same-seed runs: %v vs %v", a, b)
	}
	if a[0] == 0 || a[1] == 0 {
		t.Fatalf("degenerate load run: %v", a)
	}
}
