package exec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
)

// checkpointSchema is the header version of the checkpoint file
// format; bump when a field changes meaning.
const checkpointSchema = 1

// Checkpoint is a JSONL record of completed job results, enabling
// crash-resilient sweeps: Run (with WithCheckpoint) appends one line
// per finished job, so a run killed at any point — SIGINT, OOM, power
// — can be rerun with the same parameters and resume where it
// stopped, re-running only the unfinished jobs. Results round-trip
// through encoding/json, so the resumed aggregate output is
// byte-identical to an uninterrupted run.
//
// The file starts with a header line carrying a caller-supplied grid
// signature (see Signature); resuming against a checkpoint whose
// signature differs — different experiment, parameters, or seed — is
// refused, because mixing results from two grids would corrupt the
// sweep silently.
//
// A Checkpoint is safe for concurrent use by Run's workers.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	done map[int]json.RawMessage
}

type cpHeader struct {
	Checkpoint int    `json:"checkpoint"`
	Sig        string `json:"sig"`
}

type cpRecord struct {
	Job    *int            `json:"job"`
	Result json.RawMessage `json:"result"`
}

// Signature derives a short stable grid signature from anything
// json-encodable (typically the experiment name plus its parameter
// struct). Two grids with different parameters get different
// signatures, so a stale checkpoint cannot be resumed by accident.
func Signature(parts ...any) (string, error) {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("exec: signature: %w", err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// OpenCheckpoint opens (or creates) the checkpoint file at path.
//
// With resume false the file is truncated and a fresh header with the
// given signature is written — any previous progress is discarded.
//
// With resume true an existing file is loaded: the header signature
// must match sig exactly, every well-formed record line becomes a
// completed-job result, and a torn final line (the process was killed
// mid-write) is discarded. The file is then truncated past the last
// whole record so subsequent appends are well-formed. A missing file
// in resume mode is not an error — there is simply nothing to resume.
func OpenCheckpoint(path, sig string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{done: make(map[int]json.RawMessage)}
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exec: checkpoint: %w", err)
	}
	c.f = f
	if resume {
		validLen, err := c.loadAll(sig)
		if err != nil {
			f.Close()
			return nil, err
		}
		// Drop any torn trailing line and position for appending.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("exec: checkpoint: %w", err)
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("exec: checkpoint: %w", err)
		}
	}
	if !c.headerWritten() {
		if err := c.writeHeader(sig); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// headerWritten reports whether the underlying file already has
// content (resume path kept a valid header).
func (c *Checkpoint) headerWritten() bool {
	off, err := c.f.Seek(0, io.SeekCurrent)
	return err == nil && off > 0
}

func (c *Checkpoint) writeHeader(sig string) error {
	b, err := json.Marshal(cpHeader{Checkpoint: checkpointSchema, Sig: sig})
	if err != nil {
		return fmt.Errorf("exec: checkpoint: %w", err)
	}
	if _, err := c.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("exec: checkpoint: %w", err)
	}
	return nil
}

// loadAll parses the checkpoint file, fills c.done, and returns the
// byte length of the valid prefix (header + whole records).
func (c *Checkpoint) loadAll(sig string) (int64, error) {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("exec: checkpoint: %w", err)
	}
	done, validLen, err := parseCheckpoint(c.f, sig)
	if err != nil {
		return 0, err
	}
	for i, raw := range done {
		c.done[i] = raw
	}
	return validLen, nil
}

// parseCheckpoint reads a checkpoint stream: header (schema +
// signature validated against sig), then records. A torn final line —
// the signature of a mid-write kill — is discarded; a malformed line
// mid-file is corruption and errors. Returns the recorded results and
// the byte length of the valid prefix.
func parseCheckpoint(r io.Reader, sig string) (map[int]json.RawMessage, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("exec: checkpoint: %w", err)
	}
	done := make(map[int]json.RawMessage)
	if len(lines) == 0 {
		return done, 0, nil // empty file: nothing to resume
	}
	var h cpHeader
	if err := json.Unmarshal(lines[0], &h); err != nil || h.Checkpoint == 0 {
		if len(lines) == 1 {
			// The kill landed mid-header: no record was ever written,
			// so the file is equivalent to empty.
			return done, 0, nil
		}
		return nil, 0, fmt.Errorf("exec: checkpoint: missing or malformed header (not a checkpoint file?)")
	}
	if h.Checkpoint != checkpointSchema {
		return nil, 0, fmt.Errorf("exec: checkpoint: schema %d, want %d", h.Checkpoint, checkpointSchema)
	}
	if h.Sig != sig {
		return nil, 0, fmt.Errorf("exec: checkpoint: grid signature %s does not match this run's %s (different experiment, parameters, or seed — pass a fresh checkpoint path or drop -resume)", h.Sig, sig)
	}
	validLen := int64(len(lines[0])) + 1 // +1 for the newline sc stripped
	records := lines[1:]
	for k, line := range records {
		var rec cpRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == nil {
			if k == len(records)-1 {
				// A torn final line is the signature of a mid-write
				// kill; the job simply re-runs.
				break
			}
			return nil, 0, fmt.Errorf("exec: checkpoint: malformed record mid-file (corrupt checkpoint)")
		}
		done[*rec.Job] = rec.Result
		validLen += int64(len(line)) + 1
	}
	return done, validLen, nil
}

// MergeCheckpoints unions the records of the per-shard checkpoint
// files srcs — all of which must carry exactly the grid signature sig
// — into a fresh checkpoint at dst, records written in ascending job
// order. Re-marshaling a record preserves its bytes (results are
// stored as raw JSON), so the merged file is byte-identical to the
// checkpoint a serial single-process sweep of the same grid would
// have written, and an unsharded Run resumed against it re-executes
// nothing. The same job recorded by two sources must agree
// byte-for-byte (sharded runs of a deterministic grid always do;
// divergence means the sources came from different grids and the
// merge is refused). Returns the merged record count.
func MergeCheckpoints(dst, sig string, srcs ...string) (int, error) {
	merged := make(map[int]json.RawMessage)
	for _, src := range srcs {
		f, err := os.Open(src)
		if err != nil {
			return 0, fmt.Errorf("exec: merge: %w", err)
		}
		done, _, err := parseCheckpoint(f, sig)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("exec: merge %s: %w", src, err)
		}
		for i, raw := range done {
			if prev, ok := merged[i]; ok && !bytes.Equal(prev, raw) {
				return 0, fmt.Errorf("exec: merge %s: job %d recorded with conflicting results (sources from different grids?)", src, i)
			}
			merged[i] = raw
		}
	}
	ids := make([]int, 0, len(merged))
	for i := range merged {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	f, err := os.Create(dst)
	if err != nil {
		return 0, fmt.Errorf("exec: merge: %w", err)
	}
	w := bufio.NewWriter(f)
	hdr, err := json.Marshal(cpHeader{Checkpoint: checkpointSchema, Sig: sig})
	if err == nil {
		_, err = w.Write(append(hdr, '\n'))
	}
	for _, i := range ids {
		if err != nil {
			break
		}
		var line []byte
		if line, err = json.Marshal(cpRecord{Job: &i, Result: merged[i]}); err == nil {
			_, err = w.Write(append(line, '\n'))
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("exec: merge: %w", err)
	}
	return len(merged), nil
}

// Resumed returns the number of completed-job results loaded from
// disk (0 for a fresh checkpoint).
func (c *Checkpoint) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// load feeds a recorded result into dst, reporting whether job i was
// recorded. An undecodable record counts as not recorded (the job
// simply re-runs).
func (c *Checkpoint) load(i int, dst any) bool {
	c.mu.Lock()
	raw, ok := c.done[i]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, dst) == nil
}

// record appends job i's result as one line. The single Write makes a
// kill mid-record leave at most one torn final line, which resume
// discards.
func (c *Checkpoint) record(i int, v any) error {
	res, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exec: checkpoint: job %d result: %w", i, err)
	}
	line, err := json.Marshal(cpRecord{Job: &i, Result: res})
	if err != nil {
		return fmt.Errorf("exec: checkpoint: job %d: %w", i, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("exec: checkpoint: job %d: %w", i, err)
	}
	return nil
}

// Close flushes and closes the checkpoint file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
