package repro

// Repository-level benchmarks: one per table/figure of the paper
// (regenerating a scaled-down instance of each artifact per
// iteration), the Theorem 1 work-complexity scaling evidence, and
// throughput benchmarks of the simulation substrates.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/damq"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/min"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

// --- one bench per table/figure ---

func BenchmarkTable1(b *testing.B) {
	p := experiments.DefaultTable1Params()
	p.Fig4.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig4(b *testing.B, panel string) {
	p := experiments.DefaultFig4Params()
	p.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(p, panel)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4a(b *testing.B) { benchFig4(b, "a") }
func BenchmarkFig4b(b *testing.B) { benchFig4(b, "b") }
func BenchmarkFig4c(b *testing.B) { benchFig4(b, "c") }
func BenchmarkFig4d(b *testing.B) { benchFig4(b, "d") }

func benchFig5(b *testing.B, panel string) {
	p := experiments.DefaultFig5Params()
	p.BurstCycles = 5_000
	p.Intensities = []float64{1.0, 1.15, 1.3}
	p.Repeats = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(p, panel)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a(b *testing.B) { benchFig5(b, "a") }
func BenchmarkFig5b(b *testing.B) { benchFig5(b, "b") }

func benchFig6(b *testing.B, workers int) {
	p := experiments.DefaultFig6Params()
	p.Cycles = 100_000
	p.Intervals = 1_000
	p.MaxFlows = 6
	p.Workers = workers
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 is the serial baseline; BenchmarkFig6Parallel runs
// the identical workload through the 4-worker pool. The two render
// byte-identical artifacts (see TestParallelMatchesSerial); the delta
// is pure wall-clock.
func BenchmarkFig6(b *testing.B)         { benchFig6(b, 1) }
func BenchmarkFig6Parallel(b *testing.B) { benchFig6(b, 4) }

// Figure 3 is a trace artifact: benchmark regenerating it.
func BenchmarkFig3Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := core.New()
		rec := &core.TraceRecorder{}
		e.SetTrace(rec)
		d := harness.New(3, e)
		for _, l := range []int{32, 8, 8, 8, 8} {
			d.Arrive(flit.Packet{Flow: 0, Length: l})
		}
		for _, l := range []int{16, 8, 8, 8, 8} {
			d.Arrive(flit.Packet{Flow: 1, Length: l})
		}
		for _, l := range []int{12, 20, 4, 4, 4} {
			d.Arrive(flit.Packet{Flow: 2, Length: l})
		}
		d.Drain()
		if err := trace.WriteRecorderTable(io.Discard, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md design-choice experiments) ---

func BenchmarkAblationOccupancy(b *testing.B) {
	p := experiments.DefaultAblationOccupancyParams()
	p.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOccupancy(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSurplusReset(b *testing.B) {
	p := experiments.DefaultAblationSurplusResetParams()
	p.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationSurplusReset(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension experiments ---

func BenchmarkFig6Ext(b *testing.B) {
	p := experiments.DefaultFig6ExtParams()
	p.Cycles = 100_000
	p.Intervals = 500
	p.PLarges = []float64{0.5, 0.05}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6Ext(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParkingLot(b *testing.B) {
	p := experiments.DefaultParkingLotParams()
	p.Cycles = 100_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunParkingLot(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLR(b *testing.B) {
	p := experiments.DefaultLRParams()
	p.Cycles = 100_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLR(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedERR(b *testing.B) {
	p := experiments.DefaultWeightedParams()
	p.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWeighted(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGap(b *testing.B) {
	p := experiments.DefaultGapParams()
	p.Cycles = 200_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGap(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoCSweep(b *testing.B) {
	p := experiments.DefaultNoCSweepParams()
	p.Rates = []float64{0.01, 0.03}
	p.WarmCycles = 10_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunNoCSweep(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorem 1: O(1) work complexity with respect to n ---
//
// Per-packet scheduling cost must stay flat as the number of flows
// grows for ERR and DRR, and grow ~log n for the timestamp
// disciplines. Reported as ns/op at n = 8 .. 4096 flows.

func benchWorkComplexity(b *testing.B, mk func() sched.Scheduler) {
	for _, n := range []int{8, 64, 512, 4096} {
		b.Run(benchName(n), func(b *testing.B) {
			d := harness.New(n, mk())
			src := rng.New(1)
			dist := rng.NewUniform(1, 64)
			// Pre-backlog every flow.
			for f := 0; f < n; f++ {
				for k := 0; k < 4; k++ {
					d.Arrive(flit.Packet{Flow: f, Length: dist.Draw(src)})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := d.ServeOne()
				// Keep the system in steady state: one in, one out.
				d.Arrive(flit.Packet{Flow: p.Flow, Length: dist.Draw(src)})
			}
		})
	}
}

func benchName(n int) string {
	switch n {
	case 8:
		return "n=8"
	case 64:
		return "n=64"
	case 512:
		return "n=512"
	default:
		return "n=4096"
	}
}

func BenchmarkWorkComplexityERR(b *testing.B) {
	benchWorkComplexity(b, func() sched.Scheduler { return core.New() })
}

func BenchmarkWorkComplexityDRR(b *testing.B) {
	benchWorkComplexity(b, func() sched.Scheduler { return sched.NewDRR(64, nil) })
}

func BenchmarkWorkComplexityWFQ(b *testing.B) {
	benchWorkComplexity(b, func() sched.Scheduler { return sched.NewWFQ(nil) })
}

func BenchmarkWorkComplexityPBRR(b *testing.B) {
	benchWorkComplexity(b, func() sched.Scheduler { return sched.NewPBRR() })
}

func BenchmarkWorkComplexityIWRR(b *testing.B) {
	benchWorkComplexity(b, func() sched.Scheduler { return sched.NewIWRR(func(f int) int { return f%4 + 1 }) })
}

// --- substrate throughput ---

// benchERRConfig is the shared workload of the engine-cycle
// benchmarks: 8 permanently backlogged flows under ERR, so every
// cycle forwards a flit — the worst case for per-cycle observer cost.
func benchERRConfig() engine.Config {
	src := rng.New(3)
	return engine.Config{
		Flows:     8,
		Scheduler: core.New(),
		Source: traffic.NewMulti(
			traffic.NewBacklogged(0, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(1, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(2, 4, rng.NewUniform(1, 128), src.Split()),
			traffic.NewBacklogged(3, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(4, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(5, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(6, 4, rng.NewUniform(1, 64), src.Split()),
			traffic.NewBacklogged(7, 4, rng.NewUniform(1, 64), src.Split()),
		),
	}
}

func BenchmarkEngineCycleERR(b *testing.B) {
	e, err := engine.NewEngine(benchERRConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}

// BenchmarkEngineCycleERRCollector is BenchmarkEngineCycleERR with an
// obs.Collector wired onto the engine callbacks. The delta between the
// two is the telemetry layer's per-cycle overhead; BENCH_obs.json
// records it, and the acceptance bar is < 5%.
func BenchmarkEngineCycleERRCollector(b *testing.B) {
	cfg := benchERRConfig()
	obs.NewCollector(obs.NewRegistry(), cfg.Flows).Wire(&cfg)
	e, err := engine.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}

// BenchmarkEngineCycleFBRRSparse exercises the flit-mode engine with
// many flows and sparse traffic — the regime where the old per-cycle
// O(flows) pending scan (and O(flows) Backlog) dominated. With the
// partial-flow counter the idle check is O(1), so ns/cycle stays flat
// as the flow count grows.
func BenchmarkEngineCycleFBRRSparse(b *testing.B) {
	for _, flows := range []int{16, 256, 2048} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			src := rng.New(11)
			// A single low-rate source: most cycles have an empty
			// system, forcing the pending/idle check every cycle, and
			// source stepping stays O(1) so the check dominates.
			e, err := engine.NewEngine(engine.Config{
				Flows:     flows,
				FlitSched: sched.NewFBRR(),
				Source:    traffic.NewBernoulli(0, 0.01, rng.NewUniform(1, 8), src),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			e.Run(int64(b.N))
		})
	}
}

func BenchmarkOmegaStep(b *testing.B) {
	net, err := min.NewOmega(min.Config{
		Terminals: 16, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for term := 0; term < 16; term++ {
			if net.PendingAt(term) < 2 && src.Bernoulli(0.02) {
				d := src.Intn(15)
				if d >= term {
					d++
				}
				net.Send(term, d, src.IntRange(1, 8))
			}
		}
		net.Step()
	}
}

func BenchmarkDAMQPushPop(b *testing.B) {
	buf := damq.New(64, 4, 2)
	f := flit.Flit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i & 3
		if !buf.Push(q, f, 0) {
			for !buf.Empty(q) {
				buf.Pop(q)
			}
		}
	}
}

func BenchmarkMeshStep(b *testing.B) {
	m, err := noc.NewMesh(noc.Config{
		K: 4, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(5)
	inj := noc.NewInjector(m, 0.02, noc.Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), src)
	inj.MaxPending = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Step()
		m.Step()
	}
}

// --- NoC stepping-mode benchmarks (BENCH_noc.json) ---

// benchMeshStepping measures one mesh cycle under a stepping mode:
// "full" iterates every router each cycle (the pre-active-set
// behaviour), "quiescent" steps only routers holding flits or locks,
// and "sharded" additionally fans the compute phase across a worker
// pool. A warm phase reaches steady state first so the active set
// reflects the sustained load, not the cold start.
func benchMeshStepping(b *testing.B, k int, rate float64, mode string, workers int) {
	m, err := noc.NewMesh(noc.Config{
		K: k, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		b.Fatal(err)
	}
	switch mode {
	case "full":
		m.SetFullIteration(true)
	case "sharded":
		p := exec.NewPool(workers)
		defer p.Close()
		m.SetPool(p)
	}
	inj := noc.NewInjector(m, rate, noc.Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), rng.New(5))
	inj.MaxPending = 4
	for c := 0; c < 2000; c++ {
		inj.Step()
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Step()
		m.Step()
	}
}

// BenchmarkRouterCompute measures one cycle of a single saturated
// router — both input ports feeding one output, every VC backlogged —
// the innermost unit of the NoC hot path (BENCH_hotpath.json). The
// allocs/op figure is the steady-state allocation gate: it must stay
// at 0.
func BenchmarkRouterCompute(b *testing.B) {
	r, err := wormhole.NewRouter(0, wormhole.Config{
		Ports: 2, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
		Route:  func(dst int) int { return 1 },
	})
	if err != nil {
		b.Fatal(err)
	}
	wormhole.ConnectEndpoint(r, 0, &wormhole.Sink{})
	wormhole.ConnectEndpoint(r, 1, &wormhole.Sink{})
	flits := flit.Packet{Flow: 0, Length: 4, Dst: 9}.Flits()
	idx := make([]int, 4)
	cycle := int64(0)
	step := func() {
		cycle++
		for p := 0; p < 2; p++ {
			for v := 0; v < 2; v++ {
				if r.InputFree(p, v) > 0 {
					i := &idx[p*2+v]
					r.Inject(p, v, flits[*i], cycle)
					*i = (*i + 1) % len(flits)
				}
			}
		}
		r.Step(cycle)
	}
	for c := 0; c < 64; c++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkNoCStepping(b *testing.B) {
	// Load points: "low" is a genuinely light load (~1% flit
	// injection, ~20% of routers active) where quiescence pays;
	// "tenpct" is ~10% flit injection, which under uniform traffic
	// already backlogs nearly every router (so skipping buys nothing
	// and must cost nothing); "high" is deep saturation.
	loads := []struct {
		name string
		k    int
		rate float64
	}{
		{"8x8-low", 8, 0.002},
		{"8x8-high", 8, 0.30},
		{"16x16-low", 16, 0.002},
		{"16x16-tenpct", 16, 0.02},
		{"16x16-high", 16, 0.30},
	}
	modes := []struct {
		name, mode string
		workers    int
	}{
		{"full", "full", 0},
		{"quiescent", "quiescent", 0},
		{"sharded4", "sharded", 4},
	}
	for _, l := range loads {
		for _, md := range modes {
			b.Run(l.name+"/"+md.name, func(b *testing.B) {
				benchMeshStepping(b, l.k, l.rate, md.mode, md.workers)
			})
		}
	}
}

// --- Tiled stepping benchmarks (BENCH_scale.json hot path) ---

// benchTiledStepping measures one cycle of tile-sharded parallel
// stepping on a torus under the scale-sweep load point (2 VCs, 2-flit
// buffers, 2% injection). The allocs/op figure extends the hot-path
// allocation gate to the tiled commit path: tile arenas, worker
// scratch, boundary effect queues, and the per-cycle tile task list
// are all preallocated, so steady-state stepping must allocate
// nothing at any worker count.
func benchTiledStepping(b *testing.B, k, tile, workers int) {
	m, err := noc.NewMesh(noc.Config{
		K: k, VCs: 2, BufFlits: 2, Torus: true, Tile: tile,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		b.Fatal(err)
	}
	if workers > 1 {
		p := exec.NewPool(workers)
		defer p.Close()
		m.SetPool(p)
	}
	inj := noc.NewInjector(m, 0.02, noc.Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), rng.New(7))
	inj.MaxPending = 2
	// Large tori take longer than the 16x16 meshes to reach their
	// scratch-capacity high water (effect queues, active lists), so
	// warm well past it: the gate below pins steady state, not growth.
	for c := 0; c < 8000; c++ {
		inj.Step()
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Step()
		m.Step()
	}
}

func BenchmarkNoCTiledStepping(b *testing.B) {
	// 64x64 is the largest torus whose warm-up fits a CI benchmark
	// run; the 256x256..1024x1024 points live in BENCH_scale.json
	// (regenerated offline via errsim -exp scale, not per-commit).
	cases := []struct {
		k, tile, workers int
	}{
		{64, 0, 1}, // default tile (8 at K=64), serial commit path
		{64, 0, 4}, // default tile, parallel interior commit
		{64, 16, 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%dx%d-tile%d-w%d", c.k, c.k, c.tile, c.workers), func(b *testing.B) {
			benchTiledStepping(b, c.k, c.tile, c.workers)
		})
	}
}

// --- NoC event-core benchmarks (BENCH_noc.json "event core") ---

// benchMeshEventCore measures one epoch of a bursty or fault-windowed
// workload through Run/Drain — the regime the discrete-event core
// exists for. Steady Bernoulli loads (BenchmarkNoCStepping) never
// globally idle, so event-to-event advancement neither helps nor
// hurts there; here each 50k-cycle epoch is mostly gap (idle after a
// burst drains, or dormant behind a known fault window), and the
// event core jumps it while the stepped oracle crawls. The mesh
// persists across iterations, so allocs/op is the zero-allocation
// steady-state gate for Run/Drain themselves (BENCH_hotpath.json).
func benchMeshEventCore(b *testing.B, scenario string, stepped bool) {
	const k, epoch = 16, 400_000
	m, err := noc.NewMesh(noc.Config{
		K: k, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		b.Fatal(err)
	}
	m.RegisterObs(obs.NewRegistry())
	m.SetStepped(stepped)
	// The freeze-gap scenario wedges traffic behind a frozen center
	// router for most of each epoch. The window predicate is installed
	// once (its bounds move per epoch); the edges are declared known
	// and re-registered each epoch via ScheduleWake, so the frozen
	// router is dormant between edges instead of polled.
	var winStart, winEnd int64
	center := m.NodeID(k/2, k/2)
	if scenario == "freeze-gap" {
		m.Router(center).SetFreeze(func(c int64) bool { return c >= winStart && c < winEnd })
		m.Router(center).SetFaultEdgesKnown(true)
	}
	src := rng.New(5)
	lens := rng.NewUniform(1, 8)
	// Saturation warm: drive every router to backlog once so lazily
	// created per-flow scheduler state and queue capacities exist
	// before measurement (first-touch allocations otherwise trickle in
	// for thousands of epochs under random burst traffic).
	winj := noc.NewInjector(m, 0.30, noc.Uniform{Nodes: m.Nodes()}, lens, rng.New(9))
	winj.MaxPending = 4
	for c := 0; c < 3000; c++ {
		winj.Step()
		m.Step()
	}
	if !m.Drain(epoch) {
		b.Fatal("saturation warm did not drain")
	}
	runEpoch := func() {
		start := m.Cycle()
		if scenario == "freeze-gap" {
			// Thaw 10k cycles before epoch end: the wedged traffic
			// drains inside the epoch, the remainder idles.
			winStart, winEnd = start+100, start+epoch-10_000
			m.ScheduleWake(winStart)
			m.ScheduleWake(winEnd)
		}
		// One packet per node inside a 20-cycle burst (~9% flit
		// injection while it lasts), then nothing for the rest of the
		// epoch.
		for n := 0; n < m.Nodes(); n++ {
			d := src.Intn(m.Nodes())
			if d == n {
				d = (d + 1) % m.Nodes()
			}
			m.SendAt(start+int64(src.Intn(20)), n, d, lens.Draw(src))
		}
		m.Run(epoch)
	}
	for i := 0; i < 3; i++ {
		runEpoch()
	}
	if m.InFlight() != 0 {
		b.Fatalf("%s epoch does not drain: %d in flight", scenario, m.InFlight())
	}
	if !stepped && m.Skipped() == 0 {
		b.Fatalf("%s epoch never engaged the event core", scenario)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch()
	}
	b.StopTimer()
	b.ReportMetric(float64(epoch)*1e9/float64(b.Elapsed().Nanoseconds()/int64(b.N)), "cycles/sec")
}

func BenchmarkNoCEventCore(b *testing.B) {
	for _, scenario := range []string{"bursty", "freeze-gap"} {
		for _, md := range []struct {
			name    string
			stepped bool
		}{{"event", false}, {"stepped", true}} {
			b.Run("16x16-"+scenario+"/"+md.name, func(b *testing.B) {
				benchMeshEventCore(b, scenario, md.stepped)
			})
		}
	}
}
