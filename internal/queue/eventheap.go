package queue

import "math"

// EventNever is the At of an event that will never fire — the
// NextAt() of an empty heap, and the sentinel next-event reporters
// return when only an external stimulus can wake them.
const EventNever = math.MaxInt64

// Event is one timestamped wake-up in a discrete-event simulation:
// something identified by (Kind, ID) — a fault-window edge on a
// router, a scheduled arrival, an externally registered wake — that
// can change simulation state at cycle At and at no cycle before it.
type Event struct {
	// At is the cycle the event fires.
	At int64
	// ID is the entity the event belongs to (router id, node id).
	ID int32
	// Kind discriminates event sources sharing one heap.
	Kind uint8
}

// eventLess is the total order of the event queue: fire cycle, then
// entity id, then kind. The order below At is a determinism contract,
// not an optimisation: same-cycle events must pop in a fixed
// (id, kind) order no matter what order they were pushed in, so every
// consumer that drains due events observes one canonical sequence
// (pinned by TestEventHeapDeterministicOrder and raced in CI).
func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Kind < b.Kind
}

// EventHeap is a deterministic min-heap of Events ordered by
// (At, ID, Kind). Duplicates are allowed (pushing the same edge twice
// is harmless — it pops twice, and identical events are idempotent by
// contract), and because the order is total over the struct, the pop
// sequence of any multiset of events is independent of insertion
// order even though a binary heap is not stable. The zero value is an
// empty heap; Push amortises to zero allocations once the backing
// array has grown to the working-set size.
type EventHeap struct {
	h []Event
}

// Len returns the number of queued events.
func (q *EventHeap) Len() int { return len(q.h) }

// NextAt returns the fire cycle of the earliest event, or EventNever
// when the heap is empty — min() composes without an emptiness check.
func (q *EventHeap) NextAt() int64 {
	if len(q.h) == 0 {
		return EventNever
	}
	return q.h[0].At
}

// Push queues an event.
func (q *EventHeap) Push(e Event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

// Pop removes and returns the earliest event. It panics on an empty
// heap (callers gate on Len or NextAt).
func (q *EventHeap) Pop() Event {
	if len(q.h) == 0 {
		panic("queue: Pop from empty EventHeap")
	}
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && eventLess(q.h[c+1], q.h[c]) {
			c++
		}
		if !eventLess(q.h[c], q.h[i]) {
			break
		}
		q.h[i], q.h[c] = q.h[c], q.h[i]
		i = c
	}
	return top
}

// DropDue pops every event with At <= now, returning the fire cycle
// of the earliest remaining one (EventNever when none remain). It is
// the lazy-expiry primitive for consumers that use the heap purely as
// a "next interesting cycle" bound: edges the simulation has already
// stepped past carry no information and are shed on the next query.
func (q *EventHeap) DropDue(now int64) int64 {
	for len(q.h) > 0 && q.h[0].At <= now {
		q.Pop()
	}
	return q.NextAt()
}
