package wormhole

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/rng"
	"repro/internal/sched"
)

// testConfig: Route(dst) = dst, i.e. the destination id names the
// output port directly.
func testConfig(ports, vcs, buf int) Config {
	return Config{
		Ports:    ports,
		VCs:      vcs,
		BufFlits: buf,
		NewArb:   func() sched.Scheduler { return core.New() },
		Route:    func(dst int) int { return dst },
	}
}

// injectPacket pushes all flits of a packet into (port, vc) at the
// given cycle, failing the test on buffer overflow.
func injectPacket(t *testing.T, r *Router, port, vc int, p flit.Packet, cycle int64) {
	t.Helper()
	for _, f := range p.Flits() {
		if !r.Inject(port, vc, f, cycle) {
			t.Fatalf("input buffer full injecting %v", f)
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig(2, 1, 4)
	cfg.NewArb = func() sched.Scheduler { return sched.NewDRR(64, nil) }
	if _, err := NewRouter(0, cfg); err == nil {
		t.Error("length-aware arbiter accepted")
	}
	cfg.NewArb = func() sched.Scheduler { return sched.NewFCFS() }
	if _, err := NewRouter(0, cfg); err == nil {
		t.Error("FCFS (not head-of-line safe) accepted")
	}
	cfg.NewArb = func() sched.Scheduler { return sched.NewPBRR() }
	if _, err := NewRouter(0, cfg); err != nil {
		t.Errorf("PBRR rejected: %v", err)
	}
}

func TestSingleRouterForwardsPacket(t *testing.T) {
	r, err := NewRouter(0, testConfig(2, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	var flitCycles []int64
	sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { flitCycles = append(flitCycles, cycle) }
	ConnectEndpoint(r, 0, sink)

	injectPacket(t, r, 1, 0, flit.Packet{Flow: 0, Length: 3, Dst: 0}, 0)
	for c := int64(0); c < 10; c++ {
		r.Step(c)
	}
	if sink.Flits != 3 || sink.Packets != 1 {
		t.Fatalf("sink saw %d flits / %d packets, want 3/1", sink.Flits, sink.Packets)
	}
	// Grant at cycle 0, flits forwarded at cycles 1, 2, 3.
	want := []int64{1, 2, 3}
	for i, w := range want {
		if flitCycles[i] != w {
			t.Errorf("flit %d at cycle %d, want %d", i, flitCycles[i], w)
		}
	}
}

func TestOccupancyBilledToArbiter(t *testing.T) {
	cfg := testConfig(2, 1, 8)
	var errArb *core.ERR
	cfg.NewArb = func() sched.Scheduler {
		a := core.New()
		if errArb == nil {
			errArb = a // capture the port-0 arbiter (created first)
		}
		return a
	}
	r, err := NewRouter(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &core.TraceRecorder{}
	errArb.SetTrace(rec)
	// Downstream drains only every 2nd cycle: occupancy ~2x length.
	ss := NewStallSink(2, func(cycle int64) bool { return cycle%2 == 0 })
	ConnectEndpoint(r, 0, ss)
	ss.Bind(r, 0)

	injectPacket(t, r, 1, 0, flit.Packet{Flow: 0, Length: 4, Dst: 0}, 0)
	for c := int64(0); c < 30; c++ {
		r.Step(c)
		ss.Step(c)
	}
	if ss.Inner.Packets != 1 {
		t.Fatalf("packet not delivered (got %d)", ss.Inner.Packets)
	}
	if len(rec.Events) != 1 {
		t.Fatalf("arbiter saw %d completions, want 1", len(rec.Events))
	}
	occ := rec.Events[0].Sent // ERR bills Sent = occupancy cycles
	if occ <= 4 {
		t.Errorf("occupancy %d should exceed packet length 4 under stalls", occ)
	}
}

func TestCreditBackpressure(t *testing.T) {
	// Downstream sink never drains: only BufFlits flits may leave the
	// router, then the worm stalls.
	r, err := NewRouter(0, testConfig(2, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStallSink(2, func(int64) bool { return false })
	ConnectEndpoint(r, 0, ss)
	ss.Bind(r, 0)
	injectPacket(t, r, 1, 0, flit.Packet{Flow: 0, Length: 6, Dst: 0}, 0)
	for c := int64(0); c < 20; c++ {
		r.Step(c)
		ss.Step(c)
	}
	if got := len(ss.buffered); got != 2 {
		t.Errorf("%d flits crossed the link, want exactly 2 (credit limit)", got)
	}
}

func TestTwoFlowContentionERRFairInOccupancy(t *testing.T) {
	// Inputs 1 and 2 both send to output 0. Flow on input 2 sends
	// double-length packets; ERR must equalise occupancy, i.e. both
	// inputs get ~equal output cycles.
	cfg := testConfig(3, 1, 16)
	r, err := NewRouter(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	served := map[int]int64{}
	sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { served[f.Flow]++ }
	ConnectEndpoint(r, 0, sink)

	// Keep both inputs topped up.
	next := []int{0, 0}
	for c := int64(0); c < 60000; c++ {
		for in := 1; in <= 2; in++ {
			length := 4
			if in == 2 {
				length = 8
			}
			if r.InputFree(in, 0) >= length {
				injectPacket(t, r, in, 0, flit.Packet{Flow: in, Length: length, Dst: 0}, c)
				next[in-1]++
			}
		}
		r.Step(c)
	}
	ratio := float64(served[2]) / float64(served[1])
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("flit ratio in2/in1 = %.3f, want ~1.0 (served %d vs %d)",
			ratio, served[2], served[1])
	}
}

func TestTwoRoutersMultiHop(t *testing.T) {
	// r0 port 1 -> r1 port 1; destination 0 ejects locally at each
	// router's port 0. A packet injected at r0 input 2 with dst
	// "remote" must traverse both routers.
	mkCfg := func(remotePort int) Config {
		c := testConfig(3, 2, 8)
		c.Route = func(dst int) int {
			if dst == 99 {
				return remotePort
			}
			return 0
		}
		return c
	}
	r0, err := NewRouter(0, mkCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// At r1 everything ejects at port 0.
	r1, err := NewRouter(1, mkCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	// r1 routes dst 99 to port 0 too (it is the last hop).
	r1.cfg.Route = func(dst int) int { return 0 }

	Connect(r0, 1, r1, 1)
	sink0 := &Sink{}
	sink1 := &Sink{}
	ConnectEndpoint(r0, 0, sink0)
	ConnectEndpoint(r1, 0, sink1)
	ConnectEndpoint(r0, 2, &Sink{})
	ConnectEndpoint(r1, 2, &Sink{})

	var deliveredAt int64 = -1
	sink1.OnTail = func(f flit.Flit, cycle int64) { deliveredAt = cycle }

	injectPacket(t, r0, 2, 1, flit.Packet{Flow: 7, Length: 5, Dst: 99}, 0)
	for c := int64(0); c < 50; c++ {
		r0.Step(c)
		r1.Step(c)
	}
	if sink1.Packets != 1 {
		t.Fatalf("packet not delivered at r1 (sink1 packets=%d, sink0=%d)", sink1.Packets, sink0.Packets)
	}
	if deliveredAt < 5 {
		t.Errorf("tail delivered at cycle %d, impossibly fast for 2 hops of a 5-flit packet", deliveredAt)
	}
	// Credit conservation: r0's credits toward r1 must be restored.
	for v := 0; v < 2; v++ {
		if r0.crd[1*r0.cfg.VCs+v] != r1.cfg.BufFlits {
			t.Errorf("vc %d credits %d, want %d", v, r0.crd[1*r0.cfg.VCs+v], r1.cfg.BufFlits)
		}
	}
}

func TestHeadOfLineBlockingAcrossOutputs(t *testing.T) {
	// Same input VC holds a packet to output 0 then one to output 1:
	// the second must wait for the first (HoL), then be announced to
	// output 1's arbiter.
	r, err := NewRouter(0, testConfig(3, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := &Sink{}, &Sink{}
	ConnectEndpoint(r, 0, s0)
	ConnectEndpoint(r, 1, s1)
	injectPacket(t, r, 2, 0, flit.Packet{Flow: 1, Length: 3, Dst: 0}, 0)
	injectPacket(t, r, 2, 0, flit.Packet{Flow: 1, Length: 3, Dst: 1}, 0)
	for c := int64(0); c < 20; c++ {
		r.Step(c)
	}
	if s0.Packets != 1 || s1.Packets != 1 {
		t.Fatalf("packets delivered: out0=%d out1=%d, want 1/1", s0.Packets, s1.Packets)
	}
}

func TestVCsBypassHoLBlocking(t *testing.T) {
	// Output 0 is fully stalled. A packet to output 0 sits in VC 0;
	// a packet to output 1 in VC 1 of the same input port must still
	// get through.
	r, err := NewRouter(0, testConfig(3, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	stalled := NewStallSink(1, func(int64) bool { return false })
	ConnectEndpoint(r, 0, stalled)
	stalled.Bind(r, 0)
	s1 := &Sink{}
	ConnectEndpoint(r, 1, s1)

	injectPacket(t, r, 2, 0, flit.Packet{Flow: 1, Length: 4, Dst: 0}, 0)
	injectPacket(t, r, 2, 1, flit.Packet{Flow: 2, Length: 4, Dst: 1}, 0)
	for c := int64(0); c < 30; c++ {
		r.Step(c)
	}
	if s1.Packets != 1 {
		t.Errorf("VC 1 packet blocked behind an unrelated stalled VC 0 worm")
	}
}

func TestRandomisedManyPacketsAllDelivered(t *testing.T) {
	// Stress: random packets from 3 inputs to 2 outputs across 2 VCs;
	// every injected packet must eventually eject, exactly once.
	r, err := NewRouter(0, testConfig(5, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	sinks := [2]*Sink{{}, {}}
	var delivered int64
	for o := 0; o < 2; o++ {
		sinks[o].OnTail = func(f flit.Flit, cycle int64) { delivered++ }
		ConnectEndpoint(r, o, sinks[o])
	}
	for p := 2; p < 5; p++ {
		ConnectEndpoint(r, p, &Sink{})
	}
	src := rng.New(7)
	injected := int64(0)
	// Pending injections: one packet at a time per (input, vc).
	type pending struct {
		flits []flit.Flit
		next  int
	}
	var pend [5][2]*pending
	for c := int64(0); c < 30000; c++ {
		for in := 2; in < 5; in++ {
			for vc := 0; vc < 2; vc++ {
				pd := pend[in][vc]
				if pd == nil && src.Bernoulli(0.02) {
					p := flit.Packet{
						Flow:   in*2 + vc,
						Length: src.IntRange(1, 12),
						Dst:    src.Intn(2),
					}
					pd = &pending{flits: p.Flits()}
					pend[in][vc] = pd
					injected++
				}
				if pd != nil {
					if r.Inject(in, vc, pd.flits[pd.next], c) {
						pd.next++
						if pd.next == len(pd.flits) {
							pend[in][vc] = nil
						}
					}
				}
			}
		}
		r.Step(c)
	}
	// Drain: stop creating packets but keep feeding the flits of
	// partially injected worms.
	for c := int64(30000); c < 40000; c++ {
		for in := 2; in < 5; in++ {
			for vc := 0; vc < 2; vc++ {
				pd := pend[in][vc]
				if pd != nil && r.Inject(in, vc, pd.flits[pd.next], c) {
					pd.next++
					if pd.next == len(pd.flits) {
						pend[in][vc] = nil
					}
				}
			}
		}
		r.Step(c)
	}
	if delivered != injected {
		t.Errorf("injected %d packets, delivered %d", injected, delivered)
	}
}
