package sched

import (
	"fmt"

	"repro/internal/queue"
)

// DRR is Deficit Round Robin (Shreedhar & Varghese, ToN 1996), the
// O(1) discipline closest to ERR in the paper's Table 1. Each flow
// accumulates a Quantum of credit per round-robin visit in a deficit
// counter and may transmit head packets while they fit in the
// counter. Its relative fairness bound is Max + 2m, where Max is the
// largest packet that may *potentially* arrive — the quantum must be
// provisioned for it — whereas ERR's 3m bound involves only packets
// that actually arrived.
//
// DRR requires the length of the head packet before dequeuing it
// (the deficit test), so it implements LengthAware and cannot be used
// in wormhole occupancy mode. Lengths are captured at arrival into a
// per-flow FIFO so the test never touches the real queue.
//
// The classical O(1) guarantee requires Quantum >= Max; smaller
// quanta are accepted (a visit may then transmit nothing while the
// deficit builds up), costing extra list rotations.
type DRR struct {
	name    string
	quantum func(flow int) int64
	active  queue.ActiveList
	// deficit and lengths are indexed by flow id and grown on demand
	// (flow ids are dense small integers; slices keep the hot path
	// allocation-free).
	deficit []int64
	lengths []*fifoInt
	current int
}

// NewDRR returns a DRR scheduler with the given per-flow quantum
// function; nil means the fixed quantum q for all flows. A perFlow
// function must return >= 1 for every flow; it is validated at every
// use (a zero or negative quantum would spin NextFlow's rotate loop
// forever, since the deficit would never grow to fit a packet).
func NewDRR(q int64, perFlow func(flow int) int64) *DRR {
	if perFlow == nil {
		if q < 1 {
			panic(fmt.Sprintf("sched: DRR quantum %d < 1", q))
		}
		perFlow = func(int) int64 { return q }
	}
	return &DRR{
		name:    "DRR",
		quantum: perFlow,
		current: -1,
	}
}

// NewOptDRR returns a DRR scheduler named "DRR-OPT" using the given
// per-flow quanta, as computed by bounds.OptimizeQuanta (quantum
// selection minimising the worst normalised delay bound, after the
// DRR-convexity analysis of Mukherjee, Kuri & Singh). It panics on a
// flow id outside the quanta table, naming the flow.
func NewOptDRR(quanta []int64) *DRR {
	d := NewDRR(0, func(flow int) int64 {
		if flow >= len(quanta) {
			panic(fmt.Sprintf("sched: DRR-OPT has no quantum for flow %d (table has %d flows)", flow, len(quanta)))
		}
		return quanta[flow]
	})
	d.name = "DRR-OPT"
	return d
}

// grow ensures the per-flow tables cover flow.
func (d *DRR) grow(flow int) {
	if flow < len(d.deficit) {
		return
	}
	nd := make([]int64, flow+1)
	copy(nd, d.deficit)
	d.deficit = nd
	nl := make([]*fifoInt, flow+1)
	copy(nl, d.lengths)
	d.lengths = nl
}

// Name implements Scheduler.
func (d *DRR) Name() string { return d.name }

// OnArrival implements Scheduler.
func (d *DRR) OnArrival(flow int, wasEmpty bool) {
	d.grow(flow)
	if flow != d.current && !d.active.Contains(flow) {
		d.active.PushTail(flow)
		d.deficit[flow] = 0
	}
}

// OnArrivalLength implements LengthAware.
func (d *DRR) OnArrivalLength(flow int, length int) {
	d.grow(flow)
	q := d.lengths[flow]
	if q == nil {
		q = &fifoInt{}
		d.lengths[flow] = q
	}
	q.push(length)
}

// headLen returns the length of flow's head packet. It panics if the
// engine never supplied it (the engine always pairs OnArrival with
// OnArrivalLength for LengthAware schedulers).
func (d *DRR) headLen(flow int) int64 {
	var q *fifoInt
	if flow < len(d.lengths) {
		q = d.lengths[flow]
	}
	if q == nil || q.empty() {
		panic("sched: DRR has no recorded length for head packet")
	}
	return int64(q.peek())
}

// NextFlow implements Scheduler.
func (d *DRR) NextFlow() int {
	if d.current != -1 {
		return d.current // continue the current service opportunity
	}
	// Rotate until some flow's head packet fits its deficit. Each
	// visit adds a quantum >= 1, so the loop always terminates; with
	// the standard Quantum >= Max provisioning it never iterates.
	for {
		flow := d.active.PopHead()
		q := d.quantum(flow)
		if q < 1 {
			panic(fmt.Sprintf("sched: DRR quantum %d < 1 for flow %d", q, flow))
		}
		d.deficit[flow] += q
		if d.headLen(flow) <= d.deficit[flow] {
			d.current = flow
			return flow
		}
		d.active.PushTail(flow)
	}
}

// OnPacketDone implements Scheduler.
func (d *DRR) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != d.current {
		panic("sched: DRR completion for a flow not in service")
	}
	length := int64(d.lengths[flow].pop())
	d.deficit[flow] -= length
	if d.deficit[flow] < 0 {
		panic("sched: DRR deficit went negative")
	}
	if nowEmpty {
		// Shreedhar & Varghese reset the deficit of an emptied flow:
		// credit does not survive idleness.
		d.deficit[flow] = 0
		d.current = -1
		return
	}
	if d.headLen(flow) > d.deficit[flow] {
		d.active.PushTail(flow)
		d.current = -1
	}
	// Otherwise keep current: the opportunity continues with the next
	// head packet.
}

var _ LengthAware = (*DRR)(nil)
