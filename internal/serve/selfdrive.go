package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// WorkHandler is the demo application handler: GET /work?ms=N sleeps
// N milliseconds and answers 200. It stands in for a real backend in
// the selfdrive smoke, the bench sweep, and the errserve demo binary —
// a handler whose cost is visible and controllable from the request,
// which is exactly what the ERR front end must cope with (it never
// learns that cost up front).
func WorkHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.Atoi(r.URL.Query().Get("ms")); err == nil && ms > 0 {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
}

// SelfDriveConfig parameterizes one self-contained smoke run: a
// Server built from these knobs, driven by an in-process open-loop
// load derived from the fault spec's burst/flood directives plus a
// baseline of well-behaved tenants, then shut down and audited.
type SelfDriveConfig struct {
	Workers     int
	QueueCap    int
	GlobalBytes int64
	DebtCap     int64
	// DefaultDeadline is applied to all requests (0 = none).
	DefaultDeadline time.Duration
	// FaultSpec is the -faults grammar string ("" = no chaos). Its
	// slow/stuck directives wrap the handler; its burst/flood
	// directives become adversarial load streams.
	FaultSpec string
	Seed      uint64
	// Dur is how long load runs before shutdown. DrainTimeout bounds
	// the default drain (0 = 10s).
	Dur          time.Duration
	DrainTimeout time.Duration
	// CostMS is the per-request handler cost for generated streams.
	// Baseline overrides the default well-behaved mix when non-nil.
	CostMS   int
	Baseline []LoadSpec
}

// SelfDriveReport is the JSON-able outcome of a selfdrive run. OK is
// the single pass/fail bit the CI smoke gates on: zero accounting
// violations and a clean drain.
type SelfDriveReport struct {
	DurMS         int64               `json:"dur_ms"`
	Loads         []LoadResult        `json:"loads"`
	Tenants       []TenantStats       `json:"tenants"`
	Faults        fault.ServeCounters `json:"faults"`
	Violations    int64               `json:"violations"`
	ViolationMsgs []string            `json:"violation_msgs,omitempty"`
	DrainClean    bool                `json:"drain_clean"`
	DrainErr      string              `json:"drain_err,omitempty"`
	OK            bool                `json:"ok"`
}

// SelfDrive runs the smoke: build a server over WorkHandler with the
// configured chaos, drive it with the derived load for cfg.Dur, shut
// it down via the shutdown hook (nil = Drain directly; cmd/errserve
// passes a hook that raises SIGTERM against itself so the real signal
// path is exercised), and audit the accounting. The returned report
// is complete even when OK is false; the error covers only setup
// failures (a bad fault spec).
func SelfDrive(cfg SelfDriveConfig, shutdown func(*Server) error) (*SelfDriveReport, error) {
	var spec *fault.Spec
	if cfg.FaultSpec != "" {
		var err error
		spec, err = fault.Parse(cfg.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("selfdrive: %w", err)
		}
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.CostMS <= 0 {
		cfg.CostMS = 2
	}

	inj := fault.NewServe(spec, cfg.Seed)
	s, err := New(Config{
		Handler:         WorkHandler(),
		Workers:         cfg.Workers,
		QueueCap:        cfg.QueueCap,
		GlobalBytes:     cfg.GlobalBytes,
		DebtCap:         cfg.DebtCap,
		DefaultDeadline: cfg.DefaultDeadline,
		Faults:          inj,
		Registry:        obs.NewRegistry(),
	})
	if err != nil {
		return nil, fmt.Errorf("selfdrive: %w", err)
	}
	defer s.Close()

	specs := LoadsFromFaults(spec, cfg.CostMS, 0)
	if cfg.Baseline != nil {
		specs = append(specs, cfg.Baseline...)
	} else {
		for i := 0; i < 4; i++ {
			specs = append(specs, LoadSpec{
				Tenant: fmt.Sprintf("base-%d", i), RPS: 40, CostMS: cfg.CostMS,
			})
		}
	}

	rep := &SelfDriveReport{DurMS: cfg.Dur.Milliseconds()}
	rep.Loads = RunLoad(s, specs, cfg.Seed, cfg.Dur)

	if shutdown == nil {
		shutdown = func(s *Server) error { return s.Drain(cfg.DrainTimeout) }
	}
	drainErr := shutdown(s)
	rep.DrainClean = drainErr == nil
	if drainErr != nil {
		rep.DrainErr = drainErr.Error()
	}

	rep.Violations, rep.ViolationMsgs = s.VerifyAccounting()
	rep.Tenants = s.Stats()
	rep.Faults = inj.ServeCounters()
	rep.OK = rep.Violations == 0 && rep.DrainClean
	return rep, nil
}
