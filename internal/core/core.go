package core
