package experiments

import (
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
)

// NoCSweepParams parameterises the network-level load-latency sweep:
// a K x K wormhole mesh (or torus) under uniform random traffic, with
// per-output-queue arbitration by ERR or PBRR, swept across injection
// rates. This is the canonical interconnection-network figure the
// paper's venue audience would draw for a new switch arbiter; it
// demonstrates the scheduler inside the multi-hop substrate.
type NoCSweepParams struct {
	K        int
	VCs      int
	BufFlits int
	Torus    bool
	// Rates are per-node injection probabilities per cycle.
	Rates []float64
	// WarmCycles per point, before the drain phase.
	WarmCycles int64
	MinLen     int
	MaxLen     int
	Seed       uint64
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Workers caps the worker pool running the discipline × rate grid
	// (0 = GOMAXPROCS, 1 = serial). The result is byte-identical for
	// every value: each point derives its own seed with rng.Derive.
	Workers int
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs. Router-scoped fault directives
	// (router=/port=) address mesh nodes and their five output ports;
	// with Check set, every ejection sink validates wormhole flit
	// streams and a deadlock watchdog dumps the channel-wait graph on
	// a stall.
	Robustness
}

// DefaultNoCSweepParams returns defaults for a 4x4 mesh.
func DefaultNoCSweepParams() NoCSweepParams {
	return NoCSweepParams{
		K: 4, VCs: 2, BufFlits: 8,
		Rates:      []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05},
		WarmCycles: 50_000,
		MinLen:     1, MaxLen: 8,
		Seed: 1,
	}
}

// NoCSweepResult holds mean end-to-end latency per arbiter per rate.
type NoCSweepResult struct {
	Params      NoCSweepParams
	Disciplines []string
	// Latency[d][i] is the mean packet latency at Rates[i].
	Latency [][]float64
	// Delivered[d][i] is the accepted throughput in packets.
	Delivered [][]float64
}

// RunNoCSweep runs the sweep for ERR and PBRR arbitration.
func RunNoCSweep(p NoCSweepParams) (*NoCSweepResult, error) {
	mks := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"ERR", func() sched.Scheduler { return core.New() }},
		{"PBRR", func() sched.Scheduler { return sched.NewPBRR() }},
	}
	// One job per discipline × injection rate; a point's seed depends
	// only on the rate index so both arbiters face the same traffic.
	// Fields are exported so the result round-trips the JSONL
	// checkpoint.
	type point struct {
		Lat, Del float64
	}
	jobs := make([]exec.Job[point], 0, len(mks)*len(p.Rates))
	for _, m := range mks {
		for i, rate := range p.Rates {
			m, i, rate, job := m, i, rate, len(jobs)
			jobs = append(jobs, func() (point, error) {
				mesh, err := noc.NewMesh(noc.Config{
					K: p.K, VCs: p.VCs, BufFlits: p.BufFlits,
					Torus: p.Torus, NewArb: m.mk,
				})
				if err != nil {
					return point{}, err
				}
				spec, err := fault.Parse(p.Faults)
				if err != nil {
					return point{}, err
				}
				finj := fault.New(spec, p.faultSeed(p.Seed, job))
				mesh.InstallFaults(finj)
				var rec *check.Recorder
				var wd *check.Watchdog
				if p.Check {
					rec = check.NewRecorder()
					rec.Register(obs.Default())
					mesh.CheckStreams(rec)
					wd = check.NewWatchdog((&SimConfig{}).watchdogLimit(spec))
					mesh.WatchProgress(wd)
				}
				// wedged flags a mesh that holds flits but delivers
				// nothing for the watchdog budget — the wormhole
				// deadlock signature — and dumps who waits on what.
				wedged := func() error {
					if wd == nil || !wd.Expired(mesh.Cycle(), int64(mesh.InFlight())) {
						return nil
					}
					return fmt.Errorf("experiments: nocsweep wedged at cycle %d (%d flits in flight, no delivery for %d cycles); channel-wait graph:\n%s",
						mesh.Cycle(), mesh.InFlight(), wd.Limit,
						noc.FormatWaitGraph(mesh.WaitGraph(mesh.Cycle()), 16))
				}
				src := rng.New(rng.Derive(p.Seed, uint64(i)))
				inj := noc.NewInjector(mesh, rate, noc.Uniform{Nodes: mesh.Nodes()},
					rng.NewUniform(p.MinLen, p.MaxLen), src)
				inj.MaxPending = 4
				for c := int64(0); c < p.WarmCycles; c++ {
					inj.Step()
					mesh.Step()
					if err := wedged(); err != nil {
						return point{}, err
					}
				}
				if wd == nil {
					mesh.Drain(20 * p.WarmCycles)
				} else {
					for c := int64(0); c < 20*p.WarmCycles && mesh.InFlight() > 0; c++ {
						mesh.Step()
						if err := wedged(); err != nil {
							return point{}, err
						}
					}
				}
				registerFaultCounters(obs.Default(), finj.Counters(), 0)
				if rec != nil {
					if err := rec.Err(); err != nil {
						return point{}, fmt.Errorf("experiments: nocsweep failed invariant checking: %w", err)
					}
				}
				var d int64
				for n := 0; n < mesh.Nodes(); n++ {
					d += mesh.DeliveredPackets[n]
				}
				return point{Lat: mesh.Latency.Mean(), Del: float64(d)}, nil
			})
		}
	}
	opts, closeCP, err := gridOptions("nocsweep", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	points, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &NoCSweepResult{Params: p}
	for d, m := range mks {
		lats := make([]float64, len(p.Rates))
		dels := make([]float64, len(p.Rates))
		for i := range p.Rates {
			pt := points[d*len(p.Rates)+i]
			lats[i], dels[i] = pt.Lat, pt.Del
		}
		res.Disciplines = append(res.Disciplines, m.name)
		res.Latency = append(res.Latency, lats)
		res.Delivered = append(res.Delivered, dels)
	}
	return res, nil
}

// Render writes the latency curves and a CSV block.
func (r *NoCSweepResult) Render(w io.Writer) error {
	series := make([]plot.Series, len(r.Disciplines))
	for i, d := range r.Disciplines {
		series[i] = plot.Series{Name: d, X: r.Params.Rates, Y: r.Latency[i]}
	}
	topo := "mesh"
	if r.Params.Torus {
		topo = "torus"
	}
	title := fmt.Sprintf("NoC load-latency sweep — %dx%d %s, uniform traffic",
		r.Params.K, r.Params.K, topo)
	if err := plot.Lines(w, title, series, 64, 14); err != nil {
		return err
	}
	header := []string{"rate"}
	for _, d := range r.Disciplines {
		header = append(header, d+"_latency", d+"_delivered")
	}
	rows := make([][]float64, len(r.Params.Rates))
	for i, x := range r.Params.Rates {
		row := []float64{x}
		for d := range r.Disciplines {
			row = append(row, r.Latency[d][i], r.Delivered[d][i])
		}
		rows[i] = row
	}
	return plot.CSV(w, header, rows)
}
