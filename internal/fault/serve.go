package fault

import (
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Service-side fault injection: the chaos the live-service front end
// (internal/serve, cmd/errserve) must survive. Two directive families
// extend the spec grammar:
//
// Handler faults, applied by the server around the application
// handler (keys: p, ms, tenant; tenant="" matches every tenant):
//
//	slow(p=X, ms=D, tenant=T)
//	    Each of tenant T's requests is delayed D extra milliseconds
//	    with probability X — a degraded dependency.
//	stuck(p=X, ms=D, tenant=T)
//	    Each of tenant T's requests hangs D milliseconds with
//	    probability X — a wedged handler holding a worker slot
//	    hostage. Identical mechanics to slow; kept distinct so runs
//	    can report "slowness" and "wedges" separately and pick very
//	    different durations for each.
//
// Load-generator directives, consumed by the loadgen/selfdrive
// harness rather than the server (at/dur are milliseconds of run
// time here, not cycles):
//
//	burst(tenant=T, rps=R, at=S, dur=D)
//	    Tenant T storms at R requests/second during [at, at+dur) ms.
//	flood(tenant=T, rps=R)
//	    Tenant T floods at R requests/second for the whole run — the
//	    one-key request flood.
//
// As everywhere in this package, every probabilistic decision draws
// from an rng stream derived from the experiment seed and a per-event
// sequence number, so a chaos run's fault pattern is a pure function
// of (seed, event order).
const (
	streamSlow uint64 = 0xfa11 + iota
	streamStuck
)

// ServeCounters tallies what a ServeInjector actually did.
type ServeCounters struct {
	// Slowed is the number of requests delayed by slow directives.
	Slowed int64 `json:"slowed,omitempty"`
	// Stuck is the number of requests hung by stuck directives.
	Stuck int64 `json:"stuck,omitempty"`
}

// ServeInjector realises the handler-fault directives of a parsed
// Spec for a live server. A nil *ServeInjector injects nothing, so
// call sites need no fault/no-fault branching. Delay is safe for
// concurrent use (handlers run on many goroutines).
type ServeInjector struct {
	spec *Spec
	seed uint64
	seq  atomic.Uint64

	slowed atomic.Int64
	stuck  atomic.Int64
}

// NewServe returns a service-side injector for the spec, or nil when
// the spec is nil (no faults).
func NewServe(spec *Spec, seed uint64) *ServeInjector {
	if spec == nil {
		return nil
	}
	return &ServeInjector{spec: spec, seed: seed}
}

// Delay returns the extra handler latency to impose on the next
// request of the given tenant: the sum of every slow/stuck directive
// that matches the tenant and fires its probability draw. Each call
// consumes one event sequence number, so the fault pattern is
// deterministic in (seed, call order) regardless of which goroutine
// asks.
func (in *ServeInjector) Delay(tenant string) time.Duration {
	if in == nil {
		return 0
	}
	var d time.Duration
	var seq uint64
	for i, dir := range in.spec.Directives {
		var stream uint64
		var hits *atomic.Int64
		switch dir.Kind {
		case "slow":
			stream, hits = streamSlow, &in.slowed
		case "stuck":
			stream, hits = streamStuck, &in.stuck
		default:
			continue
		}
		if dir.Tenant != "" && dir.Tenant != tenant {
			continue
		}
		if seq == 0 {
			seq = in.seq.Add(1)
		}
		// The directive index joins the derivation so two directives of
		// the same kind draw independently for the same event.
		if rng.New(rng.Derive(in.seed, stream, uint64(i), seq)).Bernoulli(dir.P) {
			hits.Add(1)
			d += time.Duration(dir.MS) * time.Millisecond
		}
	}
	return d
}

// ServeCounters returns a snapshot of what the injector has done so
// far. Zero value on a nil injector.
func (in *ServeInjector) ServeCounters() ServeCounters {
	if in == nil {
		return ServeCounters{}
	}
	return ServeCounters{
		Slowed: in.slowed.Load(),
		Stuck:  in.stuck.Load(),
	}
}

// Load is one load-generator directive: tenant T sends at RPS
// requests/second during [AtMS, AtMS+DurMS) milliseconds of run time
// (DurMS 0 = the whole run).
type Load struct {
	Tenant string
	RPS    float64
	AtMS   int64
	DurMS  int64
}

// Loads extracts the burst/flood directives of a spec for a load
// generator. Nil-safe; order follows the spec.
func (s *Spec) Loads() []Load {
	if s == nil {
		return nil
	}
	var out []Load
	for _, d := range s.Directives {
		switch d.Kind {
		case "burst":
			out = append(out, Load{Tenant: d.Tenant, RPS: d.RPS, AtMS: d.At, DurMS: d.Dur})
		case "flood":
			out = append(out, Load{Tenant: d.Tenant, RPS: d.RPS})
		}
	}
	return out
}
