package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// GapParams parameterises the inter-service gap experiment, a
// short-term fairness lens the paper's round analysis implies: for a
// continuously backlogged flow under ERR, the wait between two
// consecutive service opportunities is one round, which Theorem 2
// bounds in service terms. We measure, per discipline, the worst gap
// (in cycles) between consecutive flits of each flow on a backlogged
// workload — the scheduler-induced jitter a latency-sensitive flow
// (the paper's video-server motivation) actually experiences.
type GapParams struct {
	Flows  int
	Cycles int64
	Seed   uint64
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Workers caps the worker pool running the per-discipline jobs
	// (0 = GOMAXPROCS, 1 = serial). The result is byte-identical for
	// every value.
	Workers int
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs.
	Robustness
}

// DefaultGapParams returns defaults.
func DefaultGapParams() GapParams {
	return GapParams{Flows: 8, Cycles: 1_000_000, Seed: 1}
}

// GapResult holds, per discipline, the largest inter-flit service gap
// over all flows and the mean of the per-flow worst gaps.
type GapResult struct {
	Params      GapParams
	Disciplines []string
	MaxGap      []int64
	MeanWorst   []float64
}

// RunGap runs the sweep over the O(1) disciplines plus WFQ.
func RunGap(p GapParams) (*GapResult, error) {
	mks := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"ERR", func() sched.Scheduler { return core.New() }},
		{"DRR", func() sched.Scheduler { return sched.NewDRR(64, nil) }},
		{"PBRR", func() sched.Scheduler { return sched.NewPBRR() }},
		{"FCFS", func() sched.Scheduler { return sched.NewFCFS() }},
		{"WFQ", func() sched.Scheduler { return sched.NewWFQ(nil) }},
	}
	// One job per discipline, each building the identical backlogged
	// workload from the shared seed. Fields are exported so the result
	// round-trips the JSONL checkpoint.
	type gaps struct {
		Max  int64
		Mean float64
	}
	jobs := make([]exec.Job[gaps], len(mks))
	for i, m := range mks {
		i, m := i, m
		jobs[i] = func() (gaps, error) {
			src := rng.New(p.Seed)
			sources := make([]traffic.Source, p.Flows)
			for f := 0; f < p.Flows; f++ {
				sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(1, 64), src.Split())
			}
			last := make([]int64, p.Flows)
			worst := make([]int64, p.Flows)
			for f := range last {
				last[f] = -1
			}
			cfg := engine.Config{
				Flows:     p.Flows,
				Scheduler: m.mk(),
				Source:    traffic.NewMulti(sources...),
				OnFlit: func(cycle int64, flow int) {
					if last[flow] >= 0 {
						if g := cycle - last[flow]; g > worst[flow] {
							worst[flow] = g
						}
					}
					last[flow] = cycle
				},
			}
			inj, chk, err := applyRobustness(p.Robustness, p.faultSeed(p.Seed, i), &cfg)
			if err != nil {
				return gaps{}, err
			}
			e, err := engine.NewEngine(cfg)
			if err != nil {
				return gaps{}, err
			}
			if chk != nil {
				chk.Attach(e, cfg.Scheduler)
			}
			if err := runChecked(e, chk, p.Cycles); err != nil {
				return gaps{}, err
			}
			registerFaultCounters(obs.Default(), inj.Counters(), e.Rejected())
			var max int64
			var sum float64
			for _, w := range worst {
				if w > max {
					max = w
				}
				sum += float64(w)
			}
			return gaps{Max: max, Mean: sum / float64(p.Flows)}, nil
		}
	}
	opts, closeCP, err := gridOptions("gap", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	results, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &GapResult{Params: p}
	for i, m := range mks {
		res.Disciplines = append(res.Disciplines, m.name)
		res.MaxGap = append(res.MaxGap, results[i].Max)
		res.MeanWorst = append(res.MeanWorst, results[i].Mean)
	}
	return res, nil
}

// Render writes the gap table.
func (r *GapResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Inter-service gap (scheduler jitter), %d backlogged flows, %d cycles\n",
		r.Params.Flows, r.Params.Cycles)
	fmt.Fprintln(tw, "Discipline\tworst gap (cycles)\tmean per-flow worst gap")
	for i, d := range r.Disciplines {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\n", d, r.MaxGap[i], r.MeanWorst[i])
	}
	return tw.Flush()
}
