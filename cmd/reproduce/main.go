// Command reproduce regenerates every artifact of the reproduction —
// Table 1, Figures 3-6, the ablations and the extension experiments —
// writing one text file per artifact into an output directory. With
// -quick the run lengths are scaled down ~10x for a fast smoke
// reproduction; the default is paper scale.
//
//	go run ./cmd/reproduce -out results [-quick]
//
// Next to each artifact a run manifest is appended as one JSON line
// (<artifact>.manifest.jsonl) recording the schema version, command
// line, seeds, worker count, simulated cycles, wall time, and
// throughput, so any results file can be traced to the run that
// produced it; -manifest=false disables this. -progress renders a
// live jobs-completed line per artifact on stderr (-quiet overrides).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/trace"
)

// renderer is the common shape of experiment results.
type renderer interface {
	Render(io.Writer) error
}

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		quick    = flag.Bool("quick", false, "scale run lengths down ~10x")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent simulation jobs (1 = serial; artifacts are identical for any value)")
		progress = flag.Bool("progress", false, "render a jobs-completed progress line per artifact on stderr")
		quiet    = flag.Bool("quiet", false, "suppress the progress line (overrides -progress)")
		manifest = flag.Bool("manifest", true, "append a JSONL run manifest next to each artifact")
	)
	flag.Parse()
	if err := run(*out, *quick, *seed, *parallel, *progress && !*quiet, *manifest); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
}

func run(outDir string, quick bool, seed uint64, parallel int, progress, manifest bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	scale := func(cycles int64) int64 {
		if quick {
			return cycles / 10
		}
		return cycles
	}

	steps := []struct {
		file string
		gen  func(prog exec.Progress) (renderer, error)
	}{
		{"fig3.txt", func(exec.Progress) (renderer, error) { return fig3Trace(), nil }},
		{"table1.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultTable1Params()
			p.Fig4.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Fig4.Cycles = scale(p.Fig4.Cycles)
			return experiments.RunTable1(p)
		}},
		{"fig4.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultFig4Params()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			return experiments.RunFig4(p, "all")
		}},
		{"fig5.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultFig5Params()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			if quick {
				p.Repeats = 2
			}
			return experiments.RunFig5(p, "all")
		}},
		{"fig6.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultFig6Params()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			if quick {
				p.Intervals = 2000
			}
			return experiments.RunFig6(p)
		}},
		{"fig6ext.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultFig6ExtParams()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			return experiments.RunFig6Ext(p)
		}},
		{"occupancy.txt", func(exec.Progress) (renderer, error) {
			p := experiments.DefaultAblationOccupancyParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunAblationOccupancy(p)
		}},
		{"screset.txt", func(exec.Progress) (renderer, error) {
			p := experiments.DefaultAblationSurplusResetParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunAblationSurplusReset(p)
		}},
		{"weighted.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultWeightedParams()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			return experiments.RunWeighted(p)
		}},
		{"gap.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultGapParams()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			return experiments.RunGap(p)
		}},
		{"lr.txt", func(exec.Progress) (renderer, error) {
			p := experiments.DefaultLRParams()
			p.Seed = seed
			p.Cycles = scale(p.Cycles)
			return experiments.RunLR(p)
		}},
		{"parkinglot.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultParkingLotParams()
			p.Workers = parallel
			p.Progress = prog
			p.Cycles = scale(p.Cycles)
			return experiments.RunParkingLot(p)
		}},
		{"nocsweep.txt", func(prog exec.Progress) (renderer, error) {
			p := experiments.DefaultNoCSweepParams()
			p.Seed = seed
			p.Workers = parallel
			p.Progress = prog
			p.WarmCycles = scale(p.WarmCycles)
			return experiments.RunNoCSweep(p)
		}},
	}

	for _, s := range steps {
		var prog exec.Progress
		if progress {
			prog = obs.NewProgress(os.Stderr, s.file)
		}
		start := time.Now()
		res, err := s.gen(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", s.file, err)
		}
		wall := time.Since(start)
		artifact := filepath.Join(outDir, s.file)
		f, err := os.Create(artifact)
		if err != nil {
			return err
		}
		if err := res.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if manifest {
			info := obs.RunInfo{Experiment: s.file[:len(s.file)-len(".txt")], Workers: 1}
			if mi, ok := res.(interface{ RunInfo() obs.RunInfo }); ok {
				info = mi.RunInfo()
			}
			m := obs.NewManifest(info, artifact, wall)
			if err := m.AppendTo(obs.ManifestPath(artifact)); err != nil {
				return fmt.Errorf("%s: manifest: %w", s.file, err)
			}
		}
		fmt.Printf("wrote %-16s (%.1fs)\n", s.file, wall.Seconds())
	}
	return nil
}

// fig3Renderer wraps the deterministic Figure 3 trace.
type fig3Renderer struct{ rec *core.TraceRecorder }

// Render implements renderer.
func (f fig3Renderer) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Figure 3 — rounds of an Elastic Round Robin execution"); err != nil {
		return err
	}
	return trace.WriteRecorderTable(w, f.rec)
}

// fig3Trace replays the DESIGN.md Figure 3 example.
func fig3Trace() renderer {
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(3, e)
	for _, l := range []int{32, 8, 8, 8, 8} {
		d.Arrive(flit.Packet{Flow: 0, Length: l})
	}
	for _, l := range []int{16, 8, 8, 8, 8} {
		d.Arrive(flit.Packet{Flow: 1, Length: l})
	}
	for _, l := range []int{12, 20, 4, 4, 4} {
		d.Arrive(flit.Packet{Flow: 2, Length: l})
	}
	d.Drain()
	return fig3Renderer{rec: rec}
}
