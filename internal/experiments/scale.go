package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// ScaleParams parameterises the large-torus saturation sweep behind
// BENCH_scale.json: K x K tori from hundreds to a million routers,
// stepped under three workload lanes (uniform random, hotspot, and
// uniform destinations with bounded-Pareto packet lengths), measuring
// ns/cycle/router, the arena and live-heap footprint per router, and
// the tile-boundary share of the commit. A second lane family re-runs
// the smallest torus across worker counts for the speedup-vs-workers
// curve. Wall-clock numbers are machine-dependent by nature; the
// simulation artifacts inside each point (delivered packets, latency)
// stay deterministic per seed.
type ScaleParams struct {
	// Ks are the torus edges to sweep, e.g. 256, 512, 1024.
	Ks       []int
	VCs      int
	BufFlits int
	// Tile is noc.Config.Tile (0 = the K-derived default).
	Tile int
	// Rate is the per-node injection probability per cycle. Uniform
	// traffic on a big torus saturates at tiny per-node rates (the
	// average path is K/2 hops), so any non-trivial Rate measures the
	// saturated regime; MaxPending bounds the backlog memory.
	Rate float64
	// RouterCycles is the per-point work budget: a K x K point steps
	// max(MinCycles, RouterCycles/K²) measured cycles, so every point
	// costs roughly the same router-cycles and the million-router
	// lane stays tractable on one machine.
	RouterCycles int64
	MinCycles    int64
	MinLen       int
	MaxLen       int
	// ParetoAlpha/ParetoMax shape the bounded-Pareto length lane
	// (lengths on [MinLen, ParetoMax]).
	ParetoAlpha float64
	ParetoMax   int
	// HotFrac is the hotspot lane's probability of addressing the
	// center node instead of a uniform destination.
	HotFrac float64
	// StepWorkers are the worker counts of the speedup-vs-workers
	// lanes, run on the smallest torus in Ks (1 = serial stepping).
	StepWorkers []int
	Seed        uint64
	// Workers is the grid pool for the sweep points themselves. Keep
	// it 1 when Ks includes a million-router lane: two such meshes
	// alive at once doubles a multi-GB footprint.
	Workers  int
	Progress exec.Progress `json:"-"`
	// Shard/Of split the point grid round-robin across processes
	// (exec.WithShard): each process runs the same parameters with
	// its own -checkpoint file, then exec.MergeCheckpoints and one
	// resumed unsharded run recover the full result byte-identically.
	// Excluded from the grid signature — every shard shares it.
	Shard int `json:"-"`
	Of    int `json:"-"`
	Robustness
}

// DefaultScaleParams returns the BENCH_scale.json configuration:
// 256x256 -> 1024x1024 tori, three workload lanes each, and worker
// lanes 1/2/4/8 on the 256x256 torus.
func DefaultScaleParams() ScaleParams {
	return ScaleParams{
		Ks:           []int{256, 512, 1024},
		VCs:          2,
		BufFlits:     2,
		Rate:         0.02,
		RouterCycles: 100_000_000,
		MinCycles:    96,
		MinLen:       1,
		MaxLen:       8,
		ParetoAlpha:  1.2,
		ParetoMax:    64,
		HotFrac:      0.05,
		StepWorkers:  []int{1, 2, 4, 8},
		Seed:         1,
		Workers:      1,
	}
}

// ScalePoint is one measured point of the sweep. Exported fields
// round-trip the JSONL checkpoint.
type ScalePoint struct {
	K       int
	Lane    string // uniform | hotspot | pareto | workers-N
	Workers int    // stepping workers (1 = serial)
	Cycles  int64
	// Wall-clock stepping cost (injector included, warm excluded).
	NsPerCycle       float64
	NsPerCycleRouter float64
	// ArenaBytesPerRouter is the flat router-arena footprint
	// (noc.Mesh.BytesPerRouter); HeapBytesPerRouter is the measured
	// live-heap growth of building the whole mesh divided by K² —
	// arena plus everything the arena does not manage (schedulers,
	// route tables, effect buffers, injection state).
	ArenaBytesPerRouter int64
	HeapBytesPerRouter  int64
	TileEdge            int
	Tiles               int
	// CrossShardShare is the fraction of router-target commit
	// effects that crossed a tile boundary during the measured
	// window (the serialized share of the commit).
	CrossShardShare float64
	// Deterministic simulation artifacts (per seed).
	DeliveredPackets int64
	MeanLatency      float64
}

// ScaleResult holds every measured point plus the host facts needed
// to read the wall-clock columns honestly.
type ScaleResult struct {
	Params     ScaleParams
	Cores      int // runtime.NumCPU of the measuring host
	GOMAXPROCS int
	Points     []ScalePoint
}

// scaleLanes returns the workload lanes of the K-sweep.
func scaleLanes(p ScaleParams, k int) []struct {
	name    string
	pattern func(nodes int) noc.Pattern
	lengths rng.LengthDist
} {
	uniform := func(nodes int) noc.Pattern { return noc.Uniform{Nodes: nodes} }
	return []struct {
		name    string
		pattern func(nodes int) noc.Pattern
		lengths rng.LengthDist
	}{
		{"uniform", uniform, rng.NewUniform(p.MinLen, p.MaxLen)},
		{"hotspot", func(nodes int) noc.Pattern {
			return noc.Hotspot{Nodes: nodes, Node: (k/2)*k + k/2, Frac: p.HotFrac}
		}, rng.NewUniform(p.MinLen, p.MaxLen)},
		{"pareto", uniform, rng.BoundedPareto{Alpha: p.ParetoAlpha, Lo: p.MinLen, Hi: p.ParetoMax}},
	}
}

// scaleCycles returns the measured cycle count of a K x K point.
func (p ScaleParams) scaleCycles(k int) int64 {
	c := p.RouterCycles / int64(k*k)
	if c < p.MinCycles {
		c = p.MinCycles
	}
	return c
}

// runScalePoint builds one torus, warms it, and measures the stepping
// cost. workers > 1 attaches a pool for tile-parallel stepping.
func runScalePoint(p ScaleParams, k, workers int, lane string,
	pattern noc.Pattern, lengths rng.LengthDist, seed uint64) (ScalePoint, error) {
	// Live-heap growth of the whole mesh: everything NewMesh
	// allocates, arena and non-arena alike.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := noc.NewMesh(noc.Config{
		K: k, VCs: p.VCs, BufFlits: p.BufFlits, Torus: true, Tile: p.Tile,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		return ScalePoint{}, err
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapPer := int64(after.HeapAlloc-before.HeapAlloc) / int64(k*k)

	m.RegisterObs(obs.Default())
	if p.Faults != "" {
		spec, err := fault.Parse(p.Faults)
		if err != nil {
			return ScalePoint{}, err
		}
		m.InstallFaults(fault.New(spec, rng.Derive(seed, 0xfa)))
	}
	if workers > 1 {
		pool := exec.NewPool(workers)
		defer pool.Close()
		m.SetPool(pool)
	}
	inj := noc.NewInjector(m, p.Rate, pattern, lengths, rng.New(seed))
	inj.MaxPending = 2

	cycles := p.scaleCycles(k)
	warm := cycles / 2
	for c := int64(0); c < warm; c++ {
		inj.Step()
		m.Step()
	}
	cross0 := m.CrossShardEffects()
	computes0 := obs.Default().Counter("noc.router_computes").Value()
	t0 := time.Now()
	for c := int64(0); c < cycles; c++ {
		inj.Step()
		m.Step()
	}
	elapsed := time.Since(t0)
	cross := m.CrossShardEffects() - cross0
	computes := obs.Default().Counter("noc.router_computes").Value() - computes0

	var delivered int64
	for n := 0; n < m.Nodes(); n++ {
		delivered += m.DeliveredPackets[n]
	}
	nsPerCycle := float64(elapsed.Nanoseconds()) / float64(cycles)
	share := 0.0
	if computes > 0 {
		share = float64(cross) / float64(computes)
	}
	return ScalePoint{
		K:                   k,
		Lane:                lane,
		Workers:             workers,
		Cycles:              cycles,
		NsPerCycle:          nsPerCycle,
		NsPerCycleRouter:    nsPerCycle / float64(k*k),
		ArenaBytesPerRouter: m.BytesPerRouter(),
		HeapBytesPerRouter:  heapPer,
		TileEdge:            m.TileEdge(),
		Tiles:               m.Tiles(),
		CrossShardShare:     share,
		DeliveredPackets:    delivered,
		MeanLatency:         m.Latency.Mean(),
	}, nil
}

// RunScale runs the sweep: every K x lane point serially-stepped,
// then the worker lanes on the smallest torus. Points checkpoint and
// shard exactly like any other grid (see ScaleParams.Shard).
func RunScale(p ScaleParams) (*ScaleResult, error) {
	if p.Check {
		return nil, fmt.Errorf("experiments: scale does not support -check (per-sink stream recording at 10^6 routers)")
	}
	if len(p.Ks) == 0 {
		return nil, fmt.Errorf("experiments: scale needs at least one torus edge")
	}
	var jobs []exec.Job[ScalePoint]
	for _, k := range p.Ks {
		for _, lane := range scaleLanes(p, k) {
			k, lane, job := k, lane, len(jobs)
			jobs = append(jobs, func() (ScalePoint, error) {
				return runScalePoint(p, k, 1, lane.name,
					lane.pattern(k*k), lane.lengths, rng.Derive(p.Seed, uint64(job)))
			})
		}
	}
	for _, w := range p.StepWorkers {
		w := w
		k := p.Ks[0]
		// Every worker lane shares one seed (derived from a fixed
		// label, not the job index): the lanes are the SAME
		// simulation stepped under different pool sizes, so their
		// delivered/latency columns must come out identical — the
		// determinism evidence — while the wall-clock columns
		// isolate the parallel-commit overhead.
		jobs = append(jobs, func() (ScalePoint, error) {
			return runScalePoint(p, k, w, fmt.Sprintf("workers-%d", w),
				noc.Uniform{Nodes: k * k}, rng.NewUniform(p.MinLen, p.MaxLen),
				rng.Derive(p.Seed, 0x577ab))
		})
	}
	opts, closeCP, err := gridOptions("scale", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	if p.Of > 1 {
		opts = append(opts, exec.WithShard(p.Shard, p.Of))
	}
	points, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	return &ScaleResult{
		Params:     p,
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	}, nil
}

// Render writes the sweep as a fixed-width table. A zero-valued row
// (K == 0) is a point owned by another shard of a sharded run; merge
// the per-shard checkpoints and resume to render the full table.
func (r *ScaleResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Torus scale sweep — cores=%d GOMAXPROCS=%d (wall-clock columns are host-dependent)\n%-6s %-10s %-8s %-8s %14s %14s %10s %10s %7s %10s %12s %10s\n",
		r.Cores, r.GOMAXPROCS,
		"K", "lane", "workers", "cycles", "ns/cycle", "ns/cyc/router",
		"arenaB/r", "heapB/r", "tile", "xtile%", "delivered", "latency"); err != nil {
		return err
	}
	for _, pt := range r.Points {
		if pt.K == 0 {
			if _, err := fmt.Fprintf(w, "%-6s (point owned by another shard; merge checkpoints to fill)\n", "-"); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-6d %-10s %-8d %-8d %14.0f %14.3f %10d %10d %7d %9.2f%% %12d %10.1f\n",
			pt.K, pt.Lane, pt.Workers, pt.Cycles, pt.NsPerCycle, pt.NsPerCycleRouter,
			pt.ArenaBytesPerRouter, pt.HeapBytesPerRouter, pt.TileEdge,
			100*pt.CrossShardShare, pt.DeliveredPackets, pt.MeanLatency); err != nil {
			return err
		}
	}
	return nil
}

// RunInfo implements the manifest hook. Seeds lists the per-point
// derived seeds; Cycles totals the measured windows (warm excluded).
func (r *ScaleResult) RunInfo() obs.RunInfo {
	p := r.Params
	grid := len(p.Ks) * 3
	seeds := make([]uint64, grid+len(p.StepWorkers))
	for i := 0; i < grid; i++ {
		seeds[i] = rng.Derive(p.Seed, uint64(i))
	}
	for i := grid; i < len(seeds); i++ {
		// Worker lanes share one seed — same simulation, different
		// pool size (see RunScale).
		seeds[i] = rng.Derive(p.Seed, 0x577ab)
	}
	var cycles int64
	for _, k := range p.Ks {
		cycles += 3 * p.scaleCycles(k)
	}
	cycles += int64(len(p.StepWorkers)) * p.scaleCycles(p.Ks[0])
	return obs.RunInfo{
		Experiment: "scale",
		Seeds:      seeds,
		Workers:    exec.Workers(p.Workers),
		Cycles:     cycles,
	}
}
