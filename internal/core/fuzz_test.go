package core_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
)

// FuzzERRInvariants drives ERR with an arbitrary interleaving of
// arrivals and services decoded from the fuzz input, then verifies
// the recorded trace against Lemma 1, the allowance guarantee and
// Theorem 2 via the analysis verifier. Run with `go test -fuzz
// FuzzERRInvariants ./internal/core` to explore; the seed corpus runs
// as part of the normal test suite.
func FuzzERRInvariants(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0xFF, 0x07, 0x23})
	f.Add([]byte{0x00})
	f.Add([]byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x11, 0x22, 0x33})
	// Pathological patterns (see pathological_test.go): drain every
	// flow then burst all four back at once...
	f.Add([]byte{0x00, 0x02, 0x04, 0x06, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x00, 0x02, 0x04, 0x06})
	// ...and one flow of maximum-size packets against length-1 rivals.
	f.Add([]byte{0xF8, 0x02, 0x04, 0x01, 0x01, 0xF8, 0x02, 0x04, 0x01, 0x01, 0x01, 0x01})
	// Fuzzer-found regression: two busy periods of the same single
	// flow. The verifier must not merge the periods' same-numbered
	// rounds when summing per-round service (the round counter resets
	// when the system drains).
	f.Add([]byte{0x30, 0x30, 0x30, 0x31, 0x31, 0x31, 0x30, 0x30, 0x30})
	f.Fuzz(func(t *testing.T, data []byte) {
		const flows = 4
		e := core.New()
		rec := &core.TraceRecorder{}
		e.SetTrace(rec)
		d := harness.New(flows, e)
		var m int64 = 1
		for _, b := range data {
			if b&1 == 0 || d.Backlog() == 0 {
				length := int(b>>3)%16 + 1
				if int64(length) > m {
					m = int64(length)
				}
				d.Arrive(flit.Packet{Flow: int(b>>1) % flows, Length: length})
			} else {
				d.ServeOne()
			}
		}
		d.Drain()
		if err := analysis.VerifyTrace(rec, m, 3); err != nil {
			t.Fatalf("invariant violated: %v (input %x)", err, data)
		}
	})
}

// FuzzWeightedERRInvariants does the same for the weighted variant:
// surplus counts stay within [0, m-1] and allowances at or above the
// flow's weight.
func FuzzWeightedERRInvariants(f *testing.F) {
	f.Add([]byte{0x52, 0x12, 0x99, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		const flows = 3
		weights := []int64{1, 2, 3}
		e := core.NewWeighted(func(fl int) int64 { return weights[fl] })
		rec := &core.TraceRecorder{}
		e.SetTrace(rec)
		d := harness.New(flows, e)
		var m int64 = 1
		for _, b := range data {
			if b&1 == 0 || d.Backlog() == 0 {
				length := int(b>>3)%12 + 1
				if int64(length) > m {
					m = int64(length)
				}
				d.Arrive(flit.Packet{Flow: int(b>>1) % flows, Length: length})
			} else {
				d.ServeOne()
			}
		}
		d.Drain()
		for _, ev := range rec.Events {
			if ev.Surplus > m-1 {
				t.Fatalf("weighted surplus %d > m-1 = %d", ev.Surplus, m-1)
			}
			if ev.Allowance < weights[ev.Flow] {
				t.Fatalf("weighted allowance %d < weight %d", ev.Allowance, weights[ev.Flow])
			}
		}
	})
}
