package sched

import (
	"fmt"

	"repro/internal/queue"
)

// IWRR is Interleaved Weighted Round Robin (the variant analysed by
// Tabatabaee, Le Boudec & Boyer, "Interleaved Weighted Round-Robin: A
// Network Calculus Analysis"): a round consists of w_max cycles, and
// in cycle k (0-based) every backlogged flow whose weight exceeds k
// transmits one packet. Where WRR sends a flow's whole per-round
// budget back to back, IWRR spreads the budget across the round — a
// weight-4 flow's packets interleave with everyone else's instead of
// monopolising the output for four packets in a row, which is what
// tightens its latency bound (see internal/bounds).
//
// With equal weights every cycle degenerates to one packet per flow
// and IWRR is byte-for-byte PBRR (pinned by TestIWRREqualWeightsIsPBRR).
//
// Implementation: three ActiveLists. cur holds the flows still owed
// an opportunity in the current cycle, next the flows waiting for the
// following cycle of the same round, parked the flows waiting for the
// next round (budget exhausted, or newly activated — a joiner waits
// for the round boundary, which keeps the per-round service caps of
// the bounds analysis valid). Per-flow budgets reset lazily via a
// round stamp, so a round costs O(served flows), not O(all flows).
//
// IWRR is blind to packet lengths (no LengthAware), so it can
// arbitrate a wormhole router output: HeadOfLineArb.
type IWRR struct {
	weight func(flow int) int

	cur    queue.ActiveList // flows owed service this cycle
	next   queue.ActiveList // flows for the following cycle, this round
	parked queue.ActiveList // flows waiting for the next round

	// rem and stamp are indexed by flow id and grown on demand; a
	// flow's rem is valid only when stamp[flow] == round.
	rem     []int
	stamp   []int64
	round   int64
	current int // flow being served, or -1
}

// NewIWRR returns an IWRR scheduler. weight must return >= 1 for
// every flow; nil means weight 1 for all flows (pure PBRR).
func NewIWRR(weight func(flow int) int) *IWRR {
	if weight == nil {
		weight = func(int) int { return 1 }
	}
	return &IWRR{weight: weight, round: 1, current: -1}
}

// Name implements Scheduler.
func (s *IWRR) Name() string { return "IWRR" }

// weightOf validates and returns flow's weight.
func (s *IWRR) weightOf(flow int) int {
	w := s.weight(flow)
	if w < 1 {
		panic(fmt.Sprintf("sched: IWRR weight %d < 1 for flow %d", w, flow))
	}
	return w
}

// grow ensures the per-flow tables cover flow.
func (s *IWRR) grow(flow int) {
	if flow < len(s.rem) {
		return
	}
	nr := make([]int, flow+1)
	copy(nr, s.rem)
	s.rem = nr
	ns := make([]int64, flow+1)
	copy(ns, s.stamp)
	s.stamp = ns
}

// member reports whether flow is in any of the three lists.
func (s *IWRR) member(flow int) bool {
	return s.cur.Contains(flow) || s.next.Contains(flow) || s.parked.Contains(flow)
}

// OnArrival implements Scheduler. A newly active flow parks until the
// next round boundary (like a WRR/DRR joiner waiting for its
// round-robin turn); a flow already listed, or in service, is left
// where it is.
func (s *IWRR) OnArrival(flow int, wasEmpty bool) {
	s.grow(flow)
	if flow != s.current && !s.member(flow) {
		s.parked.PushTail(flow)
	}
}

// NextFlow implements Scheduler.
func (s *IWRR) NextFlow() int {
	if s.current != -1 {
		panic("sched: IWRR.NextFlow while a packet is in service")
	}
	for s.cur.Empty() {
		s.advance()
	}
	flow := s.cur.PopHead()
	if s.stamp[flow] != s.round {
		s.stamp[flow] = s.round
		s.rem[flow] = s.weightOf(flow)
	}
	s.current = flow
	return flow
}

// advance moves to the next cycle of the round, or — when the round
// is exhausted — starts a new round from the parked flows.
func (s *IWRR) advance() {
	if !s.next.Empty() {
		s.cur, s.next = s.next, s.cur
		return
	}
	if s.parked.Empty() {
		panic("sched: IWRR.NextFlow with no active flows")
	}
	s.round++
	s.cur, s.parked = s.parked, s.cur
}

// OnPacketDone implements Scheduler.
func (s *IWRR) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != s.current {
		panic("sched: IWRR completion for a flow not in service")
	}
	s.current = -1
	s.rem[flow]--
	if nowEmpty {
		return
	}
	if s.rem[flow] > 0 {
		s.next.PushTail(flow)
	} else {
		s.parked.PushTail(flow)
	}
}

// HeadOfLineSafe implements HeadOfLineArb: IWRR is not LengthAware
// and reschedules a still-backlogged flow by itself in OnPacketDone.
func (s *IWRR) HeadOfLineSafe() {}

var _ HeadOfLineArb = (*IWRR)(nil)
