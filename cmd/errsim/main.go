// Command errsim regenerates the tables and figures of "Fair and
// Efficient Packet Scheduling in Wormhole Networks" (Kanhere, Parekh
// & Sethu, IPDPS 2000) from the reproduction library.
//
// Usage:
//
//	errsim -exp table1|fig4a|fig4b|fig4c|fig4d|fig4|fig5a|fig5b|fig5|fig6|occupancy|screset [flags]
//
// Paper-scale parameters are the defaults; -cycles scales the main
// run length down for quick looks. Output is an ASCII rendering of
// the table/figure followed by a CSV block for external plotting.
// -progress renders a live jobs-completed line on stderr, -manifest
// appends a JSONL run manifest (schema, command line, seeds, workers,
// cycles, wall time, throughput) to the given path, and -pprof serves
// net/http/pprof plus an expvar snapshot of the obs registry for
// profiling long sweeps live.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// renderer is the common shape of every experiment result.
type renderer interface {
	Render(io.Writer) error
}

// textResult renders a fixed message (checkpoint-merge mode).
type textResult string

func (t textResult) Render(w io.Writer) error {
	_, err := io.WriteString(w, string(t))
	return err
}

// emit writes a result as its ASCII/CSV rendering or, with -json, as
// an indented JSON document of the full result struct.
func emit(w io.Writer, res renderer, asJSON bool) error {
	if !asJSON {
		return res.Render(w)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func main() {
	var (
		exp       = flag.String("exp", "table1", "experiment: table1, fig4a..d, fig4, fig5a, fig5b, fig5, fig6, fig6ext, occupancy, screset, weighted, gap, nocsweep, nocsweep-torus, parkinglot, lr, bounds, scale")
		cycles    = flag.Int64("cycles", 0, "override the experiment's main run length in cycles (0 = paper scale)")
		seed      = flag.Uint64("seed", 1, "random seed")
		intervals = flag.Int("intervals", 0, "fig6: random intervals to average over (0 = paper's 10000)")
		repeats   = flag.Int("repeats", 0, "fig5: seeds to average each point over (0 = default 5)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent simulation jobs (1 = serial; output is identical for any value)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of ASCII/CSV")
		progress  = flag.Bool("progress", false, "render a jobs-completed progress line on stderr")
		quiet     = flag.Bool("quiet", false, "suppress the progress line (overrides -progress)")
		manifest  = flag.String("manifest", "", "append a JSONL run manifest to this path (\"\" = no manifest)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and the obs registry expvar on this address (e.g. localhost:6060)")
		faults    = flag.String("faults", "", "fault-injection spec, e.g. \"stall(flow=0,at=1000,dur=500);drop(router=0,port=1,p=0.01)\" (\"\" = fault-free; see internal/fault)")
		checkInv  = flag.Bool("check", false, "enable the runtime invariant checker (ERR Lemma 1, flit conservation, FIFO, deadlock watchdog); violations fail the run with a cycle-stamped report")
		ckptPath  = flag.String("checkpoint", "", "record completed grid jobs to this JSONL file for crash-resilient sweeps (\"\" = off)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint, skipping jobs it already holds; aggregate output is byte-identical to an uninterrupted run")
		traceOut  = flag.String("trace-out", "", "write sampled packet spans (inject -> departure per grid job) as Chrome trace-event JSON (Perfetto-loadable) to this file; with -parallel > 1 track numbering follows job completion order")
		traceSamp = flag.Int("trace-sample", 64, "with -trace-out: trace one in this many packets (1 = every packet)")
		shard     = flag.Int("shard", 0, "with -of N: run only grid jobs with index %% N == shard (scale sweeps split across processes; see -checkpoint)")
		shardOf   = flag.Int("of", 0, "split the grid round-robin across this many processes (0 = no sharding); each process needs its own -checkpoint, merged afterwards by a -resume run")
		mergeCkpt = flag.String("merge", "", "comma-separated per-shard checkpoint files to merge into -checkpoint (scale only); merge then rerun with -resume for the full result")
	)
	flag.Parse()
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "errsim: -resume requires -checkpoint")
		os.Exit(1)
	}
	if *pprofAddr != "" {
		addr, err := obs.ServeDebug(*pprofAddr, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "errsim: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "errsim: pprof on http://%s/debug/pprof/ (registry at /debug/vars)\n", addr)
	}
	var prog exec.Progress
	if *progress && !*quiet {
		prog = obs.NewProgress(os.Stderr, *exp)
	}
	// A collector is only worth its (small) per-cycle cost when
	// something consumes the registry: the manifest snapshot or the
	// expvar endpoint. Sized to the engine's flow-id ceiling so one
	// collector serves every grid job regardless of flow count.
	var col *obs.Collector
	if *manifest != "" || *pprofAddr != "" {
		col = obs.NewCollector(obs.Default(), 254)
	}
	rb := experiments.Robustness{
		Faults:     *faults,
		Check:      *checkInv,
		Checkpoint: *ckptPath,
		Resume:     *resume,
	}
	var et *trace.EngineTrace
	if *traceOut != "" {
		et = trace.NewEngineTrace(rng.Derive(*seed, 0x7ace), *traceSamp, 1<<20)
	}
	start := time.Now()
	var mergeSrcs []string
	if *mergeCkpt != "" {
		mergeSrcs = strings.Split(*mergeCkpt, ",")
	}
	res, err := run(*exp, *cycles, *seed, *intervals, *repeats, *parallel, prog, col, rb, et, *shard, *shardOf, mergeSrcs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "errsim: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	if et != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteChrome(f, et.Records(), nil)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "errsim: trace: %v\n", err)
			os.Exit(1)
		}
		if d := et.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "errsim: trace: %d spans overwritten (lower -trace-sample or shorten the run)\n", d)
		}
	}
	if err := emit(os.Stdout, res, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "errsim: %v\n", err)
		os.Exit(1)
	}
	if *manifest != "" {
		info := obs.RunInfo{Experiment: *exp, Workers: exec.Workers(*parallel)}
		if mi, ok := res.(interface{ RunInfo() obs.RunInfo }); ok {
			info = mi.RunInfo()
		}
		m := obs.NewManifest(info, "", wall).
			WithFaults(*faults, obs.Default().Counter("check.violations").Value()).
			WithMetrics(obs.Default())
		if err := m.AppendTo(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "errsim: manifest: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(exp string, cycles int64, seed uint64, intervals, repeats, parallel int, prog exec.Progress, col *obs.Collector, rb experiments.Robustness, et *trace.EngineTrace, shard, of int, mergeSrcs []string) (renderer, error) {
	if (of > 0 || len(mergeSrcs) > 0) && exp != "scale" {
		return nil, fmt.Errorf("experiment %q does not support -shard/-of/-merge (scale only)", exp)
	}
	switch exp {
	case "table1":
		p := experiments.DefaultTable1Params()
		p.Fig4.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Fig4.Collector = col
		p.Fig4.Trace = et
		p.Fig4.Robustness = rb
		if cycles > 0 {
			p.Fig4.Cycles = cycles
		}
		return experiments.RunTable1(p)

	case "fig4", "fig4a", "fig4b", "fig4c", "fig4d":
		panel := "all"
		if len(exp) == 5 {
			panel = exp[4:]
		}
		p := experiments.DefaultFig4Params()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Collector = col
		p.Trace = et
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunFig4(p, panel)

	case "fig5", "fig5a", "fig5b":
		panel := "all"
		if len(exp) == 5 {
			panel = exp[4:]
		}
		p := experiments.DefaultFig5Params()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Collector = col
		p.Trace = et
		p.Robustness = rb
		if cycles > 0 {
			p.BurstCycles = cycles
		}
		if repeats > 0 {
			p.Repeats = repeats
		}
		return experiments.RunFig5(p, panel)

	case "fig6":
		p := experiments.DefaultFig6Params()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Collector = col
		p.Trace = et
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		if intervals > 0 {
			p.Intervals = intervals
		}
		return experiments.RunFig6(p)

	case "fig6ext":
		p := experiments.DefaultFig6ExtParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Collector = col
		p.Trace = et
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		if intervals > 0 {
			p.Intervals = intervals
		}
		return experiments.RunFig6Ext(p)

	case "occupancy":
		if rb != (experiments.Robustness{}) {
			return nil, fmt.Errorf("experiment %q does not support -faults/-check/-checkpoint", exp)
		}
		p := experiments.DefaultAblationOccupancyParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunAblationOccupancy(p)

	case "screset":
		if rb != (experiments.Robustness{}) {
			return nil, fmt.Errorf("experiment %q does not support -faults/-check/-checkpoint", exp)
		}
		p := experiments.DefaultAblationSurplusResetParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunAblationSurplusReset(p)

	case "weighted":
		p := experiments.DefaultWeightedParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Collector = col
		p.Trace = et
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunWeighted(p)

	case "gap":
		p := experiments.DefaultGapParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunGap(p)

	case "nocsweep", "nocsweep-torus":
		p := experiments.DefaultNoCSweepParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Robustness = rb
		p.Torus = exp == "nocsweep-torus"
		if cycles > 0 {
			p.WarmCycles = cycles
		}
		return experiments.RunNoCSweep(p)

	case "parkinglot":
		p := experiments.DefaultParkingLotParams()
		p.Workers = parallel
		p.Progress = prog
		p.Seed = seed
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunParkingLot(p)

	case "bounds":
		p := experiments.DefaultBoundsParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Robustness = rb
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunBounds(p)

	case "scale":
		p := experiments.DefaultScaleParams()
		p.Seed = seed
		p.Workers = parallel
		p.Progress = prog
		p.Robustness = rb
		p.Shard, p.Of = shard, of
		if cycles > 0 {
			// Fixed per-point cycle count instead of the router-cycle
			// budget (quick runs, CI smoke).
			p.RouterCycles = 0
			p.MinCycles = cycles
		}
		if len(mergeSrcs) > 0 {
			// Merge per-shard checkpoints into -checkpoint and stop;
			// a -resume run against the merged file renders the full
			// sweep without re-executing anything.
			if p.Checkpoint == "" {
				return nil, fmt.Errorf("-merge requires -checkpoint (the merge destination)")
			}
			sig, err := exec.Signature("scale", p)
			if err != nil {
				return nil, err
			}
			n, err := exec.MergeCheckpoints(p.Checkpoint, sig, mergeSrcs...)
			if err != nil {
				return nil, err
			}
			return textResult(fmt.Sprintf("merged %d records from %d shard checkpoints into %s\n",
				n, len(mergeSrcs), p.Checkpoint)), nil
		}
		return experiments.RunScale(p)

	case "lr":
		if rb != (experiments.Robustness{}) {
			return nil, fmt.Errorf("experiment %q does not support -faults/-check/-checkpoint", exp)
		}
		p := experiments.DefaultLRParams()
		p.Seed = seed
		if cycles > 0 {
			p.Cycles = cycles
		}
		return experiments.RunLR(p)

	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
}
