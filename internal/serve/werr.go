// Package serve puts the paper's scheduler in front of real traffic:
// an overload-safe fair-queuing HTTP front end. Requests are
// classified into per-tenant flows, held in bounded per-flow queues,
// and dispatched through a wall-clock adaptation of Elastic Round
// Robin by a concurrency-limited worker pool. ERR's defining property
// — every decision depends only on service already rendered, never on
// the cost of the work about to be started — is exactly what a
// request front end needs, because a request's cost is unknown until
// its handler returns.
//
// Robustness is the package's headline: load shedding with per-tenant
// 429s when a flow's queue or the global memory budget fills (the
// heaviest tenant sheds first, never the mice), per-request deadlines
// that evict expired waiters before dispatch, graceful degradation
// tiers driven by occupancy watermarks with hysteresis, and clean
// draining on SIGTERM.
package serve

import (
	"repro/internal/queue"
	"repro/internal/sched"
)

// WallERR is the wall-clock, completion-billed adaptation of Elastic
// Round Robin (core.ERR) for concurrent servers, implementing
// sched.AsyncScheduler.
//
// The round/allowance/surplus machinery is the paper's Figure 1: in
// round r flow i receives the elastic allowance
//
//	A_i(r) = w_i*(1 + MaxSC(r-1)) - SC_i(r-1)
//
// and keeps dispatching requests while the cost billed to the current
// opportunity stays below the allowance; the overshoot becomes the
// flow's surplus count. Three adaptations for live, concurrent
// service:
//
//  1. Provisional billing. A dispatched request's cost is unknown, so
//     it is billed the 1-unit minimum at dispatch; the excess
//     (measured cost - 1) is billed when the handler returns — to the
//     opportunity if it is still open, else directly to the flow's
//     surplus count. This is what "service time billed to the flow's
//     surplus count on completion" means: an elephant whose slow
//     requests complete after its turn ended still pays for them out
//     of its next allowances.
//  2. Debt persistence. Figure 1 resets a drained flow's surplus
//     count; here surplus (debt) survives drain, because with
//     deferred billing a tenant could otherwise erase the cost of an
//     expensive in-flight request by simply letting its queue drain
//     before the completion lands. DebtCap bounds how much debt a
//     single flow can accumulate so one stuck handler cannot starve a
//     tenant forever.
//  3. Repayment visits. Deferred billing can push a flow's surplus
//     above the round allowance, making A_i <= 0. Such a flow
//     dispatches nothing at its visit and its debt shrinks by the
//     full grant w_i*(1+MaxSC(r-1)); because MaxSC tracks the largest
//     outstanding debt, the next round's allowance is positive again
//     — ERR's elasticity self-heals in one round, preserving the
//     paper's everyone-sends-something liveness.
//
// WallERR is not safe for concurrent use; the dispatcher serializes
// all calls under the server lock (one arbiter per server, as the
// hardware has one arbiter per output port).
type WallERR struct {
	weight  func(flow int) int64
	debtCap int64

	active queue.ActiveList
	sc     []int64

	round     int64
	rrvc      int // RoundRobinVisitCount
	maxSC     int64
	prevMaxSC int64

	// Open service opportunity, if any.
	current   int   // flow in service, or -1
	curOpp    int64 // token of the open opportunity
	allowance int64
	billed    int64 // cost billed to the open opportunity so far
	scAtOpen  int64 // flow's surplus when the opportunity opened
	curEmpty  bool  // flow's queue is empty (nothing left to dispatch)

	oppSeq   int64 // opportunity token generator
	inflight int   // dispatched requests not yet completed, all flows
}

// NewWallERR returns a wall-clock weighted ERR scheduler. A nil
// weight function means weight 1 for every flow. debtCap bounds a
// flow's deferred surplus count (0 = unbounded); a few multiples of
// the largest plausible single-request cost is a good choice.
func NewWallERR(weight func(flow int) int64, debtCap int64) *WallERR {
	if weight == nil {
		weight = func(int) int64 { return 1 }
	}
	return &WallERR{weight: weight, debtCap: debtCap, current: -1}
}

// Name implements sched.AsyncScheduler.
func (e *WallERR) Name() string { return "WallERR" }

func (e *WallERR) scRef(flow int) *int64 {
	if flow >= len(e.sc) {
		grown := make([]int64, flow+1)
		copy(grown, e.sc)
		e.sc = grown
	}
	return &e.sc[flow]
}

// OnArrival implements sched.AsyncScheduler. Unlike Figure 1 the
// surplus count is NOT reset when a drained flow re-activates — see
// the debt-persistence note on the type.
func (e *WallERR) OnArrival(flow int, wasEmpty bool) {
	if flow == e.current {
		e.curEmpty = false
		return
	}
	if e.active.Contains(flow) {
		return
	}
	e.active.PushTail(flow)
}

// NextFlow implements sched.AsyncScheduler: it returns the flow whose
// head request should be dispatched next, or -1 when no flow has a
// dispatchable request. Closing opportunities and opening new ones
// (including zero-dispatch repayment visits) happens here.
func (e *WallERR) NextFlow() int {
	for {
		if e.current != -1 {
			if !e.curEmpty && e.billed < e.allowance {
				return e.current // the do-while of Figure 1
			}
			e.closeOpportunity()
		}
		if e.active.Empty() {
			if e.inflight == 0 {
				// Fully idle: re-initialise round state as Figure 1's
				// Initialize would. Debts persist (see type comment).
				e.rrvc, e.maxSC, e.prevMaxSC, e.round = 0, 0, 0, 0
			}
			return -1
		}
		if e.rrvc <= 0 {
			e.prevMaxSC = e.maxSC
			e.maxSC = 0
			e.rrvc = e.active.Len()
			e.round++
		}
		flow := e.active.PopHead()
		w := e.weight(flow)
		if w < 1 {
			panic("serve: WallERR weight < 1")
		}
		e.oppSeq++
		e.current = flow
		e.curOpp = e.oppSeq
		e.scAtOpen = *e.scRef(flow)
		e.allowance = w*(1+e.prevMaxSC) - e.scAtOpen
		e.billed = 0
		e.curEmpty = false
		if e.allowance <= 0 {
			// Repayment visit: the flow owes more than this round
			// grants; it dispatches nothing and its debt shrinks by
			// the full grant in closeOpportunity.
			e.closeOpportunity()
			continue
		}
		return flow
	}
}

// closeOpportunity ends the open service opportunity, folding the
// billed overshoot and any cost deferred since the opportunity opened
// into the flow's surplus count, and rotating the flow to the tail of
// the active list when it still has queued requests.
func (e *WallERR) closeOpportunity() {
	flow := e.current
	surplus := e.billed - e.allowance
	if surplus < 0 {
		// The flow drained (or is being revisited for repayment with
		// billed == 0): unused allowance is not banked — round-robin
		// schedulers carry debt, never credit.
		if e.curEmpty {
			surplus = 0
		}
		// For a repayment visit (allowance <= 0, billed == 0) surplus
		// is -allowance >= 0, so this branch is drain-only.
	}
	scp := e.scRef(flow)
	deferred := *scp - e.scAtOpen // completions billed past-close since open
	ns := surplus + deferred
	if ns < 0 {
		ns = 0
	}
	if e.debtCap > 0 && ns > e.debtCap {
		ns = e.debtCap
	}
	*scp = ns
	if ns > e.maxSC {
		// Figure 1's MaxSC update, generalized: tracking the largest
		// outstanding debt guarantees next round's allowances stay
		// positive for everyone (w*(1+MaxSC) - SC >= w when SC <= MaxSC).
		e.maxSC = ns
	}
	if !e.curEmpty {
		e.active.PushTail(flow)
	}
	e.current = -1
	e.rrvc--
}

// OnDispatch implements sched.AsyncScheduler: one request from the
// flow returned by NextFlow entered service. The request is billed
// the 1-unit provisional minimum now; OnServiceDone bills the rest.
func (e *WallERR) OnDispatch(flow int, nowEmpty bool) int64 {
	if flow != e.current {
		panic("serve: WallERR dispatch for a flow not in service")
	}
	e.billed++
	e.inflight++
	e.curEmpty = nowEmpty
	return e.curOpp
}

// OnEvicted implements sched.AsyncScheduler: flow's queue lost
// requests without service. Only the in-service flow needs immediate
// bookkeeping (its opportunity must not keep polling an empty queue);
// an evicted-empty flow elsewhere on the active list simply drains at
// its next visit.
func (e *WallERR) OnEvicted(flow int, nowEmpty bool) {
	if flow == e.current {
		e.curEmpty = nowEmpty
	}
}

// OnServiceDone implements sched.AsyncScheduler: a request dispatched
// under token completed at the measured cost. The excess over the
// provisional unit goes to the opportunity if it is still the open
// one, else straight to the flow's surplus count (deferred billing).
func (e *WallERR) OnServiceDone(flow int, token int64, cost int64) {
	if cost < 1 {
		cost = 1
	}
	e.inflight--
	if e.inflight < 0 {
		panic("serve: WallERR completion without dispatch")
	}
	excess := cost - 1
	if excess == 0 {
		return
	}
	if flow == e.current && token == e.curOpp {
		e.billed += excess
		return
	}
	scp := e.scRef(flow)
	ns := *scp + excess
	if e.debtCap > 0 && ns > e.debtCap {
		ns = e.debtCap
	}
	*scp = ns
	if ns > e.maxSC {
		e.maxSC = ns
	}
}

// --- accessors for tests, metrics and invariant checks ---

// SurplusCount returns the flow's current surplus count (debt).
func (e *WallERR) SurplusCount(flow int) int64 {
	if flow >= len(e.sc) {
		return 0
	}
	return e.sc[flow]
}

// Round returns the 1-based index of the round in progress (0 idle).
func (e *WallERR) Round() int64 { return e.round }

// Inflight returns the number of dispatched, uncompleted requests.
func (e *WallERR) Inflight() int { return e.inflight }

// CurrentFlow returns the flow with the open opportunity, or -1.
func (e *WallERR) CurrentFlow() int { return e.current }

// IsActive reports whether the scheduler considers flow active.
func (e *WallERR) IsActive(flow int) bool {
	return flow == e.current || e.active.Contains(flow)
}

var _ sched.AsyncScheduler = (*WallERR)(nil)
