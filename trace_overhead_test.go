package repro

// Flight-recorder overhead benchmarks and gate (BENCH_obs.json
// "trace_overhead"). The workload is the 16x16 deep-saturation mesh of
// BenchmarkNoCStepping — every router backlogged, so the per-visit
// tracer hooks fire at their maximum rate — measured one cycle per
// iteration under four recorder modes:
//
//	baseline   EnableTrace never called
//	off        EnableTrace with SampleEvery 0 (installs no hooks)
//	sample64   1-in-64 packet sampling (the CLI default)
//	full       every packet traced
//
// The acceptance bars, enforced by TestTraceOverheadGate in CI:
// "off" within 1% of baseline, "sample64" within 5%.

import (
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/sched"
)

// newTraceLane builds one warmed 16x16 saturation mesh, optionally
// with the flight recorder attached.
func newTraceLane(tb testing.TB, enable bool, sampleEvery int) (*noc.Mesh, *noc.Injector) {
	m, err := noc.NewMesh(noc.Config{
		K: 16, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		tb.Fatal(err)
	}
	if enable {
		m.EnableTrace(noc.TraceConfig{Seed: 0x7ace, SampleEvery: sampleEvery})
	}
	inj := noc.NewInjector(m, 0.30, noc.Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), rng.New(5))
	inj.MaxPending = 4
	for c := 0; c < 2000; c++ {
		inj.Step()
		m.Step()
	}
	return m, inj
}

func benchMeshTrace(b *testing.B, enable bool, sampleEvery int) {
	m, inj := newTraceLane(b, enable, sampleEvery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Step()
		m.Step()
	}
}

func BenchmarkNoCTraceOverhead(b *testing.B) {
	modes := []struct {
		name        string
		enable      bool
		sampleEvery int
	}{
		{"baseline", false, 0},
		{"off", true, 0},
		{"sample64", true, 64},
		{"full", true, 1},
	}
	for _, md := range modes {
		b.Run("16x16-high/"+md.name, func(b *testing.B) {
			benchMeshTrace(b, md.enable, md.sampleEvery)
		})
	}
}

// TestTraceOverheadGate enforces the flight-recorder overhead budget:
// tracing off must cost within 1% of never enabling it, and 1-in-64
// sampling within 5%.
//
// Resolving a 1% difference on a shared runner takes care, because
// two independent sources of error are each larger than the budget:
//
//   - Drift: runner throughput wanders by several percent over the
//     seconds a measurement takes. The modes therefore run as
//     persistent lanes timed in short interleaved slices, each round
//     visiting every lane twice in palindromic order (A..Z then Z..A)
//     so linear drift within a round cancels exactly, and each
//     round's lane times are divided by the same round's baseline so
//     drift between rounds cancels in the ratio. The overhead
//     estimate is the median ratio across rounds.
//
//   - Layout luck: two *identical* meshes differ by a stable ~1-3%
//     depending on where the allocator happened to place them, and
//     the first allocations of a process get a measurably friendlier
//     heap. Each mode therefore runs several replica lanes, created
//     round-robin in alternating order (after a discarded burn-in
//     mesh absorbs the privileged first slot), and a mode's round
//     time sums its replicas.
//
// Even then a quiet run resolves ~±1-2% at best, so the gate retries
// a failed measurement and distinguishes three outcomes: within
// budget (pass); over budget but within the noise ceiling after all
// attempts (skip — the tracing-off lanes are a structural no-op, see
// TestTraceDisabledInstallsNothing, so small excesses there measure
// the runner, not the recorder); and over even the noise ceiling
// (fail regardless). Opt-in via TRACE_OVERHEAD_GATE=1 (the CI test
// job sets it); a bare `go test` skips it as too slow for the inner
// loop.
func TestTraceOverheadGate(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GATE") == "" {
		t.Skip("set TRACE_OVERHEAD_GATE=1 to run the trace overhead gate")
	}
	const (
		replicas = 3
		rounds   = 15
		cycles   = 800
		attempts = 3

		offBudget, offCeiling = 1.0, 3.0
		s64Budget, s64Ceiling = 5.0, 8.0
	)
	type lane struct {
		m      *noc.Mesh
		inj    *noc.Injector
		slices []float64 // ns/cycle of every timing slice
	}
	type mode struct {
		name        string
		enable      bool
		sampleEvery int
		lanes       []*lane
	}
	attempt := func() (base, offPct, s64Pct float64) {
		modes := []*mode{
			{name: "baseline"},
			{name: "off", enable: true},
			{name: "sample64", enable: true, sampleEvery: 64},
		}
		// Burn the privileged first-allocation slot, then create the
		// replicas round-robin in alternating mode order.
		newTraceLane(t, false, 0)
		var all []*lane
		for r := 0; r < replicas; r++ {
			order := modes
			if r%2 == 1 {
				order = []*mode{modes[2], modes[1], modes[0]}
			}
			for _, md := range order {
				m, inj := newTraceLane(t, md.enable, md.sampleEvery)
				l := &lane{m: m, inj: inj}
				md.lanes = append(md.lanes, l)
				all = append(all, l)
			}
		}
		slice := func(l *lane) {
			start := time.Now()
			for c := 0; c < cycles; c++ {
				l.inj.Step()
				l.m.Step()
			}
			l.slices = append(l.slices, float64(time.Since(start).Nanoseconds())/cycles)
		}
		for s := 0; s < rounds; s++ {
			for k := 0; k < 2*len(all); k++ {
				i := k
				if i >= len(all) {
					i = 2*len(all) - 1 - k
				}
				slice(all[i])
			}
		}
		modeRound := func(md *mode, r int) float64 {
			var sum float64
			for _, l := range md.lanes {
				sum += l.slices[r]
			}
			return sum
		}
		ratios := make([][]float64, len(modes))
		var baseSum float64
		for r := 0; r < 2*rounds; r++ {
			rb := modeRound(modes[0], r)
			baseSum += rb / replicas
			for i := 1; i < len(modes); i++ {
				ratios[i] = append(ratios[i], modeRound(modes[i], r)/rb)
			}
		}
		median := func(v []float64) float64 {
			sort.Float64s(v)
			return v[len(v)/2]
		}
		return baseSum / (2 * rounds),
			(median(ratios[1]) - 1) * 100,
			(median(ratios[2]) - 1) * 100
	}
	for a := 1; ; a++ {
		base, offPct, s64Pct := attempt()
		t.Logf("attempt %d: baseline %.0f ns/cycle, off %+.2f%% (budget %.0f%%), 1-in-64 %+.2f%% (budget %.0f%%)",
			a, base, offPct, offBudget, s64Pct, s64Budget)
		if offPct <= offBudget && s64Pct <= s64Budget {
			return
		}
		if a < attempts {
			continue
		}
		if offPct > offCeiling {
			t.Errorf("tracing-off overhead %.2f%% exceeds the %.0f%% budget beyond the %.0f%% noise ceiling", offPct, offBudget, offCeiling)
		}
		if s64Pct > s64Ceiling {
			t.Errorf("1-in-64 sampling overhead %.2f%% exceeds the %.0f%% budget beyond the %.0f%% noise ceiling", s64Pct, s64Budget, s64Ceiling)
		}
		if !t.Failed() {
			t.Skipf("runner too noisy to resolve the budgets (no-op control reads %+.2f%% after %d attempts); see TestTraceDisabledInstallsNothing for the structural off==baseline guarantee", offPct, attempts)
		}
		return
	}
}
