package wormhole

import (
	"testing"

	"repro/internal/flit"
)

// Tests of the per-(output, VC) allocation and flit-level link
// multiplexing introduced for the paper's two-level switch structure.

func TestLinkMultiplexesVCs(t *testing.T) {
	// Two packets on different VCs of different inputs, both to
	// output 0: each gets its own output-queue allocation and the
	// link interleaves their flits round-robin.
	r, err := NewRouter(0, testConfig(3, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	var order []int // vc sequence on the link
	sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { order = append(order, vc) }
	ConnectEndpoint(r, 0, sink)
	injectPacket(t, r, 1, 0, flit.Packet{Flow: 10, Length: 4, Dst: 0}, 0)
	injectPacket(t, r, 2, 1, flit.Packet{Flow: 21, Length: 4, Dst: 0}, 0)
	for c := int64(0); c < 20; c++ {
		r.Step(c)
	}
	if sink.Packets != 2 {
		t.Fatalf("delivered %d packets, want 2", sink.Packets)
	}
	// Both VCs must appear interleaved, not one fully before the
	// other.
	firstVC := order[0]
	sawOtherBeforeEnd := false
	for _, vc := range order[:4] {
		if vc != firstVC {
			sawOtherBeforeEnd = true
		}
	}
	if !sawOtherBeforeEnd {
		t.Errorf("link did not interleave VCs: %v", order)
	}
}

func TestBlockedVCDoesNotStallOtherVC(t *testing.T) {
	// VC 0's packet is destined to a stalled output queue; VC 1's
	// packet to the same *port* keeps flowing. This is the property
	// that makes dateline deadlock avoidance work.
	r, err := NewRouter(0, testConfig(3, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Output 0 drains VC1 flits but its buffer is tiny, so VC0's worm
	// stalls after the buffer fills... instead: block VC0 by routing
	// it to an output with zero drain while VC1 uses output 0.
	stalled := NewStallSink(1, func(int64) bool { return false })
	ConnectEndpoint(r, 1, stalled)
	stalled.Bind(r, 1)
	sink := &Sink{}
	ConnectEndpoint(r, 0, sink)

	injectPacket(t, r, 2, 0, flit.Packet{Flow: 20, Length: 6, Dst: 1}, 0) // will stall
	injectPacket(t, r, 2, 1, flit.Packet{Flow: 21, Length: 6, Dst: 0}, 0) // must flow
	for c := int64(0); c < 40; c++ {
		r.Step(c)
	}
	if sink.Packets != 1 {
		t.Errorf("VC1 packet blocked by VC0's stalled worm")
	}
}

func TestOutVCRemap(t *testing.T) {
	// An OutVC hook that forces VC 1 on output 0: the flit must leave
	// tagged VC 1 and consume VC-1 credits.
	cfg := testConfig(2, 2, 8)
	cfg.OutVC = func(outPort int, head flit.Flit, inPort, inVC int) int {
		if outPort == 0 {
			return 1
		}
		return inVC
	}
	r, err := NewRouter(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	var vcs []int
	sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { vcs = append(vcs, vc) }
	ConnectEndpoint(r, 0, sink)
	injectPacket(t, r, 1, 0, flit.Packet{Flow: 1, Length: 3, Dst: 0}, 0)
	for c := int64(0); c < 10; c++ {
		r.Step(c)
	}
	if sink.Packets != 1 {
		t.Fatal("packet not delivered")
	}
	for _, vc := range vcs {
		if vc != 1 {
			t.Fatalf("flit left on VC %d, want 1 (remapped)", vc)
		}
	}
}

func TestOutVCOutOfRangePanics(t *testing.T) {
	cfg := testConfig(2, 2, 8)
	cfg.OutVC = func(int, flit.Flit, int, int) int { return 7 }
	r, err := NewRouter(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ConnectEndpoint(r, 0, &Sink{})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range OutVC did not panic")
		}
	}()
	injectPacket(t, r, 1, 0, flit.Packet{Flow: 1, Length: 1, Dst: 0}, 0)
	for c := int64(0); c < 5; c++ {
		r.Step(c)
	}
}

func TestPerVCArbitersIndependent(t *testing.T) {
	// Two inputs on VC0 and one input on VC1 all target output 0.
	// The VC0 arbiter shares its queue's bandwidth between the two
	// VC0 inputs; the VC1 input keeps its own allocation. With the
	// link multiplexing fairly between two busy VCs, the VC1 input
	// gets ~1/2 of the link and each VC0 input ~1/4.
	r, err := NewRouter(0, testConfig(4, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	served := map[int]int64{}
	sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { served[f.Flow]++ }
	ConnectEndpoint(r, 0, sink)
	for c := int64(0); c < 60000; c++ {
		for _, in := range []struct{ port, vc int }{{1, 0}, {2, 0}, {3, 1}} {
			if r.InputFree(in.port, in.vc) >= 4 {
				injectPacket(t, r, in.port, in.vc,
					flit.Packet{Flow: in.port*2 + in.vc, Length: 4, Dst: 0}, c)
			}
		}
		r.Step(c)
	}
	vc1 := float64(served[7])  // input 3, vc 1
	vc0a := float64(served[2]) // input 1, vc 0
	vc0b := float64(served[4]) // input 2, vc 0
	total := vc1 + vc0a + vc0b
	if r := vc1 / total; r < 0.45 || r > 0.55 {
		t.Errorf("VC1 share %.3f, want ~0.5", r)
	}
	if r := vc0a / vc0b; r < 0.9 || r > 1.1 {
		t.Errorf("VC0 inputs unbalanced: %.3f", r)
	}
}
