package queue

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("Test(%d) false after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	b.Set(63) // idempotent
	if got := b.Count(); got != 8 {
		t.Errorf("Count after duplicate Set = %d, want 8", got)
	}
	b.Clear(63)
	b.Clear(63) // idempotent
	if b.Test(63) || b.Count() != 7 {
		t.Errorf("Clear(63): Test=%v Count=%d", b.Test(63), b.Count())
	}
	if !b.Any() {
		t.Error("Any false on non-empty set")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Error("Reset left members behind")
	}
}

// TestBitsetAscendingOrder pins the property the router work-lists
// depend on: iteration yields members in ascending order — exactly
// the cells a full ascending scan would visit, in the same order.
func TestBitsetAscendingOrder(t *testing.T) {
	b := NewBitset(512)
	want := []int{}
	src := rand.New(rand.NewSource(3))
	member := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := src.Intn(512)
		if !member[v] {
			member[v] = true
			b.Set(v)
		}
	}
	for i := 0; i < 512; i++ {
		if member[i] {
			want = append(want, i)
		}
	}
	got := []int{}
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("member %d: got %d, want %d (not ascending?)", i, got[i], want[i])
		}
	}
	// The hot-loop idiom over Words() must agree with ForEach.
	got2 := []int{}
	for wi, w := range b.Words() {
		for w != 0 {
			got2 = append(got2, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("Words iteration member %d: got %d, want %d", i, got2[i], want[i])
		}
	}
}
