// Router example: isolating a bursty source in an Internet-style
// datagram scheduler (the paper's Section 1 notes ERR "may also be
// applied to wide-area networks such as the Internet").
//
// Two well-behaved flows share a link with an aggressive on/off
// source. Under FCFS every burst inflates the delay of the innocent
// flows; under ERR the burst queues behind its own fair share and the
// innocent flows barely notice.
//
// Run with: go run ./examples/router
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

func run(name string, s sched.Scheduler) *metrics.DelayStats {
	src := rng.New(7)
	source := traffic.NewMulti(
		// Two steady flows, each ~15% of link capacity.
		traffic.NewBernoulli(0, 0.01, rng.NewUniform(8, 24), src.Split()),
		traffic.NewBernoulli(1, 0.01, rng.NewUniform(8, 24), src.Split()),
		// A bursty source: long on-periods at 4x the steady rate.
		traffic.NewOnOff(2, 0.08, 2000, 2000, rng.NewUniform(8, 24), src.Split()),
	)
	delays := metrics.NewDelayStats(3)
	e, err := engine.NewEngine(engine.Config{
		Flows:     3,
		Scheduler: s,
		Source:    source,
		OnDeparture: func(p flit.Packet, cycle, occ int64) {
			delays.Departure(p, cycle)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	e.Run(400_000)
	return delays
}

func main() {
	errDelays := run("ERR", core.New())
	fcfsDelays := run("FCFS", sched.NewFCFS())

	fmt.Println("Mean packet delay (cycles) with a bursty source on the link:")
	fmt.Printf("  %-22s %10s %10s\n", "flow", "ERR", "FCFS")
	names := []string{"steady flow 0", "steady flow 1", "bursty flow 2"}
	for f := 0; f < 3; f++ {
		fmt.Printf("  %-22s %10.1f %10.1f\n", names[f], errDelays.MeanOf(f), fcfsDelays.MeanOf(f))
	}
	fmt.Printf("\nworst steady-flow delay:  ERR %.0f cycles,  FCFS %.0f cycles\n",
		max(errDelays.MaxOf(0), errDelays.MaxOf(1)),
		max(fcfsDelays.MaxOf(0), fcfsDelays.MaxOf(1)))
	fmt.Println("\nERR makes the bursty flow absorb its own backlog; FCFS spreads it")
	fmt.Println("across everyone (\"FCFS does not provide adequate protection from a")
	fmt.Println("bursty source\", Section 2).")
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
