package check

import (
	"repro/internal/engine"
	"repro/internal/flit"
)

// ActiveAuditor is the scheduler-side hook for the ActiveList
// membership audit. *core.ERR implements it; schedulers that do not
// simply skip that check.
type ActiveAuditor interface {
	// IsActive reports whether the scheduler considers flow active
	// (on its active list, or temporarily off it while in service).
	IsActive(flow int) bool
}

// EngineChecker audits a single-server engine run. It wires onto the
// engine's observation callbacks exactly like obs.Collector — no
// simulation semantics are touched — and, when installed as the ERR
// trace sink, verifies Lemma 1 on every service opportunity.
//
// Usage:
//
//	chk := check.NewEngineChecker(flows)
//	chk.Wire(&ecfg)              // before engine.NewEngine
//	errSched.SetTrace(chk)       // Lemma 1 (optional, ERR only)
//	e, _ := engine.NewEngine(ecfg)
//	chk.Attach(e, errSched)      // conservation + ActiveList audits
//	for i := int64(0); i < cycles; i++ {
//		e.Step()
//		chk.Tick()
//	}
//	err := chk.Err()             // nil, or *check.ViolationError
type EngineChecker struct {
	*Recorder

	flows int
	eng   *engine.Engine
	audit ActiveAuditor

	// Watchdog, when set, is consulted by Tick against the engine's
	// backlog. Forwarded flits feed its progress.
	Watchdog *Watchdog

	injected int64 // flits admitted (post-validation)
	served   int64 // flits forwarded
	maxCost  int64 // m: largest per-packet cost (occupancy) observed
	lastID   []int64

	// lemma1 tracks whether Opportunity events are flowing (the
	// checker is the ERR trace sink), enabling the Lemma 1 checks.
	lemma1 bool
}

// NewEngineChecker returns a checker for an engine with the given
// flow count.
func NewEngineChecker(flows int) *EngineChecker {
	c := &EngineChecker{
		Recorder: NewRecorder(),
		flows:    flows,
		lastID:   make([]int64, flows),
	}
	for i := range c.lastID {
		c.lastID[i] = -1
	}
	return c
}

// Wire chains the checker onto cfg's callbacks; call before
// engine.NewEngine consumes the config.
func (c *EngineChecker) Wire(cfg *engine.Config) {
	prevInj := cfg.OnInject
	cfg.OnInject = func(p flit.Packet, cycle int64) {
		c.injected += int64(p.Length)
		c.trace.add(event{cycle: cycle, kind: evInject, a: int64(p.Flow), b: int64(p.Length), c: p.ID})
		if prevInj != nil {
			prevInj(p, cycle)
		}
	}
	prevRej := cfg.OnReject
	cfg.OnReject = func(p flit.Packet, cycle int64, err error) {
		// Rejected packets are not violations — rejection is the
		// correct handling of malformed traffic — but they belong in
		// the event trace.
		c.trace.add(event{cycle: cycle, kind: evReject, a: int64(p.Flow), b: int64(p.Length)})
		if prevRej != nil {
			prevRej(p, cycle, err)
		}
	}
	prevFlit := cfg.OnFlit
	cfg.OnFlit = func(cycle int64, flow int) {
		c.served++
		if c.Watchdog != nil {
			c.Watchdog.Progress(cycle)
		}
		if prevFlit != nil {
			prevFlit(cycle, flow)
		}
	}
	prevDep := cfg.OnDeparture
	cfg.OnDeparture = func(p flit.Packet, cycle, occupancy int64) {
		if occupancy > c.maxCost {
			c.maxCost = occupancy
		}
		c.trace.add(event{cycle: cycle, kind: evDepart, a: int64(p.Flow), b: p.ID, c: occupancy})
		if p.Flow >= 0 && p.Flow < len(c.lastID) {
			if p.ID <= c.lastID[p.Flow] {
				c.report(cycle, InvFIFO, p.Flow,
					"packet %d departed after packet %d of the same flow", p.ID, c.lastID[p.Flow])
			}
			c.lastID[p.Flow] = p.ID
		}
		if prevDep != nil {
			prevDep(p, cycle, occupancy)
		}
	}
}

// Attach gives the checker the engine (for backlog queries during
// Tick) and optionally the scheduler for the ActiveList audit; pass
// sched nil (or a scheduler that is not an ActiveAuditor) to skip
// that check.
func (c *EngineChecker) Attach(e *engine.Engine, sched any) {
	c.eng = e
	if a, ok := sched.(ActiveAuditor); ok {
		c.audit = a
	}
}

// Tick runs the per-cycle audits: flit conservation, ActiveList
// consistency, and the watchdog. Call after each engine.Step.
func (c *EngineChecker) Tick() {
	if c.eng == nil {
		return
	}
	cycle := c.eng.Cycle()
	if inFlight := c.eng.BacklogFlits(); c.injected != c.served+inFlight {
		c.report(cycle, InvConservation, -1,
			"injected %d flits != served %d + in-flight %d", c.injected, c.served, inFlight)
	}
	if c.audit != nil {
		for flow := 0; flow < c.flows; flow++ {
			backlogged := c.eng.QueueLen(flow) > 0
			active := c.audit.IsActive(flow)
			if backlogged != active {
				c.report(cycle, InvActiveList, flow,
					"backlogged=%v but ActiveList membership=%v", backlogged, active)
			}
		}
	}
	if c.Watchdog != nil && c.Watchdog.Expired(cycle, int64(c.eng.Backlog())) {
		c.report(cycle, InvWatchdog, -1,
			"no flit forwarded for %d cycles with %d packets backlogged (deadlock or livelock)",
			c.Watchdog.Limit, c.eng.Backlog())
	}
}

// RoundStart implements core.TraceSink.
func (c *EngineChecker) RoundStart(round, prevMaxSC int64, visits int) {
	cycle := int64(-1)
	if c.eng != nil {
		cycle = c.eng.Cycle()
	}
	c.trace.add(event{cycle: cycle, kind: evRound, a: round, b: prevMaxSC, c: int64(visits)})
}

// Opportunity implements core.TraceSink — the Lemma 1 checks. The
// surplus bound uses m = the largest packet cost observed so far
// (packet departures precede the Opportunity event for the same
// packet, so m is current).
func (c *EngineChecker) Opportunity(round int64, flow int, allowance, sent, surplus int64, left bool) {
	c.lemma1 = true
	cycle := int64(-1)
	if c.eng != nil {
		cycle = c.eng.Cycle()
	}
	c.trace.add(event{cycle: cycle, kind: evOpportunity, a: int64(flow), b: allowance, c: sent, d: surplus})
	if allowance < 1 {
		c.report(cycle, InvAllowance, flow,
			"round %d: allowance %d < 1 (every flow may send at least one packet per round)",
			round, allowance)
	}
	if surplus > c.maxCost-1 {
		c.report(cycle, InvSurplusUpper, flow,
			"round %d: surplus %d > m-1 = %d (Lemma 1)", round, surplus, c.maxCost-1)
	}
	if !left && surplus < 0 {
		c.report(cycle, InvSurplusLower, flow,
			"round %d: surplus %d < 0 for a backlogged flow (Lemma 1)", round, surplus)
	}
}

// Lemma1Checked reports whether any ERR opportunity events were
// actually observed — a guard for tests that would otherwise pass
// vacuously with the trace sink left uninstalled.
func (c *EngineChecker) Lemma1Checked() bool { return c.lemma1 }
