package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/sched"
)

// TestERRTracksGPS compares ERR's cumulative service for backlogged
// flows against the fluid GPS ideal advanced at the same rate: the
// lag |ERR_i(t) - GPS_i(t)| must stay bounded by a few maximal
// packets for every flow at every packet boundary. This is the
// "fairness relative to GPS" lens of Golestani that the paper's
// relative measure descends from.
func TestERRTracksGPS(t *testing.T) {
	const n = 4
	const m = 48
	e := core.New()
	d := harness.New(n, e)
	g := sched.NewGPS(n, nil)

	src := rng.New(13)
	dist := rng.NewUniform(1, m)
	for i := 0; i < 2000; i++ {
		for f := 0; f < n; f++ {
			l := dist.Draw(src)
			d.Arrive(flit.Packet{Flow: f, Length: l})
			g.Arrive(f, l)
		}
	}

	served := make([]int64, n)
	worstLag := 0.0
	d.OnServe = func(p flit.Packet, cost int64) {
		served[p.Flow] += int64(p.Length)
		// Advance the fluid system by the same amount of capacity.
		for i := 0; i < p.Length; i++ {
			g.Step()
		}
		for f := 0; f < n; f++ {
			lag := math.Abs(float64(served[f]) - g.Served(f))
			if lag > worstLag {
				worstLag = lag
			}
		}
	}
	// Keep all flows backlogged while measuring.
	for {
		stop := false
		for f := 0; f < n; f++ {
			if d.QueueLen(f) == 0 {
				stop = true
			}
		}
		if stop {
			break
		}
		d.ServeOne()
	}
	// The GPS lag of a round-robin scheduler is bounded by roughly one
	// round of service: (n-1) opportunities of up to ~2m flits each.
	bound := float64((n - 1) * 3 * m)
	if worstLag >= bound {
		t.Errorf("worst GPS lag %.0f >= %d*3m = %.0f", worstLag, n-1, bound)
	}
	if worstLag == 0 {
		t.Error("no lag measured — test not exercising the system")
	}
}
