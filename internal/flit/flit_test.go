package flit

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Head, "head"},
		{Body, "body"},
		{Tail, "tail"},
		{HeadTail, "head+tail"},
		{Kind(42), "kind(42)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestFlitAtSingleFlitPacket(t *testing.T) {
	p := Packet{Flow: 3, Length: 1, Dst: 7}
	f := p.FlitAt(0)
	if f.Kind != HeadTail {
		t.Errorf("single-flit packet: kind = %v, want HeadTail", f.Kind)
	}
	if f.Flow != 3 || f.Dst != 7 || f.Seq != 0 {
		t.Errorf("flit fields not propagated: %+v", f)
	}
}

func TestFlitAtMultiFlitPacket(t *testing.T) {
	p := Packet{Flow: 1, Length: 4}
	wantKinds := []Kind{Head, Body, Body, Tail}
	for i, want := range wantKinds {
		if got := p.FlitAt(i).Kind; got != want {
			t.Errorf("FlitAt(%d).Kind = %v, want %v", i, got, want)
		}
	}
}

func TestFlitAtPanicsOutOfRange(t *testing.T) {
	p := Packet{Flow: 0, Length: 2}
	for _, i := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlitAt(%d) did not panic", i)
				}
			}()
			p.FlitAt(i)
		}()
	}
}

func TestFlitsMaterialisation(t *testing.T) {
	p := Packet{Flow: 2, Length: 5, Dst: 9}
	fs := p.Flits()
	if len(fs) != 5 {
		t.Fatalf("len(Flits()) = %d, want 5", len(fs))
	}
	if fs[0].Kind != Head || fs[4].Kind != Tail {
		t.Errorf("first/last kinds = %v/%v, want head/tail", fs[0].Kind, fs[4].Kind)
	}
	for i, f := range fs {
		if f.Seq != i {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
		if f.Flow != 2 {
			t.Errorf("flit %d has Flow %d, want 2", i, f.Flow)
		}
	}
}

func TestBytes(t *testing.T) {
	p := Packet{Length: 16}
	if got := p.Bytes(DefaultFlitBytes); got != 128 {
		t.Errorf("Bytes(8) = %d, want 128", got)
	}
	if got := p.Bytes(4); got != 64 {
		t.Errorf("Bytes(4) = %d, want 64", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Packet{Flow: 0, Length: 1}).Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	if err := (Packet{Flow: 0, Length: 0}).Validate(); err == nil {
		t.Error("zero-length packet accepted")
	}
	if err := (Packet{Flow: -1, Length: 3}).Validate(); err == nil {
		t.Error("negative flow accepted")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Flow: 1, Length: 2, Dst: 3, ID: 4}
	if got, want := p.String(), "pkt{flow=1 len=2 dst=3 id=4}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: for any positive length, a packet's flits start with a
// head (or head+tail), end with a tail (or head+tail), and every flit
// in between is a body flit.
func TestFlitKindsProperty(t *testing.T) {
	prop := func(lenSeed uint8, flow uint8) bool {
		length := int(lenSeed%200) + 1
		p := Packet{Flow: int(flow), Length: length}
		fs := p.Flits()
		if length == 1 {
			return fs[0].Kind == HeadTail
		}
		if fs[0].Kind != Head || fs[length-1].Kind != Tail {
			return false
		}
		for i := 1; i < length-1; i++ {
			if fs[i].Kind != Body {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
