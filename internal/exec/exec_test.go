package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCollectsInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		jobs := make([]Job[int], 50)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		got, err := Run(jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunOrderSurvivesOutOfOrderCompletion forces job 0 to finish
// last: its result must still land in slot 0.
func TestRunOrderSurvivesOutOfOrderCompletion(t *testing.T) {
	release := make(chan struct{})
	jobs := []Job[string]{
		func() (string, error) { <-release; return "first", nil },
		func() (string, error) { return "second", nil },
		func() (string, error) { return "third", nil },
		func() (string, error) { close(release); return "fourth", nil },
	}
	got, err := Run(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third", "fourth"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRunErrorIsDeterministic pins the error contract: whatever the
// worker count or scheduling, Run reports the lowest-indexed failure.
func TestRunErrorIsDeterministic(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			jobs := make([]Job[int], 12)
			for i := range jobs {
				i := i
				jobs[i] = func() (int, error) {
					if i == 3 || i == 9 {
						return 0, fmt.Errorf("job %d: %w", i, sentinel)
					}
					return i, nil
				}
			}
			_, err := Run(jobs, workers)
			if err == nil {
				t.Fatalf("workers=%d: no error", workers)
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d: error %v does not wrap sentinel", workers, err)
			}
			if want := "exec: job 3: job 3: boom"; err.Error() != want {
				t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), want)
			}
		}
	}
}

// TestRunSerialStopsAtFirstError: workers == 1 is the legacy serial
// path — jobs after the first failure must not run.
func TestRunSerialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int32
	jobs := []Job[int]{
		func() (int, error) { ran.Add(1); return 0, nil },
		func() (int, error) { ran.Add(1); return 0, errors.New("stop") },
		func() (int, error) { ran.Add(1); return 0, nil },
	}
	if _, err := Run(jobs, 1); err == nil {
		t.Fatal("no error")
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d jobs serially, want 2", ran.Load())
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got, err := Run([]Job[int]{}, 4); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err := Run([]Job[int]{func() (int, error) { return 42, nil }}, 4)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single: %v %v", got, err)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

// TestRunProgress pins the WithProgress contract on both paths: every
// completion is reported exactly once, the final call is (n, n), and
// results are unaffected by observing progress.
func TestRunProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		var sawFinal atomic.Bool
		const n = 20
		jobs := make([]Job[int], n)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) { return i, nil }
		}
		got, err := Run(jobs, workers, WithProgress(func(done, total int) {
			calls.Add(1)
			if total != n {
				t.Errorf("workers=%d: total = %d, want %d", workers, total, n)
			}
			if done < 1 || done > n {
				t.Errorf("workers=%d: done = %d out of range", workers, done)
			}
			if done == n {
				sawFinal.Store(true)
			}
		}))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != n {
			t.Errorf("workers=%d: %d progress calls, want %d", workers, calls.Load(), n)
		}
		if !sawFinal.Load() {
			t.Errorf("workers=%d: final (n, n) progress call never arrived", workers)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestRunProgressReportsFailures: a failing job still counts as a
// completion, and on the serial path the failing job's own report
// precedes the early return.
func TestRunProgressReportsFailures(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{
		func() (int, error) { return 0, nil },
		func() (int, error) { return 0, errors.New("boom") },
		func() (int, error) { return 0, nil },
	}
	_, err := Run(jobs, 1, WithProgress(func(done, total int) { calls.Add(1) }))
	if err == nil {
		t.Fatal("no error")
	}
	if calls.Load() != 2 {
		t.Errorf("serial: %d progress calls, want 2 (job 1 fails, job 2 never runs)", calls.Load())
	}
}
