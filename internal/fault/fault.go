package fault

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/rng"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

// Stream labels for rng.Derive, so each fault role draws from an
// independent stream and adding one directive never perturbs the
// randomness consumed by another.
const (
	streamDrop uint64 = 0xfa01 + iota
	streamCorrupt
	streamMalformed
)

// Counters tallies what an Injector actually did during a run. The
// counts are what the run manifest and the obs registry record, so a
// faulted experiment is auditable after the fact: how many flits were
// really lost, not just what probability was asked for.
type Counters struct {
	// StallCycles is the number of flit-forwarding attempts the
	// injector stalled (engine mode counts imposed stall cycles).
	StallCycles int64 `json:"stall_cycles,omitempty"`
	// Dropped is the number of flits lost in transit.
	Dropped int64 `json:"dropped,omitempty"`
	// Corrupted is the number of flits delivered mutated.
	Corrupted int64 `json:"corrupted,omitempty"`
	// Malformed is the number of malformed packets emitted into the
	// traffic stream.
	Malformed int64 `json:"malformed,omitempty"`
}

// Injector realises a parsed Spec against a concrete simulation: it
// wraps the engine's stall model and traffic source, and manufactures
// wormhole.OutputFault / freeze hooks for routers. A nil *Injector is
// valid and injects nothing, so call sites need no fault/no-fault
// branching.
//
// All probabilistic decisions draw from streams derived from the
// given seed with rng.Derive, independent of the experiment's own
// traffic streams: a faulted run is exactly repeatable, and the
// arrival pattern is identical to the fault-free run with the same
// experiment seed.
type Injector struct {
	spec *Spec
	seed uint64

	// Counter cells are atomic because outputFault hooks fire from the
	// routers' compute phase, which the mesh may shard across workers;
	// each hook still draws from its own per-(router,port) rng stream,
	// so only the tallies are shared.
	counters atomicCounters
}

// atomicCounters is the internal, race-safe form of Counters.
type atomicCounters struct {
	stallCycles atomic.Int64
	dropped     atomic.Int64
	corrupted   atomic.Int64
	malformed   atomic.Int64
}

// New returns an injector for the spec, or nil when the spec is nil
// (no faults).
func New(spec *Spec, seed uint64) *Injector {
	if spec == nil {
		return nil
	}
	return &Injector{spec: spec, seed: seed}
}

// Counters returns a snapshot of what the injector has done so far.
// Zero value on a nil injector. Safe to call while a simulation is
// stepping (each field is an independent atomic load).
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return Counters{
		StallCycles: in.counters.stallCycles.Load(),
		Dropped:     in.counters.dropped.Load(),
		Corrupted:   in.counters.corrupted.Load(),
		Malformed:   in.counters.malformed.Load(),
	}
}

// Spec returns the parsed spec (nil for a nil injector).
func (in *Injector) Spec() *Spec {
	if in == nil {
		return nil
	}
	return in.spec
}

// permanentStall is the stall length reported for a permanent link
// stall (dur=0). The engine treats a stall count as cycles to wait,
// so any value beyond the simulation horizon blocks forever; 2^62
// leaves headroom against int64 overflow when added to the cycle.
const permanentStall = math.MaxInt64 >> 2

// stallAt returns the injector-imposed stall (in cycles) for a flit
// of flow becoming eligible at cycle, considering engine-mode stall
// directives (router unset). 0 when none applies.
func (in *Injector) stallAt(flow int, cycle int64) int64 {
	var worst int64
	for _, d := range in.spec.only("stall") {
		if d.Router != -1 || d.Port != -1 {
			continue // router/port-scoped: handled by OutputFault
		}
		if d.Flow != -1 && d.Flow != flow {
			continue
		}
		if !d.active(cycle) {
			continue
		}
		var s int64
		if d.Dur == 0 {
			s = permanentStall
		} else {
			s = d.At + d.Dur - cycle // remaining window
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// engineStall adapts the injector to engine.CycleStallModel, layering
// the injected stalls on top of an inner congestion model (which may
// be nil).
type engineStall struct {
	in    *Injector
	inner engine.StallModel
}

func (s *engineStall) FlitStall(flow int) int { return s.FlitStallAt(flow, 0) }

func (s *engineStall) FlitStallAt(flow int, cycle int64) int {
	var base int64
	if s.inner != nil {
		if cs, ok := s.inner.(engine.CycleStallModel); ok {
			base = int64(cs.FlitStallAt(flow, cycle))
		} else {
			base = int64(s.inner.FlitStall(flow))
		}
	}
	inj := s.in.stallAt(flow, cycle)
	s.in.counters.stallCycles.Add(inj)
	if base+inj > permanentStall {
		return int(permanentStall)
	}
	return int(base + inj)
}

// WrapStall layers the spec's engine-mode stall directives on top of
// an existing stall model. With no such directives (or a nil
// injector) it returns inner unchanged, preserving the fast path.
func (in *Injector) WrapStall(inner engine.StallModel) engine.StallModel {
	if in == nil {
		return inner
	}
	any := false
	for _, d := range in.spec.only("stall") {
		if d.Router == -1 && d.Port == -1 {
			any = true
		}
	}
	if !any {
		return inner
	}
	return &engineStall{in: in, inner: inner}
}

// malformedSource layers malformed-packet emission onto an inner
// traffic source.
type malformedSource struct {
	in    *Injector
	inner traffic.Source
	flows int
	dirs  []Directive
	src   *rng.Source
	buf   []flit.Packet
}

func (m *malformedSource) Arrivals(cycle int64, q traffic.QueueView) []flit.Packet {
	var base []flit.Packet
	if m.inner != nil {
		base = m.inner.Arrivals(cycle, q)
	}
	m.buf = append(m.buf[:0], base...)
	for _, d := range m.dirs {
		if !m.src.Bernoulli(d.P) {
			continue
		}
		var p flit.Packet
		switch d.MKind {
		case MalformedZeroLen:
			p = flit.Packet{Flow: 0, Length: 0}
		case MalformedBadFlow:
			p = flit.Packet{Flow: m.flows, Length: 4}
		default:
			// notail/duphead are flit-stream malformations; a
			// packet-granularity source cannot express them. They are
			// exercised by MalformedFlits at the flit level.
			continue
		}
		m.in.counters.malformed.Add(1)
		m.buf = append(m.buf, p)
	}
	return m.buf
}

// WrapSource layers the spec's malformed(...) directives onto a
// traffic source: malformed packets (zero-length, out-of-range flow
// id for the given flow count) are mixed into the arrival stream with
// the configured probability, to be rejected — not crashed on — at
// the injection point. Returns inner unchanged when no malformed
// directives apply.
func (in *Injector) WrapSource(inner traffic.Source, flows int) traffic.Source {
	if in == nil {
		return inner
	}
	var dirs []Directive
	for _, d := range in.spec.only("malformed") {
		if d.MKind == MalformedZeroLen || d.MKind == MalformedBadFlow {
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return inner
	}
	return &malformedSource{
		in:    in,
		inner: inner,
		flows: flows,
		dirs:  dirs,
		src:   rng.New(rng.Derive(in.seed, streamMalformed)),
	}
}

// outputFault implements wormhole.OutputFault for one router output.
type outputFault struct {
	in      *Injector
	stalls  []Directive
	drops   []Directive
	corrupt []Directive
	dropSrc *rng.Source
	corrSrc *rng.Source
}

func (o *outputFault) Stalled(cycle int64) bool {
	for _, d := range o.stalls {
		if d.active(cycle) {
			return true
		}
	}
	return false
}

func (o *outputFault) Drop(f flit.Flit, cycle int64) bool {
	for _, d := range o.drops {
		if o.dropSrc.Bernoulli(d.P) {
			o.in.counters.dropped.Add(1)
			return true
		}
	}
	return false
}

func (o *outputFault) Corrupt(f flit.Flit, cycle int64) flit.Flit {
	for _, d := range o.corrupt {
		if !o.corrSrc.Bernoulli(d.P) {
			continue
		}
		// Mutate the flit kind: the classic wormhole wire faults are a
		// tail that arrives as a body (packet never closes), a body
		// that arrives as a tail (premature close), and a lost head
		// (body with no open packet).
		switch f.Kind {
		case flit.Body:
			f.Kind = flit.Tail
		case flit.Tail:
			f.Kind = flit.Body
		case flit.Head:
			f.Kind = flit.Body
		case flit.HeadTail:
			f.Kind = flit.Head
		}
		o.in.counters.corrupted.Add(1)
	}
	return f
}

// OutputFault returns the wormhole.OutputFault to install on output
// port of router (via Router.SetOutputFault), or nil when no
// directive targets it. Stall directives with router=-1 and an
// explicit port apply to that port on every router; drop/corrupt
// match on both router and port (-1 = wildcard).
func (in *Injector) OutputFault(router, port int) wormhole.OutputFault {
	if in == nil {
		return nil
	}
	match := func(d Directive) bool {
		if d.Router != -1 && d.Router != router {
			return false
		}
		if d.Port != -1 && d.Port != port {
			return false
		}
		return true
	}
	o := &outputFault{in: in}
	for _, d := range in.spec.only("stall") {
		// Engine-mode stalls (no router, no port) are handled by
		// WrapStall; a stall targets router outputs only when it names
		// a router or a port.
		if d.Router == -1 && d.Port == -1 {
			continue
		}
		if match(d) {
			o.stalls = append(o.stalls, d)
		}
	}
	for _, d := range in.spec.only("drop") {
		if match(d) {
			o.drops = append(o.drops, d)
		}
	}
	for _, d := range in.spec.only("corrupt") {
		if match(d) {
			o.corrupt = append(o.corrupt, d)
		}
	}
	if len(o.stalls) == 0 && len(o.drops) == 0 && len(o.corrupt) == 0 {
		return nil
	}
	o.dropSrc = rng.New(rng.Derive(in.seed, streamDrop, uint64(router), uint64(port)))
	o.corrSrc = rng.New(rng.Derive(in.seed, streamCorrupt, uint64(router), uint64(port)))
	return o
}

// WindowEdges returns the sorted, deduplicated cycles at which any
// windowed directive (stall or freeze) changes its answer: each
// window's opening cycle At and, for transient windows, its closing
// cycle At+Dur (dur=0 windows are permanent and only open). Between
// two consecutive edges every Stalled/FreezeFunc predicate is
// constant, so an event-driven simulation that wakes at each edge may
// treat fault-blocked routers as dormant in the gaps
// (wormhole.Router.SetFaultEdgesKnown). A nil injector has no edges.
func (in *Injector) WindowEdges() []int64 {
	if in == nil {
		return nil
	}
	var edges []int64
	for _, d := range in.spec.Directives {
		if d.Kind != "stall" && d.Kind != "freeze" {
			continue
		}
		edges = append(edges, d.At)
		// A closing edge beyond the permanent-stall horizon can never
		// be reached; skipping it also guards the At+Dur sum against
		// overflow (same headroom rationale as permanentStall).
		if d.Dur > 0 && d.At <= permanentStall-d.Dur {
			edges = append(edges, d.At+d.Dur)
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// FreezeFunc returns the freeze predicate to install on router (via
// Router.SetFreeze), or nil when no freeze directive targets it.
func (in *Injector) FreezeFunc(router int) func(cycle int64) bool {
	if in == nil {
		return nil
	}
	var dirs []Directive
	for _, d := range in.spec.only("freeze") {
		if d.Router == -1 || d.Router == router {
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return nil
	}
	return func(cycle int64) bool {
		for _, d := range dirs {
			if d.active(cycle) {
				return true
			}
		}
		return false
	}
}

// MalformedFlits materialises a deliberately malformed flit stream
// for a packet — the flit-level counterpart of WrapSource's malformed
// packets, used by the switch front-end and the validation tests to
// exercise flit.ValidateFlits and the routers' tolerance. kind is one
// of the Malformed* constants:
//
//	zerolen: an empty stream
//	badflow: a well-formed stream tagged with flow -1
//	notail:  the stream truncated before its tail
//	duphead: a second head flit spliced in mid-packet
func MalformedFlits(kind string, flow, length int, pktID int64) []flit.Flit {
	if length < 2 {
		length = 2
	}
	p := flit.Packet{Flow: flow, Length: length, ID: pktID}
	fs := p.Flits()
	switch kind {
	case MalformedZeroLen:
		return nil
	case MalformedBadFlow:
		for i := range fs {
			fs[i].Flow = -1
		}
	case MalformedNoTail:
		fs = fs[:len(fs)-1]
	case MalformedDupHead:
		mid := len(fs) / 2
		fs[mid].Kind = flit.Head
	}
	return fs
}

var (
	_ engine.CycleStallModel = (*engineStall)(nil)
	_ traffic.Source         = (*malformedSource)(nil)
	_ wormhole.OutputFault   = (*outputFault)(nil)
)
