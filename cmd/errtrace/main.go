// Command errtrace prints a round-by-round trace of an Elastic Round
// Robin execution — the content of the paper's Figure 3: for every
// round, each flow's allowance A_i(r), the flits it sent, and its
// surplus count SC_i(r), plus the round's MaxSC.
//
// By default it traces the deterministic 3-flow example documented in
// DESIGN.md; with -random it traces a seeded random workload instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		random  = flag.Bool("random", false, "trace a random workload instead of the fixed example")
		flows   = flag.Int("flows", 3, "flows in the random workload")
		packets = flag.Int("packets", 10, "packets per flow in the random workload")
		maxLen  = flag.Int("maxlen", 32, "maximum packet length in the random workload")
		seed    = flag.Uint64("seed", 1, "seed for the random workload")
	)
	flag.Parse()

	if *random {
		// Validate up front: an out-of-range flow count would panic
		// deep inside the harness (metrics and the service log cap
		// flow ids at 254), and a non-positive length would hang the
		// length distribution.
		if *flows < 1 || *flows > 254 {
			fmt.Fprintf(os.Stderr, "errtrace: -flows must be in 1..254 (got %d)\n", *flows)
			flag.Usage()
			os.Exit(2)
		}
		if *maxLen < 1 {
			fmt.Fprintf(os.Stderr, "errtrace: -maxlen must be >= 1 (got %d)\n", *maxLen)
			flag.Usage()
			os.Exit(2)
		}
	}

	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)

	if *random {
		d := harness.New(*flows, e)
		src := rng.New(*seed)
		dist := rng.NewUniform(1, *maxLen)
		for i := 0; i < *packets; i++ {
			for f := 0; f < *flows; f++ {
				d.Arrive(flit.Packet{Flow: f, Length: dist.Draw(src)})
			}
		}
		d.Drain()
	} else {
		// The fixed example from DESIGN.md / the Figure 3 golden test:
		// three backlogged flows with deterministic packet lengths.
		d := harness.New(3, e)
		for _, l := range []int{32, 8, 8, 8, 8} {
			d.Arrive(flit.Packet{Flow: 0, Length: l})
		}
		for _, l := range []int{16, 8, 8, 8, 8} {
			d.Arrive(flit.Packet{Flow: 1, Length: l})
		}
		for _, l := range []int{12, 20, 4, 4, 4} {
			d.Arrive(flit.Packet{Flow: 2, Length: l})
		}
		d.Drain()
	}

	fmt.Println("Figure 3 — rounds of an Elastic Round Robin execution")
	fmt.Println("A_i(r) = 1 + MaxSC(r-1) - SC_i(r-1);  SC_i(r) = Sent_i(r) - A_i(r)")
	fmt.Println()
	if err := trace.WriteRecorderTable(os.Stdout, rec); err != nil {
		fmt.Fprintf(os.Stderr, "errtrace: %v\n", err)
		os.Exit(1)
	}
}
