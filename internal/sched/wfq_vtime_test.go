package sched_test

import (
	"math"
	"testing"

	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/sched"
)

// TestWFQExactVirtualTime pins the fluid breakpoint arithmetic: two
// equal-weight flows arrive at t=0 with 2- and 10-flit packets. In
// fluid GPS both are served at rate 1/2, so V advances at 1/2 until
// the 2-flit packet fluid-departs at V=2 (real time 4), then at rate
// 1 until V=10 (real time 12).
func TestWFQExactVirtualTime(t *testing.T) {
	w := sched.NewWFQ(nil)
	d := harness.New(2, w)
	d.Arrive(flit.Packet{Flow: 0, Length: 2})
	d.Arrive(flit.Packet{Flow: 1, Length: 10})

	// Serve both packets: real time advances by the served cost
	// (2 + 10 = 12 cycles). The harness feeds SetNow only at arrival
	// instants, so advance the clock explicitly before reading V.
	d.Drain()
	w.SetNow(12)
	// advance(12): 4 real cycles to V=2 (rate 1/2), then 8 more to
	// V=10 (rate 1). Exactly 12 -> V = 10.
	if v := w.VirtualTime(); math.Abs(v-10) > 1e-9 {
		t.Errorf("V = %v, want exactly 10 (breakpoint at V=2, real 4)", v)
	}

	// A one-term approximation (V += L/W per service) would have
	// produced V = 2/2 + 10/1 = 11; the exact value matters for tag
	// assignment of the next arrival.
	d.Arrive(flit.Packet{Flow: 0, Length: 4})
	d.Arrive(flit.Packet{Flow: 1, Length: 4})
	// Both start tags are max(V=10, lastFin) = 10 except flow 1 whose
	// lastFin is 10 too; finish tags equal (14) -> tie-break by flow
	// id: flow 0 first.
	if p := d.ServeOne(); p.Flow != 0 {
		t.Errorf("tie-break served flow %d first", p.Flow)
	}
}

// TestWFQIdleFreezesVirtualTime: with the fluid system drained, V
// stays put across idle real time.
func TestWFQIdleFreezesVirtualTime(t *testing.T) {
	w := sched.NewWFQ(nil)
	d := harness.New(1, w)
	d.Arrive(flit.Packet{Flow: 0, Length: 6})
	d.Drain()
	w.SetNow(6)
	v1 := w.VirtualTime()
	if v1 != 6 {
		t.Fatalf("V after draining a lone 6-flit packet = %v, want 6", v1)
	}
	w.SetNow(10_000) // long idle gap
	if v2 := w.VirtualTime(); v2 != v1 {
		t.Errorf("V moved during idle: %v -> %v", v1, v2)
	}
}
