package repro

// Steady-state allocation gates for the simulation hot paths (see
// DESIGN.md §9): after warm-up, a cycle of the single-server engine
// and of the wormhole substrates must not allocate. The same
// quantities are recorded as allocs/op in BENCH_hotpath.json and
// checked in CI, but these tests fail locally and under -race without
// any benchmark tooling.

import (
	"testing"

	"repro/internal/engine"
)

func TestEngineCycleAllocsZero(t *testing.T) {
	e, err := engine.NewEngine(benchERRConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4096)
	if got := testing.AllocsPerRun(200, func() { e.Run(1) }); got != 0 {
		t.Errorf("engine cycle allocates %.1f times in steady state, want 0", got)
	}
}
