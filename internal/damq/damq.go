// Package damq implements a Dynamically Allocated Multi-Queue buffer
// (Tamir & Frazier, IEEE ToC 1992) — the buffer organisation the
// paper alludes to when it notes that "a queue may not be the same
// thing as a buffer since a single buffer can implement multiple
// logical queues". One physical pool of flit slots is shared by
// several logical FIFO queues (one per virtual channel); each queue
// is a linked list threaded through the pool, and a configurable
// per-queue reservation guarantees forward progress (and keeps VC
// deadlock-avoidance schemes sound) even when one queue hogs the
// shared space.
//
// All operations are O(1): the free list and the per-queue lists are
// index-linked arrays, exactly as in the hardware design.
package damq

import (
	"fmt"

	"repro/internal/flit"
)

// slot is one buffer entry.
type slot struct {
	f    flit.Flit
	meta int64 // caller-supplied tag (arrival cycle in the router)
	next int   // next slot index in the same list, -1 for none
}

// Buffer is a DAMQ: Total slots shared by Queues logical FIFOs with
// Reserve slots guaranteed to each queue.
type Buffer struct {
	slots   []slot
	free    int // head of the free list
	nfree   int
	head    []int // per-queue head slot, -1 when empty
	tail    []int
	count   []int // per-queue occupancy
	reserve int
	shared  int // slots that are not part of any reservation
	// sharedUsed counts slots drawn from the shared region.
	sharedUsed int
	// cap limits any single queue's occupancy (0 = unlimited). Caps
	// prevent buffer hogging: without one, a blocked wormhole worm can
	// absorb the entire shared region and starve the other queues,
	// which under congested traffic makes sharing *worse* than a
	// static partition.
	cap int
}

// New returns a DAMQ of total slots shared by queues logical queues,
// each with reserve guaranteed slots. It panics if the reservations
// exceed the total.
func New(total, queues, reserve int) *Buffer {
	if total < 1 || queues < 1 || reserve < 0 {
		panic("damq: invalid parameters")
	}
	if queues*reserve > total {
		panic(fmt.Sprintf("damq: reservations %d*%d exceed total %d", queues, reserve, total))
	}
	b := &Buffer{
		slots:   make([]slot, total),
		free:    0,
		nfree:   total,
		head:    make([]int, queues),
		tail:    make([]int, queues),
		count:   make([]int, queues),
		reserve: reserve,
		shared:  total - queues*reserve,
	}
	for i := range b.slots {
		b.slots[i].next = i + 1
	}
	b.slots[total-1].next = -1
	for q := range b.head {
		b.head[q] = -1
		b.tail[q] = -1
	}
	return b
}

// Total returns the pool size in slots.
func (b *Buffer) Total() int { return len(b.slots) }

// Queues returns the number of logical queues.
func (b *Buffer) Queues() int { return len(b.head) }

// Len returns the occupancy of queue q.
func (b *Buffer) Len(q int) int { return b.count[q] }

// Empty reports whether queue q holds no flits.
func (b *Buffer) Empty(q int) bool { return b.count[q] == 0 }

// Free returns the number of unoccupied slots in the pool.
func (b *Buffer) Free() int { return b.nfree }

// SetCap limits any single queue's occupancy to n slots (0 removes
// the limit). The cap must be at least the reservation.
func (b *Buffer) SetCap(n int) {
	if n != 0 && n < b.reserve {
		panic("damq: cap below the per-queue reservation")
	}
	b.cap = n
}

// CanAccept reports whether queue q may accept one more flit: either
// q has unused reserved slots, or the shared region has space — and
// in both cases the queue is below its occupancy cap.
func (b *Buffer) CanAccept(q int) bool {
	if b.cap != 0 && b.count[q] >= b.cap {
		return false
	}
	if b.count[q] < b.reserve {
		return true
	}
	return b.sharedUsed < b.shared
}

// SpaceFor returns the number of flits queue q could accept right
// now: its unused reservation plus the free shared region, clipped
// by the occupancy cap.
func (b *Buffer) SpaceFor(q int) int {
	space := b.shared - b.sharedUsed
	if r := b.reserve - b.count[q]; r > 0 {
		space += r
	}
	if b.cap != 0 {
		if headroom := b.cap - b.count[q]; headroom < space {
			space = headroom
		}
	}
	if space < 0 {
		return 0
	}
	return space
}

// Push appends a flit (with caller meta) to queue q, reporting
// whether it was accepted under the reservation policy.
func (b *Buffer) Push(q int, f flit.Flit, meta int64) bool {
	if !b.CanAccept(q) {
		return false
	}
	if b.free == -1 {
		// CanAccept guaranteed space, so the free list cannot be
		// empty; this is an internal-consistency panic.
		panic("damq: free list empty despite CanAccept")
	}
	if b.count[q] >= b.reserve {
		b.sharedUsed++
	}
	i := b.free
	b.free = b.slots[i].next
	b.nfree--
	b.slots[i] = slot{f: f, meta: meta, next: -1}
	if b.tail[q] == -1 {
		b.head[q] = i
	} else {
		b.slots[b.tail[q]].next = i
	}
	b.tail[q] = i
	b.count[q]++
	return true
}

// Pop removes and returns the head flit of queue q with its meta.
// It panics if the queue is empty.
func (b *Buffer) Pop(q int) (flit.Flit, int64) {
	i := b.head[q]
	if i == -1 {
		panic("damq: Pop from empty queue")
	}
	s := b.slots[i]
	b.head[q] = s.next
	if b.head[q] == -1 {
		b.tail[q] = -1
	}
	b.count[q]--
	if b.count[q] >= b.reserve {
		// The slot being released was accounted to the shared region.
		b.sharedUsed--
	}
	b.slots[i] = slot{next: b.free}
	b.free = i
	b.nfree++
	return s.f, s.meta
}

// Peek returns the head flit of queue q with its meta without
// removing it. It panics if the queue is empty.
func (b *Buffer) Peek(q int) (flit.Flit, int64) {
	i := b.head[q]
	if i == -1 {
		panic("damq: Peek on empty queue")
	}
	return b.slots[i].f, b.slots[i].meta
}
