package min

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func testNet(t *testing.T, terminals int) *Network {
	t.Helper()
	net, err := NewOmega(Config{
		Terminals: terminals, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewOmegaValidation(t *testing.T) {
	mk := func() sched.Scheduler { return core.New() }
	for _, n := range []int{0, 2, 3, 6, 12} {
		if _, err := NewOmega(Config{Terminals: n, VCs: 1, BufFlits: 4, NewArb: mk}); err == nil {
			t.Errorf("terminals=%d accepted", n)
		}
	}
	if _, err := NewOmega(Config{Terminals: 8, VCs: 1, BufFlits: 4}); err == nil {
		t.Error("missing arbiter accepted")
	}
}

func TestStagesCount(t *testing.T) {
	if got := testNet(t, 8).Stages(); got != 3 {
		t.Errorf("8 terminals: %d stages, want 3", got)
	}
	if got := testNet(t, 16).Stages(); got != 4 {
		t.Errorf("16 terminals: %d stages, want 4", got)
	}
}

// TestAllPairsDelivery is the wiring oracle: every (src, dst) pair
// must route correctly through the shuffle stages.
func TestAllPairsDelivery(t *testing.T) {
	for _, N := range []int{4, 8, 16} {
		net := testNet(t, N)
		// One at a time, so contention never masks misrouting, and
		// verify each packet arrives at the right terminal.
		for s := 0; s < N; s++ {
			for d := 0; d < N; d++ {
				before := net.sinks[d].Packets
				net.Send(s, d, 3)
				if !net.Drain(1000) {
					t.Fatalf("N=%d: packet %d->%d lost", N, s, d)
				}
				if net.sinks[d].Packets != before+1 {
					t.Fatalf("N=%d: packet %d->%d ejected at the wrong terminal", N, s, d)
				}
			}
		}
	}
}

func TestUniformLoadDrains(t *testing.T) {
	net := testNet(t, 8)
	src := rng.New(3)
	injected := 0
	for c := 0; c < 20000; c++ {
		for term := 0; term < 8; term++ {
			if net.PendingAt(term) < 2 && src.Bernoulli(0.03) {
				d := src.Intn(7)
				if d >= term {
					d++
				}
				net.Send(term, d, src.IntRange(1, 8))
				injected++
			}
		}
		net.Step()
	}
	if !net.Drain(100000) {
		t.Fatalf("omega net stuck; %d in flight", net.InFlight())
	}
	var delivered int64
	for s := 0; s < 8; s++ {
		delivered += net.DeliveredPackets[s]
	}
	if int(delivered) != injected {
		t.Fatalf("injected %d, delivered %d", injected, delivered)
	}
	if net.Latency.N() != delivered {
		t.Error("latency samples != delivered packets")
	}
}

// TestHotspotFairnessERRvsPBRR: all terminals flood terminal 0; one
// source sends 8x-long packets. The network is a binary merge tree
// into the hotspot, so shares are positional (a source that merges
// later gets a larger share — the multi-hop parking-lot effect), but
// sources at the same tree depth must get equal shares under ERR
// regardless of packet length. Under PBRR the long-packet source
// beats its same-depth peers by several times.
func TestHotspotFairnessERRvsPBRR(t *testing.T) {
	run := func(mk func() sched.Scheduler) (long, peer int64) {
		net, err := NewOmega(Config{
			Terminals: 8, VCs: 2, BufFlits: 8, NewArb: mk,
		})
		if err != nil {
			t.Fatal(err)
		}
		const longSender = 3
		const peerSender = 2 // same merge-tree depth as 3 (1/8 share)
		for c := 0; c < 60000; c++ {
			for term := 1; term < 8; term++ {
				if net.PendingAt(term) < 2 {
					length := 2
					if term == longSender {
						length = 16
					}
					net.Send(term, 0, length)
				}
			}
			net.Step()
		}
		return net.DeliveredFlits[longSender], net.DeliveredFlits[peerSender]
	}
	longERR, peerERR := run(func() sched.Scheduler { return core.New() })
	longPBRR, peerPBRR := run(func() sched.Scheduler { return sched.NewPBRR() })
	rERR := float64(longERR) / float64(peerERR)
	rPBRR := float64(longPBRR) / float64(peerPBRR)
	// ERR stays near 1; the small residual favours long packets
	// because they cross fewer per-packet grant bubbles.
	if rERR > 1.3 {
		t.Errorf("ERR long/peer ratio %.2f, want ~1", rERR)
	}
	if rPBRR < 4 {
		t.Errorf("PBRR long/peer ratio %.2f, want >> 1", rPBRR)
	}
}

func TestSendValidation(t *testing.T) {
	net := testNet(t, 4)
	for name, fn := range map[string]func(){
		"src": func() { net.Send(-1, 0, 1) },
		"dst": func() { net.Send(0, 4, 1) },
		"len": func() { net.Send(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad %s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestSpreadOfDelivered(t *testing.T) {
	net := testNet(t, 4)
	net.DeliveredFlits[1] = 10
	net.DeliveredFlits[2] = 4
	if got := net.SpreadOfDelivered([]int{1, 2}); got != 6 {
		t.Errorf("spread = %d, want 6", got)
	}
	if got := net.SpreadOfDelivered(nil); got != 0 {
		t.Errorf("empty spread = %d", got)
	}
}
