package noc

import (
	"runtime"
	"testing"

	"repro/internal/flit"
)

// TestDrainCountsQueuedPackets pins the InFlight/Drain accounting
// contract: packets sitting in an injection front-end queue (more
// than one node can have injected yet) are in flight, so Drain must
// not report success while any remain queued.
func TestDrainCountsQueuedPackets(t *testing.T) {
	m := testMesh(t, 2)
	const packets = 50
	for i := 0; i < packets; i++ {
		m.Send(0, 3, 4) // 200 flits from one node: >= 200 cycles just to inject
	}
	if got := m.InFlight(); got != packets {
		t.Fatalf("InFlight = %d immediately after queueing %d packets", got, packets)
	}
	if got := m.PendingAt(0); got != packets {
		t.Fatalf("PendingAt(0) = %d, want %d", got, packets)
	}
	if m.Drain(20) {
		t.Fatal("Drain(20) reported success with most packets still queued")
	}
	if m.InFlight() == 0 {
		t.Fatal("InFlight dropped to 0 with traffic still queued")
	}
	if !m.Drain(10000) {
		t.Fatalf("mesh did not drain; %d in flight", m.InFlight())
	}
	if m.DeliveredPackets[0] != packets {
		t.Fatalf("delivered %d of %d packets", m.DeliveredPackets[0], packets)
	}
}

// seqKindFault corrupts exactly one flit (by sequence number) of every
// packet on the link it is installed on, flipping fromKind to toKind —
// a surgical version of the fault package's corrupt directive, so the
// test controls exactly which wire fault occurs.
type seqKindFault struct {
	seq              int
	fromKind, toKind flit.Kind
}

func (c *seqKindFault) Stalled(int64) bool         { return false }
func (c *seqKindFault) Drop(flit.Flit, int64) bool { return false }
func (c *seqKindFault) Corrupt(f flit.Flit, _ int64) flit.Flit {
	if f.Seq == c.seq && f.Kind == c.fromKind {
		f.Kind = c.toKind
	}
	return f
}

// TestCorruptedFakeTailDoesNotCompletePacket pins the onTail fix: a
// body flit corrupted into a tail on the ejection link must not
// complete the packet. Pre-fix, the fake tail incremented
// DeliveredPackets, recorded a short latency, and removed the packet
// from the in-flight map — so Drain could report success with the
// rest of the worm still in the network, and the real tail then
// double-counted the packet.
func TestCorruptedFakeTailDoesNotCompletePacket(t *testing.T) {
	m := testMesh(t, 3)
	src, dst := 0, m.Nodes()-1
	const length = 6
	m.Router(dst).SetOutputFault(PortLocal, &seqKindFault{seq: 2, fromKind: flit.Body, toKind: flit.Tail})
	m.Send(src, dst, length)
	if !m.Drain(1000) {
		t.Fatalf("packet did not drain; %d in flight", m.InFlight())
	}
	if got := m.DeliveredPackets[src]; got != 1 {
		t.Fatalf("DeliveredPackets = %d, want 1 (fake tail counted as a completion)", got)
	}
	if m.Latency.N() != 1 {
		t.Fatalf("latency samples = %d, want 1", m.Latency.N())
	}
	// The recorded latency must cover the full packet: at least the
	// 4-hop path plus all 6 flits, which the fake tail at seq 2 could
	// not have reached.
	if m.Latency.Mean() < float64(length+4) {
		t.Errorf("latency %v too small: recorded at the fake tail, not the real one", m.Latency.Mean())
	}
}

// TestCorruptedRealTailKeepsPacketInFlight is the dual: when the true
// tail is corrupted into a body, the packet never completes, and
// Drain must say so rather than claim success.
func TestCorruptedRealTailKeepsPacketInFlight(t *testing.T) {
	m := testMesh(t, 3)
	src, dst := 0, m.Nodes()-1
	const length = 6
	m.Router(dst).SetOutputFault(PortLocal, &seqKindFault{seq: length - 1, fromKind: flit.Tail, toKind: flit.Body})
	m.Send(src, dst, length)
	if m.Drain(1000) {
		t.Fatal("Drain reported success though the packet's tail was lost")
	}
	if got := m.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	if got := m.DeliveredPackets[src]; got != 0 {
		t.Fatalf("DeliveredPackets = %d, want 0", got)
	}
}

// TestInjectionQueueReleasesBurstMemory pins the injection-queue
// memory-retention fix. Pre-fix, the per-node queue was a slice
// popped with q = q[1:], which keeps the entire backing array — every
// packet of the run's largest burst — reachable for the life of the
// mesh. The test absorbs one large burst per node (so the in-flight
// map's bucket high-water is already paid before the baseline is
// taken), then asserts that a second, equal burst leaves no lasting
// heap growth and that the drained queues shrank back down.
func TestInjectionQueueReleasesBurstMemory(t *testing.T) {
	m := testMesh(t, 2)
	const burst = 1 << 18
	send := func(src, dst int) {
		for i := 0; i < burst; i++ {
			m.Send(src, dst, 1)
		}
		if !m.Drain(4 * burst) {
			t.Fatalf("burst from %d did not drain; %d in flight", src, m.InFlight())
		}
	}
	send(0, 3)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	send(1, 2)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 6<<20 {
		t.Errorf("live heap grew %d bytes across a drained %d-packet burst; injection queue retaining its backing array", delta, burst)
	}
	for node := 0; node <= 1; node++ {
		if c := m.inj[node].queue.Cap(); c > 256 {
			t.Errorf("node %d queue capacity %d after drain, want shrunk (burst peak %d)", node, c, burst)
		}
	}
}
