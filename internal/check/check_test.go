package check_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/obs"
)

func TestWatchdog(t *testing.T) {
	wd := check.NewWatchdog(10)
	if wd.Expired(5, 1) {
		t.Fatal("tripped before the budget elapsed")
	}
	if !wd.Expired(10, 1) {
		t.Fatal("did not trip after 10 silent cycles with backlog")
	}
	if !wd.Tripped() {
		t.Fatal("Tripped() false after expiring")
	}
	if wd.Expired(100, 1) {
		t.Fatal("Expired returned true twice; the caller would report twice")
	}
}

func TestWatchdogEmptySystemResetsClock(t *testing.T) {
	wd := check.NewWatchdog(10)
	// An empty system cannot be wedged: backlog 0 resets the clock.
	if wd.Expired(9, 0) {
		t.Fatal("tripped with no backlog")
	}
	if wd.Expired(18, 1) {
		t.Fatal("tripped 9 cycles after the backlog-0 reset")
	}
	if !wd.Expired(19, 1) {
		t.Fatal("did not trip 10 cycles after the reset")
	}
}

func TestWatchdogProgressResetsClock(t *testing.T) {
	wd := check.NewWatchdog(10)
	for c := int64(0); c < 100; c++ {
		if c%5 == 0 {
			wd.Progress(c) // a flit moves every 5 cycles
		}
		if wd.Expired(c, 3) {
			t.Fatalf("tripped at cycle %d despite steady progress", c)
		}
	}
}

func TestWatchdogRejectsNonPositiveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWatchdog(0) did not panic")
		}
	}()
	check.NewWatchdog(0)
}

// observeAll feeds a flit slice to a stream validator, one cycle per
// flit starting at base.
func observeAll(s *check.FlitStream, fs []flit.Flit, base int64) {
	for i, f := range fs {
		s.Observe(f, base+int64(i))
	}
}

func TestFlitStreamAcceptsWellFormedTraffic(t *testing.T) {
	rec := check.NewRecorder()
	s := check.NewFlitStream(rec, "sink")
	// Two flows' packets legitimately interleave on one link; within a
	// flow each packet is contiguous.
	a := flit.Packet{Flow: 0, Length: 3, ID: 1}.Flits()
	b := flit.Packet{Flow: 1, Length: 2, ID: 2}.Flits()
	seq := []flit.Flit{a[0], b[0], a[1], b[1], a[2]}
	observeAll(s, seq, 0)
	observeAll(s, flit.Packet{Flow: 0, Length: 1, ID: 3}.Flits(), 10)
	if err := rec.Err(); err != nil {
		t.Fatalf("well-formed stream reported: %v", err)
	}
	if n := s.OpenPackets(); n != 0 {
		t.Errorf("OpenPackets = %d after clean close, want 0", n)
	}
}

func TestFlitStreamDetectsMalformations(t *testing.T) {
	cases := []struct {
		name string
		feed func(s *check.FlitStream)
		frag string
	}{
		{
			"duphead", func(s *check.FlitStream) {
				observeAll(s, fault.MalformedFlits(fault.MalformedDupHead, 0, 6, 1), 0)
			},
			"duplicate head / missing tail",
		},
		{
			"notail-then-next-head", func(s *check.FlitStream) {
				observeAll(s, fault.MalformedFlits(fault.MalformedNoTail, 0, 4, 1), 0)
				observeAll(s, flit.Packet{Flow: 0, Length: 2, ID: 2}.Flits(), 10)
			},
			"duplicate head / missing tail",
		},
		{
			"negative-flow", func(s *check.FlitStream) {
				observeAll(s, fault.MalformedFlits(fault.MalformedBadFlow, 0, 4, 1), 0)
			},
			"negative flow id",
		},
		{
			"body-without-head", func(s *check.FlitStream) {
				s.Observe(flit.Flit{Flow: 0, Kind: flit.Body, Seq: 1, PktID: 9}, 5)
			},
			"without a head",
		},
		{
			"same-flow-interleave", func(s *check.FlitStream) {
				a := flit.Packet{Flow: 0, Length: 3, ID: 1}.Flits()
				b := flit.Packet{Flow: 0, Length: 3, ID: 2}.Flits()
				observeAll(s, []flit.Flit{a[0], b[1]}, 0)
			},
			"interleaved",
		},
		{
			"out-of-order", func(s *check.FlitStream) {
				p := flit.Packet{Flow: 0, Length: 4, ID: 1}.Flits()
				observeAll(s, []flit.Flit{p[0], p[2]}, 0)
			},
			"out of order",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := check.NewRecorder()
			s := check.NewFlitStream(rec, "sink")
			c.feed(s)
			err := rec.Err()
			if err == nil {
				t.Fatal("malformation went undetected")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not mention %q", err, c.frag)
			}
			for _, v := range check.AsViolations(err) {
				if v.Invariant != check.InvStream {
					t.Errorf("violation invariant = %s, want %s", v.Invariant, check.InvStream)
				}
				if v.Cycle < 0 {
					t.Errorf("violation not cycle-stamped: %+v", v)
				}
			}
		})
	}
}

func TestFlitStreamOpenPacketsAfterLostTail(t *testing.T) {
	rec := check.NewRecorder()
	s := check.NewFlitStream(rec, "sink")
	observeAll(s, fault.MalformedFlits(fault.MalformedNoTail, 0, 4, 1), 0)
	if n := s.OpenPackets(); n != 1 {
		t.Errorf("OpenPackets = %d after a lost tail, want 1", n)
	}
}

func TestRecorderCapAndCounter(t *testing.T) {
	reg := obs.NewRegistry()
	rec := check.NewRecorder().Register(reg)
	s := check.NewFlitStream(rec, "sink")
	const n = check.DefaultMaxViolations + 4
	for i := 0; i < n; i++ {
		// Each body-without-head is one violation.
		s.Observe(flit.Flit{Flow: 0, Kind: flit.Body, Seq: 1, PktID: int64(i)}, int64(i))
	}
	if got := rec.Count(); got != n {
		t.Errorf("Count() = %d, want %d (cap counts, does not drop)", got, n)
	}
	if got := len(rec.Violations()); got != check.DefaultMaxViolations {
		t.Errorf("structured violations = %d, want the cap %d", got, check.DefaultMaxViolations)
	}
	if got := reg.Counter("check.violations").Value(); got != n {
		t.Errorf("registry counter = %d, want %d", got, n)
	}
	err := rec.Err()
	if !strings.Contains(err.Error(), "and 4 more") {
		t.Errorf("aggregate error does not mention the %d dropped: %q", 4, err)
	}
	if got := len(check.AsViolations(err)); got != check.DefaultMaxViolations {
		t.Errorf("AsViolations = %d entries, want %d", got, check.DefaultMaxViolations)
	}
}

func TestAsViolations(t *testing.T) {
	if vs := check.AsViolations(errors.New("plain")); vs != nil {
		t.Errorf("AsViolations(plain error) = %v, want nil", vs)
	}
	v := &check.Violation{Cycle: 3, Invariant: check.InvFIFO, Flow: 1, Detail: "x"}
	if vs := check.AsViolations(v); len(vs) != 1 || vs[0] != v {
		t.Errorf("AsViolations(*Violation) = %v, want the violation itself", vs)
	}
}
