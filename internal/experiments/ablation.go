package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// AblationOccupancyParams parameterises the occupancy ablation: two
// flows with identical lengths contend for an output; flow 1's
// packets suffer one downstream stall cycle per flit (its occupancy
// is twice its length). ERR bills occupancy and throttles the
// congested flow to an equal share of *output time*; DRR can only
// budget flits, so the congested flow captures twice the output time.
// This quantifies the paper's core argument for why DRR cannot serve
// a wormhole switch.
type AblationOccupancyParams struct {
	Cycles int64
	Seed   uint64
}

// DefaultAblationOccupancyParams returns defaults.
func DefaultAblationOccupancyParams() AblationOccupancyParams {
	return AblationOccupancyParams{Cycles: 1_000_000, Seed: 1}
}

// AblationOccupancyResult reports, per discipline, the share of
// output cycles each flow occupied and the occupancy fairness
// measure.
type AblationOccupancyResult struct {
	Params      AblationOccupancyParams
	Disciplines []string
	// OccupancyShare[d][f] is the fraction of busy output cycles flow
	// f held under discipline d.
	OccupancyShare [][]float64
	// OccFM[d] is the fairness measure in occupancy cycles.
	OccFM []int64
}

// RunAblationOccupancy runs the ablation.
func RunAblationOccupancy(p AblationOccupancyParams) (*AblationOccupancyResult, error) {
	mks := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"ERR", func() sched.Scheduler { return core.New() }},
		{"DRR", func() sched.Scheduler { return sched.NewDRR(64, nil) }},
	}
	res := &AblationOccupancyResult{Params: p}
	for _, m := range mks {
		src := rng.New(p.Seed)
		dist := rng.NewUniform(1, 32)
		occ := make([]int64, 2)
		ft := metrics.NewFairnessTracker(2)
		e, err := engine.NewEngine(engine.Config{
			Flows:     2,
			Scheduler: m.mk(),
			Source: traffic.NewMulti(
				traffic.NewBacklogged(0, 4, dist, src.Split()),
				traffic.NewBacklogged(1, 4, dist, src.Split()),
			),
			Stall: engine.StallFunc(func(flow int) int {
				if flow == 1 {
					return 1
				}
				return 0
			}),
			AllowLengthAwareStalls: true,
			OnFlit: func(cycle int64, flow int) {
				occ[flow]++
				ft.Serve(flow, 1)
			},
			// Stall cycles are occupancy without service; they belong
			// to the flow holding the output.
			OnStall: func(cycle int64, flow int) {
				occ[flow]++
				ft.Serve(flow, 1)
			},
		})
		if err != nil {
			return nil, err
		}
		e.Run(p.Cycles)
		total := float64(occ[0] + occ[1])
		res.Disciplines = append(res.Disciplines, m.name)
		res.OccupancyShare = append(res.OccupancyShare, []float64{
			float64(occ[0]) / total, float64(occ[1]) / total,
		})
		res.OccFM = append(res.OccFM, ft.FM())
	}
	return res, nil
}

// Render writes the ablation table.
func (r *AblationOccupancyResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Occupancy ablation — flow 1 suffers 2x downstream stalls")
	fmt.Fprintln(tw, "Discipline\tflow0 share\tflow1 share\toccupancy FM (cycles)")
	for i, d := range r.Disciplines {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\n",
			d, r.OccupancyShare[i][0], r.OccupancyShare[i][1], r.OccFM[i])
	}
	return tw.Flush()
}

// AblationSurplusResetParams parameterises the surplus-reset
// ablation: Figure 1 resets a drained flow's surplus count; the
// ablated variant keeps it, so a flow that overshot long ago is still
// punished when it reactivates. The workload makes the effect
// measurable and deterministic: two always-backlogged competitors and
// one periodic flow that injects a batch of large packets, drains
// completely (resetting — or keeping — its SC), then idles until the
// next batch. The kept surplus shrinks the flow's first allowance of
// every batch, slowing each batch's drain by a small, systematic
// amount.
type AblationSurplusResetParams struct {
	Cycles int64
	// Period is the batch injection period in cycles; BatchPackets
	// large packets of BatchLen flits arrive at the start of each
	// period.
	Period       int64
	BatchPackets int
	BatchLen     int
	Seed         uint64
}

// DefaultAblationSurplusResetParams returns defaults.
func DefaultAblationSurplusResetParams() AblationSurplusResetParams {
	return AblationSurplusResetParams{
		Cycles:       500_000,
		Period:       5_000,
		BatchPackets: 8,
		BatchLen:     64,
		Seed:         3,
	}
}

// batchSource emits BatchPackets packets of BatchLen flits for flow
// at the start of every period.
type batchSource struct {
	flow, packets, length int
	period                int64
	buf                   []flit.Packet
}

// Arrivals implements traffic.Source.
func (b *batchSource) Arrivals(cycle int64, q traffic.QueueView) []flit.Packet {
	if cycle%b.period != 0 {
		return nil
	}
	b.buf = b.buf[:0]
	for i := 0; i < b.packets; i++ {
		b.buf = append(b.buf, flit.Packet{Flow: b.flow, Length: b.length})
	}
	return b.buf
}

// AblationSurplusResetResult reports the batch flow's mean packet
// delay under the paper's reset rule and under the ablated keep rule.
type AblationSurplusResetResult struct {
	Params AblationSurplusResetParams
	// DelayReset and DelayKeep are the batch flow's mean packet
	// delays (cycles).
	DelayReset, DelayKeep float64
}

// RunAblationSurplusReset runs both variants on the same workload.
func RunAblationSurplusReset(p AblationSurplusResetParams) (*AblationSurplusResetResult, error) {
	run := func(keep bool) (float64, error) {
		s := core.New()
		s.SetKeepSurplusOnDrain(keep)
		src := rng.New(p.Seed)
		sim, err := RunSim(SimConfig{
			Flows:     3,
			Scheduler: s,
			Source: traffic.NewMulti(
				traffic.NewBacklogged(0, 4, rng.NewUniform(8, 24), src.Split()),
				traffic.NewBacklogged(1, 4, rng.NewUniform(8, 24), src.Split()),
				&batchSource{flow: 2, packets: p.BatchPackets, length: p.BatchLen, period: p.Period},
			),
			Cycles: p.Cycles,
		})
		if err != nil {
			return 0, err
		}
		return sim.Delays.MeanOf(2), nil
	}
	reset, err := run(false)
	if err != nil {
		return nil, err
	}
	keep, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblationSurplusResetResult{Params: p, DelayReset: reset, DelayKeep: keep}, nil
}

// Render writes the comparison.
func (r *AblationSurplusResetResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"Surplus-reset ablation — bursty flow mean delay:\n  reset on drain (paper): %.1f cycles\n  keep on drain (ablated): %.1f cycles\n",
		r.DelayReset, r.DelayKeep)
	return err
}
