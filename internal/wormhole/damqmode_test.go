package wormhole

import (
	"testing"

	"repro/internal/flit"
)

// Tests of the shared-buffer (DAMQ) input mode and its stop/go flow
// control.

func damqConfig(ports, vcs, reserve, shared int) Config {
	c := testConfig(ports, vcs, reserve)
	c.SharedBufFlits = shared
	return c
}

func TestDAMQConfigValidation(t *testing.T) {
	// Shared buffer smaller than the reservations is rejected.
	if _, err := NewRouter(0, damqConfig(2, 2, 4, 6)); err == nil {
		t.Error("undersized shared buffer accepted")
	}
	if _, err := NewRouter(0, damqConfig(2, 2, 2, 8)); err != nil {
		t.Errorf("valid DAMQ config rejected: %v", err)
	}
}

func TestDAMQRouterForwardsPackets(t *testing.T) {
	r, err := NewRouter(0, damqConfig(3, 2, 1, 12))
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{}
	ConnectEndpoint(r, 0, sink)
	injectPacket(t, r, 1, 0, flit.Packet{Flow: 1, Length: 5, Dst: 0}, 0)
	injectPacket(t, r, 2, 1, flit.Packet{Flow: 2, Length: 5, Dst: 0}, 0)
	for c := int64(0); c < 30; c++ {
		r.Step(c)
	}
	if sink.Packets != 2 || sink.Flits != 10 {
		t.Fatalf("delivered %d packets / %d flits, want 2/10", sink.Packets, sink.Flits)
	}
}

func TestDAMQAbsorbsBurstBeyondStaticPartition(t *testing.T) {
	// With reserve 1 and shared 12 across 2 VCs, a single VC can
	// buffer far more than its static share. InputFree must reflect
	// the shared headroom.
	r, err := NewRouter(0, damqConfig(2, 2, 1, 12))
	if err != nil {
		t.Fatal(err)
	}
	if free := r.InputFree(1, 0); free != 11 { // 1 reserved + 10 shared
		t.Fatalf("InputFree = %d, want 11", free)
	}
	n := 0
	for r.Inject(1, 0, flit.Flit{Flow: 1, Kind: flit.Body, Seq: n}, 0) {
		n++
	}
	if n != 11 {
		t.Fatalf("single VC buffered %d flits, want 11 (1 reserved + 10 shared)", n)
	}
	// The other VC's reservation survives.
	if !r.Inject(1, 1, flit.Flit{Flow: 2, Kind: flit.Body}, 0) {
		t.Fatal("other VC denied its reserved slot")
	}
}

func TestGatedLinkBetweenRouters(t *testing.T) {
	// r0 (static) feeds r1 (DAMQ): the link must use stop/go gating
	// and never overflow the shared buffer.
	cfg0 := testConfig(3, 2, 8)
	cfg0.Route = func(dst int) int {
		if dst == 99 {
			return 1
		}
		return dst
	}
	r0, err := NewRouter(0, cfg0)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := damqConfig(3, 2, 1, 6)
	// At r1 everything ejects locally.
	cfg1.Route = func(dst int) int { return 0 }
	r1, err := NewRouter(1, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	// dst 99 routes out of r0 port 1 into r1 port 1.
	Connect(r0, 1, r1, 1)
	ConnectEndpoint(r0, 0, &Sink{})
	ConnectEndpoint(r0, 2, &Sink{})
	sink := &Sink{}
	ConnectEndpoint(r1, 0, sink)
	ConnectEndpoint(r1, 2, &Sink{})

	// Several packets on both VCs; everything must arrive despite the
	// small shared buffer at r1.
	want := int64(0)
	for i := 0; i < 4; i++ {
		for vc := 0; vc < 2; vc++ {
			if r0.InputFree(2, vc) >= 5 {
				injectPacket(t, r0, 2, vc, flit.Packet{Flow: vc, Length: 5, Dst: 99}, 0)
				want++
			}
		}
	}
	for c := int64(0); c < 200; c++ {
		r0.Step(c)
		r1.Step(c)
	}
	if sink.Packets != want {
		t.Fatalf("delivered %d packets, want %d", sink.Packets, want)
	}
}

func TestDAMQStressAllDelivered(t *testing.T) {
	// Randomised stress in DAMQ mode mirroring the static-mode stress
	// test: no flit loss, no deadlock.
	r, err := NewRouter(0, damqConfig(5, 2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	for o := 0; o < 2; o++ {
		s := &Sink{}
		s.OnTail = func(f flit.Flit, cycle int64) { delivered++ }
		ConnectEndpoint(r, o, s)
	}
	for p := 2; p < 5; p++ {
		ConnectEndpoint(r, p, &Sink{})
	}
	type pending struct {
		flits []flit.Flit
		next  int
	}
	var pend [5][2]*pending
	injected := int64(0)
	step := func(c int64, create bool) {
		for in := 2; in < 5; in++ {
			for vc := 0; vc < 2; vc++ {
				pd := pend[in][vc]
				if pd == nil && create && (c+int64(in)*3+int64(vc))%17 == 0 {
					p := flit.Packet{
						Flow:   in*2 + vc,
						Length: int(c%9) + 1,
						Dst:    int(c) % 2,
					}
					pd = &pending{flits: p.Flits()}
					pend[in][vc] = pd
					injected++
				}
				if pd != nil && r.Inject(in, vc, pd.flits[pd.next], c) {
					pd.next++
					if pd.next == len(pd.flits) {
						pend[in][vc] = nil
					}
				}
			}
		}
		r.Step(c)
	}
	for c := int64(0); c < 20000; c++ {
		step(c, true)
	}
	for c := int64(20000); c < 30000; c++ {
		step(c, false)
	}
	if delivered != injected {
		t.Errorf("injected %d, delivered %d", injected, delivered)
	}
}
