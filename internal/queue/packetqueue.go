// Package queue provides the O(1) data structures used by the
// round-robin schedulers and the wormhole substrates: a growable ring
// buffer of packets, a flit FIFO, and the ActiveList of flow ids that
// the ERR and DRR disciplines cycle over.
package queue

import (
	"fmt"

	"repro/internal/flit"
)

// PacketQueue is a FIFO of packets backed by a growable ring buffer.
// The zero value is an empty queue ready to use. All operations are
// amortised O(1).
type PacketQueue struct {
	buf        []flit.Packet
	head, size int
	// flits tracks the total number of flits currently queued, so
	// backlog in flits is available without iteration.
	flits int64
}

// Len returns the number of queued packets.
func (q *PacketQueue) Len() int { return q.size }

// Cap returns the capacity of the backing ring. It grows with bursts
// and shrinks again as they drain (see Pop), so a queue's live heap is
// proportional to its recent occupancy, not its all-time high-water
// mark.
func (q *PacketQueue) Cap() int { return len(q.buf) }

// Empty reports whether the queue holds no packets.
func (q *PacketQueue) Empty() bool { return q.size == 0 }

// FlitBacklog returns the total number of flits across all queued
// packets.
func (q *PacketQueue) FlitBacklog() int64 { return q.flits }

// PushChecked validates the packet and appends it, returning the
// typed flit validation error for malformed packets (zero-length,
// negative flow id) instead of silently accepting them. Injection
// paths that may face malformed traffic use this; Push remains the
// unchecked hot path for packets already validated upstream.
func (q *PacketQueue) PushChecked(p flit.Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	q.Push(p)
	return nil
}

// Push appends a packet to the tail of the queue.
func (q *PacketQueue) Push(p flit.Packet) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = p
	q.size++
	q.flits += int64(p.Length)
}

// shrinkCap is the smallest ring a queue shrinks to; below this the
// saving is not worth the copy.
const shrinkCap = 64

// Pop removes and returns the packet at the head of the queue.
// It panics if the queue is empty.
func (q *PacketQueue) Pop() flit.Packet {
	if q.size == 0 {
		panic("queue: Pop from empty PacketQueue")
	}
	p := q.buf[q.head]
	q.buf[q.head] = flit.Packet{} // release for GC hygiene
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.flits -= int64(p.Length)
	// Shrink the ring once occupancy falls to a quarter of it, so a
	// burst's backing array does not stay live for the rest of the
	// run. Halving at <= 1/4 occupancy keeps the move amortised O(1)
	// and leaves slack against grow/shrink thrash at the boundary.
	if n := len(q.buf); n > shrinkCap && q.size <= n/4 {
		q.resize(n / 2)
	}
	return p
}

// Peek returns the packet at the head of the queue without removing
// it. It panics if the queue is empty.
func (q *PacketQueue) Peek() flit.Packet {
	if q.size == 0 {
		panic("queue: Peek on empty PacketQueue")
	}
	return q.buf[q.head]
}

func (q *PacketQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	q.resize(n)
}

func (q *PacketQueue) resize(n int) {
	nb := make([]flit.Packet, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// String implements fmt.Stringer for debugging.
func (q *PacketQueue) String() string {
	return fmt.Sprintf("PacketQueue{len=%d flits=%d}", q.size, q.flits)
}
