package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fig5Params parameterises the Figure 5 delay experiments: 4 flows, a
// transient congestion burst of BurstCycles during which the total
// input rate exceeds the output rate by the swept intensity, then
// injection halts and the simulation runs until all queues drain.
// Packet delay is measured from enqueue to the dequeue of the last
// flit. As in Figure 4, flow 3 arrives at twice the packet rate and
// flow 2 sends U[1,128]-flit packets while the others send U[1,64].
type Fig5Params struct {
	Flows       int
	BurstCycles int64
	Seed        uint64
	// Intensities are the swept values of (sum of input rates) /
	// (output rate), the paper's x-axis from 1.0 to 1.3.
	Intensities []float64
	// Repeats averages each point over this many seeds.
	Repeats int
	// Workers caps the worker pool running the discipline × intensity
	// × repeat grid (0 = GOMAXPROCS, 1 = serial). The result is
	// byte-identical for every value: each repeat derives its own seed
	// with rng.Derive.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Collector, if set, accumulates registry telemetry from every
	// grid job (see SimConfig.Collector); it never affects the result.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired into every
	// grid job (see SimConfig.Trace); each job becomes one span track.
	Trace *trace.EngineTrace `json:"-"`
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs.
	Robustness
}

// DefaultFig5Params returns the paper's parameters.
func DefaultFig5Params() Fig5Params {
	return Fig5Params{
		Flows:       4,
		BurstCycles: 10_000,
		Seed:        1,
		Intensities: []float64{1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3},
		Repeats:     5,
	}
}

// Fig5Result holds the average packet delay per discipline per
// intensity.
type Fig5Result struct {
	Params      Fig5Params
	Disciplines []string
	// Delay[d][i] is the mean packet delay (cycles) of discipline d
	// at Intensities[i].
	Delay [][]float64
}

// fig5Source builds one burst workload at the given intensity.
func fig5Source(p Fig5Params, intensity float64, seed uint64) traffic.Source {
	src := rng.New(seed)
	// Total flit rate at base packet rate r:
	//   2 * 32.5 r (flows 0, 1) + 64.5 r (flow 2) + 2r * 32.5 (flow 3)
	// = 194.5 r  ==  intensity.
	r := intensity / 194.5
	var sources []traffic.Source
	for f := 0; f < p.Flows; f++ {
		rate := r
		dist := rng.LengthDist(rng.NewUniform(1, 64))
		if f == 2 {
			dist = rng.NewUniform(1, 128)
		}
		if f == 3 {
			rate = 2 * r
		}
		sources = append(sources, traffic.NewBernoulli(f, rate, dist, src.Split()))
	}
	return traffic.NewWindow(traffic.NewMulti(sources...), 0, p.BurstCycles)
}

// RunFig5 sweeps the congestion intensities for ERR and the panel's
// baseline ("a" = FCFS, "b" = PBRR, "all" = both plus DRR and FBRR
// for the near-equality observation in Section 5).
func RunFig5(p Fig5Params, panel string) (*Fig5Result, error) {
	type mk struct {
		name string
		pkt  func() sched.Scheduler
		flit func() sched.FlitScheduler
	}
	mks := []mk{{name: "ERR", pkt: func() sched.Scheduler { return core.New() }}}
	switch panel {
	case "a":
		mks = append(mks, mk{name: "FCFS", pkt: func() sched.Scheduler { return sched.NewFCFS() }})
	case "b":
		mks = append(mks, mk{name: "PBRR", pkt: func() sched.Scheduler { return sched.NewPBRR() }})
	case "all":
		mks = append(mks,
			mk{name: "FCFS", pkt: func() sched.Scheduler { return sched.NewFCFS() }},
			mk{name: "PBRR", pkt: func() sched.Scheduler { return sched.NewPBRR() }},
			mk{name: "DRR", pkt: func() sched.Scheduler { return sched.NewDRR(128, nil) }},
			mk{name: "FBRR", flit: func() sched.FlitScheduler { return sched.NewFBRR() }},
		)
	default:
		return nil, fmt.Errorf("experiments: unknown Figure 5 panel %q", panel)
	}
	repeats := p.Repeats
	if repeats < 1 {
		repeats = 1
	}
	// One job per discipline × intensity × repeat. The seed of a
	// repeat is derived from its repeat label, never from a stream
	// shared across jobs, so every repeat is reproducible in
	// isolation. Disciplines AND intensities deliberately share the
	// per-repeat seed: disciplines must face the identical workload,
	// and common random numbers across the intensity sweep keep the
	// delay curves monotone at modest repeat counts (the arrival
	// pattern is the same draw, only the rate scales).
	type rep struct {
		Mean float64
		OK   bool
	}
	idx := func(d, i, r int) int { return (d*len(p.Intensities)+i)*repeats + r }
	jobs := make([]exec.Job[rep], len(mks)*len(p.Intensities)*repeats)
	for d, m := range mks {
		for i, intensity := range p.Intensities {
			for r := 0; r < repeats; r++ {
				m, i, intensity, r := m, i, intensity, r
				job := idx(d, i, r)
				jobs[job] = func() (rep, error) {
					cfg := SimConfig{
						Flows:      p.Flows,
						Source:     fig5Source(p, intensity, rng.Derive(p.Seed, uint64(r))),
						Cycles:     p.BurstCycles,
						DrainAfter: true,
						Collector:  p.Collector,
						Trace:      p.Trace,
						FaultSpec:  p.Faults,
						FaultSeed:  p.faultSeed(p.Seed, job),
						Check:      p.Check,
					}
					if m.pkt != nil {
						cfg.Scheduler = m.pkt()
					} else {
						cfg.FlitSched = m.flit()
					}
					sim, err := RunSim(cfg)
					if err != nil {
						return rep{}, err
					}
					if sim.Delays.Count() == 0 {
						return rep{}, nil
					}
					return rep{Mean: sim.Delays.Mean(), OK: true}, nil
				}
			}
		}
	}
	opts, closeCP, err := gridOptions("fig5", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	reps, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Params: p}
	for d, m := range mks {
		delays := make([]float64, len(p.Intensities))
		for i := range p.Intensities {
			sum, count := 0.0, 0.0
			for r := 0; r < repeats; r++ {
				if v := reps[idx(d, i, r)]; v.OK {
					sum += v.Mean
					count++
				}
			}
			if count > 0 {
				delays[i] = sum / count
			}
		}
		res.Disciplines = append(res.Disciplines, m.name)
		res.Delay = append(res.Delay, delays)
	}
	return res, nil
}

// Render writes the delay curves as an ASCII line chart plus CSV.
func (r *Fig5Result) Render(w io.Writer) error {
	series := make([]plot.Series, len(r.Disciplines))
	for i, d := range r.Disciplines {
		series[i] = plot.Series{Name: d, X: r.Params.Intensities, Y: r.Delay[i]}
	}
	title := fmt.Sprintf("Figure 5: average packet delay vs congestion intensity (burst %d cycles)",
		r.Params.BurstCycles)
	if err := plot.Lines(w, title, series, 64, 16); err != nil {
		return err
	}
	header := []string{"intensity"}
	header = append(header, r.Disciplines...)
	rows := make([][]float64, len(r.Params.Intensities))
	for i, x := range r.Params.Intensities {
		row := []float64{x}
		for d := range r.Disciplines {
			row = append(row, r.Delay[d][i])
		}
		rows[i] = row
	}
	return plot.CSV(w, header, rows)
}
