// Package noc builds a k-ary 2-mesh network-on-chip out of the
// wormhole routers of package wormhole: dimension-order (XY) routing,
// per-node injection and ejection, synthetic traffic patterns, and
// end-to-end latency/throughput metrics. It is the multi-switch
// substrate demonstrating the paper's scheduler inside the system it
// was designed for: every router output port is arbitrated by a
// pluggable discipline (ERR by default) billed in occupancy cycles.
package noc

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

// Mesh port numbering: port 0 is the local injection/ejection port.
const (
	PortLocal = iota
	PortEast
	PortWest
	PortNorth
	PortSouth
	numPorts
)

// RouterPorts is each mesh router's radix (local + the four mesh
// directions) — the ports-x-VCs product callers need to relate
// noc.cells_visited to what a full scan would inspect.
const RouterPorts = numPorts

// Config configures a Mesh.
type Config struct {
	// K is the radix: the network has K x K nodes.
	K int
	// VCs is the number of virtual channels per port. For a torus it
	// must be even: the lower half carries packets that have not yet
	// crossed a dateline, the upper half those that have.
	VCs int
	// BufFlits is the input VC buffer depth in flits.
	BufFlits int
	// NewArb constructs each router output arbiter; it must satisfy
	// sched.HeadOfLineArb (ERR, PBRR, WRR).
	NewArb func() sched.Scheduler
	// Torus adds wraparound links in both dimensions, with minimal
	// (shortest-direction) dimension-order routing and dateline VC
	// switching for deadlock freedom.
	Torus bool
	// SharedBufFlits, when > 0, gives each router input port a
	// dynamically allocated multi-queue (DAMQ) buffer of this many
	// flits shared across its VCs, with BufFlits reserved per VC.
	SharedBufFlits int
	// SharedBufCap limits one VC's occupancy of the shared buffer
	// (anti-hogging; 0 = unlimited).
	SharedBufCap int
	// Tile is the edge length of the square commit tiles the mesh is
	// sharded into: routers are laid out tile-major in memory, each
	// tile's interior effects commit in parallel, and only
	// tile-boundary effects serialize (see DESIGN.md §14). 0 picks a
	// deterministic default from K. The tile edge is part of the
	// simulated configuration — it fixes the commit schedule — and is
	// deliberately independent of the worker count, so artifacts are
	// byte-identical at any parallelism.
	Tile int
}

// injState is the per-node injection front end: one packet is fed
// into the local input port at one flit per cycle. The queue is a
// ring-buffer FIFO (not a slice popped with q = q[1:], which keeps
// every delivered packet reachable at the run's high-water mark) so
// a burst's memory is returned as it drains. buf is the reusable
// flit materialisation buffer: flits aliases it while a packet is
// mid-injection (nil otherwise), so the steady state allocates
// nothing per packet.
type injState struct {
	queue  queue.PacketQueue
	buf    []flit.Flit
	flits  []flit.Flit
	next   int
	vc     int
	nextVC int
}

// pktMeta is what the mesh remembers about an undelivered packet: when
// it was queued (for latency) and how long it is (so only the true
// tail flit — Seq == length-1 — can complete it; a mid-packet flit
// corrupted into a tail must not).
type pktMeta struct {
	t0     int64
	length int
}

// idSet tracks which node ids are active as a packed two-level
// bitmap: word iteration yields members in ascending id order for
// free, so additions (which arrive in commit order, not id order)
// never need a sort, and the summary level (bit w set <=> words[w]
// != 0) keeps every traversal O(members + n/4096) — at a million
// routers a sparse active set no longer pays a 16K-word sweep per
// cycle. sorted materialises the members into a scratch slice reused
// across cycles.
type idSet struct {
	words   []uint64
	summary []uint64
	n       int
	scratch []int
}

func newIDSet(n int) *idSet {
	nw := (n + 63) / 64
	return &idSet{words: make([]uint64, nw), summary: make([]uint64, (nw+63)/64)}
}

func (s *idSet) add(id int) {
	wi := id >> 6
	w := &s.words[wi]
	b := uint64(1) << uint(id&63)
	if *w&b == 0 {
		if *w == 0 {
			s.summary[wi>>6] |= 1 << uint(wi&63)
		}
		*w |= b
		s.n++
	}
}

// addAtomic is add for the parallel commit phase: tile owners
// re-activate routers concurrently, so both bitmap levels are set
// with CAS loops. The membership counter is not maintained — the
// caller recounts once after the phase — because a shared counter
// would serialize exactly the hot path the tiles exist to unshare.
func (s *idSet) addAtomic(id int) {
	wi := id >> 6
	b := uint64(1) << uint(id&63)
	for {
		old := atomic.LoadUint64(&s.words[wi])
		if old&b != 0 {
			return
		}
		if !atomic.CompareAndSwapUint64(&s.words[wi], old, old|b) {
			continue
		}
		if old == 0 {
			si, sb := wi>>6, uint64(1)<<uint(wi&63)
			for {
				os := atomic.LoadUint64(&s.summary[si])
				if os&sb != 0 || atomic.CompareAndSwapUint64(&s.summary[si], os, os|sb) {
					break
				}
			}
		}
		return
	}
}

// recount restores the membership counter after a concurrent-add
// phase. Cost is proportional to the populated words, not the
// universe.
func (s *idSet) recount() {
	n := 0
	for si, sw := range s.summary {
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			n += bits.OnesCount64(s.words[wi])
		}
	}
	s.n = n
}

// sorted returns the member ids in ascending order. The slice is the
// set's scratch buffer: stable across add/prune, overwritten by the
// next sorted call.
func (s *idSet) sorted() []int {
	ids := s.scratch[:0]
	for si, sw := range s.summary {
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := s.words[wi]
			for w != 0 {
				ids = append(ids, wi<<6+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
	s.scratch = ids
	return ids
}

// forEach calls fn for every member in ascending order without
// materialising a slice.
func (s *idSet) forEach(fn func(id int)) {
	for si, sw := range s.summary {
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := s.words[wi]
			for w != 0 {
				fn(wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
}

// prune drops every member for which keep returns false.
func (s *idSet) prune(keep func(id int) bool) {
	for si := range s.summary {
		sw := s.summary[si]
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := s.words[wi]
			for w != 0 {
				id := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if !keep(id) {
					s.words[wi] &^= 1 << uint(id&63)
					s.n--
				}
			}
			if s.words[wi] == 0 {
				s.summary[si] &^= 1 << uint(wi&63)
			}
		}
	}
}

func (s *idSet) len() int { return s.n }

// Mesh is a K x K wormhole mesh (or torus, when Config.Torus is set).
//
// Stepping is quiescence-aware, two-phase, and tile-sharded. Routers
// register on an active set when a flit arrives
// (wormhole.Router.SetOnActive) and retire when they go idle;
// injection front ends do the same when packets are queued. Each
// cycle touches only active nodes — a skipped router's Step is
// provably a strict no-op — so a big mesh at low load pays for its
// traffic, not its radix.
//
// The mesh is partitioned into square tiles of Config.Tile edge
// length, and routers are stored tile-major (physical ids remap the
// row-major node ids so a tile's routers, FIFOs, and bitmap words are
// contiguous in memory). Within a cycle, each tile — owned by exactly
// one worker — Computes its active routers against frozen cycle-start
// state and immediately applies the effects that stay inside the tile
// (wormhole.Effects.ApplyDomain); only effects that cross a tile
// boundary (a perimeter term, not an area term) are deferred and
// committed serially in ascending tile order after the parallel
// phase. The schedule — tiles ascending, routers ascending within a
// tile, interior before boundary — has no worker-count term anywhere,
// so artifacts are byte-identical at any parallelism (DESIGN.md §14).
type Mesh struct {
	cfg     Config
	routers []*wormhole.Router // node-id (row-major external) order
	sinks   []*wormhole.Sink
	inj     []injState
	cycle   int64
	nextID  int64

	inflight map[int64]pktMeta

	// tr, when non-nil, is the packet flight recorder (EnableTrace):
	// injects are recorded in Send, deliveries in onTail — both on
	// serial phases of the step, so the recorder needs no locking.
	tr *trace.Trace

	activeR *idSet             // routers with buffered flits or live allocations (physical ids)
	activeI *idSet             // nodes with queued or mid-injection packets (node ids)
	fx      []wormhole.Effects // per-router effect buffers, physical order
	allIDs  []int
	pool    *exec.Pool
	// fullIter disables active-set skipping (oracle mode for tests).
	fullIter bool

	// Tile-major layout: physR lists the routers in physical (tile-
	// major) order; ext2phys/phys2ext translate between node ids (the
	// public, row-major id space every API keeps) and physical ids
	// (the storage and commit order). tileStart[t] is the first
	// physical id of tile t, so a tile is one contiguous id range.
	physR       []*wormhole.Router
	ext2phys    []int32
	phys2ext    []int32
	tileEdge    int
	tilesPerRow int
	numTiles    int
	tileStart   []int32

	// Per-cycle tile scratch, grow-only so the steady state allocates
	// nothing and nothing is keyed to a worker count (a pool of any
	// size, attached at any time, reuses the same scratch): tileOff
	// splits the sorted active ids into per-tile spans; rest[t]
	// buffers tile t's deferred boundary effects; tileTasks[i] commits
	// the tiles in [groupBound[i], groupBound[i+1]).
	tileOff    []int32
	rest       []wormhole.Effects
	tileTasks  []func()
	groupBound []int
	tileIDs    []int
	tileCycle  int64
	// parCommit is set for the duration of the parallel tile phase:
	// the routers' onActive hooks switch to the active set's CAS path.
	// Written only by the stepping goroutine, strictly before and
	// after the pool barrier.
	parCommit bool
	// arenaBytes is the router arena footprint (NewMesh); crossFx
	// counts effects committed across tile boundaries.
	arenaBytes int64
	crossFx    int64

	// sched is a min-heap of future injections (SendAt), ordered by
	// (cycle, submission order); schedSeq breaks same-cycle ties so
	// release order matches submission order deterministically.
	sched    []schedSend
	schedSeq int64
	// events is the discrete-event queue proper: externally known
	// wake-up cycles — fault-window edges registered by InstallFaults
	// or ScheduleWake — ordered deterministically by (At, ID, Kind).
	// Together with the sched heap's head and the routers' NextEventAt
	// answers it bounds how far Run/Drain may advance event-to-event.
	events queue.EventHeap
	// dormancy records that fault-window edges were registered, so
	// canActNow must probe active routers for dormancy (frozen or
	// stall-blocked with edges known) instead of assuming an active
	// router can act. Off on fault-free meshes: the probe walk never
	// runs, so the no-fault hot path stays O(1) per cycle.
	dormancy bool
	// stepped disables event-to-event advancement in Run/Drain: every
	// cycle is stepped literally (oracle mode; see SetStepped and the
	// skip-vs-step identity tests).
	stepped bool
	// skipped counts cycles jumped over by time skipping.
	skipped int64

	// wd, when non-nil (WatchProgress), is the deadlock watchdog
	// Run/Drain consult each stepped cycle — and at the trip point of
	// any skipped gap, so a wedged-but-quiet network trips with its
	// diagnostic instead of being jumped silently to the horizon.
	wd *check.Watchdog
	// onWedged, when non-nil, fires once with the trip cycle when wd
	// expires inside Run/Drain (the channel-wait dump hook).
	onWedged func(cycle int64)

	// obs handles (nil unless RegisterObs was called).
	obsCycles          *obs.Counter
	obsComputes        *obs.Counter
	obsActiveRouters   *obs.Gauge
	obsActiveRoutersHW *obs.Gauge
	obsActiveInjectors *obs.Gauge
	obsCellsVisited    *obs.Counter
	obsWorklistLen     *obs.Gauge
	obsCyclesSkipped   *obs.Counter
	obsCrossShard      *obs.Counter
	obsBytesPerRouter  *obs.Gauge

	// Latency accumulates end-to-end packet latencies (inject of head
	// flit enqueued -> tail flit ejected).
	Latency stats.Welford
	// DeliveredFlits counts ejected flits per source node.
	DeliveredFlits []int64
	// DeliveredPackets counts ejected packets per source node.
	DeliveredPackets []int64
}

// autoTile picks the default commit tile edge for a K x K mesh: tiny
// meshes get ~2x2 tiles so the tiled machinery is exercised (and
// differentially tested) even at K=4, mid-size meshes 8x8, large
// meshes 32x32 — which at K=1024 yields 1024 tiles, enough parallel
// grain for any realistic worker count while the serialized boundary
// stays a perimeter term (4/32 of a tile's links), not an area term.
// The rule depends only on K, never on the machine, so a config means
// the same simulation everywhere.
func autoTile(k int) int {
	switch {
	case k <= 8:
		return (k + 1) / 2
	case k <= 64:
		return 8
	default:
		return 32
	}
}

// routeTableNodes caps the precomputed per-router routing tables:
// below it every router gets a dst -> output-port byte table (n bytes
// per router, n² total — fast and still small); above it the tables'
// quadratic footprint would dwarf the routers themselves (a terabyte
// at a million nodes), so routing falls back to the closed-form
// coordinate math per head flit.
const routeTableNodes = 4096

// NewMesh validates cfg and builds the network. All per-router state
// is carved out of one flat arena in tile-major order (see
// ArenaBytes), so construction cost and footprint stay linear and a
// commit tile is contiguous in memory.
func NewMesh(cfg Config) (*Mesh, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("noc: mesh radix %d < 2", cfg.K)
	}
	if cfg.NewArb == nil {
		return nil, fmt.Errorf("noc: NewArb is required")
	}
	if cfg.Torus && (cfg.VCs < 2 || cfg.VCs%2 != 0) {
		return nil, fmt.Errorf("noc: torus dateline routing needs an even VC count >= 2, got %d", cfg.VCs)
	}
	tile := cfg.Tile
	if tile == 0 {
		tile = autoTile(cfg.K)
	}
	if tile < 1 || tile > cfg.K {
		return nil, fmt.Errorf("noc: tile edge %d outside [1, %d]", tile, cfg.K)
	}
	n := cfg.K * cfg.K
	tw := (cfg.K + tile - 1) / tile
	numTiles := tw * tw
	m := &Mesh{
		cfg:              cfg,
		routers:          make([]*wormhole.Router, n),
		sinks:            make([]*wormhole.Sink, n),
		inj:              make([]injState, n),
		inflight:         make(map[int64]pktMeta),
		activeR:          newIDSet(n),
		activeI:          newIDSet(n),
		fx:               make([]wormhole.Effects, n),
		allIDs:           make([]int, n),
		physR:            make([]*wormhole.Router, n),
		ext2phys:         make([]int32, n),
		phys2ext:         make([]int32, n),
		tileEdge:         tile,
		tilesPerRow:      tw,
		numTiles:         numTiles,
		tileStart:        make([]int32, numTiles+1),
		tileOff:          make([]int32, numTiles+1),
		rest:             make([]wormhole.Effects, numTiles),
		DeliveredFlits:   make([]int64, n),
		DeliveredPackets: make([]int64, n),
	}
	// Tile-major physical layout: tiles in row-major tile order, rows
	// row-major within each tile. Edge tiles are smaller when K % tile
	// != 0. Node ids (y*K+x) stay the public id space everywhere —
	// Send, Coords, fault specs, traffic patterns — only storage and
	// commit order use physical ids.
	p := 0
	for ty := 0; ty < tw; ty++ {
		for tx := 0; tx < tw; tx++ {
			t := ty*tw + tx
			m.tileStart[t] = int32(p)
			yEnd := min((ty+1)*tile, cfg.K)
			xEnd := min((tx+1)*tile, cfg.K)
			for y := ty * tile; y < yEnd; y++ {
				for x := tx * tile; x < xEnd; x++ {
					ext := y*cfg.K + x
					m.ext2phys[ext] = int32(p)
					m.phys2ext[p] = int32(ext)
					p++
				}
			}
		}
	}
	m.tileStart[numTiles] = int32(n)
	base := wormhole.Config{
		Ports:          numPorts,
		VCs:            cfg.VCs,
		BufFlits:       cfg.BufFlits,
		SharedBufFlits: cfg.SharedBufFlits,
		SharedBufCap:   cfg.SharedBufCap,
		NewArb:         cfg.NewArb,
	}
	arena := wormhole.NewArena(base, n)
	m.arenaBytes = arena.Bytes()
	useTables := n <= routeTableNodes
	for t := 0; t < numTiles; t++ {
		for pid := int(m.tileStart[t]); pid < int(m.tileStart[t+1]); pid++ {
			pid := pid
			ext := int(m.phys2ext[pid])
			m.allIDs[pid] = pid
			rcfg := base
			if useTables {
				// Dimension-order routing is static, so each router
				// gets a precomputed dst -> output-port table instead
				// of redoing the coordinate math per head flit.
				tab := make([]uint8, n)
				for dst := 0; dst < n; dst++ {
					tab[dst] = uint8(m.route(ext, dst))
				}
				rcfg.Route = func(dst int) int { return int(tab[dst]) }
			} else {
				rcfg.Route = func(dst int) int { return m.route(ext, dst) }
			}
			if cfg.Torus {
				rcfg.OutVC = func(outPort int, head flit.Flit, inPort, inVC int) int {
					return m.torusOutVC(ext, outPort, inPort, inVC)
				}
			}
			r, err := arena.NewRouter(ext, rcfg)
			if err != nil {
				return nil, err
			}
			r.SetDomain(t)
			r.SetOnActive(func() {
				if m.parCommit {
					m.activeR.addAtomic(pid)
				} else {
					m.activeR.add(pid)
				}
			})
			m.physR[pid] = r
			m.routers[ext] = r
		}
	}
	// Wire neighbours and ejection sinks.
	for y := 0; y < cfg.K; y++ {
		for x := 0; x < cfg.K; x++ {
			id := m.NodeID(x, y)
			if x+1 < cfg.K {
				east := m.NodeID(x+1, y)
				wormhole.Connect(m.routers[id], PortEast, m.routers[east], PortWest)
				wormhole.Connect(m.routers[east], PortWest, m.routers[id], PortEast)
			}
			if y+1 < cfg.K {
				south := m.NodeID(x, y+1)
				wormhole.Connect(m.routers[id], PortSouth, m.routers[south], PortNorth)
				wormhole.Connect(m.routers[south], PortNorth, m.routers[id], PortSouth)
			}
			sink := &wormhole.Sink{}
			sink.OnTail = m.onTail
			sink.OnFlit = m.onFlit
			m.sinks[id] = sink
			wormhole.ConnectEndpoint(m.routers[id], PortLocal, sink)
		}
	}
	if cfg.Torus {
		// Wraparound links: (K-1, y) <-> (0, y) and (x, K-1) <-> (x, 0).
		for y := 0; y < cfg.K; y++ {
			east := m.NodeID(cfg.K-1, y)
			west := m.NodeID(0, y)
			wormhole.Connect(m.routers[east], PortEast, m.routers[west], PortWest)
			wormhole.Connect(m.routers[west], PortWest, m.routers[east], PortEast)
		}
		for x := 0; x < cfg.K; x++ {
			south := m.NodeID(x, cfg.K-1)
			north := m.NodeID(x, 0)
			wormhole.Connect(m.routers[south], PortSouth, m.routers[north], PortNorth)
			wormhole.Connect(m.routers[north], PortNorth, m.routers[south], PortSouth)
		}
	}
	return m, nil
}

// torusOutVC implements dateline virtual-channel switching: packets
// start (and restart on every dimension change) in the lower half of
// the VCs; the hop that crosses a wraparound link moves them to the
// upper half. Within each unidirectional ring this breaks the channel
// dependency cycle, so minimal dimension-order routing on the torus
// is deadlock-free.
func (m *Mesh) torusOutVC(at, outPort, inPort, inVC int) int {
	if outPort == PortLocal {
		return inVC // ejection: VC is immaterial
	}
	half := m.cfg.VCs / 2
	vc := inVC
	if dimOf(outPort) != dimOf(inPort) || inPort == PortLocal {
		vc = inVC % half // fresh dimension: back to the lower half
	}
	if m.crossesWrap(at, outPort) && vc < half {
		vc += half
	}
	return vc
}

// dimOf returns the dimension a port belongs to (0 = X, 1 = Y,
// 2 = local).
func dimOf(port int) int {
	switch port {
	case PortEast, PortWest:
		return 0
	case PortNorth, PortSouth:
		return 1
	default:
		return 2
	}
}

// crossesWrap reports whether forwarding out of the given port of
// node at traverses a wraparound link.
func (m *Mesh) crossesWrap(at, outPort int) bool {
	x, y := m.Coords(at)
	switch outPort {
	case PortEast:
		return x == m.cfg.K-1
	case PortWest:
		return x == 0
	case PortSouth:
		return y == m.cfg.K-1
	case PortNorth:
		return y == 0
	default:
		return false
	}
}

// NodeID maps mesh coordinates to a node id.
func (m *Mesh) NodeID(x, y int) int { return y*m.cfg.K + x }

// Coords maps a node id to mesh coordinates.
func (m *Mesh) Coords(id int) (x, y int) { return id % m.cfg.K, id / m.cfg.K }

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.cfg.K * m.cfg.K }

// route implements dimension-order (XY) routing: on the mesh it is
// deadlock-free outright; on the torus it picks the minimal ring
// direction per dimension and relies on dateline VC switching for
// deadlock freedom.
func (m *Mesh) route(at, dst int) int {
	ax, ay := m.Coords(at)
	dx, dy := m.Coords(dst)
	if dx != ax {
		if !m.cfg.Torus {
			if dx > ax {
				return PortEast
			}
			return PortWest
		}
		return ringDir(ax, dx, m.cfg.K, PortEast, PortWest)
	}
	if dy != ay {
		if !m.cfg.Torus {
			if dy > ay {
				return PortSouth
			}
			return PortNorth
		}
		return ringDir(ay, dy, m.cfg.K, PortSouth, PortNorth)
	}
	return PortLocal
}

// ringDir returns the minimal direction around a K-ring from a to d
// (ties go to the positive direction).
func ringDir(a, d, k, pos, neg int) int {
	fwd := (d - a + k) % k
	bwd := (a - d + k) % k
	if fwd <= bwd {
		return pos
	}
	return neg
}

func (m *Mesh) onFlit(f flit.Flit, vc int, cycle int64) {
	m.DeliveredFlits[f.Flow]++
}

func (m *Mesh) onTail(f flit.Flit, cycle int64) {
	// Only the packet's true tail (its last flit by sequence number)
	// completes it. Under fault injection a corrupted body flit can
	// arrive wearing a tail kind; counting that as a completion let
	// Drain report success with the rest of the worm still in the
	// network, and double-counted the packet when the real tail came.
	meta, ok := m.inflight[f.PktID]
	if !ok || f.Seq != meta.length-1 {
		return
	}
	m.DeliveredPackets[f.Flow]++
	m.Latency.Add(float64(cycle - meta.t0 + 1))
	if m.tr != nil {
		m.tr.Deliver(f, meta.length, cycle-meta.t0+1, cycle)
	}
	delete(m.inflight, f.PktID)
}

// Send queues a packet for injection at node src toward node dst.
// The packet's Flow is overwritten with src so per-source fairness is
// measurable at the ejection sinks.
func (m *Mesh) Send(src, dst, length int) {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic("noc: node id out of range")
	}
	if length < 1 {
		panic("noc: packet length < 1")
	}
	id := m.nextID
	m.nextID++
	p := flit.Packet{Flow: src, Length: length, Dst: dst, ID: id}
	m.inflight[id] = pktMeta{t0: m.cycle, length: length}
	if m.tr != nil {
		m.tr.Inject(id, src, dst, src, length, m.cycle)
	}
	m.inj[src].queue.Push(p)
	m.activeI.add(src)
}

// schedSend is a future injection queued by SendAt.
type schedSend struct {
	at, seq          int64
	src, dst, length int
}

// schedLess orders the SendAt heap by release cycle, then submission
// order.
func schedLess(a, b schedSend) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// SendAt schedules Send(src, dst, length) for the start of cycle at.
// Due sends are released in submission order before each step, so a
// schedule is equivalent to calling Send at exactly those cycles —
// and it is what tells Run and Drain how far they may jump when the
// network goes quiet between bursts (idle-gap time skipping).
func (m *Mesh) SendAt(at int64, src, dst, length int) {
	if at <= m.cycle {
		m.Send(src, dst, length)
		return
	}
	m.sched = append(m.sched, schedSend{at: at, seq: m.schedSeq, src: src, dst: dst, length: length})
	m.schedSeq++
	// Sift up.
	i := len(m.sched) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !schedLess(m.sched[i], m.sched[p]) {
			break
		}
		m.sched[i], m.sched[p] = m.sched[p], m.sched[i]
		i = p
	}
}

// releaseDue pops every scheduled send due at or before the current
// cycle, in (cycle, submission) order.
func (m *Mesh) releaseDue() {
	for len(m.sched) > 0 && m.sched[0].at <= m.cycle {
		s := m.sched[0]
		n := len(m.sched) - 1
		m.sched[0] = m.sched[n]
		m.sched = m.sched[:n]
		// Sift down.
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && schedLess(m.sched[c+1], m.sched[c]) {
				c++
			}
			if !schedLess(m.sched[c], m.sched[i]) {
				break
			}
			m.sched[i], m.sched[c] = m.sched[c], m.sched[i]
			i = c
		}
		m.Send(s.src, s.dst, s.length)
	}
}

// PendingAt returns the number of packets queued or mid-injection at
// node src.
func (m *Mesh) PendingAt(src int) int {
	st := &m.inj[src]
	n := st.queue.Len()
	if st.flits != nil {
		n++
	}
	return n
}

// InFlight returns the number of packets injected (or queued) but not
// yet fully delivered.
func (m *Mesh) InFlight() int { return len(m.inflight) }

// Cycle returns the current cycle.
func (m *Mesh) Cycle() int64 { return m.cycle }

// SetPool attaches a persistent worker pool: Step (and so Run and
// Drain) shards its compute phase across it, exactly as StepParallel
// does. nil restores serial compute. Artifacts are identical either
// way.
func (m *Mesh) SetPool(p *exec.Pool) { m.pool = p }

// SetFullIteration, when on, makes every Step walk all K² routers
// instead of only the active set — the oracle the determinism tests
// compare against, since a skipped router must be a strict no-op.
func (m *Mesh) SetFullIteration(on bool) { m.fullIter = on }

// SetFullScan, when on, makes every router arbitrate with the
// original full ports-x-VCs scans instead of the event-driven
// work-lists (wormhole.Router.SetFullScan) — the oracle mode for the
// work-list differential tests. Artifacts must be byte-identical
// either way.
func (m *Mesh) SetFullScan(on bool) {
	for _, r := range m.routers {
		r.SetFullScan(on)
	}
}

// SetTimeSkip enables (default) or disables event-to-event time
// advancement in Run and Drain. Advancement only ever jumps over
// cycles that are provably strict no-ops — no router can act, no
// injector can make progress, and no scheduled send or registered
// fault-window edge comes due — so an event-driven run is
// cycle-stamp-identical to a stepped one.
func (m *Mesh) SetTimeSkip(on bool) { m.stepped = !on }

// SetStepped, when on, disables the event core entirely: Run and
// Drain step every cycle literally. This is the byte-identical
// differential oracle for event-driven advancement (cmd/nocsim's
// -stepped flag; the same pattern as -fullscan for the work-lists).
// SetStepped(true) is equivalent to SetTimeSkip(false).
func (m *Mesh) SetStepped(on bool) { m.stepped = on }

// Skipped returns the number of no-op cycles jumped over by
// event-driven advancement.
func (m *Mesh) Skipped() int64 { return m.skipped }

// ScheduleWake registers an externally known cycle at which mesh
// state may change without any in-network progress event — a
// fault-window edge opening or closing — so event-driven Run/Drain
// will not treat a dormant (fault-blocked) network as skippable past
// it. InstallFaults registers every window edge of its injector
// automatically; callers installing windowed fault hooks directly on
// routers (Router.SetFreeze / SetOutputFault combined with
// SetFaultEdgesKnown) must register each edge here themselves.
// Duplicate and past cycles are harmless; events are dropped lazily
// once due.
func (m *Mesh) ScheduleWake(at int64) {
	m.events.Push(queue.Event{At: at, Kind: evWake})
	m.dormancy = true
}

// Event kinds on the mesh event queue. Same-cycle events pop in the
// deterministic (At, ID, Kind) order of queue.EventHeap.
const (
	evWake uint8 = iota // externally registered wake (fault-window edge)
)

// canActNow reports whether stepping the mesh at the current cycle
// could change simulation state: some active router can act now, or
// some injection front end can make progress. With no fault-window
// edges registered (m.dormancy off) an active router always counts as
// actable — the dormancy probe is skipped, keeping the fault-free
// path O(1) per cycle.
func (m *Mesh) canActNow() bool {
	if m.activeR.len() > 0 {
		if !m.dormancy {
			return true
		}
		// Probe active routers for one that can act at m.cycle; walk
		// the bitmap hierarchy directly (no closure) to stay off the
		// heap.
		for si, sw := range m.activeR.summary {
			for sw != 0 {
				wi := si<<6 + bits.TrailingZeros64(sw)
				sw &= sw - 1
				w := m.activeR.words[wi]
				for w != 0 {
					id := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if m.physR[id].NextEventAt(m.cycle) <= m.cycle {
						return true
					}
				}
			}
		}
	}
	for si, sw := range m.activeI.summary {
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := m.activeI.words[wi]
			for w != 0 {
				id := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if m.injCanProgress(id) {
					return true
				}
			}
		}
	}
	return false
}

// injCanProgress reports whether node id's injection front end can
// make progress this cycle. Materialising the next queued packet
// mutates front-end state (VC assignment, flit buffer) even when the
// first flit is then refused, so a non-empty queue always counts.
func (m *Mesh) injCanProgress(id int) bool {
	st := &m.inj[id]
	if st.flits == nil {
		return !st.queue.Empty()
	}
	return m.routers[id].CanAccept(PortLocal, st.vc)
}

// nextEventCycle returns the cycle Run/Drain should handle next: the
// current cycle when something can act now (step it), otherwise the
// earliest future event — scheduled send, registered fault-window
// edge, or the horizon itself. Fault-window edges only bound the jump
// while some router holds work: a window opening and closing over a
// completely idle network is a strict no-op, so a fully idle mesh
// skips straight across it.
func (m *Mesh) nextEventCycle(end int64) int64 {
	if m.stepped || m.canActNow() {
		return m.cycle
	}
	next := end
	if len(m.sched) > 0 && m.sched[0].at < next {
		next = m.sched[0].at
	}
	if m.activeR.len() > 0 {
		if at := m.events.DropDue(m.cycle); at < next {
			next = at
		}
	}
	return next
}

// HorizonCap is the absolute cycle horizon of a run. Run and Drain
// clamp cycle+n to it so horizon arithmetic cannot overflow int64
// even at maxCycles == math.MaxInt64 (the fault package leaves the
// same headroom in its permanent-window encoding). At ~2.3e18 cycles
// it is beyond any reachable simulation length.
const HorizonCap int64 = math.MaxInt64 >> 2

// horizonEnd returns the end cycle for a run of n more cycles,
// clamped to HorizonCap. Negative n yields the current cycle (a
// no-op run), never a wrapped horizon.
func (m *Mesh) horizonEnd(n int64) int64 {
	if n < 0 {
		return m.cycle
	}
	if m.cycle >= HorizonCap || n >= HorizonCap || m.cycle+n > HorizonCap {
		return HorizonCap
	}
	return m.cycle + n
}

// skipGap jumps from the current cycle to next without stepping,
// first consulting the watchdog at its exact trip point. A stepped
// run consults the watchdog every cycle of the gap; an event-driven
// run must therefore trip at the same cycle — not silently jump a
// wedged-but-quiet network (in-flight flits, nothing runnable) to
// the horizon and lose the deadlock diagnostic.
func (m *Mesh) skipGap(next int64) {
	if m.wd != nil && !m.wd.Tripped() && len(m.inflight) > 0 {
		if at := m.wd.ExpiresAt(); at <= next {
			if at < m.cycle {
				at = m.cycle
			}
			m.checkWedge(at)
		}
	}
	m.skipTo(next)
}

// stepChecked is Step plus the per-cycle watchdog consult Run/Drain
// perform when WatchProgress attached a watchdog.
func (m *Mesh) stepChecked() {
	m.Step()
	if m.wd != nil {
		m.checkWedge(m.cycle)
	}
}

// checkWedge consults the watchdog at cycle c and fires the OnWedged
// hook on the (single) tripping call.
func (m *Mesh) checkWedge(c int64) {
	if m.wd.Expired(c, int64(len(m.inflight))) && m.onWedged != nil {
		m.onWedged(c)
	}
}

// skipTo jumps the cycle counter to c without stepping. Only call
// when every skipped cycle is a no-op; the obs cycle counter advances
// as if the cycles had been stepped (with zero computes), so stepped
// and skipped runs expose identical stepping telemetry.
func (m *Mesh) skipTo(c int64) {
	k := c - m.cycle
	if k <= 0 {
		return
	}
	m.cycle = c
	m.skipped += k
	if m.obsCycles != nil {
		m.obsCycles.Add(k)
		m.obsCyclesSkipped.Add(k)
	}
}

// RegisterObs wires the mesh's stepping telemetry into reg:
// noc.cycles and noc.router_computes counters (their ratio is the
// average active-set occupancy — the work quiescence saves),
// noc.active_routers / noc.active_routers_high_water /
// noc.active_injectors gauges, plus the work-list economy metrics:
// noc.cells_visited (arbitration sites inspected; compare against
// ports*VCs*router_computes for the scan work saved), noc.worklist_len
// (pending cells across the active set at end of cycle), and
// noc.cycles_skipped (idle cycles jumped by time skipping). Two
// tile-locality metrics ride along: noc.bytes_per_router (the arena
// footprint per router, set once here) and noc.cross_shard_effects
// (effects committed across a tile boundary — the serialized share of
// the commit; its ratio to total traffic is what tile sharding wins
// over id-stripe sharding).
func (m *Mesh) RegisterObs(reg *obs.Registry) {
	m.obsCycles = reg.Counter("noc.cycles")
	m.obsComputes = reg.Counter("noc.router_computes")
	m.obsActiveRouters = reg.Gauge("noc.active_routers")
	m.obsActiveRoutersHW = reg.Gauge("noc.active_routers_high_water")
	m.obsActiveInjectors = reg.Gauge("noc.active_injectors")
	m.obsCellsVisited = reg.Counter("noc.cells_visited")
	m.obsWorklistLen = reg.Gauge("noc.worklist_len")
	m.obsCyclesSkipped = reg.Counter("noc.cycles_skipped")
	m.obsCrossShard = reg.Counter("noc.cross_shard_effects")
	m.obsBytesPerRouter = reg.Gauge("noc.bytes_per_router")
	m.obsBytesPerRouter.Set(m.BytesPerRouter())
}

// Step advances the whole mesh by one cycle (sharding compute across
// the pool installed with SetPool, if any).
func (m *Mesh) Step() { m.step(m.pool) }

// StepParallel advances the mesh by one cycle with both the compute
// phase and the tile-interior commit sharded across p's workers. The
// result is byte-identical to Step at any worker count: computes
// touch only router-own state; each tile's interior effects are
// applied by the worker owning the tile, in a fixed tile-ascending
// order; and the only effects committed by the serial phase are the
// tile-boundary crossings, again in tile-ascending order. No part of
// the schedule depends on the worker count.
func (m *Mesh) StepParallel(p *exec.Pool) { m.step(p) }

func (m *Mesh) step(pool *exec.Pool) {
	m.releaseDue()
	m.injectPhase()
	ids := m.activeR.sorted()
	if m.fullIter {
		ids = m.allIDs
	}
	// Shared-buffer (DAMQ) gates read downstream occupancy, so they
	// are sampled serially before any compute pops a flit; a no-op on
	// meshes without shared buffers.
	if m.cfg.SharedBufFlits > 0 {
		for _, id := range ids {
			m.physR[id].SnapshotGates(m.cycle)
		}
	}
	// Compute + interior commit, tile by tile. Physical ids are
	// tile-major, so the sorted active set splits into contiguous
	// per-tile spans; the parallel path runs the identical per-tile
	// code on worker-owned contiguous tile ranges.
	m.partitionTiles(ids)
	m.tileIDs = ids
	m.tileCycle = m.cycle
	if g := m.planGroups(pool, len(ids)); g > 1 {
		m.parCommit = true
		pool.Do(m.tileTasks[:g]...)
		m.parCommit = false
		m.activeR.recount()
	} else {
		m.runTiles(0, m.numTiles)
	}
	// Serial boundary commit, ascending tile order: the flit handoffs
	// and credit returns that crossed a tile edge, plus every sink
	// ejection (sinks feed mesh-global accounting — DeliveredFlits,
	// latency, the flight recorder — which must stay single-threaded).
	// Deliveries may re-activate quiescent routers (Router.onActive);
	// they join the iteration next cycle.
	var cross int64
	for t := range m.rest {
		rest := &m.rest[t]
		if rest.Len() == 0 {
			continue
		}
		cross += int64(rest.CrossRouter())
		rest.Apply()
		rest.Reset()
	}
	m.crossFx += cross
	// Retire routers with nothing runnable. Stricter than Busy(): a
	// router still holding hard-blocked worms is pruned too, because
	// every hard block resolves through an instrumented event
	// (acceptFlit, creditArrived) that re-registers it via onActive.
	m.activeR.prune(func(id int) bool {
		if m.physR[id].Runnable() {
			return true
		}
		m.physR[id].ClearActiveHint()
		return false
	})
	m.cycle++
	if m.obsCycles != nil {
		m.obsCycles.Inc()
		m.obsComputes.Add(int64(len(ids)))
		n := int64(m.activeR.len())
		m.obsActiveRouters.Set(n)
		m.obsActiveRoutersHW.SetMax(n)
		m.obsActiveInjectors.Set(int64(m.activeI.len()))
		m.obsCrossShard.Add(cross)
		var visited int64
		for _, id := range ids {
			visited += m.physR[id].TakeCellsVisited()
		}
		m.obsCellsVisited.Add(visited)
		var wl int64
		m.activeR.forEach(func(id int) {
			wl += int64(m.physR[id].WorklistLen())
		})
		m.obsWorklistLen.Set(wl)
	}
}

// partitionTiles splits the (physically ascending, hence tile-
// ascending) active ids into per-tile spans: tile t's active routers
// are ids[tileOff[t]:tileOff[t+1]]. One linear pass, O(active +
// tiles).
func (m *Mesh) partitionTiles(ids []int) {
	t := 0
	m.tileOff[0] = 0
	for i, id := range ids {
		for id >= int(m.tileStart[t+1]) {
			t++
			m.tileOff[t] = int32(i)
		}
	}
	for t < m.numTiles {
		t++
		m.tileOff[t] = int32(len(ids))
	}
}

// planGroups decides how many worker groups this cycle's tile phase
// fans out over and fills groupBound with contiguous tile ranges
// balanced by active-router population. Grouping only chooses which
// worker executes a tile — per-tile work and order are fixed — so the
// choice cannot affect artifacts. Returns 1 (run inline) without a
// pool or meaningful parallel work.
func (m *Mesh) planGroups(pool *exec.Pool, active int) int {
	if pool == nil || active <= 1 {
		return 1
	}
	g := pool.Workers()
	if g > m.numTiles {
		g = m.numTiles
	}
	if g > active {
		g = active
	}
	if g <= 1 {
		return 1
	}
	m.ensureTasks(g)
	m.groupBound[0] = 0
	t := 0
	for i := 1; i < g; i++ {
		target := int32(active * i / g)
		for t < m.numTiles && m.tileOff[t] < target {
			t++
		}
		m.groupBound[i] = t
	}
	m.groupBound[g] = m.numTiles
	return g
}

// ensureTasks grows the worker task list (and its bound slice) to g
// entries. Tasks are grow-only and capture only their index: a pool
// of any size — attached mid-run, swapped between steps, shrunk,
// grown — reuses the same closures reading the current groupBound, so
// changing worker counts never rebuilds or reallocates per-cycle
// state.
func (m *Mesh) ensureTasks(g int) {
	if len(m.groupBound) < g+1 {
		nb := make([]int, g+1)
		copy(nb, m.groupBound)
		m.groupBound = nb
	}
	for len(m.tileTasks) < g {
		i := len(m.tileTasks)
		m.tileTasks = append(m.tileTasks, func() {
			m.runTiles(m.groupBound[i], m.groupBound[i+1])
		})
	}
}

// runTiles computes and interior-commits tiles [lo, hi): per tile, in
// ascending physical-id order, every active router computes against
// frozen cycle-start state; then each router's buffered effects are
// applied to same-tile targets and deferred to the tile's rest buffer
// otherwise (wormhole.Effects.ApplyDomain). Interior commits mutate
// only this tile's routers — plus the active set, via its CAS path —
// so disjoint tile ranges run concurrently, and the fixed per-tile
// order makes serial and parallel execution byte-identical.
func (m *Mesh) runTiles(lo, hi int) {
	ids := m.tileIDs
	cyc := m.tileCycle
	for t := lo; t < hi; t++ {
		span := ids[m.tileOff[t]:m.tileOff[t+1]]
		if len(span) == 0 {
			continue
		}
		for _, id := range span {
			fx := &m.fx[id]
			fx.Reset()
			m.physR[id].Compute(cyc, fx)
		}
		rest := &m.rest[t]
		for _, id := range span {
			m.fx[id].ApplyDomain(t, rest)
		}
	}
}

// injectPhase runs the injection front ends of every node with
// pending traffic: at most one flit per node per cycle, in ascending
// node-id order (identical to the old full iteration, since a node
// without pending traffic was a no-op).
func (m *Mesh) injectPhase() {
	for _, id := range m.activeI.sorted() {
		st := &m.inj[id]
		if st.flits == nil && !st.queue.Empty() {
			p := st.queue.Pop()
			st.buf = p.AppendFlits(st.buf[:0])
			if m.tr != nil && m.tr.Sampler().Sample(p.ID) {
				for i := range st.buf {
					st.buf[i].Traced = true
				}
			}
			st.flits = st.buf
			st.next = 0
			// Torus packets must start in the lower (pre-dateline)
			// half of the VCs.
			injVCs := m.cfg.VCs
			if m.cfg.Torus {
				injVCs = m.cfg.VCs / 2
			}
			st.vc = st.nextVC % injVCs
			st.nextVC = (st.nextVC + 1) % injVCs
		}
		if st.flits != nil {
			if m.routers[id].Inject(PortLocal, st.vc, st.flits[st.next], m.cycle) {
				st.next++
				if st.next == len(st.flits) {
					st.flits = nil
				}
			}
		}
	}
	m.activeI.prune(func(id int) bool {
		st := &m.inj[id]
		return st.flits != nil || !st.queue.Empty()
	})
}

// Run advances the mesh by n cycles (clamped to HorizonCap),
// event-to-event: cycles in which something can act — a router that
// can forward or grant, an injector with traffic the network will
// take, a scheduled send or registered fault-window edge coming due —
// are stepped; provably no-op gaps between events are jumped in one
// move. The run is cycle-stamp- and artifact-identical to a stepped
// one (SetStepped(true) restores literal stepping as the oracle).
func (m *Mesh) Run(n int64) {
	end := m.horizonEnd(n)
	for m.cycle < end {
		if next := m.nextEventCycle(end); next > m.cycle {
			m.skipGap(next)
			continue
		}
		m.stepChecked()
	}
}

// Drain runs until every in-flight packet is delivered (and every
// scheduled send released) or maxCycles elapse (clamped to
// HorizonCap); it reports whether the network drained. Gaps between
// events are jumped exactly as in Run. A wedged-but-quiet network
// (flits leaked or stuck by fault injection, nothing able to act, no
// event pending) still jumps to the horizon — no amount of stepping
// would move it — but only after the attached watchdog (WatchProgress)
// has been consulted at its exact trip cycle, so the wedge trips the
// OnWedged diagnostic instead of being skipped over silently.
func (m *Mesh) Drain(maxCycles int64) bool {
	end := m.horizonEnd(maxCycles)
	for m.cycle < end {
		if m.InFlight() == 0 && len(m.sched) == 0 {
			return true
		}
		if next := m.nextEventCycle(end); next > m.cycle {
			m.skipGap(next)
			continue
		}
		m.stepChecked()
	}
	return m.InFlight() == 0 && len(m.sched) == 0
}

// Router returns the router of a node (tests, instrumentation).
func (m *Mesh) Router(id int) *wormhole.Router { return m.routers[id] }

// TileEdge returns the commit tile edge length in routers (Config.Tile
// or the autoTile default).
func (m *Mesh) TileEdge() int { return m.tileEdge }

// Tiles returns the number of commit tiles.
func (m *Mesh) Tiles() int { return m.numTiles }

// ArenaBytes returns the router arena footprint in bytes — the flat
// preallocated storage all per-router state is carved from (excludes
// schedulers and DAMQ buffers; see wormhole.Arena.Bytes).
func (m *Mesh) ArenaBytes() int64 { return m.arenaBytes }

// BytesPerRouter returns the arena footprint per router.
func (m *Mesh) BytesPerRouter() int64 { return m.arenaBytes / int64(m.Nodes()) }

// CrossShardEffects returns the cumulative number of router-target
// effects committed across a tile boundary — the serialized share of
// all commits (sink ejections are excluded: they are serial by design,
// not by geometry).
func (m *Mesh) CrossShardEffects() int64 { return m.crossFx }
