package metrics

import (
	"repro/internal/flit"
	"repro/internal/stats"
)

// DelayStats accumulates packet delays — the number of cycles between
// the instant a packet is placed in its queue and the instant its
// last flit is dequeued (the paper's Figure 5 metric) — per flow and
// in aggregate.
type DelayStats struct {
	perFlow []stats.Welford
	all     stats.Welford
}

// NewDelayStats returns delay statistics over n flows.
func NewDelayStats(n int) *DelayStats {
	return &DelayStats{perFlow: make([]stats.Welford, n)}
}

// Departure records that packet p's last flit left at the given
// cycle.
func (d *DelayStats) Departure(p flit.Packet, cycle int64) {
	delay := float64(cycle - p.Arrival + 1)
	d.perFlow[p.Flow].Add(delay)
	d.all.Add(delay)
}

// Mean returns the average delay over all packets of all flows.
func (d *DelayStats) Mean() float64 { return d.all.Mean() }

// MeanOf returns the average delay of one flow's packets.
func (d *DelayStats) MeanOf(flow int) float64 { return d.perFlow[flow].Mean() }

// MaxOf returns the worst packet delay seen by one flow.
func (d *DelayStats) MaxOf(flow int) float64 { return d.perFlow[flow].Max() }

// Count returns the number of departed packets across all flows.
func (d *DelayStats) Count() int64 { return d.all.N() }

// CountOf returns the number of departed packets of one flow.
func (d *DelayStats) CountOf(flow int) int64 { return d.perFlow[flow].N() }

// ThroughputTable accumulates per-flow transmitted volume, the
// Figure 4 metric ("# of KBytes transmitted" per flow).
type ThroughputTable struct {
	flits     []int64
	flitBytes int
}

// NewThroughputTable returns a table over n flows with the given flit
// width in bytes.
func NewThroughputTable(n, flitBytes int) *ThroughputTable {
	if flitBytes <= 0 {
		flitBytes = flit.DefaultFlitBytes
	}
	return &ThroughputTable{flits: make([]int64, n), flitBytes: flitBytes}
}

// Serve records units flits served to flow.
func (t *ThroughputTable) Serve(flow int, units int64) { t.flits[flow] += units }

// Flits returns the flits served to flow.
func (t *ThroughputTable) Flits(flow int) int64 { return t.flits[flow] }

// Bytes returns the bytes served to flow.
func (t *ThroughputTable) Bytes(flow int) int64 { return t.flits[flow] * int64(t.flitBytes) }

// KBytes returns the kilobytes served to flow (the Figure 4 y-axis).
func (t *ThroughputTable) KBytes(flow int) float64 { return float64(t.Bytes(flow)) / 1024 }

// NumFlows returns the number of flows in the table.
func (t *ThroughputTable) NumFlows() int { return len(t.flits) }
