package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// runOracleRun drives one fixed injector scenario on a mesh built from
// cfg — optionally with faults, optionally in full-scan oracle mode —
// and returns the run's artifacts. It is the work-list counterpart of
// runStepVariant: the two modes must differ only in which arbitration
// cells Compute visits, never in what the network does.
func runOracleRun(t *testing.T, cfg Config, faultSpec string, fullScan bool, cycles int) runArtifacts {
	t.Helper()
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterObs(reg)
	m.SetFullScan(fullScan)
	if faultSpec != "" {
		spec, err := fault.Parse(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaults(fault.New(spec, 99))
	}
	var log []delivRec
	for id := range m.sinks {
		id := id
		s := m.sinks[id]
		prev := s.OnFlit
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			log = append(log, delivRec{node: id, flow: f.Flow, seq: f.Seq,
				vc: vc, kind: f.Kind, pkt: f.PktID, cycle: cycle})
			if prev != nil {
				prev(f, vc, cycle)
			}
		}
	}
	inj := NewInjector(m, 0.15, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 6), rng.New(7))
	for c := 0; c < cycles; c++ {
		inj.Step()
		m.Step()
	}
	for i := 0; i < 6000 && m.InFlight() > 0; i++ {
		m.Step()
	}
	return runArtifacts{
		log:      log,
		packets:  append([]int64(nil), m.DeliveredPackets...),
		flits:    append([]int64(nil), m.DeliveredFlits...),
		cycle:    m.Cycle(),
		inFlight: m.InFlight(),
		latN:     m.Latency.N(),
		latMean:  m.Latency.Mean(),
		latVar:   m.Latency.Var(),
		latMin:   m.Latency.Min(),
		latMax:   m.Latency.Max(),
		obs:      reg.Snapshot(),
	}
}

// TestWorklistMatchesFullScanDAMQ pins the work-list oracle on the
// configuration its quiescence analysis is most fragile for: DAMQ
// shared-buffer inputs, whose stop/go gates can change answers without
// any credit event, so gated outputs must keep polling instead of
// quiescing. The work-list and full-scan runs must be byte-identical
// in every simulation artifact (telemetry legitimately differs:
// noc.cells_visited counts the scan work the work-list saves).
func TestWorklistMatchesFullScanDAMQ(t *testing.T) {
	cfg := Config{K: 4, VCs: 2, BufFlits: 2, SharedBufFlits: 16, SharedBufCap: 12,
		NewArb: func() sched.Scheduler { return core.New() }}
	base := runOracleRun(t, cfg, "", true, 2500)
	if base.latN == 0 || base.inFlight != 0 {
		t.Fatalf("scenario degenerate: %d packets, %d in flight", base.latN, base.inFlight)
	}
	got := runOracleRun(t, cfg, "", false, 2500)
	assertArtifactsEqual(t, "worklist-vs-fullscan-damq", base, got, false)
}

// TestWorklistMatchesFullScanTorusFaults is the adversarial work-list
// oracle: a torus under stalls, drops, corruption, and a freeze. Every
// fault pathway mutates allocation state out from under the pending
// masks (a stalled link polls, a dropped tail wedges the downstream
// worm forever, a frozen router skips Compute entirely), and each must
// leave the work-list agreeing with the full scan flit for flit.
func TestWorklistMatchesFullScanTorusFaults(t *testing.T) {
	const spec = "stall(port=1,at=100,dur=200);drop(router=5,port=1,p=0.05);corrupt(router=10,p=0.05);freeze(router=6,at=300,dur=400)"
	cfg := Config{K: 4, VCs: 4, BufFlits: 4, Torus: true,
		NewArb: func() sched.Scheduler { return core.New() }}
	base := runOracleRun(t, cfg, spec, true, 2500)
	if base.latN == 0 {
		t.Fatal("scenario degenerate: nothing delivered")
	}
	got := runOracleRun(t, cfg, spec, false, 2500)
	assertArtifactsEqual(t, "worklist-vs-fullscan-faults", base, got, false)
}

// timeSkipScenario schedules three bursts separated by long idle gaps
// — the regime idle-gap skipping exists for — then runs and drains.
func timeSkipScenario(t *testing.T, skip bool) (runArtifacts, int64) {
	t.Helper()
	m, err := NewMesh(Config{K: 4, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterObs(reg)
	m.SetTimeSkip(skip)
	var log []delivRec
	for id := range m.sinks {
		id := id
		s := m.sinks[id]
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			log = append(log, delivRec{node: id, flow: f.Flow, seq: f.Seq,
				vc: vc, kind: f.Kind, pkt: f.PktID, cycle: cycle})
		}
	}
	src := rng.New(21)
	for burst := 0; burst < 3; burst++ {
		at := int64(burst * 5000)
		for i := 0; i < 12; i++ {
			s, d := src.Intn(m.Nodes()), src.Intn(m.Nodes())
			if s == d {
				d = (d + 1) % m.Nodes()
			}
			m.SendAt(at+int64(src.Intn(20)), s, d, src.IntRange(1, 6))
		}
	}
	m.Run(12_000)
	if !m.Drain(5_000) {
		t.Fatal("network did not drain")
	}
	art := runArtifacts{
		log:      log,
		packets:  append([]int64(nil), m.DeliveredPackets...),
		flits:    append([]int64(nil), m.DeliveredFlits...),
		cycle:    m.Cycle(),
		inFlight: m.InFlight(),
		latN:     m.Latency.N(),
		latMean:  m.Latency.Mean(),
		latVar:   m.Latency.Var(),
		latMin:   m.Latency.Min(),
		latMax:   m.Latency.Max(),
		obs:      reg.Snapshot(),
	}
	return art, m.Skipped()
}

// TestRunTimeSkipMatchesStepped pins the time-skip contract: jumping
// the cycle counter over provably idle gaps must be cycle-stamp
// identical to literally stepping them — every delivered flit lands at
// the same (node, vc, cycle), every latency sample is the same float,
// and the final cycle counter agrees. Only noc.cycles_skipped may
// differ, and the skipping run must actually have skipped something.
func TestRunTimeSkipMatchesStepped(t *testing.T) {
	stepped, skippedOff := timeSkipScenario(t, false)
	if stepped.latN == 0 {
		t.Fatal("scenario degenerate: nothing delivered")
	}
	if skippedOff != 0 {
		t.Fatalf("SetTimeSkip(false) still skipped %d cycles", skippedOff)
	}
	skipped, skippedOn := timeSkipScenario(t, true)
	if skippedOn == 0 {
		t.Fatal("time skipping never engaged on a bursty scenario with 5000-cycle gaps")
	}
	assertArtifactsEqual(t, "timeskip-vs-stepped", stepped, skipped, false)
	// The telemetry the oracle above masks out: both runs must report
	// the same stepped-cycle total even though one jumped most of them.
	if a, b := stepped.obs.Counters["noc.cycles"], skipped.obs.Counters["noc.cycles"]; a != b {
		t.Errorf("obs cycle counters diverge: stepped %d, skipped %d", a, b)
	}
}

// TestFaultFrozenRouterWorklist pins the interaction the work-lists
// are most easily broken by: a frozen router skips Compute, so its
// pending bits go stale while neighbours keep pushing flits at it.
// When the freeze lifts, those cells must still be on the work-list
// (events must register on frozen routers, not be dropped), or the
// network wedges with traffic no scan will ever revisit.
func TestFaultFrozenRouterWorklist(t *testing.T) {
	cfg := Config{K: 4, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }}
	for _, fullScan := range []bool{false, true} {
		m, err := NewMesh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		m.RegisterObs(reg)
		m.SetFullScan(fullScan)
		spec, err := fault.Parse("freeze(router=5,at=50,dur=600)")
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaults(fault.New(spec, 3))
		// Route worms straight through the frozen router (node 5 =
		// (1,1)): row 1 traffic crossing it while it is down.
		src := rng.New(9)
		for c := 0; c < 400; c++ {
			if c%10 == 0 {
				m.Send(m.NodeID(0, 1), m.NodeID(3, 1), src.IntRange(1, 6))
			}
			m.Step()
		}
		if !m.Drain(5_000) {
			t.Fatalf("fullScan=%v: traffic stranded behind a thawed router; %d in flight (cells dropped from the work-list while frozen?)",
				fullScan, m.InFlight())
		}
		// Everything delivered: the active set must be empty again, or
		// idle routers poll forever and time skipping never re-engages.
		if got := reg.Gauge("noc.active_routers").Value(); got != 0 {
			t.Errorf("fullScan=%v: %d routers still active after drain", fullScan, got)
		}
	}
}

// FuzzMeshWorklistOracle feeds arbitrary send scripts to the
// work-list and full-scan stepping modes and requires byte-identical
// delivery logs — a coverage-guided search for a traffic shape whose
// quiescence analysis drops an event. Run with
// `go test -fuzz FuzzMeshWorklistOracle ./internal/noc`.
func FuzzMeshWorklistOracle(f *testing.F) {
	f.Add([]byte{0x01, 0x53, 0x22, 0x90, 0x07})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		run := func(fullScan bool) ([]delivRec, int64) {
			m, err := NewMesh(Config{K: 3, VCs: 2, BufFlits: 2,
				NewArb: func() sched.Scheduler { return core.New() }})
			if err != nil {
				t.Fatal(err)
			}
			m.SetFullScan(fullScan)
			var log []delivRec
			for id := range m.sinks {
				id := id
				m.sinks[id].OnFlit = func(fl flit.Flit, vc int, cycle int64) {
					log = append(log, delivRec{node: id, flow: fl.Flow, seq: fl.Seq,
						vc: vc, kind: fl.Kind, pkt: fl.PktID, cycle: cycle})
				}
			}
			// Each input triple is one send: (cycle gap, src/dst nibble
			// pair, length). Gaps above 200 exercise idle stretches.
			at := int64(0)
			for i := 0; i+2 < len(data); i += 3 {
				at += int64(data[i])
				src := int(data[i+1]>>4) % m.Nodes()
				dst := int(data[i+1]&0xf) % m.Nodes()
				if src == dst {
					dst = (dst + 1) % m.Nodes()
				}
				m.SendAt(at, src, dst, 1+int(data[i+2]%6))
			}
			m.Run(at + 1)
			m.Drain(20_000)
			return log, m.Cycle()
		}
		wantLog, wantCycle := run(true)
		gotLog, gotCycle := run(false)
		if wantCycle != gotCycle {
			t.Fatalf("final cycles diverge: full-scan %d, work-list %d", wantCycle, gotCycle)
		}
		if len(wantLog) != len(gotLog) {
			t.Fatalf("delivery counts diverge: full-scan %d, work-list %d", len(wantLog), len(gotLog))
		}
		for i := range wantLog {
			if wantLog[i] != gotLog[i] {
				t.Fatalf("delivery %d diverges: full-scan %+v, work-list %+v", i, wantLog[i], gotLog[i])
			}
		}
	})
}

// TestMeshStepAllocsZero gates the zero-allocation steady state at the
// mesh level: once warm, a saturated Mesh.Step cycle — forwarding,
// delivery, credit return, latency accounting, active-set maintenance
// — must not allocate. Telemetry is wired, since the production path
// always runs with it.
func TestMeshStepAllocsZero(t *testing.T) {
	m, err := NewMesh(Config{K: 8, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterObs(obs.NewRegistry())
	inj := NewInjector(m, 0.30, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 8), rng.New(5))
	inj.MaxPending = 4
	for c := 0; c < 2000; c++ {
		inj.Step()
		m.Step()
	}
	if m.InFlight() == 0 {
		t.Fatal("warm phase did not saturate the mesh")
	}
	// Deep backlog: thousands of flits keep every router busy for far
	// longer than the measurement window, with no injector in the loop.
	if got := testing.AllocsPerRun(100, func() { m.Step() }); got != 0 {
		t.Errorf("Mesh.Step allocates %.1f times per cycle in steady state, want 0", got)
	}
}
