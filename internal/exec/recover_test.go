package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunRecoversPanic is the regression test for the crash-resilience
// contract: a panicking job must not take down the pool (or the
// process) — it surfaces as a structured *PanicError through the
// normal lowest-failing-index error path.
func TestRunRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [8]atomic.Bool
		jobs := make([]Job[int], 8)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				ran[i].Store(true)
				if i == 3 {
					panic("boom")
				}
				return i, nil
			}
		}
		_, err := Run(jobs, workers)
		if err == nil {
			t.Fatalf("workers=%d: Run succeeded, want a panic error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *PanicError", workers, err)
		}
		if pe.Job != 3 || pe.Value != "boom" {
			t.Errorf("workers=%d: PanicError = job %d value %v, want job 3 value boom", workers, pe.Job, pe.Value)
		}
		if pe.Stack == "" {
			t.Errorf("workers=%d: PanicError carries no stack trace", workers)
		}
		// Every job below the failing index is guaranteed to have run.
		for i := 0; i < 3; i++ {
			if !ran[i].Load() {
				t.Errorf("workers=%d: job %d below the failing index never ran", workers, i)
			}
		}
	}
}

func TestWithRetryEventuallySucceeds(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[string]{func() (string, error) {
		if attempts.Add(1) < 3 {
			return "", fmt.Errorf("transient")
		}
		return "ok", nil
	}}
	got, err := Run(jobs, 1, WithRetry(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "ok" || attempts.Load() != 3 {
		t.Errorf("result %q after %d attempts, want ok after 3", got[0], attempts.Load())
	}
}

func TestWithRetryExhaustedReportsFinalError(t *testing.T) {
	var attempts atomic.Int64
	sentinel := errors.New("still broken")
	jobs := []Job[int]{func() (int, error) {
		attempts.Add(1)
		return 0, sentinel
	}}
	_, err := Run(jobs, 1, WithRetry(2, 0))
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want the job's final error", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("job ran %d times, want 3 (initial + 2 retries)", attempts.Load())
	}
}

func TestWithRetryRecoversFromPanic(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[int]{func() (int, error) {
		if attempts.Add(1) == 1 {
			panic("once")
		}
		return 7, nil
	}}
	got, err := Run(jobs, 1, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || attempts.Load() != 2 {
		t.Errorf("got %d after %d attempts, want 7 after 2", got[0], attempts.Load())
	}
}

// TestRetryBackoffDoubles pins the backoff sequence without real
// sleeping, using the internal hook Run wires to time.Sleep.
func TestRetryBackoffDoubles(t *testing.T) {
	var slept []time.Duration
	o := &options{
		retries: 3,
		backoff: time.Millisecond,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	_, err := runJob(o, 0, func() (int, error) { return 0, errors.New("no") })
	if err == nil {
		t.Fatal("want the final error after exhausting retries")
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestWithTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	jobs := []Job[int]{
		func() (int, error) { return 1, nil },
		func() (int, error) { <-block; return 2, nil },
	}
	_, err := Run(jobs, 1, WithTimeout(20*time.Millisecond))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error = %v, want a *TimeoutError", err)
	}
	if te.Job != 1 || te.Limit != 20*time.Millisecond {
		t.Errorf("TimeoutError = job %d limit %v, want job 1 limit 20ms", te.Job, te.Limit)
	}
}

func TestWithTimeoutFastJobsPass(t *testing.T) {
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i, nil }
	}
	got, err := Run(jobs, 2, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i)
		}
	}
}
