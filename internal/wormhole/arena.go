package wormhole

import (
	"fmt"
	"unsafe"

	"repro/internal/queue"
	"repro/internal/sched"
)

// This file is the router arena: flat, preallocated backing storage
// for a batch of routers with identical dimensions (ports, VCs, buffer
// depth). A mesh built router-by-router with make() scatters each
// router's FIFOs, credit counters, and work-list bitmaps across the
// heap; at a million routers that is tens of millions of small
// objects, poor locality for tile-owned stepping, and real GC scan
// pressure. The arena instead computes every per-router slice size
// up front, allocates one slab per element type, and carves routers
// out of the slabs in construction order — so a caller that constructs
// a tile's routers consecutively gets that tile's entire hot state
// contiguous in memory, and Bytes reports exactly what a router
// footprint costs.

// slab is a typed bump allocator over one flat backing slice.
type slab[T any] struct{ buf []T }

func newSlab[T any](n int) slab[T] { return slab[T]{buf: make([]T, n)} }

// take carves the next n elements as a full slice (len == cap == n,
// so an erroneous append cannot bleed into the neighbour's storage).
func (s *slab[T]) take(n int) []T {
	out := s.buf[:n:n]
	s.buf = s.buf[n:]
	return out
}

// takeCap carves capacity elements but returns a slice of the given
// length (scratch lists that start empty and grow up to capacity).
func (s *slab[T]) takeCap(length, capacity int) []T {
	out := s.buf[:length:capacity]
	s.buf = s.buf[capacity:]
	return out
}

// Arena preallocates the backing storage for n routers sharing the
// same Ports/VCs/BufFlits/SharedBufFlits dimensions. Construct it
// once, then build each router with Arena.NewRouter; routers built
// consecutively are consecutive in memory. Scheduler instances
// (Config.NewArb) and DAMQ shared buffers remain individually heap
// allocated — they are opaque to this package — and are not counted
// by Bytes.
type Arena struct {
	ports, vcs, bufFlits int
	shared               bool
	n, used              int
	bytes                int64

	routers slab[Router]
	bufs    slab[portBuf]
	fifos   slab[vcFIFO]
	entries slab[entry]
	arbs    slab[sched.Scheduler]
	locks   slab[lock]
	eps     slab[Endpoint]
	ints    slab[int]
	creds   slab[creditReturn]
	rptrs   slab[*Router]
	gates   slab[func(vc int) bool]
	bools   slab[bool]
	faults  slab[OutputFault]
	words   slab[uint64]
	outs    slab[outHot]
	int32s  slab[int32]
}

// NewArena returns an arena sized for n routers of cfg's dimensions
// (only Ports, VCs, BufFlits, and SharedBufFlits are consulted).
func NewArena(cfg Config, n int) *Arena {
	p, v, b := cfg.Ports, cfg.VCs, cfg.BufFlits
	shared := cfg.SharedBufFlits > 0
	entriesPer := p * v * b
	if shared {
		entriesPer = 0 // DAMQ mode: flit storage lives in the damq buffers
	}
	// Per-router element counts by type.
	nInts := 2*p*v + 2*p + p // crd, eligible, outPort, credUpPort, usedList cap
	nPtrs := 2 * p           // outR, credUpR
	nBools := p + p*v        // usedInput, inTraced
	nWords := (p+63)/64 + (p*v+63)/64
	a := &Arena{
		ports: p, vcs: v, bufFlits: b, shared: shared, n: n,

		routers: newSlab[Router](n),
		bufs:    newSlab[portBuf](n * p),
		fifos:   newSlab[vcFIFO](n * p * v),
		entries: newSlab[entry](n * entriesPer),
		arbs:    newSlab[sched.Scheduler](n * p * v),
		locks:   newSlab[lock](n * p * v),
		eps:     newSlab[Endpoint](n * p),
		ints:    newSlab[int](n * nInts),
		creds:   newSlab[creditReturn](n * p),
		rptrs:   newSlab[*Router](n * nPtrs),
		gates:   newSlab[func(vc int) bool](n * p),
		bools:   newSlab[bool](n * nBools),
		faults:  newSlab[OutputFault](n * p),
		words:   newSlab[uint64](n * nWords),
		outs:    newSlab[outHot](n * p),
		int32s:  newSlab[int32](n * p * v),
	}
	per := int64(unsafe.Sizeof(Router{})) +
		int64(p)*int64(unsafe.Sizeof(portBuf{})) +
		int64(p*v)*int64(unsafe.Sizeof(vcFIFO{})) +
		int64(entriesPer)*int64(unsafe.Sizeof(entry{})) +
		int64(p*v)*int64(unsafe.Sizeof(sched.Scheduler(nil))) +
		int64(p*v)*int64(unsafe.Sizeof(lock{})) +
		int64(p)*int64(unsafe.Sizeof(Endpoint(nil))) +
		int64(nInts)*int64(unsafe.Sizeof(int(0))) +
		int64(p)*int64(unsafe.Sizeof(creditReturn(nil))) +
		int64(nPtrs)*int64(unsafe.Sizeof((*Router)(nil))) +
		int64(p)*int64(unsafe.Sizeof((func(vc int) bool)(nil))) +
		int64(nBools) +
		int64(p)*int64(unsafe.Sizeof(OutputFault(nil))) +
		int64(nWords)*8 +
		int64(p)*int64(unsafe.Sizeof(outHot{})) +
		int64(p*v)*4
	a.bytes = per * int64(n)
	return a
}

// Bytes returns the total arena-managed footprint in bytes (the
// per-router cost times the router count; excludes schedulers and
// DAMQ buffers, which the arena does not manage).
func (a *Arena) Bytes() int64 { return a.bytes }

// Routers returns how many routers have been carved so far.
func (a *Arena) Routers() int { return a.used }

// NewRouter validates cfg, carves the next router out of the arena,
// and initialises it exactly as the package-level NewRouter would.
// cfg's dimensions must match the arena's; Route, OutVC, and NewArb
// may differ per router.
func (a *Arena) NewRouter(id int, cfg Config) (*Router, error) {
	if cfg.Ports < 1 || cfg.VCs < 1 || cfg.BufFlits < 1 {
		return nil, fmt.Errorf("wormhole: invalid config %+v", cfg)
	}
	if cfg.VCs > 64 {
		// The per-port occupancy and per-output allocation bitmasks
		// pack VC state into single words.
		return nil, fmt.Errorf("wormhole: %d VCs per port exceeds the supported 64", cfg.VCs)
	}
	if cfg.NewArb == nil || cfg.Route == nil {
		return nil, fmt.Errorf("wormhole: NewArb and Route are required")
	}
	if cfg.SharedBufFlits > 0 && cfg.SharedBufFlits < cfg.VCs*cfg.BufFlits {
		return nil, fmt.Errorf("wormhole: shared buffer %d smaller than reservations %d*%d",
			cfg.SharedBufFlits, cfg.VCs, cfg.BufFlits)
	}
	if cfg.Ports != a.ports || cfg.VCs != a.vcs || cfg.BufFlits != a.bufFlits ||
		(cfg.SharedBufFlits > 0) != a.shared {
		return nil, fmt.Errorf("wormhole: config dimensions %+v do not match the arena's", cfg)
	}
	if a.used >= a.n {
		return nil, fmt.Errorf("wormhole: arena of %d routers exhausted", a.n)
	}
	a.used++
	p, v := cfg.Ports, cfg.VCs
	r := &a.routers.take(1)[0]
	r.cfg = cfg
	r.id = id
	r.in = a.bufs.take(p)
	r.arbs = a.arbs.take(p * v)
	r.locks = a.locks.take(p * v)
	r.out = a.eps.take(p)
	r.crd = a.ints.take(p * v)
	r.credUp = a.creds.take(p)
	r.outR = a.rptrs.take(p)
	r.outPort = a.ints.take(p)
	r.credUpR = a.rptrs.take(p)
	r.credUpPort = a.ints.take(p)
	r.gateOut = a.gates.take(p)
	r.eligible = a.ints.take(p * v)
	r.usedInput = a.bools.take(p)
	r.outFault = a.faults.take(p)
	r.pendingOut = queue.BitsetOver(a.words.take((p + 63) / 64))
	r.grantable = queue.BitsetOver(a.words.take((p*v + 63) / 64))
	r.outs = a.outs.take(p)
	r.inLockOut = a.int32s.take(p * v)
	r.inTraced = a.bools.take(p * v)
	r.usedList = a.ints.takeCap(0, p)
	r.gateSnapCycle = -1
	for i := range r.inLockOut {
		r.inLockOut[i] = -1
	}
	for port := 0; port < p; port++ {
		initPortBuf(&r.in[port], a, v, cfg.BufFlits, cfg.SharedBufFlits, cfg.SharedBufCap)
		for vc := 0; vc < v; vc++ {
			arb := cfg.NewArb()
			if _, ok := arb.(sched.LengthAware); ok {
				return nil, fmt.Errorf("wormhole: arbiter %q requires a-priori packet lengths and cannot arbitrate a wormhole output", arb.Name())
			}
			hol, ok := arb.(sched.HeadOfLineArb)
			if !ok {
				return nil, fmt.Errorf("wormhole: arbiter %q does not satisfy the head-of-line arbitration contract (sched.HeadOfLineArb)", arb.Name())
			}
			r.arbs[port*v+vc] = hol
		}
	}
	return r, nil
}
