package noc

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// TraceConfig configures the mesh's packet flight recorder. Zero
// fields take the trace package defaults; Flows is always the node
// count (the mesh overwrites packet flows with the source node).
type TraceConfig struct {
	// Seed derives the per-packet sampling decision.
	Seed uint64
	// SampleEvery traces roughly one in this many packets (1 = every
	// packet). Zero or negative disables the recorder entirely: no
	// hooks are installed, the mesh pays nothing, and the returned
	// Trace stays empty (including its rollup).
	SampleEvery int
	// RingCap is the per-router hop-record ring capacity.
	RingCap int
	// MeshRingCap is the inject/deliver ring capacity.
	MeshRingCap int
	// EpochCycles is the Jain fairness epoch length.
	EpochCycles int64
	// Reg receives the rollup metrics; nil creates a private registry.
	Reg *obs.Registry
}

// EnableTrace attaches a packet flight recorder to the mesh: every
// router gets a hop recorder, and Send/delivery record inject and
// deliver spans. Call before stepping; the returned Trace yields
// records and rollups after the run (call its Finish first).
//
// Because sampling is a pure function of (Seed, packet id) and every
// recorded field derives from mode-identical events, the trace output
// is byte-identical across Step, StepStepped, and StepParallel.
func (m *Mesh) EnableTrace(cfg TraceConfig) *trace.Trace {
	tc := trace.Config{
		Seed:        cfg.Seed,
		SampleEvery: cfg.SampleEvery,
		RingCap:     cfg.RingCap,
		MeshRingCap: cfg.MeshRingCap,
		Flows:       m.Nodes(),
		EpochCycles: cfg.EpochCycles,
		Reg:         cfg.Reg,
	}
	t := trace.New(tc)
	if cfg.SampleEvery <= 0 {
		// Tracing off: leave the mesh and routers untouched so a run
		// with the recorder disabled is the run without a recorder.
		return t
	}
	for id, r := range m.routers {
		rt := t.AddRouter(id, RouterPorts, m.cfg.VCs, m.cfg.BufFlits)
		r.SetTracer(rt)
	}
	m.tr = t
	return t
}
