package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Config configures a Server. Zero values select the documented
// defaults; Handler is the only required field.
type Config struct {
	// Handler is the application handler requests are dispatched to.
	Handler http.Handler

	// TenantKey selects how requests are classified into flows:
	// "header:<Name>" reads the named header, "query:<name>" reads the
	// named query parameter. Unclassifiable requests fall into the
	// shared "-" flow. Default "header:X-Tenant".
	TenantKey string

	// Workers is the concurrency limit: at most Workers requests are
	// in their handler at once. Default 16.
	Workers int

	// QueueCap is the per-flow queue capacity in requests; an arrival
	// beyond it is shed with 429. Default 128.
	QueueCap int

	// GlobalBytes is the global queued-memory budget. When an arrival
	// would push the estimated queued bytes past it, the heaviest
	// flow's newest requests are shed to make room — the arriving
	// request itself only when its own flow is the heaviest. Default
	// 32 MiB.
	GlobalBytes int64

	// Unit is the wall-clock cost unit billed to flows (see
	// sched.CostClock). Default 1ms.
	Unit time.Duration

	// DebtCap bounds a flow's deferred surplus count in cost units
	// (0 = unbounded). Default 0.
	DebtCap int64

	// DefaultDeadline is applied to requests that carry no
	// X-Request-Deadline-Ms header (0 = no deadline). A header tighter
	// than the default wins; a looser one is clamped to the default.
	DefaultDeadline time.Duration

	// Weight returns a tenant's ERR weight (>= 1); nil means 1 for
	// every tenant.
	Weight func(tenant string) int64

	// CostOf converts a measured handler duration into billed cost
	// units; nil means sched.CostClock{Unit: Unit}.Cost. Tests use
	// this to bill deterministic costs.
	CostOf func(r *http.Request, measured time.Duration) int64

	// Degradation watermarks, as fractions of GlobalBytes occupancy.
	// Tier 1 (shed writes) engages at WriteHigh and releases at
	// WriteLow; tier 2 (health checks only) engages at FullHigh and
	// releases at FullLow. Releases additionally wait out DegradeDwell
	// to avoid flapping. Defaults: 0.50/0.25, 0.85/0.40, 1s.
	WriteHigh, WriteLow float64
	FullHigh, FullLow   float64
	DegradeDwell        time.Duration

	// IsWrite classifies requests shed at tier 1; nil means any method
	// other than GET, HEAD or OPTIONS.
	IsWrite func(r *http.Request) bool

	// IsHealth classifies health-check requests, which bypass the
	// queue and survive every degradation tier; nil means URL path
	// "/healthz".
	IsHealth func(r *http.Request) bool

	// Faults optionally injects service-side chaos (slow and stuck
	// handlers) around Handler. Nil injects nothing.
	Faults *fault.ServeInjector

	// Registry receives the serve.* metrics; nil uses obs.Default().
	Registry *obs.Registry

	// now is the test seam for the wall clock; nil means time.Now.
	now func() time.Time
}

func (c *Config) fill() {
	if c.TenantKey == "" {
		c.TenantKey = "header:X-Tenant"
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 128
	}
	if c.GlobalBytes <= 0 {
		c.GlobalBytes = 32 << 20
	}
	if c.Unit <= 0 {
		c.Unit = time.Millisecond
	}
	if c.CostOf == nil {
		cc := sched.CostClock{Unit: c.Unit}
		c.CostOf = func(_ *http.Request, d time.Duration) int64 { return cc.Cost(d) }
	}
	if c.WriteHigh <= 0 {
		c.WriteHigh = 0.50
	}
	if c.WriteLow <= 0 {
		c.WriteLow = 0.25
	}
	if c.FullHigh <= 0 {
		c.FullHigh = 0.85
	}
	if c.FullLow <= 0 {
		c.FullLow = 0.40
	}
	if c.DegradeDwell <= 0 {
		c.DegradeDwell = time.Second
	}
	if c.IsWrite == nil {
		c.IsWrite = func(r *http.Request) bool {
			switch r.Method {
			case http.MethodGet, http.MethodHead, http.MethodOptions:
				return false
			}
			return true
		}
	}
	if c.IsHealth == nil {
		c.IsHealth = func(r *http.Request) bool { return r.URL.Path == "/healthz" }
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// reqState is a queued request's lifecycle state. Transitions out of
// reqWaiting happen exactly once, under the server lock; whoever makes
// the transition owns the queue-accounting decrement.
type reqState int

const (
	reqWaiting  reqState = iota
	reqGranted           // dispatched: the waiter runs the handler
	reqDeadline          // evicted: deadline expired before dispatch -> 504
	reqShed              // evicted: shed by the memory-budget shedder -> 429
	reqDrained           // evicted: server draining -> 503
	reqCanceled          // evicted: client went away before dispatch
)

type request struct {
	flow     int
	tenant   string
	bytes    int64
	enq      time.Time
	deadline time.Time // zero = none
	state    reqState
	token    int64
	// ready is closed by the dispatcher/shedder/drainer when it moves
	// the request out of reqWaiting; the waiter also wakes on its own
	// deadline timer or client cancellation.
	ready chan struct{}
}

// flowQ is one tenant's bounded FIFO of waiting requests plus its
// lifetime accounting. Only requests in reqWaiting live in q.
type flowQ struct {
	id     int
	tenant string
	weight int64

	q    []*request
	head int

	bytes int64 // estimated bytes of waiting requests

	// Lifetime counters (under the server lock). shedQueue and
	// shedBudgetRej count admission refusals (the request never
	// enqueued); shedBudget counts enqueued requests evicted by the
	// budget shedder — the distinction keeps VerifyAccounting's
	// enqueued-vs-settled balance exact.
	enqueued, granted, completed int64
	shedQueue, shedBudget        int64
	shedBudgetRej                int64
	shedDegraded                 int64
	expired, canceled, drained   int64
	costUnits                    int64

	wait  *obs.Histogram // queue wait, ms
	total *obs.Histogram // enqueue -> handler done, ms
}

func (f *flowQ) len() int { return len(f.q) - f.head }

func (f *flowQ) push(r *request) {
	f.q = append(f.q, r)
	f.bytes += r.bytes
}

func (f *flowQ) peek() *request {
	if f.len() == 0 {
		return nil
	}
	return f.q[f.head]
}

func (f *flowQ) pop() *request {
	r := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	f.bytes -= r.bytes
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 > len(f.q) {
		n := copy(f.q, f.q[f.head:])
		for i := n; i < len(f.q); i++ {
			f.q[i] = nil
		}
		f.q = f.q[:n]
		f.head = 0
	}
	return r
}

// popTail removes and returns the newest waiting request (the one a
// budget shed discards first: it would complete last anyway).
func (f *flowQ) popTail() *request {
	r := f.q[len(f.q)-1]
	f.q[len(f.q)-1] = nil
	f.q = f.q[:len(f.q)-1]
	f.bytes -= r.bytes
	return r
}

// remove deletes r from anywhere in the queue (a waiter evicting
// itself on deadline expiry sits at an arbitrary position). O(n) in
// the queue length, which the per-flow cap bounds.
func (f *flowQ) remove(r *request) bool {
	for i := f.head; i < len(f.q); i++ {
		if f.q[i] == r {
			copy(f.q[i:], f.q[i+1:])
			f.q[len(f.q)-1] = nil
			f.q = f.q[:len(f.q)-1]
			f.bytes -= r.bytes
			return true
		}
	}
	return false
}

// Server is the fair-queuing front end. Create with New, serve HTTP
// through it (it implements http.Handler), stop with Drain.
type Server struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	tenantKind, tenantName string

	sched    *WallERR
	flows    []*flowQ
	byTenant map[string]int

	freeSlots   int
	queuedBytes int64
	queuedReqs  int
	inflight    int
	draining    bool
	closed      bool

	degrade degradeCtl

	m serveMetrics
}

// New returns a running Server (its dispatcher goroutine is started).
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Handler == nil {
		return nil, fmt.Errorf("serve: Config.Handler is required")
	}
	kind, name, err := parseTenantKey(cfg.TenantKey)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		tenantKind: kind,
		tenantName: name,
		byTenant:   make(map[string]int),
		freeSlots:  cfg.Workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.sched = NewWallERR(s.flowWeight, cfg.DebtCap)
	s.degrade.init(cfg.WriteHigh, cfg.WriteLow, cfg.FullHigh, cfg.FullLow, cfg.DegradeDwell, cfg.now)
	s.m.init(cfg.Registry)
	go s.dispatch()
	return s, nil
}

func parseTenantKey(spec string) (kind, name string, err error) {
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return "", "", fmt.Errorf("serve: tenant key %q is not kind:name (header:X-Tenant, query:tenant)", spec)
	}
	kind, name = spec[:i], spec[i+1:]
	switch kind {
	case "header", "query":
	default:
		return "", "", fmt.Errorf("serve: unknown tenant key kind %q (valid: header, query)", kind)
	}
	if name == "" {
		return "", "", fmt.Errorf("serve: tenant key %q has an empty name", spec)
	}
	return kind, name, nil
}

// tenantOf classifies a request into its tenant key.
func (s *Server) tenantOf(r *http.Request) string {
	var t string
	switch s.tenantKind {
	case "header":
		t = r.Header.Get(s.tenantName)
	case "query":
		t = r.URL.Query().Get(s.tenantName)
	}
	if t == "" {
		t = "-"
	}
	return t
}

// flowWeight adapts Config.Weight to flow ids for the scheduler.
// Called under s.mu (the dispatcher serializes scheduler calls).
func (s *Server) flowWeight(flow int) int64 {
	if s.cfg.Weight == nil {
		return 1
	}
	w := s.cfg.Weight(s.flows[flow].tenant)
	if w < 1 {
		w = 1
	}
	return w
}

// flowFor returns the flow for tenant, creating it on first use.
// Caller holds s.mu.
func (s *Server) flowFor(tenant string) *flowQ {
	if id, ok := s.byTenant[tenant]; ok {
		return s.flows[id]
	}
	f := &flowQ{
		id:     len(s.flows),
		tenant: tenant,
		wait:   obs.NewHistogram(obs.HistogramOpts{Width: 1, Buckets: 4096}),
		total:  obs.NewHistogram(obs.HistogramOpts{Width: 1, Buckets: 4096}),
	}
	s.flows = append(s.flows, f)
	s.byTenant[tenant] = f.id
	s.m.flows.Set(int64(len(s.flows)))
	return f
}

// approxBytes estimates the memory a queued request pins: a fixed
// overhead for the request structures plus the declared body length.
func approxBytes(r *http.Request) int64 {
	const overhead = 512
	if r.ContentLength > 0 {
		return overhead + r.ContentLength
	}
	return overhead
}

// effectiveDeadline computes the request's absolute deadline from the
// config default and the X-Request-Deadline-Ms header (tightest wins).
func (s *Server) effectiveDeadline(r *http.Request, now time.Time) time.Time {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get("X-Request-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			hd := time.Duration(ms) * time.Millisecond
			if d == 0 || hd < d {
				d = hd
			}
		}
	}
	if d == 0 {
		return time.Time{}
	}
	return now.Add(d)
}

func reject(w http.ResponseWriter, code int, reason string) {
	w.Header().Set("X-Shed-Reason", reason)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
}

// ServeHTTP implements http.Handler: classify, admission-check,
// enqueue, wait for a dispatch grant (or eviction), run the handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.now()
	if s.cfg.IsHealth(r) {
		// Health checks bypass the queue: they must answer even when
		// tier 2 sheds everything else — but report draining so a
		// balancer stops sending traffic here.
		if s.isDraining() {
			reject(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	tenant := s.tenantOf(r)

	// Degradation tiers. The fast path reads an atomic; once degraded,
	// every arrival re-evaluates the watermarks under the lock so a
	// quiet (all-shedding) server can still recover after the dwell.
	switch s.tierForAdmission() {
	case tierHealthOnly:
		s.countDegraded(tenant)
		reject(w, http.StatusServiceUnavailable, "degraded")
		return
	case tierShedWrites:
		if s.cfg.IsWrite(r) {
			s.countDegraded(tenant)
			reject(w, http.StatusServiceUnavailable, "degraded-writes")
			return
		}
	}

	req := &request{
		tenant:   tenant,
		bytes:    approxBytes(r),
		enq:      now,
		deadline: s.effectiveDeadline(r, now),
		ready:    make(chan struct{}),
	}
	if !req.deadline.IsZero() && !req.deadline.After(now) {
		s.m.expired.Inc()
		reject(w, http.StatusGatewayTimeout, "deadline")
		return
	}

	if !s.enqueue(req, w) {
		return // rejected synchronously; enqueue wrote the response
	}

	// Wait for the dispatcher (or a deadline / client cancellation).
	var timer *time.Timer
	var expireC <-chan time.Time
	if !req.deadline.IsZero() {
		timer = time.NewTimer(req.deadline.Sub(now))
		expireC = timer.C
		defer timer.Stop()
	}
	select {
	case <-req.ready:
	case <-expireC:
		s.selfEvict(req, reqDeadline)
	case <-r.Context().Done():
		s.selfEvict(req, reqCanceled)
	}
	// selfEvict loses the race against a concurrent grant; re-read the
	// final state under the lock.
	s.mu.Lock()
	st := req.state
	s.mu.Unlock()

	switch st {
	case reqGranted:
		s.runGranted(req, w, r)
	case reqDeadline:
		reject(w, http.StatusGatewayTimeout, "deadline")
	case reqShed:
		reject(w, http.StatusTooManyRequests, "memory-budget")
	case reqDrained:
		reject(w, http.StatusServiceUnavailable, "draining")
	case reqCanceled:
		// Client is gone; nothing useful to write.
	default:
		s.m.violation("request resolved in state %d", st)
		reject(w, http.StatusInternalServerError, "internal")
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tierForAdmission returns the degradation tier to admit against,
// re-running the watermark machine when the server is already
// degraded (see ServeHTTP).
func (s *Server) tierForAdmission() int32 {
	t := s.degrade.tierNow()
	if t == tierFull {
		return t
	}
	s.mu.Lock()
	s.degradeLocked()
	t = s.degrade.tierNow()
	s.mu.Unlock()
	return t
}

func (s *Server) countDegraded(tenant string) {
	s.m.shedDegraded.Inc()
	s.mu.Lock()
	s.flowFor(tenant).shedDegraded++
	s.mu.Unlock()
}

// enqueue admits req into its flow's queue, shedding per the per-flow
// cap and the global memory budget. It writes the rejection response
// itself and returns false when the request is not admitted.
func (s *Server) enqueue(req *request, w http.ResponseWriter) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.drainRejected.Inc()
		reject(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	f := s.flowFor(req.tenant)
	req.flow = f.id

	// Per-flow bound: an over-allowance tenant sheds only itself.
	if f.len() >= s.cfg.QueueCap {
		f.shedQueue++
		s.mu.Unlock()
		s.m.shedQueue.Inc()
		reject(w, http.StatusTooManyRequests, "queue-full")
		return false
	}

	// Global memory budget: make room by shedding the heaviest flow's
	// newest requests — never the mice. If the arriving flow is itself
	// the heaviest, it is the one shed.
	if s.queuedBytes+req.bytes > s.cfg.GlobalBytes {
		if !s.shedHeaviestLocked(req.bytes, f) {
			f.shedBudgetRej++
			s.mu.Unlock()
			s.m.shedBudget.Inc()
			reject(w, http.StatusTooManyRequests, "memory-budget")
			return false
		}
	}

	wasEmpty := f.len() == 0
	f.push(req)
	f.enqueued++
	s.queuedBytes += req.bytes
	s.queuedReqs++
	s.m.enqueued.Inc()
	s.m.queued.Set(int64(s.queuedReqs))
	s.m.queuedBytes.Set(s.queuedBytes)
	s.sched.OnArrival(f.id, wasEmpty)
	s.degradeLocked()
	s.checkQuickLocked()
	s.mu.Unlock()
	s.cond.Signal()
	return true
}

// shedHeaviestLocked frees at least need bytes by evicting the newest
// waiting requests of the heaviest flow (by queued bytes), repeating
// across flows as needed. It refuses to evict from arriving's own
// flow or from flows lighter than it — the mice are never shed for an
// elephant — and reports whether enough room was freed.
func (s *Server) shedHeaviestLocked(need int64, arriving *flowQ) bool {
	for s.queuedBytes+need > s.cfg.GlobalBytes {
		var heaviest *flowQ
		for _, f := range s.flows {
			if f == arriving || f.len() == 0 {
				continue
			}
			if heaviest == nil || f.bytes > heaviest.bytes {
				heaviest = f
			}
		}
		if heaviest == nil || heaviest.bytes <= arriving.bytes {
			return false
		}
		r := heaviest.popTail()
		r.state = reqShed
		close(r.ready)
		heaviest.shedBudget++
		s.queuedBytes -= r.bytes
		s.queuedReqs--
		s.m.shedBudget.Inc()
		s.sched.OnEvicted(heaviest.id, heaviest.len() == 0)
	}
	return true
}

// selfEvict is the waiter-side transition out of reqWaiting when its
// deadline fires or its client disconnects before dispatch. It loses
// (harmlessly) when the dispatcher granted the request first.
func (s *Server) selfEvict(req *request, to reqState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.state != reqWaiting {
		return
	}
	f := s.flows[req.flow]
	if !f.remove(req) {
		s.m.violation("waiting request missing from its queue (flow %d)", req.flow)
		return
	}
	req.state = to
	s.queuedBytes -= req.bytes
	s.queuedReqs--
	switch to {
	case reqDeadline:
		f.expired++
		s.m.expired.Inc()
	case reqCanceled:
		f.canceled++
		s.m.canceled.Inc()
	}
	s.m.queued.Set(int64(s.queuedReqs))
	s.m.queuedBytes.Set(s.queuedBytes)
	s.sched.OnEvicted(f.id, f.len() == 0)
	s.degradeLocked()
	s.checkQuickLocked()
}

// runGranted runs the application handler for a granted request and
// bills the measured cost back to the flow.
func (s *Server) runGranted(req *request, w http.ResponseWriter, r *http.Request) {
	start := s.cfg.now()
	if d := s.cfg.Faults.Delay(req.tenant); d > 0 {
		time.Sleep(d)
	}
	s.cfg.Handler.ServeHTTP(w, r)
	end := s.cfg.now()

	cost := s.cfg.CostOf(r, end.Sub(start))
	if cost < 1 {
		cost = 1
	}
	s.m.serviceMS.Observe(end.Sub(start).Milliseconds())

	s.mu.Lock()
	f := s.flows[req.flow]
	f.completed++
	f.costUnits += cost
	f.total.Observe(end.Sub(req.enq).Milliseconds())
	s.inflight--
	s.freeSlots++
	s.sched.OnServiceDone(req.flow, req.token, cost)
	s.m.completed.Inc()
	s.m.inflight.Set(int64(s.inflight))
	s.degradeLocked()
	s.checkQuickLocked()
	s.mu.Unlock()
	s.m.totalMS.Observe(end.Sub(req.enq).Milliseconds())
	// Broadcast, not Signal: both the dispatcher (a slot freed) and a
	// Drain caller (in-flight count dropped) may be waiting.
	s.cond.Broadcast()
}
