package trace

// ring is a fixed-capacity record buffer that overwrites its oldest
// entry when full, reporting overwrites through a drop hook. The
// capacity is allocated once; append never allocates, which keeps the
// recorder out of the simulation's steady-state allocation budget.
type ring struct {
	buf    []Record
	start  int
	size   int
	onDrop func()
}

func (r *ring) init(capacity int, onDrop func()) {
	r.buf = make([]Record, capacity)
	r.onDrop = onDrop
}

func (r *ring) len() int { return r.size }

func (r *ring) append(rec Record) {
	if r.size == len(r.buf) {
		// Overwrite the oldest: keep the most recent window, which is
		// what a flight recorder is for.
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.size--
		r.onDrop()
	}
	i := r.start + r.size
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = rec
	r.size++
}

// each visits the buffered records oldest-first without consuming
// them.
func (r *ring) each(fn func(Record)) {
	for k := 0; k < r.size; k++ {
		i := r.start + k
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		fn(r.buf[i])
	}
}
