package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/rng"
)

// fixedView is a QueueView with constant queue lengths.
type fixedView map[int]int

func (v fixedView) QueueLen(flow int) int { return v[flow] }

func TestBernoulliRate(t *testing.T) {
	src := rng.New(1)
	b := NewBernoulli(2, 0.25, rng.Constant{Length: 4}, src)
	count := 0
	const cycles = 100000
	for c := int64(0); c < cycles; c++ {
		ps := b.Arrivals(c, fixedView{})
		count += len(ps)
		for _, p := range ps {
			if p.Flow != 2 || p.Length != 4 {
				t.Fatalf("bad packet %+v", p)
			}
		}
	}
	rate := float64(count) / cycles
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("Bernoulli empirical rate %.4f, want 0.25", rate)
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, r := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", r)
				}
			}()
			NewBernoulli(0, r, rng.Constant{Length: 1}, rng.New(1))
		}()
	}
}

func TestPoissonRate(t *testing.T) {
	src := rng.New(3)
	p := NewPoisson(0, 1.5, rng.Constant{Length: 1}, src)
	count := 0
	const cycles = 50000
	for c := int64(0); c < cycles; c++ {
		count += len(p.Arrivals(c, fixedView{}))
	}
	rate := float64(count) / cycles
	if math.Abs(rate-1.5) > 0.05 {
		t.Errorf("Poisson empirical rate %.3f, want 1.5", rate)
	}
}

func TestBackloggedTopsUp(t *testing.T) {
	src := rng.New(5)
	b := NewBacklogged(1, 3, rng.Constant{Length: 2}, src)
	ps := b.Arrivals(0, fixedView{1: 0})
	if len(ps) != 3 {
		t.Fatalf("top-up from empty gave %d packets, want 3", len(ps))
	}
	ps = b.Arrivals(1, fixedView{1: 2})
	if len(ps) != 1 {
		t.Fatalf("top-up from 2 gave %d packets, want 1", len(ps))
	}
	if ps = b.Arrivals(2, fixedView{1: 3}); ps != nil {
		t.Fatalf("full queue still got %d packets", len(ps))
	}
	if ps = b.Arrivals(3, fixedView{1: 9}); ps != nil {
		t.Fatal("overfull queue got packets")
	}
}

func TestOnOffBursts(t *testing.T) {
	src := rng.New(7)
	o := NewOnOff(0, 1.0, 50, 50, rng.Constant{Length: 1}, src)
	count := 0
	const cycles = 200000
	for c := int64(0); c < cycles; c++ {
		count += len(o.Arrivals(c, fixedView{}))
	}
	// ~50% duty cycle at rate 1 => ~0.5 packets/cycle.
	rate := float64(count) / cycles
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("OnOff duty rate %.3f, want ~0.5", rate)
	}
}

func TestWindowGates(t *testing.T) {
	src := rng.New(9)
	w := NewWindow(NewBernoulli(0, 1.0, rng.Constant{Length: 1}, src), 10, 20)
	for c := int64(0); c < 30; c++ {
		got := len(w.Arrivals(c, fixedView{}))
		want := 0
		if c >= 10 && c < 20 {
			want = 1
		}
		if got != want {
			t.Fatalf("cycle %d: %d arrivals, want %d", c, got, want)
		}
	}
}

func TestMultiCombines(t *testing.T) {
	src := rng.New(11)
	m := NewMulti(
		NewBernoulli(0, 1.0, rng.Constant{Length: 1}, src),
		NewBernoulli(1, 1.0, rng.Constant{Length: 2}, src),
	)
	ps := m.Arrivals(0, fixedView{})
	if len(ps) != 2 || ps[0].Flow != 0 || ps[1].Flow != 1 {
		t.Fatalf("Multi arrivals = %+v", ps)
	}
}

func TestRecorderAndReplayRoundTrip(t *testing.T) {
	src := rng.New(13)
	rec := NewRecorder(NewMulti(
		NewBernoulli(0, 0.3, rng.NewUniform(1, 8), src.Split()),
		NewBernoulli(1, 0.6, rng.NewUniform(1, 8), src.Split()),
	))
	var orig []flit.Packet
	for c := int64(0); c < 1000; c++ {
		orig = append(orig, rec.Arrivals(c, fixedView{})...)
	}
	rp := NewReplay(rec.Events)
	var replayed []flit.Packet
	for c := int64(0); c < 1000; c++ {
		replayed = append(replayed, rp.Arrivals(c, fixedView{})...)
	}
	if !rp.Done() {
		t.Error("replay not done after covering all cycles")
	}
	if len(orig) != len(replayed) {
		t.Fatalf("replay count %d != original %d", len(replayed), len(orig))
	}
	for i := range orig {
		if orig[i].Flow != replayed[i].Flow || orig[i].Length != replayed[i].Length {
			t.Fatalf("replay diverged at %d: %v vs %v", i, orig[i], replayed[i])
		}
	}
	// Reset and replay again.
	rp.Reset()
	if rp.Done() {
		t.Error("Done after Reset")
	}
}

func TestTraceSerialisation(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 0, Flow: 1, Length: 5, Dst: 2},
		{Cycle: 3, Flow: 0, Length: 1, Dst: 0},
		{Cycle: 3, Flow: 2, Length: 9, Dst: 7},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip count %d", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("1 2 three 4\n")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestReplaySortsEvents(t *testing.T) {
	rp := NewReplay([]TraceEvent{
		{Cycle: 5, Flow: 1, Length: 1},
		{Cycle: 2, Flow: 0, Length: 1},
	})
	if ps := rp.Arrivals(2, fixedView{}); len(ps) != 1 || ps[0].Flow != 0 {
		t.Fatal("replay did not sort events by cycle")
	}
}
