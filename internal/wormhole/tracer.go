package wormhole

import "repro/internal/flit"

// BlockReason classifies why a granted packet (an active output-queue
// lock) could not forward a flit at a visit, for flight-recorder
// latency decomposition. The two hard reasons (InputEmpty, NoCredit)
// quiesce the output until an instrumented event and are therefore
// reported as intervals — Blocked when the interval opens, Unblocked
// when the closing event commits. The soft reasons are reported once
// per blocked visit; soft visits happen identically in every stepping
// mode because a soft-blocked output stays on the pending work-list,
// so the router is stepped at those cycles whether the owner advances
// cycle by cycle or event to event.
type BlockReason uint8

const (
	// BlockContend: lost the output link's flit-level round-robin to
	// another VC this cycle, or another output already moved a flit
	// from the same input port (one read per input port per cycle).
	BlockContend BlockReason = iota
	// BlockArrival: the next flit is buffered but arrived this cycle
	// (one hop per cycle).
	BlockArrival
	// BlockNoSpace: the downstream shared-buffer gate refused the VC
	// (stop/go links poll, so this is a soft per-visit report).
	BlockNoSpace
	// BlockInputEmpty: the worm is starved upstream — the input FIFO
	// holds no flit. Interval: closed by the next flit arrival.
	BlockInputEmpty
	// BlockNoCredit: downstream credits are exhausted. Interval:
	// closed by the next credit return.
	BlockNoCredit
)

// Tracer observes the lifecycle of packets traversing a Router, at
// the exact points the router mutates its own state. All calls happen
// either inside Compute (Granted, Blocked, Departed — single-threaded
// per router) or inside the serial commit phase (HeadArrived,
// HeadEligible, the Unblocked closers), never concurrently for one
// router, so implementations need no locking.
//
// Granted returns whether the tracer is following the granted packet;
// the router caches the answer on the lock and skips every subsequent
// call for untraced packets, so a sampling tracer costs the hot loop
// nothing for the packets it ignores.
type Tracer interface {
	// HeadArrived reports a head (or head+tail) flit buffered into
	// input (port, vc) at cycle — the packet's queue-entry instant at
	// this hop. The router filters non-head flits before calling.
	HeadArrived(port, vc int, h flit.Flit, cycle int64)
	// HeadEligible reports that the packet at the head of (port, vc)
	// was announced to its output arbiter at cycle (it now competes
	// for a grant).
	HeadEligible(port, vc int, pktID, cycle int64)
	// Granted reports that the head packet of (port, vc) won
	// arbitration for output queue (outPort, outVC) at cycle. The
	// return value elects the packet for further tracing.
	Granted(port, vc, outPort, outVC int, pktID, cycle int64) bool
	// Blocked reports a traced lock on input (port, vc) unable to
	// forward at a visited cycle, and why.
	Blocked(port, vc int, reason BlockReason, cycle int64)
	// Unblocked closes a hard Blocked interval: the event that ends
	// reason (a flit arrival for BlockInputEmpty, a credit return for
	// BlockNoCredit) committed at cycle. The router calls it on every
	// candidate closing event; implementations match it against the
	// open interval, if any.
	Unblocked(port, vc int, reason BlockReason, cycle int64)
	// Departed reports the traced packet's tail flit leaving through
	// (outPort, outVC) at cycle — the hop is complete and the lock
	// released.
	Departed(inPort, inVC, outPort, outVC int, tail flit.Flit, cycle int64)
}

// SetTracer installs (or with nil removes) a flight-recorder tracer.
// Install before traffic flows: packets granted while no tracer was
// installed are never traced.
func (r *Router) SetTracer(t Tracer) { r.tr = t }
