package fault_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestParseEmptySpecIsNil(t *testing.T) {
	for _, s := range []string{"", "   ", "\t\n"} {
		spec, err := fault.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if spec != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", s, spec)
		}
	}
	// A nil spec formats as the empty string.
	var nilSpec *fault.Spec
	if got := nilSpec.String(); got != "" {
		t.Fatalf("nil Spec String() = %q, want empty", got)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := fault.Parse("drop(p=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Directives) != 1 {
		t.Fatalf("got %d directives, want 1", len(spec.Directives))
	}
	d := spec.Directives[0]
	want := fault.Directive{Kind: "drop", Flow: -1, Port: -1, Router: -1, P: 0.5, MKind: fault.MalformedZeroLen}
	if d != want {
		t.Fatalf("directive = %+v, want %+v", d, want)
	}
}

func TestParseFullSpec(t *testing.T) {
	src := "stall(flow=2, at=100, dur=50); freeze(router=3,at=7); malformed(kind=duphead,p=0.25); corrupt(p=0.1,port=1); drop(p=1,router=2,port=4)"
	spec, err := fault.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != strings.TrimSpace(src) {
		t.Errorf("String() = %q, want the source text", got)
	}
	want := []fault.Directive{
		{Kind: "stall", Flow: 2, Port: -1, Router: -1, At: 100, Dur: 50, MKind: fault.MalformedZeroLen},
		{Kind: "freeze", Flow: -1, Port: -1, Router: 3, At: 7, MKind: fault.MalformedZeroLen},
		{Kind: "malformed", Flow: -1, Port: -1, Router: -1, P: 0.25, MKind: fault.MalformedDupHead},
		{Kind: "corrupt", Flow: -1, Port: 1, Router: -1, P: 0.1, MKind: fault.MalformedZeroLen},
		{Kind: "drop", Flow: -1, Port: 4, Router: 2, P: 1, MKind: fault.MalformedZeroLen},
	}
	if len(spec.Directives) != len(want) {
		t.Fatalf("got %d directives, want %d", len(spec.Directives), len(want))
	}
	for i, d := range spec.Directives {
		if d != want[i] {
			t.Errorf("directive %d = %+v, want %+v", i, d, want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // required substring of the error
	}{
		{"bogus(p=1)", "unknown directive kind"},
		{"stall", "not kind(key=value,...)"},
		{"stall(at)", "not key=value"},
		{"stall(at=x)", `key "at"`},
		{"stall(at=-1)", "at >= 0"},
		{"stall(dur=-2)", "dur >= 0"},
		{"drop()", "requires p > 0"},
		{"drop(p=0)", "requires p > 0"},
		{"drop(p=1.5)", "outside [0,1]"},
		{"drop(p=-0.1)", "outside [0,1]"},
		{"corrupt(p=0)", "requires p > 0"},
		{"malformed(kind=weird,p=0.5)", "unknown malformed kind"},
		{"malformed(p=0.5,turbo=1)", "unknown key"},
		{";", "empty spec"},
	}
	for _, c := range cases {
		_, err := fault.Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}
