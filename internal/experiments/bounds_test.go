package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestRunBoundsClean runs a scaled-down sweep over every discipline
// and requires zero violations — the tier-1 version of the CI gate.
func TestRunBoundsClean(t *testing.T) {
	p := DefaultBoundsParams()
	p.FlowCounts = []int{4}
	p.Cycles = 10_000
	p.Workers = 1
	res, err := RunBounds(p)
	if err != nil {
		t.Fatalf("bounds sweep failed: %v", err)
	}
	if got := res.Violations(); got != 0 {
		t.Fatalf("%d bounds violations on a clean sweep", got)
	}
	if len(res.Cells) != len(BoundsSchedulers) {
		t.Fatalf("%d cells, want %d", len(res.Cells), len(BoundsSchedulers))
	}
	for _, c := range res.Cells {
		var departs int64
		for _, fr := range c.Reports {
			departs += fr.Departures
		}
		if departs == 0 {
			t.Errorf("%s cell saw no departures; nothing was checked", c.Scheduler)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range BoundsSchedulers {
		if !strings.Contains(out, s) {
			t.Errorf("rendered output missing %s section", s)
		}
	}
}

// The bounds formulas assume fault-free arrivals; the runner must
// refuse a -faults spec instead of silently reporting bogus
// violations.
func TestRunBoundsRejectsFaults(t *testing.T) {
	p := DefaultBoundsParams()
	p.Faults = "malformed(kind=zerolen,p=0.05)"
	if _, err := RunBounds(p); err == nil {
		t.Fatal("faulted bounds sweep accepted")
	}
}

// TestDRRGoldenUnderMalformedFaults pins the rejected-injection
// audit end to end: zerolen/badflow fault packets are refused at the
// injection point before any scheduler callback, so a DRR run under
// them is byte-identical to the fault-free run — the LengthAware
// length FIFO never desyncs.
func TestDRRGoldenUnderMalformedFaults(t *testing.T) {
	run := func(spec string) *SimResult {
		cfg := backloggedCfg(3, 20_000, sched.NewDRR(64, nil), 11)
		cfg.FaultSpec = spec
		cfg.FaultSeed = 5
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("RunSim(%q): %v", spec, err)
		}
		return res
	}
	clean := run("")
	faulted := run("malformed(kind=zerolen,p=0.05);malformed(kind=badflow,p=0.05)")
	if faulted.Faults.Malformed == 0 || faulted.Rejected == 0 {
		t.Fatalf("faults never fired: %+v rejected=%d", faulted.Faults, faulted.Rejected)
	}
	for f := 0; f < 3; f++ {
		if clean.Throughput.Flits(f) != faulted.Throughput.Flits(f) {
			t.Fatalf("flow %d throughput differs under rejected-only faults: %d vs %d",
				f, clean.Throughput.Flits(f), faulted.Throughput.Flits(f))
		}
	}
}
