// Package rng provides the deterministic pseudo-random number
// generation used throughout the simulations. Every experiment in the
// reproduction is seeded, so a run is exactly repeatable — a property
// the paper's multi-user fairness argument makes a point of
// ("repeatable performance necessary for benchmark applications").
//
// The core generator is SplitMix64 (Steele, Lea & Flood), which is
// tiny, fast, passes BigCrush when used as a 64-bit stream, and —
// crucially for us — is *splittable*: each traffic source derives an
// independent stream from the experiment seed, so adding a flow never
// perturbs the arrival sequence of another flow.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit PRNG stream.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream. The parent advances, so
// successive Split calls yield distinct children.
func (s *Source) Split() *Source {
	// Mix the parent's next output with an odd constant so that
	// child streams starting from small seeds do not overlap the
	// parent's trajectory.
	return &Source{state: s.Uint64()*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}
}

// Derive mixes a base seed with a sequence of labels (sweep-point
// index, repeat number, ...) into an independent seed. It is the
// explicit per-job seed derivation used by the parallel experiment
// runners: every job builds its own Source from
// Derive(seed, labels...), so jobs never share a stream and the
// result of a sweep is independent of worker count and execution
// order. Additive schemes (seed + k*prime) can collide across label
// dimensions; Derive runs every label through the SplitMix64
// finalizer, so distinct label tuples yield decorrelated seeds.
func Derive(base uint64, labels ...uint64) uint64 {
	s := Source{state: base}
	out := s.Uint64()
	for _, l := range labels {
		s.state = out ^ (l + 0x9e3779b97f4a7c15)
		out = s.Uint64()
	}
	return out
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Int63n(int64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
// Unlike Intn it is safe for bounds beyond 2^31 on every platform —
// the draw the 4-million-cycle (and longer) service-log interval
// sampling needs. Intn(n) and Int63n(int64(n)) consume the stream
// identically, so switching between them never perturbs a seeded run.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int64(hi)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed float with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with lambda <= 0")
	}
	// Inverse transform; Float64 < 1 guarantees the log argument > 0.
	return -math.Log(1-s.Float64()) / lambda
}

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's method for small means and a normal approximation
// beyond that (mean > 30), which is more than accurate enough for
// arrival batching in the simulations.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		n := int(s.Normal()*math.Sqrt(mean) + mean + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal returns a standard normal variate (Box–Muller).
func (s *Source) Normal() float64 {
	u1 := 1 - s.Float64() // (0,1]
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
