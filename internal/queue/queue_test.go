package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/flit"
)

func TestPacketQueueFIFO(t *testing.T) {
	var q PacketQueue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 1; i <= 100; i++ {
		q.Push(flit.Packet{Flow: i, Length: i})
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	wantFlits := int64(100 * 101 / 2)
	if q.FlitBacklog() != wantFlits {
		t.Fatalf("FlitBacklog = %d, want %d", q.FlitBacklog(), wantFlits)
	}
	for i := 1; i <= 100; i++ {
		if got := q.Peek(); got.Flow != i {
			t.Fatalf("Peek().Flow = %d, want %d", got.Flow, i)
		}
		if got := q.Pop(); got.Flow != i || got.Length != i {
			t.Fatalf("Pop() = %+v, want flow/len %d", got, i)
		}
	}
	if !q.Empty() || q.FlitBacklog() != 0 {
		t.Fatal("queue not empty after draining")
	}
}

func TestPacketQueueInterleavedPushPop(t *testing.T) {
	var q PacketQueue
	next := 0
	out := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(flit.Packet{ID: int64(next), Length: 1})
			next++
		}
		for i := 0; i < 2; i++ {
			p := q.Pop()
			if p.ID != int64(out) {
				t.Fatalf("Pop order broken: got id %d, want %d", p.ID, out)
			}
			out++
		}
	}
	// Drain the remainder.
	for !q.Empty() {
		p := q.Pop()
		if p.ID != int64(out) {
			t.Fatalf("drain order broken: got id %d, want %d", p.ID, out)
		}
		out++
	}
	if out != next {
		t.Fatalf("drained %d packets, pushed %d", out, next)
	}
}

func TestPacketQueuePanics(t *testing.T) {
	var q PacketQueue
	assertPanics(t, "Pop", func() { q.Pop() })
	assertPanics(t, "Peek", func() { q.Peek() })
}

// TestPacketQueueShrinksAfterBurst pins the memory-retention fix: a
// queue that absorbed a large burst must release the burst's backing
// array as it drains instead of holding its high-water capacity
// forever.
func TestPacketQueueShrinksAfterBurst(t *testing.T) {
	var q PacketQueue
	const burst = 1 << 14
	for i := 0; i < burst; i++ {
		q.Push(flit.Packet{ID: int64(i), Length: 1})
	}
	peak := q.Cap()
	if peak < burst {
		t.Fatalf("Cap = %d after %d pushes", peak, burst)
	}
	for i := 0; i < burst; i++ {
		if p := q.Pop(); p.ID != int64(i) {
			t.Fatalf("FIFO order broken during shrink: got %d, want %d", p.ID, i)
		}
	}
	if q.Cap() > shrinkCap {
		t.Fatalf("Cap = %d after drain, want <= %d (peak was %d)", q.Cap(), shrinkCap, peak)
	}
	// The queue stays fully usable after shrinking.
	q.Push(flit.Packet{ID: 99, Length: 2})
	if q.Pop().ID != 99 || !q.Empty() {
		t.Fatal("queue unusable after shrink")
	}
}

// TestPacketQueueShrinkKeepsOrderUnderChurn interleaves pushes and
// pops across grow/shrink boundaries and checks strict FIFO order.
func TestPacketQueueShrinkKeepsOrderUnderChurn(t *testing.T) {
	var q PacketQueue
	next, out := 0, 0
	// Ramp up past several grow steps, then drain below shrink
	// thresholds, repeatedly.
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 500; i++ {
			q.Push(flit.Packet{ID: int64(next), Length: 1})
			next++
		}
		for i := 0; i < 480; i++ {
			if p := q.Pop(); p.ID != int64(out) {
				t.Fatalf("cycle %d: got %d, want %d", cycle, p.ID, out)
			}
			out++
		}
	}
	for !q.Empty() {
		if p := q.Pop(); p.ID != int64(out) {
			t.Fatalf("drain: got %d, want %d", p.ID, out)
		}
		out++
	}
	if out != next {
		t.Fatalf("popped %d, pushed %d", out, next)
	}
}

func TestFlitQueueBounded(t *testing.T) {
	q := NewFlitQueue(3)
	if q.Cap() != 3 || q.Free() != 3 {
		t.Fatalf("Cap/Free = %d/%d, want 3/3", q.Cap(), q.Free())
	}
	for i := 0; i < 3; i++ {
		if !q.Push(flit.Flit{Seq: i}) {
			t.Fatalf("Push %d rejected before full", i)
		}
	}
	if !q.Full() || q.Free() != 0 {
		t.Fatal("queue should be full")
	}
	if q.Push(flit.Flit{Seq: 3}) {
		t.Fatal("Push accepted on full queue")
	}
	if f := q.Pop(); f.Seq != 0 {
		t.Fatalf("Pop Seq = %d, want 0", f.Seq)
	}
	if q.Full() {
		t.Fatal("queue still full after Pop")
	}
	if !q.Push(flit.Flit{Seq: 3}) {
		t.Fatal("Push rejected after freeing a slot")
	}
	// Remaining order must be 1,2,3.
	for want := 1; want <= 3; want++ {
		if f := q.Pop(); f.Seq != want {
			t.Fatalf("Pop Seq = %d, want %d", f.Seq, want)
		}
	}
}

func TestFlitQueueUnbounded(t *testing.T) {
	q := NewFlitQueue(0)
	for i := 0; i < 1000; i++ {
		if !q.Push(flit.Flit{Seq: i}) {
			t.Fatalf("unbounded Push %d rejected", i)
		}
	}
	if q.Full() {
		t.Fatal("unbounded queue reported full")
	}
	if q.Free() <= 0 {
		t.Fatal("unbounded Free() not positive")
	}
	for i := 0; i < 1000; i++ {
		if f := q.Pop(); f.Seq != i {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestFlitQueuePanics(t *testing.T) {
	q := NewFlitQueue(2)
	assertPanics(t, "Pop", func() { q.Pop() })
	assertPanics(t, "Peek", func() { q.Peek() })
}

func TestActiveListBasics(t *testing.T) {
	var l ActiveList
	if !l.Empty() {
		t.Fatal("zero value not empty")
	}
	l.PushTail(5)
	l.PushTail(2)
	l.PushTail(9)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if !l.Contains(5) || !l.Contains(2) || !l.Contains(9) {
		t.Fatal("Contains lost a member")
	}
	if l.Contains(0) || l.Contains(100) {
		t.Fatal("Contains reported a non-member")
	}
	if got := l.PeekHead(); got != 5 {
		t.Fatalf("PeekHead = %d, want 5", got)
	}
	if got := l.Snapshot(); len(got) != 3 || got[0] != 5 || got[1] != 2 || got[2] != 9 {
		t.Fatalf("Snapshot = %v", got)
	}
	if got := l.PopHead(); got != 5 {
		t.Fatalf("PopHead = %d, want 5", got)
	}
	if l.Contains(5) {
		t.Fatal("popped flow still a member")
	}
	// Re-adding after pop is the normal round-robin cycle.
	l.PushTail(5)
	want := []int{2, 9, 5}
	for _, w := range want {
		if got := l.PopHead(); got != w {
			t.Fatalf("PopHead = %d, want %d", got, w)
		}
	}
}

func TestActiveListPanics(t *testing.T) {
	var l ActiveList
	assertPanics(t, "PopHead empty", func() { l.PopHead() })
	assertPanics(t, "PeekHead empty", func() { l.PeekHead() })
	assertPanics(t, "negative id", func() { l.PushTail(-1) })
	l.PushTail(3)
	assertPanics(t, "duplicate add", func() { l.PushTail(3) })
}

// Property: an ActiveList behaves like a FIFO of unique ids — for any
// sequence of (add id, pop) operations, pops come out in insertion
// order and membership is consistent.
func TestActiveListFIFOProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		var l ActiveList
		var model []int
		for _, op := range ops {
			id := int(op % 32)
			if op%3 == 0 && len(model) > 0 {
				got := l.PopHead()
				if got != model[0] {
					return false
				}
				model = model[1:]
			} else if !l.Contains(id) {
				l.PushTail(id)
				model = append(model, id)
			}
			if l.Len() != len(model) {
				return false
			}
		}
		// Drain and compare.
		for _, w := range model {
			if l.PopHead() != w {
				return false
			}
		}
		return l.Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PacketQueue preserves FIFO order and flit accounting for
// arbitrary push/pop interleavings.
func TestPacketQueueProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		var q PacketQueue
		var model []flit.Packet
		var backlog int64
		nextID := int64(0)
		for _, op := range ops {
			if op%4 == 0 && len(model) > 0 {
				got := q.Pop()
				want := model[0]
				model = model[1:]
				backlog -= int64(want.Length)
				if got.ID != want.ID {
					return false
				}
			} else {
				p := flit.Packet{ID: nextID, Length: int(op%7) + 1}
				nextID++
				q.Push(p)
				model = append(model, p)
				backlog += int64(p.Length)
			}
			if q.Len() != len(model) || q.FlitBacklog() != backlog {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
