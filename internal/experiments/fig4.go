package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fig4Params parameterises the Figure 4 throughput-fairness
// experiments: 8 flows kept active for the whole run; the packet
// arrival rate into flow 3 is twice that of the other flows; packet
// lengths are U[1,64] flits except flow 2's, which are U[1,128];
// flits are 8 bytes and the output forwards one flit per cycle.
type Fig4Params struct {
	Flows  int
	Cycles int64
	Seed   uint64
	// Oversubscription is the ratio of total offered flit rate to the
	// output capacity. The paper requires every flow to stay active
	// ("we ensure that all the flows are active"), which needs every
	// individual flow's offered rate to exceed its fair share (1/8 of
	// capacity); with the Figure 4 rate mix that requires a total
	// oversubscription of at least ~1.3. The default 1.5 gives the
	// slowest flows a ~20% margin.
	Oversubscription float64
	// DRRQuantum is the quantum used by the DRR comparison; the
	// classical O(1) provisioning is Max = 128.
	DRRQuantum int64
	// Workers caps the worker pool running the per-discipline jobs
	// (0 = GOMAXPROCS, 1 = serial). The result is byte-identical for
	// every value: each job owns its workload and rng stream.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Collector, if set, accumulates registry telemetry from every
	// grid job (see SimConfig.Collector); it never affects the result.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired into every
	// grid job (see SimConfig.Trace); each job becomes one span track.
	Trace *trace.EngineTrace `json:"-"`
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs.
	Robustness
}

// DefaultFig4Params returns the paper's parameters (4 million
// cycles).
func DefaultFig4Params() Fig4Params {
	return Fig4Params{
		Flows:            8,
		Cycles:           4_000_000,
		Seed:             1,
		Oversubscription: 1.5,
		DRRQuantum:       128,
	}
}

// Fig4Result holds per-flow transmitted KBytes for each compared
// discipline, keyed in the order the disciplines were run.
type Fig4Result struct {
	Params      Fig4Params
	Disciplines []string
	// KBytes[d][f] is the volume flow f transmitted under discipline
	// d, in KBytes (the paper's y-axis).
	KBytes [][]float64
}

// fig4Source builds the Figure 4 arrival process with a fresh
// deterministic stream, so every discipline sees the identical
// workload.
func fig4Source(p Fig4Params) traffic.Source {
	src := rng.New(p.Seed)
	// Mean lengths: U[1,64] -> 32.5 flits, U[1,128] -> 64.5 flits.
	// Total flit rate at base packet rate r:
	//   6 flows * 32.5r + 64.5r (flow 2) + 2r*32.5 (flow 3)
	// = (6*32.5 + 64.5 + 65) r = 324.5 r.
	r := p.Oversubscription / 324.5
	var sources []traffic.Source
	for f := 0; f < p.Flows; f++ {
		rate := r
		dist := rng.LengthDist(rng.NewUniform(1, 64))
		if f == 2 {
			dist = rng.NewUniform(1, 128)
		}
		if f == 3 {
			rate = 2 * r
		}
		sources = append(sources, traffic.NewBernoulli(f, rate, dist, src.Split()))
	}
	return traffic.NewMulti(sources...)
}

// RunFig4 runs ERR and the requested baselines on the identical
// workload and returns per-flow KBytes. panel selects the paper's
// sub-figure: "a" (PBRR), "b" (FBRR), "c" (FCFS), "d" (DRR), or
// "all".
func RunFig4(p Fig4Params, panel string) (*Fig4Result, error) {
	type run struct {
		name string
		pkt  func() sched.Scheduler
		flit func() sched.FlitScheduler
	}
	runs := []run{{name: "ERR", pkt: func() sched.Scheduler { return core.New() }}}
	add := func(rs ...run) { runs = append(runs, rs...) }
	switch panel {
	case "a":
		add(run{name: "PBRR", pkt: func() sched.Scheduler { return sched.NewPBRR() }})
	case "b":
		add(run{name: "FBRR", flit: func() sched.FlitScheduler { return sched.NewFBRR() }})
	case "c":
		add(run{name: "FCFS", pkt: func() sched.Scheduler { return sched.NewFCFS() }})
	case "d":
		add(run{name: "DRR", pkt: func() sched.Scheduler { return sched.NewDRR(p.DRRQuantum, nil) }})
	case "all":
		add(
			run{name: "PBRR", pkt: func() sched.Scheduler { return sched.NewPBRR() }},
			run{name: "FBRR", flit: func() sched.FlitScheduler { return sched.NewFBRR() }},
			run{name: "FCFS", pkt: func() sched.Scheduler { return sched.NewFCFS() }},
			run{name: "DRR", pkt: func() sched.Scheduler { return sched.NewDRR(p.DRRQuantum, nil) }},
		)
	default:
		return nil, fmt.Errorf("experiments: unknown Figure 4 panel %q", panel)
	}

	// One job per discipline; every job builds its own workload from
	// the shared seed, so all disciplines see the identical arrival
	// sequence whatever the worker count.
	jobs := make([]exec.Job[[]float64], len(runs))
	for i, r := range runs {
		i, r := i, r
		jobs[i] = func() ([]float64, error) {
			cfg := SimConfig{
				Flows:     p.Flows,
				Source:    fig4Source(p),
				Cycles:    p.Cycles,
				Collector: p.Collector,
				Trace:     p.Trace,
				FaultSpec: p.Faults,
				FaultSeed: p.faultSeed(p.Seed, i),
				Check:     p.Check,
			}
			if r.pkt != nil {
				cfg.Scheduler = r.pkt()
			} else {
				cfg.FlitSched = r.flit()
			}
			sim, err := RunSim(cfg)
			if err != nil {
				return nil, err
			}
			kb := make([]float64, p.Flows)
			for f := 0; f < p.Flows; f++ {
				kb[f] = sim.Throughput.KBytes(f)
			}
			return kb, nil
		}
	}
	opts, closeCP, err := gridOptions("fig4", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	kbs, err := exec.Run(jobs, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Params: p}
	for i, r := range runs {
		res.Disciplines = append(res.Disciplines, r.name)
		res.KBytes = append(res.KBytes, kbs[i])
	}
	return res, nil
}

// Render writes the result as per-discipline bar charts plus a CSV
// block.
func (r *Fig4Result) Render(w io.Writer) error {
	labels := make([]string, r.Params.Flows)
	for f := range labels {
		labels[f] = fmt.Sprintf("flow %d", f)
	}
	for i, d := range r.Disciplines {
		title := fmt.Sprintf("Figure 4: KBytes transmitted per flow — %s (%d cycles)", d, r.Params.Cycles)
		if err := plot.Bar(w, title, labels, r.KBytes[i], 50); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	header := []string{"flow"}
	header = append(header, r.Disciplines...)
	rows := make([][]float64, r.Params.Flows)
	for f := 0; f < r.Params.Flows; f++ {
		row := []float64{float64(f)}
		for i := range r.Disciplines {
			row = append(row, r.KBytes[i][f])
		}
		rows[f] = row
	}
	return plot.CSV(w, header, rows)
}
