package serve

import (
	"fmt"
	"time"
)

// dispatch is the arbiter goroutine: whenever a worker slot is free it
// asks the scheduler which flow serves next, evicts that flow's
// expired waiters, and grants the flow's head request to its waiting
// goroutine. All scheduler calls in the process happen here or under
// the same lock, so WallERR needs no internal locking.
func (s *Server) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return
		}
		if s.freeSlots == 0 || s.draining {
			s.cond.Wait()
			continue
		}
		flow := s.sched.NextFlow()
		if flow == -1 {
			s.cond.Wait()
			continue
		}
		f := s.flows[flow]

		// Evict expired waiters before dispatch: a request whose
		// deadline already passed must never reach a worker. (Its own
		// timer fires at the deadline too; this sweep wins when the
		// dispatcher gets there first.)
		now := s.cfg.now()
		for {
			r := f.peek()
			if r == nil || r.deadline.IsZero() || r.deadline.After(now) {
				break
			}
			f.pop()
			r.state = reqDeadline
			close(r.ready)
			f.expired++
			s.queuedBytes -= r.bytes
			s.queuedReqs--
			s.m.expired.Inc()
		}
		if f.len() == 0 {
			// Everything this flow had queued was evicted (here, by a
			// budget shed, or by waiters' own timers).
			s.sched.OnEvicted(flow, true)
			s.m.queued.Set(int64(s.queuedReqs))
			s.m.queuedBytes.Set(s.queuedBytes)
			continue
		}

		req := f.pop()
		req.state = reqGranted
		req.token = s.sched.OnDispatch(flow, f.len() == 0)
		f.granted++
		f.wait.Observe(now.Sub(req.enq).Milliseconds())
		s.queuedBytes -= req.bytes
		s.queuedReqs--
		s.freeSlots--
		s.inflight++
		s.m.granted.Inc()
		s.m.queued.Set(int64(s.queuedReqs))
		s.m.queuedBytes.Set(s.queuedBytes)
		s.m.inflight.Set(int64(s.inflight))
		s.m.waitMS.Observe(now.Sub(req.enq).Milliseconds())
		s.checkQuickLocked()
		close(req.ready)
	}
}

// Drain gracefully shuts the server down: new arrivals are rejected
// with 503, every queued request is evicted with 503 (a retry against
// another replica beats waiting out a dying one), and in-flight
// handlers get up to timeout to finish. It returns nil when the
// server drained cleanly and an error naming the stragglers when the
// timeout expired with handlers still running. Drain is idempotent;
// concurrent callers all wait.
func (s *Server) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, f := range s.flows {
			for f.len() > 0 {
				r := f.pop()
				r.state = reqDrained
				close(r.ready)
				f.drained++
				s.queuedBytes -= r.bytes
				s.queuedReqs--
				s.m.drainEvicted.Inc()
			}
			s.sched.OnEvicted(f.id, true)
		}
		s.m.queued.Set(int64(s.queuedReqs))
		s.m.queuedBytes.Set(s.queuedBytes)
		if s.queuedReqs != 0 || s.queuedBytes != 0 {
			s.m.violation("drain left queued=%d bytes=%d", s.queuedReqs, s.queuedBytes)
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	// Wait for in-flight handlers. A timer broadcast bounds the wait.
	t := time.AfterFunc(timeout, s.cond.Broadcast)
	defer t.Stop()
	s.mu.Lock()
	for s.inflight > 0 && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	left := s.inflight
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	if left > 0 {
		return fmt.Errorf("serve: drain timeout after %v with %d requests in flight", timeout, left)
	}
	return nil
}

// Close immediately stops the dispatcher without waiting for
// in-flight handlers; queued waiters are evicted with 503 so their
// goroutines do not leak. For tests — production exits call Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	for _, f := range s.flows {
		for f.len() > 0 {
			r := f.pop()
			r.state = reqDrained
			close(r.ready)
			f.drained++
			s.queuedBytes -= r.bytes
			s.queuedReqs--
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}
