package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wormhole"
)

// ParkingLotParams parameterises the parking-lot experiment: a chain
// of wormhole switches, one backlogged source injecting at each hop,
// all traffic destined past the last switch. Per-link fair
// arbitration (unweighted ERR at every merge point) famously yields
// geometric end-to-end shares — the source nearest the sink gets 1/2,
// the next 1/4, and so on — because each merge treats "one local
// flow" and "the aggregate of all upstream flows" as equals. Weighted
// ERR with the through-port weighted by the number of upstream
// sources restores equal end-to-end shares, a concrete use of the
// weighted extension.
type ParkingLotParams struct {
	// Hops is the number of switches (and sources).
	Hops int
	// Cycles is the simulation length.
	Cycles int64
	// PacketLen is the fixed packet length in flits.
	PacketLen int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Workers caps the worker pool running the two arbitration
	// variants (0 = GOMAXPROCS, 1 = serial). The result is
	// byte-identical for every value.
	Workers int
	// Seed seeds the fault injector's randomness (the workload itself
	// is deterministic).
	Seed uint64
	// Robustness carries the fault-injection, invariant-checking and
	// checkpoint/resume knobs. Router-scoped directives address chain
	// switches 0..Hops-1; port 0 is the through/sink output.
	Robustness
}

// DefaultParkingLotParams returns defaults.
func DefaultParkingLotParams() ParkingLotParams {
	return ParkingLotParams{Hops: 4, Cycles: 400_000, PacketLen: 8}
}

// ParkingLotResult holds per-source delivered flits and shares under
// both arbitrations.
type ParkingLotResult struct {
	Params ParkingLotParams
	// ShareERR[i] and ShareWERR[i] are source i's fraction of the
	// sink's delivered flits (source 0 is farthest from the sink).
	ShareERR  []float64
	ShareWERR []float64
}

// RunParkingLot runs the chain under unweighted and weighted ERR.
func RunParkingLot(p ParkingLotParams) (*ParkingLotResult, error) {
	if p.Hops < 2 {
		return nil, fmt.Errorf("experiments: parking lot needs >= 2 hops")
	}
	run := func(weighted bool, job int) ([]float64, error) {
		spec, err := fault.Parse(p.Faults)
		if err != nil {
			return nil, err
		}
		finj := fault.New(spec, p.faultSeed(p.Seed, job))
		routers := make([]*wormhole.Router, p.Hops)
		for i := 0; i < p.Hops; i++ {
			i := i
			newArb := func() sched.Scheduler { return core.New() }
			if weighted {
				// Flow ids at output 0's arbiter: 0 = through input
				// (port 0), 1 = local input (port 1). The through
				// aggregate carries i upstream sources.
				upstream := int64(i)
				newArb = func() sched.Scheduler {
					return core.NewWeighted(func(flow int) int64 {
						if flow == 0 && upstream > 0 {
							return upstream
						}
						return 1
					})
				}
			}
			r, err := wormhole.NewRouter(i, wormhole.Config{
				Ports:    2,
				VCs:      1,
				BufFlits: 16,
				NewArb:   newArb,
				Route:    func(dst int) int { return 0 },
			})
			if err != nil {
				return nil, err
			}
			if f := finj.FreezeFunc(i); f != nil {
				r.SetFreeze(f)
			}
			for port := 0; port < 2; port++ {
				if f := finj.OutputFault(i, port); f != nil {
					r.SetOutputFault(port, f)
				}
			}
			routers[i] = r
		}
		for i := 0; i+1 < p.Hops; i++ {
			wormhole.Connect(routers[i], 0, routers[i+1], 0)
			// Port 1 is injection-only, but its output must not dangle
			// in case of misrouting; give it a sink.
			wormhole.ConnectEndpoint(routers[i], 1, &wormhole.Sink{})
		}
		wormhole.ConnectEndpoint(routers[p.Hops-1], 1, &wormhole.Sink{})
		sink := &wormhole.Sink{}
		served := make([]int64, p.Hops)
		sink.OnFlit = func(f flit.Flit, vc int, cycle int64) { served[f.Flow]++ }
		wormhole.ConnectEndpoint(routers[p.Hops-1], 0, sink)

		var rec *check.Recorder
		var wd *check.Watchdog
		if p.Check {
			rec = check.NewRecorder()
			rec.Register(obs.Default())
			stream := check.NewFlitStream(rec, "parking-lot sink")
			prev := sink.OnFlit
			sink.OnFlit = func(f flit.Flit, vc int, cycle int64) {
				stream.Observe(f, cycle)
				wd.Progress(cycle)
				prev(f, vc, cycle)
			}
			wd = check.NewWatchdog((&SimConfig{}).watchdogLimit(spec))
		}

		// Backlogged sources: source i injects at router i, port 1.
		pending := make([][]flit.Flit, p.Hops)
		for c := int64(0); c < p.Cycles; c++ {
			for i := 0; i < p.Hops; i++ {
				if pending[i] == nil {
					pk := flit.Packet{Flow: i, Length: p.PacketLen, Dst: 999}
					pending[i] = pk.Flits()
				}
				if routers[i].Inject(1, 0, pending[i][0], c) {
					pending[i] = pending[i][1:]
					if len(pending[i]) == 0 {
						pending[i] = nil
					}
				}
			}
			for _, r := range routers {
				r.Step(c)
			}
			// The sources are permanently backlogged, so the sink going
			// silent for the watchdog budget means the chain is wedged.
			if wd != nil && wd.Expired(c, 1) {
				var edges []wormhole.WaitEdge
				for _, r := range routers {
					edges = append(edges, r.WaitEdges(c)...)
				}
				return nil, fmt.Errorf("experiments: parking lot wedged at cycle %d (no delivery for %d cycles); channel-wait graph:\n%s",
					c, wd.Limit, noc.FormatWaitGraph(edges, 16))
			}
		}
		registerFaultCounters(obs.Default(), finj.Counters(), 0)
		if rec != nil {
			if err := rec.Err(); err != nil {
				return nil, fmt.Errorf("experiments: parking lot failed invariant checking: %w", err)
			}
		}
		var total int64
		for _, s := range served {
			total += s
		}
		shares := make([]float64, p.Hops)
		for i, s := range served {
			shares[i] = float64(s) / float64(total)
		}
		return shares, nil
	}
	// The two arbitration variants are independent chains — run them
	// as two jobs.
	opts, closeCP, err := gridOptions("parkinglot", p, p.Checkpoint, p.Resume, p.Progress)
	if err != nil {
		return nil, err
	}
	defer closeCP()
	shares, err := exec.Run([]exec.Job[[]float64]{
		func() ([]float64, error) { return run(false, 0) },
		func() ([]float64, error) { return run(true, 1) },
	}, p.Workers, opts...)
	if err != nil {
		return nil, err
	}
	return &ParkingLotResult{Params: p, ShareERR: shares[0], ShareWERR: shares[1]}, nil
}

// Render writes the share table.
func (r *ParkingLotResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Parking lot — %d-hop chain, per-source share of sink throughput\n", r.Params.Hops)
	fmt.Fprintln(tw, "source (0 = farthest)\tERR\tweighted ERR\tequal share")
	equal := 1.0 / float64(r.Params.Hops)
	for i := range r.ShareERR {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", i, r.ShareERR[i], r.ShareWERR[i], equal)
	}
	return tw.Flush()
}
