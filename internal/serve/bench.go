package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// BenchConfig parameterizes the saturation sweep. The nominal
// capacity is Workers * 1000/CostMS requests per second (every
// request costs CostMS of handler time); each saturation point offers
// that capacity scaled by the point's factor, split between Mice
// well-behaved tenants (together never more than half the capacity —
// within their fair share) and one elephant tenant that absorbs the
// rest, so every drop of overload is the elephant's. A fair front end
// must shed the elephant and keep the mice whole.
type BenchConfig struct {
	Workers  int
	CostMS   int
	QueueCap int
	Mice     int
	// Saturations are the offered-load factors (default 0.5, 1, 2, 10).
	Saturations []float64
	// Dur is the load duration per point.
	Dur  time.Duration
	Seed uint64
}

// BenchPoint is one saturation point's outcome.
type BenchPoint struct {
	Saturation float64 `json:"saturation"`
	OfferedRPS float64 `json:"offered_rps"`
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	// ReqPerSec is delivered goodput: completed 200s per second.
	ReqPerSec float64 `json:"req_per_sec"`
	// Latency is end-to-end (queue wait + service), per tenant class:
	// the elephant's p99 and the worst p99 among the mice.
	ElephantP99MS   int64   `json:"elephant_p99_ms"`
	MiceWorstP99MS  int64   `json:"mice_worst_p99_ms"`
	ElephantSuccess float64 `json:"elephant_success"`
	MiceMinSuccess  float64 `json:"mice_min_success"`
}

// BenchReport is the JSON shape written to BENCH_serve.json.
type BenchReport struct {
	Description string       `json:"description"`
	Date        string       `json:"date"`
	Workers     int          `json:"workers"`
	CostMS      int          `json:"cost_ms"`
	CapacityRPS float64      `json:"capacity_rps"`
	Mice        int          `json:"mice"`
	DurMS       int64        `json:"dur_ms"`
	Seed        uint64       `json:"seed"`
	Points      []BenchPoint `json:"points"`
}

// RunBench sweeps the saturation points, one fresh server per point so
// no state leaks between them.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.CostMS <= 0 {
		cfg.CostMS = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Mice <= 0 {
		cfg.Mice = 9
	}
	if len(cfg.Saturations) == 0 {
		cfg.Saturations = []float64{0.5, 1, 2, 10}
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 2 * time.Second
	}
	capacity := float64(cfg.Workers) * 1000 / float64(cfg.CostMS)

	rep := &BenchReport{
		Description: "errserve saturation sweep: open-loop elephant-vs-mice load against the wall-clock ERR front end. At each point the offered load is saturation * capacity; the mice together get at most half the capacity (within their fair share, split evenly) and one elephant tenant offers all the rest, so every drop of overload is the elephant's. req_per_sec is delivered 200s per second and the p99s are end-to-end (queue wait + service). The fairness property under test: past saturation the elephant is shed while every mouse keeps near-full success at bounded p99. Regenerate with: go run ./cmd/errserve -bench (run alone: wall-clock latencies are load-sensitive).",
		Date:        time.Now().Format("2006-01-02"),
		Workers:     cfg.Workers,
		CostMS:      cfg.CostMS,
		CapacityRPS: capacity,
		Mice:        cfg.Mice,
		DurMS:       cfg.Dur.Milliseconds(),
		Seed:        cfg.Seed,
	}

	for _, sat := range cfg.Saturations {
		offered := sat * capacity
		s, err := New(Config{
			Handler:  WorkHandler(),
			Workers:  cfg.Workers,
			QueueCap: cfg.QueueCap,
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}

		miceTotal := offered / 2
		if miceTotal > capacity/2 {
			miceTotal = capacity / 2
		}
		specs := []LoadSpec{{Tenant: "elephant", RPS: offered - miceTotal, CostMS: cfg.CostMS}}
		for i := 0; i < cfg.Mice; i++ {
			specs = append(specs, LoadSpec{
				Tenant: fmt.Sprintf("mouse-%d", i),
				RPS:    miceTotal / float64(cfg.Mice),
				CostMS: cfg.CostMS,
			})
		}
		results := RunLoad(s, specs, cfg.Seed, cfg.Dur)
		drainErr := s.Drain(10 * time.Second)
		s.Close()
		if drainErr != nil {
			return nil, fmt.Errorf("bench: saturation %g: %w", sat, drainErr)
		}
		if n, msgs := s.VerifyAccounting(); n != 0 {
			return nil, fmt.Errorf("bench: saturation %g: %d accounting violations: %v", sat, n, msgs)
		}

		pt := BenchPoint{Saturation: sat, OfferedRPS: offered, MiceMinSuccess: 1}
		for _, r := range results {
			pt.Sent += r.Sent
			pt.OK += r.OK
			pt.Shed += r.Shed
		}
		pt.ReqPerSec = float64(pt.OK) / cfg.Dur.Seconds()
		pt.ElephantSuccess = results[0].SuccessRate()
		for _, r := range results[1:] {
			if sr := r.SuccessRate(); sr < pt.MiceMinSuccess {
				pt.MiceMinSuccess = sr
			}
		}
		for _, ts := range s.Stats() {
			if ts.Tenant == "elephant" {
				pt.ElephantP99MS = ts.TotalP99MS
			} else if ts.TotalP99MS > pt.MiceWorstP99MS {
				pt.MiceWorstP99MS = ts.TotalP99MS
			}
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
