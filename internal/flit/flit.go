// Package flit models the units of data moved by a wormhole network:
// packets and the flits (flow-control digits) they are divided into.
//
// In a wormhole network only the head flit of a packet carries routing
// information; the remaining flits follow the path reserved by the
// head. A scheduler therefore cannot, in general, know how long a
// packet is (or how long it will occupy an output) until the tail flit
// has been forwarded. The types in this package keep packet length
// observable to the simulation infrastructure while the scheduling
// interfaces in package sched deliberately withhold it from the
// disciplines that must not use it.
package flit

import (
	"errors"
	"fmt"
)

// Kind identifies a flit's position within its packet.
type Kind uint8

const (
	// Head is the first flit of a packet. It is the only flit that
	// carries routing information in a wormhole network.
	Head Kind = iota
	// Body is an interior flit.
	Body
	// Tail is the last flit of a packet; forwarding it releases the
	// resources the head flit reserved.
	Tail
	// HeadTail marks the single flit of a one-flit packet.
	HeadTail
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "head+tail"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// DefaultFlitBytes is the flit width used throughout the paper's
// simulations: 8 bytes per flit (Section 5).
const DefaultFlitBytes = 8

// Flit is a single flow-control digit.
type Flit struct {
	// Flow is the id of the flow (or virtual channel) the flit belongs
	// to. Flit-granularity schedulers such as FBRR require every flit
	// to be tagged with its flow.
	Flow int
	// Kind is the flit's position within its packet.
	Kind Kind
	// Traced marks a flit of a packet the flight recorder sampled.
	// Stamped once at injection (a pure function of the trace seed
	// and PktID, so every stepping mode stamps identically) and
	// carried hop to hop, it lets routers skip every tracer call for
	// unsampled traffic without rehashing the id. False whenever no
	// recorder is attached.
	Traced bool
	// Seq is the flit's 0-based index within its packet.
	Seq int
	// Dst is the destination carried by the head flit (meaningful only
	// when Kind is Head or HeadTail); used by the NoC substrate.
	Dst int
	// PktID is the id of the packet the flit belongs to, used by the
	// NoC substrate for end-to-end latency accounting.
	PktID int64
}

// Packet is a unit of scheduling: a sequence of flits that must be
// forwarded contiguously into an output queue.
type Packet struct {
	// Flow is the id of the flow the packet belongs to.
	Flow int
	// Length is the packet length in flits. Always >= 1.
	Length int
	// Dst is the destination node (used by the NoC substrate; zero for
	// the single-server experiments).
	Dst int
	// Arrival is the cycle at which the packet was enqueued, used for
	// delay measurement.
	Arrival int64
	// ID is a unique id assigned by the source, for tracing.
	ID int64
}

// Bytes returns the packet size in bytes for the given flit width.
func (p Packet) Bytes(flitBytes int) int { return p.Length * flitBytes }

// FlitAt returns the i-th flit of the packet (0 <= i < p.Length).
// It panics if i is out of range, mirroring slice indexing.
func (p Packet) FlitAt(i int) Flit {
	if i < 0 || i >= p.Length {
		panic(fmt.Sprintf("flit: index %d out of range for packet of %d flits", i, p.Length))
	}
	return Flit{Flow: p.Flow, Kind: kindAt(i, p.Length), Seq: i, Dst: p.Dst, PktID: p.ID}
}

// Flits materialises the packet as a slice of flits. Intended for
// tests and for the flit-granularity paths of the switch substrate;
// the single-server engine never materialises flits.
func (p Packet) Flits() []Flit {
	fs := make([]Flit, p.Length)
	for i := range fs {
		fs[i] = p.FlitAt(i)
	}
	return fs
}

// AppendFlits appends the packet's flits to dst and returns the
// extended slice — the allocation-free counterpart of Flits for hot
// injection paths that reuse one buffer across packets.
func (p Packet) AppendFlits(dst []Flit) []Flit {
	for i := 0; i < p.Length; i++ {
		dst = append(dst, Flit{Flow: p.Flow, Kind: kindAt(i, p.Length), Seq: i, Dst: p.Dst, PktID: p.ID})
	}
	return dst
}

// String implements fmt.Stringer.
func (p Packet) String() string {
	return fmt.Sprintf("pkt{flow=%d len=%d dst=%d id=%d}", p.Flow, p.Length, p.Dst, p.ID)
}

func kindAt(i, length int) Kind {
	switch {
	case length == 1:
		return HeadTail
	case i == 0:
		return Head
	case i == length-1:
		return Tail
	default:
		return Body
	}
}

// Typed validation errors. Injection points (engine.Inject, the NoC
// injector, the test harness) reject malformed packets with one of
// these instead of panicking, so a fault-injected or adversarial
// source degrades into counted rejections rather than a crash. Match
// with errors.Is.
var (
	// ErrZeroLength marks a packet with no flits (Length < 1).
	ErrZeroLength = errors.New("flit: packet length < 1")
	// ErrBadFlow marks a negative (or otherwise unroutable) flow id.
	ErrBadFlow = errors.New("flit: bad flow id")
	// ErrMissingTail marks a flit sequence that ends without a tail.
	ErrMissingTail = errors.New("flit: missing tail flit")
	// ErrDuplicateHead marks a head flit arriving inside an open packet.
	ErrDuplicateHead = errors.New("flit: duplicate head flit")
	// ErrBadSequence marks out-of-order, mixed-packet, or truncated
	// flit sequences.
	ErrBadSequence = errors.New("flit: bad flit sequence")
)

// Validate reports whether the packet is well formed.
func (p Packet) Validate() error {
	if p.Length < 1 {
		return fmt.Errorf("%w: length %d", ErrZeroLength, p.Length)
	}
	if p.Flow < 0 {
		return fmt.Errorf("%w: flow %d", ErrBadFlow, p.Flow)
	}
	return nil
}

// FlitsChecked materialises the packet as a slice of flits after
// validating it, returning a typed error for malformed packets where
// Flits would silently yield an empty slice (zero-length) or flits
// with a negative flow id.
func (p Packet) FlitsChecked() ([]Flit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Flits(), nil
}

// ValidateFlits checks that a flit sequence forms exactly the
// well-formed packets a wormhole channel may carry: each packet opens
// with a Head (or is a single HeadTail), continues with Body flits of
// the same packet in Seq order, and closes with its Tail — no
// interleaving, no duplicate heads, no missing tails. It returns nil
// for an empty sequence and a typed error (ErrMissingTail,
// ErrDuplicateHead, ErrBadSequence, ErrBadFlow) naming the offending
// index otherwise. This is the oracle the invariant checker applies
// to delivered flit streams.
func ValidateFlits(fs []Flit) error {
	open := false     // inside a packet (head seen, tail pending)
	var id int64      // PktID of the open packet
	var flow, seq int // flow and next expected Seq of the open packet
	for i, f := range fs {
		if f.Flow < 0 {
			return fmt.Errorf("%w: flit %d flow %d", ErrBadFlow, i, f.Flow)
		}
		switch f.Kind {
		case HeadTail:
			if open {
				return fmt.Errorf("%w: flit %d opens a packet while packet %d is open", ErrDuplicateHead, i, id)
			}
		case Head:
			if open {
				return fmt.Errorf("%w: flit %d opens a packet while packet %d is open", ErrDuplicateHead, i, id)
			}
			open, id, flow, seq = true, f.PktID, f.Flow, 1
		case Body, Tail:
			if !open {
				return fmt.Errorf("%w: flit %d (%v) without a head", ErrBadSequence, i, f.Kind)
			}
			if f.PktID != id || f.Flow != flow {
				return fmt.Errorf("%w: flit %d belongs to packet %d, expected %d", ErrBadSequence, i, f.PktID, id)
			}
			if f.Seq != seq {
				return fmt.Errorf("%w: flit %d has seq %d, expected %d", ErrBadSequence, i, f.Seq, seq)
			}
			seq++
			if f.Kind == Tail {
				open = false
			}
		default:
			return fmt.Errorf("%w: flit %d has unknown kind %d", ErrBadSequence, i, uint8(f.Kind))
		}
	}
	if open {
		return fmt.Errorf("%w: packet %d still open at end of sequence", ErrMissingTail, id)
	}
	return nil
}
