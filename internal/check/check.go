// Package check is the runtime invariant checker of the
// reproduction: it attaches to a running simulation and continuously
// verifies the properties the paper proves (and the ones any wormhole
// switch must keep), reporting violations as structured,
// cycle-stamped errors instead of panics.
//
// Checked invariants, and where they come from:
//
//   - err.allowance — every ERR service opportunity grants an
//     allowance >= 1 (the paper's Section 3: "each flow gets an
//     opportunity to transmit at least one packet in each round").
//   - err.lemma1.upper — surplus count SC_i(r) <= m-1 where m is the
//     largest packet cost observed (Lemma 1 of the paper; with
//     occupancy billing m is the largest occupancy).
//   - err.lemma1.lower — SC_i(r) >= 0 for a flow that remains
//     backlogged (the other half of Lemma 1).
//   - err.activelist — a flow is on the ActiveList (or in service)
//     exactly when it has backlog (Figure 1's Enqueue/Dequeue
//     bookkeeping).
//   - flit.conservation — flits injected == flits forwarded + flits
//     in flight; nothing is created, duplicated, or silently lost
//     (faults that drop flits are accounted separately by the
//     injector, so conservation still closes).
//   - flow.fifo — packets of one flow depart in arrival order
//     (wormhole switching forwards a packet's flits contiguously and
//     queues are FIFO, so cross-packet reordering within a flow is
//     impossible in a correct implementation).
//   - flit.stream — a delivered flit stream is well-formed per flow:
//     head, bodies in sequence, tail, no interleaving of two packets
//     of the same flow (wormhole contiguity at the ejection point).
//   - progress.watchdog — a backlogged system forwards at least one
//     flit every N cycles; tripping it means deadlock or livelock,
//     and the wormhole substrate can then dump its channel-wait
//     graph (wormhole.Router.WaitEdges) for diagnosis.
//
// Violations carry the last few cycle-stamped simulation events so a
// report is actionable without re-running under a debugger. The
// checker never panics and never alters simulation behaviour; it only
// observes (engine callbacks, core.TraceSink, sink flit streams).
package check

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Invariant identifiers, as they appear in Violation.Invariant and in
// the obs registry ("check.violations.<invariant>").
const (
	InvAllowance    = "err.allowance"
	InvSurplusUpper = "err.lemma1.upper"
	InvSurplusLower = "err.lemma1.lower"
	InvActiveList   = "err.activelist"
	InvConservation = "flit.conservation"
	InvFIFO         = "flow.fifo"
	InvStream       = "flit.stream"
	InvWatchdog     = "progress.watchdog"

	// Reported by the analytic-bounds harness (internal/bounds): a
	// packet's observed delay, or a flow's observed backlog, exceeded
	// the network-calculus bound computed for the configuration.
	InvDelayBound   = "bounds.delay"
	InvBacklogBound = "bounds.backlog"
)

// Violation is one detected invariant breach. It implements error.
type Violation struct {
	// Cycle is the simulation cycle at which the breach was detected.
	Cycle int64 `json:"cycle"`
	// Invariant is one of the Inv* identifiers.
	Invariant string `json:"invariant"`
	// Flow is the flow involved, or -1 when not flow-specific.
	Flow int `json:"flow"`
	// Detail is a human-readable description with the observed and
	// expected values.
	Detail string `json:"detail"`
	// Trace holds the most recent cycle-stamped simulation events
	// leading up to the breach, oldest first.
	Trace []string `json:"trace,omitempty"`
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Flow >= 0 {
		return fmt.Sprintf("check: cycle %d: %s: flow %d: %s", v.Cycle, v.Invariant, v.Flow, v.Detail)
	}
	return fmt.Sprintf("check: cycle %d: %s: %s", v.Cycle, v.Invariant, v.Detail)
}

// ViolationError aggregates every violation a checker recorded.
type ViolationError struct {
	// Violations holds up to the checker's cap, in detection order.
	Violations []*Violation
	// Dropped counts violations beyond the cap.
	Dropped int
}

// Error implements error.
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s)", len(e.Violations)+e.Dropped)
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.Error())
	}
	if e.Dropped > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more", e.Dropped)
	}
	return b.String()
}

// Unwrap exposes the first violation to errors.Is/As.
func (e *ViolationError) Unwrap() error {
	if len(e.Violations) == 0 {
		return nil
	}
	return e.Violations[0]
}

// --- cycle-stamped event trace ----------------------------------------

// Event kinds recorded in the trace ring. Events are stored as plain
// integers and formatted only when a violation needs its trace, so
// tracing costs no allocation on the hot path.
const (
	evInject = iota
	evReject
	evDepart
	evRound
	evOpportunity
	evFlit
)

type event struct {
	cycle      int64
	kind       uint8
	a, b, c, d int64
}

func (e event) String() string {
	switch e.kind {
	case evInject:
		return fmt.Sprintf("c%-8d inject  flow=%d len=%d id=%d", e.cycle, e.a, e.b, e.c)
	case evReject:
		return fmt.Sprintf("c%-8d reject  flow=%d len=%d", e.cycle, e.a, e.b)
	case evDepart:
		return fmt.Sprintf("c%-8d depart  flow=%d id=%d occ=%d", e.cycle, e.a, e.b, e.c)
	case evRound:
		return fmt.Sprintf("c%-8d round   r=%d prevMaxSC=%d visits=%d", e.cycle, e.a, e.b, e.c)
	case evOpportunity:
		return fmt.Sprintf("c%-8d opp     flow=%d allow=%d sent=%d sc=%d", e.cycle, e.a, e.b, e.c, e.d)
	case evFlit:
		return fmt.Sprintf("c%-8d flit    flow=%d", e.cycle, e.a)
	}
	return fmt.Sprintf("c%-8d event kind=%d", e.cycle, e.kind)
}

// ring is a fixed-capacity event buffer.
type ring struct {
	buf  []event
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]event, n)} }

func (r *ring) add(e event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// dump returns the buffered events oldest-first, formatted.
func (r *ring) dump() []string {
	var evs []event
	if r.full {
		evs = append(evs, r.buf[r.next:]...)
		evs = append(evs, r.buf[:r.next]...)
	} else {
		evs = r.buf[:r.next]
	}
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

// --- recorder ---------------------------------------------------------

// DefaultMaxViolations bounds how many violations a Recorder keeps in
// full (structured, with traces); further ones are only counted. A
// broken invariant usually breaks every cycle from then on — keeping
// the first few with traces is what makes the report useful.
const DefaultMaxViolations = 16

// DefaultTraceEvents is the number of trailing events attached to a
// violation.
const DefaultTraceEvents = 24

// Recorder accumulates violations and the rolling event trace they
// are stamped with. The zero value is not ready; use NewRecorder.
// Recorders are not safe for concurrent use — one per simulation, as
// with every other per-run structure.
type Recorder struct {
	max        int
	violations []*Violation
	dropped    int
	trace      *ring

	// counter, when set, counts every violation in an obs registry.
	counter *obs.Counter
}

// NewRecorder returns a recorder with the default caps.
func NewRecorder() *Recorder {
	return &Recorder{
		max:   DefaultMaxViolations,
		trace: newRing(DefaultTraceEvents),
	}
}

// Register wires the recorder's violation count into reg as the
// "check.violations" counter.
func (r *Recorder) Register(reg *obs.Registry) *Recorder {
	r.counter = reg.Counter("check.violations")
	return r
}

// Report records a violation from an external auditor (the flight
// recorder's span checks report through here, so trace violations
// land in the same store, caps, and obs counter as the built-in
// invariants). The signature matches trace.Audit's report sink.
func (r *Recorder) Report(cycle int64, invariant string, flow int, format string, argv ...any) {
	r.report(cycle, invariant, flow, format, argv...)
}

// report records a violation, stamping it with the trailing events.
func (r *Recorder) report(cycle int64, invariant string, flow int, format string, argv ...any) {
	if r.counter != nil {
		r.counter.Inc()
	}
	if len(r.violations) >= r.max {
		r.dropped++
		return
	}
	r.violations = append(r.violations, &Violation{
		Cycle:     cycle,
		Invariant: invariant,
		Flow:      flow,
		Detail:    fmt.Sprintf(format, argv...),
		Trace:     r.trace.dump(),
	})
}

// Violations returns the recorded violations in detection order.
func (r *Recorder) Violations() []*Violation { return r.violations }

// Count returns the total number of violations detected, including
// those beyond the structured-storage cap.
func (r *Recorder) Count() int { return len(r.violations) + r.dropped }

// Err returns nil when no invariant was violated, else a
// *ViolationError aggregating everything recorded.
func (r *Recorder) Err() error {
	if r.Count() == 0 {
		return nil
	}
	return &ViolationError{Violations: r.violations, Dropped: r.dropped}
}

// AsViolations extracts the violations from an error produced by a
// Recorder (either a single *Violation or a *ViolationError).
func AsViolations(err error) []*Violation {
	var ve *ViolationError
	if errors.As(err, &ve) {
		return ve.Violations
	}
	var v *Violation
	if errors.As(err, &v) {
		return []*Violation{v}
	}
	return nil
}
