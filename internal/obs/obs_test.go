package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax = %d, want 9", got)
	}

	v := r.Vec("v", 3)
	v.Add(0, 2)
	v.Add(2, 5)
	if got := v.Sum(); got != 7 {
		t.Errorf("vec sum = %d, want 7", got)
	}
	if got := v.Values(); got[0] != 2 || got[1] != 0 || got[2] != 5 {
		t.Errorf("vec values = %v", got)
	}
}

func TestHistogramLog2(t *testing.T) {
	h := NewHistogram(HistogramOpts{Log2: true})
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); m != 500.5 {
		t.Errorf("mean = %v, want 500.5", m)
	}
	// Log2 quantiles are upper bounds of power-of-two buckets: the
	// 500th value (500) lies in [512, 1023)'s predecessor [256, 511].
	if p := h.Quantile(0.5); p != 511 {
		t.Errorf("p50 = %d, want 511", p)
	}
	// The top bucket's nominal bound (1023) exceeds the observed max;
	// the estimate must be clamped to it.
	if p := h.Quantile(0.99); p != 1000 {
		t.Errorf("p99 = %d, want clamped max 1000", p)
	}
	// Non-positive observations land in bucket 0.
	h.Observe(0)
	if p := h.Quantile(0); p != 0 {
		t.Errorf("p0 = %d, want 0", p)
	}
}

func TestHistogramLinear(t *testing.T) {
	h := NewHistogram(HistogramOpts{Width: 10, Buckets: 10})
	for v := int64(0); v < 100; v++ {
		h.Observe(v)
	}
	if p := h.Quantile(0.5); p != 59 {
		t.Errorf("p50 = %d, want 59 (upper bound of bucket [50,59])", p)
	}
	// Overflow bucket reports the observed max.
	h.Observe(5000)
	if p := h.Quantile(1); p != 5000 {
		t.Errorf("p100 = %d, want 5000", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(HistogramOpts{Log2: true})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("max = %d, want 1000", h.Max())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cycles").Add(42)
	r.Gauge("backlog").Set(3)
	r.Vec("flits", 2).Add(1, 9)
	r.Histogram("delay", HistogramOpts{Log2: true}).Observe(100)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["cycles"] != 42 {
		t.Errorf("counters = %v", back.Counters)
	}
	if back.Vecs["flits"][1] != 9 {
		t.Errorf("vecs = %v", back.Vecs)
	}
	if back.Histograms["delay"].Count != 1 || back.Histograms["delay"].Max != 100 {
		t.Errorf("histograms = %v", back.Histograms)
	}
}

func TestNewProgress(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, "sweep")
	p(1, 4)
	p(4, 4)
	out := sb.String()
	if !strings.Contains(out, "sweep: 4/4 (100.0%)") {
		t.Errorf("final progress line missing, got %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final progress line must end the line, got %q", out)
	}
	// Out-of-order completions (parallel pool) must not regress the
	// rendered count.
	sb.Reset()
	p2 := NewProgress(&sb, "x")
	p2(3, 3)
	p2(2, 3)
	if strings.Contains(sb.String(), "2/3") {
		t.Errorf("progress regressed: %q", sb.String())
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe").Add(11)
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for path, want := range map[string]string{
		"/debug/vars":               `"probe":11`,
		"/debug/pprof/":             "goroutine",
		"/debug/pprof/heap?debug=1": "heap profile",
	} {
		resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body does not contain %q", path, want)
		}
	}
}
