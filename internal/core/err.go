// Package core implements the paper's contribution: the Elastic
// Round Robin (ERR) packet scheduler of Kanhere, Parekh & Sethu
// (IPDPS 2000), a transcription of the pseudo-code in the paper's
// Figure 1, plus the weighted extension from the authors' follow-up
// work and the tracing hooks used to regenerate Figure 3.
//
// ERR serves active flows in round-robin order. In round r flow i is
// given the elastic allowance
//
//	A_i(r) = w_i*(1 + MaxSC(r-1)) - SC_i(r-1)        (w_i = 1 in the paper)
//
// and keeps starting new packets while the flits it has sent this
// round remain below the allowance. The last packet may overshoot —
// the allowance is elastic — and the overshoot is remembered in the
// flow's surplus count SC_i(r) = Sent_i(r) - A_i(r), which shrinks
// the flow's allowance next round. MaxSC(r) is the largest surplus
// count observed in round r; adding 1 to the next round's allowance
// guarantees even the worst overshooter may send at least one packet.
//
// Crucially, every decision ("keep serving this flow?") depends only
// on service *already rendered*, never on the length of the packet
// about to be dequeued — which is why ERR works in wormhole switches
// where dequeue time is governed by downstream congestion. For the
// same reason ERR does not implement sched.LengthAware, and the
// compiler enforces that it never sees a length before dequeuing.
//
// All operations are O(1) in the number of flows (the paper's
// Theorem 1): the ActiveList is a linked FIFO and all counters are
// per-flow scalars.
package core

import (
	"repro/internal/queue"
	"repro/internal/sched"
)

// TraceSink receives round-by-round events from an ERR scheduler.
// Used by cmd/errtrace to regenerate the content of the paper's
// Figure 3 and by the golden tests. A nil sink disables tracing.
type TraceSink interface {
	// RoundStart fires when a new round begins: its 1-based index,
	// the MaxSC of the previous round (PreviousMaxSC), and the number
	// of flows that will be visited (RoundRobinVisitCount).
	RoundStart(round int64, prevMaxSC int64, visits int)
	// Opportunity fires when a flow's service opportunity ends, with
	// the allowance it was given, the flits (or occupancy cycles) it
	// sent, its resulting surplus count, and whether it left the
	// active list because its queue drained.
	Opportunity(round int64, flow int, allowance, sent, surplus int64, left bool)
}

// ERR is the Elastic Round Robin scheduler. Create one with New or
// NewWeighted. ERR implements sched.Scheduler and is driven by an
// engine exactly like every baseline discipline.
type ERR struct {
	weight func(flow int) int64

	active queue.ActiveList
	// sc holds the per-flow surplus counts, indexed by flow id and
	// grown on demand (flow ids are dense small integers; a slice
	// keeps the hot path allocation-free).
	sc []int64

	round     int64 // 1-based index of the round in progress
	rrvc      int   // RoundRobinVisitCount
	maxSC     int64 // MaxSC of the round in progress
	prevMaxSC int64 // MaxSC of the completed round

	current   int   // flow in service, or -1
	allowance int64 // A_i of the current opportunity
	sent      int64 // Sent_i so far in the current opportunity

	// keepSurplusOnDrain is an ablation switch: when set, a flow that
	// drains keeps its surplus count instead of resetting it to zero
	// as Figure 1 specifies, so old bursts punish a flow after idle
	// periods. Used only by the ablation benchmarks.
	keepSurplusOnDrain bool

	trace TraceSink
}

// New returns an unweighted ERR scheduler — the exact algorithm of
// the paper's Figure 1.
func New() *ERR { return NewWeighted(nil) }

// NewWeighted returns a weighted ERR scheduler with per-flow integer
// weights >= 1: flow i's allowance becomes w_i*(1 + MaxSC(r-1)) -
// SC_i(r-1), yielding throughput proportional to the weights. A nil
// weight function means weight 1 for every flow, i.e. the paper's
// unweighted algorithm.
func NewWeighted(weight func(flow int) int64) *ERR {
	if weight == nil {
		weight = func(int) int64 { return 1 }
	}
	return &ERR{
		weight:  weight,
		current: -1,
	}
}

// scRef returns a pointer to flow's surplus count, growing the table
// as needed.
func (e *ERR) scRef(flow int) *int64 {
	if flow >= len(e.sc) {
		grown := make([]int64, flow+1)
		copy(grown, e.sc)
		e.sc = grown
	}
	return &e.sc[flow]
}

// SetTrace installs a trace sink (nil disables tracing).
func (e *ERR) SetTrace(t TraceSink) { e.trace = t }

// SetKeepSurplusOnDrain enables the ablation variant that does not
// reset a drained flow's surplus count (Figure 1 resets it). Only for
// the ablation experiments; the default false is the paper's
// algorithm.
func (e *ERR) SetKeepSurplusOnDrain(keep bool) { e.keepSurplusOnDrain = keep }

// Name implements sched.Scheduler.
func (e *ERR) Name() string { return "ERR" }

// OnArrival implements sched.Scheduler — the Enqueue routine of
// Figure 1. A flow in the middle of its service opportunity counts as
// active even though it is temporarily off the list.
func (e *ERR) OnArrival(flow int, wasEmpty bool) {
	if flow == e.current || e.active.Contains(flow) {
		return
	}
	e.active.PushTail(flow)
	if !e.keepSurplusOnDrain {
		*e.scRef(flow) = 0
	}
}

// NextFlow implements sched.Scheduler — the head of the Dequeue loop
// of Figure 1.
func (e *ERR) NextFlow() int {
	if e.current != -1 {
		// Continue the opportunity in progress: the do-while of
		// Figure 1 keeps transmitting while Sent < Allowance.
		return e.current
	}
	if e.rrvc == 0 {
		// A round has completed (or the scheduler is fresh/idle):
		// snapshot MaxSC and count the flows to visit this round.
		e.prevMaxSC = e.maxSC
		e.maxSC = 0
		e.rrvc = e.active.Len()
		e.round++
		if e.trace != nil {
			e.trace.RoundStart(e.round, e.prevMaxSC, e.rrvc)
		}
	}
	flow := e.active.PopHead()
	w := e.weight(flow)
	if w < 1 {
		panic("core: ERR weight < 1")
	}
	e.current = flow
	e.allowance = w*(1+e.prevMaxSC) - *e.scRef(flow)
	e.sent = 0
	return flow
}

// OnPacketDone implements sched.Scheduler — the body and tail of the
// Dequeue loop. cost is the packet's length in flits, or its output-
// occupancy in cycles when the engine runs in wormhole mode; ERR is
// agnostic, it simply bills whatever the server measured.
func (e *ERR) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != e.current {
		panic("core: ERR completion for a flow not in service")
	}
	if cost < 1 {
		panic("core: ERR packet cost < 1")
	}
	e.sent += cost
	if e.sent < e.allowance && !nowEmpty {
		return // opportunity continues; next packet starts
	}
	// The opportunity ends: record the surplus and rotate the list.
	surplus := e.sent - e.allowance
	if surplus > e.maxSC {
		// Figure 1 updates MaxSC before the empty-queue check, so
		// even a flow that drains and leaves contributes its surplus.
		e.maxSC = surplus
	}
	if nowEmpty {
		if e.keepSurplusOnDrain {
			*e.scRef(flow) = surplus
		} else {
			*e.scRef(flow) = 0
		}
	} else {
		*e.scRef(flow) = surplus
		e.active.PushTail(flow)
	}
	if e.trace != nil {
		e.trace.Opportunity(e.round, flow, e.allowance, e.sent, surplus, nowEmpty)
	}
	e.current = -1
	e.rrvc--
	if e.active.Empty() {
		// System gone idle: re-initialise the round state so a flow
		// arriving after an idle period starts from a clean slate, as
		// Initialize in Figure 1 would have it.
		e.rrvc = 0
		e.maxSC = 0
		e.prevMaxSC = 0
		e.round = 0
	}
}

// --- accessors used by the invariant tests and the tracer ---

// SurplusCount returns SC of the given flow.
func (e *ERR) SurplusCount(flow int) int64 {
	if flow >= len(e.sc) {
		return 0
	}
	return e.sc[flow]
}

// MaxSC returns the largest surplus count observed so far in the
// round in progress.
func (e *ERR) MaxSC() int64 { return e.maxSC }

// PrevMaxSC returns MaxSC of the completed round.
func (e *ERR) PrevMaxSC() int64 { return e.prevMaxSC }

// Round returns the 1-based index of the round in progress (0 when
// idle).
func (e *ERR) Round() int64 { return e.round }

// VisitsLeft returns the RoundRobinVisitCount.
func (e *ERR) VisitsLeft() int { return e.rrvc }

// CurrentFlow returns the flow in service, or -1.
func (e *ERR) CurrentFlow() int { return e.current }

// ActiveFlows returns the number of flows on the active list (the
// flow currently in service, if any, is not on the list).
func (e *ERR) ActiveFlows() int { return e.active.Len() }

// IsActive reports whether the scheduler considers flow active: on
// the ActiveList, or temporarily off it while in service. The
// runtime invariant checker uses this to audit ActiveList membership
// against queue backlog every cycle.
func (e *ERR) IsActive(flow int) bool {
	return flow == e.current || e.active.Contains(flow)
}

// HeadOfLineSafe implements sched.HeadOfLineArb: ERR reschedules a
// flow itself when OnPacketDone reports remaining backlog, and never
// needs packet lengths in advance, so it can arbitrate a wormhole
// router output.
func (e *ERR) HeadOfLineSafe() {}

var (
	_ sched.Scheduler     = (*ERR)(nil)
	_ sched.HeadOfLineArb = (*ERR)(nil)
)
