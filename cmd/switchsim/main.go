// Command switchsim drives a single wormhole switch (one router from
// package wormhole): several input ports contend for output ports
// through per-output-queue packet arbitration, with a configurable
// downstream drain pattern creating the unpredictable occupancies
// that motivate ERR. It reports per-input throughput on the contended
// output and the occupancy statistics the arbiter actually billed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/wormhole"
)

func main() {
	var (
		inputs = flag.Int("inputs", 4, "input ports contending for output 0")
		vcs    = flag.Int("vcs", 1, "virtual channels per port")
		buf    = flag.Int("buf", 16, "input VC buffer depth in flits")
		arb    = flag.String("arb", "err", "output arbitration: err, pbrr")
		minLen = flag.Int("minlen", 1, "minimum packet length (flits)")
		maxLen = flag.Int("maxlen", 32, "maximum packet length (flits)")
		bigIn  = flag.Int("bigin", 1, "input whose packets are 4x longer (-1 to disable)")
		drainP = flag.Float64("drain", 1.0, "probability the downstream sink drains a flit each cycle")
		cycles = flag.Int64("cycles", 200_000, "simulation cycles")
		seed   = flag.Uint64("seed", 1, "random seed")
		pprofA = flag.String("pprof", "", "serve net/http/pprof and the obs registry expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprofA != "" {
		addr, err := obs.ServeDebug(*pprofA, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchsim: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "switchsim: pprof on http://%s/debug/pprof/ (registry at /debug/vars)\n", addr)
	}
	if err := run(*inputs, *vcs, *buf, *arb, *minLen, *maxLen, *bigIn, *drainP, *cycles, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "switchsim: %v\n", err)
		os.Exit(1)
	}
}

func run(inputs, vcs, buf int, arb string, minLen, maxLen, bigIn int, drainP float64, cycles int64, seed uint64) error {
	var newArb func() sched.Scheduler
	switch arb {
	case "err":
		newArb = func() sched.Scheduler { return core.New() }
	case "pbrr":
		newArb = func() sched.Scheduler { return sched.NewPBRR() }
	default:
		return fmt.Errorf("unknown arbiter %q", arb)
	}
	ports := inputs + 1 // port 0 is the contended output
	r, err := wormhole.NewRouter(0, wormhole.Config{
		Ports:    ports,
		VCs:      vcs,
		BufFlits: buf,
		NewArb:   newArb,
		Route:    func(dst int) int { return dst },
	})
	if err != nil {
		return err
	}
	src := rng.New(seed)
	sink := wormhole.NewStallSink(8, func(cycle int64) bool { return src.Bernoulli(drainP) })
	wormhole.ConnectEndpoint(r, 0, sink)
	sink.Bind(r, 0)
	served := make([]float64, inputs)
	sink.Inner.OnFlit = func(f flit.Flit, vc int, cycle int64) { served[f.Flow-1]++ }

	// Keep every input backlogged, feeding whole packets when space
	// allows.
	dists := make([]rng.LengthDist, inputs)
	for i := range dists {
		if i+1 == bigIn {
			dists[i] = rng.NewUniform(minLen*4, maxLen*4)
		} else {
			dists[i] = rng.NewUniform(minLen, maxLen)
		}
	}
	pending := make([][]flit.Flit, inputs)
	for c := int64(0); c < cycles; c++ {
		for in := 0; in < inputs; in++ {
			port := in + 1
			if pending[in] == nil {
				p := flit.Packet{Flow: port, Length: dists[in].Draw(src), Dst: 0}
				pending[in] = p.Flits()
			}
			// Inject on VC 0: a packet's flits must stay contiguous
			// within one VC.
			if r.Inject(port, 0, pending[in][0], c) {
				pending[in] = pending[in][1:]
				if len(pending[in]) == 0 {
					pending[in] = nil
				}
			}
		}
		r.Step(c)
		sink.Step(c)
	}

	labels := make([]string, inputs)
	for i := range labels {
		labels[i] = fmt.Sprintf("input %d", i+1)
		if i+1 == bigIn {
			labels[i] += " (4x len)"
		}
	}
	fmt.Printf("switch: %d inputs -> 1 output, arb=%s, drain p=%.2f, %d cycles\n\n",
		inputs, arb, drainP, cycles)
	return plot.Bar(os.Stdout, "Flits delivered per input on the contended output", labels, served, 50)
}
