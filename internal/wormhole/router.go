// Package wormhole implements a flit-level wormhole router with
// virtual channels and credit-based flow control — the switch
// substrate the paper's scheduling problem lives in. Entry into each
// output queue (one per output port and VC) is arbitrated at packet
// granularity by a pluggable sched.Scheduler (ERR, PBRR, WRR): once a
// packet's head flit is granted an output queue, the queue stays
// allocated to that packet until its tail flit passes, and the
// arbiter is billed for the *cycles of occupancy* — which exceed the
// packet length whenever downstream congestion stalls the worm. This
// is exactly the regime in which the paper argues a scheduler must
// not require a-priori packet lengths. The physical output link is
// multiplexed flit by flit among the allocated VCs, the structure the
// paper's Section 1 describes for switches with virtual channels.
//
// Routers are wired together (or to injection/ejection endpoints)
// with Connect; package noc builds meshes and tori out of them.
package wormhole

import (
	"fmt"
	"math/bits"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sched"
)

// entry is a buffered flit with its arrival cycle (a flit may not be
// forwarded in the cycle it arrived, enforcing one hop per cycle).
type entry struct {
	f       flit.Flit
	arrived int64
}

// vcFIFO is a statically partitioned flit buffer for one (input
// port, VC) pair.
type vcFIFO struct {
	buf        []entry
	head, size int
	// arr caches the arrival cycle of the head flit (valid only while
	// the VC is non-empty); notif records that the head packet has
	// been announced to its output arbiter. Both live here — not in
	// parallel portBuf arrays — so the forwarding hot loop touches one
	// cache line per VC. In shared-buffer (DAMQ) mode buf is nil and
	// only these two fields are used.
	arr   int64
	notif bool
}

func (q *vcFIFO) empty() bool { return q.size == 0 }
func (q *vcFIFO) full() bool  { return q.size == len(q.buf) }
func (q *vcFIFO) len() int    { return q.size }

func (q *vcFIFO) push(e entry) {
	if q.full() {
		panic("wormhole: push to full VC FIFO (credit protocol violated)")
	}
	i := q.head + q.size
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = e
	q.size++
}

func (q *vcFIFO) pop() entry {
	if q.empty() {
		panic("wormhole: pop from empty VC FIFO")
	}
	e := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	return e
}

func (q *vcFIFO) peek() entry {
	if q.empty() {
		panic("wormhole: peek on empty VC FIFO")
	}
	return q.buf[q.head]
}

// Endpoint consumes flits leaving one of a router's output ports.
// Implementations: a neighbouring router's input port, or an
// ejection sink.
type Endpoint interface {
	// AcceptFlit delivers a flit on the given VC at the given cycle.
	AcceptFlit(f flit.Flit, vc int, cycle int64)
	// BufFlits returns the per-VC buffer capacity of the endpoint,
	// which initialises the sender's credit counters (0 = unlimited).
	BufFlits() int
}

// creditReturn is invoked by a router when a flit leaves an input
// FIFO, so the upstream sender regains a credit. The cycle is the
// commit cycle of the flit movement that freed the slot (flight-
// recorder tracers use it to close credit-starvation intervals).
type creditReturn func(vc int, cycle int64)

// OutputFault models a faulty output link for fault-injection
// campaigns (package fault implements it from a parsed spec). The
// router consults it in its forwarding phase: a stalled link forwards
// nothing (occupancy keeps accruing — the wormhole hostage effect), a
// dropped flit consumes the link cycle and the downstream credit but
// never arrives, and a corrupted flit is delivered mutated. All three
// are exactly the partial failures a production switch must survive
// without panicking; the invariant checker and the deadlock watchdog
// are what detect the resulting wedges.
type OutputFault interface {
	// Stalled reports whether the link is stalled at cycle.
	Stalled(cycle int64) bool
	// Drop reports whether this flit is lost in transit.
	Drop(f flit.Flit, cycle int64) bool
	// Corrupt returns the flit as it arrives downstream (possibly
	// mutated) — called for every delivered flit.
	Corrupt(f flit.Flit, cycle int64) flit.Flit
}

// Config configures a Router.
type Config struct {
	// Ports is the number of ports (inputs == outputs). Port 0 is by
	// convention the local (injection/ejection) port in package noc,
	// but the router itself attaches no meaning to port numbers.
	Ports int
	// VCs is the number of virtual channels per port.
	VCs int
	// BufFlits is the capacity of each input VC FIFO in flits — or,
	// when SharedBufFlits is set, the per-VC *reservation* inside the
	// shared buffer.
	BufFlits int
	// SharedBufFlits, when > 0, replaces the statically partitioned
	// per-VC input FIFOs with one dynamically allocated multi-queue
	// buffer (DAMQ) of this many flits per input port, with BufFlits
	// reserved per VC (the reservation keeps VC deadlock-avoidance
	// schemes sound). Links feeding a shared-buffer router use
	// stop/go gating instead of per-VC credits, since shared space
	// cannot be represented by static credit counters.
	SharedBufFlits int
	// SharedBufCap, when > 0 with SharedBufFlits, limits any single
	// VC's occupancy of the shared buffer. Without a cap a blocked
	// worm can hog the entire shared region and make sharing worse
	// than a static partition under congestion.
	SharedBufCap int
	// NewArb constructs the per-output-port packet arbiter. The flow
	// ids presented to the arbiter are inputPort*VCs + vc.
	NewArb func() sched.Scheduler
	// Route maps a destination node id to an output port of this
	// router.
	Route func(dst int) int
	// OutVC, if set, maps the VC a packet uses on its next hop given
	// the output port, the head flit, and the input port/VC it
	// occupies in this router. All flits of the packet use the VC
	// computed once at grant time. nil means the VC is preserved
	// hop to hop. Package noc uses this for torus dateline VC
	// switching, which breaks the ring channel-dependency cycle.
	OutVC func(outPort int, head flit.Flit, inPort, inVC int) int
}

// lock is the state of an output port owned by an in-flight packet.
// Occupancy is not accrued eagerly: since records the grant cycle,
// and the occupancy billed to the arbiter is cycle-since at the
// moment the tail flit forwards. The two are identical — the eager
// counter was incremented exactly once per elapsed cycle, frozen or
// not — but the lazy form costs nothing per cycle, which is what
// lets the router skip allocated-but-blocked outputs entirely.
type lock struct {
	active bool
	// traced marks a lock the installed Tracer elected to follow at
	// grant time; all per-visit tracer calls are gated on it, so
	// unsampled packets cost the forwarding loop nothing.
	traced   bool
	port, vc int // input port and VC the packet occupies
	outVC    int // VC the packet uses on the output link
	flow     int
	since    int64 // cycle the output queue was granted
}

// outHot packs the per-output state the forwarding hot loop touches
// every cycle into one small record (see Router.outs).
type outHot struct {
	lockCount int32
	linkRR    int32
	lockVCs   uint64
	flags     uint8
}

// outHot.flags bits: set when a slow-path feature is installed on the
// output, so the forwarding loop skips the outFault/gateOut loads
// otherwise.
const (
	outHasFault = 1 << iota
	outHasGate
)

// Router is one wormhole switch node.
//
// Arbitration follows the paper's two-level switch structure: entry
// into each *output queue* — one per (output port, VC) — is allocated
// at packet granularity by a sched.Scheduler, while the physical
// output link is multiplexed flit by flit among the VCs that hold an
// allocation (round-robin, i.e. FBRR across VCs, which the paper
// notes is legitimate because every flit is tagged with its VC). A
// packet blocked on one VC therefore never prevents another VC's
// packet from advancing through the same port — the property the
// torus dateline scheme needs for deadlock freedom.
type Router struct {
	cfg    Config
	id     int
	domain int               // commit domain (SetDomain); 0 by default
	in     []portBuf         // one input buffer complex per port
	arbs   []sched.Scheduler // arbiter of cell o*VCs+v
	locks  []lock            // allocation of cell o*VCs+v
	out    []Endpoint
	crd    []int // downstream credits of cell o*VCs+v
	credUp []creditReturn
	// outR/outPort mirror out for router-to-router links (nil/0 for
	// endpoint links), and credUpR/credUpPort mirror credUp likewise:
	// the serial commit phase calls the neighbour router directly
	// instead of through an interface or closure, which the hot path
	// pays for every delivered flit and returned credit.
	outR       []*Router
	outPort    []int
	credUpR    []*Router
	credUpPort []int
	// gateOut[o], when non-nil, is the stop/go space query used
	// instead of credits on links into shared-buffer routers.
	gateOut []func(vc int) bool

	// eligible[o*VCs+v] counts flows currently registered with that
	// cell's arbiter.
	eligible []int
	// usedInput is scratch: which input ports moved a flit this cycle.
	usedInput []bool

	// outFault[o], when non-nil, injects faults on output link o.
	outFault []OutputFault
	// frozen, when non-nil, reports whether the whole router is frozen
	// at a cycle (fault injection: a crashed/wedged switch ASIC).
	frozen func(cycle int64) bool
	// faultEdgesKnown records that the owner tracks every fault-window
	// edge of the installed hooks and wakes the router at each one, so
	// NextEventAt may treat a fault-blocked router as dormant instead
	// of polling (see SetFaultEdgesKnown).
	faultEdgesKnown bool
	// FaultDropped counts flits lost on this router's faulty output
	// links (the dropped-by-fault term of flit conservation).
	FaultDropped int64

	// work counts buffered flits plus active output allocations — the
	// router's content measure. work == 0 means the router is empty.
	// Eligible announcements need no separate term: eligible > 0
	// implies a buffered head flit, already counted.
	work int
	// onActive, when non-nil, fires whenever an externally applied
	// event (flit arrival, credit return) leaves the router Runnable.
	// The mesh uses it to re-register the router on its active set.
	// It never fires from inside Compute, which keeps the sharded
	// compute phase free of cross-router writes.
	onActive func()
	// activeHint records that onActive already fired and the owner has
	// not yet pruned this router, so the (idempotent) hook and the
	// Runnable probe are skipped on the many arrivals a busy router
	// sees per cycle. ClearActiveHint re-arms it.
	activeHint bool

	// The event-driven work-lists. pendingOut holds the output ports
	// whose allocated packets may be able to forward a flit; grantable
	// holds the cells o*VCs+v with an idle output queue and at least
	// one eligible flow (invariant: bit set <=> !locks[o][v].active &&
	// eligible[o][v] > 0). A cell leaves pendingOut only when every
	// allocated VC on the output is hard-blocked — input FIFO empty or
	// downstream credits exhausted — conditions that can only change
	// through an instrumented event (acceptFlit, creditArrived,
	// grantCell). Soft blocks (link contention via usedInput, a flit
	// that arrived this cycle, a stop/go gate, an installed output
	// fault) keep the output pending conservatively.
	pendingOut queue.Bitset
	grantable  queue.Bitset
	// outs[o] packs the per-output state the forwarding loop touches
	// every cycle: the count and VC bitmask of active locks (so an
	// idle output quiesces without touching its VCs and the link
	// multiplexer walks only allocated VCs), the multiplexer's
	// round-robin pointer, and the fault/gate presence flags that
	// spare the common case the outFault/gateOut loads.
	outs []outHot
	// inLockOut maps port*VCs+vc to the output whose active lock
	// drains that input VC (-1 when none), so a flit arriving into an
	// empty locked FIFO re-enqueues the right output.
	inLockOut []int32
	// inTraced mirrors lock.traced per input (port, VC): set at grant
	// for the lock draining that input, cleared at release. It lets
	// the commit-phase paths that know only the input (flit arrival
	// into an empty locked FIFO) skip the tracer call for unsampled
	// worms without chasing the lock cell.
	inTraced []bool
	// usedList records which usedInput entries were set this cycle, so
	// the reset is proportional to forwards, not ports.
	usedList []int
	// fullScan, when set, makes Compute run the original full
	// ports-x-VCs scans (maintaining the same work-list state) — the
	// oracle the differential tests compare work-list stepping against.
	fullScan bool
	// cellsVisited counts arbitration sites inspected by Compute (obs
	// telemetry: the work the work-lists save is visible as the gap
	// between this and ports*VCs*cycles).
	cellsVisited int64
	// lastCycle is the most recent cycle passed to Compute (DumpState
	// uses it to render lazy occupancies).
	lastCycle int64

	// tr, when non-nil, observes packet lifecycle events for the
	// flight recorder (see Tracer). Calls on the per-visit paths are
	// gated on lock.traced so unsampled traffic pays one nil-check.
	tr Tracer

	// scratch is Step's private effect buffer, reused across cycles.
	scratch Effects
	// gateSnap caches gateOut answers as of the start of gateSnapCycle
	// (see SnapshotGates); hasGates is set when any output uses
	// stop/go gating.
	gateSnap      [][]bool
	gateSnapCycle int64
	hasGates      bool
}

// NewRouter validates cfg and returns a router with all outputs
// unconnected (connect them with Connect / ConnectSink before
// stepping). It is a single-router arena carve; batch builders
// (package noc's meshes) construct one Arena for the whole batch so
// consecutively built routers are contiguous in memory.
func NewRouter(id int, cfg Config) (*Router, error) {
	return NewArena(cfg, 1).NewRouter(id, cfg)
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// SetDomain assigns the router to a commit domain. Package noc uses
// contiguous 2D tiles as domains: during the commit phase each tile
// owner applies its routers' domain-interior effects concurrently via
// Effects.ApplyDomain, deferring everything that crosses a domain
// boundary to the serial commit. The default domain is 0.
func (r *Router) SetDomain(d int) { r.domain = d }

// Domain returns the commit domain assigned by SetDomain.
func (r *Router) Domain() int { return r.domain }

// Connect wires output port po of a to input port pi of b, setting up
// the flow control: per-VC credits for statically partitioned inputs,
// stop/go gating for shared-buffer (DAMQ) inputs.
func Connect(a *Router, po int, b *Router, pi int) {
	a.out[po] = neighbour{r: b, port: pi}
	a.outR[po] = b
	a.outPort[po] = pi
	if b.cfg.SharedBufFlits > 0 {
		a.gateOut[po] = func(vc int) bool { return b.in[pi].canAccept(vc) }
		a.outs[po].flags |= outHasGate
		a.hasGates = true
		return
	}
	for v := 0; v < a.cfg.VCs; v++ {
		a.crd[po*a.cfg.VCs+v] = b.cfg.BufFlits
	}
	b.credUp[pi] = func(vc int, cycle int64) { a.creditArrived(po, vc, cycle) }
	b.credUpR[pi] = a
	b.credUpPort[pi] = po
}

// creditArrived restores one downstream credit on output o, VC v. A
// lock waiting on that credit becomes forwardable, so the output
// rejoins the pending work-list. Credits are returned during the
// serial commit phase (Effects.Apply), never during Compute, so the
// onActive hook may safely touch the mesh's active set.
func (r *Router) creditArrived(o, v int, cycle int64) {
	r.crd[o*r.cfg.VCs+v]++
	if r.outs[o].lockVCs&(1<<uint(v)) != 0 {
		if l := &r.locks[o*r.cfg.VCs+v]; l.traced {
			// A traced lock waiting on this credit: close its
			// credit-starvation interval (a no-op if none is open).
			r.tr.Unblocked(l.port, l.vc, BlockNoCredit, cycle)
		}
		r.pendingOut.Set(o)
		if r.onActive != nil && !r.activeHint {
			r.activeHint = true
			r.onActive()
		}
	}
}

// ConnectEndpoint wires output port po of a to an arbitrary endpoint
// (typically a Sink). Credits are initialised from the endpoint's
// BufFlits (0 = unlimited).
func ConnectEndpoint(a *Router, po int, e Endpoint) {
	a.out[po] = e
	a.outR[po] = nil
	buf := e.BufFlits()
	for v := 0; v < a.cfg.VCs; v++ {
		if buf == 0 {
			a.crd[po*a.cfg.VCs+v] = int(^uint(0) >> 1) // effectively unlimited
		} else {
			a.crd[po*a.cfg.VCs+v] = buf
		}
	}
}

// neighbour adapts a router input port to Endpoint.
type neighbour struct {
	r    *Router
	port int
}

// AcceptFlit implements Endpoint.
func (n neighbour) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	n.r.acceptFlit(n.port, f, vc, cycle)
}

// BufFlits implements Endpoint.
func (n neighbour) BufFlits() int { return n.r.cfg.BufFlits }

// acceptFlit buffers an incoming flit and, if it exposes a new head
// packet, announces it to the arbiter of its output. Arrivals happen
// outside Compute (injection, or the serial Effects.Apply commit), so
// this is where a quiescent router re-enters the work-lists: a flit
// landing in an empty locked VC re-enqueues the lock's output (the
// worm was starved on input), and an unannounced head flit makes its
// target cell grantable via announce. Either way the onActive hook
// fires if the router is now Runnable.
func (r *Router) acceptFlit(port int, f flit.Flit, vc int, cycle int64) {
	pb := &r.in[port]
	wasEmpty := pb.empty(vc)
	pb.push(vc, f, cycle)
	r.work++
	if f.Traced && r.tr != nil && (f.Kind == flit.Head || f.Kind == flit.HeadTail) {
		r.tr.HeadArrived(port, vc, f, cycle)
	}
	if wasEmpty {
		if o := r.inLockOut[port*r.cfg.VCs+vc]; o >= 0 {
			// The arriving flit continues the worm holding output o: a
			// lock releases only after its tail passed, and FIFO order
			// means no new head can arrive before that tail.
			if r.inTraced[port*r.cfg.VCs+vc] {
				// The worm was starved on input; close any open
				// input-empty interval on its traced lock.
				r.tr.Unblocked(port, vc, BlockInputEmpty, cycle)
			}
			r.pendingOut.Set(int(o))
		} else {
			r.announceHead(port, vc, f, cycle)
		}
	}
	if r.onActive != nil && !r.activeHint && r.Runnable() {
		r.activeHint = true
		r.onActive()
	}
}

// Inject offers a flit to input port/vc directly (used by injection
// endpoints and tests). It reports whether buffer space was
// available.
func (r *Router) Inject(port, vc int, f flit.Flit, cycle int64) bool {
	if !r.in[port].canAccept(vc) {
		return false
	}
	r.acceptFlit(port, f, vc, cycle)
	return true
}

// InputFree returns the flit slots an input VC could accept right
// now (for shared buffers this includes the free shared region).
func (r *Router) InputFree(port, vc int) int {
	pb := &r.in[port]
	if pb.dyn != nil {
		return pb.dyn.SpaceFor(vc)
	}
	return len(pb.fifos[vc].buf) - pb.fifos[vc].size
}

// headTarget returns the (output port, output VC) the head flit of
// (port, vc) is routed to.
func (r *Router) headTarget(port, vc int, h flit.Flit) (o, ov int) {
	o = r.cfg.Route(h.Dst)
	ov = vc
	if r.cfg.OutVC != nil {
		ov = r.cfg.OutVC(o, h, port, vc)
		if ov < 0 || ov >= r.cfg.VCs {
			panic("wormhole: OutVC returned a VC out of range")
		}
	}
	return o, ov
}

// announce registers the packet at the head of (port, vc) with the
// arbiter of its routed output queue, if it is an unannounced head
// flit.
func (r *Router) announce(port, vc int, cycle int64) {
	pb := &r.in[port]
	if pb.fifos[vc].notif || pb.empty(vc) {
		return
	}
	r.announceHead(port, vc, pb.peek(vc).f, cycle)
}

// announceHead is announce when the caller already holds the head
// flit of (port, vc) — acceptFlit passes the flit it just pushed into
// an empty FIFO, skipping the peek the generic path pays.
func (r *Router) announceHead(port, vc int, h flit.Flit, cycle int64) {
	if h.Kind != flit.Head && h.Kind != flit.HeadTail {
		// Mid-packet flit: the packet was announced when its head
		// arrived (or is currently locked); nothing to do.
		return
	}
	pb := &r.in[port]
	if pb.fifos[vc].notif {
		return
	}
	o, ov := r.headTarget(port, vc, h)
	flow := port*r.cfg.VCs + vc
	cell := o*r.cfg.VCs + ov
	r.arbs[cell].OnArrival(flow, true)
	r.eligible[cell]++
	pb.fifos[vc].notif = true
	if h.Traced && r.tr != nil {
		r.tr.HeadEligible(port, vc, h.PktID, cycle)
	}
	if !r.locks[cell].active {
		r.grantable.Set(cell)
	}
}

// ClearActiveHint re-arms the onActive hook (see SetOnActive): the
// owner calls it when it drops the router from its active set, so the
// next activating event fires the hook again.
func (r *Router) ClearActiveHint() { r.activeHint = false }

// SetOutputFault installs (or, with nil, removes) a fault injector on
// output link port. Installing a fault directly withdraws any
// SetFaultEdgesKnown declaration: the router can no longer assume its
// fault windows are externally tracked, so NextEventAt falls back to
// per-cycle polling until the owner re-declares the edges.
func (r *Router) SetOutputFault(port int, f OutputFault) {
	r.outFault[port] = f
	r.faultEdgesKnown = false
	if f != nil {
		r.outs[port].flags |= outHasFault
	} else {
		r.outs[port].flags &^= outHasFault
	}
}

// SetFreeze installs a freeze predicate: while it returns true the
// router does nothing — no forwarding, no grants — while its input
// buffers keep accepting flits until credits exhaust, which is
// exactly how a wedged switch back-pressures its neighbours. nil
// removes the predicate. Like SetOutputFault, installing a predicate
// withdraws any SetFaultEdgesKnown declaration.
func (r *Router) SetFreeze(f func(cycle int64) bool) {
	r.frozen = f
	r.faultEdgesKnown = false
}

// SetFaultEdgesKnown declares that the caller tracks every cycle at
// which this router's installed fault hooks change their answer — the
// opening and closing edges of each freeze and stall window — and
// will wake the router at those cycles. Only under this declaration
// may NextEventAt report a fault-blocked router as dormant
// (EventNever) instead of making it poll every cycle. The declaration
// is withdrawn automatically by any later SetFreeze/SetOutputFault
// call, since a directly installed predicate has edges the owner
// never saw (noc.Mesh.InstallFaults re-declares after installing the
// window directives whose edges it registered).
func (r *Router) SetFaultEdgesKnown(on bool) { r.faultEdgesKnown = on }

// SetOnActive installs a hook fired when an external event (flit
// arrival, credit return) leaves a router Runnable. The mesh uses it
// to maintain its active set. nil removes the hook.
func (r *Router) SetOnActive(fn func()) { r.onActive = fn }

// Busy reports whether the router holds any state at all: buffered
// flits or active output allocations.
func (r *Router) Busy() bool { return r.work > 0 }

// Runnable reports whether stepping the router could change any
// state: some output may be able to forward a flit, or some idle
// output queue has an eligible flow to grant. A router with
// Runnable() == false steps as a strict no-op — even when it still
// holds hard-blocked worms (Busy() == true), every one of them waits
// on an external event (a flit arrival or a credit return) that
// re-enters it on the work-lists and fires the onActive hook — so a
// caller may skip it without changing any observable state.
func (r *Router) Runnable() bool { return r.pendingOut.Any() || r.grantable.Any() }

// EventNever is NextEventAt's "no self-scheduled event" answer: the
// router cannot change state until an external stimulus (flit
// arrival, credit return, or a fault-window edge the owner tracks)
// wakes it.
const EventNever = queue.EventNever

// NextEventAt reports the earliest cycle >= now at which stepping
// this router could change simulation state: now itself when it can
// act (some output may forward, or a grant is possible), or
// EventNever when every piece of held work is blocked on an external
// event. Three router states are dormant:
//
//   - not Runnable: every worm is hard-blocked; acceptFlit or
//     creditArrived re-enters it on the work-lists and fires onActive;
//   - frozen, with SetFaultEdgesKnown declared: Compute is a no-op
//     until the freeze window's closing edge, which the owner wakes
//     it at;
//   - every pending output stall-blocked by an edges-known fault, with
//     nothing grantable: tryForward returns before mutating anything
//     until a window edge, an arrival, or a credit changes the answer.
//
// A fault installed directly via SetFreeze/SetOutputFault (edges
// unknown) makes the router report now — an arbitrary predicate may
// change its answer at any cycle, so the router must poll. Skipping a
// dormant router's cycles is byte-identical to stepping them except
// for the visit telemetry (cellsVisited) the skipped polls would have
// accrued.
func (r *Router) NextEventAt(now int64) int64 {
	if !r.pendingOut.Any() && !r.grantable.Any() {
		return EventNever
	}
	if r.frozen != nil && r.frozen(now) {
		if r.faultEdgesKnown {
			return EventNever
		}
		return now
	}
	if r.grantable.Any() {
		return now
	}
	// Runnable through pendingOut alone: dormant only if every pending
	// output is held shut by a stalled, edges-known fault. A pending
	// output without locks is actable (stepping clears the stale bit),
	// as is any unfaulted or unstalled one.
	if !r.faultEdgesKnown {
		return now
	}
	pw := r.pendingOut.Words()
	for wi, w := range pw {
		for w != 0 {
			o := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if r.outs[o].lockCount == 0 {
				return now
			}
			f := r.outFault[o]
			if f == nil || !f.Stalled(now) {
				return now
			}
		}
	}
	return EventNever
}

// CanAccept reports whether input (port, vc) could accept a flit
// right now — Inject's admission test without the injection. Owners
// use it to decide whether an injection front end blocked on a
// dormant router can make progress.
func (r *Router) CanAccept(port, vc int) bool { return r.in[port].canAccept(vc) }

// SetFullScan, when on, makes Compute use the original full
// ports-x-VCs scans instead of the work-lists, while maintaining the
// identical work-list state. It is the oracle mode the differential
// tests compare against: both modes must produce byte-identical
// artifacts and identical Runnable() trajectories.
func (r *Router) SetFullScan(on bool) { r.fullScan = on }

// TakeCellsVisited returns and resets the count of arbitration sites
// Compute inspected since the last call (obs telemetry).
func (r *Router) TakeCellsVisited() int64 {
	n := r.cellsVisited
	r.cellsVisited = 0
	return n
}

// WorklistLen returns the current pending work-list population:
// outputs with possibly-forwardable packets plus grantable cells.
func (r *Router) WorklistLen() int { return r.pendingOut.Count() + r.grantable.Count() }

// Effects buffers the cross-router side effects of one Compute call:
// flit deliveries to downstream endpoints and credit returns to
// upstream senders. Everything Compute writes directly is state owned
// by the computing router; everything that would touch a neighbour
// lands here, to be committed by Apply. That split is what makes
// sharded mesh stepping deterministic: computes run concurrently over
// frozen cycle-start state, then the mesh applies each router's
// Effects serially in fixed router-ID order.
type Effects struct {
	deliveries []delivery
	credits    []creditFx
}

// delivery records one flit to hand downstream. For router-to-router
// links r/port name the receiver directly; ep is the generic fallback
// for sinks and custom endpoints.
type delivery struct {
	r     *Router
	ep    Endpoint
	f     flit.Flit
	port  int
	vc    int
	cycle int64
}

// creditFx records one credit to return upstream; r/o name the
// upstream router directly, ret is the closure fallback (StallSink and
// other non-router binders).
type creditFx struct {
	r     *Router
	ret   creditReturn
	o     int
	vc    int
	cycle int64
}

// Reset empties the buffer for reuse, retaining capacity.
func (fx *Effects) Reset() {
	fx.deliveries = fx.deliveries[:0]
	fx.credits = fx.credits[:0]
}

// Apply commits the buffered effects: deliveries in recorded
// (output-port) order, then credit returns. The two classes commute —
// deliveries touch downstream input buffers and arbiters, credits
// touch upstream credit counters — so this fixed order is equivalent
// to the interleaved order the serial router used, for any wiring
// without self-loops.
func (fx *Effects) Apply() {
	for i := range fx.deliveries {
		d := &fx.deliveries[i]
		if d.r != nil {
			d.r.acceptFlit(d.port, d.f, d.vc, d.cycle)
		} else {
			d.ep.AcceptFlit(d.f, d.vc, d.cycle)
		}
	}
	for i := range fx.credits {
		c := &fx.credits[i]
		if c.r != nil {
			c.r.creditArrived(c.o, c.vc, c.cycle)
		} else {
			c.ret(c.vc, c.cycle)
		}
	}
}

// ApplyDomain commits the subset of the buffered effects whose target
// is a router in domain dom — deliveries then credits, Apply's class
// order — and appends every other effect (cross-domain handoffs, sink
// deliveries, closure-bound credits) to rest in recorded order. A
// caller that owns every router of dom may run ApplyDomain
// concurrently with other domains' computes and interior commits: the
// applied subset mutates only dom's routers, and the deferred rest
// buffer is the caller's own. The rest buffers must afterwards be
// applied serially in a fixed domain order — that is the entire
// worker-count-independent schedule.
func (fx *Effects) ApplyDomain(dom int, rest *Effects) {
	for i := range fx.deliveries {
		d := &fx.deliveries[i]
		if d.r != nil && d.r.domain == dom {
			d.r.acceptFlit(d.port, d.f, d.vc, d.cycle)
		} else {
			rest.deliveries = append(rest.deliveries, *d)
		}
	}
	for i := range fx.credits {
		c := &fx.credits[i]
		if c.r != nil && c.r.domain == dom {
			c.r.creditArrived(c.o, c.vc, c.cycle)
		} else {
			rest.credits = append(rest.credits, *c)
		}
	}
}

// CrossRouter returns how many buffered effects target a router (as
// opposed to a sink or closure-bound endpoint). On a rest buffer
// filled by ApplyDomain this counts exactly the domain-crossing
// effects — the mesh's noc.cross_shard_effects telemetry.
func (fx *Effects) CrossRouter() int {
	n := 0
	for i := range fx.deliveries {
		if fx.deliveries[i].r != nil {
			n++
		}
	}
	for i := range fx.credits {
		if fx.credits[i].r != nil {
			n++
		}
	}
	return n
}

// Len returns the number of buffered effects.
func (fx *Effects) Len() int { return len(fx.deliveries) + len(fx.credits) }

// SnapshotGates caches the stop/go gate state of every shared-buffer
// output link as of the start of the given cycle. Gate closures read
// *downstream* buffer occupancy, so under two-phase stepping they
// must be sampled before any router's Compute pops flits — both for
// determinism (all routers see cycle-start space) and to keep the
// concurrent compute phase free of cross-router reads. The snapshot
// cannot over-admit: one link delivers at most one flit per cycle
// into the port the gate guards, and the downstream router only
// frees space during the cycle, never consumes it.
//
// A no-op on routers without shared-buffer links. Compute falls back
// to live gate queries when no snapshot was taken for its cycle, so
// standalone Router.Step users need never call this.
func (r *Router) SnapshotGates(cycle int64) {
	if !r.hasGates {
		return
	}
	if r.gateSnap == nil {
		r.gateSnap = make([][]bool, len(r.gateOut))
		for o, g := range r.gateOut {
			if g != nil {
				r.gateSnap[o] = make([]bool, r.cfg.VCs)
			}
		}
	}
	for o, g := range r.gateOut {
		if g == nil {
			continue
		}
		for v := 0; v < r.cfg.VCs; v++ {
			r.gateSnap[o][v] = g(v)
		}
	}
	r.gateSnapCycle = cycle
}

// gateAllows answers "may output o push a flit on VC v this cycle?"
// from the cycle-start snapshot when one exists, else live.
func (r *Router) gateAllows(o, v int, cycle int64) bool {
	if r.gateSnapCycle == cycle {
		return r.gateSnap[o][v]
	}
	return r.gateOut[o](v)
}

// Step advances the router by one cycle: forward at most one flit per
// output link (multiplexed round-robin among the VCs holding an
// allocation), then grant idle output queues. Step is Compute with
// the effects applied immediately; for a router stepped on its own
// the result is identical to interleaved application, since its own
// compute never reads the neighbour state its effects mutate.
func (r *Router) Step(cycle int64) {
	r.scratch.Reset()
	r.Compute(cycle, &r.scratch)
	r.scratch.Apply()
}

// Compute runs the router's cycle against frozen cycle-start state,
// buffering every cross-router side effect (flit handoffs, credit
// returns) into fx instead of applying it. It mutates only state
// owned by this router, so disjoint routers may Compute concurrently;
// the caller commits the effects afterwards with fx.Apply, ordering
// commits however its determinism contract requires.
func (r *Router) Compute(cycle int64, fx *Effects) {
	r.lastCycle = cycle
	if r.frozen != nil && r.frozen(cycle) {
		// A frozen router does nothing, but its work-lists are left
		// intact — the cells stay enqueued and are processed on the
		// first unfrozen cycle, and occupancy on allocated outputs
		// accrues implicitly (it is billed as cycle-since at tail
		// time): a frozen router's victims pay wall-clock time, like
		// any other downstream congestion.
		return
	}
	if r.fullScan {
		r.computeScan(cycle, fx)
		return
	}
	// Phase 1: per pending output link, forward one flit from the
	// first movable allocated VC in round-robin order. Iterating the
	// set bits ascending visits the same outputs in the same order as
	// the original full scan — outputs with a clear bit are exactly
	// those the scan would have left untouched.
	pw := r.pendingOut.Words()
	for wi, w := range pw {
		for w != 0 {
			o := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if r.tryForward(o, cycle, fx) {
				pw[wi] &^= 1 << uint(o&63)
			}
		}
	}
	// Phase 2: grant idle output queues to eligible flows (transfer
	// begins next cycle). Cell index o*VCs+v iterated ascending is the
	// scan's o-major, v-minor order.
	V := r.cfg.VCs
	gw := r.grantable.Words()
	for wi, w := range gw {
		for w != 0 {
			cell := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			r.cellsVisited++
			r.grantCell(cell/V, cell%V, cycle)
		}
	}
	for _, p := range r.usedList {
		r.usedInput[p] = false
	}
	r.usedList = r.usedList[:0]
}

// computeScan is Compute's full-scan oracle: the original three-phase
// ports-x-VCs walk, sharing tryForward/grantCell with the work-list
// path so the two modes differ only in which cells they *visit*, not
// in what they do at a cell. It maintains the same work-list bits; in
// a correct implementation a cleared bit's tryForward re-quiesces
// (hard blocks persist until an instrumented event), so the masks —
// and hence Runnable() and the mesh's active set — evolve
// identically, and any divergence is a missing-event bug the
// differential tests surface as an artifact mismatch.
func (r *Router) computeScan(cycle int64, fx *Effects) {
	for o := 0; o < r.cfg.Ports; o++ {
		if r.tryForward(o, cycle, fx) {
			r.pendingOut.Clear(o)
		} else {
			r.pendingOut.Set(o)
		}
	}
	V := r.cfg.VCs
	for o := 0; o < r.cfg.Ports; o++ {
		for v := 0; v < V; v++ {
			r.cellsVisited++
			if r.locks[o*V+v].active || r.eligible[o*V+v] == 0 {
				continue
			}
			r.grantCell(o, v, cycle)
		}
	}
	for _, p := range r.usedList {
		r.usedInput[p] = false
	}
	r.usedList = r.usedList[:0]
}

// tryForward advances output o by at most one flit (the original
// phase-1 body for one output) and reports whether the output has
// quiesced: no allocated VC can forward until an instrumented event
// re-enqueues it. Only the two hard blocks — input FIFO empty and
// downstream credits exhausted on an ungated, unfaulted link — count
// toward quiescence; everything transient (link contention, a flit
// that arrived this cycle, stop/go gates, installed faults, or an
// actual forward) keeps the output pending.
func (r *Router) tryForward(o int, cycle int64, fx *Effects) (quiesce bool) {
	r.cellsVisited++
	oh := &r.outs[o]
	if oh.lockCount == 0 {
		return true // re-enqueued by grantCell
	}
	var fault OutputFault
	gated := false
	if oh.flags != 0 {
		fault = r.outFault[o]
		if fault != nil && fault.Stalled(cycle) {
			return false // link down: nothing traverses this output
		}
		gated = r.gateOut[o] != nil
	}
	// Quiesce only if every allocated VC turns out hard-blocked; an
	// installed fault or gate may change answers without an event, so
	// their outputs poll.
	quiesce = fault == nil && !gated
	V := r.cfg.VCs
	locks := r.locks[o*V : o*V+V]
	crd := r.crd[o*V : o*V+V]
	// Walk the allocated VCs in round-robin order starting at
	// linkRR[o]: first the set bits at or above the pointer, then the
	// wrapped-around ones below it — the same VCs, in the same order,
	// the original (linkRR+k) mod V walk visited, skipping the
	// unallocated cells it stepped over one by one.
	rr := int(oh.linkRR)
	all := oh.lockVCs
	hi := all &^ (1<<uint(rr) - 1)
	for pass := 0; pass < 2; pass++ {
		part := hi
		if pass == 1 {
			part = all ^ hi
		}
		for part != 0 {
			v := bits.TrailingZeros64(part)
			part &= part - 1
			l := &locks[v]
			r.cellsVisited++
			pb := &r.in[l.port]
			if pb.occVC&(1<<uint(l.vc)) == 0 {
				if l.traced {
					r.tr.Blocked(l.port, l.vc, BlockInputEmpty, cycle)
				}
				continue // hard: acceptFlit re-enqueues via inLockOut
			}
			if r.usedInput[l.port] {
				if l.traced {
					r.tr.Blocked(l.port, l.vc, BlockContend, cycle)
				}
				quiesce = false // transient: retry next cycle
				continue
			}
			if pb.peekArrived(l.vc) >= cycle {
				if l.traced {
					r.tr.Blocked(l.port, l.vc, BlockArrival, cycle)
				}
				quiesce = false // transient: forwardable next cycle
				continue
			}
			// Downstream space: stop/go gate on shared-buffer links,
			// per-VC credits otherwise.
			if gated {
				if !r.gateAllows(o, v, cycle) {
					if l.traced {
						r.tr.Blocked(l.port, l.vc, BlockNoSpace, cycle)
					}
					continue
				}
			} else if crd[v] <= 0 {
				if l.traced {
					r.tr.Blocked(l.port, l.vc, BlockNoCredit, cycle)
				}
				continue // hard: creditArrived re-enqueues
			}
			f := pb.popFlit(l.vc)
			r.work--
			r.usedInput[l.port] = true
			r.usedList = append(r.usedList, l.port)
			if !gated {
				crd[v]--
			}
			if ur := r.credUpR[l.port]; ur != nil {
				fx.credits = append(fx.credits, creditFx{r: ur, o: r.credUpPort[l.port], vc: l.vc, cycle: cycle})
			} else if ret := r.credUp[l.port]; ret != nil {
				fx.credits = append(fx.credits, creditFx{ret: ret, vc: l.vc, cycle: cycle})
			}
			if fault != nil && fault.Drop(f, cycle) {
				// Lost in transit: the link cycle and the downstream
				// credit are spent, but the flit never arrives. The
				// sending router's own bookkeeping is unaffected — a
				// dropped tail wedges the *downstream* packet, which
				// is the watchdog's job to catch.
				r.FaultDropped++
			} else {
				out := f
				if fault != nil {
					out = fault.Corrupt(out, cycle)
				}
				// Fill the slot in place: a composite-literal append
				// copies the ~100-byte delivery twice.
				n := len(fx.deliveries)
				if n < cap(fx.deliveries) {
					fx.deliveries = fx.deliveries[:n+1]
				} else {
					fx.deliveries = append(fx.deliveries, delivery{})
				}
				d := &fx.deliveries[n]
				d.r, d.ep, d.f, d.port, d.vc, d.cycle = r.outR[o], nil, out, r.outPort[o], v, cycle
				if d.r == nil {
					d.ep = r.out[o]
				}
			}
			if f.Kind == flit.Tail || f.Kind == flit.HeadTail {
				if l.traced {
					r.tr.Departed(l.port, l.vc, o, v, f, cycle)
				}
				r.completePacket(o, v, cycle)
			}
			oh.linkRR = int32((v + 1) % V)
			// One flit per output link per cycle: the output stays
			// pending for the next cycle's attempt — unless that tail
			// released its last lock, in which case the output is idle
			// until grantCell re-enqueues it.
			return oh.lockCount == 0
		}
	}
	return quiesce
}

// grantCell allocates idle output queue (o, v) to the arbiter's next
// eligible flow (the original phase-2 body for one cell). The new
// lock's first forward attempt is next cycle, so the output joins the
// pending work-list.
func (r *Router) grantCell(o, v int, cycle int64) {
	if r.out[o] == nil {
		panic(fmt.Sprintf("wormhole: router %d output %d unconnected", r.id, o))
	}
	V := r.cfg.VCs
	cell := o*V + v
	flow := r.arbs[cell].NextFlow()
	r.eligible[cell]--
	port, vc := flow/V, flow%V
	if r.in[port].empty(vc) {
		panic("wormhole: arbiter granted a flow with no buffered head flit")
	}
	r.locks[cell] = lock{active: true, port: port, vc: vc, outVC: v, flow: flow, since: cycle}
	if r.tr != nil {
		if h := r.in[port].peek(vc).f; h.Traced {
			r.locks[cell].traced = r.tr.Granted(port, vc, o, v, h.PktID, cycle)
			r.inTraced[port*V+vc] = r.locks[cell].traced
		}
	}
	r.outs[o].lockCount++
	r.outs[o].lockVCs |= 1 << uint(v)
	r.inLockOut[port*V+vc] = int32(o)
	r.work++
	r.grantable.Clear(cell)
	r.pendingOut.Set(o)
}

// completePacket releases output queue (o, v) after its packet's tail
// flit passed, bills the arbiter with the occupancy (cycle-since: one
// per cycle the queue was held, exactly what the eager per-cycle
// counter accrued), and announces any next packet now at the head of
// the same input VC FIFO.
func (r *Router) completePacket(o, v int, cycle int64) {
	cell := o*r.cfg.VCs + v
	l := &r.locks[cell]
	port, vc, flow, occ := l.port, l.vc, l.flow, cycle-l.since
	r.locks[cell] = lock{}
	r.outs[o].lockCount--
	r.outs[o].lockVCs &^= 1 << uint(v)
	r.inLockOut[port*r.cfg.VCs+vc] = -1
	r.inTraced[port*r.cfg.VCs+vc] = false
	r.work--
	pb := &r.in[port]
	pb.fifos[vc].notif = false
	// Is the next head packet (if already buffered) routed to the same
	// output queue? Then the flow stays active from the arbiter's
	// viewpoint.
	nowEmpty := true
	if !pb.empty(vc) {
		h := pb.peek(vc).f
		if h.Kind == flit.Head || h.Kind == flit.HeadTail {
			if o2, ov2 := r.headTarget(port, vc, h); o2 == o && ov2 == v {
				nowEmpty = false
				pb.fifos[vc].notif = true
				if h.Traced && r.tr != nil {
					// Re-announced in place: the next head competes
					// for the same output queue from this cycle on.
					r.tr.HeadEligible(port, vc, h.PktID, cycle)
				}
			}
		}
	}
	r.arbs[cell].OnPacketDone(flow, occ, nowEmpty)
	if !nowEmpty {
		r.eligible[cell]++
	} else {
		// The next packet (if any, and once its head flit is here) may
		// target a different output queue.
		r.announce(port, vc, cycle)
	}
	// The queue just went idle; if any flow is (still, or newly via
	// announce) eligible for it, the cell is grantable this cycle.
	if r.eligible[cell] > 0 {
		r.grantable.Set(cell)
	}
}

// Arb returns the arbiter of output queue (o, v) (for tests and
// metrics).
func (r *Router) Arb(o, v int) sched.Scheduler { return r.arbs[o*r.cfg.VCs+v] }

// Sink is an ejection endpoint: it accepts every flit and reports
// packet departures (tail flits). Its buffer is unlimited, modelling
// an end system that always drains its network interface.
type Sink struct {
	// OnFlit, if set, observes every ejected flit.
	OnFlit func(f flit.Flit, vc int, cycle int64)
	// OnTail, if set, observes packet completions (tail or head+tail
	// flits).
	OnTail func(f flit.Flit, cycle int64)
	// Flits counts ejected flits, Packets completed packets.
	Flits, Packets int64
}

// AcceptFlit implements Endpoint.
func (s *Sink) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	s.Flits++
	if s.OnFlit != nil {
		s.OnFlit(f, vc, cycle)
	}
	if f.Kind == flit.Tail || f.Kind == flit.HeadTail {
		s.Packets++
		if s.OnTail != nil {
			s.OnTail(f, cycle)
		}
	}
}

// BufFlits implements Endpoint (0 = unlimited).
func (s *Sink) BufFlits() int { return 0 }

// StallSink is an ejection endpoint with a bounded buffer that drains
// at a configurable pattern, creating downstream congestion on
// demand: Drain is consulted each cycle; when it returns true one
// buffered flit leaves. Use Step to advance it.
type StallSink struct {
	Capacity int
	Drain    func(cycle int64) bool
	Inner    Sink
	buffered []flit.Flit
	credUp   creditReturn
	vcs      []int
}

// NewStallSink returns a stall sink with the given buffer capacity.
func NewStallSink(capacity int, drain func(cycle int64) bool) *StallSink {
	if capacity < 1 {
		panic("wormhole: StallSink capacity < 1")
	}
	return &StallSink{Capacity: capacity, Drain: drain}
}

// AcceptFlit implements Endpoint.
func (s *StallSink) AcceptFlit(f flit.Flit, vc int, cycle int64) {
	if len(s.buffered) >= s.Capacity {
		panic("wormhole: StallSink overflow (credit protocol violated)")
	}
	s.buffered = append(s.buffered, f)
	s.vcs = append(s.vcs, vc)
}

// BufFlits implements Endpoint.
func (s *StallSink) BufFlits() int { return s.Capacity }

// Buffered returns the number of flits held but not yet drained. An
// empty sink's Step is a no-op that draws no randomness, so callers
// advancing time event-to-event may skip it.
func (s *StallSink) Buffered() int { return len(s.buffered) }

// Bind attaches the sink to the router output feeding it so drained
// flits return credits. Call after ConnectEndpoint.
func (s *StallSink) Bind(r *Router, po int) {
	s.credUp = func(vc int, cycle int64) { r.creditArrived(po, vc, cycle) }
}

// Step drains at most one flit if the drain pattern allows.
func (s *StallSink) Step(cycle int64) {
	if len(s.buffered) == 0 || s.Drain == nil || !s.Drain(cycle) {
		return
	}
	f, vc := s.buffered[0], s.vcs[0]
	s.buffered = s.buffered[1:]
	s.vcs = s.vcs[1:]
	if s.credUp != nil {
		s.credUp(vc, cycle)
	}
	s.Inner.AcceptFlit(f, vc, cycle)
}

// WaitEdge is one edge of the channel-wait graph: an in-flight packet
// holding output queue (OutPort, OutVC) that cannot advance, and why.
// The deadlock watchdog dumps these for every router when a network
// stops making progress, turning "it hangs" into a followable chain
// of who-waits-on-whom.
type WaitEdge struct {
	Router, OutPort, OutVC int
	InPort, InVC, Flow     int
	Occupancy              int64
	// Reason is what blocks the next flit: "frozen", "link-stalled",
	// "input-empty" (waiting on upstream), "no-credit" / "no-space"
	// (waiting on downstream), or "contended" (movable, lost link
	// arbitration this cycle).
	Reason string
}

// WaitEdges returns the channel-wait graph edges of every currently
// blocked output-queue allocation, evaluated against the state at the
// given cycle. Only outputs holding allocations are visited
// (lockCount), so dumping a big, mostly-idle mesh costs its traffic,
// not its radix.
func (r *Router) WaitEdges(cycle int64) []WaitEdge {
	var edges []WaitEdge
	frozen := r.frozen != nil && r.frozen(cycle)
	for o := 0; o < r.cfg.Ports; o++ {
		if r.outs[o].lockCount == 0 {
			continue
		}
		stalled := r.outFault[o] != nil && r.outFault[o].Stalled(cycle)
		for v := 0; v < r.cfg.VCs; v++ {
			l := r.locks[o*r.cfg.VCs+v]
			if !l.active {
				continue
			}
			reason := "contended"
			pb := &r.in[l.port]
			switch {
			case frozen:
				reason = "frozen"
			case stalled:
				reason = "link-stalled"
			case pb.empty(l.vc):
				reason = "input-empty"
			case r.gateOut[o] != nil && !r.gateOut[o](v):
				reason = "no-space"
			case r.gateOut[o] == nil && r.crd[o*r.cfg.VCs+v] <= 0:
				reason = "no-credit"
			}
			edges = append(edges, WaitEdge{
				Router: r.id, OutPort: o, OutVC: v,
				InPort: l.port, InVC: l.vc, Flow: l.flow,
				Occupancy: cycle - l.since, Reason: reason,
			})
		}
	}
	return edges
}

// String renders the edge for wait-graph dumps.
func (e WaitEdge) String() string {
	return fmt.Sprintf("router %d out(%d,%d) <- in(%d,%d) flow %d occ %d: %s",
		e.Router, e.OutPort, e.OutVC, e.InPort, e.InVC, e.Flow, e.Occupancy, e.Reason)
}

// DumpState prints the router's output-queue allocations, FIFO
// occupancies and credit counters — a debugging aid for deadlock
// analysis. Outputs are visited only when they hold allocations or
// grantable cells, inputs only when non-empty, so the dump of a big
// quiescent mesh stays proportional to its live state.
func (r *Router) DumpState() {
	V := r.cfg.VCs
	for o := 0; o < r.cfg.Ports; o++ {
		if r.outs[o].lockCount == 0 && !anyGrantable(&r.grantable, o, V) {
			continue
		}
		for v := 0; v < V; v++ {
			cell := o*V + v
			l := r.locks[cell]
			if l.active {
				fmt.Printf("router %d out (%d,%d): LOCKED in=(%d,%d) occ=%d fifo=%d crd=%d elig=%d\n",
					r.id, o, v, l.port, l.vc, r.lastCycle-l.since, r.in[l.port].len(l.vc), r.crd[cell], r.eligible[cell])
			} else if r.eligible[cell] > 0 {
				fmt.Printf("router %d out (%d,%d): idle but eligible=%d crd=%d\n", r.id, o, v, r.eligible[cell], r.crd[cell])
			}
		}
	}
	for p := range r.in {
		for v := 0; v < V; v++ {
			if !r.in[p].empty(v) {
				h := r.in[p].peek(v).f
				fmt.Printf("router %d in (%d,%d): %d flits, head %v dst=%d notified=%v\n",
					r.id, p, v, r.in[p].len(v), h.Kind, h.Dst, r.in[p].fifos[v].notif)
			}
		}
	}
}

// anyGrantable reports whether output o has any grantable cell.
func anyGrantable(b *queue.Bitset, o, vcs int) bool {
	for v := 0; v < vcs; v++ {
		if b.Test(o*vcs + v) {
			return true
		}
	}
	return false
}
