package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// TestVirtualClockInEngine exercises the ClockAware plumbing: the
// engine must feed the cycle counter to VirtualClock before
// arrivals, and the discipline must stay fair across an idle gap
// (the max(now, VC_i) reset).
func TestVirtualClockInEngine(t *testing.T) {
	e, err := NewEngine(Config{Flows: 2, Scheduler: sched.NewVirtualClock(nil)})
	if err != nil {
		t.Fatal(err)
	}
	served := make([]int64, 2)
	e.cfg.OnFlit = func(cycle int64, flow int) { served[flow]++ }
	// Flow 0 monopolises an early period, then goes idle.
	for i := 0; i < 5; i++ {
		e.Inject(flit.Packet{Flow: 0, Length: 10})
	}
	e.Run(100)
	// A long idle gap; flow 1 then arrives. VirtualClock must not
	// "owe" flow 1 all the capacity flow 0 used before (its clock
	// resets to now), so after the gap both flows share ~equally.
	e.Run(200)
	s0 := served[0]
	for i := 0; i < 20; i++ {
		e.Inject(flit.Packet{Flow: 0, Length: 10})
		e.Inject(flit.Packet{Flow: 1, Length: 10})
	}
	e.Run(300)
	d0 := served[0] - s0
	d1 := served[1]
	if d1 == 0 || d0 == 0 {
		t.Fatal("flows not served after gap")
	}
	r := float64(d0) / float64(d1)
	if r < 0.8 || r > 1.25 {
		t.Errorf("post-gap share ratio %.2f, want ~1 (VirtualClock reset)", r)
	}
}

// TestSTFQInEngine runs STFQ end to end through the engine.
func TestSTFQInEngine(t *testing.T) {
	src := rng.New(5)
	served := make([]int64, 2)
	e, err := NewEngine(Config{
		Flows:     2,
		Scheduler: sched.NewSTFQ(nil),
		Source: traffic.NewMulti(
			traffic.NewBacklogged(0, 4, rng.NewUniform(1, 16), src.Split()),
			traffic.NewBacklogged(1, 4, rng.NewUniform(1, 64), src.Split()),
		),
		OnFlit: func(cycle int64, flow int) { served[flow]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100000)
	r := float64(served[0]) / float64(served[1])
	if r < 0.95 || r > 1.05 {
		t.Errorf("STFQ engine share ratio %.3f", r)
	}
}

// TestOnStallFallsBackToOnIdle: without an OnStall hook, stall cycles
// must be reported to OnIdle so every cycle is accounted for.
func TestOnStallFallsBackToOnIdle(t *testing.T) {
	e, err := NewEngine(Config{
		Flows: 1, Scheduler: core.New(),
		Stall: StallFunc(func(int) int { return 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var flits, idles int
	e.cfg.OnFlit = func(int64, int) { flits++ }
	e.cfg.OnIdle = func(int64) { idles++ }
	e.Inject(flit.Packet{Flow: 0, Length: 3})
	e.Run(6)
	if flits+idles != 6 {
		t.Errorf("accounted %d cycles of 6", flits+idles)
	}
	if idles != 3 {
		t.Errorf("stall cycles reported to OnIdle = %d, want 3", idles)
	}
}

// TestOnStallSeparatesAttribution: with OnStall set, OnIdle sees only
// truly idle cycles.
func TestOnStallSeparatesAttribution(t *testing.T) {
	e, err := NewEngine(Config{
		Flows: 1, Scheduler: core.New(),
		Stall: StallFunc(func(int) int { return 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var stalls, idles int
	e.cfg.OnStall = func(cycle int64, flow int) {
		if flow != 0 {
			t.Errorf("stall attributed to flow %d", flow)
		}
		stalls++
	}
	e.cfg.OnIdle = func(int64) { idles++ }
	e.Inject(flit.Packet{Flow: 0, Length: 2})
	e.Run(6) // 4 busy cycles (2 stalls + 2 flits), 2 idle
	if stalls != 2 {
		t.Errorf("stalls = %d, want 2", stalls)
	}
	if idles != 2 {
		t.Errorf("idles = %d, want 2", idles)
	}
}

// TestNegativeStallPanics guards the StallModel contract.
func TestNegativeStallPanics(t *testing.T) {
	e, err := NewEngine(Config{
		Flows: 1, Scheduler: core.New(),
		Stall: StallFunc(func(int) int { return -1 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(flit.Packet{Flow: 0, Length: 1})
	defer func() {
		if recover() == nil {
			t.Error("negative stall did not panic")
		}
	}()
	e.Run(2)
}

// TestFlitModeBacklogAccounting: Backlog must include partially
// transmitted packets in flit mode.
func TestFlitModeBacklogAccounting(t *testing.T) {
	e, err := NewEngine(Config{Flows: 2, FlitSched: sched.NewFBRR()})
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(flit.Packet{Flow: 0, Length: 4})
	e.Inject(flit.Packet{Flow: 1, Length: 4})
	e.Step() // one flit of one packet moved
	if got := e.Backlog(); got != 2 {
		t.Errorf("Backlog = %d mid-packet, want 2", got)
	}
	e.Run(7)
	if e.Backlog() != 0 {
		t.Error("backlog not drained")
	}
}

// TestFlitModeBacklogCounterMatchesScan cross-checks the O(1)
// flit-mode backlog counter against a brute-force scan of the queues
// at every cycle, over a workload that includes length-1 packets (a
// packet that is popped and completed in the same step).
func TestFlitModeBacklogCounterMatchesScan(t *testing.T) {
	const flows = 5
	e, err := NewEngine(Config{Flows: flows, FlitSched: sched.NewFBRR()})
	if err != nil {
		t.Fatal(err)
	}
	scan := func() int {
		n := 0
		for f := 0; f < flows; f++ {
			n += e.queues[f].Len()
			if e.remaining[f] > 0 {
				n++
			}
		}
		return n
	}
	src := rng.New(21)
	for c := 0; c < 2000; c++ {
		if src.Bernoulli(0.3) {
			e.Inject(flit.Packet{Flow: src.Intn(flows), Length: src.IntRange(1, 4)})
		}
		e.Step()
		if got, want := e.Backlog(), scan(); got != want {
			t.Fatalf("cycle %d: Backlog = %d, scan = %d", c, got, want)
		}
	}
	if _, drained := e.RunUntilDrained(10_000); !drained {
		t.Fatal("did not drain")
	}
	if got := e.Backlog(); got != 0 {
		t.Fatalf("Backlog after drain = %d", got)
	}
}

// TestMixedInjectAndSource: direct Inject combines with a Source.
func TestMixedInjectAndSource(t *testing.T) {
	src := rng.New(9)
	e, err := NewEngine(Config{
		Flows:     2,
		Scheduler: core.New(),
		Source:    traffic.NewWindow(traffic.NewBernoulli(0, 1.0, rng.Constant{Length: 2}, src), 0, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	var departed int
	e.cfg.OnDeparture = func(p flit.Packet, cycle, occ int64) { departed++ }
	e.Inject(flit.Packet{Flow: 1, Length: 5})
	_, drained := e.RunUntilDrained(1000)
	if !drained {
		t.Fatal("did not drain")
	}
	if departed != 11 { // 10 source packets + 1 injected
		t.Errorf("departures %d, want 11", departed)
	}
}
