package core

// RoundEvent is one flow's service opportunity as seen by a TraceRecorder.
type RoundEvent struct {
	Round     int64
	Flow      int
	Allowance int64
	Sent      int64
	Surplus   int64
	Left      bool // the flow drained and left the active list
}

// RoundInfo describes the start of a round.
type RoundInfo struct {
	Round     int64
	PrevMaxSC int64
	Visits    int
}

// TraceRecorder collects ERR round events in memory. It powers the
// golden tests of the paper's Figure 3 and cmd/errtrace.
type TraceRecorder struct {
	Rounds []RoundInfo
	Events []RoundEvent
}

// RoundStart implements TraceSink.
func (r *TraceRecorder) RoundStart(round, prevMaxSC int64, visits int) {
	r.Rounds = append(r.Rounds, RoundInfo{Round: round, PrevMaxSC: prevMaxSC, Visits: visits})
}

// Opportunity implements TraceSink.
func (r *TraceRecorder) Opportunity(round int64, flow int, allowance, sent, surplus int64, left bool) {
	r.Events = append(r.Events, RoundEvent{
		Round: round, Flow: flow,
		Allowance: allowance, Sent: sent, Surplus: surplus, Left: left,
	})
}

// EventsOfRound returns the opportunities of one round, in service
// order.
func (r *TraceRecorder) EventsOfRound(round int64) []RoundEvent {
	var out []RoundEvent
	for _, e := range r.Events {
		if e.Round == round {
			out = append(out, e)
		}
	}
	return out
}

// MaxSCOfRound returns MaxSC(round) — the largest surplus count among
// the opportunities of that round (0 if the round has no events).
func (r *TraceRecorder) MaxSCOfRound(round int64) int64 {
	var max int64
	for _, e := range r.Events {
		if e.Round == round && e.Surplus > max {
			max = e.Surplus
		}
	}
	return max
}

var _ TraceSink = (*TraceRecorder)(nil)
