package exec

import (
	"fmt"
	"runtime/debug"
	"time"
)

// PanicError is the structured error a panicking job is converted to:
// one buggy parameter point must not take down a thousand-job sweep,
// so Run recovers every panic and reports it through the normal error
// contract (lowest failing index) instead of crashing the process.
type PanicError struct {
	// Job is the submission index of the panicking job.
	Job int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// TimeoutError reports a job that exceeded the WithTimeout budget.
type TimeoutError struct {
	// Job is the submission index of the job.
	Job int
	// Limit is the configured per-job budget.
	Limit time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("job %d exceeded the %v timeout", e.Job, e.Limit)
}

// safeCall invokes the job with panic recovery.
func safeCall[T any](i int, job Job[T]) (r T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Job: i, Value: p, Stack: string(debug.Stack())}
		}
	}()
	return job()
}

// callJob invokes the job with panic recovery and, when configured,
// the per-job timeout. A timed-out job's goroutine is not killed — Go
// cannot preempt it — so it runs to completion in the background and
// its result is discarded; the timeout exists to fail a wedged sweep
// (e.g. a deadlocked simulation without a watchdog) with a clean,
// deterministic error instead of hanging forever.
func callJob[T any](o *options, i int, job Job[T]) (T, error) {
	if o.timeout <= 0 {
		return safeCall(i, job)
	}
	type outcome struct {
		r   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := safeCall(i, job)
		ch <- outcome{r, err}
	}()
	t := time.NewTimer(o.timeout)
	defer t.Stop()
	select {
	case out := <-ch:
		return out.r, out.err
	case <-t.C:
		var zero T
		return zero, &TimeoutError{Job: i, Limit: o.timeout}
	}
}

// runJob runs one job through the full resilience pipeline: panic
// recovery, timeout, and bounded retry with exponential backoff.
// With WithContext, cancellation is honored before each attempt and
// during backoff sleeps; the uncancellable o.sleep seam is kept for
// the context-free path so tests can fake time there.
func runJob[T any](o *options, i int, job Job[T]) (T, error) {
	for attempt := 0; ; attempt++ {
		if o.ctx != nil {
			if err := o.ctx.Err(); err != nil {
				var zero T
				return zero, err
			}
		}
		r, err := callJob(o, i, job)
		if err == nil || attempt >= o.retries {
			return r, err
		}
		if o.backoff > 0 {
			if err := sleepBackoff(o, o.backoff<<uint(attempt)); err != nil {
				var zero T
				return zero, err
			}
		}
	}
}

// sleepBackoff waits out one backoff period, returning early with the
// context's error when a WithContext context is canceled mid-sleep.
func sleepBackoff(o *options, d time.Duration) error {
	if o.ctx == nil {
		o.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-o.ctx.Done():
		return o.ctx.Err()
	}
}
