package noc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// delivRec is one ejected flit as the sinks saw it — the byte-level
// artifact the determinism tests compare across stepping modes.
type delivRec struct {
	node, flow, seq, vc int
	kind                flit.Kind
	pkt                 int64
	cycle               int64
}

// runArtifacts is everything observable about one scenario run.
// Floats are compared exactly (==): the determinism contract is
// byte-identity, not tolerance.
type runArtifacts struct {
	log      []delivRec
	packets  []int64
	flits    []int64
	cycle    int64
	inFlight int
	latN     int64
	latMean  float64
	latVar   float64
	latMin   float64
	latMax   float64
	obs      obs.Snapshot
}

// runStepVariant drives one fixed traffic scenario — warm phase plus
// bounded drain — stepping the mesh however configure chooses, and
// returns the run's artifacts. tile is Config.Tile (0 = auto).
func runStepVariant(t *testing.T, torus bool, tile int, faultSpec string, configure func(m *Mesh) (step func(), cleanup func())) runArtifacts {
	t.Helper()
	cfg := Config{K: 4, VCs: 2, BufFlits: 4, Tile: tile,
		NewArb: func() sched.Scheduler { return core.New() }}
	if torus {
		cfg.Torus = true
		cfg.VCs = 4
	}
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterObs(reg)
	if faultSpec != "" {
		spec, err := fault.Parse(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaults(fault.New(spec, 99))
	}
	var log []delivRec
	for id := range m.sinks {
		id := id
		s := m.sinks[id]
		prev := s.OnFlit
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			log = append(log, delivRec{node: id, flow: f.Flow, seq: f.Seq,
				vc: vc, kind: f.Kind, pkt: f.PktID, cycle: cycle})
			if prev != nil {
				prev(f, vc, cycle)
			}
		}
	}
	step, cleanup := configure(m)
	if cleanup != nil {
		defer cleanup()
	}
	inj := NewInjector(m, 0.15, Uniform{Nodes: m.Nodes()}, rng.NewUniform(1, 6), rng.New(7))
	for c := 0; c < 2500; c++ {
		inj.Step()
		step()
	}
	// Bounded drain (fault scenarios can wedge packets permanently;
	// the wedge itself must then be identical across variants).
	for i := 0; i < 6000 && m.InFlight() > 0; i++ {
		step()
	}
	return runArtifacts{
		log:      log,
		packets:  append([]int64(nil), m.DeliveredPackets...),
		flits:    append([]int64(nil), m.DeliveredFlits...),
		cycle:    m.Cycle(),
		inFlight: m.InFlight(),
		latN:     m.Latency.N(),
		latMean:  m.Latency.Mean(),
		latVar:   m.Latency.Var(),
		latMin:   m.Latency.Min(),
		latMax:   m.Latency.Max(),
		obs:      reg.Snapshot(),
	}
}

// stepVariants are the stepping modes every scenario is run under.
// quiescent marks modes whose obs telemetry must match the baseline
// exactly (full iteration computes all K² routers by design, so its
// noc.router_computes differs while every simulation artifact is
// still identical — that is precisely the skipped-routers-are-no-ops
// claim).
var stepVariants = []struct {
	name      string
	quiescent bool
	configure func(m *Mesh) (func(), func())
}{
	{"serial-quiescent", true, func(m *Mesh) (func(), func()) {
		return m.Step, nil
	}},
	{"full-iteration", false, func(m *Mesh) (func(), func()) {
		m.SetFullIteration(true)
		return m.Step, nil
	}},
	{"router-fullscan", false, func(m *Mesh) (func(), func()) {
		m.SetFullScan(true)
		return m.Step, nil
	}},
	{"pool-1", true, func(m *Mesh) (func(), func()) {
		p := exec.NewPool(1)
		return func() { m.StepParallel(p) }, p.Close
	}},
	{"pool-2", true, func(m *Mesh) (func(), func()) {
		p := exec.NewPool(2)
		m.SetPool(p)
		return m.Step, p.Close
	}},
	{"pool-8", true, func(m *Mesh) (func(), func()) {
		p := exec.NewPool(8)
		return func() { m.StepParallel(p) }, p.Close
	}},
	// pool-alternating regression-tests shard scratch reuse across
	// worker-count changes: the same mesh is stepped by pools of three
	// different sizes (and serially), switching every step mid-run. The
	// tile scratch is keyed to tiles, not workers, so no rebuild — and
	// no stale bound — may ever leak between pool sizes.
	{"pool-alternating", true, func(m *Mesh) (func(), func()) {
		pools := []*exec.Pool{exec.NewPool(2), exec.NewPool(8), nil, exec.NewPool(3)}
		n := 0
		step := func() {
			p := pools[n%len(pools)]
			n++
			if p == nil {
				m.Step()
				return
			}
			m.StepParallel(p)
		}
		cleanup := func() {
			for _, p := range pools {
				if p != nil {
					p.Close()
				}
			}
		}
		return step, cleanup
	}},
}

func assertArtifactsEqual(t *testing.T, name string, base, got runArtifacts, compareObs bool) {
	t.Helper()
	if !compareObs {
		base.obs, got.obs = obs.Snapshot{}, obs.Snapshot{}
	}
	if reflect.DeepEqual(base, got) {
		return
	}
	switch {
	case !reflect.DeepEqual(base.log, got.log):
		i := 0
		for i < len(base.log) && i < len(got.log) && base.log[i] == got.log[i] {
			i++
		}
		t.Errorf("%s: delivery logs diverge at index %d (len %d vs %d)", name, i, len(base.log), len(got.log))
	case !reflect.DeepEqual(base.obs, got.obs):
		t.Errorf("%s: obs snapshots differ:\n  base %+v\n  got  %+v", name, base.obs, got.obs)
	default:
		base.log, got.log = nil, nil
		t.Errorf("%s: artifacts differ:\n  base %+v\n  got  %+v", name, base, got)
	}
}

// TestMeshStepParallelMatchesSerial pins the tentpole contract: the
// quiescent serial path, the full-iteration oracle, and StepParallel
// at 1/2/8 workers all produce byte-identical artifacts — every
// ejected flit (node, vc, kind, cycle), every counter, and the exact
// Welford latency accumulation, whose float sums would expose any
// reordering of commit effects.
func TestMeshStepParallelMatchesSerial(t *testing.T) {
	base := runStepVariant(t, false, 0, "", stepVariants[0].configure)
	if base.latN == 0 || base.inFlight != 0 {
		t.Fatalf("scenario degenerate: %d packets, %d in flight", base.latN, base.inFlight)
	}
	for _, v := range stepVariants[1:] {
		got := runStepVariant(t, false, 0, "", v.configure)
		assertArtifactsEqual(t, v.name, base, got, v.quiescent)
	}
}

// TestMeshTileConfigsMatchAcrossWorkers sweeps explicit commit tile
// edges — 1x1 (every effect is a boundary effect), the 2x2 default,
// 3x3 (uneven edge tiles on K=4), and 4x4 (one tile, everything
// interior) — and requires each tiling to produce byte-identical
// artifacts across every stepping mode and worker count. The tile edge
// is part of the simulated configuration, so identity is pinned per
// tiling, at any parallelism.
func TestMeshTileConfigsMatchAcrossWorkers(t *testing.T) {
	for _, tile := range []int{1, 2, 3, 4} {
		base := runStepVariant(t, false, tile, "", stepVariants[0].configure)
		if base.latN == 0 || base.inFlight != 0 {
			t.Fatalf("tile=%d: scenario degenerate: %d packets, %d in flight", tile, base.latN, base.inFlight)
		}
		for _, v := range stepVariants[1:] {
			got := runStepVariant(t, false, tile, "", v.configure)
			assertArtifactsEqual(t, fmt.Sprintf("tile=%d/%s", tile, v.name), base, got, v.quiescent)
		}
	}
}

// TestMeshStepParallelTorusFaults is the adversarial variant: a torus
// (dateline VC switching) under link stalls, flit drops, corruption,
// and a router freeze. Faults exercise the quiescence edge cases —
// frozen routers must keep accruing occupancy while active, dropped
// tails wedge downstream worms that must stay registered forever —
// and the per-(router,port) fault rng streams must land identically
// regardless of compute scheduling.
func TestMeshStepParallelTorusFaults(t *testing.T) {
	const spec = "stall(port=1,at=100,dur=200);drop(router=5,port=1,p=0.05);corrupt(router=10,p=0.05);freeze(router=6,at=300,dur=400)"
	base := runStepVariant(t, true, 0, spec, stepVariants[0].configure)
	if base.latN == 0 {
		t.Fatal("scenario degenerate: nothing delivered")
	}
	for _, v := range stepVariants[1:] {
		got := runStepVariant(t, true, 0, spec, v.configure)
		assertArtifactsEqual(t, v.name, base, got, v.quiescent)
	}
}

// TestMeshTileDeterminism64TorusFaults is the at-scale adversarial
// pin for tiled stepping: a 64x64 torus (4096 routers, 64 commit
// tiles at the 8x8 default) under link stalls and frozen routers,
// driven by bursty scheduled traffic through the Run/Drain event core.
// Every combination of worker count (serial, 1, 2, 4, 8) and stepping
// mode (literal stepped oracle vs event-driven time skipping) must
// produce byte-identical artifacts — deliveries, latency floats, and
// final in-flight state, including whatever the faults wedge.
func TestMeshTileDeterminism64TorusFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("64x64 adversarial sweep skipped in -short mode")
	}
	o := eventRunOpts{
		cfg: Config{K: 64, VCs: 4, BufFlits: 2, Torus: true,
			NewArb: func() sched.Scheduler { return core.New() }},
		spec: "stall(port=1,at=100,dur=400);stall(router=1300,port=3,at=600,dur=300);" +
			"freeze(router=2080,at=200,dur=500);freeze(router=70,at=900,dur=200)",
		bursts:   []int64{0, 1500},
		perBurst: 120,
		run:      3_000,
		drain:    20_000,
	}
	o.stepped = true
	base, _ := eventRun(t, o)
	if base.latN == 0 {
		t.Fatal("scenario degenerate: nothing delivered")
	}
	variants := []struct {
		name    string
		stepped bool
		workers int
	}{
		{"stepped-w1", true, 1},
		{"stepped-w2", true, 2},
		{"stepped-w4", true, 4},
		{"stepped-w8", true, 8},
		{"event-serial", false, 0},
		{"event-w8", false, 8},
	}
	for _, v := range variants {
		o.stepped, o.workers = v.stepped, v.workers
		got, _ := eventRun(t, o)
		assertArtifactsEqual(t, v.name, base, got, v.stepped)
	}
}

// TestQuiescenceSkipsIdleRouters pins the point of the active set: a
// single worm crossing a big mesh must cost a handful of router
// computes per cycle, not K².
func TestQuiescenceSkipsIdleRouters(t *testing.T) {
	m, err := NewMesh(Config{K: 8, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterObs(reg)
	m.Send(0, m.Nodes()-1, 3)
	if !m.Drain(2000) {
		t.Fatal("packet not delivered")
	}
	cycles := reg.Counter("noc.cycles").Value()
	computes := reg.Counter("noc.router_computes").Value()
	if cycles == 0 {
		t.Fatal("no cycles recorded")
	}
	// A 3-flit worm occupies a bounded window of the 14-hop path; the
	// idle ~60 routers must not be computed.
	if computes > cycles*8 {
		t.Errorf("router computes %d over %d cycles: active set not pruning (full iteration would be %d)",
			computes, cycles, cycles*int64(m.Nodes()))
	}
	if hw := reg.Gauge("noc.active_routers_high_water").Value(); hw == 0 || hw > 10 {
		t.Errorf("active-set high water %d, want 1..10", hw)
	}
	if got := reg.Gauge("noc.active_routers").Value(); got != 0 {
		t.Errorf("active routers after drain = %d, want 0", got)
	}
}
