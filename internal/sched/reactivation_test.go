package sched_test

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/sched"
)

// Reactivation semantics distinguish the timestamp disciplines: how a
// flow that went idle is treated when it returns.

// SCFQ: the self clock v advances only with served packets; a
// reactivating flow starts at max(v, its last finish tag), so it gets
// no credit for idle time but also carries no debt into the future
// beyond its last finish tag.
func TestSCFQReactivationNoIdleCredit(t *testing.T) {
	d := harness.New(2, sched.NewSCFQ(nil))
	// Flow 0 backlogged with 10-flit packets.
	for i := 0; i < 50; i++ {
		d.Arrive(flit.Packet{Flow: 0, Length: 10})
	}
	d.ServeN(20)
	// Flow 1 was idle the whole time. Its first packet tags v + len,
	// which ties it with flow 0's next packet — it must be served
	// within the next two packets, not instantly entitled to the
	// "missed" bandwidth.
	d.Arrive(flit.Packet{Flow: 1, Length: 10})
	first := d.ServeOne()
	second := d.ServeOne()
	if first.Flow != 1 && second.Flow != 1 {
		t.Errorf("reactivated flow not served among next two packets (%d, %d)", first.Flow, second.Flow)
	}
	// And afterwards the two flows alternate: flow 1 must NOT get a
	// burst of catch-up service.
	for i := 0; i < 20; i++ {
		d.Arrive(flit.Packet{Flow: 1, Length: 10})
	}
	f1Run := 0
	maxRun := 0
	for i := 0; i < 20 && d.Backlog() > 0; i++ {
		p := d.ServeOne()
		if p.Flow == 1 {
			f1Run++
			if f1Run > maxRun {
				maxRun = f1Run
			}
		} else {
			f1Run = 0
		}
	}
	if maxRun > 2 {
		t.Errorf("SCFQ gave the reactivated flow a catch-up burst of %d packets", maxRun)
	}
}

// VirtualClock: an idle flow's clock resets forward to real time, so
// like SCFQ it gets no catch-up burst — but a flow that previously
// OVERUSED (its VC ran ahead of real time) keeps that debt.
func TestVirtualClockDebtPersists(t *testing.T) {
	vc := sched.NewVirtualClock(nil)
	d := harness.New(2, vc)
	// Flow 0 sends a large burst back to back; its virtual clock runs
	// far ahead of real time.
	for i := 0; i < 10; i++ {
		d.Arrive(flit.Packet{Flow: 0, Length: 50})
	}
	d.ServeN(10) // real time now 500; flow 0's VC is also 500
	// Flow 0 keeps sending; flow 1 starts fresh with small packets at
	// real time 500: flow 1's tags start at now and stay behind flow
	// 0's until the clocks even out, so flow 1 dominates briefly.
	for i := 0; i < 10; i++ {
		d.Arrive(flit.Packet{Flow: 0, Length: 50})
		d.Arrive(flit.Packet{Flow: 1, Length: 10})
	}
	firstFew := d.ServeN(5)
	f1 := 0
	for _, p := range firstFew {
		if p.Flow == 1 {
			f1++
		}
	}
	if f1 < 4 {
		t.Errorf("VirtualClock did not prioritise the fresh flow over the indebted one (%d/5)", f1)
	}
}

// WFQ: after every flow drains, virtual time stops advancing and a
// fresh arrival is served immediately.
func TestWFQIdleSystemRestart(t *testing.T) {
	d := harness.New(2, sched.NewWFQ(nil))
	d.Arrive(flit.Packet{Flow: 0, Length: 5})
	d.Drain()
	// Fully idle; a new packet on the other flow must be served at
	// once and the system must not have accumulated any bias.
	d.Arrive(flit.Packet{Flow: 1, Length: 5})
	if p := d.ServeOne(); p.Flow != 1 {
		t.Errorf("restart served flow %d", p.Flow)
	}
	// Balanced service resumes.
	for i := 0; i < 100; i++ {
		d.Arrive(flit.Packet{Flow: 0, Length: 8})
		d.Arrive(flit.Packet{Flow: 1, Length: 8})
	}
	d.ServeN(100)
	r := float64(d.Served(0)) / float64(d.Served(1))
	if r < 0.9 || r > 1.15 {
		t.Errorf("post-restart balance %.3f", r)
	}
}

// FBRR unit coverage via its own interface (the engine tests cover
// the integrated path).
func TestFBRRUnit(t *testing.T) {
	f := sched.NewFBRR()
	f.OnArrival(3, true)
	f.OnArrival(1, true)
	if got := f.NextFlow(); got != 3 {
		t.Fatalf("NextFlow = %d, want 3", got)
	}
	f.OnFlitDone(3, false, false)
	if got := f.NextFlow(); got != 1 {
		t.Fatalf("NextFlow = %d, want 1", got)
	}
	f.OnFlitDone(1, true, true) // flow 1 drained
	if got := f.NextFlow(); got != 3 {
		t.Fatalf("NextFlow = %d, want 3", got)
	}
	if f.Name() != "FBRR" {
		t.Error("name wrong")
	}
}
