package plot

import (
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	var sb strings.Builder
	err := Bar(&sb, "Throughput", []string{"flow 0", "flow 1"}, []float64{100, 50}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Throughput") || !strings.Contains(out, "flow 0") {
		t.Errorf("missing title/labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	// flow 0's bar should be about twice flow 1's.
	c0 := strings.Count(lines[1], "#")
	c1 := strings.Count(lines[2], "#")
	if c0 != 20 || c1 != 10 {
		t.Errorf("bar lengths %d/%d, want 20/10", c0, c1)
	}
}

func TestBarMismatch(t *testing.T) {
	var sb strings.Builder
	if err := Bar(&sb, "x", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Error("mismatched labels/values accepted")
	}
}

func TestBarZeroValues(t *testing.T) {
	var sb strings.Builder
	if err := Bar(&sb, "z", []string{"a", "b"}, []float64{0, 0}, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#") {
		t.Error("zero values drew bars")
	}
}

func TestLines(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, "Delay", []Series{
		{Name: "ERR", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "FCFS", X: []float64{1, 2, 3}, Y: []float64{15, 30, 60}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Delay", "*=ERR", "o=FCFS", "x: 1 .. 3", "y: 10 .. 60"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs not plotted")
	}
}

func TestLinesErrors(t *testing.T) {
	var sb strings.Builder
	if err := Lines(&sb, "t", []Series{{Name: "bad", X: []float64{1}, Y: nil}}, 30, 8); err == nil {
		t.Error("mismatched series accepted")
	}
	if err := Lines(&sb, "t", nil, 30, 8); err == nil {
		t.Error("empty plot accepted")
	}
}

func TestLinesDegenerateRanges(t *testing.T) {
	var sb strings.Builder
	// A single point: both ranges degenerate; must not divide by zero.
	if err := Lines(&sb, "pt", []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"x", "y"}, [][]float64{{1, 2}, {3, 4.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4.5\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestCSVRowMismatch(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"x"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row accepted")
	}
}
