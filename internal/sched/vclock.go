package sched

// VirtualClock (Zhang, SIGCOMM 1990) emulates time-division
// multiplexing rather than GPS: each flow owns a virtual clock that
// advances by L / rate_i per packet, reset forward to real time when
// the flow has been idle:
//
//	VC_i = max(now, VC_i) + L / w_i
//
// and packets are served in increasing VC order. O(log n),
// LengthAware, and ClockAware (the max with real time is the defining
// difference from SCFQ).
type VirtualClock struct {
	weight  func(flow int) float64
	heap    *tagHeap
	tags    map[int]*fifoF64
	vc      map[int]float64
	now     float64
	current int
	pending int
}

// NewVirtualClock returns a VirtualClock scheduler; nil weight means
// equal weights (one flit of entitlement per cycle split evenly is
// immaterial — only relative weights matter).
func NewVirtualClock(weight func(flow int) float64) *VirtualClock {
	return &VirtualClock{
		weight:  weightFn(weight),
		heap:    newTagHeap(),
		tags:    make(map[int]*fifoF64),
		vc:      make(map[int]float64),
		current: -1,
		pending: -1,
	}
}

// Name implements Scheduler.
func (v *VirtualClock) Name() string { return "VClock" }

// SetNow implements ClockAware.
func (v *VirtualClock) SetNow(cycle int64) { v.now = float64(cycle) }

// OnArrival implements Scheduler.
func (v *VirtualClock) OnArrival(flow int, wasEmpty bool) {
	if v.pending != -1 {
		panic("sched: VirtualClock OnArrival without OnArrivalLength for previous packet")
	}
	v.pending = flow
}

// OnArrivalLength implements LengthAware.
func (v *VirtualClock) OnArrivalLength(flow int, length int) {
	if v.pending != flow {
		panic("sched: VirtualClock OnArrivalLength does not match OnArrival")
	}
	v.pending = -1
	clock := v.vc[flow]
	if v.now > clock {
		clock = v.now
	}
	clock += float64(length) / v.weight(flow)
	v.vc[flow] = clock
	q := v.tags[flow]
	if q == nil {
		q = &fifoF64{}
		v.tags[flow] = q
	}
	wasIdle := q.empty() && flow != v.current
	q.push(clock)
	if wasIdle {
		v.heap.push(flow, clock)
	}
}

// NextFlow implements Scheduler.
func (v *VirtualClock) NextFlow() int {
	if v.current != -1 {
		panic("sched: VirtualClock.NextFlow while a packet is in service")
	}
	flow, _ := v.heap.popMin()
	v.current = flow
	return flow
}

// OnPacketDone implements Scheduler.
func (v *VirtualClock) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != v.current {
		panic("sched: VirtualClock completion for a flow not in service")
	}
	v.current = -1
	q := v.tags[flow]
	q.pop()
	if !q.empty() {
		v.heap.push(flow, q.peek())
	}
}

var (
	_ LengthAware = (*VirtualClock)(nil)
	_ ClockAware  = (*VirtualClock)(nil)
)
