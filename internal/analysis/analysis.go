// Package analysis provides the paper's analytical results as
// executable artifacts: closed-form bound calculators for the
// fairness measures of Table 1, service bounds from Theorem 2, and a
// verifier that checks any recorded ERR execution against Lemma 1,
// Corollary 1, Theorem 2 and Theorem 3. The tests of package core
// check the theorems on random runs; this package makes the same
// checks available to users auditing their own workloads.
package analysis

import (
	"fmt"

	"repro/internal/core"
)

// ERRFairnessBound returns the Theorem 3 bound on ERR's relative
// fairness measure: 3m, where m is the largest packet (in flits, or
// occupancy cycles in wormhole mode) that actually arrived.
func ERRFairnessBound(m int64) int64 { return 3 * m }

// DRRFairnessBound returns DRR's relative fairness bound from the
// paper's Table 1: Max + 2m, where Max is the largest packet that may
// potentially arrive (the quantum must be provisioned for it).
func DRRFairnessBound(m, max int64) int64 { return max + 2*m }

// FQFairnessBound returns the Table 1 bound for (ideal) Fair Queuing.
func FQFairnessBound(m int64) int64 { return m }

// SurplusBound returns the Lemma 1 bound on any surplus count: m-1.
func SurplusBound(m int64) int64 { return m - 1 }

// ServiceBounds returns the Theorem 2 bounds on the flits N a
// continuously active flow sends over n consecutive rounds starting
// at round k:
//
//	n + Σ_{r=k-1}^{k+n-2} MaxSC(r) - (m-1) <= N <= ... + (m-1)
//
// maxSCByRound[r] must hold MaxSC(r) for r in [k-1, k+n-2] (index by
// round number; MaxSC(0) = 0).
func ServiceBounds(n, k int64, maxSCByRound map[int64]int64, m int64) (lo, hi int64) {
	var sum int64
	for r := k - 1; r <= k+n-2; r++ {
		if r >= 1 {
			sum += maxSCByRound[r]
		}
	}
	return n + sum - (m - 1), n + sum + (m - 1)
}

// VerifyTrace checks a recorded ERR execution against the paper's
// analytical results:
//
//   - Lemma 1 / Corollary 1: every surplus count in [0, m-1] (the
//     lower bound is waived for opportunities that drained the flow,
//     where Figure 1 resets SC to zero);
//   - allowance positivity: every A_i(r) >= 1 (the "+1" guarantee);
//   - Theorem 2: for every flow present in every round of a window of
//     up to maxWindow consecutive complete rounds, the service bounds
//     hold.
//
// m is the largest packet cost that occurred during the run. It
// returns nil when every check passes.
func VerifyTrace(rec *core.TraceRecorder, m int64, maxWindow int) error {
	if m < 1 {
		return fmt.Errorf("analysis: m must be >= 1")
	}
	if len(rec.Events) == 0 {
		return nil
	}
	for _, ev := range rec.Events {
		if ev.Allowance < 1 {
			return fmt.Errorf("analysis: allowance %d < 1 (flow %d, round %d)",
				ev.Allowance, ev.Flow, ev.Round)
		}
		if ev.Surplus > m-1 {
			return fmt.Errorf("analysis: surplus %d > m-1 = %d (flow %d, round %d)",
				ev.Surplus, m-1, ev.Flow, ev.Round)
		}
		if !ev.Left && ev.Surplus < 0 {
			return fmt.Errorf("analysis: negative surplus %d without drain (flow %d, round %d)",
				ev.Surplus, ev.Flow, ev.Round)
		}
	}
	// Theorem 2 on complete rounds.
	last := rec.Events[len(rec.Events)-1].Round
	complete := last - 1
	if complete < 1 || maxWindow < 1 {
		return nil
	}
	maxSC := map[int64]int64{}
	sent := map[int64]map[int]int64{}
	present := map[int64]map[int]bool{}
	for _, ev := range rec.Events {
		if ev.Round > complete {
			continue
		}
		if ev.Surplus > maxSC[ev.Round] {
			maxSC[ev.Round] = ev.Surplus
		}
		if sent[ev.Round] == nil {
			sent[ev.Round] = map[int]int64{}
			present[ev.Round] = map[int]bool{}
		}
		sent[ev.Round][ev.Flow] += ev.Sent
		present[ev.Round][ev.Flow] = true
	}
	for k := int64(1); k <= complete; k++ {
		for n := int64(1); n <= int64(maxWindow) && k+n-1 <= complete; n++ {
			lo, hi := ServiceBounds(n, k, maxSC, m)
			// Only flows active in every round of the window — and
			// never draining inside it — are covered by Theorem 2.
			for flow := range present[k] {
				ok := true
				var N int64
				for r := k; r <= k+n-1; r++ {
					if !present[r][flow] {
						ok = false
						break
					}
					N += sent[r][flow]
				}
				if !ok {
					continue
				}
				if drainsWithin(rec, flow, k, k+n-1) {
					continue
				}
				if N < lo || N > hi {
					return fmt.Errorf("analysis: Theorem 2 violated: flow %d rounds [%d,%d]: N=%d not in [%d,%d]",
						flow, k, k+n-1, N, lo, hi)
				}
			}
		}
	}
	return nil
}

// drainsWithin reports whether flow drained (left the active list)
// during rounds [k, k2].
func drainsWithin(rec *core.TraceRecorder, flow int, k, k2 int64) bool {
	for _, ev := range rec.Events {
		if ev.Flow == flow && ev.Left && ev.Round >= k && ev.Round <= k2 {
			return true
		}
	}
	return false
}

// FairnessVerdict compares a measured fairness value against a bound,
// producing the Table 1 verdict string used by the tooling.
func FairnessVerdict(measured, bound int64) string {
	switch {
	case bound <= 0:
		return "unbounded discipline"
	case measured < bound:
		return fmt.Sprintf("holds (%d < %d)", measured, bound)
	default:
		return fmt.Sprintf("VIOLATED (%d >= %d)", measured, bound)
	}
}
