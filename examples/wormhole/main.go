// Wormhole example: why a wormhole switch cannot use DRR.
//
// In a wormhole switch the time a packet occupies an output is set by
// downstream congestion, not by its length, and the length may not be
// known until the tail flit passes. Here two flows send identically
// sized packets, but flow 1's destination is congested: every flit
// stalls one extra cycle, so each of its packets occupies the output
// for twice its length.
//
// ERR simply bills each packet with its measured occupancy and
// equalises *output time*. DRR's deficit test needs the packet length
// up front — the engine refuses to run it with a stall model unless
// the ablation override is set, and with the override it demonstrably
// hands the congested flow two thirds of the output.
//
// Run with: go run ./examples/wormhole
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

func occupancyShares(s sched.Scheduler, override bool) (shares [2]float64, err error) {
	src := rng.New(11)
	var occ [2]int64
	bill := func(cycle int64, flow int) { occ[flow]++ }
	e, err := engine.NewEngine(engine.Config{
		Flows:     2,
		Scheduler: s,
		Source: traffic.NewMulti(
			traffic.NewBacklogged(0, 4, rng.NewUniform(1, 32), src.Split()),
			traffic.NewBacklogged(1, 4, rng.NewUniform(1, 32), src.Split()),
		),
		// Downstream congestion: flow 1 stalls one cycle per flit.
		Stall: engine.StallFunc(func(flow int) int {
			if flow == 1 {
				return 1
			}
			return 0
		}),
		AllowLengthAwareStalls: override,
		OnFlit:                 bill,
		OnStall:                bill,
	})
	if err != nil {
		return shares, err
	}
	e.Run(500_000)
	total := float64(occ[0] + occ[1])
	shares[0] = float64(occ[0]) / total
	shares[1] = float64(occ[1]) / total
	return shares, nil
}

func main() {
	errShares, err := occupancyShares(core.New(), false)
	if err != nil {
		log.Fatal(err)
	}

	// First show that the engine enforces the paper's argument.
	_, refused := engine.NewEngine(engine.Config{
		Flows:     2,
		Scheduler: sched.NewDRR(64, nil),
		Stall:     engine.StallFunc(func(int) int { return 1 }),
	})
	fmt.Printf("running DRR against a wormhole stall model: %v\n\n", refused)

	drrShares, err := occupancyShares(sched.NewDRR(64, nil), true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("share of output time (flow 1's destination is congested, 2x stalls):")
	fmt.Printf("  %-6s flow0 %.3f   flow1 %.3f\n", "ERR", errShares[0], errShares[1])
	fmt.Printf("  %-6s flow0 %.3f   flow1 %.3f   (ablation override)\n", "DRR", drrShares[0], drrShares[1])
	fmt.Println("\nERR charges the congested flow for the cycles it blocks the output")
	fmt.Println("(Section 1: fairness must be \"over the length of time each flow is")
	fmt.Println("allowed to block other flows\"); DRR can only budget flits, so the")
	fmt.Println("congested flow captures ~2/3 of the output.")
}
