package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/fault"
)

// FaultWindow is one fault-active interval [At, End) on a router (or
// on one of its output ports; Port < 0 means the whole router, i.e. a
// freeze). Fault-induced blocking is attributed to hops at export
// time by span overlap: the event-driven core never visits the cycles
// inside a dormant stall window, so no runtime counter could be
// mode-identical — but the windows come from the parsed spec, which
// every mode shares.
type FaultWindow struct {
	Router int32
	Port   int32 // -1 = whole router (freeze)
	At     int64
	End    int64 // exclusive; math.MaxInt64 for a permanent fault
}

// WindowsFromSpec extracts the stall and freeze windows of a parsed
// fault spec. Probabilistic directives (drop, corrupt, malformed)
// have no window — their effects are visible in the flit stream, not
// as blocked time.
func WindowsFromSpec(spec *fault.Spec) []FaultWindow {
	if spec == nil {
		return nil
	}
	var ws []FaultWindow
	for _, d := range spec.Directives {
		var port int32
		switch d.Kind {
		case "stall":
			port = int32(d.Port)
		case "freeze":
			port = -1
		default:
			continue
		}
		end := int64(math.MaxInt64)
		if d.Dur > 0 {
			end = d.At + d.Dur
		}
		ws = append(ws, FaultWindow{Router: int32(d.Router), Port: port, At: d.At, End: end})
	}
	return ws
}

// FaultCycles returns how many cycles of a hop record's occupancy
// span [Grant, Cycle] overlap fault windows on its router/output
// (overlapping windows double-count; specs rarely overlap).
func FaultCycles(rec Record, ws []FaultWindow) int64 {
	if rec.Kind != KindHop {
		return 0
	}
	var n int64
	for _, w := range ws {
		if w.Router != rec.Router {
			continue
		}
		if w.Port >= 0 && w.Port != int32(rec.OutPort) {
			continue
		}
		lo, hi := rec.Grant, rec.Cycle
		if w.At > lo {
			lo = w.At
		}
		if w.End-1 < hi {
			hi = w.End - 1
		}
		if hi >= lo {
			n += hi - lo + 1
		}
	}
	return n
}

// WriteJSONL writes one span per line: inject, hop (with the latency
// decomposition, fault cycles included), deliver. Keys are emitted in
// a fixed order via Fprintf, so equal record sequences produce equal
// bytes — the property the cross-mode differential tests pin.
func WriteJSONL(w io.Writer, recs []Record, ws []FaultWindow) error {
	for _, r := range recs {
		var err error
		switch r.Kind {
		case KindInject:
			_, err = fmt.Fprintf(w, `{"ev":"inject","pkt":%d,"flow":%d,"src":%d,"dst":%d,"len":%d,"cycle":%d}`+"\n",
				r.PktID, r.Flow, r.Router, r.Dst, r.Len, r.Cycle)
		case KindHop:
			_, err = fmt.Fprintf(w, `{"ev":"hop","pkt":%d,"flow":%d,"router":%d,"in":[%d,%d],"out":[%d,%d],"len":%d,"arrive":%d,"eligible":%d,"grant":%d,"depart":%d,"queue":%d,"arb":%d,"contend":%d,"upstream":%d,"credit":%d,"fault":%d}`+"\n",
				r.PktID, r.Flow, r.Router, r.InPort, r.InVC, r.OutPort, r.OutVC, r.Len,
				r.Arrive, r.Eligible, r.Grant, r.Cycle,
				r.Eligible-r.Arrive, r.Grant-r.Eligible, r.Contend, r.UpGap, r.CrdWait,
				FaultCycles(r, ws))
		case KindDeliver:
			_, err = fmt.Fprintf(w, `{"ev":"deliver","pkt":%d,"flow":%d,"dst":%d,"inject":%d,"cycle":%d,"latency":%d}`+"\n",
				r.PktID, r.Flow, r.Dst, r.Arrive, r.Cycle, r.Cycle-r.Arrive+1)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome writes the records as a Chrome trace-event JSON array
// (loadable in Perfetto / chrome://tracing). Timestamps are cycles
// rendered as integer microseconds; each flow becomes a process
// (pid), each packet a thread (tid), each hop a complete ("X") event
// spanning the packet's residence at that router, and inject/deliver
// instant ("i") events. Output bytes are deterministic: fixed key
// order, records already in merge order.
func WriteChrome(w io.Writer, recs []Record, ws []FaultWindow) error {
	if _, err := fmt.Fprintf(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := fmt.Fprintf(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	// Process-name metadata for each flow present, sorted.
	flows := map[int32]bool{}
	for _, r := range recs {
		flows[r.Flow] = true
	}
	sorted := make([]int32, 0, len(flows))
	for f := range flows {
		sorted = append(sorted, f)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, f := range sorted {
		if err := emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"flow %d"}}`, f, f); err != nil {
			return err
		}
	}
	for _, r := range recs {
		var err error
		switch r.Kind {
		case KindInject:
			err = emit(`{"name":"inject @%d","cat":"pkt","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}`,
				r.Router, r.Cycle, r.Flow, r.PktID)
		case KindHop:
			err = emit(`{"name":"hop r%d in(%d,%d) out(%d,%d)","cat":"hop","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"len":%d,"queue":%d,"arb":%d,"contend":%d,"upstream":%d,"credit":%d,"fault":%d}}`,
				r.Router, r.InPort, r.InVC, r.OutPort, r.OutVC,
				r.Arrive, r.Cycle-r.Arrive+1, r.Flow, r.PktID,
				r.Len, r.Eligible-r.Arrive, r.Grant-r.Eligible,
				r.Contend, r.UpGap, r.CrdWait, FaultCycles(r, ws))
		case KindDeliver:
			err = emit(`{"name":"deliver @%d (latency %d)","cat":"pkt","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t"}`,
				r.Router, r.Cycle-r.Arrive+1, r.Cycle, r.Flow, r.PktID)
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n]\n")
	return err
}

// Audit cross-checks merged records against the span invariants every
// mode must uphold — arrive <= eligible <= grant <= depart per hop,
// decomposition bounded by the span, deliver not before inject — and
// reports violations through the given sink (check.Recorder.Report
// has this exact shape).
func Audit(recs []Record, report func(cycle int64, invariant string, flow int, format string, argv ...any)) int {
	bad := 0
	for _, r := range recs {
		switch r.Kind {
		case KindHop:
			if r.Arrive > r.Eligible || r.Eligible > r.Grant || r.Grant > r.Cycle {
				bad++
				report(r.Cycle, "trace-span-order", int(r.Flow),
					"hop pkt %d router %d: arrive=%d eligible=%d grant=%d depart=%d out of order",
					r.PktID, r.Router, r.Arrive, r.Eligible, r.Grant, r.Cycle)
			}
			decomp := int64(r.Contend) + int64(r.UpGap) + int64(r.CrdWait)
			if span := r.Cycle - r.Grant; decomp > span {
				bad++
				report(r.Cycle, "trace-decomposition", int(r.Flow),
					"hop pkt %d router %d: blocked-cycle decomposition %d exceeds occupancy span %d",
					r.PktID, r.Router, decomp, span)
			}
		case KindDeliver:
			if r.Arrive > r.Cycle {
				bad++
				report(r.Cycle, "trace-span-order", int(r.Flow),
					"deliver pkt %d: inject cycle %d after delivery %d", r.PktID, r.Arrive, r.Cycle)
			}
		}
	}
	return bad
}
