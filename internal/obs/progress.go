package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// NewProgress returns a callback compatible with exec.WithProgress
// that renders a single in-place progress line
//
//	label: 12/40 (30.0%) eta 1m20s
//
// to w (normally os.Stderr). Updates are throttled to one every
// 200ms, except the final one (done == total), which is always
// rendered and terminates the line. The callback is safe for
// concurrent use — worker-pool goroutines report completions
// directly.
func NewProgress(w io.Writer, label string) func(done, total int) {
	p := &progress{w: w, label: label, start: time.Now()}
	return p.update
}

type progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	start time.Time
	last  time.Time
	best  int // highest done seen; completions may report out of order
}

func (p *progress) update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if done < p.best {
		return
	}
	p.best = done
	now := time.Now()
	final := done >= total
	if !final && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	line := fmt.Sprintf("\r%s: %d/%d (%.1f%%)", p.label, done, total, pct)
	if !final && done > 0 {
		elapsed := now.Sub(p.start)
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	if final {
		line += fmt.Sprintf(" in %s\n", time.Since(p.start).Round(time.Millisecond))
	}
	fmt.Fprint(p.w, line)
}
