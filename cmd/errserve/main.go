// Command errserve runs the ERR scheduler as a live HTTP service: an
// overload-safe fair-queuing front end (internal/serve) over a demo
// /work?ms=N handler, with per-tenant flows, bounded queues, load
// shedding, request deadlines, graceful degradation tiers, and a
// clean SIGTERM drain.
//
// Usage:
//
//	errserve [-addr :8080] [-faults SPEC] [flags]       serve until SIGTERM
//	errserve -selfdrive 30s [-faults SPEC] [flags]      in-process smoke, JSON report
//	errserve -bench [-bench-out BENCH_serve.json]       saturation sweep
//
// In selfdrive mode the binary drives itself with open-loop load
// derived from the -faults burst/flood directives plus a baseline
// tenant mix, then raises SIGTERM against its own process so the real
// signal path drains the server, prints a JSON report, and exits
// non-zero on any accounting violation or unclean drain — the CI
// smoke gates on that exit code. The scheduler logic lives in
// internal/serve; this file is only flag plumbing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (serve mode)")
		tenantKey = flag.String("tenant-key", "header:X-Tenant", "flow classification key: header:<Name> or query:<name>")
		workers   = flag.Int("workers", 16, "concurrency limit: requests in their handler at once")
		queueCap  = flag.Int("queue-cap", 128, "per-flow queue capacity in requests")
		globalB   = flag.Int64("global-bytes", 32<<20, "global queued-memory budget in bytes")
		debtCap   = flag.Int64("debt-cap", 0, "cap on a flow's deferred surplus count in cost units (0 = unbounded)")
		deadline  = flag.Duration("deadline", 0, "default per-request deadline (0 = none; X-Request-Deadline-Ms can only tighten it)")
		weights   = flag.String("weights", "", "per-tenant ERR weights, e.g. \"gold=3,bulk=1\" (unlisted tenants weigh 1)")
		faults    = flag.String("faults", "", "service-side fault spec, e.g. \"slow(p=0.05,ms=20);stuck(p=0.002,ms=300);flood(tenant=hog,rps=800)\" (see internal/fault)")
		seed      = flag.Uint64("seed", 1, "seed for fault injection and load generation")
		manifest  = flag.String("manifest", "", "append a JSONL run manifest to this path on shutdown (\"\" = none)")
		drainTO   = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight requests")
		selfdrive = flag.Duration("selfdrive", 0, "run an in-process load smoke for this long, SIGTERM self, print a JSON report, exit non-zero on violations or unclean drain")
		bench     = flag.Bool("bench", false, "run the elephant-vs-mice saturation sweep and write -bench-out")
		benchOut  = flag.String("bench-out", "BENCH_serve.json", "bench report path")
		benchDur  = flag.Duration("bench-dur", 2*time.Second, "load duration per bench saturation point")
	)
	flag.Parse()

	weight, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}

	if *bench {
		runBench(*workers, *queueCap, *benchDur, *seed, *benchOut)
		return
	}

	var spec *fault.Spec
	if *faults != "" {
		if spec, err = fault.Parse(*faults); err != nil {
			fatal(err)
		}
	}
	reg := obs.NewRegistry()
	cfg := serve.Config{
		Handler:         serve.WorkHandler(),
		TenantKey:       *tenantKey,
		Workers:         *workers,
		QueueCap:        *queueCap,
		GlobalBytes:     *globalB,
		DebtCap:         *debtCap,
		DefaultDeadline: *deadline,
		Weight:          weight,
		Faults:          fault.NewServe(spec, *seed),
		Registry:        reg,
	}

	if *selfdrive > 0 {
		runSelfdrive(cfg, *faults, *seed, *selfdrive, *drainTO, *manifest)
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.MetricsHandler())
	mux.Handle("/", s)

	start := time.Now()
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	fmt.Fprintf(os.Stderr, "errserve: serving on %s (workers=%d queue-cap=%d)\n", *addr, cfg.Workers, cfg.QueueCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "errserve: draining")
	_ = httpSrv.Close()
	drainErr := s.Drain(*drainTO)
	violations, msgs := s.VerifyAccounting()
	writeManifest(*manifest, s, reg, *faults, violations, time.Since(start))
	if drainErr != nil {
		fatal(drainErr)
	}
	if violations != 0 {
		fatal(fmt.Errorf("%d accounting violations: %v", violations, msgs))
	}
	fmt.Fprintln(os.Stderr, "errserve: drained clean")
}

// runSelfdrive wires the real signal path into the selfdrive harness:
// the shutdown hook raises SIGTERM against this very process, and the
// signal handler goroutine — the same code path a production SIGTERM
// takes — performs the drain.
func runSelfdrive(cfg serve.Config, faultSpec string, seed uint64, dur, drainTO time.Duration, manifest string) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	start := time.Now()
	rep, err := serve.SelfDrive(serve.SelfDriveConfig{
		Workers: cfg.Workers, QueueCap: cfg.QueueCap,
		GlobalBytes: cfg.GlobalBytes, DebtCap: cfg.DebtCap,
		DefaultDeadline: cfg.DefaultDeadline,
		FaultSpec:       faultSpec, Seed: seed,
		Dur: dur, DrainTimeout: drainTO,
	}, func(s *serve.Server) error {
		drained := make(chan error, 1)
		go func() {
			<-sig
			drained <- s.Drain(drainTO)
		}()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			return err
		}
		err := <-drained
		if manifest != "" {
			v, _ := s.VerifyAccounting()
			writeManifest(manifest, s, s.Registry(), faultSpec, v, time.Since(start))
		}
		return err
	})
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	if !rep.OK {
		os.Exit(1)
	}
}

func runBench(workers, queueCap int, dur time.Duration, seed uint64, out string) {
	rep, err := serve.RunBench(serve.BenchConfig{
		Workers: workers, QueueCap: queueCap, Dur: dur, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "errserve: bench report written to %s\n", out)
}

func writeManifest(path string, s *serve.Server, reg *obs.Registry, faultSpec string, violations int64, wall time.Duration) {
	if path == "" {
		return
	}
	m := obs.NewManifest(s.RunInfo(), "", wall).
		WithFaults(faultSpec, violations).
		WithMetrics(reg)
	if err := m.AppendTo(path); err != nil {
		fatal(err)
	}
}

// parseWeights parses "tenant=weight,tenant=weight" into a Weight
// function, or nil for the empty string.
func parseWeights(s string) (func(string) int64, error) {
	if s == "" {
		return nil, nil
	}
	m := map[string]int64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("weights: %q is not tenant=weight", pair)
		}
		w, err := strconv.ParseInt(val, 10, 64)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weights: %q needs an integer weight >= 1", pair)
		}
		m[name] = w
	}
	return func(tenant string) int64 {
		if w, ok := m[tenant]; ok {
			return w
		}
		return 1
	}, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "errserve: %v\n", err)
	os.Exit(1)
}
