package damq

import (
	"testing"
	"testing/quick"

	"repro/internal/flit"
)

func f(seq int) flit.Flit { return flit.Flit{Seq: seq} }

func TestBasicFIFO(t *testing.T) {
	b := New(8, 2, 1)
	for i := 0; i < 4; i++ {
		if !b.Push(0, f(i), int64(i)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if b.Len(0) != 4 || b.Len(1) != 0 {
		t.Fatal("occupancy wrong")
	}
	for i := 0; i < 4; i++ {
		got, meta := b.Pop(0)
		if got.Seq != i || meta != int64(i) {
			t.Fatalf("pop %d: got seq %d meta %d", i, got.Seq, meta)
		}
	}
	if !b.Empty(0) || b.Free() != 8 {
		t.Fatal("buffer not restored after drain")
	}
}

func TestInterleavedQueues(t *testing.T) {
	b := New(10, 3, 1)
	// Interleave pushes across queues; each queue must stay FIFO.
	for i := 0; i < 3; i++ {
		for q := 0; q < 3; q++ {
			if !b.Push(q, f(q*100+i), 0) {
				t.Fatalf("push q%d i%d rejected", q, i)
			}
		}
	}
	for q := 0; q < 3; q++ {
		for i := 0; i < 3; i++ {
			got, _ := b.Pop(q)
			if got.Seq != q*100+i {
				t.Fatalf("queue %d order broken: %d", q, got.Seq)
			}
		}
	}
}

func TestReservationGuaranteesSpace(t *testing.T) {
	// Total 6, 2 queues, reserve 2: the shared region is 2 slots.
	b := New(6, 2, 2)
	// Queue 0 grabs its reserve plus the whole shared region.
	for i := 0; i < 4; i++ {
		if !b.Push(0, f(i), 0) {
			t.Fatalf("queue 0 push %d rejected", i)
		}
	}
	// Shared region exhausted: queue 0 may not take more...
	if b.Push(0, f(99), 0) {
		t.Fatal("queue 0 exceeded reserve+shared")
	}
	// ...but queue 1's reservation is untouchable.
	if !b.Push(1, f(0), 0) || !b.Push(1, f(1), 0) {
		t.Fatal("queue 1 denied its reserved slots")
	}
	// Now the pool is genuinely full.
	if b.Push(1, f(2), 0) {
		t.Fatal("push into full pool accepted")
	}
	if b.Free() != 0 {
		t.Fatalf("Free = %d, want 0", b.Free())
	}
}

func TestSharedAccountingOnPop(t *testing.T) {
	b := New(4, 2, 1)
	// Queue 0: 1 reserved + 2 shared.
	b.Push(0, f(0), 0)
	b.Push(0, f(1), 0)
	b.Push(0, f(2), 0)
	if b.CanAccept(1) != true {
		t.Fatal("queue 1's reserve should be available")
	}
	b.Push(1, f(0), 0)
	// Pool full; queue 1 at its reserve, shared fully used by queue 0.
	if b.CanAccept(0) || b.CanAccept(1) {
		t.Fatal("acceptance from a full pool")
	}
	// Popping one of queue 0's shared-region flits frees shared space
	// for queue 1.
	b.Pop(0)
	if !b.CanAccept(1) {
		t.Fatal("shared slot not released to other queue")
	}
}

func TestPanics(t *testing.T) {
	b := New(4, 2, 1)
	for name, fn := range map[string]func(){
		"pop empty":    func() { b.Pop(0) },
		"peek empty":   func() { b.Peek(1) },
		"bad total":    func() { New(0, 1, 0) },
		"over-reserve": func() { New(4, 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPeek(t *testing.T) {
	b := New(4, 1, 1)
	b.Push(0, f(7), 42)
	got, meta := b.Peek(0)
	if got.Seq != 7 || meta != 42 {
		t.Fatal("peek wrong")
	}
	if b.Len(0) != 1 {
		t.Fatal("peek consumed the flit")
	}
}

// Property: for any operation sequence, every queue behaves as a
// FIFO, the pool never exceeds its capacity, reservations always
// admit a flit when the queue is below its reserve, and slot
// accounting conserves (sum of queue lengths + free == total).
func TestDAMQInvariantsProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		const total, queues, reserve = 12, 3, 2
		b := New(total, queues, reserve)
		model := make([][]int, queues)
		seq := 0
		for _, op := range ops {
			q := int(op) % queues
			if op%2 == 0 {
				below := b.Len(q) < reserve
				ok := b.Push(q, f(seq), 0)
				if ok {
					model[q] = append(model[q], seq)
					seq++
				} else if below {
					return false // reservation violated
				}
			} else if len(model[q]) > 0 {
				got, _ := b.Pop(q)
				if got.Seq != model[q][0] {
					return false // FIFO order broken
				}
				model[q] = model[q][1:]
			}
			sum := b.Free()
			for qq := 0; qq < queues; qq++ {
				if b.Len(qq) != len(model[qq]) {
					return false
				}
				sum += b.Len(qq)
			}
			if sum != total {
				return false // slot leak
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCapLimitsOccupancy(t *testing.T) {
	b := New(12, 2, 1)
	b.SetCap(5)
	n := 0
	for b.Push(0, f(n), 0) {
		n++
	}
	if n != 5 {
		t.Fatalf("capped queue accepted %d, want 5", n)
	}
	if got := b.SpaceFor(0); got != 0 {
		t.Fatalf("SpaceFor at cap = %d", got)
	}
	// The other queue is unaffected.
	if got := b.SpaceFor(1); got != 5 { // min(1 reserved + 6 shared, cap 5)
		t.Fatalf("SpaceFor(1) = %d, want 5", got)
	}
	// Cap below reserve is rejected.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cap < reserve accepted")
			}
		}()
		b.SetCap(0) // remove
		bb := New(4, 2, 2)
		bb.SetCap(1)
	}()
	// Removing the cap restores shared access.
	if got := b.SpaceFor(0); got <= 0 {
		t.Fatal("cap removal did not restore space")
	}
}

// The headline DAMQ property (Tamir & Frazier): at equal total buffer,
// dynamic sharing absorbs asymmetric bursts that a static partition
// rejects.
func TestDynamicSharingBeatsStaticPartition(t *testing.T) {
	const total, queues = 16, 4
	damq := New(total, queues, 1)
	// Static partition: 4 slots per queue (simulated with reserve ==
	// total/queues, i.e. shared region zero).
	static := New(total, queues, total/queues)

	// A burst of 12 flits into one queue.
	accepted, acceptedStatic := 0, 0
	for i := 0; i < 12; i++ {
		if damq.Push(0, f(i), 0) {
			accepted++
		}
		if static.Push(0, f(i), 0) {
			acceptedStatic++
		}
	}
	if accepted <= acceptedStatic {
		t.Errorf("DAMQ accepted %d <= static %d", accepted, acceptedStatic)
	}
	if acceptedStatic != 4 {
		t.Errorf("static partition accepted %d, want 4", acceptedStatic)
	}
	// Queue 0 may hold 1 reserved + 12 shared slots, so the whole
	// 12-flit burst fits.
	if accepted != 12 {
		t.Errorf("DAMQ accepted %d, want 12", accepted)
	}
}
