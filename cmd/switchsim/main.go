// Command switchsim drives a single wormhole switch (one router from
// package wormhole): several input ports contend for output ports
// through per-output-queue packet arbitration, with a configurable
// downstream drain pattern creating the unpredictable occupancies
// that motivate ERR. It reports per-input throughput on the contended
// output and the occupancy statistics the arbiter actually billed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

func main() {
	var (
		inputs = flag.Int("inputs", 4, "input ports contending for output 0")
		vcs    = flag.Int("vcs", 1, "virtual channels per port")
		buf    = flag.Int("buf", 16, "input VC buffer depth in flits")
		arb    = flag.String("arb", "err", "output arbitration: err, pbrr")
		minLen = flag.Int("minlen", 1, "minimum packet length (flits)")
		maxLen = flag.Int("maxlen", 32, "maximum packet length (flits)")
		bigIn  = flag.Int("bigin", 1, "input whose packets are 4x longer (-1 to disable)")
		drainP = flag.Float64("drain", 1.0, "probability the downstream sink drains a flit each cycle")
		cycles = flag.Int64("cycles", 200_000, "simulation cycles")
		seed   = flag.Uint64("seed", 1, "random seed")
		pprofA = flag.String("pprof", "", "serve net/http/pprof and the obs registry expvar on this address (e.g. localhost:6060)")
		faults = flag.String("faults", "", "fault-injection spec, e.g. \"stall(port=0,at=1000,dur=500);malformed(kind=notail,p=0.001)\" (\"\" = fault-free; see internal/fault)")
		checkF = flag.Bool("check", false, "validate the output flit stream and run a deadlock watchdog; violations fail the run with a cycle-stamped report")
		fseed  = flag.Uint64("faultseed", 0, "fault-randomness seed, independent of -seed (0 = derive from -seed)")
		fscan  = flag.Bool("fullscan", false, "arbitrate with full ports-x-VCs scans instead of the event-driven work-lists (oracle mode; output must be identical)")
		par    = flag.Int("parallel-mesh", 1, "step the switch through the explicit two-phase compute/commit path (any value != 1); a single switch has nothing to shard, but output must be identical")
		stepF  = flag.Bool("stepped", false, "step every cycle literally instead of jumping dormant fault windows event-to-event (oracle mode; throughput and fault counters are identical, but arbitration-sites-visited reflects the costlier run)")
		traceF = flag.Bool("trace", false, "attach the packet flight recorder and print per-input latency tails, hop-time decomposition, and Jain fairness epochs")
		traceS = flag.Int("trace-sample", 64, "trace one in this many packets (1 = every packet); sampling is seed-derived per packet id, so trace output is byte-identical across stepping modes")
		traceC = flag.String("trace-out", "", "write sampled-packet spans as Chrome trace-event JSON (Perfetto-loadable) to this file (implies -trace)")
		traceJ = flag.String("trace-jsonl", "", "write sampled-packet spans as JSONL to this file (implies -trace)")
	)
	flag.Parse()
	if *pprofA != "" {
		addr, err := obs.ServeDebug(*pprofA, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchsim: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "switchsim: pprof on http://%s/debug/pprof/ (registry at /debug/vars)\n", addr)
	}
	topts := traceOpts{enabled: *traceF || *traceC != "" || *traceJ != "",
		sample: *traceS, chrome: *traceC, jsonl: *traceJ}
	if err := run(*inputs, *vcs, *buf, *arb, *minLen, *maxLen, *bigIn, *drainP, *cycles, *seed, *faults, *fseed, *checkF, *par, *fscan, *stepF, topts); err != nil {
		fmt.Fprintf(os.Stderr, "switchsim: %v\n", err)
		os.Exit(1)
	}
}

// traceOpts bundles the flight-recorder flags.
type traceOpts struct {
	enabled bool
	sample  int
	chrome  string
	jsonl   string
}

func run(inputs, vcs, buf int, arb string, minLen, maxLen, bigIn int, drainP float64, cycles int64, seed uint64, faults string, faultSeed uint64, checkF bool, parallel int, fullScan, stepped bool, topts traceOpts) error {
	var newArb func() sched.Scheduler
	switch arb {
	case "err":
		newArb = func() sched.Scheduler { return core.New() }
	case "pbrr":
		newArb = func() sched.Scheduler { return sched.NewPBRR() }
	default:
		return fmt.Errorf("unknown arbiter %q", arb)
	}
	ports := inputs + 1 // port 0 is the contended output
	r, err := wormhole.NewRouter(0, wormhole.Config{
		Ports:    ports,
		VCs:      vcs,
		BufFlits: buf,
		NewArb:   newArb,
		Route:    func(dst int) int { return dst },
	})
	if err != nil {
		return err
	}
	r.SetFullScan(fullScan)
	spec, err := fault.Parse(faults)
	if err != nil {
		return err
	}
	if faultSeed == 0 {
		faultSeed = rng.Derive(seed, 0xfa0175)
	}
	finj := fault.New(spec, faultSeed)
	if f := finj.FreezeFunc(0); f != nil {
		r.SetFreeze(f)
	}
	for port := 0; port < ports; port++ {
		if f := finj.OutputFault(0, port); f != nil {
			r.SetOutputFault(port, f)
		}
	}
	// All fault hooks above derive from the parsed spec, so every cycle
	// at which a fault answer can change is a spec window edge: declare
	// the edges known so the router may report dormancy (NextEventAt)
	// and the run can jump dormant windows event-to-event.
	r.SetFaultEdgesKnown(true)
	edges := finj.WindowEdges()
	// Flit-level malformed directives (notail, duphead, ...) replace a
	// whole injected packet's flit stream; they exercise the switch's
	// tolerance and, with -check, the stream validator's detection.
	var mdirs []fault.Directive
	if spec != nil {
		for _, d := range spec.Directives {
			if d.Kind == "malformed" {
				mdirs = append(mdirs, d)
			}
		}
	}
	msrc := rng.New(rng.Derive(faultSeed, 0xfa02))
	var malformed int64

	src := rng.New(seed)
	sink := wormhole.NewStallSink(8, func(cycle int64) bool { return src.Bernoulli(drainP) })
	wormhole.ConnectEndpoint(r, 0, sink)
	sink.Bind(r, 0)
	served := make([]float64, inputs)
	// Malformed streams can carry out-of-range flow ids; tolerate them
	// rather than indexing blindly.
	sink.Inner.OnFlit = func(f flit.Flit, vc int, cycle int64) {
		if f.Flow >= 1 && f.Flow <= inputs {
			served[f.Flow-1]++
		}
	}

	var rec *check.Recorder
	var wd *check.Watchdog
	if checkF {
		rec = check.NewRecorder()
		rec.Register(obs.Default())
		stream := check.NewFlitStream(rec, "output 0")
		prev := sink.Inner.OnFlit
		sink.Inner.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			stream.Observe(f, cycle)
			wd.Progress(cycle)
			prev(f, vc, cycle)
		}
		limit := int64(1 << 16)
		if spec != nil {
			for _, d := range spec.Directives {
				if 4*d.Dur > limit {
					limit = 4 * d.Dur
				}
			}
		}
		wd = check.NewWatchdog(limit)
	}

	// The flight recorder treats the switch as a single hop: the
	// router-side tracer records the arbitration span, and the CLI
	// emits inject (packet drawn into the backlog) and deliver (true
	// tail observed at the sink) around it. Malformed packets are not
	// flight-recorded — they have no well-defined span.
	type pktMeta struct {
		t0     int64
		length int
	}
	var tr *trace.Trace
	var inflight map[int64]pktMeta
	var nextID int64 = 1
	if topts.enabled {
		tr = trace.New(trace.Config{
			Seed:        rng.Derive(seed, 0x7ace),
			SampleEvery: topts.sample,
			Flows:       ports,
			Reg:         obs.Default(),
		})
		r.SetTracer(tr.AddRouter(0, ports, vcs, buf))
		inflight = make(map[int64]pktMeta)
		prev := sink.Inner.OnFlit
		sink.Inner.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			if f.Kind == flit.Tail || f.Kind == flit.HeadTail {
				if meta, ok := inflight[f.PktID]; ok && f.Seq == meta.length-1 {
					tr.Deliver(f, meta.length, cycle-meta.t0+1, cycle)
					delete(inflight, f.PktID)
				}
			}
			prev(f, vc, cycle)
		}
	}

	// Keep every input backlogged, feeding whole packets when space
	// allows.
	dists := make([]rng.LengthDist, inputs)
	for i := range dists {
		if i+1 == bigIn {
			dists[i] = rng.NewUniform(minLen*4, maxLen*4)
		} else {
			dists[i] = rng.NewUniform(minLen, maxLen)
		}
	}
	stepRouter := r.Step
	if parallel != 1 {
		var fx wormhole.Effects
		stepRouter = func(c int64) {
			fx.Reset()
			r.Compute(c, &fx)
			fx.Apply()
		}
	}

	pending := make([][]flit.Flit, inputs)
	// wedge renders the deadlock abort: the channel-wait graph at the
	// watchdog's trip cycle.
	wedge := func(c int64) error {
		dump := ""
		for _, e := range r.WaitEdges(c) {
			dump += "  " + e.String() + "\n"
		}
		return fmt.Errorf("wedged at cycle %d (no delivery for %d cycles)\nchannel-wait graph:\n%s",
			c, wd.Limit, dump)
	}
	// canSkip reports whether cycle c is a provable no-op that draws no
	// randomness: the router is dormant (frozen, or every pending
	// output stalled, with window edges known), every backlogged input
	// is refused (a nil pending slot would draw a fresh packet), and
	// the sink holds nothing to drain. Such cycles repeat verbatim
	// until the next fault-window edge, so the run may jump straight to
	// it — consulting the watchdog at its exact trip cycle inside the
	// gap, as a stepped run would.
	canSkip := func(c int64) bool {
		if stepped || r.NextEventAt(c) != wormhole.EventNever || sink.Buffered() != 0 {
			return false
		}
		for in := 0; in < inputs; in++ {
			if pending[in] == nil || r.CanAccept(in+1, 0) {
				return false
			}
		}
		return true
	}
	nextEdge := func(c int64) int64 {
		for _, e := range edges {
			if e > c {
				if e < cycles {
					return e
				}
				break
			}
		}
		return cycles
	}
	for c := int64(0); c < cycles; c++ {
		if canSkip(c) {
			t := nextEdge(c)
			if wd != nil && !wd.Tripped() {
				// A stepped run checks the watchdog at every cycle of
				// [c, t); trip at the same cycle it would.
				if at := wd.ExpiresAt(); at < t && wd.Expired(at, 1) {
					return wedge(at)
				}
			}
			c = t - 1 // the loop increment lands on the edge itself
			continue
		}
		for in := 0; in < inputs; in++ {
			port := in + 1
			if pending[in] == nil {
				p := flit.Packet{Flow: port, Length: dists[in].Draw(src), Dst: 0, ID: nextID}
				nextID++
				fs := p.Flits()
				wellFormed := true
				for _, d := range mdirs {
					if msrc.Bernoulli(d.P) {
						fs = fault.MalformedFlits(d.MKind, port, p.Length, malformed)
						malformed++
						wellFormed = false
						break
					}
				}
				if len(fs) == 0 {
					continue // zero-length malformation: nothing to inject
				}
				pending[in] = fs
				if tr != nil && wellFormed {
					if tr.Sampler().Sample(p.ID) {
						for i := range fs {
							fs[i].Traced = true
						}
					}
					tr.Inject(p.ID, port, 0, port, p.Length, c)
					inflight[p.ID] = pktMeta{t0: c, length: p.Length}
				}
			}
			// Inject on VC 0: a packet's flits must stay contiguous
			// within one VC.
			if r.Inject(port, 0, pending[in][0], c) {
				pending[in] = pending[in][1:]
				if len(pending[in]) == 0 {
					pending[in] = nil
				}
			}
		}
		stepRouter(c)
		sink.Step(c)
		// Inputs are permanently backlogged, so a silent output for the
		// whole watchdog budget means the switch is wedged.
		if wd != nil && wd.Expired(c, 1) {
			return wedge(c)
		}
	}

	labels := make([]string, inputs)
	for i := range labels {
		labels[i] = fmt.Sprintf("input %d", i+1)
		if i+1 == bigIn {
			labels[i] += " (4x len)"
		}
	}
	fmt.Printf("switch: %d inputs -> 1 output, arb=%s, drain p=%.2f, %d cycles\n",
		inputs, arb, drainP, cycles)
	mode := "work-list"
	if fullScan {
		mode = "full-scan"
	}
	fmt.Printf("arbitration: %s, %.2f arbitration sites visited/cycle (switch holds %d ports*VCs cells)\n",
		mode, float64(r.TakeCellsVisited())/float64(cycles), ports*vcs)
	if fc := finj.Counters(); fc != (fault.Counters{}) || malformed > 0 {
		fmt.Printf("faults: %d stall cycles, %d dropped flits, %d corrupted flits, %d malformed packets\n",
			fc.StallCycles, fc.Dropped, fc.Corrupted, malformed)
	}
	fmt.Println()
	if err := plot.Bar(os.Stdout, "Flits delivered per input on the contended output", labels, served, 50); err != nil {
		return err
	}
	if tr != nil {
		tr.Finish(cycles)
		recs := tr.Records()
		ws := trace.WindowsFromSpec(spec)
		if err := writeTraceFile(topts.chrome, func(w *os.File) error {
			return trace.WriteChrome(w, recs, ws)
		}); err != nil {
			return err
		}
		if err := writeTraceFile(topts.jsonl, func(w *os.File) error {
			return trace.WriteJSONL(w, recs, ws)
		}); err != nil {
			return err
		}
		fmt.Printf("\nflight recorder: %d spans (1-in-%d sampling, %d overwritten)\n",
			len(recs), topts.sample, tr.Dropped())
		if err := tr.Rollup().Render(os.Stdout); err != nil {
			return err
		}
		if rec != nil {
			// Span invariants report into the same recorder as the
			// stream checks, so violations fail the run below.
			trace.Audit(recs, rec.Report)
		}
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return fmt.Errorf("invariant checking failed: %w", err)
		}
		fmt.Printf("\ninvariant checking: %d violations\n", rec.Count())
	}
	return nil
}

// writeTraceFile writes one trace export to path ("" = skip).
func writeTraceFile(path string, write func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
