package check

// Watchdog detects deadlock and livelock: a system with backlog that
// forwards nothing for Limit cycles is wedged — either a circular
// channel-wait (deadlock, e.g. a dropped tail flit leaving a
// downstream packet open forever) or starvation (livelock). The
// watchdog only detects; the caller decides how to abort and what to
// dump (the wormhole substrate offers Router.WaitEdges /
// noc.Mesh.WaitGraph for the channel-wait graph).
//
// Usage: call Progress on every forwarded/delivered flit and Expired
// once per cycle with the current backlog. Expired trips at most
// once.
type Watchdog struct {
	// Limit is the no-progress budget in cycles.
	Limit int64

	last    int64
	tripped bool
}

// NewWatchdog returns a watchdog with the given no-progress budget in
// cycles. Size it generously: a legitimate transient stall (e.g. a
// fault window, or a deep congestion tree draining) must fit under
// the limit or the watchdog will cry wolf.
func NewWatchdog(limit int64) *Watchdog {
	if limit < 1 {
		panic("check: watchdog limit < 1")
	}
	return &Watchdog{Limit: limit}
}

// Progress records that a flit moved at cycle.
func (w *Watchdog) Progress(cycle int64) {
	if cycle > w.last {
		w.last = cycle
	}
}

// Expired reports whether the watchdog trips at cycle given the
// current backlog. An empty system cannot be wedged, so backlog == 0
// resets the no-progress clock. Returns true only on the tripping
// call; afterwards the watchdog stays Tripped but Expired returns
// false, so the caller reports once.
func (w *Watchdog) Expired(cycle, backlog int64) bool {
	if w.tripped {
		return false
	}
	if backlog <= 0 {
		w.Progress(cycle)
		return false
	}
	if cycle-w.last >= w.Limit {
		w.tripped = true
		return true
	}
	return false
}

// Tripped reports whether the watchdog has ever expired.
func (w *Watchdog) Tripped() bool { return w.tripped }

// ExpiresAt returns the cycle at which the watchdog would trip absent
// further progress: last recorded progress plus the budget. Callers
// that jump time event-to-event instead of stepping cycle-by-cycle
// (noc.Mesh time skipping) use it to consult Expired at the exact
// trip cycle before skipping past it, so a wedged-but-quiet network
// still gets its deadlock dump at the same cycle a stepped run would
// produce it.
func (w *Watchdog) ExpiresAt() int64 { return w.last + w.Limit }
