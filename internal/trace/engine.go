package trace

import (
	"sync"

	"repro/internal/flit"
)

// EngineTrace is the flight recorder for the single-server engine
// (the Section 5 experiments): spans are inject -> departure against
// one output, so each wired engine run becomes one "hop" track. Wire
// chains onto an engine.Config's OnInject/OnDeparture callbacks the
// same way obs.Collector does, so it composes with collectors and the
// experiment observers.
//
// One EngineTrace may be wired into many engine runs (an experiment
// sweep); each Wire call allocates the next track id. Runs executed
// concurrently by the exec pool interleave appends, so the ring is
// mutex-guarded here — and consequently the record order (and track
// numbering) follows job completion order, which is only reproducible
// for serial sweeps. Exports sort by (cycle, kind, track), so equal
// schedules produce equal bytes.
type EngineTrace struct {
	mu     sync.Mutex
	s      Sampler
	ring   ring
	drops  int64
	tracks int32
}

// NewEngineTrace returns an engine flight recorder sampling one in
// every packets (1 = all) into a ring of ringCap records.
func NewEngineTrace(seed uint64, every, ringCap int) *EngineTrace {
	et := &EngineTrace{s: NewSampler(seed, every)}
	if ringCap <= 0 {
		ringCap = 16384
	}
	et.ring.init(ringCap, func() { et.drops++ })
	return et
}

// Dropped returns how many records were lost to ring overwrites.
func (et *EngineTrace) Dropped() int64 {
	et.mu.Lock()
	defer et.mu.Unlock()
	return et.drops
}

// Wire chains the recorder onto an engine config's OnInject and
// OnDeparture callback slots (passed by pointer, so trace does not
// import engine — core imports trace, and engine's tests import core)
// and assigns the run the next track id (rendered as the record's
// Router field).
func (et *EngineTrace) Wire(onInject *func(flit.Packet, int64), onDeparture *func(flit.Packet, int64, int64)) {
	et.mu.Lock()
	track := et.tracks
	et.tracks++
	et.mu.Unlock()

	prevInj := *onInject
	*onInject = func(p flit.Packet, cycle int64) {
		if et.s.Sample(p.ID) {
			et.mu.Lock()
			et.ring.append(Record{
				Kind: KindInject, Router: track, Flow: int32(p.Flow),
				Len: int32(p.Length), Dst: int32(p.Dst), PktID: p.ID, Cycle: cycle,
			})
			et.mu.Unlock()
		}
		if prevInj != nil {
			prevInj(p, cycle)
		}
	}
	prevDep := *onDeparture
	*onDeparture = func(p flit.Packet, cycle, occupancy int64) {
		if et.s.Sample(p.ID) {
			et.mu.Lock()
			et.ring.append(Record{
				Kind: KindHop, Router: track, Flow: int32(p.Flow),
				Len: int32(p.Length), Dst: int32(p.Dst), PktID: p.ID,
				Cycle: cycle, Arrive: p.Arrival, Eligible: p.Arrival,
				// The output was granted occupancy cycles before the
				// tail departed; stall cycles beyond the length are
				// downstream starvation, the engine's credit analogue.
				Grant:   cycle - occupancy + 1,
				CrdWait: int32(occupancy - int64(p.Length)),
			})
			et.mu.Unlock()
		}
		if prevDep != nil {
			prevDep(p, cycle, occupancy)
		}
	}
}

// Records returns the buffered records sorted by (cycle, kind,
// track), each track's internal order preserved.
func (et *EngineTrace) Records() []Record {
	et.mu.Lock()
	defer et.mu.Unlock()
	out := make([]Record, 0, et.ring.len())
	et.ring.each(func(r Record) { out = append(out, r) })
	sortRecords(out)
	return out
}
