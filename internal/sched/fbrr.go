package sched

import "repro/internal/queue"

// FBRR is Flit-Based Round Robin: one flit from each active flow in
// strict round-robin order. With a scheduling granularity of a single
// flit it is the fairest discipline in throughput terms (Figure 4(b)
// uses it as the fairness yardstick), but it is only applicable where
// every flit carries a flow tag — scheduling virtual-channel output
// queues onto a link — and never for input-to-output-queue scheduling
// in a wormhole switch, where a packet's flits must stay contiguous.
type FBRR struct {
	active queue.ActiveList
}

// NewFBRR returns an FBRR flit scheduler.
func NewFBRR() *FBRR { return &FBRR{} }

// Name implements FlitScheduler.
func (f *FBRR) Name() string { return "FBRR" }

// OnArrival implements FlitScheduler.
func (f *FBRR) OnArrival(flow int, wasEmpty bool) {
	if !f.active.Contains(flow) {
		f.active.PushTail(flow)
	}
}

// NextFlow implements FlitScheduler.
func (f *FBRR) NextFlow() int { return f.active.PeekHead() }

// OnFlitDone implements FlitScheduler.
func (f *FBRR) OnFlitDone(flow int, endOfPacket, nowEmpty bool) {
	got := f.active.PopHead()
	if got != flow {
		panic("sched: FBRR flit completion out of order")
	}
	if !nowEmpty {
		f.active.PushTail(flow)
	}
}
