package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// ManifestSchema is the current manifest schema version; bump it when
// a field changes meaning, not when fields are added.
const ManifestSchema = 1

// RunInfo is what an experiment runner knows about its own run; every
// result type in internal/experiments implements
//
//	RunInfo() obs.RunInfo
//
// so the cmd layer can assemble a Manifest without per-experiment
// switch statements.
type RunInfo struct {
	// Experiment is the runner's short name ("fig6", "table1", ...).
	Experiment string `json:"experiment"`
	// Seeds are the rng seeds the run consumed: the base seed for
	// single-stream runners, or the per-job derived seeds for grids.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Workers is the resolved worker-pool size (1 for serial runners).
	Workers int `json:"workers"`
	// Cycles is the total configured simulation cycles summed over the
	// run's grid jobs. Post-burst drain phases (Figure 5, nocsweep)
	// are excluded: their length is data-dependent.
	Cycles int64 `json:"cycles"`
}

// Manifest records one artifact regeneration: what ran, from which
// source revision, with which seeds, and how fast. One manifest is
// appended per run as a single JSON line, so a *.manifest.jsonl file
// next to an artifact accumulates the artifact's regeneration history.
type Manifest struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	// Artifact is the results file this run (re)generated, if any.
	Artifact string `json:"artifact,omitempty"`
	// Command is the full command line of the generating process.
	Command []string `json:"command"`
	// GitRevision is the VCS revision baked into the binary by the go
	// toolchain ("" for plain `go run` / `go test` builds).
	GitRevision string   `json:"git_revision,omitempty"`
	GoVersion   string   `json:"go_version"`
	Seeds       []uint64 `json:"seeds,omitempty"`
	Workers     int      `json:"workers"`
	Cycles      int64    `json:"cycles"`
	WallSeconds float64  `json:"wall_seconds"`
	// CyclesPerSec is Cycles / WallSeconds — the sweep's aggregate
	// simulation throughput across all workers.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// FaultSpec is the fault-injection directive string the run was
	// executed under ("" = fault-free); per-kind fault counts appear
	// in Metrics as the fault.* counters.
	FaultSpec string `json:"fault_spec,omitempty"`
	// Violations is the number of invariant violations the runtime
	// checker recorded (only meaningful when checking was enabled; a
	// nonzero count means the run's results are suspect).
	Violations int64 `json:"violations,omitempty"`
	// Metrics is a registry snapshot taken when the run finished.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// NewManifest assembles a manifest from a runner's RunInfo plus the
// process-level facts (command line, toolchain, VCS revision).
func NewManifest(info RunInfo, artifact string, wall time.Duration) Manifest {
	m := Manifest{
		Schema:      ManifestSchema,
		Experiment:  info.Experiment,
		Artifact:    artifact,
		Command:     os.Args,
		GitRevision: vcsRevision(),
		GoVersion:   runtime.Version(),
		Seeds:       info.Seeds,
		Workers:     info.Workers,
		Cycles:      info.Cycles,
		WallSeconds: wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 && info.Cycles > 0 {
		m.CyclesPerSec = float64(info.Cycles) / s
	}
	return m
}

// WithFaults records the fault-injection spec and the invariant
// checker's violation count on the manifest.
func (m Manifest) WithFaults(spec string, violations int64) Manifest {
	m.FaultSpec = spec
	m.Violations = violations
	return m
}

// WithMetrics attaches a snapshot of reg and returns the manifest.
func (m Manifest) WithMetrics(reg *Registry) Manifest {
	s := reg.Snapshot()
	m.Metrics = &s
	return m
}

// AppendTo appends the manifest as one JSON line to path, creating
// the file if needed.
func (m Manifest) AppendTo(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f) // Encode terminates the line with \n
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ManifestPath derives the manifest path of an artifact:
// "results/fig6.txt" -> "results/fig6.manifest.jsonl".
func ManifestPath(artifact string) string {
	base := artifact
	if i := strings.LastIndexByte(base, '.'); i > strings.LastIndexByte(base, '/') {
		base = base[:i]
	}
	return base + ".manifest.jsonl"
}

func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}
