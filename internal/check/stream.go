package check

import (
	"repro/internal/flit"
)

// FlitStream incrementally validates a delivered flit stream at an
// observation point (an ejection sink, a link tap): per flow, every
// packet must open with a head, advance its flits in Seq order under
// one packet id, and close with a tail before the next head — the
// wormhole no-interleaving contract, checked flow by flow because a
// link legitimately multiplexes flits of different flows/VCs.
//
// It is the runtime counterpart of flit.ValidateFlits (which audits a
// complete stream after the fact): attach one FlitStream per sink and
// feed it every ejected flit; corruption faults (a tail delivered as
// a body, a duplicated head) surface as flit.stream violations at the
// cycle they arrive.
type FlitStream struct {
	rec *Recorder
	// name labels the observation point in violation details.
	name string

	flows []streamState
}

type streamState struct {
	open bool
	id   int64
	seq  int
}

// NewFlitStream returns a validator reporting into rec; name labels
// the observation point ("sink 3", "router 0 out 2").
func NewFlitStream(rec *Recorder, name string) *FlitStream {
	return &FlitStream{rec: rec, name: name}
}

// Observe feeds the next delivered flit.
func (s *FlitStream) Observe(f flit.Flit, cycle int64) {
	if f.Flow < 0 {
		s.rec.report(cycle, InvStream, f.Flow, "%s: flit with negative flow id", s.name)
		return
	}
	for f.Flow >= len(s.flows) {
		s.flows = append(s.flows, streamState{})
	}
	st := &s.flows[f.Flow]
	switch f.Kind {
	case flit.HeadTail:
		if st.open {
			s.rec.report(cycle, InvStream, f.Flow,
				"%s: head of packet %d while packet %d is open (duplicate head / missing tail)",
				s.name, f.PktID, st.id)
		}
		st.open = false
	case flit.Head:
		if st.open {
			s.rec.report(cycle, InvStream, f.Flow,
				"%s: head of packet %d while packet %d is open (duplicate head / missing tail)",
				s.name, f.PktID, st.id)
		}
		st.open, st.id, st.seq = true, f.PktID, 1
	case flit.Body, flit.Tail:
		if !st.open {
			s.rec.report(cycle, InvStream, f.Flow,
				"%s: %v flit of packet %d without a head", s.name, f.Kind, f.PktID)
			return
		}
		if f.PktID != st.id {
			s.rec.report(cycle, InvStream, f.Flow,
				"%s: flit of packet %d interleaved into open packet %d", s.name, f.PktID, st.id)
			// Resynchronise on the interloper so one interleaving
			// does not cascade into a violation per flit.
			st.id = f.PktID
		}
		if f.Seq != st.seq {
			s.rec.report(cycle, InvStream, f.Flow,
				"%s: packet %d flit out of order: seq %d, expected %d", s.name, st.id, f.Seq, st.seq)
		}
		st.seq = f.Seq + 1
		if f.Kind == flit.Tail {
			st.open = false
		}
	default:
		s.rec.report(cycle, InvStream, f.Flow,
			"%s: flit with unknown kind %d", s.name, uint8(f.Kind))
	}
}

// OpenPackets returns the number of flows with a packet still open —
// after a drain this should be zero; a dropped or corrupted tail
// leaves it positive.
func (s *FlitStream) OpenPackets() int {
	n := 0
	for _, st := range s.flows {
		if st.open {
			n++
		}
	}
	return n
}
