package noc

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// eventRunOpts parameterises one event-core oracle scenario: bursty
// scheduled traffic (the regime event-driven advancement exists for)
// on an arbitrary mesh config, optionally faulted, in event-driven or
// stepped-oracle mode.
type eventRunOpts struct {
	cfg      Config
	spec     string // fault spec, "" = clean
	stepped  bool   // SetStepped oracle mode
	workers  int    // > 0: attach an exec.Pool of this size
	bursts   []int64
	perBurst int
	run      int64
	drain    int64
}

// eventRun drives one scenario through the Run/Drain event core and
// returns its artifacts plus the skipped-cycle count. Unlike
// runOracleRun it never steps manually: the point is to exercise
// event-to-event advancement against the stepped oracle.
func eventRun(t *testing.T, o eventRunOpts) (runArtifacts, int64) {
	t.Helper()
	m, err := NewMesh(o.cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterObs(reg)
	m.SetStepped(o.stepped)
	if o.workers > 0 {
		p := exec.NewPool(o.workers)
		defer p.Close()
		m.SetPool(p)
	}
	if o.spec != "" {
		spec, err := fault.Parse(o.spec)
		if err != nil {
			t.Fatal(err)
		}
		m.InstallFaults(fault.New(spec, 99))
	}
	var log []delivRec
	for id := range m.sinks {
		id := id
		s := m.sinks[id]
		prev := s.OnFlit
		s.OnFlit = func(f flit.Flit, vc int, cycle int64) {
			log = append(log, delivRec{node: id, flow: f.Flow, seq: f.Seq,
				vc: vc, kind: f.Kind, pkt: f.PktID, cycle: cycle})
			if prev != nil {
				prev(f, vc, cycle)
			}
		}
	}
	src := rng.New(21)
	for _, at := range o.bursts {
		for i := 0; i < o.perBurst; i++ {
			s, d := src.Intn(m.Nodes()), src.Intn(m.Nodes())
			if s == d {
				d = (d + 1) % m.Nodes()
			}
			m.SendAt(at+int64(src.Intn(20)), s, d, src.IntRange(1, 6))
		}
	}
	m.Run(o.run)
	// Faulted scenarios may legitimately wedge (dropped tails); the
	// oracle compares final cycle and in-flight count instead of
	// requiring a drain.
	m.Drain(o.drain)
	return runArtifacts{
		log:      log,
		packets:  append([]int64(nil), m.DeliveredPackets...),
		flits:    append([]int64(nil), m.DeliveredFlits...),
		cycle:    m.Cycle(),
		inFlight: m.InFlight(),
		latN:     m.Latency.N(),
		latMean:  m.Latency.Mean(),
		latVar:   m.Latency.Var(),
		latMin:   m.Latency.Min(),
		latMax:   m.Latency.Max(),
		obs:      reg.Snapshot(),
	}, m.Skipped()
}

// assertEventMatchesStepped runs a scenario in both modes and pins the
// event-core contract: byte-identical artifacts (telemetry masked —
// router_computes and cells_visited legitimately count only performed
// work), an identical noc.cycles total, and the event run actually
// skipping something.
func assertEventMatchesStepped(t *testing.T, name string, o eventRunOpts) {
	t.Helper()
	o.stepped = true
	base, skippedOracle := eventRun(t, o)
	if base.latN == 0 {
		t.Fatalf("%s: scenario degenerate: nothing delivered", name)
	}
	if skippedOracle != 0 {
		t.Fatalf("%s: stepped oracle still skipped %d cycles", name, skippedOracle)
	}
	o.stepped = false
	got, skipped := eventRun(t, o)
	if skipped == 0 {
		t.Fatalf("%s: event core never skipped a cycle on a bursty scenario", name)
	}
	assertArtifactsEqual(t, name, base, got, false)
	if a, b := base.obs.Counters["noc.cycles"], got.obs.Counters["noc.cycles"]; a != b {
		t.Errorf("%s: obs cycle counters diverge: stepped %d, event %d", name, a, b)
	}
}

// TestEventMatchesSteppedMeshFaults is the adversarial event-core
// oracle on a mesh: a freeze window spanning an entire idle gap AND
// the next burst (a dormant-frozen router must wake exactly at the
// thaw edge while neighbours hold worms aimed at it), a stall window
// opening just before a burst, plus probabilistic drop/corruption.
// Event-driven Run/Drain must be byte-identical to literal stepping.
func TestEventMatchesSteppedMeshFaults(t *testing.T) {
	assertEventMatchesStepped(t, "event-vs-stepped-mesh-faults", eventRunOpts{
		cfg: Config{K: 4, VCs: 2, BufFlits: 4,
			NewArb: func() sched.Scheduler { return core.New() }},
		spec:     "freeze(router=6,at=30,dur=5100);stall(port=1,at=4990,dur=300);drop(router=5,port=1,p=0.05);corrupt(router=10,p=0.05)",
		bursts:   []int64{0, 5000, 10000},
		perBurst: 12,
		run:      12_000,
		drain:    6_000,
	})
}

// TestEventMatchesSteppedTorusFaults repeats the oracle on a torus
// (dateline VCs, wrap routing) under a stall window and a freeze that
// opens mid-burst.
func TestEventMatchesSteppedTorusFaults(t *testing.T) {
	assertEventMatchesStepped(t, "event-vs-stepped-torus-faults", eventRunOpts{
		cfg: Config{K: 4, VCs: 4, BufFlits: 4, Torus: true,
			NewArb: func() sched.Scheduler { return core.New() }},
		spec:     "stall(port=1,at=5005,dur=400);freeze(router=6,at=10,dur=200)",
		bursts:   []int64{0, 5000, 10000},
		perBurst: 12,
		run:      12_000,
		drain:    6_000,
	})
}

// TestEventMatchesSteppedDAMQ pins the event core on shared-buffer
// (DAMQ) inputs, whose stop/go gates must keep routers polling (never
// dormant) even under a stall window with known edges.
func TestEventMatchesSteppedDAMQ(t *testing.T) {
	assertEventMatchesStepped(t, "event-vs-stepped-damq", eventRunOpts{
		cfg: Config{K: 4, VCs: 2, BufFlits: 2, SharedBufFlits: 16, SharedBufCap: 12,
			NewArb: func() sched.Scheduler { return core.New() }},
		spec:     "stall(port=2,at=3,dur=120)",
		bursts:   []int64{0, 4000, 8000},
		perBurst: 12,
		run:      10_000,
		drain:    6_000,
	})
}

// TestFaultWindowInsideIdleGapNoOp pins the time-skip edge case this
// PR exists for: a fault window that opens AND closes entirely inside
// a skipped idle gap is a strict no-op. The event run must be
// byte-identical to the stepped oracle (SetTimeSkip(false)) — and the
// window must not cost a single stepped cycle: the run with the
// gap-internal windows steps exactly as many cycles as a clean run.
func TestFaultWindowInsideIdleGapNoOp(t *testing.T) {
	o := eventRunOpts{
		cfg: Config{K: 4, VCs: 2, BufFlits: 4,
			NewArb: func() sched.Scheduler { return core.New() }},
		// Both windows open and close inside the idle gap between the
		// burst draining (well before cycle 1000) and cycle 10000.
		spec:     "stall(port=1,at=3000,dur=1000);freeze(router=5,at=4200,dur=300)",
		bursts:   []int64{0, 10_000},
		perBurst: 8,
		run:      11_000,
		drain:    5_000,
	}
	o.stepped = true
	oracle, _ := eventRun(t, o)
	if oracle.latN == 0 || oracle.inFlight != 0 {
		t.Fatalf("scenario degenerate: %d samples, %d in flight", oracle.latN, oracle.inFlight)
	}
	o.stepped = false
	faulted, faultedSkipped := eventRun(t, o)
	if faultedSkipped == 0 {
		t.Fatal("event core never skipped with a fault window in the gap")
	}
	assertArtifactsEqual(t, "gap-window-vs-stepped", oracle, faulted, false)
	if a, b := oracle.obs.Counters["noc.cycles"], faulted.obs.Counters["noc.cycles"]; a != b {
		t.Errorf("obs cycle counters diverge: stepped %d, event %d", a, b)
	}
	// Same run without the windows: identical artifacts AND identical
	// telemetry — the no-op windows must not add one stepped cycle,
	// one router compute, or one visited cell.
	o.spec = ""
	clean, cleanSkipped := eventRun(t, o)
	assertArtifactsEqual(t, "gap-window-vs-clean", clean, faulted, true)
	if cleanSkipped != faultedSkipped {
		t.Errorf("skipped-cycle counts diverge: clean %d, windowed %d (windows inside an idle gap cost stepped cycles)",
			cleanSkipped, faultedSkipped)
	}
}

// wedgeRun wedges a mesh quietly — a permanent output stall strands a
// worm with nothing runnable and no event pending — and drains with a
// watchdog attached. Returns the watchdog trip cycle (-1 = never
// tripped), the wait-graph dump captured at the trip, whether the
// drain claimed success, the final cycle, and the skipped count.
func wedgeRun(t *testing.T, stepped bool) (trip int64, dump string, drained bool, cycle, skipped int64) {
	t.Helper()
	m, err := NewMesh(Config{K: 4, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	m.SetStepped(stepped)
	spec, err := fault.Parse("stall(router=5,port=1,at=5)")
	if err != nil {
		t.Fatal(err)
	}
	m.InstallFaults(fault.New(spec, 3))
	wd := check.NewWatchdog(200)
	m.WatchProgress(wd)
	trip = -1
	m.SetOnWedged(func(c int64) {
		trip = c
		dump = FormatWaitGraph(m.WaitGraph(c), 8)
	})
	// One packet that delivers cleanly (advancing the watchdog clock)
	// and one that wedges against router 5's permanently stalled east
	// output.
	m.SendAt(0, m.NodeID(0, 0), m.NodeID(1, 0), 3)
	m.SendAt(0, m.NodeID(0, 1), m.NodeID(3, 1), 3)
	drained = m.Drain(3_000)
	return trip, dump, drained, m.Cycle(), m.Skipped()
}

// TestDrainWedgedQuietTripsWatchdog closes the watchdog/time-skip
// blind spot: a wedged-but-quiet network (in-flight flits, nothing
// runnable, no event pending) used to be jumped straight to the
// horizon, silently degrading the deadlock diagnostic to "Drain
// returned false". Event-driven Drain must now trip the watchdog at
// the exact cycle a stepped run would, fire the OnWedged hook with a
// non-empty channel-wait dump, and only then skip to the horizon.
func TestDrainWedgedQuietTripsWatchdog(t *testing.T) {
	sTrip, sDump, sDrained, sCycle, sSkipped := wedgeRun(t, true)
	if sDrained {
		t.Fatal("stepped oracle drained a permanently wedged network")
	}
	if sTrip < 0 {
		t.Fatal("stepped oracle never tripped the watchdog")
	}
	if sSkipped != 0 {
		t.Fatalf("stepped oracle skipped %d cycles", sSkipped)
	}
	eTrip, eDump, eDrained, eCycle, eSkipped := wedgeRun(t, false)
	if eDrained {
		t.Fatal("event-driven Drain drained a permanently wedged network")
	}
	if eSkipped == 0 {
		t.Fatal("event-driven Drain never skipped: the wedged-quiet tail was stepped literally")
	}
	if eTrip != sTrip {
		t.Errorf("watchdog trip cycles diverge: stepped %d, event %d", sTrip, eTrip)
	}
	if eCycle != sCycle {
		t.Errorf("final cycles diverge: stepped %d, event %d", sCycle, eCycle)
	}
	for name, dump := range map[string]string{"stepped": sDump, "event": eDump} {
		if dump == "" || strings.Contains(dump, "no blocked channels") {
			t.Errorf("%s run tripped without a channel-wait dump: %q", name, dump)
		}
	}
	if eDump != sDump {
		t.Errorf("wait-graph dumps diverge:\nstepped:\n%s\nevent:\n%s", sDump, eDump)
	}
}

// TestRunHorizonClamp pins the int64 overflow guard in Run's horizon
// arithmetic: Run(math.MaxInt64) must clamp to HorizonCap instead of
// wrapping cycle+n negative — while still releasing and delivering
// scheduled traffic on the way, and terminating in O(events), not
// O(cycles).
func TestRunHorizonClamp(t *testing.T) {
	m, err := NewMesh(Config{K: 3, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	m.SendAt(1_000_000, 0, 5, 3)
	m.Run(math.MaxInt64)
	if m.Cycle() != HorizonCap {
		t.Fatalf("Run(MaxInt64) ended at cycle %d, want HorizonCap %d", m.Cycle(), HorizonCap)
	}
	if m.Latency.N() != 1 || m.InFlight() != 0 {
		t.Fatalf("far-future packet not delivered: %d samples, %d in flight", m.Latency.N(), m.InFlight())
	}
	// Idempotent at the cap: a second maximal run must not wrap, step,
	// or move the clock.
	m.Run(math.MaxInt64)
	if m.Cycle() != HorizonCap {
		t.Fatalf("second Run(MaxInt64) moved the clock to %d", m.Cycle())
	}
}

// TestDrainHorizonClamp pins the same guard in Drain: a permanently
// wedged network drained with maxCycles == math.MaxInt64 must land
// exactly on HorizonCap and report failure — no overflow, no negative
// horizons, no cycle-by-cycle crawl. A send scheduled beyond the
// horizon must simply never release.
func TestDrainHorizonClamp(t *testing.T) {
	m, err := NewMesh(Config{K: 3, VCs: 2, BufFlits: 4,
		NewArb: func() sched.Scheduler { return core.New() }})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fault.Parse("stall(router=4,port=1,at=0)")
	if err != nil {
		t.Fatal(err)
	}
	m.InstallFaults(fault.New(spec, 3))
	m.SendAt(0, m.NodeID(0, 1), m.NodeID(2, 1), 3)
	m.SendAt(math.MaxInt64-3, 0, 1, 1)
	if m.Drain(math.MaxInt64) {
		t.Fatal("Drain claimed success on a wedged network")
	}
	if m.Cycle() != HorizonCap {
		t.Fatalf("Drain(MaxInt64) ended at cycle %d, want HorizonCap %d", m.Cycle(), HorizonCap)
	}
	if m.InFlight() != 1 {
		t.Fatalf("in flight = %d, want the one wedged packet", m.InFlight())
	}
	if m.Skipped() == 0 {
		t.Fatal("Drain reached the horizon without skipping: O(cycles), not O(events)")
	}
}

// FuzzMeshEventOracle feeds arbitrary burst scripts AND
// arbitrarily-windowed stall/freeze faults to event-driven and
// stepped Run/Drain and requires byte-identical delivery logs — a
// coverage-guided search for a window placement whose dormancy
// analysis skips a cycle that mattered. hdr[6] picks the commit tile
// edge (0 = auto), so the search also covers every tiling of the K=3
// mesh, 1x1 boundary-only through 3x3 single-tile. Run with
// `go test -fuzz FuzzMeshEventOracle ./internal/noc`.
func FuzzMeshEventOracle(f *testing.F) {
	f.Add([]byte{0x03, 0x10, 0x08, 0x04, 0x02, 0x30, 0x00, 0x01, 0x53, 0x22, 0x90, 0x07})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Add([]byte{0x05, 0x20, 0x00, 0x07, 0x01, 0x10, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50})
	// Tiled configs: explicit 1x1 (every commit crosses a boundary) and
	// 2x2 (uneven edge tiles on K=3) under faulted bursty traffic.
	f.Add([]byte{0x03, 0x10, 0x08, 0x04, 0x02, 0x30, 0x01, 0x53, 0x22, 0x90, 0x07, 0x11})
	f.Add([]byte{0x05, 0x20, 0x00, 0x07, 0x01, 0x10, 0x02, 0x10, 0x20, 0x30, 0x40, 0x50})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			return
		}
		if len(data) > 96 {
			data = data[:96]
		}
		hdr, script := data[:7], data[7:]
		tile := int(hdr[6] % 4) // 0 = auto, else explicit 1..3
		var specs []string
		if hdr[0]%4 != 0 {
			// dur==0 is a permanent stall: the wedged network must still
			// agree between modes, including the horizon landing.
			s := fmt.Sprintf("stall(router=%d,port=%d,at=%d", hdr[0]%9, 1+int(hdr[1]%4), int64(hdr[1])*16)
			if dur := int64(hdr[2]) * 8; dur > 0 {
				s += fmt.Sprintf(",dur=%d", dur)
			}
			specs = append(specs, s+")")
		}
		if hdr[3]%4 != 0 {
			specs = append(specs, fmt.Sprintf("freeze(router=%d,at=%d,dur=%d)",
				hdr[3]%9, int64(hdr[4])*16, 1+int64(hdr[5])*8))
		}
		faultSpec := strings.Join(specs, ";")
		run := func(stepped bool) ([]delivRec, int64, int) {
			m, err := NewMesh(Config{K: 3, VCs: 2, BufFlits: 2, Tile: tile,
				NewArb: func() sched.Scheduler { return core.New() }})
			if err != nil {
				t.Fatal(err)
			}
			m.SetStepped(stepped)
			if faultSpec != "" {
				spec, err := fault.Parse(faultSpec)
				if err != nil {
					t.Fatal(err)
				}
				m.InstallFaults(fault.New(spec, 11))
			}
			var log []delivRec
			for id := range m.sinks {
				id := id
				m.sinks[id].OnFlit = func(fl flit.Flit, vc int, cycle int64) {
					log = append(log, delivRec{node: id, flow: fl.Flow, seq: fl.Seq,
						vc: vc, kind: fl.Kind, pkt: fl.PktID, cycle: cycle})
				}
			}
			at := int64(0)
			for i := 0; i+2 < len(script); i += 3 {
				at += int64(script[i]) * 4 // gaps up to ~1000 cycles
				src := int(script[i+1]>>4) % m.Nodes()
				dst := int(script[i+1]&0xf) % m.Nodes()
				if src == dst {
					dst = (dst + 1) % m.Nodes()
				}
				m.SendAt(at, src, dst, 1+int(script[i+2]%6))
			}
			m.Run(at + 1)
			m.Drain(20_000)
			return log, m.Cycle(), m.InFlight()
		}
		wantLog, wantCycle, wantInFlight := run(true)
		gotLog, gotCycle, gotInFlight := run(false)
		if wantCycle != gotCycle {
			t.Fatalf("final cycles diverge: stepped %d, event %d (faults %q)", wantCycle, gotCycle, faultSpec)
		}
		if wantInFlight != gotInFlight {
			t.Fatalf("in-flight counts diverge: stepped %d, event %d (faults %q)", wantInFlight, gotInFlight, faultSpec)
		}
		if len(wantLog) != len(gotLog) {
			t.Fatalf("delivery counts diverge: stepped %d, event %d (faults %q)", len(wantLog), len(gotLog), faultSpec)
		}
		for i := range wantLog {
			if wantLog[i] != gotLog[i] {
				t.Fatalf("delivery %d diverges: stepped %+v, event %+v (faults %q)", i, wantLog[i], gotLog[i], faultSpec)
			}
		}
	})
}
