package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestProgressFinalLine pins that the final update (done == total) is
// always rendered — throttling notwithstanding — and terminates the
// in-place line with the elapsed time.
func TestProgressFinalLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sims")
	for i := 1; i <= 5; i++ {
		p(i, 5)
	}
	out := buf.String()
	if !strings.Contains(out, "\rsims: 5/5 (100.0%)") {
		t.Fatalf("final line missing from %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final update did not terminate the line: %q", out)
	}
	if !strings.Contains(out, " in ") {
		t.Fatalf("final update missing elapsed time: %q", out)
	}
}

// TestProgressThrottles pins the 200ms throttle: a rapid burst of
// non-final updates renders at most the first (the rest fall inside
// the throttle window).
func TestProgressThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "x")
	for i := 1; i <= 100; i++ {
		p(i, 1000)
	}
	if n := strings.Count(buf.String(), "\r"); n > 2 {
		t.Fatalf("throttle let %d of 100 rapid updates through", n)
	}
}

// TestProgressOutOfOrder pins the monotonic guard: a completion that
// reports behind the best seen (pool workers finish out of order) must
// never rewind the rendered count.
func TestProgressOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "x")
	p(3, 3) // final: always rendered
	p(1, 3) // stale: must be ignored
	out := buf.String()
	if strings.Contains(out, "1/3") {
		t.Fatalf("stale update rendered after final: %q", out)
	}
	if !strings.Contains(out, "3/3") {
		t.Fatalf("final update missing: %q", out)
	}
}

// TestProgressZeroTotal pins the degenerate-total guard (no division
// by zero, 0.0% rendered).
func TestProgressZeroTotal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "x")
	p(0, 0)
	if !strings.Contains(buf.String(), "0/0 (0.0%)") {
		t.Fatalf("zero-total line = %q", buf.String())
	}
}

// TestProgressConcurrent exercises the callback from many goroutines
// under the race detector.
func TestProgressConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	p := NewProgress(w, "x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p(g*50+i, 400)
			}
		}()
	}
	wg.Wait()
	p(400, 400)
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "400/400") {
		t.Fatalf("final line missing: %q", buf.String())
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
