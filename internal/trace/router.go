package trace

import (
	"repro/internal/flit"
	"repro/internal/wormhole"
)

// headEnt tracks one sampled head flit queued in an input VC, from
// arrival until its grant promotes it to a hopState.
type headEnt struct {
	pktID    int64
	arrive   int64
	eligible int64 // -1 until announced to the arbiter
}

// headQ is a small FIFO of sampled heads per (input port, VC). Grants
// happen in FIFO order per VC, so the front entry is always the next
// sampled head that can be granted. Capacity is bufFlits+2 (a VC
// cannot buffer more heads than flits, plus slack for a head granted
// but not yet departed); on the pathological overflow (malformed
// single-flit floods) the newest head is dropped, deterministically.
type headQ struct {
	buf        []headEnt
	head, size int
}

func (q *headQ) push(e headEnt) bool {
	if q.size == len(q.buf) {
		return false
	}
	i := q.head + q.size
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = e
	q.size++
	return true
}

func (q *headQ) front() *headEnt { return &q.buf[q.head] }

func (q *headQ) pop() headEnt {
	e := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	return e
}

// hopState is the in-progress hop span of a traced lock, indexed by
// the input (port, VC) the granted worm drains — at most one active
// lock ever drains a given input VC, so the slot is exclusive.
type hopState struct {
	pktID        int64
	arrive       int64
	eligible     int64
	grant        int64
	blockedSince int64
	contend      int32
	upGap        int32
	crdWait      int32
	blocked      uint8 // 0 = no open hard interval, else BlockReason+1
	active       bool
}

// RouterTrace records hop spans for one router. It implements
// wormhole.Tracer; the router serialises all calls (Compute is
// single-threaded per router, the interval closers run in the serial
// commit phase), so no locking is needed even under sharded stepping.
type RouterTrace struct {
	id    int32
	vcs   int
	s     Sampler
	ring  ring
	heads []headQ
	hops  []hopState
	t     *Trace
}

var _ wormhole.Tracer = (*RouterTrace)(nil)

func newRouterTrace(id, ports, vcs, bufFlits int, t *Trace) *RouterTrace {
	rt := &RouterTrace{
		id:    int32(id),
		vcs:   vcs,
		s:     t.s,
		heads: make([]headQ, ports*vcs),
		hops:  make([]hopState, ports*vcs),
		t:     t,
	}
	rt.ring.init(t.cfg.RingCap, func() { t.dropped.Inc() })
	for i := range rt.heads {
		rt.heads[i].buf = make([]headEnt, bufFlits+2)
	}
	return rt
}

// HeadArrived implements wormhole.Tracer.
func (rt *RouterTrace) HeadArrived(port, vc int, h flit.Flit, cycle int64) {
	if !rt.s.Sample(h.PktID) {
		return
	}
	if !rt.heads[port*rt.vcs+vc].push(headEnt{pktID: h.PktID, arrive: cycle, eligible: -1}) {
		rt.t.dropped.Inc()
	}
}

// HeadEligible implements wormhole.Tracer. Only the FIFO-front packet
// of a VC can be announced, so a non-matching front means the
// announced packet is unsampled.
func (rt *RouterTrace) HeadEligible(port, vc int, pktID, cycle int64) {
	q := &rt.heads[port*rt.vcs+vc]
	if q.size == 0 {
		return
	}
	if e := q.front(); e.pktID == pktID && e.eligible < 0 {
		e.eligible = cycle
	}
}

// Granted implements wormhole.Tracer. Grants consume heads in FIFO
// order per VC, so the sampled front entry matches exactly when the
// granted packet is sampled.
func (rt *RouterTrace) Granted(port, vc, outPort, outVC int, pktID, cycle int64) bool {
	idx := port*rt.vcs + vc
	q := &rt.heads[idx]
	if q.size == 0 || q.front().pktID != pktID {
		return false
	}
	e := q.pop()
	st := &rt.hops[idx]
	if st.active {
		// A traced hop is still open on this input VC (possible only
		// with malformed flit streams); drop the new span.
		rt.t.dropped.Inc()
		return false
	}
	elig := e.eligible
	if elig < 0 {
		elig = e.arrive
	}
	*st = hopState{pktID: e.pktID, arrive: e.arrive, eligible: elig, grant: cycle, active: true}
	return true
}

// Blocked implements wormhole.Tracer. While a hard interval is open,
// further reports are ignored: a full-scan oracle visits quiesced
// outputs the work-list mode skips, and the guard makes those extra
// visits trace-neutral.
func (rt *RouterTrace) Blocked(port, vc int, reason wormhole.BlockReason, cycle int64) {
	st := &rt.hops[port*rt.vcs+vc]
	if !st.active || st.blocked != 0 {
		return
	}
	switch reason {
	case wormhole.BlockContend:
		st.contend++
	case wormhole.BlockArrival:
		st.upGap++
	case wormhole.BlockNoSpace:
		st.crdWait++
	case wormhole.BlockInputEmpty, wormhole.BlockNoCredit:
		st.blocked = uint8(reason) + 1
		st.blockedSince = cycle
	}
}

// Unblocked implements wormhole.Tracer, closing a matching open hard
// interval.
func (rt *RouterTrace) Unblocked(port, vc int, reason wormhole.BlockReason, cycle int64) {
	st := &rt.hops[port*rt.vcs+vc]
	if !st.active || st.blocked != uint8(reason)+1 {
		return
	}
	d := int32(cycle - st.blockedSince)
	if reason == wormhole.BlockInputEmpty {
		st.upGap += d
	} else {
		st.crdWait += d
	}
	st.blocked = 0
}

// Departed implements wormhole.Tracer, emitting the completed hop
// record and feeding the per-flow decomposition rollup.
func (rt *RouterTrace) Departed(inPort, inVC, outPort, outVC int, tail flit.Flit, cycle int64) {
	idx := inPort*rt.vcs + inVC
	st := &rt.hops[idx]
	if !st.active {
		return
	}
	if st.blocked != 0 {
		// Forwarding resumed without the closing event reaching us
		// (defensive; should not happen): close the interval here.
		rt.Unblocked(inPort, inVC, wormhole.BlockReason(st.blocked-1), cycle)
	}
	rt.ring.append(Record{
		Kind:     KindHop,
		InPort:   int8(inPort),
		InVC:     int8(inVC),
		OutPort:  int16(outPort),
		OutVC:    int16(outVC),
		Router:   rt.id,
		Flow:     int32(tail.Flow),
		Len:      int32(tail.Seq) + 1,
		Dst:      int32(tail.Dst),
		Contend:  st.contend,
		UpGap:    st.upGap,
		CrdWait:  st.crdWait,
		PktID:    st.pktID,
		Cycle:    cycle,
		Arrive:   st.arrive,
		Eligible: st.eligible,
		Grant:    st.grant,
	})
	rt.t.rollup.hop(tail.Flow, st)
	st.active = false
}
