// Package bounds computes analytic per-flow delay and backlog bounds
// for a (scheduler, weights/quanta, arrival-envelope, link-rate)
// configuration, and checks a running simulation against them.
//
// The machinery is network calculus: each flow i declares a
// token-bucket arrival curve alpha_i(t) = sigma_i + rho_i*t, each
// discipline grants flow i a strict service curve beta_i, and then
// every packet's delay is at most the horizontal deviation
// h(alpha_i, beta_i) and the flow's backlog never exceeds the
// vertical deviation v(alpha_i, beta_i) (Delay and Backlog in
// curve.go). The service curves implemented here are deliberately
// conservative relaxations of the exact published results — every
// step in their derivations is an inequality that holds for this
// repository's implementations (including flows that go idle and
// rejoin mid-run, which the textbook "all flows continuously
// backlogged" analyses sidestep), so an observed violation is a real
// scheduler bug, never an artifact of an optimistic formula:
//
//   - WRR classic (cf. Constantin, Bouillard et al., "Service curves
//     for WRR under constrained cross-traffic"): with per-round batch
//     q_i = w_i*lmin_i and cross-round budget Qbar_i = sum_j w_j*lmax_j,
//     any window of i's backlogged period with r complete rounds has
//     r <= s_i/q_i and touches at most r+2 rounds, so
//     beta_i = RateLatency(C*q_i/(q_i+Qbar_i), 2*Qbar_i/C).
//   - WRR tightened (same paper's idea): cross flow j cannot send
//     more than its own arrivals allow, so its per-window service is
//     also capped by B_j + sigma_j + rho_j*t where B_j is j's classic
//     backlog bound; subtracting the per-flow minimum of (round cap,
//     arrival cap) from the total output Ct gives a second, often
//     much steeper service curve for i. Both are valid; bounds take
//     the pointwise-best (min of the two deviations).
//   - IWRR (conservative relaxation of Tabatabaee, Le Boudec & Boyer,
//     "Interleaved WRR: A Network Calculus Analysis"): per round,
//     cross flow j transmits at most min(w_j, w_i-1) packets between
//     i's in-round opportunities, [w_j >= w_i] + (w_j - w_i)^+ + 1
//     around the round boundary — K_j = that count times lmax_j —
//     giving beta_i = RateLatency(C*q_i/(q_i+G_i), 2*G_i/C) with
//     G_i = sum_j K_j. (The exact published stair is tighter at
//     sub-round timescales; the relaxation keeps every inequality
//     valid for intermittently-backlogged cross flows.)
//   - DRR (quantum-parameterised, cf. Boyer et al. and the convexity
//     analysis of Mukherjee, Kuri & Singh used by OptimizeQuanta):
//     m complete i-visits grant m*Q_i <= s_i + lmax_i, cross flow j
//     is visited at most m+2 times for sum (m+2)*Q_j + lmax_j, so
//     beta_i = RateLatency(C*Q_i/(Q_i+Qbar_i),
//     (Qbar_i*(2 + lmax_i/Q_i) + sum_j lmax_j)/C).
//   - ERR (from the paper's Lemma 1, SC_i <= m-1): a round grants
//     allowance 1 + maxSC - SC_j <= m, overshoot < m, so cross flow j
//     sends < 2m-1 per round while i sends >= lmin_i; a window with r
//     i-opportunities touches at most r+2 rounds, so
//     beta_i = RateLatency(C*lmin_i/(lmin_i+G), 2*G/C) with
//     G = (n-1)*(2m-1) and m the largest packet cost.
//
// The Checker (checker.go) attaches to engine callbacks, measures
// each flow's tightest token-bucket burst online (declaring only the
// envelope rate), compares every departure's delay and every
// arrival's backlog against the bounds, and reports violations as
// structured, cycle-stamped check.Recorder reports under the
// bounds.delay / bounds.backlog invariants — exactly like
// internal/check does for Lemma 1.
package bounds

import (
	"fmt"
	"math"
	"sort"
)

// Discipline selects which service-curve family applies. DRR-OPT is
// DiscDRR with optimised Quantum fields — the formulas are the same.
type Discipline string

// The disciplines with implemented service curves.
const (
	DiscERR  Discipline = "ERR"
	DiscWRR  Discipline = "WRR"
	DiscIWRR Discipline = "IWRR"
	DiscDRR  Discipline = "DRR"
)

// ParseDiscipline maps a scheduler name (sched.Scheduler.Name) to its
// service-curve family.
func ParseDiscipline(name string) (Discipline, error) {
	switch name {
	case "ERR":
		// WERR is deliberately absent: the ERR curve's per-round caps
		// assume unweighted allowances.
		return DiscERR, nil
	case "WRR":
		return DiscWRR, nil
	case "IWRR":
		return DiscIWRR, nil
	case "DRR", "DRR-OPT":
		return DiscDRR, nil
	}
	return "", fmt.Errorf("bounds: no service curve for scheduler %q", name)
}

// FlowSpec declares one flow of a bounded configuration.
type FlowSpec struct {
	// Weight is the WRR/IWRR weight (>= 1; ignored by ERR and DRR).
	Weight int `json:"weight"`
	// Quantum is the DRR quantum in flits (>= 1; ignored elsewhere).
	Quantum int64 `json:"quantum,omitempty"`
	// LMin and LMax bound the flow's packet lengths in flits.
	LMin int `json:"lmin"`
	LMax int `json:"lmax"`
	// Arrival is the flow's declared token-bucket envelope. The
	// Checker measures Sigma online against the declared Rho; the
	// static bound computations use it as given.
	Arrival TokenBucket `json:"arrival"`
}

// Config is a complete bounded configuration.
type Config struct {
	// C is the link rate in flits/cycle (the single-server engine
	// forwards one flit per cycle: C = 1).
	C float64 `json:"c"`
	// Flows holds one spec per flow id.
	Flows []FlowSpec `json:"flows"`
}

// validate panics on a malformed configuration; bounds on nonsense
// inputs would be silently meaningless.
func (cfg *Config) validate() {
	if cfg.C <= 0 {
		panic("bounds: link rate C must be > 0")
	}
	for i, f := range cfg.Flows {
		if f.LMin < 1 || f.LMax < f.LMin {
			panic(fmt.Sprintf("bounds: flow %d has invalid length range [%d, %d]", i, f.LMin, f.LMax))
		}
	}
}

// ServiceCurves returns the valid strict service curves of flow i
// under discipline d — more than one when independent derivations
// exist (WRR classic + tightened); each is individually sound, so
// bounds take the best.
func (cfg *Config) ServiceCurves(d Discipline, i int) []Curve {
	cfg.validate()
	switch d {
	case DiscERR:
		return []Curve{cfg.errCurve(i)}
	case DiscWRR:
		return []Curve{cfg.wrrClassic(i), cfg.wrrTight(i)}
	case DiscIWRR:
		return []Curve{cfg.iwrrCurve(i)}
	case DiscDRR:
		return []Curve{cfg.drrCurve(i)}
	}
	panic(fmt.Sprintf("bounds: unknown discipline %q", d))
}

// DelayBound returns the delay bound of flow i under discipline d, in
// cycles (+inf when the configuration is unstable for that flow).
func (cfg *Config) DelayBound(d Discipline, i int) float64 {
	a := cfg.Flows[i].Arrival
	return minOver(cfg.ServiceCurves(d, i), func(c Curve) float64 { return Delay(a, c) })
}

// BacklogBound returns the backlog bound of flow i under discipline
// d, in flits (+inf when the configuration is unstable for that flow).
func (cfg *Config) BacklogBound(d Discipline, i int) float64 {
	a := cfg.Flows[i].Arrival
	return minOver(cfg.ServiceCurves(d, i), func(c Curve) float64 { return Backlog(a, c) })
}

// GuaranteedRate returns the long-run service rate flow i is
// guaranteed under discipline d, in flits/cycle: the final slope of
// its structural (round-counting) curve. The WRR tight curve is
// deliberately excluded — its slope depends on the other flows'
// arrival envelopes, so it is an analysis refinement, not a
// provisioning guarantee (using it to set arrival rates would be
// circular). Sweep configurations provision arrival rates as a
// fraction of this.
func (cfg *Config) GuaranteedRate(d Discipline, i int) float64 {
	cfg.validate()
	switch d {
	case DiscERR:
		return cfg.errCurve(i).rate
	case DiscWRR:
		return cfg.wrrClassic(i).rate
	case DiscIWRR:
		return cfg.iwrrCurve(i).rate
	case DiscDRR:
		return cfg.drrCurve(i).rate
	}
	panic(fmt.Sprintf("bounds: unknown discipline %q", d))
}

// --- per-discipline curves --------------------------------------------

// errCurve: see the package comment for the derivation from Lemma 1.
func (cfg *Config) errCurve(i int) Curve {
	var m int64
	for _, f := range cfg.Flows {
		if int64(f.LMax) > m {
			m = int64(f.LMax)
		}
	}
	g := float64(len(cfg.Flows)-1) * float64(2*m-1)
	lmin := float64(cfg.Flows[i].LMin)
	return RateLatency(cfg.C*lmin/(lmin+g), 2*g/cfg.C)
}

// wrrRound returns flow i's per-round batch q_i = w_i*lmin_i and the
// cross-round budget Qbar_i = sum_{j != i} w_j*lmax_j.
func (cfg *Config) wrrRound(i int) (q, qbar float64) {
	fi := cfg.Flows[i]
	if fi.Weight < 1 {
		panic(fmt.Sprintf("bounds: flow %d has WRR weight %d < 1", i, fi.Weight))
	}
	q = float64(fi.Weight) * float64(fi.LMin)
	for j, f := range cfg.Flows {
		if j == i {
			continue
		}
		if f.Weight < 1 {
			panic(fmt.Sprintf("bounds: flow %d has WRR weight %d < 1", j, f.Weight))
		}
		qbar += float64(f.Weight) * float64(f.LMax)
	}
	return q, qbar
}

func (cfg *Config) wrrClassic(i int) Curve {
	q, qbar := cfg.wrrRound(i)
	return RateLatency(cfg.C*q/(q+qbar), 2*qbar/cfg.C)
}

// wrrTight builds the constrained-cross-traffic curve: during a
// window of length t inside i's backlogged period the server outputs
// C*t flits, of which cross flow j takes at most the smaller of its
// round-structure cap (at most C*t/q_i + 2 rounds fit in the window,
// each granting j at most w_j*lmax_j) and its arrival cap (whatever
// it had backlogged, at most B_j, plus what arrives, at most
// sigma_j + rho_j*t). The remainder is i's. The resulting f(t) is
// convex with f(0) <= 0; the curve is its nonnegative part.
func (cfg *Config) wrrTight(i int) Curve {
	q, _ := cfg.wrrRound(i)
	type branch struct{ a, b, c, d float64 } // min(a + b*t, c + d*t)
	var branches []branch
	var xs []float64
	for j, f := range cfg.Flows {
		if j == i {
			continue
		}
		cap0 := 2 * float64(f.Weight) * float64(f.LMax)
		capRate := float64(f.Weight) * float64(f.LMax) * cfg.C / q
		bj := Backlog(f.Arrival, cfg.wrrClassic(j))
		br := branch{a: cap0, b: capRate, c: bj + f.Arrival.Sigma, d: f.Arrival.Rho}
		branches = append(branches, br)
		// Branch-crossing breakpoint, where the min switches.
		if !math.IsInf(br.c, 1) && br.b != br.d {
			if t := (br.c - br.a) / (br.b - br.d); t > 0 {
				xs = append(xs, t)
			}
		}
	}
	f := func(t float64) float64 {
		v := cfg.C * t
		for _, br := range branches {
			v -= math.Min(br.a+br.b*t, br.c+br.d*t)
		}
		return v
	}
	frate := func(t float64) float64 {
		r := cfg.C
		for _, br := range branches {
			if br.a+br.b*t <= br.c+br.d*t {
				r -= br.b
			} else {
				r -= br.d
			}
		}
		return r
	}
	sort.Float64s(xs)
	// Walk the convex pieces to the first nonnegative point, then
	// emit the remaining breakpoints as corners. Past the root f is
	// increasing (convex, f(0) <= 0), so the corners are valid.
	t, v := 0.0, f(0.0)
	pts := []point{{0, 0}}
	root := math.Inf(1)
	for k := 0; k <= len(xs); k++ {
		var next float64
		if k < len(xs) {
			next = xs[k]
		} else {
			next = math.Inf(1)
		}
		if v >= 0 {
			root = t
			break
		}
		r := frate((t + math.Min(next, t+1)) / 2)
		if r > 0 && t+(-v)/r <= next {
			root = t + (-v)/r
			break
		}
		if math.IsInf(next, 1) {
			return newCurve(pts, 0) // never recovers: useless but sound
		}
		t, v = next, f(next)
	}
	if root > 0 {
		pts = append(pts, point{root, 0})
	}
	for _, x := range xs {
		if x > root {
			pts = append(pts, point{x, f(x)})
		}
	}
	lastX := pts[len(pts)-1].x
	rate := frate(lastX + 1)
	if rate < 0 {
		rate = 0
	}
	return newCurve(pts, rate)
}

// iwrrCurve: see the package comment; K_j counts cross flow j's worst
// per-round transmissions relative to flow i's opportunities.
func (cfg *Config) iwrrCurve(i int) Curve {
	fi := cfg.Flows[i]
	if fi.Weight < 1 {
		panic(fmt.Sprintf("bounds: flow %d has IWRR weight %d < 1", i, fi.Weight))
	}
	q := float64(fi.Weight) * float64(fi.LMin)
	var g float64
	for j, f := range cfg.Flows {
		if j == i {
			continue
		}
		if f.Weight < 1 {
			panic(fmt.Sprintf("bounds: flow %d has IWRR weight %d < 1", j, f.Weight))
		}
		k := min(f.Weight, fi.Weight-1) + 1
		if f.Weight >= fi.Weight {
			k++
		}
		if f.Weight > fi.Weight {
			k += f.Weight - fi.Weight
		}
		g += float64(k) * float64(f.LMax)
	}
	return RateLatency(cfg.C*q/(q+g), 2*g/cfg.C)
}

// drrCurve: see the package comment for the visit-counting derivation.
func (cfg *Config) drrCurve(i int) Curve {
	fi := cfg.Flows[i]
	if fi.Quantum < 1 {
		panic(fmt.Sprintf("bounds: flow %d has DRR quantum %d < 1", i, fi.Quantum))
	}
	qi := float64(fi.Quantum)
	var qbar, crossL float64
	for j, f := range cfg.Flows {
		if j == i {
			continue
		}
		if f.Quantum < 1 {
			panic(fmt.Sprintf("bounds: flow %d has DRR quantum %d < 1", j, f.Quantum))
		}
		qbar += float64(f.Quantum)
		crossL += float64(f.LMax)
	}
	r := cfg.C * qi / (qi + qbar)
	t := (qbar*(2+float64(fi.LMax)/qi) + crossL) / cfg.C
	return RateLatency(r, t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
