package experiments

import (
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
)

// This file gathers the manifest hooks: every result type reports the
// facts a run manifest needs (experiment name, consumed seeds,
// resolved worker count, total configured simulation cycles) through
// a uniform RunInfo method, so the cmd layer can write JSONL
// manifests without per-experiment switch statements. Cycle totals
// count the configured main-run lengths of every grid job;
// data-dependent drain phases (Figure 5, nocsweep) are excluded.

// RunInfo implements the manifest hook.
func (r *Table1Result) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "table1",
		Seeds:      []uint64{r.Params.Fig4.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     int64(len(r.Rows)) * r.Params.Fig4.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *Fig4Result) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "fig4",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     int64(len(r.Disciplines)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook. Seeds lists the per-repeat
// derived seeds, the streams the workloads were actually built from.
func (r *Fig5Result) RunInfo() obs.RunInfo {
	p := r.Params
	repeats := p.Repeats
	if repeats < 1 {
		repeats = 1
	}
	seeds := make([]uint64, repeats)
	for i := range seeds {
		seeds[i] = rng.Derive(p.Seed, uint64(i))
	}
	return obs.RunInfo{
		Experiment: "fig5",
		Seeds:      seeds,
		Workers:    exec.Workers(p.Workers),
		Cycles:     int64(len(r.Disciplines)*len(p.Intensities)*repeats) * p.BurstCycles,
	}
}

// RunInfo implements the manifest hook. Seeds lists the per-point
// derived seeds (one per flow count, shared by both disciplines).
func (r *Fig6Result) RunInfo() obs.RunInfo {
	seeds := make([]uint64, len(r.Flows))
	for i, n := range r.Flows {
		seeds[i] = rng.Derive(r.Params.Seed, uint64(n))
	}
	return obs.RunInfo{
		Experiment: "fig6",
		Seeds:      seeds,
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     int64(len(r.Flows)*len(r.Disciplines)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *Fig6ExtResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "fig6ext",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     2 * int64(len(r.Params.PLarges)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *WeightedResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "weighted",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *GapResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "gap",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     int64(len(r.Disciplines)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook. The parking-lot workload is
// fully deterministic, so there are no seeds to record.
func (r *ParkingLotResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "parkinglot",
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     2 * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook. Seeds lists the per-rate
// derived seeds (shared by both arbiters); drain cycles are excluded.
func (r *NoCSweepResult) RunInfo() obs.RunInfo {
	p := r.Params
	name := "nocsweep"
	if p.Torus {
		name = "nocsweep-torus"
	}
	seeds := make([]uint64, len(p.Rates))
	for i := range seeds {
		seeds[i] = rng.Derive(p.Seed, uint64(i))
	}
	return obs.RunInfo{
		Experiment: name,
		Seeds:      seeds,
		Workers:    exec.Workers(p.Workers),
		Cycles:     int64(len(r.Disciplines)*len(p.Rates)) * p.WarmCycles,
	}
}

// RunInfo implements the manifest hook.
func (r *LRResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "lr",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    1,
		Cycles:     int64(len(r.Disciplines)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *AblationOccupancyResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "occupancy",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    1,
		Cycles:     int64(len(r.Disciplines)) * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *AblationSurplusResetResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "screset",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    1,
		Cycles:     2 * r.Params.Cycles,
	}
}

// RunInfo implements the manifest hook.
func (r *BoundsResult) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "bounds",
		Seeds:      []uint64{r.Params.Seed},
		Workers:    exec.Workers(r.Params.Workers),
		Cycles:     int64(len(r.Cells)) * r.Params.Cycles,
	}
}
