package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// backloggedCfg builds the shared workload of the robustness tests:
// flows continuously backlogged with mixed packet lengths, identical
// across disciplines because every source derives from the same seed.
func backloggedCfg(flows int, cycles int64, sch sched.Scheduler, seed uint64) SimConfig {
	src := rng.New(seed)
	sources := make([]traffic.Source, flows)
	for f := 0; f < flows; f++ {
		sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(1, 32), src.Split())
	}
	return SimConfig{
		Flows:     flows,
		Scheduler: sch,
		Source:    traffic.NewMulti(sources...),
		Cycles:    cycles,
	}
}

// TestCheckCleanOnSeedWorkloads pins the zero-false-positives
// contract: the invariant checker must stay silent on the repo's
// standard fault-free workloads, for the paper's algorithm and the
// weighted extension alike.
func TestCheckCleanOnSeedWorkloads(t *testing.T) {
	weights := []int64{1, 2, 4}
	for _, tc := range []struct {
		name string
		sch  sched.Scheduler
	}{
		{"ERR", core.New()},
		{"WeightedERR", core.NewWeighted(func(f int) int64 { return weights[f] })},
		{"FCFS", sched.NewFCFS()},
	} {
		cfg := backloggedCfg(3, 20_000, tc.sch, 1)
		cfg.Check = true
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("%s: checked fault-free run failed: %v", tc.name, err)
		}
		if res.Faults.Dropped+res.Faults.Malformed+res.Rejected != 0 {
			t.Fatalf("%s: fault counters nonzero on a fault-free run: %+v", tc.name, res.Faults)
		}
	}
}

// TestGoldenFaultStallDegradation is the golden fault-injection test:
// under a transient link stall pinned to flow 0, ERR must keep Lemma 1
// (the checked run passes) and degrade gracefully — the stall's cost
// is billed to the faulty flow, whose later allowance shrinks until
// the others have caught up. FCFS, blind to occupancy, lets the
// head-of-line blocking tax everyone while the faulty flow keeps its
// full share.
func TestGoldenFaultStallDegradation(t *testing.T) {
	const (
		flows  = 6
		cycles = 40_000
		spec   = "stall(flow=0,at=5000,dur=10000)"
	)
	run := func(sch sched.Scheduler, checked bool) *SimResult {
		cfg := backloggedCfg(flows, cycles, sch, 1)
		cfg.FaultSpec = spec
		cfg.FaultSeed = 99
		cfg.Check = checked
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("%s under %q: %v", sch.Name(), spec, err)
		}
		return res
	}
	errRes := run(core.New(), true) // checked: ERR keeps its invariants under the fault
	fcfsRes := run(sched.NewFCFS(), false)

	if errRes.Faults.StallCycles == 0 {
		t.Fatal("the stall directive never fired")
	}
	errFaulty := errRes.Throughput.Flits(0)
	fcfsFaulty := fcfsRes.Throughput.Flits(0)
	var errRest, fcfsRest int64
	for f := 1; f < flows; f++ {
		errRest += errRes.Throughput.Flits(f)
		fcfsRest += fcfsRes.Throughput.Flits(f)
	}
	// ERR bills the stalled occupancy to flow 0, throttling it after
	// the window; FCFS leaves flow 0's share intact.
	if errFaulty >= fcfsFaulty {
		t.Errorf("faulty flow: ERR %d flits >= FCFS %d; ERR did not bill the stall to the faulty flow",
			errFaulty, fcfsFaulty)
	}
	// The healthy flows recover more of the lost window under ERR than
	// under FCFS's head-of-line blocking.
	if errRest <= fcfsRest {
		t.Errorf("healthy flows: ERR %d flits <= FCFS %d; ERR did not shield them from the stall",
			errRest, fcfsRest)
	}
}

// TestMalformedTrafficRejectedAtInjection pins the malformed-packet
// path: zero-length and unroutable packets mixed into the arrival
// stream are rejected at injection — counted, not crashed on — and
// the run stays invariant-clean.
func TestMalformedTrafficRejectedAtInjection(t *testing.T) {
	cfg := backloggedCfg(4, 10_000, core.New(), 1)
	cfg.FaultSpec = "malformed(kind=zerolen,p=0.05);malformed(kind=badflow,p=0.05)"
	cfg.FaultSeed = 7
	cfg.Check = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Malformed == 0 {
		t.Fatal("no malformed packets were emitted")
	}
	if res.Rejected != res.Faults.Malformed {
		t.Errorf("rejected %d != malformed %d; a malformed packet slipped past injection or a good one was refused",
			res.Rejected, res.Faults.Malformed)
	}
}

// TestWatchdogAbortsPermanentStall pins the deadlock path: a permanent
// stall must end the run with a structured watchdog violation, not a
// hang.
func TestWatchdogAbortsPermanentStall(t *testing.T) {
	cfg := backloggedCfg(2, 50_000, core.New(), 1)
	cfg.FaultSpec = "stall(at=100)"
	cfg.FaultSeed = 1
	cfg.Check = true
	cfg.WatchdogCycles = 500
	_, err := RunSim(cfg)
	if err == nil {
		t.Fatal("permanently stalled run completed without a watchdog abort")
	}
	if !strings.Contains(err.Error(), "wedged") {
		t.Errorf("error %q does not describe the wedge", err)
	}
	vs := check.AsViolations(err)
	if len(vs) == 0 || vs[0].Invariant != check.InvWatchdog {
		t.Fatalf("error does not carry a %s violation: %v", check.InvWatchdog, err)
	}
}

// TestGridCheckpointResumeByteIdentical is the acceptance scenario at
// the experiments level: a grid runner killed mid-sweep and resumed
// from its checkpoint renders byte-identical output.
func TestGridCheckpointResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	params := func() GapParams {
		p := DefaultGapParams()
		p.Flows = 4
		p.Cycles = 5_000
		return p
	}

	full, err := RunGap(params())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := full.Render(&want); err != nil {
		t.Fatal(err)
	}

	// Record a full checkpoint, then "kill" the run by truncating the
	// file to the header plus two completed jobs (plus a torn line).
	cpPath := filepath.Join(dir, "gap.jsonl")
	p := params()
	p.Checkpoint = cpPath
	if _, err := RunGap(p); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint has %d lines, want header + >=3 records", len(lines))
	}
	killed := strings.Join(lines[:3], "") + `{"job":2,"res`
	if err := os.WriteFile(cpPath, []byte(killed), 0o644); err != nil {
		t.Fatal(err)
	}

	p = params()
	p.Checkpoint = cpPath
	p.Resume = true
	resumed, err := RunGap(p)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := resumed.Render(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed output differs from uninterrupted run:\n%s\nvs\n%s", got.String(), want.String())
	}
	if !reflect.DeepEqual(full.MaxGap, resumed.MaxGap) || !reflect.DeepEqual(full.MeanWorst, resumed.MeanWorst) {
		t.Fatal("resumed aggregates differ from the uninterrupted run")
	}

	// Resuming the same checkpoint under different parameters must be
	// refused: mixing two grids' results would corrupt the sweep.
	p = params()
	p.Cycles = 6_000
	p.Checkpoint = cpPath
	p.Resume = true
	if _, err := RunGap(p); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("resume with changed parameters: err = %v, want a signature refusal", err)
	}
}

// TestWeightedRefusesCheckpoint pins the explicit unsupported-knob
// error: a single-simulation runner has nothing to resume.
func TestWeightedRefusesCheckpoint(t *testing.T) {
	p := DefaultWeightedParams()
	p.Cycles = 1_000
	p.Checkpoint = filepath.Join(t.TempDir(), "w.jsonl")
	if _, err := RunWeighted(p); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want a checkpointing-unsupported refusal", err)
	}
}

// TestFaultsDoNotPerturbTraffic pins the seed-isolation contract: the
// fault streams derive from their own seed, so enabling a fault that
// never fires at the observed flows leaves throughput bit-identical
// to the fault-free run.
func TestFaultsDoNotPerturbTraffic(t *testing.T) {
	run := func(spec string) *SimResult {
		cfg := backloggedCfg(3, 10_000, core.New(), 5)
		cfg.FaultSpec = spec
		cfg.FaultSeed = 11
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run("")
	// A stall window entirely after the simulated horizon: configured
	// but never active.
	armed := run("stall(flow=0,at=1000000,dur=5)")
	for f := 0; f < 3; f++ {
		if clean.Throughput.Flits(f) != armed.Throughput.Flits(f) {
			t.Fatalf("flow %d throughput changed by an inert fault: %d vs %d",
				f, clean.Throughput.Flits(f), armed.Throughput.Flits(f))
		}
	}
}

// TestLengthAwareSchedulerUnderInjectedStall pins the override that
// lets fault injection stall a length-budgeting discipline: the
// engine's length-aware guard exists to keep DRR out of wormhole
// occupancy mode, but an injected stall is a deliberate failure and
// measuring DRR's degradation under it is the point.
func TestLengthAwareSchedulerUnderInjectedStall(t *testing.T) {
	cfg := backloggedCfg(3, 10_000, sched.NewDRR(64, nil), 1)
	cfg.FaultSpec = "stall(flow=0,at=100,dur=500)"
	cfg.FaultSeed = 1
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("DRR refused an injected stall: %v", err)
	}
	if res.Faults.StallCycles == 0 {
		t.Fatal("the stall never fired")
	}
}
