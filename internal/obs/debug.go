package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
)

var (
	publishOnce sync.Once
	publishMu   sync.Mutex
	publishedAt *Registry
)

// ServeDebug starts an HTTP debug server on addr (e.g.
// "localhost:6060") exposing the standard net/http/pprof endpoints
// under /debug/pprof/ and a live snapshot of reg as the "obs" expvar
// under /debug/vars. It returns the bound address (useful with
// ":0") once the listener is up; the server itself runs on a
// background goroutine for the life of the process.
//
// Calling ServeDebug again replaces which registry the "obs" expvar
// snapshots and starts an additional listener.
func ServeDebug(addr string, reg *Registry) (net.Addr, error) {
	if reg == nil {
		reg = Default()
	}
	publishMu.Lock()
	publishedAt = reg
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			publishMu.Lock()
			r := publishedAt
			publishMu.Unlock()
			return r.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// The error is unreachable by callers: the listener lives until
	// process exit.
	go http.Serve(ln, nil)
	return ln.Addr(), nil
}
