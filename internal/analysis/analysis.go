// Package analysis provides the paper's analytical results as
// executable artifacts: closed-form bound calculators for the
// fairness measures of Table 1, service bounds from Theorem 2, and a
// verifier that checks any recorded ERR execution against Lemma 1,
// Corollary 1, Theorem 2 and Theorem 3. The tests of package core
// check the theorems on random runs; this package makes the same
// checks available to users auditing their own workloads.
package analysis

import (
	"fmt"

	"repro/internal/core"
)

// ERRFairnessBound returns the Theorem 3 bound on ERR's relative
// fairness measure: 3m, where m is the largest packet (in flits, or
// occupancy cycles in wormhole mode) that actually arrived.
func ERRFairnessBound(m int64) int64 { return 3 * m }

// DRRFairnessBound returns DRR's relative fairness bound from the
// paper's Table 1: Max + 2m, where Max is the largest packet that may
// potentially arrive (the quantum must be provisioned for it).
func DRRFairnessBound(m, max int64) int64 { return max + 2*m }

// FQFairnessBound returns the Table 1 bound for (ideal) Fair Queuing.
func FQFairnessBound(m int64) int64 { return m }

// SurplusBound returns the Lemma 1 bound on any surplus count: m-1.
func SurplusBound(m int64) int64 { return m - 1 }

// ServiceBounds returns the Theorem 2 bounds on the flits N a
// continuously active flow sends over n consecutive rounds starting
// at round k:
//
//	n + Σ_{r=k-1}^{k+n-2} MaxSC(r) - (m-1) <= N <= ... + (m-1)
//
// maxSCByRound[r] must hold MaxSC(r) for r in [k-1, k+n-2] (index by
// round number; MaxSC(0) = 0).
func ServiceBounds(n, k int64, maxSCByRound map[int64]int64, m int64) (lo, hi int64) {
	var sum int64
	for r := k - 1; r <= k+n-2; r++ {
		if r >= 1 {
			sum += maxSCByRound[r]
		}
	}
	return n + sum - (m - 1), n + sum + (m - 1)
}

// VerifyTrace checks a recorded ERR execution against the paper's
// analytical results:
//
//   - Lemma 1 / Corollary 1: every surplus count in [0, m-1] (the
//     lower bound is waived for opportunities that drained the flow,
//     where Figure 1 resets SC to zero);
//   - allowance positivity: every A_i(r) >= 1 (the "+1" guarantee);
//   - Theorem 2: for every flow present in every round of a window of
//     up to maxWindow consecutive complete rounds, the service bounds
//     hold. Windows never span busy periods: ERR restarts its round
//     numbering from 1 whenever the system drains (Figure 1's
//     Initialize), so same-numbered rounds of different busy periods
//     are distinct rounds and must not be merged.
//
// m is the largest packet cost that occurred during the run. It
// returns nil when every check passes.
func VerifyTrace(rec *core.TraceRecorder, m int64, maxWindow int) error {
	if m < 1 {
		return fmt.Errorf("analysis: m must be >= 1")
	}
	if len(rec.Events) == 0 {
		return nil
	}
	for _, ev := range rec.Events {
		if ev.Allowance < 1 {
			return fmt.Errorf("analysis: allowance %d < 1 (flow %d, round %d)",
				ev.Allowance, ev.Flow, ev.Round)
		}
		if ev.Surplus > m-1 {
			return fmt.Errorf("analysis: surplus %d > m-1 = %d (flow %d, round %d)",
				ev.Surplus, m-1, ev.Flow, ev.Round)
		}
		if !ev.Left && ev.Surplus < 0 {
			return fmt.Errorf("analysis: negative surplus %d without drain (flow %d, round %d)",
				ev.Surplus, ev.Flow, ev.Round)
		}
	}
	if maxWindow < 1 {
		return nil
	}
	for _, bp := range busyPeriods(rec) {
		if err := verifyServiceBounds(bp, m, maxWindow); err != nil {
			return err
		}
	}
	return nil
}

// busyPeriod is one scheduler busy period: the events between two
// all-empty resets, with round numbers starting from 1.
type busyPeriod struct {
	events   []core.RoundEvent
	complete int64 // rounds 1..complete are fully recorded
}

// busyPeriods splits a trace at the scheduler's round-counter resets.
// RoundStart records make the split unambiguous — a restart at round
// 1 marks the reset even for single-round busy periods — and their
// visit counts tell a fully recorded round from one the trace
// truncates mid-round. Without RoundStart records (a hand-built
// recorder) the split falls back to watching the round number drop.
func busyPeriods(rec *core.TraceRecorder) []busyPeriod {
	var out []busyPeriod
	var cur busyPeriod
	if len(rec.Rounds) == 0 {
		for i, ev := range rec.Events {
			if i > 0 && ev.Round < rec.Events[i-1].Round {
				cur.complete = rec.Events[i-1].Round
				out = append(out, cur)
				cur = busyPeriod{}
			}
			cur.events = append(cur.events, ev)
		}
		// The trace may stop mid-round: only earlier rounds are
		// known complete.
		cur.complete = cur.events[len(cur.events)-1].Round - 1
		return append(out, cur)
	}
	ei := 0
	for i, ri := range rec.Rounds {
		if i > 0 && ri.Round == 1 {
			out = append(out, cur)
			cur = busyPeriod{}
		}
		visited := 0
		for ; visited < ri.Visits && ei < len(rec.Events) && rec.Events[ei].Round == ri.Round; visited++ {
			cur.events = append(cur.events, rec.Events[ei])
			ei++
		}
		if visited == ri.Visits {
			cur.complete = ri.Round
		}
	}
	return append(out, cur)
}

// verifyServiceBounds checks Theorem 2 over every window of complete
// rounds within one busy period.
func verifyServiceBounds(bp busyPeriod, m int64, maxWindow int) error {
	if bp.complete < 1 {
		return nil
	}
	maxSC := map[int64]int64{}
	sent := map[int64]map[int]int64{}
	present := map[int64]map[int]bool{}
	for _, ev := range bp.events {
		if ev.Round > bp.complete {
			continue
		}
		if ev.Surplus > maxSC[ev.Round] {
			maxSC[ev.Round] = ev.Surplus
		}
		if sent[ev.Round] == nil {
			sent[ev.Round] = map[int]int64{}
			present[ev.Round] = map[int]bool{}
		}
		sent[ev.Round][ev.Flow] += ev.Sent
		present[ev.Round][ev.Flow] = true
	}
	for k := int64(1); k <= bp.complete; k++ {
		for n := int64(1); n <= int64(maxWindow) && k+n-1 <= bp.complete; n++ {
			lo, hi := ServiceBounds(n, k, maxSC, m)
			// Only flows active in every round of the window — and
			// never draining inside it — are covered by Theorem 2.
			for flow := range present[k] {
				ok := true
				var N int64
				for r := k; r <= k+n-1; r++ {
					if !present[r][flow] {
						ok = false
						break
					}
					N += sent[r][flow]
				}
				if !ok {
					continue
				}
				if drainsWithin(bp.events, flow, k, k+n-1) {
					continue
				}
				if N < lo || N > hi {
					return fmt.Errorf("analysis: Theorem 2 violated: flow %d rounds [%d,%d]: N=%d not in [%d,%d]",
						flow, k, k+n-1, N, lo, hi)
				}
			}
		}
	}
	return nil
}

// drainsWithin reports whether flow drained (left the active list)
// during rounds [k, k2].
func drainsWithin(events []core.RoundEvent, flow int, k, k2 int64) bool {
	for _, ev := range events {
		if ev.Flow == flow && ev.Left && ev.Round >= k && ev.Round <= k2 {
			return true
		}
	}
	return false
}

// FairnessVerdict compares a measured fairness value against a bound,
// producing the Table 1 verdict string used by the tooling.
func FairnessVerdict(measured, bound int64) string {
	switch {
	case bound <= 0:
		return "unbounded discipline"
	case measured < bound:
		return fmt.Sprintf("holds (%d < %d)", measured, bound)
	default:
		return fmt.Sprintf("VIOLATED (%d >= %d)", measured, bound)
	}
}
