package serve

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestSelfDriveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("selfdrive run takes ~1s")
	}
	rep, err := SelfDrive(SelfDriveConfig{
		Workers: 4, QueueCap: 32,
		FaultSpec: "slow(p=0.05,ms=5);flood(tenant=hog,rps=200)",
		Seed:      42, Dur: 500 * time.Millisecond, CostMS: 2,
		DefaultDeadline: 500 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatalf("SelfDrive: %v", err)
	}
	if !rep.OK || rep.Violations != 0 || !rep.DrainClean {
		t.Fatalf("selfdrive not OK: %+v", rep)
	}
	// The flood tenant plus the 4 default baseline tenants must all
	// have sent traffic and show up in the stats.
	if len(rep.Loads) != 5 {
		t.Fatalf("got %d load streams, want 5", len(rep.Loads))
	}
	for _, l := range rep.Loads {
		if l.Sent == 0 {
			t.Fatalf("stream %s sent nothing", l.Tenant)
		}
	}
	if len(rep.Tenants) == 0 {
		t.Fatal("no tenant stats")
	}
	if rep.Faults.Slowed == 0 {
		t.Fatalf("slow fault never fired: %+v", rep.Faults)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-able: %v", err)
	}
}

func TestSelfDriveBadSpec(t *testing.T) {
	if _, err := SelfDrive(SelfDriveConfig{FaultSpec: "bogus(p=1)"}, nil); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestSelfDriveShutdownHook pins the contract cmd/errserve relies on:
// the hook replaces the default drain, and a failing hook surfaces as
// an un-OK report rather than an error.
func TestSelfDriveShutdownHook(t *testing.T) {
	called := false
	rep, err := SelfDrive(SelfDriveConfig{
		Workers: 2, Dur: 50 * time.Millisecond,
		Baseline: []LoadSpec{{Tenant: "t", RPS: 20, CostMS: 1}},
	}, func(s *Server) error {
		called = true
		return errors.New("drain jammed")
	})
	if err != nil {
		t.Fatalf("SelfDrive: %v", err)
	}
	if !called {
		t.Fatal("shutdown hook never called")
	}
	if rep.OK || rep.DrainClean || rep.DrainErr != "drain jammed" {
		t.Fatalf("failing hook not reflected: %+v", rep)
	}
}

func TestRunBenchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("bench sweep takes ~1s")
	}
	rep, err := RunBench(BenchConfig{
		Workers: 2, CostMS: 2, QueueCap: 16, Mice: 3,
		Saturations: []float64{0.5, 2},
		Dur:         400 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	if rep.CapacityRPS != 1000 {
		t.Fatalf("capacity %g, want 1000 (2 workers / 2ms)", rep.CapacityRPS)
	}
	for _, pt := range rep.Points {
		if pt.Sent == 0 || pt.ReqPerSec <= 0 {
			t.Fatalf("empty point: %+v", pt)
		}
		if pt.MiceMinSuccess < 0 || pt.MiceMinSuccess > 1 {
			t.Fatalf("implausible mice success: %+v", pt)
		}
	}
	// At 0.5x everything fits; at 2x the open-loop load must exceed
	// what got served.
	if under := rep.Points[0]; under.OK < under.Sent*9/10 {
		t.Fatalf("0.5x point lost traffic: %+v", under)
	}
	if over := rep.Points[1]; over.OK == over.Sent {
		t.Fatalf("2x point served everything offered: %+v", over)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-able: %v", err)
	}
}
