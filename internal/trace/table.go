package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// RoundOp is one flow's service opportunity within a scheduler round
// — the unit of the paper's Figure 3 walkthrough. It mirrors
// core.RoundEvent; RoundsFrom converts a core recording so the repo
// has exactly one round-table formatter.
type RoundOp struct {
	Flow      int
	Allowance int64
	Sent      int64
	Surplus   int64
	Left      bool // the flow drained and left the active list
}

// Round is one scheduler round: its header and its opportunities in
// service order.
type Round struct {
	Round     int64
	PrevMaxSC int64
	Visits    int
	MaxSC     int64
	Ops       []RoundOp
}

// RoundsFrom converts a core ERR round recording into round-table
// form: one Round per recorded round, opportunities in service order.
// (The conversion lives here rather than on core.TraceRecorder so the
// dependency points from the recorder package to the scheduler, never
// the reverse — wormhole's and engine's tests import core, and trace
// imports wormhole.)
func RoundsFrom(rec *core.TraceRecorder) []Round {
	out := make([]Round, 0, len(rec.Rounds))
	for _, ri := range rec.Rounds {
		rd := Round{
			Round: ri.Round, PrevMaxSC: ri.PrevMaxSC, Visits: ri.Visits,
			MaxSC: rec.MaxSCOfRound(ri.Round),
		}
		for _, e := range rec.EventsOfRound(ri.Round) {
			rd.Ops = append(rd.Ops, RoundOp{
				Flow: e.Flow, Allowance: e.Allowance, Sent: e.Sent,
				Surplus: e.Surplus, Left: e.Left,
			})
		}
		out = append(out, rd)
	}
	return out
}

// WriteRecorderTable renders a core ERR round recording as the
// Figure 3 table: WriteRoundTable over RoundsFrom.
func WriteRecorderTable(w io.Writer, rec *core.TraceRecorder) error {
	return WriteRoundTable(w, RoundsFrom(rec))
}

// WriteRoundTable renders rounds as the kind of table the paper's
// Figure 3 depicts: per round, each flow's allowance, the flits it
// sent, and its resulting surplus count. The format is pinned by the
// core golden tests.
func WriteRoundTable(w io.Writer, rounds []Round) error {
	for _, r := range rounds {
		if _, err := fmt.Fprintf(w, "Round %d (PreviousMaxSC=%d, visits=%d)\n",
			r.Round, r.PrevMaxSC, r.Visits); err != nil {
			return err
		}
		for _, op := range r.Ops {
			mark := ""
			if op.Left {
				mark = "  [drained]"
			}
			line := fmt.Sprintf("  flow %d: A=%-4d sent=%-4d SC=%-4d%s",
				op.Flow, op.Allowance, op.Sent, op.Surplus, mark)
			if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  MaxSC=%d\n", r.MaxSC); err != nil {
			return err
		}
	}
	return nil
}
