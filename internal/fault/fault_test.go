package fault_test

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/flit"
)

func mustParse(t *testing.T, s string) *fault.Spec {
	t.Helper()
	spec, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestNilInjectorIsInert(t *testing.T) {
	inj := fault.New(nil, 1)
	if inj != nil {
		t.Fatalf("New(nil, ...) = %v, want nil", inj)
	}
	if c := inj.Counters(); c != (fault.Counters{}) {
		t.Errorf("nil injector Counters() = %+v, want zero", c)
	}
	if inj.Spec() != nil {
		t.Error("nil injector Spec() != nil")
	}
	inner := engine.StallFunc(func(flow int) int { return 7 })
	if got := inj.WrapStall(inner); reflect.ValueOf(got).Pointer() != reflect.ValueOf(inner).Pointer() {
		t.Error("nil injector WrapStall did not return inner unchanged")
	}
	if got := inj.WrapSource(nil, 4); got != nil {
		t.Error("nil injector WrapSource(nil) != nil")
	}
	if inj.OutputFault(0, 0) != nil {
		t.Error("nil injector OutputFault != nil")
	}
	if inj.FreezeFunc(0) != nil {
		t.Error("nil injector FreezeFunc != nil")
	}
}

func TestWrapStallPassthroughWithoutEngineDirectives(t *testing.T) {
	// Router-scoped stalls and non-stall directives must not wrap the
	// stall model: the engine fast path stays untouched.
	for _, s := range []string{"drop(p=0.5)", "stall(router=1,at=0,dur=5)", "stall(port=2,at=0,dur=5)"} {
		inj := fault.New(mustParse(t, s), 1)
		if got := inj.WrapStall(nil); got != nil {
			t.Errorf("spec %q: WrapStall(nil) = %T, want nil passthrough", s, got)
		}
	}
}

func TestWrapStallWindow(t *testing.T) {
	inj := fault.New(mustParse(t, "stall(flow=0,at=10,dur=5)"), 1)
	sm, ok := inj.WrapStall(nil).(engine.CycleStallModel)
	if !ok {
		t.Fatal("WrapStall did not return a CycleStallModel")
	}
	cases := []struct {
		flow  int
		cycle int64
		want  int
	}{
		{0, 9, 0},  // before the window
		{0, 10, 5}, // window start: full remaining window
		{0, 14, 1}, // last faulty cycle
		{0, 15, 0}, // window over
		{1, 12, 0}, // other flows unaffected
	}
	var wantCycles int64
	for _, c := range cases {
		if got := sm.FlitStallAt(c.flow, c.cycle); got != c.want {
			t.Errorf("FlitStallAt(%d, %d) = %d, want %d", c.flow, c.cycle, got, c.want)
		}
		wantCycles += int64(c.want)
	}
	if got := inj.Counters().StallCycles; got != wantCycles {
		t.Errorf("StallCycles = %d, want %d", got, wantCycles)
	}
}

func TestWrapStallPermanentAndLayered(t *testing.T) {
	inj := fault.New(mustParse(t, "stall(at=100)"), 1) // dur=0: permanent, all flows
	sm := inj.WrapStall(engine.StallFunc(func(flow int) int { return 2 })).(engine.CycleStallModel)
	if got := sm.FlitStallAt(3, 99); got != 2 {
		t.Errorf("before the fault the inner model must show through: got %d, want 2", got)
	}
	if got := sm.FlitStallAt(3, 100); got < 1<<60 {
		t.Errorf("permanent stall = %d, want effectively infinite", got)
	}
}

func TestWrapSourceMalformed(t *testing.T) {
	inj := fault.New(mustParse(t, "malformed(kind=zerolen,p=1);malformed(kind=badflow,p=1)"), 1)
	src := inj.WrapSource(nil, 4)
	got := src.Arrivals(0, nil)
	if len(got) != 2 {
		t.Fatalf("got %d packets, want 2 (one per directive)", len(got))
	}
	if got[0].Length != 0 {
		t.Errorf("zerolen packet length = %d, want 0", got[0].Length)
	}
	if got[1].Flow != 4 {
		t.Errorf("badflow packet flow = %d, want 4 (out of range for 4 flows)", got[1].Flow)
	}
	if c := inj.Counters().Malformed; c != 2 {
		t.Errorf("Malformed counter = %d, want 2", c)
	}
}

func TestWrapSourcePassthroughForFlitLevelKinds(t *testing.T) {
	// notail/duphead are flit-stream malformations a packet-granularity
	// source cannot express; with only those the source is unwrapped.
	inj := fault.New(mustParse(t, "malformed(kind=notail,p=1);malformed(kind=duphead,p=1)"), 1)
	if got := inj.WrapSource(nil, 4); got != nil {
		t.Fatalf("WrapSource = %T, want nil passthrough", got)
	}
}

func TestWrapSourceDeterministic(t *testing.T) {
	emissions := func(seed uint64) []int {
		inj := fault.New(mustParse(t, "malformed(kind=zerolen,p=0.3)"), seed)
		src := inj.WrapSource(nil, 4)
		var out []int
		for c := int64(0); c < 200; c++ {
			out = append(out, len(src.Arrivals(c, nil)))
		}
		return out
	}
	if !reflect.DeepEqual(emissions(42), emissions(42)) {
		t.Error("same seed produced different malformed-emission patterns")
	}
}

func TestOutputFaultMatching(t *testing.T) {
	inj := fault.New(mustParse(t, "drop(router=1,port=2,p=0.5)"), 1)
	if inj.OutputFault(1, 2) == nil {
		t.Error("OutputFault(1,2) = nil, want a fault for the targeted output")
	}
	if inj.OutputFault(1, 1) != nil || inj.OutputFault(0, 2) != nil {
		t.Error("OutputFault matched a router/port the directive does not target")
	}
	wild := fault.New(mustParse(t, "corrupt(p=0.5)"), 1)
	if wild.OutputFault(7, 3) == nil {
		t.Error("wildcard corrupt directive must target every output")
	}
	// Engine-mode stalls (no router, no port) never become router
	// output faults; port-scoped stalls do, on every router.
	eng := fault.New(mustParse(t, "stall(flow=0,at=0,dur=5)"), 1)
	if eng.OutputFault(0, 0) != nil {
		t.Error("engine-mode stall leaked into a router output fault")
	}
	ported := fault.New(mustParse(t, "stall(port=1,at=0,dur=5)"), 1)
	of := ported.OutputFault(3, 1)
	if of == nil {
		t.Fatal("port-scoped stall must target port 1 on every router")
	}
	if !of.Stalled(0) || !of.Stalled(4) || of.Stalled(5) {
		t.Error("Stalled window wrong: want [0,5) stalled, 5 clear")
	}
}

func TestOutputFaultDropAndCorrupt(t *testing.T) {
	inj := fault.New(mustParse(t, "drop(p=1);corrupt(p=1)"), 1)
	of := inj.OutputFault(0, 0)
	f := flit.Flit{Flow: 0, Kind: flit.Body}
	for c := int64(0); c < 10; c++ {
		if !of.Drop(f, c) {
			t.Fatalf("p=1 drop kept a flit at cycle %d", c)
		}
	}
	kinds := map[flit.Kind]flit.Kind{
		flit.Body:     flit.Tail,
		flit.Tail:     flit.Body,
		flit.Head:     flit.Body,
		flit.HeadTail: flit.Head,
	}
	for in, want := range kinds {
		got := of.Corrupt(flit.Flit{Kind: in}, 0)
		if got.Kind != want {
			t.Errorf("Corrupt(%v) = %v, want %v", in, got.Kind, want)
		}
	}
	c := inj.Counters()
	if c.Dropped != 10 || c.Corrupted != int64(len(kinds)) {
		t.Errorf("counters = %+v, want 10 dropped, %d corrupted", c, len(kinds))
	}
}

func TestOutputFaultDropDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		inj := fault.New(mustParse(t, "drop(p=0.5)"), seed)
		of := inj.OutputFault(2, 3)
		var out []bool
		for c := int64(0); c < 100; c++ {
			out = append(out, of.Drop(flit.Flit{}, c))
		}
		return out
	}
	if !reflect.DeepEqual(pattern(9), pattern(9)) {
		t.Error("same seed produced different drop patterns")
	}
}

func TestFreezeFunc(t *testing.T) {
	inj := fault.New(mustParse(t, "freeze(router=2,at=10,dur=5)"), 1)
	if inj.FreezeFunc(1) != nil {
		t.Error("FreezeFunc matched a router the directive does not target")
	}
	f := inj.FreezeFunc(2)
	if f == nil {
		t.Fatal("FreezeFunc(2) = nil, want the freeze predicate")
	}
	for cycle, want := range map[int64]bool{9: false, 10: true, 14: true, 15: false} {
		if got := f(cycle); got != want {
			t.Errorf("freeze(%d) = %v, want %v", cycle, got, want)
		}
	}
	wild := fault.New(mustParse(t, "freeze(at=0)"), 1) // all routers, permanent
	g := wild.FreezeFunc(7)
	if g == nil || !g(1_000_000) {
		t.Error("wildcard permanent freeze must apply to every router forever")
	}
}

func TestMalformedFlits(t *testing.T) {
	if fs := fault.MalformedFlits(fault.MalformedZeroLen, 0, 8, 0); fs != nil {
		t.Errorf("zerolen = %d flits, want none", len(fs))
	}
	bad := fault.MalformedFlits(fault.MalformedBadFlow, 3, 4, 0)
	for i, f := range bad {
		if f.Flow != -1 {
			t.Errorf("badflow flit %d has flow %d, want -1", i, f.Flow)
		}
	}
	noTail := fault.MalformedFlits(fault.MalformedNoTail, 0, 5, 0)
	if len(noTail) != 4 {
		t.Fatalf("notail = %d flits, want 4 (tail truncated)", len(noTail))
	}
	for _, f := range noTail {
		if f.Kind == flit.Tail || f.Kind == flit.HeadTail {
			t.Error("notail stream still contains a tail")
		}
	}
	dup := fault.MalformedFlits(fault.MalformedDupHead, 0, 6, 0)
	heads := 0
	for _, f := range dup {
		if f.Kind == flit.Head {
			heads++
		}
	}
	if heads != 2 {
		t.Errorf("duphead stream has %d heads, want 2", heads)
	}
	// Lengths below 2 are clamped so every kind can materialise.
	if fs := fault.MalformedFlits(fault.MalformedNoTail, 0, 1, 0); len(fs) != 1 {
		t.Errorf("notail with length 1 = %d flits, want 1 (clamped to 2, tail cut)", len(fs))
	}
}
