package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs for different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first output")
	}
	// Splitting must be deterministic given the parent seed.
	e1 := New(7).Split()
	f1 := New(7).Split()
	if e1.Uint64() != f1.Uint64() {
		t.Error("Split not deterministic")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	s := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestInt63nBounds(t *testing.T) {
	s := New(3)
	// Bounds beyond 2^32 exercise the 64-bit path Intn(int) cannot
	// reach on 32-bit platforms.
	for _, n := range []int64{1, 2, 17, 1 << 20, 1 << 33, 1<<62 + 12345} {
		for i := 0; i < 200; i++ {
			v := s.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt63nMatchesIntn(t *testing.T) {
	// The contract documented on Int63n: Intn(n) and Int63n(int64(n))
	// draw identically from the stream, so log-sampling code can move
	// between them without perturbing seeded runs.
	a, b := New(99), New(99)
	for i := 0; i < 5000; i++ {
		n := 1 + i%4_000_000
		if x, y := a.Intn(n), b.Int63n(int64(n)); int64(x) != y {
			t.Fatalf("Intn(%d) = %d but Int63n = %d at step %d", n, x, y, i)
		}
	}
}

func TestInt63nPanics(t *testing.T) {
	s := New(1)
	for _, n := range []int64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Int63n(%d) did not panic", n)
				}
			}()
			s.Int63n(n)
		}()
	}
}

func TestInt63nLargeBoundSpread(t *testing.T) {
	// Draws over a > 2^31 bound must actually cover the high range —
	// the 32-bit truncation bug this method replaces would fold
	// everything into the low 2^31.
	s := New(7)
	const bound = int64(1) << 40
	high := 0
	for i := 0; i < 10000; i++ {
		if s.Int63n(bound) >= bound/2 {
			high++
		}
	}
	if high < 4500 || high > 5500 {
		t.Errorf("high-half draws %d/10000, want ~5000", high)
	}
}

func TestDerive(t *testing.T) {
	// Deterministic.
	if Derive(1, 2, 3) != Derive(1, 2, 3) {
		t.Error("Derive not deterministic")
	}
	// Labels matter, including their order and arity.
	seen := map[uint64][]uint64{}
	cases := [][]uint64{{}, {0}, {1}, {2}, {0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2, 3}, {3, 2, 1}}
	for _, labels := range cases {
		d := Derive(42, labels...)
		if prev, dup := seen[d]; dup {
			t.Errorf("Derive(42, %v) == Derive(42, %v)", labels, prev)
		}
		seen[d] = labels
	}
	// Different bases diverge even with equal labels.
	if Derive(1, 5) == Derive(2, 5) {
		t.Error("Derive ignores the base seed")
	}
	// Derived streams are decorrelated enough to use directly.
	a := New(Derive(9, 0))
	b := New(Derive(9, 1))
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from sibling derived seeds", same)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(5)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange(3,9) = %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 9 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("IntRange endpoints never drawn in 10k samples")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(13)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) empirical rate %.4f", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const lambda = 0.2
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(lambda)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.1 {
		t.Errorf("Exp(0.2) mean %.3f, want ~5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(19)
	for _, mean := range []float64{0.5, 3, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			k := s.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson(%v) negative", mean)
			}
			sum += k
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) empirical mean %.3f", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance %.4f", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(29)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
	if len(seen) != 50 {
		t.Fatalf("shuffle lost elements: %d", len(seen))
	}
}

func TestUniformDist(t *testing.T) {
	s := New(31)
	u := NewUniform(1, 64)
	if u.Max() != 64 || u.Name() != "uniform" {
		t.Error("Uniform metadata wrong")
	}
	for i := 0; i < 10000; i++ {
		l := u.Draw(s)
		if l < 1 || l > 64 {
			t.Fatalf("uniform draw %d out of [1,64]", l)
		}
	}
}

func TestUniformPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{0, 5}, {5, 4}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUniform(%d,%d) did not panic", c.lo, c.hi)
				}
			}()
			NewUniform(c.lo, c.hi)
		}()
	}
}

func TestConstantDist(t *testing.T) {
	c := Constant{Length: 7}
	s := New(1)
	for i := 0; i < 10; i++ {
		if c.Draw(s) != 7 {
			t.Fatal("Constant did not return its length")
		}
	}
	if c.Max() != 7 {
		t.Error("Constant Max wrong")
	}
}

func TestTruncExpShape(t *testing.T) {
	s := New(37)
	e := NewTruncExp(0.2, 1, 64)
	if e.Max() != 64 {
		t.Error("TruncExp Max wrong")
	}
	const n = 100000
	small, large := 0, 0
	sum := 0
	for i := 0; i < n; i++ {
		l := e.Draw(s)
		if l < 1 || l > 64 {
			t.Fatalf("truncexp draw %d out of range", l)
		}
		sum += l
		if l <= 8 {
			small++
		}
		if l >= 56 {
			large++
		}
	}
	if small <= large*10 {
		t.Errorf("exponential shape lost: %d small vs %d large draws", small, large)
	}
	// Mean of exp(0.2) is 5, so truncated mean ≈ 1 + ~4.8.
	mean := float64(sum) / n
	if mean < 4 || mean > 8 {
		t.Errorf("truncexp mean %.2f outside plausible window", mean)
	}
}

func TestBimodal(t *testing.T) {
	s := New(41)
	b := Bimodal{Short: 2, Long: 64, PShort: 0.9}
	if b.Max() != 64 {
		t.Error("Bimodal Max wrong")
	}
	shorts := 0
	const n = 50000
	for i := 0; i < n; i++ {
		l := b.Draw(s)
		if l != 2 && l != 64 {
			t.Fatalf("bimodal drew %d", l)
		}
		if l == 2 {
			shorts++
		}
	}
	p := float64(shorts) / n
	if math.Abs(p-0.9) > 0.01 {
		t.Errorf("bimodal short fraction %.3f", p)
	}
}

func TestBoundedPareto(t *testing.T) {
	s := New(43)
	p := BoundedPareto{Alpha: 1.2, Lo: 1, Hi: 128}
	if p.Max() != 128 {
		t.Error("Pareto Max wrong")
	}
	for i := 0; i < 20000; i++ {
		l := p.Draw(s)
		if l < 1 || l > 128 {
			t.Fatalf("pareto draw %d out of range", l)
		}
	}
}

// Property: all length distributions respect their declared range for
// arbitrary seeds.
func TestDistsRespectRangeProperty(t *testing.T) {
	dists := []LengthDist{
		NewUniform(1, 64),
		NewTruncExp(0.2, 1, 64),
		Bimodal{Short: 1, Long: 128, PShort: 0.5},
		BoundedPareto{Alpha: 1.5, Lo: 2, Hi: 100},
		Constant{Length: 9},
	}
	prop := func(seed uint64) bool {
		s := New(seed)
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				l := d.Draw(s)
				if l < 1 || l > d.Max() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
