package queue

import "repro/internal/flit"

// FlitQueue is a FIFO of flits backed by a growable ring buffer,
// optionally bounded by a capacity (in flits) so it can model a
// finite hardware buffer with credit-based flow control. The zero
// value is an unbounded empty queue; use NewFlitQueue for a bounded
// one. All operations are amortised O(1).
type FlitQueue struct {
	buf        []flit.Flit
	head, size int
	cap        int // 0 means unbounded
}

// NewFlitQueue returns a flit FIFO bounded to capacity flits.
// capacity <= 0 yields an unbounded queue.
func NewFlitQueue(capacity int) *FlitQueue {
	if capacity < 0 {
		capacity = 0
	}
	return &FlitQueue{cap: capacity}
}

// Len returns the number of queued flits.
func (q *FlitQueue) Len() int { return q.size }

// Empty reports whether the queue holds no flits.
func (q *FlitQueue) Empty() bool { return q.size == 0 }

// Cap returns the capacity in flits (0 = unbounded).
func (q *FlitQueue) Cap() int { return q.cap }

// Full reports whether a bounded queue has no free slots. Unbounded
// queues are never full.
func (q *FlitQueue) Full() bool { return q.cap > 0 && q.size >= q.cap }

// Free returns the number of free slots; for unbounded queues it
// returns a large positive number.
func (q *FlitQueue) Free() int {
	if q.cap == 0 {
		return int(^uint(0) >> 1) // MaxInt
	}
	return q.cap - q.size
}

// Push appends a flit. It reports whether the flit was accepted; a
// full bounded queue rejects the flit (the caller holds it upstream,
// which is exactly wormhole back-pressure).
func (q *FlitQueue) Push(f flit.Flit) bool {
	if q.Full() {
		return false
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = f
	q.size++
	return true
}

// Pop removes and returns the flit at the head. It panics if empty.
func (q *FlitQueue) Pop() flit.Flit {
	if q.size == 0 {
		panic("queue: Pop from empty FlitQueue")
	}
	f := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return f
}

// Peek returns the head flit without removing it. It panics if empty.
func (q *FlitQueue) Peek() flit.Flit {
	if q.size == 0 {
		panic("queue: Peek on empty FlitQueue")
	}
	return q.buf[q.head]
}

func (q *FlitQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	if q.cap > 0 && n > q.cap {
		n = q.cap
	}
	nb := make([]flit.Flit, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
