package sched

import (
	"fmt"

	"repro/internal/queue"
)

// PBRR is Packet-Based Round Robin: visit active flows in round-robin
// order and transmit exactly one whole packet per visit. It is O(1)
// but unfair when flows use different packet sizes — a flow sending
// packets twice as long receives twice the bandwidth (Figure 4(a)).
type PBRR struct {
	active  queue.ActiveList
	current int // flow being served, or -1
}

// NewPBRR returns a PBRR scheduler.
func NewPBRR() *PBRR { return &PBRR{current: -1} }

// Name implements Scheduler.
func (p *PBRR) Name() string { return "PBRR" }

// OnArrival implements Scheduler.
func (p *PBRR) OnArrival(flow int, wasEmpty bool) {
	// A flow currently in service is active even though it is not in
	// the list; it will be re-appended by OnPacketDone if backlogged.
	if flow != p.current && !p.active.Contains(flow) {
		p.active.PushTail(flow)
	}
}

// NextFlow implements Scheduler.
func (p *PBRR) NextFlow() int {
	if p.current != -1 {
		panic("sched: PBRR.NextFlow while a packet is in service")
	}
	p.current = p.active.PopHead()
	return p.current
}

// OnPacketDone implements Scheduler.
func (p *PBRR) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != p.current {
		panic("sched: PBRR completion for a flow not in service")
	}
	p.current = -1
	if !nowEmpty {
		p.active.PushTail(flow)
	}
}

// HeadOfLineSafe implements HeadOfLineArb.
func (p *PBRR) HeadOfLineSafe() {}

var _ HeadOfLineArb = (*PBRR)(nil)

// WRR is Weighted Round Robin: like PBRR, but flow i transmits up to
// Weight(i) packets per round-robin visit. With equal weights it
// degenerates to PBRR. Like PBRR it is blind to packet lengths, so it
// shares PBRR's unfairness under heterogeneous packet sizes; it is
// included as a baseline for the weighted-ERR extension.
type WRR struct {
	active  queue.ActiveList
	weight  func(flow int) int
	current int
	left    int // packets remaining in the current visit
}

// NewWRR returns a WRR scheduler. weight must return >= 1 for every
// flow; nil means weight 1 for all flows.
func NewWRR(weight func(flow int) int) *WRR {
	if weight == nil {
		weight = func(int) int { return 1 }
	}
	return &WRR{weight: weight, current: -1}
}

// Name implements Scheduler.
func (w *WRR) Name() string { return "WRR" }

// OnArrival implements Scheduler.
func (w *WRR) OnArrival(flow int, wasEmpty bool) {
	if flow != w.current && !w.active.Contains(flow) {
		w.active.PushTail(flow)
	}
}

// NextFlow implements Scheduler.
func (w *WRR) NextFlow() int {
	if w.current != -1 {
		return w.current // continue the current visit
	}
	w.current = w.active.PopHead()
	w.left = w.weight(w.current)
	if w.left < 1 {
		panic(fmt.Sprintf("sched: WRR weight %d < 1 for flow %d", w.left, w.current))
	}
	return w.current
}

// OnPacketDone implements Scheduler.
func (w *WRR) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != w.current {
		panic("sched: WRR completion for a flow not in service")
	}
	w.left--
	if nowEmpty {
		w.current = -1
		return
	}
	if w.left == 0 {
		w.active.PushTail(flow)
		w.current = -1
	}
}

// HeadOfLineSafe implements HeadOfLineArb.
func (w *WRR) HeadOfLineSafe() {}

var _ HeadOfLineArb = (*WRR)(nil)
