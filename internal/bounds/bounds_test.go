package bounds

import (
	"math"
	"testing"
)

// twoFlows is a minimal config: flow 0 short packets, flow 1 long.
func twoFlows() Config {
	return Config{C: 1, Flows: []FlowSpec{
		{Weight: 1, Quantum: 16, LMin: 8, LMax: 16, Arrival: TokenBucket{Sigma: 16, Rho: 0.01}},
		{Weight: 2, Quantum: 32, LMin: 16, LMax: 32, Arrival: TokenBucket{Sigma: 32, Rho: 0.02}},
	}}
}

func TestRateLatencyDeviations(t *testing.T) {
	a := TokenBucket{Sigma: 10, Rho: 0.5}
	c := RateLatency(1, 20)
	// Closed forms for token bucket vs rate-latency: delay T + sigma/R,
	// backlog sigma + rho*T.
	if d := Delay(a, c); math.Abs(d-30) > 1e-9 {
		t.Errorf("delay %v, want 30", d)
	}
	if b := Backlog(a, c); math.Abs(b-20) > 1e-9 {
		t.Errorf("backlog %v, want 20", b)
	}
	// Zero rho: only the burst matters.
	if d := Delay(TokenBucket{Sigma: 5}, c); math.Abs(d-25) > 1e-9 {
		t.Errorf("zero-rho delay %v, want 25", d)
	}
}

func TestUnstableIsInfinite(t *testing.T) {
	c := RateLatency(0.25, 10)
	a := TokenBucket{Sigma: 1, Rho: 0.5}
	if !math.IsInf(Delay(a, c), 1) || !math.IsInf(Backlog(a, c), 1) {
		t.Error("rho > R must give infinite bounds")
	}
	// rho == R is the boundary case: finite.
	eq := TokenBucket{Sigma: 1, Rho: 0.25}
	if math.IsInf(Delay(eq, c), 1) {
		t.Error("rho == R must stay finite")
	}
}

func TestERRCurveFormula(t *testing.T) {
	cfg := twoFlows()
	// m = 32, G = (n-1)(2m-1) = 63; flow 0: R = 8/(8+63), T = 126.
	c := cfg.errCurve(0)
	if want := 8.0 / 71.0; math.Abs(c.rate-want) > 1e-12 {
		t.Errorf("ERR rate %v, want %v", c.rate, want)
	}
	if got := c.pts[len(c.pts)-1].x; math.Abs(got-126) > 1e-12 {
		t.Errorf("ERR latency %v, want 126", got)
	}
	// A single flow owns the link: no latency, full rate.
	solo := Config{C: 1, Flows: cfg.Flows[:1]}
	if c := solo.errCurve(0); c.rate != 1 || len(c.pts) != 1 {
		t.Errorf("solo ERR curve rate %v pts %v", c.rate, c.pts)
	}
}

func TestWRRClassicFormula(t *testing.T) {
	cfg := twoFlows()
	// Flow 0: q = 1*8 = 8, Qbar = 2*32 = 64: R = 8/72, T = 128.
	c := cfg.wrrClassic(0)
	if want := 8.0 / 72.0; math.Abs(c.rate-want) > 1e-12 {
		t.Errorf("WRR rate %v, want %v", c.rate, want)
	}
	if got := c.pts[len(c.pts)-1].x; math.Abs(got-128) > 1e-12 {
		t.Errorf("WRR latency %v, want 128", got)
	}
}

func TestIWRRCurveFormula(t *testing.T) {
	cfg := twoFlows()
	// Flow 0 (w=1) vs cross w=2: K = min(2,0)+1 + [2>=1] + (2-1) = 3,
	// G = 3*32 = 96: R = 8/104, T = 192.
	c := cfg.iwrrCurve(0)
	if want := 8.0 / 104.0; math.Abs(c.rate-want) > 1e-12 {
		t.Errorf("IWRR rate %v, want %v", c.rate, want)
	}
	if got := c.pts[len(c.pts)-1].x; math.Abs(got-192) > 1e-12 {
		t.Errorf("IWRR latency %v, want 192", got)
	}
}

func TestDRRCurveFormula(t *testing.T) {
	cfg := twoFlows()
	// Flow 0: Q = 16, Qbar = 32, crossL = 32:
	// R = 16/48, T = 32*(2 + 16/16) + 32 = 128.
	c := cfg.drrCurve(0)
	if want := 16.0 / 48.0; math.Abs(c.rate-want) > 1e-12 {
		t.Errorf("DRR rate %v, want %v", c.rate, want)
	}
	if got := c.pts[len(c.pts)-1].x; math.Abs(got-128) > 1e-12 {
		t.Errorf("DRR latency %v, want 128", got)
	}
}

// The WRR tightened curve must never yield a worse bound than taking
// the classic curve alone (DelayBound takes the min), and with
// lightly loaded cross traffic it should be strictly better.
func TestWRRTightImproves(t *testing.T) {
	cfg := twoFlows()
	classic := Delay(cfg.Flows[0].Arrival, cfg.wrrClassic(0))
	bound := cfg.DelayBound(DiscWRR, 0)
	if bound > classic+1e-9 {
		t.Errorf("DelayBound %v exceeds classic-only %v", bound, classic)
	}
	if bound >= classic {
		t.Errorf("tight curve did not improve on classic (%v vs %v)", bound, classic)
	}
}

// With an unstable cross flow the arrival cap is useless (infinite
// backlog bound); the tight curve must fall back to the round caps
// and the flow's own bound must stay finite.
func TestWRRTightUnstableCross(t *testing.T) {
	cfg := twoFlows()
	cfg.Flows[1].Arrival.Rho = 2 // cross flow overloads the link
	d := cfg.DelayBound(DiscWRR, 0)
	if math.IsInf(d, 1) || d <= 0 {
		t.Errorf("flow 0 bound %v; round-cap isolation must keep it finite", d)
	}
}

// Every discipline's bound is monotone nondecreasing in every flow's
// burst — the property the checker's bound cache relies on.
func TestBoundsMonotoneInSigma(t *testing.T) {
	for _, d := range []Discipline{DiscERR, DiscWRR, DiscIWRR, DiscDRR} {
		cfg := twoFlows()
		base := cfg.DelayBound(d, 0)
		for grow := 0; grow < 2; grow++ {
			cfg.Flows[grow].Arrival.Sigma *= 8
			if got := cfg.DelayBound(d, 0); got < base-1e-9 {
				t.Errorf("%s: growing flow %d's burst shrank flow 0's bound: %v -> %v",
					d, grow, base, got)
			}
		}
	}
}

func TestGuaranteedRatesSumWithinLink(t *testing.T) {
	cfg := twoFlows()
	for _, d := range []Discipline{DiscERR, DiscWRR, DiscIWRR, DiscDRR} {
		var sum float64
		for i := range cfg.Flows {
			r := cfg.GuaranteedRate(d, i)
			if r <= 0 {
				t.Fatalf("%s flow %d guaranteed rate %v", d, i, r)
			}
			sum += r
		}
		if sum > cfg.C+1e-9 {
			t.Errorf("%s guaranteed rates sum to %v > link rate", d, sum)
		}
	}
}

func TestParseDiscipline(t *testing.T) {
	for name, want := range map[string]Discipline{
		"ERR": DiscERR, "WRR": DiscWRR, "IWRR": DiscIWRR,
		"DRR": DiscDRR, "DRR-OPT": DiscDRR,
	} {
		got, err := ParseDiscipline(name)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v", name, got, err)
		}
	}
	for _, name := range []string{"FCFS", "WERR", "SCFQ", ""} {
		if _, err := ParseDiscipline(name); err == nil {
			t.Errorf("ParseDiscipline(%q) accepted", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	assertPanics(t, "C = 0", func() {
		(&Config{Flows: []FlowSpec{{LMin: 1, LMax: 1}}}).validate()
	})
	assertPanics(t, "LMax < LMin", func() {
		cfg := Config{C: 1, Flows: []FlowSpec{{LMin: 8, LMax: 4}}}
		cfg.validate()
	})
	assertPanics(t, "weight 0", func() {
		cfg := Config{C: 1, Flows: []FlowSpec{{LMin: 1, LMax: 1}}}
		cfg.ServiceCurves(DiscWRR, 0)
	})
	assertPanics(t, "quantum 0", func() {
		cfg := Config{C: 1, Flows: []FlowSpec{{Weight: 1, LMin: 1, LMax: 1}}}
		cfg.ServiceCurves(DiscDRR, 0)
	})
}

// OptimizeQuanta must do at least as well as splitting the frame
// uniformly, on the min-max delay-bound objective it optimises.
func TestOptimizeQuantaBeatsUniform(t *testing.T) {
	cfg := Config{C: 1, Flows: []FlowSpec{
		{Quantum: 0, LMin: 8, LMax: 16, Arrival: TokenBucket{Sigma: 16, Rho: 0.05}},
		{Quantum: 0, LMin: 16, LMax: 32, Arrival: TokenBucket{Sigma: 32, Rho: 0.10}},
		{Quantum: 0, LMin: 32, LMax: 64, Arrival: TokenBucket{Sigma: 64, Rho: 0.30}},
		{Quantum: 0, LMin: 8, LMax: 16, Arrival: TokenBucket{Sigma: 16, Rho: 0.20}},
	}}
	const budget = 512
	objective := func(q []int64) float64 {
		worst := 0.0
		for i := range cfg.Flows {
			cfg.Flows[i].Quantum = q[i]
		}
		for i := range cfg.Flows {
			worst = math.Max(worst, cfg.DelayBound(DiscDRR, i))
		}
		return worst
	}
	opt := OptimizeQuanta(cfg, budget)
	var sum int64
	for i, q := range opt {
		if q < int64(cfg.Flows[i].LMax) {
			t.Fatalf("flow %d quantum %d below LMax %d", i, q, cfg.Flows[i].LMax)
		}
		sum += q
	}
	if sum > budget {
		t.Fatalf("quanta sum %d exceeds budget %d", sum, budget)
	}
	uniform := []int64{128, 128, 128, 128}
	if got, base := objective(opt), objective(uniform); got > base+1e-9 {
		t.Errorf("optimised objective %v worse than uniform %v", got, base)
	}
	assertPanics(t, "budget below LMax sum", func() { OptimizeQuanta(cfg, 100) })
}

// OptimizeQuanta is deterministic: identical inputs, identical quanta.
func TestOptimizeQuantaDeterministic(t *testing.T) {
	cfg := twoFlows()
	a := OptimizeQuanta(cfg, 256)
	b := OptimizeQuanta(cfg, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic quanta: %v vs %v", a, b)
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
