package sched_test

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func pkt(flow, length int) flit.Packet { return flit.Packet{Flow: flow, Length: length} }

// backloggedRun floods n flows with packets of the given lengths
// distribution and returns per-flow flits served after serving total
// packets.
func backloggedRun(t *testing.T, s sched.Scheduler, n int, dist rng.LengthDist, packetsPerFlow, serve int, seed uint64) []int64 {
	t.Helper()
	d := harness.New(n, s)
	src := rng.New(seed)
	for k := 0; k < packetsPerFlow; k++ {
		for f := 0; f < n; f++ {
			d.Arrive(pkt(f, dist.Draw(src)))
		}
	}
	d.ServeN(serve)
	out := make([]int64, n)
	for f := 0; f < n; f++ {
		out[f] = d.Served(f)
	}
	return out
}

func TestFCFSServesInArrivalOrder(t *testing.T) {
	d := harness.New(3, sched.NewFCFS())
	arrivals := []flit.Packet{
		{Flow: 2, Length: 5, ID: 0},
		{Flow: 0, Length: 1, ID: 1},
		{Flow: 2, Length: 2, ID: 2},
		{Flow: 1, Length: 9, ID: 3},
		{Flow: 0, Length: 3, ID: 4},
	}
	for _, p := range arrivals {
		d.Arrive(p)
	}
	got := d.Drain()
	for i, p := range got {
		if p.ID != int64(i) {
			t.Fatalf("position %d served packet id %d; FCFS must follow arrival order", i, p.ID)
		}
	}
}

func TestFCFSInterleavedArrivals(t *testing.T) {
	d := harness.New(2, sched.NewFCFS())
	d.Arrive(pkt(0, 4))
	d.Arrive(pkt(1, 4))
	if p := d.ServeOne(); p.Flow != 0 {
		t.Fatalf("served flow %d first, want 0", p.Flow)
	}
	d.Arrive(pkt(0, 4))
	// Flow 1's packet arrived before flow 0's second packet.
	if p := d.ServeOne(); p.Flow != 1 {
		t.Fatalf("served flow %d, want 1", p.Flow)
	}
	if p := d.ServeOne(); p.Flow != 0 {
		t.Fatalf("served flow %d, want 0", p.Flow)
	}
}

func TestFCFSBandwidthCapture(t *testing.T) {
	// A flow sending 2x-length packets at the same packet rate grabs
	// ~2x the bandwidth under FCFS (the Figure 4(c) effect).
	d := harness.New(2, sched.NewFCFS())
	for i := 0; i < 300; i++ {
		d.Arrive(pkt(0, 32))
		d.Arrive(pkt(1, 64))
	}
	d.ServeN(400)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 1.8 || r > 2.2 {
		t.Errorf("FCFS service ratio %.2f, want ~2.0", r)
	}
}

func TestPBRROnePacketPerVisit(t *testing.T) {
	d := harness.New(3, sched.NewPBRR())
	for f := 0; f < 3; f++ {
		d.Arrive(pkt(f, 1))
		d.Arrive(pkt(f, 1))
	}
	order := []int{}
	for _, p := range d.Drain() {
		order = append(order, p.Flow)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestPBRRLongPacketsWin(t *testing.T) {
	// PBRR serves one packet per visit regardless of size: a flow with
	// 2x packets gets 2x throughput (Figure 4(a)).
	d := harness.New(2, sched.NewPBRR())
	for i := 0; i < 500; i++ {
		d.Arrive(pkt(0, 32))
		d.Arrive(pkt(1, 64))
	}
	d.ServeN(600)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 1.9 || r > 2.1 {
		t.Errorf("PBRR service ratio %.3f, want ~2.0", r)
	}
}

func TestPBRRLateJoinerNotStarved(t *testing.T) {
	d := harness.New(3, sched.NewPBRR())
	d.Arrive(pkt(0, 1))
	d.Arrive(pkt(1, 1))
	d.ServeOne() // serves flow 0
	d.Arrive(pkt(2, 1))
	d.Arrive(pkt(0, 1))
	flows := []int{}
	for _, p := range d.Drain() {
		flows = append(flows, p.Flow)
	}
	// Flow 1 was at the head, then 2 and 0 joined behind it.
	want := []int{1, 2, 0}
	for i := range want {
		if flows[i] != want[i] {
			t.Fatalf("order %v, want %v", flows, want)
		}
	}
}

func TestWRRWeightedShares(t *testing.T) {
	w := func(flow int) int { return []int{1, 3}[flow] }
	d := harness.New(2, sched.NewWRR(w))
	for i := 0; i < 400; i++ {
		d.Arrive(pkt(0, 10))
		d.Arrive(pkt(1, 10))
	}
	d.ServeN(400)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 2.8 || r > 3.2 {
		t.Errorf("WRR 3:1 ratio came out %.2f", r)
	}
}

func TestWRREqualWeightsIsPBRR(t *testing.T) {
	a := harness.New(3, sched.NewWRR(nil))
	b := harness.New(3, sched.NewPBRR())
	src := rng.New(99)
	lens := rng.NewUniform(1, 16)
	for i := 0; i < 200; i++ {
		f := src.Intn(3)
		l := lens.Draw(src)
		a.Arrive(pkt(f, l))
		b.Arrive(pkt(f, l))
	}
	pa := a.Drain()
	pb := b.Drain()
	if len(pa) != len(pb) {
		t.Fatal("different packet counts")
	}
	for i := range pa {
		if pa[i].Flow != pb[i].Flow || pa[i].Length != pb[i].Length {
			t.Fatalf("WRR(1) diverged from PBRR at packet %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestDRRFairUnderUnequalLengths(t *testing.T) {
	// DRR equalises throughput even when one flow sends 2x-long
	// packets (Figure 4(d) behaviour).
	got := backloggedRun(t, sched.NewDRR(128, nil), 2, rng.NewUniform(1, 64), 2000, 1500, 7)
	// Flow 1 draws from the same dist here; instead run explicit mix:
	d := harness.New(2, sched.NewDRR(128, nil))
	src := rng.New(7)
	l64 := rng.NewUniform(1, 64)
	l128 := rng.NewUniform(1, 128)
	for i := 0; i < 2000; i++ {
		d.Arrive(pkt(0, l64.Draw(src)))
		d.Arrive(pkt(1, l128.Draw(src)))
	}
	d.ServeN(1500)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 0.95 || r > 1.05 {
		t.Errorf("DRR throughput ratio %.3f, want ~1.0", r)
	}
	_ = got
}

func TestDRRDeficitAccumulates(t *testing.T) {
	// Quantum 5, packets of 8 flits: flow must bank two visits before
	// sending, then a deficit of 2 remains.
	d := harness.New(2, sched.NewDRR(5, nil))
	d.Arrive(pkt(0, 8))
	d.Arrive(pkt(0, 8))
	d.Arrive(pkt(1, 1))
	// Flow 1's tiny packet fits on its first visit; flow 0 needs two
	// quanta. Service order: flow1 (len1), then flow0.
	p := d.ServeOne()
	if p.Flow != 1 {
		t.Fatalf("first served flow %d, want 1 (flow 0 lacks deficit)", p.Flow)
	}
	p = d.ServeOne()
	if p.Flow != 0 || p.Length != 8 {
		t.Fatalf("second service %+v, want flow 0 len 8", p)
	}
	d.Drain()
}

func TestDRRQuantumRespectsRounds(t *testing.T) {
	// With quantum = 10 and 4-flit packets: the first visit serves 2
	// packets (deficit 10 -> 2), the second serves 3 (carried deficit
	// 2 + 10 = 12 -> 0, emptying the flow and resetting the deficit),
	// and the last packet goes out on a fresh visit.
	d := harness.New(2, sched.NewDRR(10, nil))
	for i := 0; i < 6; i++ {
		d.Arrive(pkt(0, 4))
		d.Arrive(pkt(1, 4))
	}
	flows := []int{}
	for _, p := range d.Drain() {
		flows = append(flows, p.Flow)
	}
	want := []int{0, 0, 1, 1, 0, 0, 0, 1, 1, 1, 0, 1}
	for i := range want {
		if flows[i] != want[i] {
			t.Fatalf("order %v, want %v", flows, want)
		}
	}
}

func TestDRRResetsDeficitOnEmpty(t *testing.T) {
	d := harness.New(1, sched.NewDRR(100, nil))
	d.Arrive(pkt(0, 1))
	d.ServeOne() // leaves deficit 99, then reset to 0 on empty
	d.Arrive(pkt(0, 60))
	d.Arrive(pkt(0, 60))
	p := d.ServeOne()
	if p.Length != 60 {
		t.Fatal("unexpected packet")
	}
	// After one 60-flit packet the deficit is 40 < 60, so if the reset
	// happened the second packet needs a new visit — which, with one
	// flow, it gets immediately; observable via deficit not exceeding
	// quantum: serve and ensure no panic (deficit never negative).
	d.Drain()
}

func TestSCFQFairness(t *testing.T) {
	d := harness.New(2, sched.NewSCFQ(nil))
	src := rng.New(21)
	l64 := rng.NewUniform(1, 64)
	l128 := rng.NewUniform(1, 128)
	for i := 0; i < 2000; i++ {
		d.Arrive(pkt(0, l64.Draw(src)))
		d.Arrive(pkt(1, l128.Draw(src)))
	}
	d.ServeN(1500)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 0.93 || r > 1.07 {
		t.Errorf("SCFQ throughput ratio %.3f, want ~1.0", r)
	}
}

func TestSCFQWeighted(t *testing.T) {
	w := func(flow int) float64 { return []float64{1, 2}[flow] }
	d := harness.New(2, sched.NewSCFQ(w))
	for i := 0; i < 1000; i++ {
		d.Arrive(pkt(0, 10))
		d.Arrive(pkt(1, 10))
	}
	d.ServeN(900)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 1.85 || r > 2.15 {
		t.Errorf("SCFQ 2:1 weights gave ratio %.3f", r)
	}
}

func TestWFQFairness(t *testing.T) {
	d := harness.New(3, sched.NewWFQ(nil))
	src := rng.New(31)
	dists := []rng.LengthDist{rng.NewUniform(1, 64), rng.NewUniform(1, 128), rng.NewUniform(16, 16)}
	for i := 0; i < 3000; i++ {
		for f := 0; f < 3; f++ {
			d.Arrive(pkt(f, dists[f].Draw(src)))
		}
	}
	d.ServeN(2500)
	served := []float64{float64(d.Served(0)), float64(d.Served(1)), float64(d.Served(2))}
	mean := (served[0] + served[1] + served[2]) / 3
	if stats.MaxAbsDiff(served) > 0.1*mean {
		t.Errorf("WFQ per-flow service spread too wide: %v", served)
	}
}

func TestVirtualClockFairness(t *testing.T) {
	d := harness.New(2, sched.NewVirtualClock(nil))
	src := rng.New(41)
	l64 := rng.NewUniform(1, 64)
	l128 := rng.NewUniform(1, 128)
	for i := 0; i < 2000; i++ {
		d.Arrive(pkt(0, l64.Draw(src)))
		d.Arrive(pkt(1, l128.Draw(src)))
	}
	d.ServeN(1500)
	r := float64(d.Served(1)) / float64(d.Served(0))
	if r < 0.93 || r > 1.07 {
		t.Errorf("VirtualClock throughput ratio %.3f, want ~1.0", r)
	}
}

func TestTimestampSchedulersDrainSingleFlow(t *testing.T) {
	for _, s := range []sched.Scheduler{sched.NewSCFQ(nil), sched.NewWFQ(nil), sched.NewVirtualClock(nil)} {
		d := harness.New(1, s)
		for i := 0; i < 50; i++ {
			d.Arrive(pkt(0, i%9+1))
		}
		got := d.Drain()
		if len(got) != 50 {
			t.Errorf("%s drained %d packets, want 50", s.Name(), len(got))
		}
		// Single flow must be served FIFO.
		for i := 1; i < len(got); i++ {
			if got[i].Length != i%9+1 {
				t.Errorf("%s reordered a single flow's packets", s.Name())
				break
			}
		}
	}
}

// Property: every packet-granularity discipline is work-conserving
// and loses no packets under random arrival/service interleavings.
func TestAllSchedulersConserveWork(t *testing.T) {
	mk := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFCFS() },
		func() sched.Scheduler { return sched.NewPBRR() },
		func() sched.Scheduler { return sched.NewWRR(nil) },
		func() sched.Scheduler { return sched.NewIWRR(func(f int) int { return f + 1 }) },
		func() sched.Scheduler { return sched.NewDRR(64, nil) },
		func() sched.Scheduler { return sched.NewOptDRR([]int64{64, 48, 80, 64}) },
		func() sched.Scheduler { return sched.NewSCFQ(nil) },
		func() sched.Scheduler { return sched.NewWFQ(nil) },
		func() sched.Scheduler { return sched.NewVirtualClock(nil) },
	}
	for _, f := range mk {
		s := f()
		d := harness.New(4, s)
		src := rng.New(1234)
		lens := rng.NewUniform(1, 32)
		sentFlits := int64(0)
		arrived := 0
		for step := 0; step < 5000; step++ {
			if src.Bernoulli(0.6) || d.Backlog() == 0 {
				p := pkt(src.Intn(4), lens.Draw(src))
				d.Arrive(p)
				arrived++
			} else {
				d.ServeOne()
			}
		}
		served := len(d.Drain())
		total := 0
		for f := 0; f < 4; f++ {
			sentFlits += d.Served(f)
			total += d.QueueLen(f)
		}
		if total != 0 {
			t.Errorf("%s left %d packets queued after Drain", s.Name(), total)
		}
		_ = served
		if d.Backlog() != 0 {
			t.Errorf("%s backlog accounting broken", s.Name())
		}
		if sentFlits == 0 {
			t.Errorf("%s served no flits", s.Name())
		}
	}
}

func TestGPSEqualSplit(t *testing.T) {
	g := sched.NewGPS(3, nil)
	for f := 0; f < 3; f++ {
		g.Arrive(f, 100)
	}
	for c := 0; c < 30; c++ {
		g.Step()
	}
	for f := 0; f < 3; f++ {
		if got := g.Served(f); got < 9.999 || got > 10.001 {
			t.Errorf("GPS served %v to flow %d, want 10", got, f)
		}
	}
}

func TestGPSRedistributesOnDrain(t *testing.T) {
	g := sched.NewGPS(2, nil)
	g.Arrive(0, 1) // tiny backlog drains mid-way
	g.Arrive(1, 100)
	for c := 0; c < 10; c++ {
		g.Step()
	}
	if got := g.Served(0); got != 1 {
		t.Errorf("flow 0 served %v, want exactly its 1-flit backlog", got)
	}
	if got := g.Served(1); got < 8.999 || got > 9.001 {
		t.Errorf("flow 1 served %v, want 9 (rest of capacity)", got)
	}
	if g.Backlog(0) != 0 {
		t.Error("flow 0 backlog should be 0")
	}
}

func TestGPSWeighted(t *testing.T) {
	g := sched.NewGPS(2, func(f int) float64 { return []float64{1, 3}[f] })
	g.Arrive(0, 1000)
	g.Arrive(1, 1000)
	for c := 0; c < 100; c++ {
		g.Step()
	}
	r := g.Served(1) / g.Served(0)
	if r < 2.999 || r > 3.001 {
		t.Errorf("weighted GPS ratio %v, want 3", r)
	}
}

func TestGPSIdle(t *testing.T) {
	g := sched.NewGPS(2, nil)
	g.Step() // must not panic or serve anything
	if g.Served(0) != 0 || g.Served(1) != 0 {
		t.Error("idle GPS served work")
	}
}
