// Command minsim runs an omega multistage interconnection network —
// the fabric class inside SP2-style switches for parallel systems —
// with a selectable per-output arbitration discipline, reporting
// per-source throughput into a hotspot terminal and end-to-end
// latency. The binary merge tree into the hotspot makes arbitration
// fairness compound visibly: shares are positional (sources that
// merge later get more — the parking-lot effect), but under ERR
// same-depth sources stay even regardless of packet length, while
// PBRR hands long-packet sources several times their peers' share.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/min"
	"repro/internal/plot"
	"repro/internal/rng"
	"repro/internal/sched"
)

func main() {
	var (
		terminals = flag.Int("terminals", 8, "terminals (power of two >= 4)")
		vcs       = flag.Int("vcs", 2, "virtual channels per switch port")
		buf       = flag.Int("buf", 8, "input VC buffer depth in flits")
		arb       = flag.String("arb", "err", "arbitration: err, pbrr")
		hotspot   = flag.Int("hotspot", 0, "hotspot terminal all others flood")
		longIn    = flag.Int("longin", 3, "terminal whose packets are 8x longer (-1 disables)")
		cycles    = flag.Int64("cycles", 100_000, "simulation cycles")
		seed      = flag.Uint64("seed", 1, "random seed (packet lengths)")
	)
	flag.Parse()
	if err := run(*terminals, *vcs, *buf, *arb, *hotspot, *longIn, *cycles, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "minsim: %v\n", err)
		os.Exit(1)
	}
}

func run(terminals, vcs, buf int, arb string, hotspot, longIn int, cycles int64, seed uint64) error {
	var newArb func() sched.Scheduler
	switch arb {
	case "err":
		newArb = func() sched.Scheduler { return core.New() }
	case "pbrr":
		newArb = func() sched.Scheduler { return sched.NewPBRR() }
	default:
		return fmt.Errorf("unknown arbiter %q", arb)
	}
	net, err := min.NewOmega(min.Config{
		Terminals: terminals, VCs: vcs, BufFlits: buf, NewArb: newArb,
	})
	if err != nil {
		return err
	}
	src := rng.New(seed)
	short := rng.NewUniform(1, 4)
	long := rng.NewUniform(8, 32)
	for c := int64(0); c < cycles; c++ {
		for term := 0; term < terminals; term++ {
			if term == hotspot || net.PendingAt(term) >= 2 {
				continue
			}
			dist := rng.LengthDist(short)
			if term == longIn {
				dist = long
			}
			net.Send(term, hotspot, dist.Draw(src))
		}
		net.Step()
	}
	fmt.Printf("omega %d terminals (%d stages), arb=%s, hotspot=%d, %d cycles\n",
		terminals, net.Stages(), arb, hotspot, cycles)
	fmt.Printf("latency: mean %.1f cycles (n=%d)\n\n", net.Latency.Mean(), net.Latency.N())
	labels := make([]string, 0, terminals-1)
	flits := make([]float64, 0, terminals-1)
	for term := 0; term < terminals; term++ {
		if term == hotspot {
			continue
		}
		l := fmt.Sprintf("src %d", term)
		if term == longIn {
			l += " (8x len)"
		}
		labels = append(labels, l)
		flits = append(flits, float64(net.DeliveredFlits[term]))
	}
	return plot.Bar(os.Stdout, "Flits delivered to the hotspot per source", labels, flits, 50)
}
