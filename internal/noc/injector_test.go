package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestInjectorMaxPending(t *testing.T) {
	m := testMesh(t, 2)
	src := rng.New(3)
	inj := NewInjector(m, 1.0, Uniform{Nodes: m.Nodes()}, rng.Constant{Length: 64}, src)
	inj.MaxPending = 2
	// With rate 1 and giant packets the mesh cannot keep up; pending
	// must cap at MaxPending per node.
	for c := 0; c < 200; c++ {
		inj.Step()
		m.Step()
		for node := 0; node < m.Nodes(); node++ {
			if got := m.PendingAt(node); got > 2 {
				t.Fatalf("node %d pending %d > MaxPending", node, got)
			}
		}
	}
}

func TestInjectorRateValidation(t *testing.T) {
	m := testMesh(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("rate > 1 accepted")
		}
	}()
	NewInjector(m, 1.5, Uniform{Nodes: 4}, rng.Constant{Length: 1}, rng.New(1))
}

func TestTransposeTrafficDrains(t *testing.T) {
	m := testMesh(t, 4)
	src := rng.New(7)
	inj := NewInjector(m, 0.03, Transpose{K: 4}, rng.NewUniform(1, 8), src)
	for c := 0; c < 10000; c++ {
		inj.Step()
		m.Step()
	}
	if !m.Drain(100000) {
		t.Fatalf("transpose traffic stuck; %d in flight", m.InFlight())
	}
}

func TestSendValidation(t *testing.T) {
	m := testMesh(t, 2)
	for name, f := range map[string]func(){
		"bad src":    func() { m.Send(-1, 0, 1) },
		"bad dst":    func() { m.Send(0, 99, 1) },
		"bad length": func() { m.Send(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestWERRArbiterInMesh(t *testing.T) {
	// Weighted ERR as a router arbiter: local-port flows (injection)
	// get double weight. Just exercise delivery end to end.
	vcs := 2
	m, err := NewMesh(Config{
		K: 3, VCs: vcs, BufFlits: 8,
		NewArb: func() sched.Scheduler {
			return core.NewWeighted(func(flow int) int64 {
				if flow/vcs == PortLocal {
					return 2
				}
				return 1
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			m.Send(s, d, 3)
		}
	}
	if !m.Drain(20000) {
		t.Fatal("weighted-arbiter mesh did not drain")
	}
}
