package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// WeightedParams parameterises the weighted-ERR extension experiment
// (the differentiated-services scenario the paper's introduction
// motivates: "customer-specific differentiated services in the
// Internet, or in parallel systems that are used, for example, as
// video-servers"). Three service classes with weights 1:2:4 share one
// output; all classes stay backlogged; throughput must split in
// proportion to the weights and each class's delay must reflect its
// share.
type WeightedParams struct {
	Cycles  int64
	Weights []int64
	Seed    uint64
	// Workers caps the worker pool (0 = GOMAXPROCS, 1 = serial). The
	// experiment is a single simulation, so the knob only exists for
	// uniformity with the other runners; the result never depends on
	// it.
	Workers int
	// Progress, if set, observes grid-job completions (see
	// exec.WithProgress); it never affects the result.
	Progress exec.Progress `json:"-"`
	// Collector, if set, accumulates registry telemetry from every
	// grid job (see SimConfig.Collector); it never affects the result.
	Collector *obs.Collector `json:"-"`
	// Trace, if set, is the packet flight recorder wired into every
	// grid job (see SimConfig.Trace); each job becomes one span track.
	Trace *trace.EngineTrace `json:"-"`
	// Robustness carries the fault-injection and invariant-checking
	// knobs. Checkpointing is not supported here: the experiment is a
	// single simulation whose raw result does not round-trip JSON, and
	// there is no grid to resume.
	Robustness
}

// DefaultWeightedParams returns defaults.
func DefaultWeightedParams() WeightedParams {
	return WeightedParams{Cycles: 1_000_000, Weights: []int64{1, 2, 4}, Seed: 1}
}

// WeightedResult holds the per-class shares.
type WeightedResult struct {
	Params WeightedParams
	// Flits[i] is the service received by class i; Share[i] the
	// fraction of the total; WantShare[i] the weight-proportional
	// target.
	Flits     []int64
	Share     []float64
	WantShare []float64
	// MeanDelay[i] is class i's mean packet delay in cycles.
	MeanDelay []float64
}

// RunWeighted runs the weighted-ERR experiment.
func RunWeighted(p WeightedParams) (*WeightedResult, error) {
	n := len(p.Weights)
	if n < 2 {
		return nil, fmt.Errorf("experiments: weighted run needs >= 2 classes")
	}
	if p.Checkpoint != "" {
		return nil, fmt.Errorf("experiments: weighted run does not support checkpointing (single simulation, nothing to resume)")
	}
	sims, err := exec.Run([]exec.Job[*SimResult]{func() (*SimResult, error) {
		e := core.NewWeighted(func(f int) int64 { return p.Weights[f] })
		src := rng.New(p.Seed)
		sources := make([]traffic.Source, n)
		for f := 0; f < n; f++ {
			sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(1, 32), src.Split())
		}
		return RunSim(SimConfig{
			Flows:     n,
			Scheduler: e,
			Source:    traffic.NewMulti(sources...),
			Cycles:    p.Cycles,
			Collector: p.Collector,
			Trace:     p.Trace,
			FaultSpec: p.Faults,
			FaultSeed: p.faultSeed(p.Seed, 0),
			Check:     p.Check,
		})
	}}, p.Workers, exec.WithProgress(p.Progress))
	if err != nil {
		return nil, err
	}
	sim := sims[0]
	res := &WeightedResult{Params: p}
	var total, wsum int64
	for f := 0; f < n; f++ {
		total += sim.Throughput.Flits(f)
		wsum += p.Weights[f]
	}
	for f := 0; f < n; f++ {
		res.Flits = append(res.Flits, sim.Throughput.Flits(f))
		res.Share = append(res.Share, float64(sim.Throughput.Flits(f))/float64(total))
		res.WantShare = append(res.WantShare, float64(p.Weights[f])/float64(wsum))
		res.MeanDelay = append(res.MeanDelay, sim.Delays.MeanOf(f))
	}
	return res, nil
}

// Render writes the per-class table.
func (r *WeightedResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Weighted ERR (extension) — %d cycles, backlogged classes\n", r.Params.Cycles)
	fmt.Fprintln(tw, "class\tweight\tflits\tshare\ttarget share\tmean delay (cycles)")
	for f := range r.Flits {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\t%.1f\n",
			f, r.Params.Weights[f], r.Flits[f], r.Share[f], r.WantShare[f], r.MeanDelay[f])
	}
	return tw.Flush()
}
