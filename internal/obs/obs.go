// Package obs is the observability substrate of the reproduction: a
// lightweight metrics registry (counters, gauges, fixed-size vectors
// and histograms with approximate quantiles), an adapter that wires a
// Collector onto the engine's existing observation callbacks, JSONL
// run manifests that make every regenerated artifact traceable to the
// run that produced it, a throttled progress renderer for long sweeps,
// and a debug HTTP endpoint (net/http/pprof plus an expvar snapshot of
// the registry) for profiling live runs.
//
// Hot-path discipline: every metric mutation is a fixed number of
// atomic operations on memory allocated at registration time — no
// allocation, no locks, no map lookups. Metric handles are resolved
// once (Registry.Counter, Registry.Histogram, ...) and then mutated
// directly, so an engine forwarding one flit per cycle pays one atomic
// add per cycle for per-flow service accounting.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the value to stay monotone; this is
// not enforced).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 metric that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d and returns the new value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Vec is a fixed-size vector of int64 cells, for per-flow (or other
// small-cardinality) accounting where a map lookup per event would be
// too slow. Cells are indexed 0..n-1.
type Vec struct {
	vals []atomic.Int64
}

// Add adds d to cell i.
func (v *Vec) Add(i int, d int64) { v.vals[i].Add(d) }

// Value returns cell i.
func (v *Vec) Value(i int) int64 { return v.vals[i].Load() }

// Len returns the number of cells.
func (v *Vec) Len() int { return len(v.vals) }

// Sum returns the sum over all cells.
func (v *Vec) Sum() int64 {
	var s int64
	for i := range v.vals {
		s += v.vals[i].Load()
	}
	return s
}

// Values returns a copy of all cells.
func (v *Vec) Values() []int64 {
	out := make([]int64, len(v.vals))
	for i := range v.vals {
		out[i] = v.vals[i].Load()
	}
	return out
}

// Registry is a named collection of metrics. Registration
// (get-or-create) takes a lock; mutation of the returned handles does
// not. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	vecs     map[string]*Vec
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		vecs:     make(map[string]*Vec),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one ServeDebug
// exposes by default.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Vec returns the n-cell vector with the given name, creating it on
// first use. An existing vector is returned as-is even if its size
// differs from n.
func (r *Registry) Vec(name string, n int) *Vec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = &Vec{vals: make([]atomic.Int64, n)}
		r.vecs[name] = v
	}
	return v
}

// Histogram returns the histogram with the given name, creating it
// with opts on first use. An existing histogram is returned as-is;
// opts are ignored then.
func (r *Registry) Histogram(name string, opts HistogramOpts) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(opts)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Vecs       map[string][]int64           `json:"vecs,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Values are read with
// atomic loads, so a snapshot taken while a simulation runs is safe,
// though not a single consistent cut across metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.vecs) > 0 {
		s.Vecs = make(map[string][]int64, len(r.vecs))
		for name, v := range r.vecs {
			s.Vecs[name] = v.Values()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all registered metrics, for tests
// and debug listings.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.vecs {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
