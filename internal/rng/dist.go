package rng

import "math"

// LengthDist draws packet lengths in flits. Implementations must
// always return a length in [1, Max()].
type LengthDist interface {
	// Draw returns the next packet length in flits, >= 1.
	Draw(s *Source) int
	// Max returns the largest length the distribution can produce —
	// the paper's "Max", the largest packet that may *potentially*
	// arrive. (The paper's "m" is the largest that actually arrived,
	// which callers observe empirically.)
	Max() int
	// Name identifies the distribution in experiment output.
	Name() string
}

// Uniform is a discrete uniform length distribution on [Lo, Hi],
// the paper's U[1,64] and U[1,128] workloads.
type Uniform struct {
	Lo, Hi int
}

// NewUniform returns a uniform distribution on [lo, hi]. It panics if
// the range is empty or lo < 1.
func NewUniform(lo, hi int) Uniform {
	if lo < 1 || hi < lo {
		panic("rng: invalid uniform length range")
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Draw implements LengthDist.
func (u Uniform) Draw(s *Source) int { return s.IntRange(u.Lo, u.Hi) }

// Max implements LengthDist.
func (u Uniform) Max() int { return u.Hi }

// Name implements LengthDist.
func (u Uniform) Name() string { return "uniform" }

// Constant always returns the same length.
type Constant struct {
	Length int
}

// Draw implements LengthDist.
func (c Constant) Draw(*Source) int { return c.Length }

// Max implements LengthDist.
func (c Constant) Max() int { return c.Length }

// Name implements LengthDist.
func (c Constant) Name() string { return "constant" }

// TruncExp is the truncated exponential length distribution used in
// the paper's Figure 6: lengths exponentially distributed with rate
// Lambda, truncated to the range [Lo, Hi] (the paper uses λ = 0.2 on
// [1, 64]). Large packets are much rarer than small ones, which is the
// regime where ERR's 3m bound beats DRR's Max + 2m.
type TruncExp struct {
	Lambda float64
	Lo, Hi int
}

// NewTruncExp returns the distribution, panicking on invalid
// parameters.
func NewTruncExp(lambda float64, lo, hi int) TruncExp {
	if lambda <= 0 || lo < 1 || hi < lo {
		panic("rng: invalid truncated exponential parameters")
	}
	return TruncExp{Lambda: lambda, Lo: lo, Hi: hi}
}

// Draw implements LengthDist by rejection from the exponential so the
// shape inside the window is exactly exponential.
func (e TruncExp) Draw(s *Source) int {
	for {
		x := e.Lo + int(math.Floor(s.Exp(e.Lambda)))
		if x <= e.Hi {
			return x
		}
	}
}

// Max implements LengthDist.
func (e TruncExp) Max() int { return e.Hi }

// Name implements LengthDist.
func (e TruncExp) Name() string { return "truncexp" }

// Bimodal draws Short with probability PShort and Long otherwise —
// a stress distribution for the fairness ablations (most packets tiny,
// occasional maximal packets, maximising the gap between m's typical
// and worst-case influence).
type Bimodal struct {
	Short, Long int
	PShort      float64
}

// Draw implements LengthDist.
func (b Bimodal) Draw(s *Source) int {
	if s.Bernoulli(b.PShort) {
		return b.Short
	}
	return b.Long
}

// Max implements LengthDist.
func (b Bimodal) Max() int {
	if b.Long > b.Short {
		return b.Long
	}
	return b.Short
}

// Name implements LengthDist.
func (b Bimodal) Name() string { return "bimodal" }

// BoundedPareto draws heavy-tailed lengths on [Lo, Hi] with shape
// Alpha, for the heavy-tail ablation workloads.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi int
}

// Draw implements LengthDist by inverse transform of the bounded
// Pareto CDF.
func (p BoundedPareto) Draw(s *Source) int {
	l := float64(p.Lo)
	h := float64(p.Hi)
	u := s.Float64()
	la := math.Pow(l, p.Alpha)
	ha := math.Pow(h, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	n := int(math.Floor(x))
	if n < p.Lo {
		n = p.Lo
	}
	if n > p.Hi {
		n = p.Hi
	}
	return n
}

// Max implements LengthDist.
func (p BoundedPareto) Max() int { return p.Hi }

// Name implements LengthDist.
func (p BoundedPareto) Name() string { return "pareto" }
