package wormhole

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/sched"
)

// saturatedRouter builds a 2-port router with both inputs feeding
// output 1 (a sink) and keeps it saturated: the shape of the
// steady-state forwarding hot path, with link arbitration between two
// competing worms on every cycle.
func saturatedRouter(t testing.TB) (*Router, func(cycle int64)) {
	cfg := Config{
		Ports: 2, VCs: 2, BufFlits: 8,
		NewArb: func() sched.Scheduler { return core.New() },
		Route:  func(dst int) int { return 1 },
	}
	r, err := NewRouter(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ConnectEndpoint(r, 0, &Sink{})
	ConnectEndpoint(r, 1, &Sink{})
	// One endlessly repeated 4-flit packet per input VC; the router
	// never inspects PktID/Seq beyond Kind, so recycling one packet is
	// indistinguishable from a fresh stream.
	pkt := flit.Packet{Flow: 0, Length: 4, Dst: 9}
	flits := pkt.Flits()
	idx := make([]int, cfg.Ports*cfg.VCs)
	feed := func(cycle int64) {
		for p := 0; p < cfg.Ports; p++ {
			for v := 0; v < cfg.VCs; v++ {
				if r.InputFree(p, v) > 0 {
					i := &idx[p*cfg.VCs+v]
					r.Inject(p, v, flits[*i], cycle)
					*i = (*i + 1) % len(flits)
				}
			}
		}
	}
	return r, feed
}

// TestRouterComputeAllocsZero gates the zero-allocation steady state
// at the router level: once the FIFOs, work-lists, effect buffers, and
// arbiter state are warm, a full Step cycle — feed, Compute, Apply —
// must not allocate, under sustained saturation of every input VC.
func TestRouterComputeAllocsZero(t *testing.T) {
	r, feed := saturatedRouter(t)
	cycle := int64(0)
	for c := 0; c < 64; c++ {
		cycle++
		feed(cycle)
		r.Step(cycle)
	}
	got := testing.AllocsPerRun(200, func() {
		cycle++
		feed(cycle)
		r.Step(cycle)
	})
	if got != 0 {
		t.Errorf("saturated Router.Step allocates %.1f times per cycle in steady state, want 0", got)
	}
}
