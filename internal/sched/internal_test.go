package sched

import (
	"math"
	"testing"
	"testing/quick"
)

// White-box tests of the shared machinery: the tag heap and ring
// buffers every discipline builds on.

func TestTagHeapOrdering(t *testing.T) {
	h := newTagHeap()
	h.push(3, 5.0)
	h.push(1, 2.0)
	h.push(2, 9.0)
	if f, tag := h.peekMin(); f != 1 || tag != 2.0 {
		t.Fatalf("peekMin = (%d,%v)", f, tag)
	}
	order := []int{}
	for h.Len() > 0 {
		f, _ := h.popMin()
		order = append(order, f)
	}
	want := []int{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestTagHeapTieBreakDeterministic(t *testing.T) {
	h := newTagHeap()
	h.push(7, 1.0)
	h.push(2, 1.0)
	h.push(5, 1.0)
	order := []int{}
	for h.Len() > 0 {
		f, _ := h.popMin()
		order = append(order, f)
	}
	// Equal tags break ties by flow id.
	want := []int{2, 5, 7}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie-break order %v, want %v", order, want)
		}
	}
}

func TestTagHeapPanics(t *testing.T) {
	h := newTagHeap()
	assertPanics(t, "popMin empty", func() { h.popMin() })
	assertPanics(t, "peekMin empty", func() { h.peekMin() })
	h.push(1, 1.0)
	assertPanics(t, "duplicate push", func() { h.push(1, 2.0) })
}

// Property: the tag heap pops tags in non-decreasing order for any
// insertion sequence of unique flows.
func TestTagHeapSortedProperty(t *testing.T) {
	prop := func(tags []float64) bool {
		h := newTagHeap()
		for i, tg := range tags {
			if math.IsNaN(tg) {
				tg = 0 // NaN tags are meaningless; normalise
			}
			h.push(i, tg)
		}
		last := math.Inf(-1)
		for h.Len() > 0 {
			_, tg := h.popMin()
			if tg < last {
				return false
			}
			last = tg
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFifoIntWrap(t *testing.T) {
	var q fifoInt
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			q.push(round*5 + i)
		}
		for i := 0; i < 5; i++ {
			if got := q.pop(); got != round*5+i {
				t.Fatalf("round %d: got %d", round, got)
			}
		}
	}
	if q.len() != 0 || !q.empty() {
		t.Error("fifo not empty after balanced ops")
	}
	assertPanics(t, "pop empty", func() { q.pop() })
	assertPanics(t, "peek empty", func() { q.peek() })
}

func TestFifoF64Wrap(t *testing.T) {
	var q fifoF64
	for i := 0; i < 100; i++ {
		q.push(float64(i))
	}
	for i := 0; i < 100; i++ {
		if q.peek() != float64(i) {
			t.Fatalf("peek at %d wrong", i)
		}
		if q.pop() != float64(i) {
			t.Fatalf("pop at %d wrong", i)
		}
	}
	assertPanics(t, "pop empty", func() { q.pop() })
}

func TestWeightFnValidation(t *testing.T) {
	w := weightFn(func(int) float64 { return -1 })
	assertPanics(t, "negative weight", func() { w(0) })
	def := weightFn(nil)
	if def(42) != 1 {
		t.Error("nil weight fn should default to 1")
	}
}

func TestDRRPerFlowQuantum(t *testing.T) {
	d := NewDRR(0, func(flow int) int64 { return int64(flow+1) * 10 })
	d.OnArrival(0, true)
	d.OnArrivalLength(0, 10)
	d.OnArrival(1, true)
	d.OnArrivalLength(1, 20)
	// Flow 0: quantum 10 fits its 10-flit packet; flow 1: quantum 20
	// fits its 20-flit packet. Both serve on first visit.
	if f := d.NextFlow(); f != 0 {
		t.Fatalf("first flow %d", f)
	}
	d.OnPacketDone(0, 10, true)
	if f := d.NextFlow(); f != 1 {
		t.Fatalf("second flow %d", f)
	}
	d.OnPacketDone(1, 20, true)
}

func TestNewDRRValidation(t *testing.T) {
	assertPanics(t, "quantum 0", func() { NewDRR(0, nil) })
}

// A per-flow quantum function returning < 1 must panic at first use,
// naming the flow and value — before the fix, NextFlow's rotate loop
// spun forever because the deficit never grew to fit a packet.
func TestDRRPerFlowQuantumValidation(t *testing.T) {
	d := NewDRR(0, func(flow int) int64 { return int64(flow) }) // flow 0 -> 0
	d.OnArrival(0, true)
	d.OnArrivalLength(0, 4)
	assertPanicsWith(t, "per-flow quantum 0", "sched: DRR quantum 0 < 1 for flow 0",
		func() { d.NextFlow() })
}

// Validation panics must name the offending flow and value across
// the round-robin family, so a bad weight table is diagnosable from
// the message alone.
func TestRoundRobinValidationMessages(t *testing.T) {
	cases := []struct {
		name, want string
		trigger    func()
	}{
		{"WRR zero weight", "sched: WRR weight 0 < 1 for flow 3", func() {
			w := NewWRR(func(int) int { return 0 })
			w.OnArrival(3, true)
			w.NextFlow()
		}},
		{"IWRR negative weight", "sched: IWRR weight -2 < 1 for flow 1", func() {
			s := NewIWRR(func(int) int { return -2 })
			s.OnArrival(1, true)
			s.NextFlow()
		}},
		{"DRR fixed quantum", "sched: DRR quantum -5 < 1", func() {
			NewDRR(-5, nil)
		}},
		{"DRR per-flow quantum", "sched: DRR quantum -1 < 1 for flow 2", func() {
			d := NewDRR(0, func(int) int64 { return -1 })
			d.OnArrival(2, true)
			d.OnArrivalLength(2, 4)
			d.NextFlow()
		}},
		{"DRR-OPT missing flow", "sched: DRR-OPT has no quantum for flow 1 (table has 1 flows)", func() {
			d := NewOptDRR([]int64{8})
			d.OnArrival(1, true)
			d.OnArrivalLength(1, 4)
			d.NextFlow()
		}},
	}
	for _, c := range cases {
		assertPanicsWith(t, c.name, c.want, c.trigger)
	}
}

func TestWRRInvalidWeightPanics(t *testing.T) {
	w := NewWRR(func(int) int { return 0 })
	w.OnArrival(0, true)
	assertPanics(t, "weight 0", func() { w.NextFlow() })
}

func assertPanicsWith(t *testing.T, name, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s did not panic", name)
			return
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Errorf("%s panicked with %v, want %q", name, r, want)
		}
	}()
	f()
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
