package sched

import "container/heap"

// WFQ is Weighted Fair Queuing (Demers, Keshav & Shenker, SIGCOMM
// 1989; PGPS of Parekh & Gallager): packets are stamped with the
// finish number they would have under the fluid GPS reference and
// served in increasing finish-number order,
//
//	S_i^k = max(V(a), F_i^{k-1}),   F_i^k = S_i^k + L_i^k / w_i,
//
// where V is GPS *virtual time*, computed exactly by tracking the
// fluid system's breakpoints: between events V advances at rate
// C / W(t), where W(t) is the total weight of fluid-backlogged flows,
// and W changes whenever V crosses a packet's finish tag (a fluid
// departure). Exact virtual time is what gives WFQ the paper's
// Table 1 fairness bound of m; the common one-term approximations
// can exceed it.
//
// WFQ is ClockAware (it needs real time to advance V) and
// LengthAware (tags need lengths at arrival), with O(log n) work.
type WFQ struct {
	weight func(flow int) float64

	// Packetized server state: flows ordered by head finish tag.
	heap *tagHeap
	tags map[int]*fifoF64

	// Fluid GPS state for exact virtual time.
	vtime    float64
	lastReal float64
	activeW  float64
	fluid    *finHeap        // all not-yet-fluid-departed packet tags
	fluidCnt map[int]int     // per-flow count of packets in fluid
	lastFin  map[int]float64 // last assigned finish tag per flow

	now     float64
	current int
	pending int
}

// finHeap is a min-heap of (finish tag, flow) for fluid departures.
type finHeap []finEntry

type finEntry struct {
	tag  float64
	flow int
}

func (h finHeap) Len() int           { return len(h) }
func (h finHeap) Less(i, j int) bool { return h[i].tag < h[j].tag }
func (h finHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *finHeap) Push(x any)        { *h = append(*h, x.(finEntry)) }
func (h *finHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// NewWFQ returns a WFQ scheduler with exact GPS virtual time; nil
// weight means equal weights.
func NewWFQ(weight func(flow int) float64) *WFQ {
	return &WFQ{
		weight:   weightFn(weight),
		heap:     newTagHeap(),
		tags:     make(map[int]*fifoF64),
		fluid:    &finHeap{},
		fluidCnt: make(map[int]int),
		lastFin:  make(map[int]float64),
		current:  -1,
		pending:  -1,
	}
}

// Name implements Scheduler.
func (w *WFQ) Name() string { return "WFQ" }

// VirtualTime advances the fluid reference to the current real time
// and returns V — exposed for tests and instrumentation.
func (w *WFQ) VirtualTime() float64 {
	w.advance(w.now)
	return w.vtime
}

// SetNow implements ClockAware.
func (w *WFQ) SetNow(cycle int64) { w.now = float64(cycle) }

// advance moves the fluid GPS reference forward to real time t,
// crossing departure breakpoints as V catches up with finish tags.
func (w *WFQ) advance(t float64) {
	for w.lastReal < t {
		if w.activeW == 0 {
			// Fluid system idle: virtual time is frozen by convention
			// (tags of reactivating flows are clamped with max(V, .)).
			w.lastReal = t
			return
		}
		// Next fluid departure.
		for w.fluid.Len() > 0 && (*w.fluid)[0].tag <= w.vtime {
			w.departOne()
			if w.activeW == 0 {
				break
			}
		}
		if w.activeW == 0 {
			continue
		}
		if w.fluid.Len() == 0 {
			// No pending work but activeW > 0 cannot happen; guard.
			w.activeW = 0
			continue
		}
		next := (*w.fluid)[0].tag
		realNeeded := (next - w.vtime) * w.activeW
		if w.lastReal+realNeeded <= t {
			w.vtime = next
			w.lastReal += realNeeded
			w.departOne()
		} else {
			w.vtime += (t - w.lastReal) / w.activeW
			w.lastReal = t
		}
	}
}

// departOne removes the smallest-tag packet from the fluid system.
func (w *WFQ) departOne() {
	e := heap.Pop(w.fluid).(finEntry)
	w.fluidCnt[e.flow]--
	if w.fluidCnt[e.flow] == 0 {
		w.activeW -= w.weight(e.flow)
		if w.activeW < 1e-9 {
			w.activeW = 0
		}
	}
}

// OnArrival implements Scheduler.
func (w *WFQ) OnArrival(flow int, wasEmpty bool) {
	if w.pending != -1 {
		panic("sched: WFQ OnArrival without OnArrivalLength for previous packet")
	}
	w.pending = flow
}

// OnArrivalLength implements LengthAware.
func (w *WFQ) OnArrivalLength(flow int, length int) {
	if w.pending != flow {
		panic("sched: WFQ OnArrivalLength does not match OnArrival")
	}
	w.pending = -1
	w.advance(w.now)
	start := w.vtime
	if f := w.lastFin[flow]; f > start {
		start = f
	}
	fin := start + float64(length)/w.weight(flow)
	w.lastFin[flow] = fin
	// Fluid bookkeeping.
	if w.fluidCnt[flow] == 0 {
		w.activeW += w.weight(flow)
	}
	w.fluidCnt[flow]++
	heap.Push(w.fluid, finEntry{tag: fin, flow: flow})
	// Packetized bookkeeping.
	q := w.tags[flow]
	if q == nil {
		q = &fifoF64{}
		w.tags[flow] = q
	}
	wasIdle := q.empty() && flow != w.current
	q.push(fin)
	if wasIdle {
		w.heap.push(flow, fin)
	}
}

// NextFlow implements Scheduler.
func (w *WFQ) NextFlow() int {
	if w.current != -1 {
		panic("sched: WFQ.NextFlow while a packet is in service")
	}
	flow, _ := w.heap.popMin()
	w.current = flow
	return flow
}

// OnPacketDone implements Scheduler.
func (w *WFQ) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	if flow != w.current {
		panic("sched: WFQ completion for a flow not in service")
	}
	w.current = -1
	q := w.tags[flow]
	q.pop()
	if !q.empty() {
		w.heap.push(flow, q.peek())
	}
}

var (
	_ LengthAware = (*WFQ)(nil)
	_ ClockAware  = (*WFQ)(nil)
)
