package harness

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/sched"
)

func TestDriverBasics(t *testing.T) {
	d := New(2, sched.NewFCFS())
	if d.Backlog() != 0 {
		t.Fatal("fresh driver has backlog")
	}
	d.Arrive(flit.Packet{Flow: 0, Length: 3})
	d.Arrive(flit.Packet{Flow: 1, Length: 5})
	if d.Backlog() != 2 || d.QueueLen(0) != 1 || d.QueueLen(1) != 1 {
		t.Fatal("backlog accounting wrong")
	}
	p := d.ServeOne()
	if p.Flow != 0 || d.Served(0) != 3 {
		t.Fatalf("first service %+v, served=%d", p, d.Served(0))
	}
	rest := d.Drain()
	if len(rest) != 1 || rest[0].Flow != 1 || d.Served(1) != 5 {
		t.Fatal("drain wrong")
	}
}

func TestDriverCostFnAndOnServe(t *testing.T) {
	d := New(1, sched.NewPBRR())
	d.CostFn = func(p flit.Packet) int64 { return int64(p.Length) * 3 }
	var gotCost int64
	d.OnServe = func(p flit.Packet, cost int64) { gotCost = cost }
	d.Arrive(flit.Packet{Flow: 0, Length: 4})
	d.ServeOne()
	if gotCost != 12 {
		t.Errorf("cost %d, want 12", gotCost)
	}
	// Served tracks flits, not cost.
	if d.Served(0) != 4 {
		t.Errorf("Served = %d, want 4", d.Served(0))
	}
}

func TestDriverPanics(t *testing.T) {
	d := New(1, sched.NewFCFS())
	assertPanics(t, "ServeOne empty", func() { d.ServeOne() })
	assertPanics(t, "invalid packet", func() { d.Arrive(flit.Packet{Flow: 0, Length: 0}) })
}

func TestServeNStopsAtDrain(t *testing.T) {
	d := New(1, sched.NewFCFS())
	d.Arrive(flit.Packet{Flow: 0, Length: 1})
	got := d.ServeN(10)
	if len(got) != 1 {
		t.Fatalf("ServeN returned %d packets, want 1", len(got))
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
