package metrics

import "testing"

// BenchmarkServiceLogRecord measures the per-cycle cost of the service
// log with and without the capacity hint. The hinted variant should
// show near-zero allocations: the unhinted one pays append doubling —
// on a multi-million-cycle run that is ~20 re-copies of a multi-MB
// sequence.
func BenchmarkServiceLogRecord(b *testing.B) {
	run := func(b *testing.B, hint int64) {
		b.ReportAllocs()
		l := NewServiceLogCap(8, 0, hint)
		for i := 0; i < b.N; i++ {
			l.Record(i & 7)
		}
	}
	b.Run("unhinted", func(b *testing.B) { run(b, 0) })
	b.Run("hinted", func(b *testing.B) { run(b, int64(b.N)) })
}
