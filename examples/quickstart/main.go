// Quickstart: schedule three flows with Elastic Round Robin.
//
// Three flows with very different packet sizes share one output that
// forwards one flit per cycle. ERR needs no packet lengths in advance
// and still gives each flow an equal share of the output.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/traffic"
)

func main() {
	src := rng.New(42)

	// Three always-backlogged flows: tiny, medium and huge packets.
	source := traffic.NewMulti(
		traffic.NewBacklogged(0, 4, rng.Constant{Length: 2}, src.Split()),
		traffic.NewBacklogged(1, 4, rng.NewUniform(8, 24), src.Split()),
		traffic.NewBacklogged(2, 4, rng.NewUniform(48, 64), src.Split()),
	)

	throughput := metrics.NewThroughputTable(3, flit.DefaultFlitBytes)
	e, err := engine.NewEngine(engine.Config{
		Flows:     3,
		Scheduler: core.New(), // the paper's ERR, Figure 1 verbatim
		Source:    source,
		OnFlit:    func(cycle int64, flow int) { throughput.Serve(flow, 1) },
	})
	if err != nil {
		log.Fatal(err)
	}

	const cycles = 100_000
	e.Run(cycles)

	fmt.Printf("ERR over %d cycles (1 flit/cycle):\n", cycles)
	for f := 0; f < 3; f++ {
		fmt.Printf("  flow %d: %6d flits  (%.1f KB)\n", f, throughput.Flits(f), throughput.KBytes(f))
	}
	fmt.Println("\nEach flow holds 1/3 of the output despite 30x packet-size differences,")
	fmt.Println("and ERR never looked at a packet length before dequeuing it.")
}
