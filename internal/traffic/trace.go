package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/flit"
)

// TraceEvent is one recorded arrival: a packet and its arrival cycle.
type TraceEvent struct {
	Cycle  int64
	Flow   int
	Length int
	Dst    int
}

// Recorder wraps a source and records every arrival it produces, so a
// workload can be replayed bit-exactly against several schedulers —
// how the Figure 4/5/6 comparisons hold the workload fixed across
// disciplines.
type Recorder struct {
	Inner  Source
	Events []TraceEvent
}

// NewRecorder returns a recording wrapper around inner.
func NewRecorder(inner Source) *Recorder { return &Recorder{Inner: inner} }

// Arrivals implements Source.
func (r *Recorder) Arrivals(cycle int64, q QueueView) []flit.Packet {
	ps := r.Inner.Arrivals(cycle, q)
	for _, p := range ps {
		r.Events = append(r.Events, TraceEvent{Cycle: cycle, Flow: p.Flow, Length: p.Length, Dst: p.Dst})
	}
	return ps
}

// Replay is a Source that replays a recorded trace. Events must be
// sorted by cycle (Recorder produces them that way).
type Replay struct {
	Events []TraceEvent
	next   int
	buf    []flit.Packet
}

// NewReplay returns a replaying source over events, sorting them by
// cycle (stable, preserving intra-cycle order).
func NewReplay(events []TraceEvent) *Replay {
	es := append([]TraceEvent(nil), events...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Cycle < es[j].Cycle })
	return &Replay{Events: es}
}

// Arrivals implements Source.
func (r *Replay) Arrivals(cycle int64, q QueueView) []flit.Packet {
	r.buf = r.buf[:0]
	for r.next < len(r.Events) && r.Events[r.next].Cycle == cycle {
		e := r.Events[r.next]
		r.buf = append(r.buf, flit.Packet{Flow: e.Flow, Length: e.Length, Dst: e.Dst})
		r.next++
	}
	if len(r.buf) == 0 {
		return nil
	}
	return r.buf
}

// Reset rewinds the replay to the first event.
func (r *Replay) Reset() { r.next = 0 }

// Done reports whether every event has been replayed.
func (r *Replay) Done() bool { return r.next >= len(r.Events) }

// WriteTrace serialises events as one "cycle flow length dst" line
// each.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.Cycle, e.Flow, e.Length, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the format written by WriteTrace.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		var e TraceEvent
		if _, err := fmt.Sscanf(txt, "%d %d %d %d", &e.Cycle, &e.Flow, &e.Length, &e.Dst); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
