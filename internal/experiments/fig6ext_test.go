package experiments

import (
	"strings"
	"testing"
)

func TestFig6ExtGapWidensAsLargePacketsRarify(t *testing.T) {
	p := DefaultFig6ExtParams()
	p.Cycles = 200_000
	p.Intervals = 1_000
	p.PLarges = []float64{0.5, 0.05}
	res, err := RunFig6Ext(p)
	if err != nil {
		t.Fatal(err)
	}
	// When large packets are common, m ~ Max and the two bounds
	// coincide (3m vs Max+2m), so the disciplines are comparable —
	// either may edge out. When large packets are rare, ERR must be
	// clearly fairer (the paper's closing claim).
	if res.AvgFMERR[1] >= res.AvgFMDRR[1] {
		t.Errorf("p=0.05: ERR avg FM %.1f not below DRR %.1f", res.AvgFMERR[1], res.AvgFMDRR[1])
	}
	// And the DRR/ERR gap grows as large packets get rarer.
	gapCommon := res.AvgFMDRR[0] / res.AvgFMERR[0]
	gapRare := res.AvgFMDRR[1] / res.AvgFMERR[1]
	if gapRare <= gapCommon {
		t.Errorf("fairness gap did not widen: %.2fx at p=0.5 vs %.2fx at p=0.05", gapCommon, gapRare)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p_large,ERR,DRR,DRR_over_ERR") {
		t.Error("render missing CSV header")
	}
}
