package fault_test

import (
	"testing"
	"time"

	"repro/internal/fault"
)

func TestServeInjectorNilSafe(t *testing.T) {
	var in *fault.ServeInjector
	if d := in.Delay("any"); d != 0 {
		t.Fatalf("nil injector Delay = %v, want 0", d)
	}
	if c := in.ServeCounters(); c != (fault.ServeCounters{}) {
		t.Fatalf("nil injector counters = %+v, want zero", c)
	}
	if fault.NewServe(nil, 1) != nil {
		t.Fatal("NewServe(nil) != nil")
	}
}

func TestServeInjectorTenantScoping(t *testing.T) {
	spec, err := fault.Parse("slow(p=1,ms=5,tenant=victim)")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewServe(spec, 9)
	if d := in.Delay("bystander"); d != 0 {
		t.Fatalf("Delay(bystander) = %v, want 0", d)
	}
	if d := in.Delay("victim"); d != 5*time.Millisecond {
		t.Fatalf("Delay(victim) = %v, want 5ms", d)
	}
	c := in.ServeCounters()
	if c.Slowed != 1 || c.Stuck != 0 {
		t.Fatalf("counters %+v, want Slowed=1 Stuck=0", c)
	}
}

func TestServeInjectorProbabilityAndDeterminism(t *testing.T) {
	spec, err := fault.Parse("slow(p=0.5,ms=2);stuck(p=0.5,ms=3)")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) []time.Duration {
		in := fault.NewServe(spec, seed)
		out := make([]time.Duration, 200)
		for i := range out {
			out[i] = in.Delay("t")
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs for identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	// Both directives must fire sometimes but not always, and they
	// must draw independently (at least one call where exactly one of
	// the two fired -> delay of 2ms or 3ms alone).
	counts := map[time.Duration]int{}
	for _, d := range a {
		counts[d]++
	}
	if counts[0] == 0 || counts[5*time.Millisecond] == 0 {
		t.Fatalf("degenerate fault pattern: %v", counts)
	}
	if counts[2*time.Millisecond] == 0 || counts[3*time.Millisecond] == 0 {
		t.Fatalf("directives not drawing independently: %v", counts)
	}
	// A different seed yields a different pattern.
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fault pattern identical across different seeds")
	}
}

func TestSpecLoads(t *testing.T) {
	spec, err := fault.Parse("slow(p=0.1,ms=1);burst(tenant=a,rps=100,at=250,dur=500);flood(tenant=b,rps=50)")
	if err != nil {
		t.Fatal(err)
	}
	loads := spec.Loads()
	want := []fault.Load{
		{Tenant: "a", RPS: 100, AtMS: 250, DurMS: 500},
		{Tenant: "b", RPS: 50},
	}
	if len(loads) != len(want) {
		t.Fatalf("Loads() = %+v, want %+v", loads, want)
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("Loads()[%d] = %+v, want %+v", i, loads[i], want[i])
		}
	}
	var nilSpec *fault.Spec
	if nilSpec.Loads() != nil {
		t.Fatal("nil spec Loads() != nil")
	}
}
