package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// instantOK is a handler that returns immediately.
var instantOK = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
})

// sleepMS sleeps for the duration named in the ms query parameter.
var sleepMS = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	if ms := r.URL.Query().Get("ms"); ms != "" {
		var d int
		fmt.Sscanf(ms, "%d", &d)
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	w.WriteHeader(http.StatusOK)
})

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// do issues one request through the server synchronously.
func do(s *Server, method, target, tenant string, hdr map[string]string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(method, target, nil)
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// verifyClean asserts the server's accounting audit finds nothing.
func verifyClean(t *testing.T, s *Server) {
	t.Helper()
	if n, msgs := s.VerifyAccounting(); n != 0 {
		t.Fatalf("accounting violations (%d): %v", n, msgs)
	}
}

func TestServeBasic(t *testing.T) {
	s := newTestServer(t, Config{Handler: instantOK, Workers: 2})
	w := do(s, "GET", "/x", "alice", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", w.Code)
	}
	st := s.Stats()
	if len(st) != 1 || st[0].Tenant != "alice" || st[0].Completed != 1 {
		t.Fatalf("stats %+v, want one completed request for alice", st)
	}
	verifyClean(t, s)
}

func TestServeTenantClassification(t *testing.T) {
	s := newTestServer(t, Config{Handler: instantOK, TenantKey: "query:team"})
	do(s, "GET", "/x?team=red", "", nil)
	do(s, "GET", "/x?team=blue", "", nil)
	do(s, "GET", "/x", "", nil) // unclassified -> "-"
	st := s.Stats()
	var tenants []string
	for _, ts := range st {
		tenants = append(tenants, ts.Tenant)
	}
	if strings.Join(tenants, ",") != "-,blue,red" {
		t.Fatalf("tenants %v, want [- blue red]", tenants)
	}
	verifyClean(t, s)
}

func TestServeTenantKeyValidation(t *testing.T) {
	for _, bad := range []string{"nope", "cookie:session", "header:"} {
		if _, err := New(Config{Handler: instantOK, TenantKey: bad, Registry: obs.NewRegistry()}); err == nil {
			t.Fatalf("New accepted tenant key %q", bad)
		}
	}
}

func TestServeHealthBypass(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: blocked, Workers: 1})
	defer close(block)

	// Occupy the lone worker so the queue is live, then health-check.
	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })
	w := do(s, "GET", "/healthz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("health status %d, want 200", w.Code)
	}
}

// waitFor polls cond (which must do its own locking) for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if func() bool {
			return cond()
		}() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within 2s")
}

// inflight returns the server's in-flight count under the lock.
func inflight(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

func TestServeQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: blocked, Workers: 1, QueueCap: 2})

	var wg sync.WaitGroup
	var got429 atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(s, "GET", "/x", "t", nil)
			if w.Code == http.StatusTooManyRequests {
				if reason := w.Header().Get("X-Shed-Reason"); reason != "queue-full" {
					t.Errorf("shed reason %q, want queue-full", reason)
				}
				got429.Add(1)
			}
		}()
	}
	// 1 in service + 2 queued; the 4th arrival must shed with 429.
	waitFor(t, func() bool { return got429.Load() >= 1 })
	close(block)
	wg.Wait()
	if got429.Load() != 1 {
		t.Fatalf("%d requests shed, want exactly 1", got429.Load())
	}
	verifyClean(t, s)
}

func TestServeMemoryBudgetShedsHeaviest(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	// Budget fits two 6512-byte elephant requests (13024) plus a bit;
	// the third elephant arrival overflows it, as does a mouse unless
	// the shedder makes room. Degradation watermarks sit above any
	// reachable occupancy so only the budget shedder acts here.
	s := newTestServer(t, Config{
		Handler: blocked, Workers: 1, QueueCap: 100, GlobalBytes: 13500,
		WriteHigh: 5, WriteLow: 4, FullHigh: 6, FullLow: 5,
	})

	// Occupy the worker with a mouse request.
	go do(s, "GET", "/x", "mouse0", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })

	// The elephant queues three requests declaring 6000-byte bodies
	// (6512 each estimated): two fit, the third is refused at admission
	// because the heaviest flow is the elephant itself.
	results := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := httptest.NewRequest("POST", "/fat", strings.NewReader(strings.Repeat("x", 6000)))
			r.Header.Set("X-Tenant", "elephant")
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			results <- w.Code
		}()
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		shed := int64(0)
		if id, ok := s.byTenant["elephant"]; ok {
			shed = s.flows[id].shedBudgetRej
		}
		return shed == 1
	})

	// A mouse arriving now must get in: the shedder evicts the
	// elephant's newest queued request to make room.
	mouseDone := make(chan int, 1)
	go func() {
		mouseDone <- do(s, "GET", "/y", "mouse1", nil).Code
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if id, ok := s.byTenant["mouse1"]; ok {
			return s.flows[id].enqueued == 1
		}
		return false
	})

	close(block)
	wg.Wait()
	if code := <-mouseDone; code != http.StatusOK {
		t.Fatalf("mouse status %d, want 200 (elephant should shed instead)", code)
	}
	shedCodes := 0
	for i := 0; i < 3; i++ {
		if <-results == http.StatusTooManyRequests {
			shedCodes++
		}
	}
	if shedCodes != 2 {
		t.Fatalf("elephant got %d 429s, want 2 (one at admission, one evicted for the mouse)", shedCodes)
	}
	verifyClean(t, s)
}

func TestServeDeadlineExpiresWaiter(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: blocked, Workers: 1})
	defer close(block)

	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })

	start := time.Now()
	w := do(s, "GET", "/x", "t", map[string]string{"X-Request-Deadline-Ms": "30"})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", w.Code)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline eviction took %v, want ~30ms", el)
	}
	verifyClean(t, s)
}

func TestServePreExpiredDeadline(t *testing.T) {
	s := newTestServer(t, Config{Handler: instantOK})
	w := do(s, "GET", "/x", "t", map[string]string{"X-Request-Deadline-Ms": "0"})
	// ms=0 is ignored (not a positive deadline) -> served.
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 for ms=0", w.Code)
	}
}

func TestServeDefaultDeadlineTightestWins(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: blocked, Workers: 1, DefaultDeadline: 40 * time.Millisecond})
	defer close(block)

	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })

	// A header looser than the default is clamped to the default.
	start := time.Now()
	w := do(s, "GET", "/x", "t", map[string]string{"X-Request-Deadline-Ms": "60000"})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", w.Code)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("default deadline took %v, want ~40ms", el)
	}
}

func TestServeClientCancellation(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: blocked, Workers: 1})
	defer close(block)

	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest("GET", "/x", nil).WithContext(ctx)
	r.Header.Set("X-Tenant", "t")
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() { s.ServeHTTP(w, r); close(done) }()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queuedReqs == 1
	})
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled request did not return")
	}
	st := s.Stats()
	if st[0].Canceled != 1 {
		t.Fatalf("stats %+v, want one cancellation", st)
	}
	verifyClean(t, s)
}

func TestServeDrainCleanAndRejecting(t *testing.T) {
	s := newTestServer(t, Config{Handler: sleepMS, Workers: 1})

	// One request in service (100ms), one queued behind it.
	var inFlightCode, queuedCode atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); inFlightCode.Store(int64(do(s, "GET", "/x?ms=100", "a", nil).Code)) }()
	waitFor(t, func() bool { return inflight(s) == 1 })
	go func() { defer wg.Done(); queuedCode.Store(int64(do(s, "GET", "/x?ms=1", "b", nil).Code)) }()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queuedReqs == 1
	})

	start := time.Now()
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("clean drain took %v", el)
	}
	wg.Wait()
	if inFlightCode.Load() != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200 (drain waits for it)", inFlightCode.Load())
	}
	if queuedCode.Load() != http.StatusServiceUnavailable {
		t.Fatalf("queued request status %d, want 503 (drain evicts the queue)", queuedCode.Load())
	}

	// Post-drain arrivals and health checks report draining.
	if w := do(s, "GET", "/x", "c", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", w.Code)
	}
	if w := do(s, "GET", "/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain health %d, want 503", w.Code)
	}
	verifyClean(t, s)
}

func TestServeDrainTimeoutReportsStragglers(t *testing.T) {
	block := make(chan struct{})
	stuck := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	s := newTestServer(t, Config{Handler: stuck, Workers: 1})
	defer close(block)

	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })
	err := s.Drain(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "1 requests in flight") {
		t.Fatalf("Drain error %v, want straggler report", err)
	}
}

func TestServeDegradationTiers(t *testing.T) {
	block := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	// 512-byte estimates against a 4096-byte budget: tier 1 at 50%
	// (3rd queued request), tier 2 at 85% (7th).
	s := newTestServer(t, Config{
		Handler: blocked, Workers: 1, QueueCap: 100, GlobalBytes: 4096,
		DegradeDwell: 30 * time.Millisecond,
	})

	go do(s, "GET", "/x", "t", nil)
	waitFor(t, func() bool { return inflight(s) == 1 })

	// Queue reads until occupancy crosses the tier-1 watermark.
	var wg sync.WaitGroup
	queueN := func(n int, tenant string) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); do(s, "GET", "/r", tenant, nil) }()
		}
	}
	queueN(5, "t") // 5*512/4096 = 62% > 50%
	waitFor(t, func() bool { return s.Tier() == int(tierShedWrites) })

	// Writes shed at tier 1; reads still enqueue.
	if w := do(s, "POST", "/w", "t", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("tier-1 write status %d, want 503", w.Code)
	} else if reason := w.Header().Get("X-Shed-Reason"); reason != "degraded-writes" {
		t.Fatalf("tier-1 shed reason %q, want degraded-writes", reason)
	}

	queueN(3, "t") // 8*512/4096 = 100% > 85%
	waitFor(t, func() bool { return s.Tier() == int(tierHealthOnly) })

	// Reads shed at tier 2; health still answers.
	if w := do(s, "GET", "/r", "t", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("tier-2 read status %d, want 503", w.Code)
	}
	if w := do(s, "GET", "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("tier-2 health status %d, want 200", w.Code)
	}

	// Recovery: unblock, let the queue drain, wait out the dwell; the
	// tier must step back down (one tier at a time) on new arrivals.
	close(block)
	wg.Wait()
	waitFor(t, func() bool {
		do(s, "GET", "/r", "t", nil)
		return s.Tier() == int(tierFull)
	})
	verifyClean(t, s)
}

func TestServeFairnessMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Handler: instantOK, Registry: reg})
	do(s, "GET", "/x", "alice", nil)

	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"serve_enqueued 1",
		"serve_completed 1",
		`serve_tenant_granted{tenant="alice"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestServeWeightedTenants(t *testing.T) {
	// Deterministic fairness: workers=1, costs from the X-Cost header,
	// instant handlers. Tenant "gold" (weight 3) must get ~3x the
	// dispatches of "bronze" (weight 1) while both stay backlogged.
	block := make(chan struct{})
	release := make(chan struct{})
	var order []string
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		mu.Lock()
		order = append(order, r.Header.Get("X-Tenant"))
		mu.Unlock()
	})
	_ = block
	s := newTestServer(t, Config{
		Handler: h, Workers: 1, QueueCap: 100,
		Weight: func(tenant string) int64 {
			if tenant == "gold" {
				return 3
			}
			return 1
		},
		CostOf: func(r *http.Request, _ time.Duration) int64 { return 1 },
	})

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		for _, tenant := range []string{"gold", "bronze"} {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				do(s, "GET", "/x", tn, nil)
			}(tenant)
		}
	}
	// Wait until everything is enqueued or in flight, then open the gate.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queuedReqs+s.inflight == 24
	})
	close(release)
	wg.Wait()

	// While both tenants were backlogged (the first 16 completions),
	// gold must get 3 of every 4 grants.
	mu.Lock()
	window := order[:16]
	mu.Unlock()
	gold := 0
	for _, tn := range window {
		if tn == "gold" {
			gold++
		}
	}
	if gold != 12 {
		t.Fatalf("gold got %d of first 16 grants, want 12 (order %v)", gold, window)
	}
	verifyClean(t, s)
}
