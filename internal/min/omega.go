// Package min builds a multistage interconnection network (an omega
// network — the class of fabric inside the IBM SP2-style switches the
// paper's introduction cites) out of the wormhole routers of package
// wormhole: log2(N) stages of 2x2 switches, perfect-shuffle wiring,
// destination-tag routing, per-output-queue packet arbitration by a
// pluggable discipline (ERR by default), and per-terminal injection
// and ejection. The network is feed-forward, hence trivially
// deadlock-free, which makes it a clean fabric for studying pure
// arbitration fairness: every merge point is a 2-way contest between
// flows, exactly the paper's scheduling problem.
package min

import (
	"fmt"
	"math/bits"

	"repro/internal/flit"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/wormhole"
)

// Config configures an omega network.
type Config struct {
	// Terminals is the number of end points; must be a power of two,
	// >= 4.
	Terminals int
	// VCs is the number of virtual channels per switch port.
	VCs int
	// BufFlits is the input VC buffer depth of each switch.
	BufFlits int
	// NewArb constructs each switch output arbiter (must satisfy
	// sched.HeadOfLineArb).
	NewArb func() sched.Scheduler
}

// injState is a per-terminal injection front end (one flit per
// cycle).
type injState struct {
	queue []flit.Packet
	flits []flit.Flit
	next  int
	vc    int
	nxtVC int
}

// Network is an N-terminal omega network of 2x2 wormhole switches.
type Network struct {
	cfg    Config
	n      int // log2(Terminals)
	stages [][]*wormhole.Router
	sinks  []*wormhole.Sink
	inj    []injState
	cycle  int64
	nextID int64

	injectTime map[int64]int64

	// Latency accumulates end-to-end packet latencies.
	Latency stats.Welford
	// DeliveredFlits / DeliveredPackets count ejections per source
	// terminal.
	DeliveredFlits   []int64
	DeliveredPackets []int64
}

// NewOmega validates cfg and builds the network.
func NewOmega(cfg Config) (*Network, error) {
	N := cfg.Terminals
	if N < 4 || N&(N-1) != 0 {
		return nil, fmt.Errorf("min: terminals must be a power of two >= 4, got %d", N)
	}
	if cfg.NewArb == nil {
		return nil, fmt.Errorf("min: NewArb is required")
	}
	n := bits.TrailingZeros(uint(N))
	net := &Network{
		cfg:              cfg,
		n:                n,
		stages:           make([][]*wormhole.Router, n),
		sinks:            make([]*wormhole.Sink, N),
		inj:              make([]injState, N),
		injectTime:       make(map[int64]int64),
		DeliveredFlits:   make([]int64, N),
		DeliveredPackets: make([]int64, N),
	}
	// Build the switches: n stages of N/2 2x2 routers. At stage s the
	// output port is bit (n-1-s) of the destination terminal.
	for s := 0; s < n; s++ {
		net.stages[s] = make([]*wormhole.Router, N/2)
		shift := n - 1 - s
		for j := 0; j < N/2; j++ {
			r, err := wormhole.NewRouter(s*N/2+j, wormhole.Config{
				Ports:    2,
				VCs:      cfg.VCs,
				BufFlits: cfg.BufFlits,
				NewArb:   cfg.NewArb,
				Route:    func(dst int) int { return (dst >> shift) & 1 },
			})
			if err != nil {
				return nil, err
			}
			net.stages[s][j] = r
		}
	}
	// Wire the stages with the perfect shuffle: output line l of one
	// stage feeds input line shuffle(l) of the next, where
	// shuffle(l) rotates l's bits left by one.
	for s := 0; s+1 < n; s++ {
		for l := 0; l < N; l++ {
			next := net.shuffle(l)
			wormhole.Connect(
				net.stages[s][l/2], l%2,
				net.stages[s+1][next/2], next%2,
			)
		}
	}
	// Last stage: output line d ejects at terminal d.
	for l := 0; l < N; l++ {
		sink := &wormhole.Sink{}
		sink.OnTail = net.onTail
		sink.OnFlit = net.onFlit
		net.sinks[l] = sink
		wormhole.ConnectEndpoint(net.stages[n-1][l/2], l%2, sink)
	}
	return net, nil
}

// shuffle rotates a line number's n bits left by one (the perfect
// shuffle).
func (net *Network) shuffle(l int) int {
	N := net.cfg.Terminals
	return ((l << 1) | (l >> (net.n - 1))) & (N - 1)
}

// Terminals returns the terminal count.
func (net *Network) Terminals() int { return net.cfg.Terminals }

// Stages returns the number of switch stages.
func (net *Network) Stages() int { return net.n }

// Cycle returns the current cycle.
func (net *Network) Cycle() int64 { return net.cycle }

func (net *Network) onFlit(f flit.Flit, vc int, cycle int64) {
	net.DeliveredFlits[f.Flow]++
}

func (net *Network) onTail(f flit.Flit, cycle int64) {
	net.DeliveredPackets[f.Flow]++
	if t0, ok := net.injectTime[f.PktID]; ok {
		net.Latency.Add(float64(cycle - t0 + 1))
		delete(net.injectTime, f.PktID)
	}
}

// Send queues a packet from terminal src to terminal dst. Flow is
// overwritten with src for per-source accounting.
func (net *Network) Send(src, dst, length int) {
	N := net.cfg.Terminals
	if src < 0 || src >= N || dst < 0 || dst >= N {
		panic("min: terminal out of range")
	}
	if length < 1 {
		panic("min: packet length < 1")
	}
	id := net.nextID
	net.nextID++
	net.injectTime[id] = net.cycle
	net.inj[src].queue = append(net.inj[src].queue,
		flit.Packet{Flow: src, Length: length, Dst: dst, ID: id})
}

// PendingAt returns queued or mid-injection packets at terminal src.
func (net *Network) PendingAt(src int) int {
	st := &net.inj[src]
	n := len(st.queue)
	if st.flits != nil {
		n++
	}
	return n
}

// InFlight returns packets not yet fully delivered.
func (net *Network) InFlight() int { return len(net.injectTime) }

// Step advances the network by one cycle.
func (net *Network) Step() {
	// Injection: terminal t feeds stage-0 input line t. Destination-
	// tag routing through an omega network requires the *shuffled*
	// line at stage 0, i.e. packets enter after an initial shuffle:
	// inject at line shuffle(t).
	for t := range net.inj {
		st := &net.inj[t]
		if st.flits == nil && len(st.queue) > 0 {
			p := st.queue[0]
			st.queue = st.queue[1:]
			st.flits = p.Flits()
			st.next = 0
			st.vc = st.nxtVC
			st.nxtVC = (st.nxtVC + 1) % net.cfg.VCs
		}
		if st.flits != nil {
			line := net.shuffle(t)
			if net.stages[0][line/2].Inject(line%2, st.vc, st.flits[st.next], net.cycle) {
				st.next++
				if st.next == len(st.flits) {
					st.flits = nil
				}
			}
		}
	}
	for _, stage := range net.stages {
		for _, r := range stage {
			r.Step(net.cycle)
		}
	}
	net.cycle++
}

// Run advances the network by n cycles.
func (net *Network) Run(n int64) {
	for i := int64(0); i < n; i++ {
		net.Step()
	}
}

// Drain steps until all in-flight packets are delivered or maxCycles
// elapse.
func (net *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if net.InFlight() == 0 {
			return true
		}
		net.Step()
	}
	return net.InFlight() == 0
}

// SpreadOfDelivered returns max-min of per-source delivered flits
// over the given set of sources (fairness summary).
func (net *Network) SpreadOfDelivered(sources []int) int64 {
	if len(sources) == 0 {
		return 0
	}
	lo, hi := net.DeliveredFlits[sources[0]], net.DeliveredFlits[sources[0]]
	for _, s := range sources[1:] {
		v := net.DeliveredFlits[s]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
