package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestManifestAppendTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig6.manifest.jsonl")
	info := RunInfo{Experiment: "fig6", Seeds: []uint64{1, 2}, Workers: 4, Cycles: 8_000_000}
	m := NewManifest(info, "results/fig6.txt", 2*time.Second)
	reg := NewRegistry()
	reg.Counter("engine.flit_cycles").Add(123)
	m = m.WithMetrics(reg)
	// Two appends — one line per run, history preserved.
	if err := m.AppendTo(path); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendTo(path); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []Manifest
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var got Manifest
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", len(lines), err)
		}
		lines = append(lines, got)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d manifest lines, want 2", len(lines))
	}
	got := lines[1]
	if got.Schema != ManifestSchema {
		t.Errorf("schema = %d, want %d", got.Schema, ManifestSchema)
	}
	if got.Experiment != "fig6" || got.Artifact != "results/fig6.txt" {
		t.Errorf("experiment/artifact = %q/%q", got.Experiment, got.Artifact)
	}
	if len(got.Seeds) != 2 || got.Seeds[0] != 1 {
		t.Errorf("seeds = %v", got.Seeds)
	}
	if got.Workers != 4 || got.Cycles != 8_000_000 {
		t.Errorf("workers/cycles = %d/%d", got.Workers, got.Cycles)
	}
	if got.WallSeconds != 2 || got.CyclesPerSec != 4_000_000 {
		t.Errorf("wall/throughput = %v/%v", got.WallSeconds, got.CyclesPerSec)
	}
	if got.GoVersion == "" || len(got.Command) == 0 {
		t.Errorf("go_version/command not recorded: %q/%v", got.GoVersion, got.Command)
	}
	if got.Metrics == nil || got.Metrics.Counters["engine.flit_cycles"] != 123 {
		t.Errorf("metrics snapshot missing: %+v", got.Metrics)
	}
}

func TestManifestPath(t *testing.T) {
	for in, want := range map[string]string{
		"results/fig6.txt":   "results/fig6.manifest.jsonl",
		"fig6.txt":           "fig6.manifest.jsonl",
		"results/noext":      "results/noext.manifest.jsonl",
		"res.dir/table1.txt": "res.dir/table1.manifest.jsonl",
	} {
		if got := ManifestPath(in); got != want {
			t.Errorf("ManifestPath(%q) = %q, want %q", in, got, want)
		}
	}
}
