package bounds

import (
	"fmt"
	"math"
)

// OptimizeQuanta selects per-flow DRR quanta that minimise the worst
// per-flow delay bound, subject to Q_i >= LMax_i (the classic O(1)
// provisioning — a visit always fits the head packet) and
// sum Q_i <= budget (the frame size, which caps the round length and
// with it every flow's latency term).
//
// The DRR-convexity analysis (Mukherjee, Kuri & Singh, "Optimal
// quantum allocation in DRR") shows each flow's bound is convex and
// decreasing in its own quantum and increasing in the others', so the
// min-max optimum spends the whole frame and equalises the binding
// flows' bounds. The search here is a deterministic greedy fill
// (repeatedly granting budget to the currently-worst flow) followed by
// pairwise transfers with a halving step — no randomness, so results
// are reproducible across runs and platforms.
//
// cfg.Flows' Quantum fields are ignored as input; the returned slice
// holds the chosen quanta. Unstable flows compare by their
// load-to-guaranteed-rate ratio so the search still has a gradient to
// follow before any bound becomes finite.
func OptimizeQuanta(cfg Config, budget int64) []int64 {
	cfg.validate()
	n := len(cfg.Flows)
	if n == 0 {
		return nil
	}
	quanta := make([]int64, n)
	var used int64
	for i, f := range cfg.Flows {
		quanta[i] = int64(f.LMax)
		used += quanta[i]
	}
	if used > budget {
		panic(fmt.Sprintf("bounds: quantum budget %d cannot cover sum of LMax %d", budget, used))
	}
	// Work on a private copy of the flow table so quantum trials do
	// not mutate the caller's config.
	cfg.Flows = append([]FlowSpec(nil), cfg.Flows...)

	// Greedy fill: grant the remaining budget chunk by chunk to the
	// flow whose bound is currently worst.
	remaining := budget - used
	step := budget / 16
	if step < 1 {
		step = 1
	}
	for remaining > 0 {
		c := step
		if c > remaining {
			c = remaining
		}
		keys := cfg.quantaKeys(quanta)
		quanta[argmax(keys)] += c
		remaining -= c
	}

	// Pairwise refinement: move step flits from a donor to the worst
	// flow while that lowers the objective, halving the step.
	for step := budget / 8; step >= 1; step /= 2 {
		for iter := 0; iter < 8*n; iter++ {
			keys := cfg.quantaKeys(quanta)
			worst := argmax(keys)
			cur := keys[worst]
			improvedTo, donor := cur, -1
			for d := 0; d < n; d++ {
				if d == worst || quanta[d]-step < int64(cfg.Flows[d].LMax) {
					continue
				}
				quanta[d] -= step
				quanta[worst] += step
				if k := maxOf(cfg.quantaKeys(quanta)); k < improvedTo {
					improvedTo, donor = k, d
				}
				quanta[d] += step
				quanta[worst] -= step
			}
			if donor < 0 {
				break
			}
			quanta[donor] -= step
			quanta[worst] += step
		}
	}
	return quanta
}

// quantaKeys returns the per-flow objective keys for a quantum
// assignment: the delay bound when finite, else a huge surrogate
// ordered by how overloaded the flow is (rho over guaranteed rate).
func (cfg *Config) quantaKeys(quanta []int64) []float64 {
	for i := range cfg.Flows {
		cfg.Flows[i].Quantum = quanta[i]
	}
	keys := make([]float64, len(cfg.Flows))
	for i := range cfg.Flows {
		d := cfg.DelayBound(DiscDRR, i)
		if math.IsInf(d, 1) {
			r := cfg.GuaranteedRate(DiscDRR, i)
			d = 1e18 * (1 + cfg.Flows[i].Arrival.Rho/r)
		}
		keys[i] = d
	}
	return keys
}

// argmax returns the index of the largest key, lowest index winning
// ties (determinism).
func argmax(keys []float64) int {
	best := 0
	for i, k := range keys {
		if k > keys[best] {
			best = i
		}
	}
	return best
}

func maxOf(keys []float64) float64 {
	m := math.Inf(-1)
	for _, k := range keys {
		m = math.Max(m, k)
	}
	return m
}
