package serve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestServeChaos runs the front end under combined chaos — slow and
// stuck handler faults plus an adversarial flood tenant — and asserts
// the robustness contract: zero accounting-invariant violations, the
// well-behaved tenants still get served, and the server drains
// cleanly afterwards.
func TestServeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~2s")
	}
	spec, err := fault.Parse("slow(p=0.10,ms=10);stuck(p=0.01,ms=120);flood(tenant=hog,rps=400)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	inj := fault.NewServe(spec, 7)
	s := newTestServer(t, Config{
		Handler: sleepMS, Workers: 4, QueueCap: 32,
		DefaultDeadline: 500 * time.Millisecond,
		Faults:          inj,
	})

	specs := LoadsFromFaults(spec, 2, 0) // the hog, from the flood directive
	for i := 0; i < 4; i++ {
		specs = append(specs, LoadSpec{Tenant: fmt.Sprintf("good-%d", i), RPS: 40, CostMS: 2})
	}
	results := RunLoad(s, specs, 99, 2*time.Second)

	for _, r := range results[1:] {
		if r.Sent == 0 {
			t.Fatalf("tenant %s sent nothing", r.Tenant)
		}
		// Under chaos the well-behaved tenants may see deadline 504s
		// from stuck workers, but the bulk of their traffic must land.
		if rate := r.SuccessRate(); rate < 0.80 {
			t.Fatalf("tenant %s success rate %.3f < 0.80 under chaos (%+v)", r.Tenant, rate, r)
		}
	}

	c := inj.ServeCounters()
	if c.Slowed == 0 {
		t.Fatalf("slow fault never fired: %+v", c)
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain under chaos: %v", err)
	}
	if n, msgs := s.VerifyAccounting(); n != 0 {
		t.Fatalf("invariant violations under chaos (%d): %v", n, msgs)
	}
}

// TestServeChaosDeterministicInjection pins that the injector's fault
// pattern is a pure function of (seed, call order).
func TestServeChaosDeterministicInjection(t *testing.T) {
	spec, err := fault.Parse("slow(p=0.3,ms=5);stuck(p=0.2,ms=7,tenant=hog)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	run := func() []time.Duration {
		in := fault.NewServe(spec, 1234)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			tenant := "good"
			if i%3 == 0 {
				tenant = "hog"
			}
			out = append(out, in.Delay(tenant))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs across same-seed injectors: %v vs %v", i, a[i], b[i])
		}
	}
	// The hog-only stuck directive must never fire for other tenants:
	// any delay not a multiple of 5ms on a "good" call would betray it.
	for i, d := range a {
		if i%3 != 0 && d%(5*time.Millisecond) != 0 {
			t.Fatalf("stuck directive leaked to non-hog tenant: delay[%d]=%v", i, d)
		}
	}
}
