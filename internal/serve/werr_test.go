package serve

import (
	"testing"
)

// wharness drives a WallERR the way the dispatcher does, with the
// test script standing in for workers: it tracks per-flow queue
// lengths and lets tests choose exactly when each completion lands.
type wharness struct {
	t    *testing.T
	e    *WallERR
	qlen []int
}

func newWH(t *testing.T, flows int, weight func(int) int64, debtCap int64) *wharness {
	t.Helper()
	return &wharness{t: t, e: NewWallERR(weight, debtCap), qlen: make([]int, flows)}
}

func (h *wharness) arrive(flow, n int) {
	for i := 0; i < n; i++ {
		h.e.OnArrival(flow, h.qlen[flow] == 0)
		h.qlen[flow]++
	}
}

// dispatch asks for the next flow and dispatches its head request,
// returning the flow and the opportunity token. Like the real
// dispatcher, a returned flow whose queue emptied by eviction is
// reported back with OnEvicted and the ask is retried. Fails the test
// when the scheduler has nothing to dispatch.
func (h *wharness) dispatch() (int, int64) {
	h.t.Helper()
	for {
		f := h.e.NextFlow()
		if f == -1 {
			h.t.Fatalf("NextFlow() = -1 with queues %v", h.qlen)
		}
		if h.qlen[f] == 0 {
			h.e.OnEvicted(f, true)
			continue
		}
		h.qlen[f]--
		return f, h.e.OnDispatch(f, h.qlen[f] == 0)
	}
}

func (h *wharness) done(flow int, token, cost int64) {
	h.e.OnServiceDone(flow, token, cost)
}

// dispatchDone dispatches and immediately completes at unit cost.
func (h *wharness) dispatchDone(cost int64) int {
	h.t.Helper()
	f, tok := h.dispatch()
	h.done(f, tok, cost)
	return f
}

// TestWallERRRoundRobinUnitCosts: equal weights and unit costs reduce
// WallERR to plain round robin.
func TestWallERRRoundRobinUnitCosts(t *testing.T) {
	h := newWH(t, 3, nil, 0)
	h.arrive(0, 4)
	h.arrive(1, 4)
	h.arrive(2, 4)
	var order []int
	for i := 0; i < 12; i++ {
		order = append(order, h.dispatchDone(1))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	if f := h.e.NextFlow(); f != -1 {
		t.Fatalf("NextFlow() with drained queues = %d, want -1", f)
	}
	if h.e.Round() != 0 {
		t.Fatalf("Round() after idle reset = %d, want 0", h.e.Round())
	}
}

// TestWallERRWeightedShares: with unit costs a weight-w flow gets w
// dispatches per round.
func TestWallERRWeightedShares(t *testing.T) {
	weight := func(flow int) int64 {
		if flow == 0 {
			return 3
		}
		return 1
	}
	h := newWH(t, 2, weight, 0)
	h.arrive(0, 9)
	h.arrive(1, 3)
	counts := map[int]int{}
	for i := 0; i < 12; i++ {
		counts[h.dispatchDone(1)]++
	}
	if counts[0] != 9 || counts[1] != 3 {
		t.Fatalf("weighted dispatch counts %v, want 9/3", counts)
	}
}

// TestWallERRDeferredBillingEqualizesService: an expensive request
// whose completion lands after its opportunity closed is billed to
// the flow's surplus count, shrinking its next allowance so that
// total service still evens out.
func TestWallERRDeferredBillingEqualizesService(t *testing.T) {
	h := newWH(t, 2, nil, 0)
	h.arrive(0, 20)
	h.arrive(1, 20)

	// Round 1: flow 0's completion is held; flow 1 completes at unit.
	f, tok0 := h.dispatch()
	if f != 0 {
		t.Fatalf("first dispatch from flow %d, want 0", f)
	}
	if f := h.dispatchDone(1); f != 1 {
		t.Fatalf("second dispatch from flow %d, want 1", f)
	}
	// The held completion lands late, costing 11 units: the excess 10
	// is deferred straight to flow 0's surplus count.
	h.done(0, tok0, 11)
	if sc := h.e.SurplusCount(0); sc != 10 {
		t.Fatalf("SurplusCount(0) after deferred billing = %d, want 10", sc)
	}

	// Round 2: flow 0's allowance is 1*(1+10)-10 = 1, flow 1's is 11.
	counts := map[int]int{}
	for i := 0; i < 12; i++ {
		counts[h.dispatchDone(1)]++
	}
	if counts[0] != 1 || counts[1] != 11 {
		t.Fatalf("round-2 dispatch counts %v, want flow0=1 flow1=11", counts)
	}
	// Total service is equal: flow 0 billed 2 dispatches + 10 excess
	// = 12 units; flow 1 billed 12 unit dispatches.
	if sc := h.e.SurplusCount(0); sc != 0 {
		t.Fatalf("SurplusCount(0) after repayment round = %d, want 0", sc)
	}
}

// TestWallERRRepaymentVisit: when a deferred completion lands after a
// round started but before the flow's visit, the allowance can go
// non-positive; the flow then dispatches nothing at that visit and
// its debt shrinks by the full grant, so it serves again within a
// bounded number of rounds.
func TestWallERRRepaymentVisit(t *testing.T) {
	h := newWH(t, 3, nil, 0)
	h.arrive(0, 20)
	h.arrive(1, 20)
	h.arrive(2, 20)

	// Round 1: all three dispatch; flow 1's completion is held.
	if f := h.dispatchDone(1); f != 0 {
		t.Fatalf("dispatch 1 from flow %d, want 0", f)
	}
	f, tok1 := h.dispatch()
	if f != 1 {
		t.Fatalf("dispatch 2 from flow %d, want 1", f)
	}
	if f := h.dispatchDone(1); f != 2 {
		t.Fatalf("dispatch 3 from flow %d, want 2", f)
	}

	// Round 2 starts with flow 0; while its opportunity is open, flow
	// 1's held completion lands with cost 13 -> surplus count 12,
	// which exceeds its round-2 grant of 1*(1+prevMaxSC=0) = 1.
	if f := h.dispatchDone(1); f != 0 {
		t.Fatalf("round-2 dispatch from flow %d, want 0", f)
	}
	h.done(1, tok1, 13)
	if sc := h.e.SurplusCount(1); sc != 12 {
		t.Fatalf("SurplusCount(1) = %d, want 12", sc)
	}

	// Flow 1's round-2 visit is a repayment visit: NextFlow skips
	// straight to flow 2, and flow 1's debt shrank by the grant.
	if f := h.dispatchDone(1); f != 2 {
		t.Fatalf("dispatch after repayment visit from flow %d, want 2 (flow 1 skipped)", f)
	}
	if sc := h.e.SurplusCount(1); sc != 11 {
		t.Fatalf("SurplusCount(1) after repayment visit = %d, want 11", sc)
	}

	// Liveness: flow 1 dispatches again within a bounded number of
	// further dispatches. Flow 1's debt inflated MaxSC to 12, so round
	// 3 grants flows 0 and 2 an allowance of 13 each first; flow 1's
	// own allowance self-heals to 13-11 = 2. Bound: one full round.
	for i := 0; i < 40; i++ {
		if h.dispatchDone(1) == 1 {
			return
		}
	}
	t.Fatalf("flow 1 starved after repayment visit; surplus=%d round=%d",
		h.e.SurplusCount(1), h.e.Round())
}

// TestWallERRExcessBilledToOpenOpportunity: a completion landing while
// its opportunity is still open extends the billed amount, ending the
// opportunity early instead of adding debt.
func TestWallERRExcessBilledToOpenOpportunity(t *testing.T) {
	h := newWH(t, 2, func(int) int64 { return 5 }, 0)
	h.arrive(0, 10)
	h.arrive(1, 10)

	// Flow 0's allowance is 5; its first request completes in-turn at
	// cost 5, filling the whole opportunity.
	f, tok := h.dispatch()
	if f != 0 {
		t.Fatalf("dispatch from flow %d, want 0", f)
	}
	h.done(0, tok, 5)
	if f := h.dispatchDone(1); f != 1 {
		t.Fatalf("next dispatch from flow %d, want 1 (flow 0's opportunity exhausted)", f)
	}
	// In-turn billing leaves no deferred surplus beyond the overshoot:
	// billed 5 == allowance 5.
	if sc := h.e.SurplusCount(0); sc != 0 {
		t.Fatalf("SurplusCount(0) = %d, want 0", sc)
	}
}

// TestWallERRDebtCap: the deferred surplus count saturates at the cap.
func TestWallERRDebtCap(t *testing.T) {
	h := newWH(t, 2, nil, 7)
	h.arrive(0, 5)
	h.arrive(1, 5)
	f, tok := h.dispatch()
	if f != 0 {
		t.Fatalf("dispatch from flow %d, want 0", f)
	}
	h.dispatchDone(1) // flow 1, closes flow 0's opportunity path next round
	h.done(0, tok, 1000)
	if sc := h.e.SurplusCount(0); sc != 7 {
		t.Fatalf("SurplusCount(0) = %d, want debt cap 7", sc)
	}
}

// TestWallERRDebtPersistsAcrossDrain: unlike Figure 1, a drained
// flow's surplus count survives re-activation, so letting the queue
// empty does not launder deferred costs.
func TestWallERRDebtPersistsAcrossDrain(t *testing.T) {
	h := newWH(t, 2, nil, 0)
	h.arrive(0, 1)
	h.arrive(1, 1)
	f, tok := h.dispatch()
	if f != 0 {
		t.Fatalf("dispatch from flow %d, want 0", f)
	}
	h.dispatchDone(1)
	h.done(0, tok, 21) // flow 0 is drained; excess 20 lands as debt
	if f := h.e.NextFlow(); f != -1 {
		t.Fatalf("NextFlow() = %d, want -1 (both drained)", f)
	}
	if sc := h.e.SurplusCount(0); sc != 20 {
		t.Fatalf("SurplusCount(0) after drain = %d, want 20", sc)
	}
	// Re-activate both flows: flow 0 still owes its debt, so flow 1
	// gets the bulk of the next rounds until service evens out.
	h.arrive(0, 25)
	h.arrive(1, 25)
	counts := map[int]int{}
	for i := 0; i < 22; i++ {
		counts[h.dispatchDone(1)]++
	}
	if counts[0] >= counts[1] {
		t.Fatalf("indebted flow got %d of %d dispatches, want a minority share (counts %v)",
			counts[0], 22, counts)
	}
	if counts[0] == 0 {
		t.Fatalf("indebted flow fully starved over 22 dispatches (debt cap absent but elasticity should self-heal)")
	}
}

// TestWallERREvictedFlowSkipped: a flow whose queue empties by
// eviction drains from the rotation without service.
func TestWallERREvictedFlowSkipped(t *testing.T) {
	h := newWH(t, 2, nil, 0)
	h.arrive(0, 2)
	h.arrive(1, 2)
	if f := h.dispatchDone(1); f != 0 {
		t.Fatalf("dispatch from flow %d, want 0", f)
	}
	// Evict everything flow 1 had queued before its visit.
	h.qlen[1] = 0
	h.e.OnEvicted(1, true)
	// Flow 1 is mid-list with an empty queue; its visit must dispatch
	// nothing and the rotation must continue with flow 0.
	if f := h.dispatchDone(1); f != 0 {
		t.Fatalf("dispatch after eviction from flow %d, want 0", f)
	}
	if h.e.IsActive(1) && h.e.CurrentFlow() != 1 {
		// Flow 1 may linger on the active list until its visit; after
		// the dispatch above its visit has happened.
		t.Fatalf("evicted flow 1 still active after its visit")
	}
}

// TestWallERRInflightGuardsIdleReset: round state survives while
// completions are outstanding, so late costs still meet live state.
func TestWallERRInflightGuardsIdleReset(t *testing.T) {
	h := newWH(t, 1, nil, 0)
	h.arrive(0, 1)
	_, tok := h.dispatch()
	if f := h.e.NextFlow(); f != -1 {
		t.Fatalf("NextFlow() = %d, want -1 (queue drained, one in flight)", f)
	}
	if h.e.Inflight() != 1 {
		t.Fatalf("Inflight() = %d, want 1", h.e.Inflight())
	}
	h.done(0, tok, 4)
	if f := h.e.NextFlow(); f != -1 {
		t.Fatalf("NextFlow() = %d, want -1", f)
	}
	if h.e.Inflight() != 0 {
		t.Fatalf("Inflight() = %d, want 0", h.e.Inflight())
	}
	if sc := h.e.SurplusCount(0); sc != 3 {
		t.Fatalf("SurplusCount(0) = %d, want 3 (debt persists through idle)", sc)
	}
}
