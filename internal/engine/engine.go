// Package engine is the cycle-driven single-server simulator behind
// the paper's Section 5 experiments: n flows with FIFO packet queues,
// a scheduler arbitrating access to one output that forwards one flit
// per cycle, and an optional downstream-stall model that makes a
// packet's occupancy of the output exceed its length — the defining
// wormhole phenomenon ("a packet of length L ... may take more than
// L/C seconds for transmission").
//
// The engine drives either a packet-granularity sched.Scheduler (ERR,
// DRR, PBRR, FCFS, ...) or a flit-granularity sched.FlitScheduler
// (FBRR). Packet-granularity service keeps a packet's flits
// contiguous on the output, as wormhole switching requires when
// scheduling into an output queue.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/flit"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// StallModel injects downstream congestion: before each flit of a
// packet is forwarded, the model returns how many cycles the output
// stays blocked. A nil model means no stalls (classic store-and-
// forward timing, occupancy == length).
type StallModel interface {
	// FlitStall returns the stall cycles preceding the next flit of
	// the given flow's current packet (>= 0).
	FlitStall(flow int) int
}

// StallFunc adapts a function to a StallModel.
type StallFunc func(flow int) int

// FlitStall implements StallModel.
func (f StallFunc) FlitStall(flow int) int { return f(flow) }

// CycleStallModel is an optional extension of StallModel for models
// that need the current cycle — fault injectors stalling a link
// during a configured window, time-varying congestion. When the
// configured Stall implements it, the engine calls FlitStallAt
// instead of FlitStall.
type CycleStallModel interface {
	StallModel
	// FlitStallAt returns the stall cycles preceding the next flit of
	// the given flow's current packet when that flit becomes eligible
	// at the given cycle (>= 0).
	FlitStallAt(flow int, cycle int64) int
}

// Config configures an Engine. Exactly one of Scheduler or FlitSched
// must be set.
type Config struct {
	// Flows is the number of flows (queues).
	Flows int
	// Scheduler is a packet-granularity discipline.
	Scheduler sched.Scheduler
	// FlitSched is a flit-granularity discipline (FBRR).
	FlitSched sched.FlitScheduler
	// Source generates arrivals; nil means no arrivals (packets may
	// still be injected with Inject).
	Source traffic.Source
	// Stall models downstream congestion. When set with a
	// sched.LengthAware Scheduler, NewEngine fails unless
	// AllowLengthAwareStalls is set: a discipline that budgets
	// a-priori lengths has no meaningful occupancy accounting, which
	// is the paper's argument for why DRR cannot serve a wormhole
	// switch. The override exists for the ablation experiments that
	// quantify exactly that failure.
	Stall                  StallModel
	AllowLengthAwareStalls bool

	// OnFlit, if set, observes every cycle in which a flit is
	// forwarded (flow id) — the feed for metrics.ServiceLog and
	// metrics.FairnessTracker.
	OnFlit func(cycle int64, flow int)
	// OnIdle, if set, observes cycles in which no flit is forwarded
	// and no packet occupies the output.
	OnIdle func(cycle int64)
	// OnStall, if set, observes cycles in which the output is
	// occupied by a packet of the given flow but downstream
	// congestion blocked the flit — occupancy without service, the
	// wormhole phenomenon. When OnStall is nil such cycles are
	// reported to OnIdle instead (so OnIdle alone still accounts for
	// every non-forwarding cycle).
	OnStall func(cycle int64, flow int)
	// OnDeparture, if set, observes packet completions: the packet,
	// the cycle its tail flit left, and its occupancy in cycles
	// (== length when there are no stalls).
	OnDeparture func(p flit.Packet, cycle int64, occupancy int64)
	// OnInject, if set, observes every packet admitted to a queue
	// (after the engine stamps Arrival and ID) — the counterpart of
	// OnDeparture that lets an observer track the in-flight backlog
	// without polling.
	OnInject func(p flit.Packet, cycle int64)
	// OnReject, if set, observes malformed packets refused at
	// injection (zero-length, bad flow id) with the typed validation
	// error. Rejected packets never enter a queue and never reach the
	// scheduler; a nil OnReject simply drops them silently. Arrivals
	// from a Source are validated the same way, so a fault-injected
	// source degrades into counted rejections instead of a panic.
	OnReject func(p flit.Packet, cycle int64, err error)
}

// Engine simulates the configured system cycle by cycle.
type Engine struct {
	cfg    Config
	queues []queue.PacketQueue
	cycle  int64
	nextID int64

	// Packet-granularity service state.
	inService bool
	current   flit.Packet
	sentFlits int
	occupancy int64
	stallLeft int

	// Flit-granularity service state: per-flow partial packet.
	partial   []flit.Packet
	remaining []int
	// partialFlows counts flows with remaining > 0, so the per-cycle
	// pending check and Backlog are O(1) instead of O(flows).
	partialFlows int

	backlogPackets int
	// backlogFlits counts flits injected but not yet forwarded, so
	// conservation audits (injected = forwarded + in flight) are O(1).
	backlogFlits int64
	rejected     int64
}

// NewEngine validates cfg and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Flows < 1 {
		return nil, errors.New("engine: Flows must be >= 1")
	}
	if (cfg.Scheduler == nil) == (cfg.FlitSched == nil) {
		return nil, errors.New("engine: exactly one of Scheduler or FlitSched must be set")
	}
	if cfg.Stall != nil && cfg.Scheduler != nil && !cfg.AllowLengthAwareStalls {
		if _, ok := cfg.Scheduler.(sched.LengthAware); ok {
			return nil, errors.New("engine: length-aware scheduler cannot run with a stall model (see Config.AllowLengthAwareStalls)")
		}
	}
	e := &Engine{
		cfg:    cfg,
		queues: make([]queue.PacketQueue, cfg.Flows),
	}
	if cfg.FlitSched != nil {
		e.partial = make([]flit.Packet, cfg.Flows)
		e.remaining = make([]int, cfg.Flows)
	}
	return e, nil
}

// QueueLen implements traffic.QueueView: queued packets of a flow,
// including any packet in service.
func (e *Engine) QueueLen(flow int) int {
	n := e.queues[flow].Len()
	if e.cfg.Scheduler != nil {
		if e.inService && e.current.Flow == flow {
			n++
		}
	} else if e.remaining[flow] > 0 {
		n++
	}
	return n
}

// Cycle returns the current simulation cycle.
func (e *Engine) Cycle() int64 { return e.cycle }

// BacklogFlits returns the number of flits injected but not yet
// forwarded (including the unsent remainder of any packet in
// service) — the in-flight term of the flit-conservation invariant.
func (e *Engine) BacklogFlits() int64 { return e.backlogFlits }

// Rejected returns the number of malformed packets refused at
// injection.
func (e *Engine) Rejected() int64 { return e.rejected }

// Backlog returns the number of packets not yet fully served
// (including any in service).
func (e *Engine) Backlog() int {
	n := e.backlogPackets
	if e.cfg.Scheduler != nil {
		if e.inService {
			n++
		}
	} else {
		n += e.partialFlows
	}
	return n
}

// Inject offers a packet to the engine (used by traffic sources,
// tests and the switch substrate); the packet's Arrival and ID are
// stamped by the engine. Malformed packets — zero-length, flow id
// outside [0, Flows) — are rejected with a typed error (see
// flit.ErrZeroLength, flit.ErrBadFlow), reported to OnReject, and
// never reach a queue or the scheduler.
func (e *Engine) Inject(p flit.Packet) error {
	err := p.Validate()
	if err == nil && p.Flow >= e.cfg.Flows {
		err = fmt.Errorf("%w: flow %d >= %d flows", flit.ErrBadFlow, p.Flow, e.cfg.Flows)
	}
	if err != nil {
		e.rejected++
		if e.cfg.OnReject != nil {
			e.cfg.OnReject(p, e.cycle, err)
		}
		return err
	}
	p.Arrival = e.cycle
	p.ID = e.nextID
	e.nextID++
	q := &e.queues[p.Flow]
	wasEmpty := q.Empty() && !e.flowBusy(p.Flow)
	q.Push(p)
	e.backlogPackets++
	e.backlogFlits += int64(p.Length)
	if s := e.cfg.Scheduler; s != nil {
		s.OnArrival(p.Flow, wasEmpty)
		if la, ok := s.(sched.LengthAware); ok {
			la.OnArrivalLength(p.Flow, p.Length)
		}
	} else {
		e.cfg.FlitSched.OnArrival(p.Flow, wasEmpty)
	}
	if e.cfg.OnInject != nil {
		e.cfg.OnInject(p, e.cycle)
	}
	return nil
}

// flowBusy reports whether flow has a packet mid-service.
func (e *Engine) flowBusy(flow int) bool {
	if e.cfg.Scheduler != nil {
		return e.inService && e.current.Flow == flow
	}
	return e.remaining[flow] > 0
}

// Step advances the simulation by one cycle: arrivals first, then at
// most one flit (or stall) of service.
func (e *Engine) Step() {
	if e.cfg.Scheduler != nil {
		if ca, ok := e.cfg.Scheduler.(sched.ClockAware); ok {
			ca.SetNow(e.cycle)
		}
	}
	if e.cfg.Source != nil {
		for _, p := range e.cfg.Source.Arrivals(e.cycle, e) {
			e.Inject(p)
		}
	}
	if e.cfg.Scheduler != nil {
		e.stepPacketMode()
	} else {
		e.stepFlitMode()
	}
	e.cycle++
}

func (e *Engine) stepPacketMode() {
	if !e.inService {
		if e.backlogPackets == 0 {
			e.idle()
			return
		}
		flow := e.cfg.Scheduler.NextFlow()
		q := &e.queues[flow]
		if q.Empty() {
			panic("engine: scheduler selected an empty flow")
		}
		e.current = q.Pop()
		e.backlogPackets--
		e.inService = true
		e.sentFlits = 0
		e.occupancy = 0
		e.stallLeft = e.stall(flow)
	}
	e.occupancy++
	if e.stallLeft > 0 {
		e.stallLeft--
		if e.cfg.OnStall != nil {
			e.cfg.OnStall(e.cycle, e.current.Flow)
		} else {
			e.idle()
		}
		return
	}
	// Forward one flit.
	e.sentFlits++
	e.backlogFlits--
	if e.cfg.OnFlit != nil {
		e.cfg.OnFlit(e.cycle, e.current.Flow)
	}
	if e.sentFlits < e.current.Length {
		e.stallLeft = e.stall(e.current.Flow)
		return
	}
	// Tail flit forwarded: the packet departs.
	e.inService = false
	if e.cfg.OnDeparture != nil {
		e.cfg.OnDeparture(e.current, e.cycle, e.occupancy)
	}
	e.cfg.Scheduler.OnPacketDone(e.current.Flow, e.occupancy, e.queues[e.current.Flow].Empty())
}

func (e *Engine) stepFlitMode() {
	// Any flow with a partial packet or queued packets has flits;
	// backlogPackets counts the queued ones and partialFlows the
	// mid-service ones, so the check is O(1).
	if e.backlogPackets == 0 && e.partialFlows == 0 {
		e.idle()
		return
	}
	flow := e.cfg.FlitSched.NextFlow()
	if e.remaining[flow] == 0 {
		q := &e.queues[flow]
		if q.Empty() {
			panic("engine: flit scheduler selected an empty flow")
		}
		e.partial[flow] = q.Pop()
		e.backlogPackets--
		e.remaining[flow] = e.partial[flow].Length
		e.partialFlows++
	}
	e.remaining[flow]--
	e.backlogFlits--
	if e.remaining[flow] == 0 {
		e.partialFlows--
	}
	if e.cfg.OnFlit != nil {
		e.cfg.OnFlit(e.cycle, flow)
	}
	end := e.remaining[flow] == 0
	if end && e.cfg.OnDeparture != nil {
		e.cfg.OnDeparture(e.partial[flow], e.cycle, int64(e.partial[flow].Length))
	}
	nowEmpty := end && e.queues[flow].Empty()
	e.cfg.FlitSched.OnFlitDone(flow, end, nowEmpty)
}

func (e *Engine) stall(flow int) int {
	if e.cfg.Stall == nil {
		return 0
	}
	var s int
	if cs, ok := e.cfg.Stall.(CycleStallModel); ok {
		s = cs.FlitStallAt(flow, e.cycle)
	} else {
		s = e.cfg.Stall.FlitStall(flow)
	}
	if s < 0 {
		panic("engine: negative stall")
	}
	return s
}

func (e *Engine) idle() {
	if e.cfg.OnIdle != nil {
		e.cfg.OnIdle(e.cycle)
	}
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntilDrained steps until no packet remains in any queue or in
// service, or until maxCycles elapse; it returns the number of cycles
// stepped and whether the system drained.
func (e *Engine) RunUntilDrained(maxCycles int64) (cycles int64, drained bool) {
	for cycles = 0; cycles < maxCycles; cycles++ {
		if e.Backlog() == 0 {
			return cycles, true
		}
		e.Step()
	}
	return cycles, e.Backlog() == 0
}
