// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance (Welford), histograms,
// quantiles, and min/max tracking.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance without storing
// samples. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2
// samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 for no samples).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 for no samples).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// CI95 returns the half-width of a ~95% confidence interval for the
// mean using the normal approximation (adequate for the large sample
// counts the experiments produce).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// String implements fmt.Stringer.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f",
		w.n, w.Mean(), w.Std(), w.Min(), w.Max())
}

// Histogram is a fixed-bucket histogram over [Lo, Hi) with overflow
// and underflow buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	under   int64
	over    int64
	nan     int64
	n       int64
	sum     float64
}

// NewHistogram returns a histogram with nb equal buckets over
// [lo, hi). It panics on invalid parameters.
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if nb <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, nb)}
}

// Add incorporates one sample. NaN samples are counted separately
// (see NaN) and excluded from the mean: a NaN would otherwise fall
// through both range comparisons and index the buckets with the
// result of int(NaN) — a huge negative number — and poison sum.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nan++
		return
	}
	h.n++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) { // guard float rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// N returns the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the mean of all samples (including out-of-range ones).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// NaN returns the number of NaN samples offered to Add. They are
// counted in no bucket and excluded from N and Mean.
func (h *Histogram) NaN() int64 { return h.nan }

// Quantile returns an approximate q-quantile (0 <= q <= 1) from the
// bucket midpoints. Underflow/overflow samples clamp to the range
// edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n-1))
	cum := h.under
	if target < cum {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		cum += c
		if target < cum {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi
}

// Quantiles computes exact quantiles of a sample slice (sorted copy,
// linear interpolation). Intended for modest sample counts.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			out[i] = sorted[lo]
		}
	}
	return out
}

// MaxAbsDiff returns the maximum absolute pairwise difference among
// xs — the "max |Sent_i - Sent_j| over all pairs" that the paper's
// fairness measure reduces to. O(n) via max - min.
func MaxAbsDiff(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
