package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// LRParams parameterises the latency-rate (LR) server measurement —
// the lens under which the ERR authors' follow-up work analyses the
// scheduler. A server is LR(ρ, Θ) for a flow if, once the flow is
// continuously backlogged from time t0, its cumulative service
// satisfies W(t) >= ρ·(t - t0 - Θ): ρ is the guaranteed rate and Θ
// the worst-case start-up latency. We keep n equal flows backlogged
// from cycle 0 (so ρ = 1/n) and measure the empirical Θ of each
// discipline as max over flows and service instants of
// t - W(t)/ρ.
type LRParams struct {
	Flows  int
	Cycles int64
	MaxLen int
	Seed   uint64
}

// DefaultLRParams returns defaults.
func DefaultLRParams() LRParams {
	return LRParams{Flows: 8, Cycles: 500_000, MaxLen: 64, Seed: 1}
}

// LRResult holds the measured worst-case latency per discipline.
type LRResult struct {
	Params      LRParams
	Disciplines []string
	// ThetaCycles[d] is the empirical LR latency of discipline d.
	ThetaCycles []float64
}

// RunLR measures the empirical LR latency of the main disciplines.
func RunLR(p LRParams) (*LRResult, error) {
	mks := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"ERR", func() sched.Scheduler { return core.New() }},
		{"DRR", func() sched.Scheduler { return sched.NewDRR(int64(p.MaxLen), nil) }},
		{"PBRR", func() sched.Scheduler { return sched.NewPBRR() }},
		{"WFQ", func() sched.Scheduler { return sched.NewWFQ(nil) }},
		{"STFQ", func() sched.Scheduler { return sched.NewSTFQ(nil) }},
	}
	rho := 1.0 / float64(p.Flows)
	res := &LRResult{Params: p}
	for _, m := range mks {
		src := rng.New(p.Seed)
		sources := make([]traffic.Source, p.Flows)
		for f := 0; f < p.Flows; f++ {
			sources[f] = traffic.NewBacklogged(f, 4, rng.NewUniform(1, p.MaxLen), src.Split())
		}
		served := make([]int64, p.Flows)
		theta := 0.0
		e, err := engine.NewEngine(engine.Config{
			Flows:     p.Flows,
			Scheduler: m.mk(),
			Source:    traffic.NewMulti(sources...),
			OnFlit: func(cycle int64, flow int) {
				// Just before this flit, W = served[flow]; the lag
				// t - W/rho peaks here.
				if lag := float64(cycle) - float64(served[flow])/rho; lag > theta {
					theta = lag
				}
				served[flow]++
			},
		})
		if err != nil {
			return nil, err
		}
		e.Run(p.Cycles)
		res.Disciplines = append(res.Disciplines, m.name)
		res.ThetaCycles = append(res.ThetaCycles, theta)
	}
	return res, nil
}

// Render writes the latency table.
func (r *LRResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Latency-rate measurement — %d backlogged flows (rho = 1/%d), m = %d\n",
		r.Params.Flows, r.Params.Flows, r.Params.MaxLen)
	fmt.Fprintln(tw, "Discipline\tempirical Theta (cycles)")
	for i, d := range r.Disciplines {
		fmt.Fprintf(tw, "%s\t%.0f\n", d, r.ThetaCycles[i])
	}
	return tw.Flush()
}
