package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/obs"
)

// serveMetrics is the server's handle set into the obs registry plus
// the invariant-violation recorder. Counter/gauge/histogram mutation
// is lock-free; the violation recorder keeps the last few messages
// for test failure output.
type serveMetrics struct {
	enqueued, granted, completed *obs.Counter
	shedQueue, shedBudget        *obs.Counter
	shedDegraded, drainRejected  *obs.Counter
	expired, canceled            *obs.Counter
	drainEvicted                 *obs.Counter
	tierChanges                  *obs.Counter
	violations                   *obs.Counter

	queued, queuedBytes *obs.Gauge
	inflight, tier      *obs.Gauge
	flows               *obs.Gauge

	waitMS, serviceMS, totalMS *obs.Histogram

	vmu            sync.Mutex
	lastViolations []string
}

func (m *serveMetrics) init(reg *obs.Registry) {
	m.enqueued = reg.Counter("serve.enqueued")
	m.granted = reg.Counter("serve.granted")
	m.completed = reg.Counter("serve.completed")
	m.shedQueue = reg.Counter("serve.shed_queue_full")
	m.shedBudget = reg.Counter("serve.shed_memory_budget")
	m.shedDegraded = reg.Counter("serve.shed_degraded")
	m.drainRejected = reg.Counter("serve.drain_rejected")
	m.expired = reg.Counter("serve.deadline_expired")
	m.canceled = reg.Counter("serve.client_canceled")
	m.drainEvicted = reg.Counter("serve.drain_evicted")
	m.tierChanges = reg.Counter("serve.tier_changes")
	m.violations = reg.Counter("serve.violations")
	m.queued = reg.Gauge("serve.queued")
	m.queuedBytes = reg.Gauge("serve.queued_bytes")
	m.inflight = reg.Gauge("serve.inflight")
	m.tier = reg.Gauge("serve.tier")
	m.flows = reg.Gauge("serve.flows")
	lat := obs.HistogramOpts{Width: 1, Buckets: 4096} // 1ms buckets, 4s span
	m.waitMS = reg.Histogram("serve.wait_ms", lat)
	m.serviceMS = reg.Histogram("serve.service_ms", lat)
	m.totalMS = reg.Histogram("serve.total_ms", lat)
}

// violation records an invariant violation: counted in the registry
// (so run manifests and the CI smoke see it) and kept, capped, for
// test failure messages. Safe for concurrent use.
func (m *serveMetrics) violation(format string, args ...any) {
	m.violations.Inc()
	m.vmu.Lock()
	if len(m.lastViolations) < 32 {
		m.lastViolations = append(m.lastViolations, fmt.Sprintf(format, args...))
	}
	m.vmu.Unlock()
}

// checkQuickLocked asserts the O(1) queue-accounting invariants on
// every transition; violations are counted, never fatal — a live
// server degrades, it does not crash.
func (s *Server) checkQuickLocked() {
	if s.freeSlots < 0 || s.freeSlots > s.cfg.Workers {
		s.m.violation("freeSlots %d outside [0,%d]", s.freeSlots, s.cfg.Workers)
	}
	if s.queuedBytes < 0 {
		s.m.violation("queuedBytes %d < 0", s.queuedBytes)
	}
	if s.queuedReqs < 0 {
		s.m.violation("queuedReqs %d < 0", s.queuedReqs)
	}
	if s.inflight < 0 || s.inflight > s.cfg.Workers {
		s.m.violation("inflight %d outside [0,%d]", s.inflight, s.cfg.Workers)
	}
}

// VerifyAccounting runs the O(flows) consistency audit: per-flow
// lifetime counters must balance (enqueued = granted + evictions +
// still-queued), the global byte/request tallies must equal the
// per-flow sums, and the scheduler's in-flight count must match the
// server's. It returns the total violation count afterwards and the
// recorded messages; tests and the selfdrive harness call it at the
// end of a run.
func (s *Server) VerifyAccounting() (int64, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	var reqs int
	for _, f := range s.flows {
		bytes += f.bytes
		reqs += f.len()
		settled := f.granted + f.shedBudget + f.expired + f.canceled + f.drained
		if f.enqueued != settled+int64(f.len()) {
			s.m.violation("flow %q accounting: enqueued %d != settled %d + queued %d",
				f.tenant, f.enqueued, settled, f.len())
		}
		if f.completed > f.granted {
			s.m.violation("flow %q completed %d > granted %d", f.tenant, f.completed, f.granted)
		}
	}
	if bytes != s.queuedBytes {
		s.m.violation("queuedBytes %d != per-flow sum %d", s.queuedBytes, bytes)
	}
	if reqs != s.queuedReqs {
		s.m.violation("queuedReqs %d != per-flow sum %d", s.queuedReqs, reqs)
	}
	if s.sched.Inflight() != s.inflight {
		s.m.violation("scheduler inflight %d != server inflight %d", s.sched.Inflight(), s.inflight)
	}
	s.m.vmu.Lock()
	msgs := append([]string(nil), s.m.lastViolations...)
	s.m.vmu.Unlock()
	return s.m.violations.Value(), msgs
}

// TenantStats is one flow's lifetime accounting, for tests, the bench
// harness and the per-tenant /metrics lines.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Enqueued  int64  `json:"enqueued"`
	Granted   int64  `json:"granted"`
	Completed int64  `json:"completed"`
	ShedQueue int64  `json:"shed_queue_full"`
	ShedBudg  int64  `json:"shed_memory_budget"`
	ShedDegr  int64  `json:"shed_degraded"`
	Expired   int64  `json:"deadline_expired"`
	Canceled  int64  `json:"client_canceled"`
	Drained   int64  `json:"drain_evicted"`
	CostUnits int64  `json:"cost_units"`
	Queued    int    `json:"queued"`

	WaitP50MS  int64 `json:"wait_p50_ms"`
	WaitP99MS  int64 `json:"wait_p99_ms"`
	TotalP50MS int64 `json:"total_p50_ms"`
	TotalP99MS int64 `json:"total_p99_ms"`
}

// Stats returns per-tenant lifetime stats, sorted by tenant.
func (s *Server) Stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.flows))
	for _, f := range s.flows {
		out = append(out, TenantStats{
			Tenant:    f.tenant,
			Enqueued:  f.enqueued,
			Granted:   f.granted,
			Completed: f.completed,
			ShedQueue: f.shedQueue,
			ShedBudg:  f.shedBudget + f.shedBudgetRej,
			ShedDegr:  f.shedDegraded,
			Expired:   f.expired,
			Canceled:  f.canceled,
			Drained:   f.drained,
			CostUnits: f.costUnits,
			Queued:    f.len(),

			WaitP50MS:  f.wait.Quantile(0.50),
			WaitP99MS:  f.wait.Quantile(0.99),
			TotalP50MS: f.total.Quantile(0.50),
			TotalP99MS: f.total.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// MetricsHandler returns the /metrics endpoint: the obs registry in
// the Prometheus text format plus per-tenant serve_tenant_* lines.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WriteText(w, s.cfg.Registry)
		for _, ts := range s.Stats() {
			fmt.Fprintf(w, "serve_tenant_granted{tenant=%q} %d\n", ts.Tenant, ts.Granted)
			fmt.Fprintf(w, "serve_tenant_shed{tenant=%q} %d\n",
				ts.Tenant, ts.ShedQueue+ts.ShedBudg+ts.ShedDegr)
			fmt.Fprintf(w, "serve_tenant_cost_units{tenant=%q} %d\n", ts.Tenant, ts.CostUnits)
			fmt.Fprintf(w, "serve_tenant_wait_p99_ms{tenant=%q} %d\n", ts.Tenant, ts.WaitP99MS)
		}
	})
}

// Registry returns the registry the server's metrics live in (the
// configured one, or obs.Default()).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// RunInfo assembles the obs.RunInfo for a serve session's manifest.
func (s *Server) RunInfo() obs.RunInfo {
	return obs.RunInfo{
		Experiment: "errserve",
		Workers:    s.cfg.Workers,
	}
}
