package core_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/harness"
	"repro/internal/traffic"
)

// runVerified drives ERR through the harness with the given script and
// verifies the trace against Lemma 1 / the allowance guarantee.
func runVerified(t *testing.T, flows int, m int64, script func(d *harness.Driver)) {
	t.Helper()
	e := core.New()
	rec := &core.TraceRecorder{}
	e.SetTrace(rec)
	d := harness.New(flows, e)
	script(d)
	d.Drain()
	if err := analysis.VerifyTrace(rec, m, flows); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	if len(rec.Events) == 0 {
		t.Fatal("script produced no service opportunities; the test is vacuous")
	}
}

// TestERRSimultaneousReactivation hits the all-empty reset path: every
// flow drains, the scheduler goes idle (Figure 1's Initialize state),
// then all flows burst back in the same step — repeatedly. Lemma 1
// must hold across every reset, with no stale MaxSC or surplus leaking
// into the new busy period.
func TestERRSimultaneousReactivation(t *testing.T) {
	const flows = 4
	runVerified(t, flows, 16, func(d *harness.Driver) {
		for burst := 0; burst < 10; burst++ {
			for f := 0; f < flows; f++ {
				d.Arrive(flit.Packet{Flow: f, Length: (burst+f)%16 + 1})
			}
			// Serve to empty: the active list resets completely.
			for d.Backlog() > 0 {
				d.ServeOne()
			}
		}
	})
}

// TestERRSingleMaxSizePacketFlows pins the worst-overshoot corner: one
// flow sends only maximum-size packets against minimum-size rivals, so
// its surplus rides the m-1 bound every round.
func TestERRSingleMaxSizePacketFlows(t *testing.T) {
	const flows, maxLen = 3, 64
	runVerified(t, flows, maxLen, func(d *harness.Driver) {
		for i := 0; i < 40; i++ {
			d.Arrive(flit.Packet{Flow: 0, Length: maxLen})
			d.Arrive(flit.Packet{Flow: 1, Length: 1})
			d.Arrive(flit.Packet{Flow: 2, Length: 1})
			for j := 0; j < 8 && d.Backlog() > 0; j++ {
				d.ServeOne()
			}
		}
	})
}

// TestERRStaggeredDrainAndRearrival alternates which flow is empty at
// each round boundary, exercising the drain-time surplus reset against
// flows that reactivate one service later.
func TestERRStaggeredDrainAndRearrival(t *testing.T) {
	const flows = 3
	runVerified(t, flows, 8, func(d *harness.Driver) {
		for i := 0; i < 60; i++ {
			d.Arrive(flit.Packet{Flow: i % flows, Length: i%8 + 1})
			if i%2 == 1 {
				for j := 0; j < 2 && d.Backlog() > 0; j++ {
					d.ServeOne()
				}
			}
		}
	})
}

// FuzzERRCheckedEngine is the engine-level counterpart of
// FuzzERRInvariants: the fuzz input decodes to an arrival script
// replayed through the real engine with the runtime invariant checker
// attached (Lemma 1 via the trace sink, flit conservation and
// ActiveList audits every cycle). Any violation — including on
// pathological reactivation patterns the corpus seeds below encode —
// fails with the checker's cycle-stamped report.
func FuzzERRCheckedEngine(f *testing.F) {
	// Simultaneous reactivation after idle: bursts separated by gaps.
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0xFF, 0x01, 0x11, 0x21, 0x31, 0xFF})
	// Single max-size packet flow against minimal rivals.
	f.Add([]byte{0xF0, 0x01, 0x02, 0xF0, 0x01, 0x02})
	// Dense interleaving, no idle.
	f.Add([]byte{0xAA, 0x55, 0xC3, 0x3C, 0x99, 0x66})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const flows = 4
		if len(data) > 256 {
			data = data[:256]
		}
		var events []traffic.TraceEvent
		cycle, totalFlits := int64(0), int64(0)
		for _, b := range data {
			if b == 0xFF {
				cycle += 200 // an idle gap long enough to drain and reset
				continue
			}
			length := int(b>>4) + 1
			events = append(events, traffic.TraceEvent{Cycle: cycle, Flow: int(b) % flows, Length: length})
			totalFlits += int64(length)
			cycle += int64(b & 0x03)
		}
		errSched := core.New()
		ecfg := engine.Config{
			Flows:     flows,
			Scheduler: errSched,
			Source:    traffic.NewReplay(events),
		}
		chk := check.NewEngineChecker(flows)
		chk.Wire(&ecfg)
		errSched.SetTrace(chk)
		e, err := engine.NewEngine(ecfg)
		if err != nil {
			t.Fatal(err)
		}
		chk.Attach(e, errSched)
		for c := int64(0); c < cycle+totalFlits+16; c++ {
			e.Step()
			chk.Tick()
		}
		if err := chk.Err(); err != nil {
			t.Fatalf("invariant violated: %v (input %x)", err, data)
		}
		if len(events) > 0 && !chk.Lemma1Checked() {
			t.Fatalf("arrivals were injected but no ERR opportunity was checked (input %x)", data)
		}
	})
}
