package sched

// FCFS serves packets in global arrival order (First-Come-First-
// Served), the discipline "most wormhole switches used today" employ
// per the paper's Section 2. It provides no isolation: a source that
// bursts above its fair share, or that sends longer packets, steals
// bandwidth from everyone else (Figure 4(c)).
//
// Implementation: a FIFO of flow ids, one entry per queued packet.
// Because each per-flow queue is itself a FIFO, serving the flow at
// the head of this list serves exactly the globally oldest packet.
// All operations are O(1).
type FCFS struct {
	order fifoInt
}

// NewFCFS returns an FCFS scheduler.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (f *FCFS) Name() string { return "FCFS" }

// OnArrival implements Scheduler.
func (f *FCFS) OnArrival(flow int, wasEmpty bool) { f.order.push(flow) }

// NextFlow implements Scheduler.
func (f *FCFS) NextFlow() int {
	if f.order.empty() {
		panic("sched: FCFS.NextFlow with no queued packets")
	}
	return f.order.peek()
}

// OnPacketDone implements Scheduler.
func (f *FCFS) OnPacketDone(flow int, cost int64, nowEmpty bool) {
	got := f.order.pop()
	if got != flow {
		panic("sched: FCFS served a packet out of order")
	}
}

// fifoInt is a minimal growable ring buffer of ints shared by the
// schedulers in this package.
type fifoInt struct {
	buf        []int
	head, size int
}

func (q *fifoInt) empty() bool { return q.size == 0 }
func (q *fifoInt) len() int    { return q.size }

func (q *fifoInt) push(v int) {
	if q.size == len(q.buf) {
		n := len(q.buf) * 2
		if n == 0 {
			n = 8
		}
		nb := make([]int, n)
		for i := 0; i < q.size; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
}

func (q *fifoInt) pop() int {
	if q.size == 0 {
		panic("sched: pop from empty fifo")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v
}

func (q *fifoInt) peek() int {
	if q.size == 0 {
		panic("sched: peek on empty fifo")
	}
	return q.buf[q.head]
}
